# Makefile — common entry points. `make ci` is what the repo considers a
# green build; `make bench` refreshes BENCH_search.json (the perf
# trajectory of the parallel grid-search engine).

.PHONY: build test vet lint race bench ci

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

lint:
	go run ./cmd/bfpp-lint ./...

race:
	go test -race -count=1 \
		-run 'Parallel|Cache|Concurrent|Sweep|FastPath|RunMatches|Curve|CheapArtifacts|Ctx|Cancel|Progress|HTTP|Search' \
		./internal/parallel ./internal/search ./internal/schedule \
		./internal/memsim ./internal/des ./internal/engine \
		./internal/figures ./internal/tradeoff ./internal/service

bench:
	sh scripts/bench.sh

ci:
	sh ci.sh
