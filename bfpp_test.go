package bfpp_test

import (
	"context"
	"math"
	"testing"

	"bfpp"
	"bfpp/internal/tensor"
)

// The facade must expose a working end-to-end path: simulate, search,
// extrapolate and train.
func TestFacadeSimulate(t *testing.T) {
	res, err := bfpp.Simulate(bfpp.PaperCluster(), bfpp.Model52B(), bfpp.Plan{
		Method: bfpp.BreadthFirst, DP: 1, PP: 8, TP: 8,
		MicroBatch: 1, NumMicro: 8, Loops: 4, OverlapDP: true, OverlapPP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization <= 0.2 || res.Utilization >= 0.6 {
		t.Errorf("implausible utilization %.2f", res.Utilization)
	}
}

func TestFacadeSearchAndTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("search sweep")
	}
	c := bfpp.PaperCluster()
	m := bfpp.Model52B()
	best, err := bfpp.Optimize(context.Background(), c, m, bfpp.FamilyBreadthFirst, 16, bfpp.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pt := bfpp.Extrapolate(m, best.Result, bfpp.Bcrit52B, 4096)
	if pt.TimeDays <= 0 || pt.CostGPUDays <= 0 {
		t.Errorf("bad extrapolation %+v", pt)
	}
	if math.Abs(pt.CostGPUDays-pt.TimeDays*4096)/pt.CostGPUDays > 1e-9 {
		t.Error("cost != time * GPUs")
	}
}

func TestFacadeTrainer(t *testing.T) {
	cfg := bfpp.NetConfig{Layers: 4, Dim: 8, Hidden: 16, Seed: 5}
	plan := bfpp.Plan{Method: bfpp.BreadthFirst, DP: 2, PP: 2, TP: 1,
		MicroBatch: 2, NumMicro: 2, Loops: 2, Sharding: bfpp.DPFS}
	tr, err := bfpp.NewTrainer(cfg, plan, bfpp.DefaultAdam())
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(plan.BatchSize(), cfg.Dim)
	tgt := tensor.New(plan.BatchSize(), cfg.Dim)
	for i := range in.Data {
		in.Data[i] = float64(i%7) - 3
		tgt.Data[i] = float64(i%5) - 2
	}
	l1, err := tr.Step(in, tgt)
	if err != nil {
		t.Fatal(err)
	}
	var lN float64
	for i := 0; i < 20; i++ {
		lN, err = tr.Step(in, tgt)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !(lN < l1) {
		t.Errorf("loss did not decrease: %v -> %v", l1, lN)
	}
}

func TestFacadeAnalytics(t *testing.T) {
	s := bfpp.DefaultScenario()
	if u := s.Utilization(bfpp.BreadthFirst, 2); u <= 0 || u > 1 {
		t.Errorf("bad utilization %v", u)
	}
	if bn := bfpp.BetaNet(bfpp.A100(), bfpp.PaperCluster().InterNode, 2048); bn <= 0 {
		t.Errorf("bad beta_net %v", bn)
	}
	if o := bfpp.SamplesOverhead(1024, bfpp.Bcrit52B); o <= 1 {
		t.Errorf("bad overhead %v", o)
	}
}
