package engine

import (
	"math"
	"testing"

	"bfpp/internal/core"
	"bfpp/internal/hw"
	"bfpp/internal/model"
)

func sim(t *testing.T, c hw.Cluster, m model.Transformer, p core.Plan) Result {
	t.Helper()
	r, err := Simulate(c, m, p)
	if err != nil {
		t.Fatalf("Simulate(%v): %v", p, err)
	}
	return r
}

func TestSimulateAllMethods(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model52B()
	plans := []core.Plan{
		{Method: core.GPipe, DP: 1, PP: 8, TP: 8, MicroBatch: 1, NumMicro: 8, Loops: 1, OverlapDP: true, OverlapPP: true},
		{Method: core.OneFOneB, DP: 1, PP: 8, TP: 8, MicroBatch: 1, NumMicro: 8, Loops: 1},
		{Method: core.DepthFirst, DP: 1, PP: 8, TP: 8, MicroBatch: 1, NumMicro: 8, Loops: 4},
		{Method: core.BreadthFirst, DP: 1, PP: 8, TP: 8, MicroBatch: 1, NumMicro: 8, Loops: 4, OverlapDP: true, OverlapPP: true},
		{Method: core.BreadthFirst, DP: 4, PP: 4, TP: 4, MicroBatch: 1, NumMicro: 8, Loops: 4, Sharding: core.DPFS, OverlapDP: true, OverlapPP: true},
		{Method: core.NoPipelineDF, DP: 8, PP: 1, TP: 8, MicroBatch: 2, NumMicro: 2, Loops: 1, OverlapDP: true},
		{Method: core.NoPipelineBF, DP: 8, PP: 1, TP: 8, MicroBatch: 1, NumMicro: 4, Loops: 8, Sharding: core.DPFS, OverlapDP: true},
	}
	for _, p := range plans {
		r := sim(t, c, m, p)
		if r.BatchTime <= 0 || r.Utilization <= 0 || r.Utilization >= 1 {
			t.Errorf("%v: implausible result %v", p, r)
		}
		if r.ComputeTime > r.BatchTime+1e-9 {
			t.Errorf("%v: compute time %v exceeds batch time %v", p, r.ComputeTime, r.BatchTime)
		}
		if math.Abs(r.Throughput*r.BatchTime-r.FlopPerGPU)/r.FlopPerGPU > 1e-9 {
			t.Errorf("%v: throughput inconsistent", p)
		}
	}
}

// Paper headline (Section 5.3 / Figure 5a): near beta_min the breadth-first
// schedule is much faster than both the non-looped and depth-first
// baselines (paper: 53% and 43% faster at the optimal configs; the fixed
// Figure 5a configs show 1.2-1.5x).
func TestBreadthFirstWinsAtSmallBatch(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model52B()
	bf := sim(t, c, m, core.Plan{Method: core.BreadthFirst, DP: 1, PP: 8, TP: 8,
		MicroBatch: 1, NumMicro: 8, Loops: 4, OverlapDP: true, OverlapPP: true})
	df := sim(t, c, m, core.Plan{Method: core.DepthFirst, DP: 1, PP: 8, TP: 8,
		MicroBatch: 1, NumMicro: 8, Loops: 4})
	gp := sim(t, c, m, core.Plan{Method: core.GPipe, DP: 1, PP: 8, TP: 8,
		MicroBatch: 1, NumMicro: 8, Loops: 1, OverlapDP: true, OverlapPP: true})
	ob := sim(t, c, m, core.Plan{Method: core.OneFOneB, DP: 1, PP: 8, TP: 8,
		MicroBatch: 1, NumMicro: 8, Loops: 1})
	if bf.Throughput < 1.15*df.Throughput {
		t.Errorf("BF should beat depth-first by >15%% at small batch: %.1f vs %.1f Tflop/s",
			bf.Throughput/1e12, df.Throughput/1e12)
	}
	if bf.Throughput < 1.3*gp.Throughput {
		t.Errorf("BF should beat GPipe by >30%% at small batch: %.1f vs %.1f",
			bf.Throughput/1e12, gp.Throughput/1e12)
	}
	if bf.Throughput < 1.3*ob.Throughput {
		t.Errorf("BF should beat 1F1B by >30%% at small batch: %.1f vs %.1f",
			bf.Throughput/1e12, ob.Throughput/1e12)
	}
}

// Figure 6: looping helps the breadth-first schedule monotonically (up to
// the measured range), while the depth-first schedule's unoverlapped
// network overhead makes large N_loop counterproductive.
func TestLoopingSweepShapes(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model52B()
	util := func(mth core.Method, nmb, loops int) float64 {
		p := core.Plan{Method: mth, DP: 1, PP: 8, TP: 8, MicroBatch: 1,
			NumMicro: nmb, Loops: loops}
		if mth == core.BreadthFirst || mth == core.GPipe {
			p.OverlapDP, p.OverlapPP = true, true
		}
		return sim(t, c, m, p).Utilization
	}
	// Breadth-first at B=16: each doubling of Nloop helps.
	b1 := util(core.GPipe, 16, 1)
	b2 := util(core.BreadthFirst, 16, 2)
	b4 := util(core.BreadthFirst, 16, 4)
	b8 := util(core.BreadthFirst, 16, 8)
	if !(b1 < b2 && b2 < b4 && b4 < b8) {
		t.Errorf("BF looping should help at B=16: %.3f %.3f %.3f %.3f", b1, b2, b4, b8)
	}
	// Depth-first at B=64: looping beyond 2 hurts (network overhead), and
	// Nloop=8 is far below the breadth-first equivalent (paper: 30%% vs 43%%).
	d2 := util(core.DepthFirst, 64, 2)
	d4 := util(core.DepthFirst, 64, 4)
	d8 := util(core.DepthFirst, 64, 8)
	if !(d4 < d2 && d8 < d4) {
		t.Errorf("DF looping should hurt at B=64: %.3f %.3f %.3f", d2, d4, d8)
	}
	bf8 := util(core.BreadthFirst, 64, 8)
	if bf8 < 1.3*d8 {
		t.Errorf("BF at Nloop=8 should be >=1.3x DF (paper ~1.43): %.3f vs %.3f", bf8, d8)
	}
}

// Eq. (4): the non-looped bubble shrinks as micro-batches are added, so
// GPipe utilization must rise monotonically with Nmb.
func TestBubbleShrinksWithMicroBatches(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model52B()
	prev := 0.0
	for _, nmb := range []int{8, 16, 32, 64} {
		r := sim(t, c, m, core.Plan{Method: core.GPipe, DP: 1, PP: 8, TP: 8,
			MicroBatch: 1, NumMicro: nmb, Loops: 1, OverlapDP: true, OverlapPP: true})
		if r.Utilization <= prev {
			t.Errorf("GPipe utilization should rise with Nmb: %.3f at %d", r.Utilization, nmb)
		}
		prev = r.Utilization
	}
}

// Section 3.1 / Table E.1: pure data parallelism with DP-FS collapses at
// small batch sizes (the paper measures 4.73 Tflop/s at B=8 vs 62.4 at
// B=512) because the weight reconstructions cannot be overlapped.
func TestNoPipelineBetaNetWall(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model52B()
	small := sim(t, c, m, core.Plan{Method: core.NoPipelineBF, DP: 8, PP: 1, TP: 8,
		MicroBatch: 1, NumMicro: 1, Loops: 64, Sharding: core.DPFS, OverlapDP: true})
	large := sim(t, c, m, core.Plan{Method: core.NoPipelineBF, DP: 32, PP: 1, TP: 2,
		MicroBatch: 4, NumMicro: 4, Loops: 64, Sharding: core.DPFS, OverlapDP: true})
	if small.Throughput > 0.25*large.Throughput {
		t.Errorf("no-pipeline at beta=1/8 should collapse: %.1f vs %.1f Tflop/s",
			small.Throughput/1e12, large.Throughput/1e12)
	}
	if large.Utilization < 0.40 {
		t.Errorf("no-pipeline at beta=8 should be efficient, got %.1f%%", 100*large.Utilization)
	}
}

// The paper's Ethernet experiment (Section 4.3, Figure 7c): with a slow
// network, overlap matters even more, so the breadth-first advantage over
// the non-overlapping depth-first baseline grows.
func TestEthernetAmplifiesOverlapAdvantage(t *testing.T) {
	m := model.Model6p6B()
	ratio := func(c hw.Cluster) float64 {
		bf := sim(t, c, m, core.Plan{Method: core.BreadthFirst, DP: 8, PP: 4, TP: 2,
			MicroBatch: 1, NumMicro: 8, Loops: 4, OverlapDP: true, OverlapPP: true})
		df := sim(t, c, m, core.Plan{Method: core.DepthFirst, DP: 8, PP: 4, TP: 2,
			MicroBatch: 1, NumMicro: 8, Loops: 4})
		return bf.Throughput / df.Throughput
	}
	ib := ratio(hw.PaperCluster())
	eth := ratio(hw.PaperClusterEthernet())
	if eth <= ib {
		t.Errorf("Ethernet should amplify the BF advantage: IB ratio %.2f, Ethernet %.2f", ib, eth)
	}
}

// DP-FS restore repetition (Eq. 24 vs 26): depth-first gradient
// accumulation pays per-micro-batch network operations, so adding
// micro-batches at fixed batch size slows it down while breadth-first
// aggregation stays flat.
func TestDPFSAccumulationRepetition(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model6p6B()
	mk := func(method core.Method, smb, nmb int) Result {
		return sim(t, c, m, core.Plan{Method: method, DP: 8, PP: 1, TP: 8,
			MicroBatch: smb, NumMicro: nmb, Loops: 32, Sharding: core.DPFS, OverlapDP: true})
	}
	dfOne := mk(core.NoPipelineDF, 8, 1)
	dfMany := mk(core.NoPipelineDF, 1, 8)
	bfMany := mk(core.NoPipelineBF, 1, 8)
	if dfMany.BatchTime < 1.5*dfOne.BatchTime {
		t.Errorf("DF accumulation should repeat DP ops: %.3fs vs %.3fs",
			dfMany.BatchTime, dfOne.BatchTime)
	}
	if bfMany.BatchTime > 1.2*dfOne.BatchTime {
		t.Errorf("BF accumulation should not repeat DP ops: %.3fs vs %.3fs",
			bfMany.BatchTime, dfOne.BatchTime)
	}
}

func TestTimelineCapture(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Tiny()
	p := core.Plan{Method: core.BreadthFirst, DP: 1, PP: 4, TP: 1,
		MicroBatch: 1, NumMicro: 8, Loops: 4, OverlapDP: true, OverlapPP: true}
	r, err := SimulateOpts(c, m, p, Options{CaptureTimeline: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Timeline == nil || len(r.Timeline.Spans) == 0 {
		t.Fatal("timeline not captured")
	}
	if math.Abs(r.Timeline.Makespan-r.BatchTime) > 1e-12 {
		t.Errorf("makespan %v != batch time %v", r.Timeline.Makespan, r.BatchTime)
	}
	r2, err := Simulate(c, m, p)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Timeline != nil {
		t.Error("timeline captured without request")
	}
	if r2.BatchTime != r.BatchTime {
		t.Error("simulation not deterministic")
	}
}

func TestSimulateErrors(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model52B()
	// Too many GPUs.
	p := core.Plan{Method: core.GPipe, DP: 4, PP: 8, TP: 8, MicroBatch: 1, NumMicro: 8, Loops: 1}
	if _, err := Simulate(c, m, p); err == nil {
		t.Error("expected error for oversubscribed cluster")
	}
	// Invalid plan.
	p = core.Plan{Method: core.GPipe, DP: 0, PP: 8, TP: 8, MicroBatch: 1, NumMicro: 8, Loops: 1}
	if _, err := Simulate(c, m, p); err == nil {
		t.Error("expected error for invalid plan")
	}
	// Invalid cluster.
	bad := c
	bad.Nodes = 0
	p = core.Plan{Method: core.GPipe, DP: 1, PP: 8, TP: 8, MicroBatch: 1, NumMicro: 8, Loops: 1}
	if _, err := Simulate(bad, m, p); err == nil {
		t.Error("expected error for invalid cluster")
	}
}

// TP overhead: raising TP at fixed total GPUs should reduce per-GPU
// efficiency for large models (narrower GEMMs + all-reduce overhead),
// which is why the paper's optimal configs shed TP as batch size grows.
func TestTensorParallelOverhead(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model52B()
	tp8 := sim(t, c, m, core.Plan{Method: core.BreadthFirst, DP: 1, PP: 8, TP: 8,
		MicroBatch: 1, NumMicro: 32, Loops: 4, OverlapDP: true, OverlapPP: true})
	tp2 := sim(t, c, m, core.Plan{Method: core.BreadthFirst, DP: 4, PP: 8, TP: 2,
		MicroBatch: 1, NumMicro: 8, Loops: 4, Sharding: core.DPFS, OverlapDP: true, OverlapPP: true})
	if tp2.Utilization <= tp8.Utilization {
		t.Errorf("TP=2 should beat TP=8 at matched batch: %.3f vs %.3f",
			tp2.Utilization, tp8.Utilization)
	}
}

func TestResultString(t *testing.T) {
	c := hw.PaperCluster()
	r := sim(t, c, model.Tiny(), core.Plan{Method: core.GPipe, DP: 1, PP: 4, TP: 1,
		MicroBatch: 1, NumMicro: 4, Loops: 1, OverlapDP: true, OverlapPP: true})
	if r.String() == "" {
		t.Error("empty result string")
	}
}

func BenchmarkSimulate52B(b *testing.B) {
	c := hw.PaperCluster()
	m := model.Model52B()
	p := core.Plan{Method: core.BreadthFirst, DP: 4, PP: 8, TP: 2,
		MicroBatch: 1, NumMicro: 12, Loops: 8, Sharding: core.DPFS,
		OverlapDP: true, OverlapPP: true}
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(c, m, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateLargeNmb(b *testing.B) {
	c := hw.PaperCluster()
	m := model.Model52B()
	p := core.Plan{Method: core.OneFOneB, DP: 1, PP: 8, TP: 8,
		MicroBatch: 4, NumMicro: 128, Loops: 1}
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(c, m, p); err != nil {
			b.Fatal(err)
		}
	}
}
