package engine_test

import (
	"testing"

	"bfpp/internal/analytic"
	"bfpp/internal/core"
	"bfpp/internal/engine"
	"bfpp/internal/hw"
	"bfpp/internal/model"
)

// Cross-validation between the two independent performance models: for
// clean configurations (DP=1, TP=1, overlapped breadth-first, negligible
// network), the simulator's schedule efficiency — utilization divided by
// the kernel-efficiency ceiling — must track the closed-form prediction
// 1/(1 + bubble) of Section 4.2 within a modest tolerance.
func TestSimulatorMatchesAnalyticModel(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model52B()
	kernel := c.GPU.KernelEff.Efficiency(float64(4*m.SeqLen), float64(m.Hidden))
	for _, cfg := range []struct {
		pp, nmb, loops int
	}{
		{8, 16, 1}, {8, 32, 1}, {8, 16, 4}, {8, 64, 8}, {4, 16, 2}, {2, 8, 8},
	} {
		method := core.BreadthFirst
		if cfg.loops == 1 {
			method = core.GPipe
		}
		p := core.Plan{Method: method, DP: 1, PP: cfg.pp, TP: 1,
			MicroBatch: 4, NumMicro: cfg.nmb, Loops: cfg.loops,
			OverlapDP: true, OverlapPP: true}
		r, err := engine.Simulate(c, m, p)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		got := r.Utilization / kernel
		// Analytic schedule efficiency with no data-parallel term.
		s := analytic.Scenario{BetaNet: 0, PP: cfg.pp, TP: 1, Loops: cfg.loops,
			MicroBatch: 4, Overlap: true, PPJump: 0}
		beta := p.BatchPerGPU()
		want := s.Utilization(method, beta)
		if got < 0.85*want || got > 1.10*want {
			t.Errorf("PP=%d Nmb=%d Loops=%d: sim efficiency %.3f vs analytic %.3f (ratio %.2f)",
				cfg.pp, cfg.nmb, cfg.loops, got, want, got/want)
		}
	}
}
