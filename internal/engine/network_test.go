package engine

import (
	"testing"

	"bfpp/internal/core"
	"bfpp/internal/hw"
	"bfpp/internal/model"
	"bfpp/internal/topology"
)

// The node-sharing model of Appendix A.3.1 as implemented: a data-parallel
// group confined to one node rides NVLink, and a spanning group's effective
// bandwidth grows with its members per node (a node-contiguous ring crosses
// each NIC once per g members). Verified through the simulated reduction
// times.
func TestDPBandwidthSharing(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model52B()
	dpTime := func(dp, pp, tp, loops int) float64 {
		p := core.Plan{Method: core.BreadthFirst, DP: dp, PP: pp, TP: tp,
			MicroBatch: 1, NumMicro: pp, Loops: loops,
			OverlapDP: true, OverlapPP: true}
		r, err := Simulate(c, m, p)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		// Normalize by per-device parameter count so the comparison is
		// purely about link speed: multiply by PP*TP.
		return r.DPCommTime * float64(pp*tp)
	}
	// TP=8: one member per node, full inter-node cost.
	span1 := dpTime(8, 8, 1, 8) // TP=1: DP group of 8 fits in one node -> NVLink
	span8 := dpTime(8, 1, 8, 64)
	if span1 >= span8/4 {
		t.Errorf("intra-node DP should be far cheaper: NVLink %.4f vs IB %.4f (normalized)",
			span1, span8)
	}
	// TP=2 vs TP=8 at DP=32 and DP=8 across nodes: more members per node
	// (g = 4 vs 1) means proportionally higher effective bandwidth.
	g4 := dpTime(32, 1, 2, 64)
	g1 := dpTime(8, 1, 8, 64)
	if g4 >= g1 {
		t.Errorf("g=4 sharing should be cheaper than g=1: %.4f vs %.4f (normalized)", g4, g1)
	}
}

// The engine's link-selection rule must agree with the topology package's
// notion of whether a data-parallel group spans nodes.
func TestDPLinkRuleMatchesTopology(t *testing.T) {
	c := hw.PaperCluster()
	for _, g := range []topology.Grid{
		{TP: 1, DP: 8, PP: 8},
		{TP: 2, DP: 4, PP: 8},
		{TP: 2, DP: 8, PP: 4},
		{TP: 8, DP: 8, PP: 1},
		{TP: 4, DP: 16, PP: 1},
	} {
		spans := g.DPGroupSpansNodes(c.GPUsPerNode)
		// The engine uses TP*DP <= GPUsPerNode for "contained".
		engineContained := g.TP*g.DP <= c.GPUsPerNode
		if spans == engineContained {
			t.Errorf("grid %+v: topology spans=%v but engine contained=%v", g, spans, engineContained)
		}
	}
}
