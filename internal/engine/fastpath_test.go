package engine

import (
	"testing"

	"bfpp/internal/core"
	"bfpp/internal/hw"
	"bfpp/internal/model"
)

// fastpathPlans covers every schedule family, both overlap settings and
// all sharding modes on the paper cluster.
func fastpathPlans() []core.Plan {
	return []core.Plan{
		{Method: core.BreadthFirst, DP: 4, PP: 8, TP: 2, MicroBatch: 1, NumMicro: 12, Loops: 8,
			Sharding: core.DPFS, OverlapDP: true, OverlapPP: true},
		{Method: core.BreadthFirst, DP: 2, PP: 4, TP: 8, MicroBatch: 1, NumMicro: 8, Loops: 2,
			OverlapDP: true, OverlapPP: true},
		{Method: core.DepthFirst, DP: 1, PP: 8, TP: 8, MicroBatch: 1, NumMicro: 16, Loops: 4},
		{Method: core.GPipe, DP: 2, PP: 8, TP: 4, MicroBatch: 1, NumMicro: 16, Loops: 1,
			Sharding: core.DPPS, OverlapDP: true, OverlapPP: true},
		{Method: core.OneFOneB, DP: 1, PP: 8, TP: 8, MicroBatch: 2, NumMicro: 16, Loops: 1},
		{Method: core.NoPipelineBF, DP: 32, PP: 1, TP: 2, MicroBatch: 1, NumMicro: 2, Loops: 8,
			Sharding: core.DPFS, OverlapDP: true},
		{Method: core.NoPipelineDF, DP: 64, PP: 1, TP: 1, MicroBatch: 1, NumMicro: 2, Loops: 16},
		{Method: core.Hybrid, DP: 1, PP: 8, TP: 8, MicroBatch: 1, NumMicro: 32, Loops: 2,
			Sequence: 16, OverlapDP: true, OverlapPP: true},
	}
}

// TestFastPathMatchesBaseline asserts the cached/indexed simulation path
// returns results identical to the seed-faithful one (no caches, reference
// DES loop) — every float, not just the headline throughput.
func TestFastPathMatchesBaseline(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model52B()
	for _, p := range fastpathPlans() {
		fast, err := SimulateOpts(c, m, p, Options{})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		base, err := SimulateOpts(c, m, p, Options{DisableCache: true, ReferenceDES: true})
		if err != nil {
			t.Fatalf("%v baseline: %v", p, err)
		}
		if fast != base {
			t.Errorf("%v: fast path diverges from baseline\nfast: %+v\nbase: %+v", p, fast, base)
		}
	}
}

// TestFastPathTimelineMatchesBaseline compares the captured DES timelines
// span by span.
func TestFastPathTimelineMatchesBaseline(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model6p6B()
	p := core.Plan{Method: core.BreadthFirst, DP: 8, PP: 4, TP: 2, MicroBatch: 1,
		NumMicro: 16, Loops: 4, Sharding: core.DPFS, OverlapDP: true, OverlapPP: true}
	fast, err := SimulateOpts(c, m, p, Options{CaptureTimeline: true})
	if err != nil {
		t.Fatal(err)
	}
	base, err := SimulateOpts(c, m, p, Options{CaptureTimeline: true, DisableCache: true, ReferenceDES: true})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Timeline.Makespan != base.Timeline.Makespan {
		t.Fatalf("makespan %v != %v", fast.Timeline.Makespan, base.Timeline.Makespan)
	}
	if len(fast.Timeline.Spans) != len(base.Timeline.Spans) {
		t.Fatalf("span count %d != %d", len(fast.Timeline.Spans), len(base.Timeline.Spans))
	}
	for i := range fast.Timeline.Spans {
		if fast.Timeline.Spans[i] != base.Timeline.Spans[i] {
			t.Fatalf("span %d differs: %+v != %+v", i, fast.Timeline.Spans[i], base.Timeline.Spans[i])
		}
	}
}
