package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bfpp/internal/core"
	"bfpp/internal/hw"
	"bfpp/internal/model"
)

// randomPlan draws a valid plan for the 52B model on the paper cluster.
func randomPlan(rng *rand.Rand) core.Plan {
	methods := []core.Method{core.GPipe, core.OneFOneB, core.DepthFirst,
		core.BreadthFirst, core.Hybrid, core.NoPipelineDF, core.NoPipelineBF}
	for {
		m := methods[rng.Intn(len(methods))]
		pp := 1 << rng.Intn(4) // 1..8
		if !m.Pipelined() {
			pp = 1
		} else if pp == 1 {
			continue
		}
		tp := 1 << rng.Intn(4)
		dp := 64 / (pp * tp)
		if dp < 1 {
			continue
		}
		loops := 1
		if m.Looped() {
			loops = 1 << rng.Intn(4)
		}
		if !m.Pipelined() {
			loops = []int{1, 2, 4, 8, 16, 32, 64}[rng.Intn(7)]
		}
		nmb := pp * (1 + rng.Intn(4))
		seq := 0
		if m == core.Hybrid {
			seq = pp * (1 + rng.Intn(2))
			nmb = seq * (1 + rng.Intn(3))
		}
		p := core.Plan{Method: m, DP: dp, PP: pp, TP: tp,
			MicroBatch: 1 << rng.Intn(3), NumMicro: nmb, Loops: loops, Sequence: seq}
		if rng.Intn(2) == 0 {
			p.OverlapDP, p.OverlapPP = true, true
		}
		if dp > 1 && rng.Intn(3) == 0 &&
			(m == core.BreadthFirst || m == core.NoPipelineBF || m == core.NoPipelineDF) {
			p.Sharding = core.DPFS
		}
		if p.Validate(model.Model52B()) == nil {
			return p
		}
	}
}

// Property: across random valid plans the simulator upholds its physical
// invariants — positive finite times, compute-stream busy time bounded by
// the batch time, utilization below the kernel ceiling, and determinism.
func TestSimulatorInvariantsProperty(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model52B()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPlan(rng)
		r1, err := Simulate(c, m, p)
		if err != nil {
			t.Logf("plan %v: %v", p, err)
			return false
		}
		if !(r1.BatchTime > 0) || !(r1.Utilization > 0) {
			t.Logf("plan %v: non-positive result %v", p, r1)
			return false
		}
		if r1.ComputeTime > r1.BatchTime+1e-9 {
			t.Logf("plan %v: compute %v > batch %v", p, r1.ComputeTime, r1.BatchTime)
			return false
		}
		if r1.Utilization > c.GPU.KernelEff.MaxEff {
			t.Logf("plan %v: utilization %v above kernel ceiling", p, r1.Utilization)
			return false
		}
		// Bubble lower-bounds the idle fraction for DP=1 pipelined plans:
		// batch time >= compute time * (1 + bubble) approximately; check
		// the weak direction only (bubble cannot make it faster).
		r2, err := Simulate(c, m, p)
		if err != nil || r2.BatchTime != r1.BatchTime {
			t.Logf("plan %v: nondeterministic", p)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Overlap can only help: for every method that supports both traits, the
// overlapped implementation is at least as fast.
func TestOverlapNeverHurtsProperty(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model52B()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPlan(rng)
		p.Sharding = core.DP0 // isolate the overlap effect
		pOn := p
		pOn.OverlapDP, pOn.OverlapPP = true, true
		pOff := p
		pOff.OverlapDP, pOff.OverlapPP = false, false
		rOn, err1 := Simulate(c, m, pOn)
		rOff, err2 := Simulate(c, m, pOff)
		if err1 != nil || err2 != nil {
			return false
		}
		return rOn.BatchTime <= rOff.BatchTime+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Failure injection: corrupting the engine parameters must surface as
// errors or implausible results, not silent nonsense.
func TestDegenerateParams(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model52B()
	p := core.Plan{Method: core.BreadthFirst, DP: 1, PP: 8, TP: 8,
		MicroBatch: 1, NumMicro: 8, Loops: 4, OverlapDP: true, OverlapPP: true}
	// Zeroed overheads: still valid, strictly faster than defaults.
	par := Defaults()
	par.KernelLaunch = 0
	par.BlockingPPBase, par.BlockingPPPerRank = 0, 0
	fast, err := SimulateOpts(c, m, p, Options{Params: &par})
	if err != nil {
		t.Fatal(err)
	}
	def, err := Simulate(c, m, p)
	if err != nil {
		t.Fatal(err)
	}
	if fast.BatchTime > def.BatchTime {
		t.Errorf("idealized params should not be slower: %v vs %v", fast.BatchTime, def.BatchTime)
	}
	// A cluster with a broken link must be rejected at validation.
	broken := c
	broken.InterNode.Bandwidth = 0
	if _, err := Simulate(broken, m, p); err == nil {
		t.Error("zero-bandwidth cluster should fail validation")
	}
}
