package engine

import (
	"testing"

	"bfpp/internal/core"
	"bfpp/internal/hw"
	"bfpp/internal/model"
)

// The two extension schedules must simulate through the engine end to end
// (registry acceptance criterion), with sane results.

func TestWeightStash1F1BSimulates(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model6p6B()
	ws := core.Plan{Method: core.WeightStash1F1B, DP: 2, PP: 4, TP: 2,
		MicroBatch: 1, NumMicro: 8, Loops: 1, OverlapDP: true, OverlapPP: true}
	rw, err := Simulate(c, m, ws)
	if err != nil {
		t.Fatalf("WS-1F1B: %v", err)
	}
	if rw.Utilization <= 0 || rw.Utilization > 1 {
		t.Fatalf("WS-1F1B utilization = %v", rw.Utilization)
	}
	// Same grid with Megatron-LM's non-overlapped 1F1B: the overlapped
	// PipeDream implementation must be at least as fast, but pays for its
	// stashed weight versions in memory.
	ob := ws
	ob.Method = core.OneFOneB
	ob.OverlapDP, ob.OverlapPP = false, false
	ro, err := Simulate(c, m, ob)
	if err != nil {
		t.Fatalf("1F1B: %v", err)
	}
	if rw.BatchTime > ro.BatchTime {
		t.Errorf("WS-1F1B batch %.4fs slower than blocking 1F1B %.4fs", rw.BatchTime, ro.BatchTime)
	}
	if rw.Memory.StateMin <= ro.Memory.StateMin {
		t.Errorf("WS-1F1B min state %.2f GiB should exceed 1F1B's %.2f GiB (stashes)",
			rw.Memory.StateMin/(1<<30), ro.Memory.StateMin/(1<<30))
	}
}

func TestVScheduleSimulatesAndDials(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model6p6B()
	base := core.Plan{Method: core.VSchedule, DP: 1, PP: 4, TP: 2,
		MicroBatch: 4, NumMicro: 16, Loops: 2, OverlapDP: true, OverlapPP: true}
	run := func(cap int) Result {
		p := base
		p.Sequence = cap
		r, err := Simulate(c, m, p)
		if err != nil {
			t.Fatalf("v-schedule cap %d: %v", cap, err)
		}
		return r
	}
	tight, loose := run(2), run(16)
	if tight.Utilization <= 0 || loose.Utilization <= 0 {
		t.Fatal("v-schedule produced zero utilization")
	}
	if loose.Utilization <= tight.Utilization {
		t.Errorf("larger in-flight cap should raise utilization: %.1f%% vs %.1f%%",
			100*loose.Utilization, 100*tight.Utilization)
	}
	if tight.Memory.Checkpoints >= loose.Memory.Checkpoints {
		t.Errorf("smaller cap should cut checkpoint memory: %.2f vs %.2f GiB",
			tight.Memory.Checkpoints/(1<<30), loose.Memory.Checkpoints/(1<<30))
	}
}
