package engine

import (
	"testing"

	"bfpp/internal/core"
	"bfpp/internal/hw"
	"bfpp/internal/model"
)

// plan5a builds a Figure 5a configuration: 52B model, NPP=NTP=8, NDP=1,
// Smb=1, looped schedules at Nloop=4.
func plan5a(m core.Method, nmb, loops int) core.Plan {
	p := core.Plan{Method: m, DP: 1, PP: 8, TP: 8, MicroBatch: 1,
		NumMicro: nmb, Loops: loops, Sharding: core.DP0}
	switch m {
	case core.GPipe, core.BreadthFirst:
		p.OverlapDP, p.OverlapPP = true, true
	}
	return p
}

// TestCalibrationFigure5a prints the simulated Figure 5a sweep next to the
// paper's approximate measurements. It never fails; shape assertions live in
// shape_test.go. Run with -v to inspect.
func TestCalibrationFigure5a(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model52B()
	t.Logf("%-14s %6s %6s %8s %8s", "method", "Nloop", "beta", "Tflop/s", "util%")
	for _, nmb := range []int{8, 16, 32, 64, 128} {
		beta := float64(nmb) / 64
		for _, cfg := range []struct {
			name  string
			mth   core.Method
			loops int
		}{
			{"Breadth-first", core.BreadthFirst, 4},
			{"Depth-first", core.DepthFirst, 4},
			{"GPipe", core.GPipe, 1},
			{"1F1B", core.OneFOneB, 1},
		} {
			p := plan5a(cfg.mth, nmb, cfg.loops)
			r, err := Simulate(c, m, p)
			if err != nil {
				t.Fatalf("%s nmb=%d: %v", cfg.name, nmb, err)
			}
			t.Logf("%-14s %6d %6.3g %8.2f %8.1f", cfg.name, cfg.loops, beta,
				r.Throughput/1e12, 100*r.Utilization)
		}
	}
}

// TestCalibrationFigure6 prints the Nloop sweep for the 52B model at B=16
// and B=64 (Figure 6).
func TestCalibrationFigure6(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model52B()
	for _, nmb := range []int{16, 64} {
		t.Logf("B=%d:", nmb)
		for _, loops := range []int{1, 2, 4, 8} {
			bfm, dfm := core.BreadthFirst, core.DepthFirst
			if loops == 1 {
				bfm, dfm = core.GPipe, core.OneFOneB
			}
			bp := plan5a(bfm, nmb, loops)
			dp := plan5a(dfm, nmb, loops)
			br, err := Simulate(c, m, bp)
			if err != nil {
				t.Fatalf("bf loops=%d: %v", loops, err)
			}
			dr, err := Simulate(c, m, dp)
			if err != nil {
				t.Fatalf("df loops=%d: %v", loops, err)
			}
			t.Logf("  Nloop=%d: breadth=%5.1f%%  depth=%5.1f%%",
				loops, 100*br.Utilization, 100*dr.Utilization)
		}
	}
}

// TestCalibrationTableE1 prints a few Table E.1 rows (52B optimal configs).
func TestCalibrationTableE1(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model52B()
	rows := []struct {
		name   string
		p      core.Plan
		paperT float64 // paper Tflop/s/GPU
	}{
		{"BF B=8", core.Plan{Method: core.BreadthFirst, DP: 1, PP: 8, TP: 8, MicroBatch: 1, NumMicro: 8, Loops: 4, OverlapDP: true, OverlapPP: true}, 36.28},
		{"BF B=9", core.Plan{Method: core.BreadthFirst, DP: 1, PP: 8, TP: 8, MicroBatch: 1, NumMicro: 9, Loops: 8, OverlapDP: true, OverlapPP: true}, 42.33},
		{"BF B=48", core.Plan{Method: core.BreadthFirst, DP: 4, PP: 8, TP: 2, MicroBatch: 1, NumMicro: 12, Loops: 8, Sharding: core.DPFS, OverlapDP: true, OverlapPP: true}, 55.34},
		{"DF B=8", core.Plan{Method: core.DepthFirst, DP: 1, PP: 8, TP: 8, MicroBatch: 1, NumMicro: 8, Loops: 2}, 29.53},
		{"DF B=128", core.Plan{Method: core.DepthFirst, DP: 1, PP: 8, TP: 8, MicroBatch: 4, NumMicro: 32, Loops: 4}, 51.46},
		{"NL B=8", core.Plan{Method: core.GPipe, DP: 1, PP: 8, TP: 8, MicroBatch: 1, NumMicro: 8, Loops: 1, OverlapDP: true, OverlapPP: true}, 26.04},
		{"NL B=512", core.Plan{Method: core.OneFOneB, DP: 1, PP: 8, TP: 8, MicroBatch: 4, NumMicro: 128, Loops: 1}, 55.52},
		{"NP B=8", core.Plan{Method: core.NoPipelineBF, DP: 8, PP: 1, TP: 8, MicroBatch: 1, NumMicro: 1, Loops: 64, Sharding: core.DPFS, OverlapDP: true}, 4.73},
		{"NP B=64", core.Plan{Method: core.NoPipelineBF, DP: 8, PP: 1, TP: 8, MicroBatch: 8, NumMicro: 1, Loops: 64, Sharding: core.DPFS, OverlapDP: true}, 35.97},
		{"NP B=512", core.Plan{Method: core.NoPipelineBF, DP: 32, PP: 1, TP: 2, MicroBatch: 4, NumMicro: 4, Loops: 64, Sharding: core.DPFS, OverlapDP: true}, 62.40},
	}
	t.Logf("%-10s %8s %8s %7s %9s %9s", "config", "sim", "paper", "ratio", "mem GiB", "min GiB")
	for _, row := range rows {
		r, err := Simulate(c, m, row.p)
		if err != nil {
			t.Errorf("%s: %v", row.name, err)
			continue
		}
		t.Logf("%-10s %8.2f %8.2f %7.2f %9.2f %9.2f", row.name,
			r.Throughput/1e12, row.paperT, r.Throughput/1e12/row.paperT,
			r.Memory.Total()/(1<<30), r.Memory.TotalMin()/(1<<30))
	}
}
