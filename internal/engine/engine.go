// Package engine simulates one training batch of a (cluster, model, plan)
// configuration by mapping the generated schedule onto the discrete-event
// simulator: compute operations on per-device compute streams,
// pipeline-parallel transfers, data-parallel reductions and weight
// reconstructions, tensor-parallel all-reduce overheads and the optimizer
// step. It reports batch time, throughput (paper Eq. 11 over time), GPU
// utilization and an overhead breakdown, plus the memory estimate.
//
// Implementation traits follow Section 5: the paper's implementation
// overlaps data- and pipeline-parallel communication on separate streams
// (Plan.OverlapDP/OverlapPP true); the Megatron-LM baseline (1F1B and
// depth-first) does not, paying per-message blocking costs on the compute
// stream that Section 5.2 and Appendix D.2 attribute to latency,
// synchronization and allocator stalls.
//
// Simulate is safe for concurrent use: the grid search fans plans out
// across a worker pool (internal/parallel), and by default schedule
// generation and memory estimates are memoized across calls (plans that
// differ only in TP, micro-batch size or DP width share device programs).
// Options.DisableCache and Options.ReferenceDES select the seed-faithful
// slow path used by the equivalence tests and the perf harness.
package engine

import (
	"fmt"
	"sync"

	"bfpp/internal/core"
	"bfpp/internal/cost"
	"bfpp/internal/des"
	"bfpp/internal/hw"
	"bfpp/internal/memsim"
	"bfpp/internal/model"
	"bfpp/internal/schedule"
)

// Params are the engine's calibration constants plus the cost-model
// selection; the type lives in internal/cost (the cost-model subsystem)
// and is aliased here so every existing signature that threads
// *engine.Params keeps compiling unchanged.
type Params = cost.Params

// Defaults returns the calibrated engine constants (and the default paper
// cost model, as the zero Model field).
func Defaults() Params { return cost.DefaultParams() }

// Result is the outcome of simulating one training batch.
type Result struct {
	// Plan is the simulated configuration.
	Plan core.Plan
	// BatchTime is the simulated wall time of one batch in seconds.
	BatchTime float64
	// FlopPerGPU is the per-GPU useful compute of the batch (Eq. 11).
	FlopPerGPU float64
	// Throughput is FlopPerGPU / BatchTime in flop/s.
	Throughput float64
	// Utilization is Throughput / peak flop/s.
	Utilization float64
	// ComputeTime is the busy compute-stream time of the slowest device.
	ComputeTime float64
	// PPCommTime and DPCommTime are total transfer times (worst device).
	PPCommTime, DPCommTime float64
	// Bubble is the analytic pipeline-bubble fraction (Eq. 9).
	Bubble float64
	// Memory is the per-GPU memory estimate.
	Memory memsim.Breakdown
	// Timeline is the simulated execution trace (nil unless requested).
	Timeline *des.Timeline
}

// String formats the headline numbers.
func (r Result) String() string {
	return fmt.Sprintf("%v: %.2f Tflop/s/GPU (%.1f%% util), batch %.3fs, mem %.1f GiB",
		r.Plan, r.Throughput/1e12, 100*r.Utilization, r.BatchTime,
		r.Memory.Total()/(1<<30))
}

// Options controls simulation extras.
type Options struct {
	// CaptureTimeline retains the full DES timeline in the result.
	CaptureTimeline bool
	// Params overrides the calibration constants when non-zero.
	Params *Params
	// DisableCache bypasses the schedule and memory memo caches, generating
	// and invariant-checking the schedule from scratch on every call (the
	// seed-faithful behavior). Used by equivalence tests and as the perf
	// harness baseline.
	DisableCache bool
	// ReferenceDES runs the simulator's reference rescanning loop
	// (des.Sim.RunReference) instead of the indexed fast path. Timelines
	// are bit-identical either way.
	ReferenceDES bool
}

// Simulate runs one batch with default options.
func Simulate(c hw.Cluster, m model.Transformer, p core.Plan) (Result, error) {
	return SimulateOpts(c, m, p, Options{})
}

// prepare runs every validation that precedes the discrete-event
// simulation — cluster and plan validity, the GPU budget, schedule
// generation and invariant checking — and returns the checked schedule.
// It is the single producer of SimulateOpts' pre-simulation errors, so
// Precheck reports exactly what a simulation would.
func prepare(c hw.Cluster, m model.Transformer, p core.Plan, opt Options) (*schedule.Schedule, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(m); err != nil {
		return nil, err
	}
	if p.GPUs() > c.NumGPUs() {
		return nil, fmt.Errorf("engine: plan needs %d GPUs, cluster has %d", p.GPUs(), c.NumGPUs())
	}
	if opt.DisableCache {
		sched, err := schedule.Generate(p)
		if err != nil {
			return nil, err
		}
		if err := schedule.Check(sched); err != nil {
			return nil, fmt.Errorf("engine: generated schedule invalid: %w", err)
		}
		return sched, nil
	}
	sched, err := schedule.Cached(p)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	return sched, nil
}

// Precheck returns the error SimulateOpts would return before reaching the
// simulator — nil when the configuration simulates cleanly (a registered
// generator's checked schedule cannot deadlock the DES). The grid search
// uses it to surface per-candidate errors deterministically even for
// candidates the branch-and-bound never simulates; schedule generation is
// memoized, so a subsequent simulation pays nothing extra.
func Precheck(c hw.Cluster, m model.Transformer, p core.Plan, opt Options) error {
	_, err := prepare(c, m, p, opt)
	return err
}

// SimulateOpts runs one batch of the configuration and returns the result.
func SimulateOpts(c hw.Cluster, m model.Transformer, p core.Plan, opt Options) (Result, error) {
	sched, err := prepare(c, m, p, opt)
	if err != nil {
		return Result{}, err
	}
	par := Defaults()
	if opt.Params != nil {
		par = *opt.Params
	}

	b := builder{c: c, m: m, p: p, par: par, sched: sched, reference: opt.ReferenceDES}
	tl, err := b.run()
	if err != nil {
		b.release()
		return Result{}, err
	}

	mem := memsim.CachedEstimate
	if opt.DisableCache {
		mem = memsim.Estimate
	}
	res := Result{
		Plan:       p,
		BatchTime:  tl.Makespan,
		FlopPerGPU: m.BatchFlopPerGPU(p.MicroBatch, p.NumMicro, p.PP, p.TP),
		Bubble:     p.Bubble(),
		Memory:     mem(m, p),
	}
	res.Throughput = res.FlopPerGPU / res.BatchTime
	res.Utilization = res.Throughput / c.GPU.PeakFlops
	for dev := range sched.Devices {
		if t := tl.BusyTime(b.computeStream[dev]); t > res.ComputeTime {
			res.ComputeTime = t
		}
		if b.ppStream != nil {
			if t := tl.BusyTime(b.ppStream[dev]); t > res.PPCommTime {
				res.PPCommTime = t
			}
		}
		if b.dpStream != nil {
			if t := tl.BusyTime(b.dpStream[dev]); t > res.DPCommTime {
				res.DPCommTime = t
			}
		}
	}
	if b.ppStream == nil {
		// Transfers rode the compute streams; account them by class.
		res.PPCommTime = tl.ClassTime(-1, des.ClassSend)
	}
	if b.dpStream == nil {
		res.DPCommTime = tl.ClassTime(-1, des.ClassReduce) + tl.ClassTime(-1, des.ClassRestore)
	}
	if opt.CaptureTimeline {
		res.Timeline = tl
	}
	b.release()
	return res, nil
}

// builder assembles the DES model.
type builder struct {
	c         hw.Cluster
	m         model.Transformer
	p         core.Plan
	par       Params
	sched     *schedule.Schedule
	reference bool

	sim           *des.Sim
	scratch       *buildScratch
	computeStream []des.StreamID
	ppStream      []des.StreamID // nil when PP transfers ride the compute stream
	dpStream      []des.StreamID // nil when DP ops ride the compute stream

	// Cost constants derived once.
	tFwd, tBwd float64 // per stage per micro-batch
	tTransfer  float64 // PP transfer wire time
	tPPStall   float64 // non-overlapped per-message blocking stall
	tReduce    float64 // per-stage gradient reduction
	tRestore   float64 // per-stage weight reconstruction (DP-FS)
	tOpt       float64 // optimizer step
	nStages    int
}

const noTask = des.TaskID(-1)

// simPool recycles simulators across simulations: a Reset Sim keeps its
// task, queue and dependency storage, so the steady-state build path of a
// sweep allocates almost nothing. Sims are handed to exactly one goroutine
// at a time; the returned Timeline shares nothing with the pooled Sim.
var simPool = sync.Pool{New: func() any { return des.New() }}

// buildScratch holds the builder's per-simulation tracking slices (stream
// ids, per-(stage, micro) task and transfer trackers, restore/reduce
// bookkeeping). Pooling it — analogous to the des.Sim pool — takes the
// steady-state Simulate build path to near-zero allocations.
type buildScratch struct {
	compute, pp, dp []des.StreamID
	fwdTask         []des.TaskID
	bwdTask         []des.TaskID
	fwdSend         []des.TaskID
	bwdSend         []des.TaskID
	restoreIdx      []int
	restores        []des.TaskID
	restoreConsumer []des.TaskID
	reduces         []des.TaskID
	deps            []des.TaskID
}

var scratchPool = sync.Pool{New: func() any { return &buildScratch{} }}

// release returns the builder's pooled resources; the builder must not be
// used afterwards. The returned Timeline shares nothing with the scratch.
func (b *builder) release() {
	if b.scratch == nil {
		return
	}
	scratchPool.Put(b.scratch)
	b.scratch = nil
	b.computeStream, b.ppStream, b.dpStream = nil, nil, nil
}

// grow resizes a reusable buffer to length n, reallocating only when the
// retained capacity is too small. Contents are unspecified; callers clear
// what they need.
func grow[T any](buf *[]T, n int) []T {
	if cap(*buf) < n {
		*buf = make([]T, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// maxCachedDev bounds the precomputed stream-name table; device indexes
// beyond it (wider than any paper configuration) fall back to Sprintf.
const maxCachedDev = 128

// streamNames interns the per-device stream names so the per-simulation
// fmt.Sprintf calls the profiler flagged (ROADMAP alloc hot spot) vanish
// from the steady state.
var streamNames = func() (t [3][maxCachedDev]string) {
	for d := 0; d < maxCachedDev; d++ {
		t[0][d] = fmt.Sprintf("gpu%d/compute", d)
		t[1][d] = fmt.Sprintf("gpu%d/pp", d)
		t[2][d] = fmt.Sprintf("gpu%d/dp", d)
	}
	return
}()

var streamKinds = [3]string{"compute", "pp", "dp"}

// streamName returns the interned device stream name for kind (0 compute,
// 1 pp, 2 dp).
func streamName(kind, dev int) string {
	if dev < maxCachedDev {
		return streamNames[kind][dev]
	}
	return fmt.Sprintf("gpu%d/%s", dev, streamKinds[kind])
}

func (b *builder) run() (*des.Timeline, error) {
	p := b.p
	b.deriveCosts()
	b.sim = simPool.Get().(*des.Sim)
	b.sim.Reset()
	defer func() {
		simPool.Put(b.sim)
		b.sim = nil
	}()

	nDev := len(b.sched.Devices)
	sc := scratchPool.Get().(*buildScratch)
	b.scratch = sc
	b.computeStream = grow(&sc.compute, nDev)
	for d := 0; d < nDev; d++ {
		b.computeStream[d] = b.sim.Stream(streamName(0, d))
	}
	if p.OverlapPP && p.Method.Pipelined() && p.PP > 1 {
		b.ppStream = grow(&sc.pp, nDev)
		for d := 0; d < nDev; d++ {
			b.ppStream[d] = b.sim.Stream(streamName(1, d))
		}
	}
	hasDPOps := p.DP > 1 || p.Sharding == core.DPFS
	if p.OverlapDP && hasDPOps {
		b.dpStream = grow(&sc.dp, nDev)
		for d := 0; d < nDev; d++ {
			b.dpStream[d] = b.sim.Stream(streamName(2, d))
		}
	}

	// Pre-size the simulator: every schedule op becomes one task, plus one
	// transfer task per cross-device stage boundary crossing (with the
	// looping placement every adjacent stage pair is cross-device when
	// PP > 1). Each task carries a couple of dependency edges, and the
	// transfer wiring rewrites its consumers' lists once more.
	var nOps int
	for _, prog := range b.sched.Devices {
		nOps += len(prog)
	}
	nTransfers := 0
	if p.Method.Pipelined() && p.PP > 1 {
		nTransfers = 2 * (b.nStages - 1) * p.NumMicro
	}
	b.sim.Reserve(nOps+nTransfers, 2*nOps+4*nTransfers)
	for dev, prog := range b.sched.Devices {
		b.sim.ReserveStream(b.computeStream[dev], len(prog))
		if b.ppStream != nil {
			b.sim.ReserveStream(b.ppStream[dev], len(prog))
		}
		if b.dpStream != nil {
			b.sim.ReserveStream(b.dpStream[dev], len(prog))
		}
	}

	// Compute task and inbound-transfer trackers per (stage, micro),
	// flattened to pooled slices: the hot path replaces four map lookups
	// per op with array indexing, and the slices hold only integer ids so
	// their reuse costs no pointer-aware clearing.
	nm := p.NumMicro
	nk := b.nStages * nm
	fwdTask := grow(&sc.fwdTask, nk) // compute task per (stage, micro)
	bwdTask := grow(&sc.bwdTask, nk)
	fwdSend := grow(&sc.fwdSend, nk) // transfer feeding Forward(stage, micro)
	bwdSend := grow(&sc.bwdSend, nk) // transfer feeding Backward(stage, micro)
	for i := 0; i < nk; i++ {
		fwdTask[i], bwdTask[i], fwdSend[i], bwdSend[i] = noTask, noTask, noTask, noTask
	}
	key := func(stage, micro int) int { return stage*nm + micro }

	// Per-device restore bookkeeping, reused across devices. restoreIdx is
	// keyed by (stage, micro) with micro in [-1, NumMicro): index
	// stage*(nm+1) + micro + 1.
	restoreIdx := grow(&sc.restoreIdx, b.nStages*(nm+1))
	restores := sc.restores[:0]               // device restores in order (double buffering)
	restoreConsumer := sc.restoreConsumer[:0] // per restore: last consumer
	reduces := sc.reduces[:0]
	deps := sc.deps[:0]

	// Pass 1: create tasks in program order; wire same-device dependencies
	// immediately, recording cross-device endpoints for pass 2.
	for dev, prog := range b.sched.Devices {
		comp := b.computeStream[dev]
		sendStream := comp
		if b.ppStream != nil {
			sendStream = b.ppStream[dev]
		}
		dpStream := comp
		if b.dpStream != nil {
			dpStream = b.dpStream[dev]
		}
		for i := range restoreIdx {
			restoreIdx[i] = -1
		}
		restores = restores[:0]
		restoreConsumer = restoreConsumer[:0]
		reduces = reduces[:0]

		lastRestoreFor := func(stage, micro int) (des.TaskID, int, bool) {
			if i := restoreIdx[stage*(nm+1)+micro+1]; i >= 0 {
				return restores[i], i, true
			}
			if i := restoreIdx[stage*(nm+1)]; i >= 0 { // per-batch restore (micro -1)
				return restores[i], i, true
			}
			return 0, 0, false
		}

		for _, op := range prog {
			switch op.Kind {
			case schedule.Forward, schedule.Backward:
				class := des.ClassFwd
				dur := b.tFwd
				if op.Kind == schedule.Backward {
					class, dur = des.ClassBwd, b.tBwd
				}
				deps = deps[:0]
				rt, ri, hasRestore := lastRestoreFor(op.Stage, op.Micro)
				if hasRestore {
					deps = append(deps, rt)
				}
				t := b.sim.AddTagged(comp, dur, class, op.Stage, op.Micro, deps...)
				if op.Kind == schedule.Forward {
					fwdTask[key(op.Stage, op.Micro)] = t
				} else {
					bwdTask[key(op.Stage, op.Micro)] = t
				}
				if hasRestore {
					restoreConsumer[ri] = t
				}
				// Emit the outgoing transfer produced by this op.
				if next, ok := b.transferOutOf(op); ok {
					dur := b.tTransfer
					if b.ppStream == nil {
						dur += b.tPPStall
					}
					st := b.sim.AddTagged(sendStream, dur, des.ClassSend, op.Stage, op.Micro, t)
					if op.Kind == schedule.Forward {
						fwdSend[next] = st
					} else {
						bwdSend[next] = st
					}
				}
			case schedule.Restore:
				deps = deps[:0]
				// Double buffering: this restore may only start once the
				// buffer two restores back has been consumed.
				if len(restores) >= 2 {
					if c := restoreConsumer[len(restores)-2]; c != noTask {
						deps = append(deps, c)
					}
				}
				t := b.sim.AddTagged(dpStream, b.tRestore, des.ClassRestore, op.Stage, op.Micro, deps...)
				restoreIdx[op.Stage*(nm+1)+op.Micro+1] = len(restores)
				restores = append(restores, t)
				restoreConsumer = append(restoreConsumer, noTask)
			case schedule.Reduce:
				deps = deps[:0]
				if op.Micro >= 0 {
					if bt := bwdTask[key(op.Stage, op.Micro)]; bt != noTask {
						deps = append(deps, bt)
					}
				} else if bt := bwdTask[key(op.Stage, p.NumMicro-1)]; bt != noTask {
					// Per-batch reduce waits for the stage's last backward.
					deps = append(deps, bt)
				}
				t := b.sim.AddTagged(dpStream, b.tReduce, des.ClassReduce, op.Stage, op.Micro, deps...)
				reduces = append(reduces, t)
			case schedule.Optimize:
				b.sim.AddTagged(comp, b.tOpt, des.ClassOpt, -1, -1, reduces...)
			}
		}
	}

	// Hand the (possibly re-grown) append-mode buffers back to the pooled
	// scratch for the next simulation.
	sc.restores, sc.restoreConsumer, sc.reduces, sc.deps = restores, restoreConsumer, reduces, deps

	// Pass 2: wire cross-device transfer dependencies. The consuming op
	// waits on the transfer directly; an in-order compute stream therefore
	// blocks exactly like a synchronous receive. Index order makes the
	// wiring order deterministic (the timeline is order-independent anyway).
	for k, send := range fwdSend {
		if send == noTask {
			continue
		}
		if t := fwdTask[k]; t != noTask {
			b.sim.AddDep(t, send)
		}
	}
	for k, send := range bwdSend {
		if send == noTask {
			continue
		}
		if t := bwdTask[k]; t != noTask {
			b.sim.AddDep(t, send)
		}
	}
	if b.reference {
		return b.sim.RunReference()
	}
	return b.sim.Run()
}

// transferOutOf returns the (stage, micro) key index of the op consuming
// this op's cross-device output, if any.
func (b *builder) transferOutOf(op schedule.Op) (int, bool) {
	if !b.p.Method.Pipelined() || b.p.PP == 1 {
		return 0, false
	}
	if op.Kind == schedule.Forward {
		if op.Stage < b.nStages-1 && b.p.StageDevice(op.Stage+1) != b.p.StageDevice(op.Stage) {
			return (op.Stage+1)*b.p.NumMicro + op.Micro, true
		}
		return 0, false
	}
	if op.Stage > 0 && b.p.StageDevice(op.Stage-1) != b.p.StageDevice(op.Stage) {
		return (op.Stage-1)*b.p.NumMicro + op.Micro, true
	}
	return 0, false
}

// deriveCosts computes the per-op durations from the hardware and model.
func (b *builder) deriveCosts() {
	b.nStages = b.p.NumStages()
	costs := DeriveCosts(b.c, b.m, b.p, b.par)
	b.tFwd, b.tBwd = costs.Fwd, costs.Bwd
	b.tTransfer, b.tPPStall = costs.Transfer, costs.PPStall
	b.tReduce, b.tRestore, b.tOpt = costs.Reduce, costs.Restore, costs.Opt
}

// DeriveCosts computes the per-operation durations the simulator charges a
// (cluster, model, plan) configuration, under the cost model selected by
// par.Model (nil selects the paper formulas). It is exported as the single
// cost producer shared with the analytic lower-bound evaluator
// (internal/analytic and the generators' Traits.StepLB hooks), which must
// price plans with exactly the simulator's costs to stay admissible — a
// guarantee that holds for every registered cost model, because both sides
// call this one function. The formulas themselves live in internal/cost.
func DeriveCosts(c hw.Cluster, m model.Transformer, p core.Plan, par Params) schedule.StepCosts {
	return cost.Derive(c, m, p, par)
}
