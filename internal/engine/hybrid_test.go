package engine

import (
	"testing"

	"bfpp/internal/core"
	"bfpp/internal/hw"
	"bfpp/internal/model"
)

// Section 4.2's conjecture, verified: the depth-first schedule's network
// problem "can be addressed by running with sequences of more than N_PP
// micro-batches". With overlap enabled, the hybrid's utilization improves
// monotonically as the sequence grows from N_PP (depth-first ordering)
// toward N_mb (breadth-first ordering), because the extra in-flight
// micro-batches absorb the transfer delays.
func TestHybridSequenceRecoversOverlap(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model52B()
	util := func(seq int) float64 {
		p := core.Plan{Method: core.Hybrid, DP: 1, PP: 8, TP: 8,
			MicroBatch: 1, NumMicro: 64, Loops: 8, Sequence: seq,
			OverlapDP: true, OverlapPP: true}
		r, err := Simulate(c, m, p)
		if err != nil {
			t.Fatalf("seq=%d: %v", seq, err)
		}
		return r.Utilization
	}
	u8, u16, u32, u64 := util(8), util(16), util(32), util(64)
	const eps = 1e-3 // allow floating-point ties once the overlap saturates
	if u16 < u8-eps || u32 < u16-eps || u64 < u32-eps {
		t.Errorf("hybrid utilization should not regress with sequence length: %.4f %.4f %.4f %.4f",
			u8, u16, u32, u64)
	}
	if u64 <= u8 {
		t.Errorf("longer sequences should improve on seq=PP: %.4f vs %.4f", u64, u8)
	}

	// The overlapped hybrid at full sequence approaches the breadth-first
	// result, and even at sequence = N_PP it beats the non-overlapped
	// depth-first implementation (overlap is the difference).
	bf, err := Simulate(c, m, core.Plan{Method: core.BreadthFirst, DP: 1, PP: 8, TP: 8,
		MicroBatch: 1, NumMicro: 64, Loops: 8, OverlapDP: true, OverlapPP: true})
	if err != nil {
		t.Fatal(err)
	}
	if u64 < 0.93*bf.Utilization {
		t.Errorf("full-sequence hybrid (%.3f) should approach breadth-first (%.3f)",
			u64, bf.Utilization)
	}
	df, err := Simulate(c, m, core.Plan{Method: core.DepthFirst, DP: 1, PP: 8, TP: 8,
		MicroBatch: 1, NumMicro: 64, Loops: 8})
	if err != nil {
		t.Fatal(err)
	}
	if u8 <= df.Utilization {
		t.Errorf("overlapped hybrid at seq=PP (%.3f) should beat non-overlapped depth-first (%.3f)",
			u8, df.Utilization)
	}
}
