package search

import (
	"context"
	"sync"
	"testing"

	"bfpp/internal/core"
	"bfpp/internal/engine"
	"bfpp/internal/hw"
	"bfpp/internal/model"
)

// TestOptimizeParallelMatchesBaseline runs the same (family, batch) search
// through the seed-faithful serial evaluator and through the worker pool at
// several widths, asserting identical winners, throughputs and candidate
// counts.
func TestOptimizeParallelMatchesBaseline(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model6p6B()
	for _, f := range Families() {
		want, err := Optimize(context.Background(), c, m, f, 64, Options{Baseline: true})
		if err != nil {
			t.Fatalf("%v baseline: %v", f, err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			got, err := Optimize(context.Background(), c, m, f, 64, Options{Workers: workers})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", f, workers, err)
			}
			if got.Plan != want.Plan {
				t.Errorf("%v workers=%d: plan %v != %v", f, workers, got.Plan, want.Plan)
			}
			if got.Throughput != want.Throughput || got.Configs != want.Configs {
				t.Errorf("%v workers=%d: (%.6g, %d) != (%.6g, %d)", f, workers,
					got.Throughput, got.Configs, want.Throughput, want.Configs)
			}
			if got.Result != want.Result {
				t.Errorf("%v workers=%d: full result differs", f, workers)
			}
		}
	}
}

// TestSweepParallelMatchesBaseline compares the formatted Table E output —
// the acceptance criterion is byte-for-byte identity, including infeasible
// batch skipping.
func TestSweepParallelMatchesBaseline(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model6p6B()
	batches := []int{1, 32, 64, 96} // batch 1 is infeasible and must be skipped
	baseline := map[Family][]Best{}
	parallelRes := map[Family][]Best{}
	for _, f := range Families() {
		b, err := Sweep(context.Background(), c, m, f, batches, Options{Baseline: true})
		if err != nil {
			t.Fatalf("%v baseline: %v", f, err)
		}
		baseline[f] = b
		p, err := Sweep(context.Background(), c, m, f, batches, Options{Workers: 4})
		if err != nil {
			t.Fatalf("%v parallel: %v", f, err)
		}
		parallelRes[f] = p
	}
	want := Table("equivalence", baseline)
	got := Table("equivalence", parallelRes)
	if got != want {
		t.Errorf("parallel Table output differs from serial baseline:\n--- baseline ---\n%s--- parallel ---\n%s", want, got)
	}
}

// TestPickBestTieStable pins the deterministic tie-break: among equal
// maximal throughputs the lowest-indexed result wins, exactly like the
// serial loop's strict `>` comparison.
func TestPickBestTieStable(t *testing.T) {
	mk := func(tp float64, dp int) engine.Result {
		return engine.Result{Plan: core.Plan{DP: dp}, Throughput: tp}
	}
	results := []engine.Result{mk(1, 1), mk(3, 2), mk(3, 3), mk(2, 4), mk(3, 5)}
	best := pickBest(results)
	if best.Plan.DP != 2 {
		t.Errorf("tie-break picked DP=%d, want the first maximal result (DP=2)", best.Plan.DP)
	}
	if best.Configs != len(results) {
		t.Errorf("Configs = %d, want %d", best.Configs, len(results))
	}
	// Strictly increasing throughputs: last wins.
	if got := pickBest([]engine.Result{mk(1, 1), mk(2, 2), mk(3, 3)}); got.Plan.DP != 3 {
		t.Errorf("max selection picked DP=%d, want 3", got.Plan.DP)
	}
}

// TestOptimizeConcurrentCallers exercises concurrent top-level searches
// sharing the schedule/memsim caches (run under -race in ci.sh).
func TestOptimizeConcurrentCallers(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model6p6B()
	want, err := Optimize(context.Background(), c, m, FamilyBreadthFirst, 64, Options{Baseline: true})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := Optimize(context.Background(), c, m, FamilyBreadthFirst, 64, Options{Workers: 2})
			if err != nil {
				errs[i] = err
				return
			}
			if got.Result != want.Result || got.Configs != want.Configs {
				t.Errorf("concurrent caller %d diverged", i)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
