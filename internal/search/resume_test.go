package search

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"bfpp/internal/hw"
	"bfpp/internal/model"
)

// TestCheckpointResumeByteIdentical is the sweep-journaling acceptance
// criterion: a sweep restarted with any subset of the checkpoints the
// first run emitted produces byte-identical search.Table output, and the
// resumed groups are not re-enumerated. The checkpoints cross a JSON
// round-trip, because that is how the service journals them.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model6p6B()
	batches := []int{1, 32, 64, 128} // batch 1 is infeasible: never checkpointed
	fams := AllFamilies()

	type entry struct {
		Key  GroupKey `json:"key"`
		Best Best     `json:"best"`
	}
	var entries []entry
	full, err := SweepAll(context.Background(), c, m, fams, batches, Options{
		Workers: 4,
		Checkpoint: func(k GroupKey, b Best) {
			entries = append(entries, entry{k, b}) // serialized by the search
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Table("resume", full)

	// Every resolved (family, batch) cell checkpoints exactly once, and
	// nothing else does.
	cells := map[GroupKey]bool{}
	for f, bests := range full {
		for _, b := range bests {
			cells[GroupKey{Family: f.Info().Key, Batch: b.Plan.BatchSize()}] = true
		}
	}
	seen := map[GroupKey]bool{}
	for _, e := range entries {
		if seen[e.Key] {
			t.Fatalf("group %+v checkpointed twice", e.Key)
		}
		seen[e.Key] = true
		if !cells[e.Key] {
			t.Fatalf("checkpoint for %+v, which has no table row", e.Key)
		}
	}
	if len(seen) != len(cells) {
		t.Fatalf("checkpointed %d groups, table has %d", len(seen), len(cells))
	}

	// Journal round-trip: the service stores checkpoints as JSON.
	blob, err := json.Marshal(entries)
	if err != nil {
		t.Fatal(err)
	}
	var replayed []entry
	if err := json.Unmarshal(blob, &replayed); err != nil {
		t.Fatal(err)
	}

	for _, take := range []int{0, 1, len(replayed) / 2, len(replayed)} {
		resume := map[GroupKey]Best{}
		for _, e := range replayed[:take] {
			resume[e.Key] = e.Best
		}
		var recheck int
		stats := &Stats{}
		got, err := SweepAll(context.Background(), c, m, fams, batches, Options{
			Workers: 4,
			Resume:  resume,
			Stats:   stats,
			Checkpoint: func(k GroupKey, b Best) {
				if _, ok := resume[k]; ok {
					t.Errorf("resumed group %+v checkpointed again", k)
				}
				recheck++
			},
		})
		if err != nil {
			t.Fatalf("take=%d: %v", take, err)
		}
		if s := Table("resume", got); s != want {
			t.Errorf("take=%d: resumed Table differs:\n--- full ---\n%s--- resumed ---\n%s", take, want, s)
		}
		if recheck != len(cells)-take {
			t.Errorf("take=%d: %d fresh checkpoints, want %d", take, recheck, len(cells)-take)
		}
		if take == len(replayed) && stats.Enumerated.Load() != 0 {
			// A fully-journaled sweep only re-enumerates the infeasible
			// (never-checkpointed) cells, which enumerate to nothing.
			t.Errorf("full resume still enumerated %d candidates", stats.Enumerated.Load())
		}
	}
}

// TestResumeOptimize pins that a journaled single-cell search returns the
// recorded winner without enumerating.
func TestResumeOptimize(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model6p6B()
	f := FamilyBreadthFirst

	want, err := Optimize(context.Background(), c, m, f, 64, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats := &Stats{}
	got, err := Optimize(context.Background(), c, m, f, 64, Options{
		Stats:  stats,
		Resume: map[GroupKey]Best{{Family: f.Info().Key, Batch: 64}: want},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("resumed Optimize differs: %+v vs %+v", got, want)
	}
	if stats.Enumerated.Load() != 0 {
		t.Fatalf("resumed Optimize enumerated %d candidates", stats.Enumerated.Load())
	}
}

// TestResumeInfeasibleTyped pins the ErrInfeasible classification the
// shard coordinator relies on to tell "nothing fits" from real faults.
func TestResumeInfeasibleTyped(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model6p6B()
	_, err := Optimize(context.Background(), c, m, FamilyBreadthFirst, 1, Options{})
	if err == nil {
		t.Fatal("batch 1 unexpectedly feasible")
	}
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("infeasible search error %v is not ErrInfeasible", err)
	}
	_, err = SweepAll(context.Background(), c, m, AllFamilies(), []int{1}, Options{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("infeasible sweep error %v is not ErrInfeasible", err)
	}
}

// TestCheckpointCancelledGroupsNotEmitted pins the crash-safety side of
// the contract: groups cut off by cancellation are never checkpointed, so
// a journal can only ever hold fully-resolved winners.
func TestCheckpointCancelledGroupsNotEmitted(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model6p6B()
	ctx, cancel := context.WithCancel(context.Background())
	fired := 0
	_, err := SweepAll(ctx, c, m, AllFamilies(), []int{32, 64, 128}, Options{
		Workers: 2,
		Checkpoint: func(k GroupKey, b Best) {
			fired++
			cancel() // kill the sweep at the first resolved group
		},
	})
	if err == nil {
		t.Skip("sweep finished before cancellation landed")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// All groups: 3 batches x all families. The run was cancelled after
	// the first checkpoint, so not every group may have fired; the ones
	// that did were fully resolved before the cancel.
	total := len(AllFamilies()) * 3
	if fired >= total {
		t.Fatalf("all %d groups checkpointed despite cancellation", total)
	}
}
