package search

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"bfpp/internal/hw"
	"bfpp/internal/model"
)

// TestSweepAllCancelMidFlight cancels a sweep from inside its own progress
// callback and asserts it returns context.Canceled within a bounded
// wall-clock time and leaks no pool goroutines.
func TestSweepAllCancelMidFlight(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model6p6B()
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	opt := Options{
		Workers: 4,
		NoPrune: true, // maximize remaining work so cancellation really cuts it short
		Progress: func(ProgressSnapshot) {
			if calls.Add(1) == 3 {
				cancel()
			}
		},
	}
	start := time.Now()
	_, err := SweepAll(ctx, c, m, AllFamilies(), []int{32, 64, 96, 128, 192, 256}, opt)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// "Promptly": an in-flight simulation is a few ms; the full unpruned
	// sweep is tens of seconds. Ten seconds of slack keeps slow CI green
	// while still distinguishing "drained" from "ran to completion".
	if elapsed > 10*time.Second {
		t.Errorf("cancelled sweep took %v, want prompt return", elapsed)
	}
	for attempt := 0; runtime.NumGoroutine() > before; attempt++ {
		if attempt > 100 {
			t.Fatalf("pool goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSweepAllCancelReturnsIncumbents pins graceful degradation at the
// search layer: a sweep cancelled mid-flight returns ctx.Err() AND the
// incumbents-so-far — every entry a fully-simulated, feasible
// configuration whose throughput cannot exceed the full run's winner.
func TestSweepAllCancelReturnsIncumbents(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model6p6B()
	fams := AllFamilies()
	batches := []int{32, 64, 96, 128}

	full, err := SweepAll(context.Background(), c, m, fams, batches, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	fullBest := map[string]float64{} // family key + batch -> winning throughput
	for f, bs := range full {
		for _, b := range bs {
			fullBest[fmt.Sprintf("%s@%d", f.Info().Key, b.Plan.BatchSize())] = b.Throughput
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := Options{
		Workers: 4,
		NoPrune: true, // plenty of work left when the cancel lands
		Progress: func(p ProgressSnapshot) {
			if p.Simulated >= 8 {
				cancel()
			}
		},
	}
	partial, err := SweepAll(ctx, c, m, fams, batches, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(partial) == 0 {
		t.Fatal("no incumbents returned despite >= 8 completed simulations")
	}
	seen := 0
	for f, bs := range partial {
		for _, b := range bs {
			seen++
			if b.Throughput <= 0 {
				t.Errorf("%v: partial incumbent has throughput %v", f, b.Throughput)
			}
			// An incumbent is a genuine simulation result, so it can never
			// beat the exhaustive winner for the same (family, batch).
			if want, ok := fullBest[fmt.Sprintf("%s@%d", f.Info().Key, b.Plan.BatchSize())]; ok && b.Throughput > want {
				t.Errorf("%v %v: partial throughput %v exceeds full-run best %v",
					f, b.Plan, b.Throughput, want)
			}
		}
	}
	t.Logf("partial table carried %d incumbents across %d families", seen, len(partial))
}

// TestOptimizeCancelledBeforeStart asserts an already-cancelled context
// fails fast with ctx.Err() — not with a misleading "no feasible
// configuration" from the truncated enumeration.
func TestOptimizeCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Optimize(ctx, hw.PaperCluster(), model.Model6p6B(), FamilyBreadthFirst, 64, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := Sweep(ctx, hw.PaperCluster(), model.Model6p6B(), FamilyBreadthFirst, []int{64}, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sweep err = %v, want context.Canceled", err)
	}
	if _, err := SweepAll(ctx, hw.PaperCluster(), model.Model6p6B(), Families(), []int{64}, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SweepAll err = %v, want context.Canceled", err)
	}
}

// TestCompletedBeforeCancelUnaffected pins that cancelling after the
// search returned changes nothing: the result equals the background-ctx
// run bit for bit.
func TestCompletedBeforeCancelUnaffected(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model6p6B()
	want, err := Optimize(context.Background(), c, m, FamilyBreadthFirst, 64, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got, err := Optimize(ctx, c, m, FamilyBreadthFirst, 64, Options{Workers: 4})
	cancel() // after completion: must not matter
	if err != nil {
		t.Fatal(err)
	}
	if got.Result != want.Result || got.Configs != want.Configs {
		t.Errorf("post-completion cancel changed the result: %+v != %+v", got, want)
	}
}

// TestProgressSnapshots asserts the Progress callback fires, is monotone
// in resolved candidates and ends exactly at the final Stats totals.
func TestProgressSnapshots(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model6p6B()
	stats := &Stats{}
	var last atomic.Int64
	var calls atomic.Int64
	_, err := SweepAll(context.Background(), c, m, Families(), []int{32, 64}, Options{
		Workers: 4,
		Stats:   stats,
		Progress: func(p ProgressSnapshot) {
			calls.Add(1)
			done := p.Done()
			if prev := last.Load(); done < prev {
				t.Errorf("progress went backwards: %d -> %d", prev, done)
			}
			last.Store(done)
			if p.Done() > p.Enumerated {
				t.Errorf("done %d exceeds enumerated %d", p.Done(), p.Enumerated)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() == 0 {
		t.Fatal("progress callback never fired")
	}
	if got, want := last.Load(), stats.Snapshot().Done(); got != want {
		t.Errorf("final progress %d != stats done %d", got, want)
	}
}

// TestProgressWithoutStats pins that Progress works with Options.Stats
// nil (a private counter set is allocated).
func TestProgressWithoutStats(t *testing.T) {
	var calls atomic.Int64
	_, err := Optimize(context.Background(), hw.PaperCluster(), model.Model6p6B(),
		FamilyNoPipeline, 64, Options{Progress: func(ProgressSnapshot) { calls.Add(1) }})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() == 0 {
		t.Fatal("progress callback never fired without Stats")
	}
}
