package search

import (
	"context"
	"strings"
	"testing"

	"bfpp/internal/core"
	"bfpp/internal/hw"
	"bfpp/internal/model"
)

func TestEnumerateProducesValidPlans(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model52B()
	for _, f := range Families() {
		plans := Enumerate(context.Background(), c, m, f, 64, Options{})
		if len(plans) == 0 {
			t.Errorf("%v: no plans at batch 64", f)
			continue
		}
		for _, p := range plans {
			if err := p.Validate(m); err != nil {
				t.Errorf("%v: invalid plan %v: %v", f, p, err)
			}
			if p.BatchSize() != 64 {
				t.Errorf("%v: plan %v has batch %d, want 64", f, p, p.BatchSize())
			}
			if p.GPUs() > c.NumGPUs() {
				t.Errorf("%v: plan %v oversubscribes", f, p)
			}
		}
	}
}

func TestEnumerateRespectsFamilies(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model52B()
	for _, p := range Enumerate(context.Background(), c, m, FamilyDepthFirst, 64, Options{}) {
		if p.Method != core.DepthFirst || p.OverlapDP || p.Sharding == core.DPFS {
			t.Errorf("depth-first family produced %v", p)
		}
	}
	for _, p := range Enumerate(context.Background(), c, m, FamilyNoPipeline, 64, Options{}) {
		if p.PP != 1 {
			t.Errorf("no-pipeline family produced PP=%d", p.PP)
		}
	}
	sawGPipe, saw1F1B := false, false
	for _, p := range Enumerate(context.Background(), c, m, FamilyNonLooped, 64, Options{}) {
		if p.Loops != 1 {
			t.Errorf("non-looped family produced Loops=%d", p.Loops)
		}
		switch p.Method {
		case core.GPipe:
			sawGPipe = true
		case core.OneFOneB:
			saw1F1B = true
		default:
			t.Errorf("non-looped family produced %v", p.Method)
		}
	}
	if !sawGPipe || !saw1F1B {
		t.Error("non-looped family should cover both implementations")
	}
}

// Section 5.3 headline: the optimized breadth-first configuration is the
// fastest method at small batch sizes (paper: 43-53% over the baselines at
// B=8-9), while no-pipeline catches up at large batches.
func TestFigure7Shape52B(t *testing.T) {
	if testing.Short() {
		t.Skip("search sweep")
	}
	c := hw.PaperCluster()
	m := model.Model52B()
	get := func(f Family, batch int) Best {
		b, err := Optimize(context.Background(), c, m, f, batch, Options{})
		if err != nil {
			t.Fatalf("%v at %d: %v", f, batch, err)
		}
		return b
	}
	bf8 := get(FamilyBreadthFirst, 8)
	df8 := get(FamilyDepthFirst, 8)
	nl8 := get(FamilyNonLooped, 8)
	np8 := get(FamilyNoPipeline, 8)
	if bf8.Throughput < 1.2*df8.Throughput {
		t.Errorf("BF should beat DF by >20%% at B=8: %.1f vs %.1f",
			bf8.Throughput/1e12, df8.Throughput/1e12)
	}
	if bf8.Throughput < 1.2*nl8.Throughput {
		t.Errorf("BF should beat non-looped by >20%% at B=8: %.1f vs %.1f",
			bf8.Throughput/1e12, nl8.Throughput/1e12)
	}
	if np8.Throughput > 0.5*bf8.Throughput {
		t.Errorf("no-pipeline should collapse at B=8: %.1f vs %.1f",
			np8.Throughput/1e12, bf8.Throughput/1e12)
	}
	// At B=512 the methods converge (paper: 55-62 Tflop/s, a <=1.25x
	// spread vs the >=2x spread at B=8), and the breadth-first advantage
	// over no-pipeline shrinks to near parity.
	bf512 := get(FamilyBreadthFirst, 512)
	df512 := get(FamilyDepthFirst, 512)
	nl512 := get(FamilyNonLooped, 512)
	np512 := get(FamilyNoPipeline, 512)
	lo, hi := np512.Throughput, np512.Throughput
	for _, b := range []Best{bf512, df512, nl512} {
		if b.Throughput < lo {
			lo = b.Throughput
		}
		if b.Throughput > hi {
			hi = b.Throughput
		}
	}
	if hi/lo > 1.25 {
		t.Errorf("methods should converge at B=512: spread %.2fx", hi/lo)
	}
	if bf512.Throughput > 1.2*np512.Throughput {
		t.Errorf("BF advantage at B=512 should be small: %.1f vs %.1f",
			bf512.Throughput/1e12, np512.Throughput/1e12)
	}
	if adv8, adv512 := bf8.Throughput/np8.Throughput, bf512.Throughput/np512.Throughput; adv512 > adv8/2 {
		t.Errorf("BF advantage should shrink with batch: %.2fx at B=8 vs %.2fx at B=512", adv8, adv512)
	}
	// Utilization bands: paper sees ~29-50%% across the sweep.
	if bf8.Utilization < 0.22 || bf8.Utilization > 0.45 {
		t.Errorf("BF at B=8 utilization %.1f%% outside plausible band", 100*bf8.Utilization)
	}
	if np512.Utilization < 0.40 || np512.Utilization > 0.60 {
		t.Errorf("no-pipeline at B=512 utilization %.1f%% outside plausible band", 100*np512.Utilization)
	}
}

// The optimizer must respect memory: every winning config fits, and the 52B
// model at B=8 must use heavy model parallelism (the paper's optimum is
// PP=TP=8).
func TestOptimalConfigShape(t *testing.T) {
	if testing.Short() {
		t.Skip("search sweep")
	}
	c := hw.PaperCluster()
	m := model.Model52B()
	b, err := Optimize(context.Background(), c, m, FamilyBreadthFirst, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := b.Plan
	if p.PP*p.TP < 32 {
		t.Errorf("52B at B=8 should need heavy model parallelism, got PP=%d TP=%d", p.PP, p.TP)
	}
	if b.Memory.Total() > float64(c.GPU.MemBytes) {
		t.Errorf("winning config exceeds GPU memory: %v", b.Memory)
	}
	if b.Configs < 2 {
		t.Errorf("expected multiple candidates, got %d", b.Configs)
	}
}

// Sharding should appear in the breadth-first optimum once DP > 1 is viable
// (the paper's BF winners use DP-FS from B=16 up).
func TestBreadthFirstAdoptsSharding(t *testing.T) {
	if testing.Short() {
		t.Skip("search sweep")
	}
	c := hw.PaperCluster()
	m := model.Model52B()
	sawFS := false
	for _, batch := range []int{32, 48, 64} {
		b, err := Optimize(context.Background(), c, m, FamilyBreadthFirst, batch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if b.Plan.Sharding == core.DPFS {
			sawFS = true
		}
	}
	if !sawFS {
		t.Error("breadth-first optimum should adopt DP-FS at medium batches")
	}
}

func TestSweepSkipsInfeasible(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model52B()
	// Batch 1 is below beta_min * NGPU for every grid: infeasible; batch 64
	// works. Sweep must skip and carry on.
	bests, err := Sweep(context.Background(), c, m, FamilyBreadthFirst, []int{1, 64}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(bests) != 1 || bests[0].Plan.BatchSize() != 64 {
		t.Errorf("sweep should keep only batch 64, got %d results", len(bests))
	}
	if _, err := Sweep(context.Background(), c, m, FamilyBreadthFirst, []int{1}, Options{}); err == nil {
		t.Error("all-infeasible sweep should fail")
	}
}

func TestOptimizeErrors(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model52B()
	if _, err := Optimize(context.Background(), c, m, FamilyBreadthFirst, 1, Options{}); err == nil {
		t.Error("infeasible batch should fail")
	}
}

func TestTableFormatting(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model6p6B()
	b, err := Optimize(context.Background(), c, m, FamilyBreadthFirst, 64, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := Table("Table E.2", map[Family][]Best{FamilyBreadthFirst: {b}})
	if !strings.Contains(s, "Breadth-first (ours)") || !strings.Contains(s, "Table E.2") {
		t.Errorf("table missing content:\n%s", s)
	}
}

func TestFamilyStrings(t *testing.T) {
	for _, f := range append(Families(), Family(99)) {
		if f.String() == "" {
			t.Error("empty family name")
		}
	}
}
