// Package search implements the configuration grid search of Appendix E:
// for each method family and global batch size it enumerates the
// distributed configurations (N_PP, N_TP, S_mb, N_mb, N_loop, sharding,
// and the per-method Sequence dial — hybrid sequence lengths, V-schedule
// in-flight caps), prunes infeasible and provably inferior ones, simulates
// the rest and returns the most efficient — reproducing Figure 7 and
// Tables E.1-E.3.
//
// # Concurrency, cancellation and pruning
//
// Optimize fans the enumerated plans out across a bounded worker pool
// (internal/parallel); Sweep and SweepAll flatten all batches' (and
// families') candidates into one work list over the same pool, so
// Options.Workers is a true bound on concurrent simulations (0 means
// parallel.DefaultWorkers(), 1 forces the serial path).
//
// Every entry point takes a context: workers observe cancellation between
// candidate simulations (an in-flight simulation completes, no new one
// starts), the pool drains promptly and the call returns ctx.Err().
// Passing context.Background() reproduces the uncancellable behavior —
// and the exact results — of the pre-context API. Options.Progress, when
// set, receives pruning-counter snapshots while the search runs, so a
// long sweep is observable (and streamable) without waiting for the
// final table.
//
// By default the search runs branch-and-bound (BaPipe-style) with a
// two-tier pricing cascade. Tier 1 prices every candidate with the cheap
// analytic floor (analytic.Floor — O(1) arithmetic, no schedule replay);
// a deterministic warm-start pass then seeds each (family, batch) group's
// incumbent by exactly pricing up to two seed candidates (the group's
// cheapest-floor replayable plan, and the previous — larger-batch — group
// winner's shape re-matched in this group), so early candidates face a
// real bound instead of pricing against nothing. Jobs are ordered
// cheapest-bound-first, and a candidate reaches tier 2 — the O(ops) exact
// multi-stream schedule replay (analytic.LowerBoundCached, bit-identical
// to the DES makespan for every generator with an implicit op sequence;
// prefix-amortized across candidates sharing a checkpoint) — only when
// its floor fails to prune against the incumbent. Exact tier-2 prices
// feed the incumbent immediately (the replay IS the simulated time), so
// siblings prune before the simulation even runs. Options.EagerReplay
// restores the replay-always pricing (every candidate priced exactly up
// front, dominance pre-pass instead of warm starts) as an equivalence
// and benchmarking point.
//
// Pruning never changes results: a candidate is skipped only when the
// admissible bound proves it cannot be the winner under the same strict
// ">" / lowest-index tie rule the serial loop applies, so the winner —
// and the formatted Table output, including the Configs column, which
// counts enumerated candidates — is byte-identical to the unpruned path
// at any worker count. Errors are preserved too: every candidate is
// prechecked (engine.Precheck, the exact pre-simulation validations)
// before pruning may skip it, so Optimize and Sweep surface the same
// lowest-index per-candidate error with and without pruning.
// Options.NoPrune disables the bounds (the perf harness' comparison
// point) and Options.Baseline additionally bypasses the schedule/memory
// memo caches and the DES fast path, reproducing the seed evaluator for
// equivalence tests.
package search

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"bfpp/internal/analytic"
	"bfpp/internal/core"
	"bfpp/internal/engine"
	"bfpp/internal/hw"
	"bfpp/internal/memsim"
	"bfpp/internal/model"
	"bfpp/internal/parallel"
	"bfpp/internal/schedule"
)

// Family is a method family as compared in Figure 7, an index into the
// descriptor table built from the schedule registry. A family may span
// several concrete schedules/implementations (the "non-looped" family
// covers both our GPipe and Megatron-LM's 1F1B, as in the paper).
type Family int

const (
	// FamilyBreadthFirst is the paper's method (our implementation:
	// overlapped, DP0 or DP-FS).
	FamilyBreadthFirst Family = iota
	// FamilyDepthFirst is Megatron-LM's interleaved schedule
	// (non-overlapped, DP0).
	FamilyDepthFirst
	// FamilyNonLooped covers GPipe (ours) and 1F1B (Megatron-LM).
	FamilyNonLooped
	// FamilyNoPipeline is sharded data parallelism with tensor parallelism
	// (the "2d parallelism" baseline).
	FamilyNoPipeline
)

// Variant is one concrete (method, overlap, sharding) combination within a
// family, derived from the method's registered schedule traits.
type Variant struct {
	// Method is the schedule method.
	Method core.Method
	// Overlap reports whether the implementation overlaps DP/PP
	// communication; it becomes Plan.OverlapDP/OverlapPP.
	Overlap bool
	// Shardings lists the sharding modes to enumerate.
	Shardings []core.Sharding
}

// FamilyInfo is one row of the family descriptor table: a display name,
// a short selection key and the member variants in enumeration order.
type FamilyInfo struct {
	// Key is the short selection key ("bf", "nl", ...) used by the
	// -families command flags.
	Key string
	// Name is the display name (the Figure 7 legend).
	Name string
	// Paper marks the families of the paper's Figure 7 comparison.
	Paper bool
	// Variants are the member methods with their traits.
	Variants []Variant
}

// familyCache memoizes the descriptor table built from the schedule
// registry, keyed on the generator count so a generator registered after
// the first lookup (e.g. from a test's init) still appears instead of
// being frozen out by a one-shot snapshot. Families only ever grow, and
// existing indexes are stable because the build order is registration
// order.
var familyCache struct {
	sync.Mutex
	nGens int
	table []FamilyInfo
}

// familyTable builds (or rebuilds) the descriptor table: generators
// sharing a family key become variants of one family, in registration
// order (which fixes the Family index values — the paper's four families
// register first, matching the constants above).
func familyTable() []FamilyInfo {
	gens := schedule.Generators()
	familyCache.Lock()
	defer familyCache.Unlock()
	if familyCache.table != nil && familyCache.nGens == len(gens) {
		return familyCache.table
	}
	var table []FamilyInfo
	index := map[string]int{}
	for _, g := range gens {
		tr := g.Traits()
		if tr.Family == "" {
			continue
		}
		i, ok := index[tr.Family]
		if !ok {
			i = len(table)
			index[tr.Family] = i
			table = append(table, FamilyInfo{Key: tr.Family, Name: tr.FamilyName, Paper: tr.Paper})
		}
		table[i].Variants = append(table[i].Variants, Variant{
			Method:    g.Method(),
			Overlap:   tr.Overlap,
			Shardings: tr.Shardings,
		})
	}
	//lint:allow globalstate mutex-guarded memo of the registry-derived family table; rebuilt deterministically from the generator list
	familyCache.nGens = len(gens)
	//lint:allow globalstate mutex-guarded memo of the registry-derived family table; rebuilt deterministically from the generator list
	familyCache.table = table
	return table
}

// Families returns the paper's Figure 7 families in display order (the
// default search scope, preserving the pre-registry behavior).
func Families() []Family {
	var out []Family
	for i, fi := range familyTable() {
		if fi.Paper {
			out = append(out, Family(i))
		}
	}
	return out
}

// AllFamilies returns every registered family — the paper's four plus the
// extension schedules — in registration order.
func AllFamilies() []Family {
	out := make([]Family, len(familyTable()))
	for i := range out {
		out[i] = Family(i)
	}
	return out
}

// FamilyByKey resolves a family from its short selection key.
func FamilyByKey(key string) (Family, bool) {
	for i, fi := range familyTable() {
		if fi.Key == key {
			return Family(i), true
		}
	}
	return 0, false
}

// FamilyOf returns the family containing the given method.
func FamilyOf(m core.Method) (Family, bool) {
	for i, fi := range familyTable() {
		for _, v := range fi.Variants {
			if v.Method == m {
				return Family(i), true
			}
		}
	}
	return 0, false
}

// Info returns the family's descriptor.
func (f Family) Info() FamilyInfo {
	table := familyTable()
	if int(f) < 0 || int(f) >= len(table) {
		return FamilyInfo{Name: fmt.Sprintf("Family(%d)", int(f))}
	}
	return table[f]
}

// String names the family as in Figure 7's legend.
func (f Family) String() string { return f.Info().Name }

// ErrInfeasible marks a search that found no feasible configuration: every
// enumerated candidate failed a constraint, not an execution fault.
// Callers distinguishing "nothing fits" (skip the cell, as the CLI table
// does) from real failures test with errors.Is.
var ErrInfeasible = errors.New("no feasible configuration")

// GroupKey identifies one (family, batch) group of a sweep: the family's
// short registry key and the global batch size. It is the granularity of
// sweep checkpointing — a group's winner is deterministic and independent
// of every other group, so a journaled GroupKey -> Best record can replace
// the group's entire enumeration and pricing on resume without changing a
// byte of the final table.
type GroupKey struct {
	// Family is the family's short selection key ("bf", "ws", ...).
	Family string `json:"family"`
	// Batch is the global batch size.
	Batch int `json:"batch"`
}

// Best is the winning configuration of one (family, batch) search.
type Best struct {
	engine.Result
	// Configs is the number of candidate configurations considered,
	// mirroring the "Configs" column of Tables E.1-E.3. Pruned candidates
	// count: they were enumerated and proven inferior, not skipped.
	Configs int
}

// FamilyStats accumulates the branch-and-bound counters of one method
// family. All fields are atomic so one record may be shared across
// concurrent sweeps; Enumerated and Dominated are deterministic,
// BoundSkipped and Simulated depend on worker timing (their sum with
// Dominated always equals Enumerated).
type FamilyStats struct {
	// Enumerated counts candidate plans entering the work list.
	Enumerated atomic.Int64
	// Dominated counts candidates removed by the deterministic dominance
	// pre-pass (an exactly-priced sibling provably beats them).
	Dominated atomic.Int64
	// BoundSkipped counts candidates skipped at execution time because
	// their analytic throughput upper bound could not beat the incumbent.
	BoundSkipped atomic.Int64
	// Simulated counts candidates that reached the discrete-event
	// simulator (including candidates whose precheck reported an error:
	// the unpruned path would have simulated them).
	Simulated atomic.Int64
	// FlooredOut counts the BoundSkipped candidates whose price at skip
	// time was still the tier-1 floor — pruned without ever paying the
	// O(ops) exact replay. BoundSkipped - FlooredOut candidates were
	// replay-priced first and skipped on the exact bound.
	FlooredOut atomic.Int64
	// ReplayPriced counts tier-2 exact replays (including the warm-start
	// seed replays): the O(ops) prices actually paid. The cascade's win is
	// ReplayPriced staying far below Enumerated.
	ReplayPriced atomic.Int64
	// WarmStartHits counts groups whose incumbent seed came from a
	// neighboring grid point's winner shape instead of the group's own
	// cheapest-floor candidate.
	WarmStartHits atomic.Int64
}

// PruneRate returns the fraction of enumerated candidates that were never
// simulated.
func (s *FamilyStats) PruneRate() float64 {
	e := s.Enumerated.Load()
	if e == 0 {
		return 0
	}
	return float64(s.Dominated.Load()+s.BoundSkipped.Load()) / float64(e)
}

// String summarizes the counters.
func (s *FamilyStats) String() string {
	return fmt.Sprintf("enumerated %d, dominated %d, bounded out %d (%d on floor alone), simulated %d, replay-priced %d (%.1f%% pruned)",
		s.Enumerated.Load(), s.Dominated.Load(), s.BoundSkipped.Load(),
		s.FlooredOut.Load(), s.Simulated.Load(), s.ReplayPriced.Load(), 100*s.PruneRate())
}

// Stats accumulates the branch-and-bound counters of one or more searches:
// the embedded totals plus a per-family breakdown keyed by the family's
// short selection key ("bf", "ws", ...), which is how the pruning power of
// the per-generator bounds is compared across schedule families.
type Stats struct {
	FamilyStats

	mu        sync.Mutex
	perFamily map[string]*FamilyStats
}

// Family returns the family's counter record, creating it on first use.
func (s *Stats) Family(key string) *FamilyStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.perFamily == nil {
		s.perFamily = map[string]*FamilyStats{}
	}
	fs, ok := s.perFamily[key]
	if !ok {
		fs = &FamilyStats{}
		s.perFamily[key] = fs
	}
	return fs
}

// FamilyKeys returns the keys of the families counted so far, sorted.
func (s *Stats) FamilyKeys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.perFamily))
	for k := range s.perFamily {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FamilyProgress is one family's counter snapshot.
type FamilyProgress struct {
	// Key is the family's short selection key ("bf", "ws", ...).
	Key string `json:"key"`
	// Enumerated, Dominated, BoundedOut and Simulated snapshot the
	// FamilyStats counters of the same names.
	Enumerated int64 `json:"enumerated"`
	Dominated  int64 `json:"dominated"`
	BoundedOut int64 `json:"bounded_out"`
	Simulated  int64 `json:"simulated"`
	// FlooredOut, ReplayPriced and WarmStartHits snapshot the pricing-
	// cascade counters of the same names.
	FlooredOut    int64 `json:"floored_out"`
	ReplayPriced  int64 `json:"replay_priced"`
	WarmStartHits int64 `json:"warm_start_hits"`
}

// ProgressSnapshot is a point-in-time view of a search's pruning counters:
// of Enumerated candidates, Dominated were removed by the dominance
// pre-pass, BoundedOut were skipped against the incumbent, and Simulated
// reached the simulator. Done/Enumerated is the search's completion
// fraction (every candidate ends in exactly one of the three buckets).
type ProgressSnapshot struct {
	Enumerated int64 `json:"enumerated"`
	Dominated  int64 `json:"dominated"`
	BoundedOut int64 `json:"bounded_out"`
	Simulated  int64 `json:"simulated"`
	// FlooredOut, ReplayPriced and WarmStartHits expose the pricing
	// cascade: how many skips the cheap tier-1 floor won outright, how
	// many O(ops) exact replays were paid, and how many group incumbents
	// were seeded from a neighboring grid point.
	FlooredOut    int64 `json:"floored_out"`
	ReplayPriced  int64 `json:"replay_priced"`
	WarmStartHits int64 `json:"warm_start_hits"`
	// Families is the per-family breakdown, sorted by key.
	Families []FamilyProgress `json:"families,omitempty"`
}

// Done returns the number of candidates resolved so far.
func (p ProgressSnapshot) Done() int64 { return p.Dominated + p.BoundedOut + p.Simulated }

// Snapshot captures the counters atomically enough for progress display:
// each field is an atomic load, so a snapshot taken while workers run is a
// consistent-per-counter view of a moment in the search.
func (s *Stats) Snapshot() ProgressSnapshot {
	snap := ProgressSnapshot{
		Enumerated:    s.Enumerated.Load(),
		Dominated:     s.Dominated.Load(),
		BoundedOut:    s.BoundSkipped.Load(),
		Simulated:     s.Simulated.Load(),
		FlooredOut:    s.FlooredOut.Load(),
		ReplayPriced:  s.ReplayPriced.Load(),
		WarmStartHits: s.WarmStartHits.Load(),
	}
	for _, key := range s.FamilyKeys() {
		fs := s.Family(key)
		snap.Families = append(snap.Families, FamilyProgress{
			Key:           key,
			Enumerated:    fs.Enumerated.Load(),
			Dominated:     fs.Dominated.Load(),
			BoundedOut:    fs.BoundSkipped.Load(),
			Simulated:     fs.Simulated.Load(),
			FlooredOut:    fs.FlooredOut.Load(),
			ReplayPriced:  fs.ReplayPriced.Load(),
			WarmStartHits: fs.WarmStartHits.Load(),
		})
	}
	return snap
}

// Options tunes the search.
type Options struct {
	// Params overrides the engine calibration constants.
	Params *engine.Params
	// MaxMicroBatch caps S_mb in the enumeration (default 16).
	MaxMicroBatch int
	// Workers bounds the pool of goroutines simulating candidate plans
	// (one flat pool even across a Sweep's batches): 0 resolves to
	// parallel.DefaultWorkers() (GOMAXPROCS, or the -workers override of
	// the commands), 1 forces the serial path. Any worker count produces
	// byte-identical results.
	Workers int
	// NoPrune disables the analytic branch-and-bound (lower-bound job
	// ordering, incumbent skipping, dominance pre-pass) and simulates
	// every candidate, like the pre-bound evaluator. Results are identical
	// either way; the perf harness uses it as the pruning speedup
	// denominator.
	NoPrune bool
	// EagerReplay disables the lazy pricing cascade and prices every
	// candidate with the O(ops) exact replay up front (the pre-cascade
	// branch-and-bound: exact pricing pre-pass plus dominance filtering,
	// no warm-started incumbents). Results are identical either way; the
	// equivalence tests and the perf harness use it as the cascade's
	// comparison point.
	EagerReplay bool
	// Stats, when non-nil, accumulates the pruning counters of this
	// search — totals plus a per-family breakdown (Stats.Family).
	Stats *Stats
	// Progress, when non-nil, receives counter snapshots while the search
	// runs: after enumeration, after the dominance pre-pass, periodically
	// as candidates resolve (at least every progressStride resolutions)
	// and once in the terminal state. Invocations are serialized by the
	// search, so the callback itself needs no locking; it runs on worker
	// goroutines and must return quickly (throttle expensive sinks on the
	// caller side). Progress does not require Stats: a private counter set
	// is used when Stats is nil.
	Progress func(ProgressSnapshot)
	// Checkpoint, when non-nil, receives each (family, batch) group's
	// winner at the moment the group's last candidate resolves — while
	// the rest of the sweep is still running. It is the sweep-journaling
	// hook: a caller that durably records every (GroupKey, Best) it
	// receives can, after a crash, restart the sweep with those records
	// as Resume and re-price only the unfinished groups. Invocations are
	// serialized by the search (no locking needed in the callback); they
	// run on worker goroutines, so expensive sinks should buffer.
	// Groups that error, find no feasible configuration, or are cut off
	// by cancellation are not checkpointed. The callback never fires for
	// groups satisfied from Resume.
	Checkpoint func(GroupKey, Best)
	// Resume maps already-resolved groups to their journaled winners.
	// A group found here is not enumerated or priced at all — its Best
	// is returned as recorded — so a resumed sweep pays only for the
	// groups the original run had not finished. Because each group's
	// winner is deterministic and independent of every other group
	// (warm-start seeds never change winners, only pricing effort), the
	// resumed table is byte-identical to an uninterrupted run's.
	Resume map[GroupKey]Best
	// Baseline selects the seed-faithful serial evaluator: one plan at a
	// time, no pruning, memo caches bypassed, reference DES loop. It
	// exists for the parallel-vs-serial equivalence tests and as the
	// denominator of the perf harness (scripts/bench.sh); everyday
	// callers leave it false.
	Baseline bool
}

// progressStride is how many candidate resolutions may pass between two
// Progress snapshots (milestones — enumeration, dominance, the terminal
// state — always emit).
const progressStride = 16

// engineOptions maps the search options onto the per-simulation options.
func (o Options) engineOptions() engine.Options {
	return engine.Options{Params: o.Params, DisableCache: o.Baseline, ReferenceDES: o.Baseline}
}

// workers resolves the effective pool width (1 under Baseline).
func (o Options) workers() int {
	if o.Baseline {
		return 1
	}
	return parallel.Resolve(o.Workers)
}

// prune reports whether the branch-and-bound path is active.
func (o Options) prune() bool { return !o.Baseline && !o.NoPrune }

// Optimize searches one family at one global batch size and returns the
// most efficient feasible configuration. Candidate plans are simulated
// concurrently on Options.Workers goroutines; the winner is the
// lowest-indexed plan (in Enumerate order) of maximal throughput, matching
// the serial path tie-for-tie. Cancelling ctx aborts the search between
// candidate simulations and returns ctx.Err().
func Optimize(ctx context.Context, c hw.Cluster, m model.Transformer, f Family, batch int, opt Options) (Best, error) {
	if opt.MaxMicroBatch <= 0 {
		opt.MaxMicroBatch = 16
	}
	if b, ok := opt.Resume[GroupKey{Family: f.Info().Key, Batch: batch}]; ok {
		return b, nil
	}
	plans := Enumerate(ctx, c, m, f, batch, opt)
	if err := ctx.Err(); err != nil {
		return Best{}, err
	}
	if len(plans) == 0 {
		return Best{}, fmt.Errorf("search: %w for %v at batch %d", ErrInfeasible, f, batch)
	}
	bests, errs, err := evalGroups(ctx, c, m, [][]core.Plan{plans}, []string{f.Info().Key}, opt)
	if err != nil {
		return Best{}, err
	}
	if errs[0] != nil {
		return Best{}, errs[0]
	}
	return *bests[0], nil
}

// pickBest selects the winner deterministically: the first result (in
// enumeration order) whose throughput no later result strictly exceeds.
// This is exactly what the serial loop's `>` comparison kept, so ties
// resolve identically regardless of worker count.
func pickBest(results []engine.Result) Best {
	best := Best{Result: results[0], Configs: len(results)}
	for _, r := range results[1:] {
		if r.Throughput > best.Throughput {
			best.Result = r
		}
	}
	return best
}

// job carries one candidate plan through the shared work list.
type job struct {
	plan     core.Plan
	group    int     // index into the (family, batch) group list
	idx      int     // enumeration index within the group (the tie order)
	ub       float64 // analytic throughput upper bound (FlopPerGPU / lower bound)
	flop     float64 // BatchFlopPerGPU, shared by the cascade's two pricings
	exact    bool    // the bound equals the simulated time bit for bit
	replay   bool    // the method has a tier-2 exact replay (StepLB hook)
	prune    bool    // removed by the deterministic dominance pre-pass
	failed   bool    // precheck reported the error a simulation would
	deferred bool    // exactly priced, simulation deferred to the final pass
}

// incumbent is the shared best-simulated-so-far record of one group. Its
// rule mirrors pickBest: a candidate is covered (provably not the winner)
// when its throughput upper bound is strictly below the incumbent, or ties
// it while the incumbent has the lower enumeration index. The minimal-index
// maximal-throughput candidate is never covered, so the reduced winner is
// identical to the unpruned one.
type incumbent struct {
	mu  sync.Mutex
	ok  bool
	tp  float64
	idx int
}

func (inc *incumbent) covers(ub float64, idx int) bool {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.ok && (ub < inc.tp || (ub == inc.tp && inc.idx < idx))
}

func (inc *incumbent) update(tp float64, idx int) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if !inc.ok || tp > inc.tp || (tp == inc.tp && idx < inc.idx) {
		inc.ok, inc.tp, inc.idx = true, tp, idx
	}
}

// simOut is one slot of the shared result table.
type simOut struct {
	res engine.Result
	ran bool
	err error
}

// evalGroups evaluates the candidate groups (one per (family, batch), with
// keys carrying each group's family key for the per-family statistics)
// over one shared worker pool and reduces each to its winner. It returns
// one Best per group (nil when the group is empty or a simulation failed)
// and the lowest-indexed per-group error; the final error is non-nil only
// when ctx was cancelled. Even then the per-group results are returned:
// each reflects only fully-simulated candidates, so a group's Best is its
// incumbent-so-far — a valid (if possibly non-optimal) configuration that
// callers surfacing graceful degradation may report alongside the error.
// With pruning active, candidates
// are prechecked (so a candidate whose simulation would error reports it
// even when the bounds would have skipped it), priced by the tier-1
// analytic floor, ordered cheapest-bound-first, warm-start-seeded per
// group, and skipped against the group incumbent — paying the tier-2
// exact replay only for candidates the floor fails to settle (or priced
// exactly up front under EagerReplay, with the dominance pre-pass); the
// winner — and the lowest-index error — is provably the one the unpruned
// path reports either way.
func evalGroups(ctx context.Context, c hw.Cluster, m model.Transformer, groups [][]core.Plan, keys []string, opt Options) ([]*Best, []error, error) {
	if opt.Stats == nil && opt.Progress != nil {
		// Progress is built on the counters; give it a private set when the
		// caller did not ask to keep them.
		opt.Stats = &Stats{}
	}
	// Progress invocations are serialized so the callback needs no locking
	// of its own. Snapshots are throttled to one per progressStride
	// candidate resolutions (the milestone emits force through), keeping
	// the per-candidate cost on the worker hot path at an atomic add
	// instead of a mutex'd snapshot build.
	var progressMu sync.Mutex
	var progressTick atomic.Int64
	progress := func(force bool) {
		if opt.Progress == nil {
			return
		}
		if !force && progressTick.Add(1)%progressStride != 0 {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		opt.Progress(opt.Stats.Snapshot())
	}
	var jobs []job
	bounds := make([]int, 0, len(groups)+1) // group boundaries in jobs
	bounds = append(bounds, 0)
	for gi, g := range groups {
		for i, p := range g {
			jobs = append(jobs, job{plan: p, group: gi, idx: i})
		}
		bounds = append(bounds, len(jobs))
	}
	famStats := make([]*FamilyStats, len(groups))
	if opt.Stats != nil {
		opt.Stats.Enumerated.Add(int64(len(jobs)))
		for gi := range groups {
			if keys[gi] != "" {
				famStats[gi] = opt.Stats.Family(keys[gi])
				famStats[gi].Enumerated.Add(int64(len(groups[gi])))
			}
		}
	}

	progress(true) // enumeration counted: the 0%-done snapshot

	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	prune := opt.prune()
	cascade := prune && !opt.EagerReplay
	eopt := opt.engineOptions()
	outs := make([]simOut, len(jobs))
	lbs := make([]float64, len(jobs))
	incs := make([]incumbent, len(groups))
	// Checkpoint support: each group carries a pending-candidate counter,
	// decremented exactly once per candidate at its terminal resolution
	// point (simulated, bound-skipped, dominated, or failed). The worker
	// that takes a counter to zero owns the group's reduction: the atomic
	// decrement orders it after every sibling's outs[] write, so the scan
	// below sees the complete segment. Cancelled runs leave unfinished
	// groups above zero — exactly the groups that must not be journaled.
	resolve := func(int) {}
	if opt.Checkpoint != nil {
		var checkpointMu sync.Mutex
		pending := make([]atomic.Int64, len(groups))
		for gi := range groups {
			pending[gi].Store(int64(bounds[gi+1] - bounds[gi]))
		}
		resolve = func(gi int) {
			if pending[gi].Add(-1) != 0 {
				return
			}
			seg := outs[bounds[gi]:bounds[gi+1]]
			ran := make([]engine.Result, 0, 4)
			for i := range seg {
				if seg[i].err != nil {
					return // errored groups re-run on resume
				}
				if seg[i].ran {
					ran = append(ran, seg[i].res)
				}
			}
			if len(ran) == 0 {
				return // nothing feasible: nothing worth journaling
			}
			b := pickBest(ran)
			b.Configs = len(seg)
			key := GroupKey{Family: keys[gi], Batch: groups[gi][0].BatchSize()}
			checkpointMu.Lock()
			defer checkpointMu.Unlock()
			opt.Checkpoint(key, b)
		}
	}
	par := engine.Defaults()
	if opt.Params != nil {
		par = *opt.Params
	}
	var rc *schedule.ReplayCache
	if cascade {
		// One prefix-amortization cache for the whole call: candidates at
		// one grid point share replay checkpoints across the seed pass and
		// the tier-2 pricings below.
		rc = schedule.NewReplayCache()
	}
	if prune && len(jobs) > 0 {
		// Precheck and price every candidate on the same worker pool the
		// simulations use (each entry is independent, so the pass is
		// deterministic); under EagerReplay the exact replays are O(ops)
		// and would otherwise serialize in front of the pool. Recording
		// precheck failures here, before any pruning decision, is what
		// makes the per-candidate errors independent of pruning: the
		// failing candidate reports even when the bounds would have skipped
		// its simulation.
		parallel.MapCtx(ctx, opt.workers(), jobs, func(i int, _ job) (struct{}, error) {
			j := &jobs[i]
			if err := engine.Precheck(c, m, j.plan, eopt); err != nil {
				outs[i].err = fmt.Errorf("search: %v: %w", j.plan, err)
				j.failed = true
				return struct{}{}, nil
			}
			j.flop = m.BatchFlopPerGPU(j.plan.MicroBatch, j.plan.NumMicro, j.plan.PP, j.plan.TP)
			var lb float64
			if cascade {
				// Tier 1: the cheap floor. Whether an exact tier-2 price
				// exists is a trait of the method, recorded for the
				// execution pass.
				tr := schedule.TraitsOf(j.plan.Method)
				j.replay = tr.StepLB != nil || tr.StepLBCached != nil
				lb = analytic.Floor(c, m, j.plan, &par)
			} else {
				lb, j.exact = analytic.LowerBound(c, m, j.plan, &par)
			}
			lbs[i] = lb
			if lb > 0 {
				j.ub = j.flop / lb
			} else {
				j.ub = math.Inf(1)
			}
			return struct{}{}, nil
		})
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		if cascade {
			if err := seedGroups(ctx, c, m, groups, keys, jobs, bounds, lbs, incs, rc, &par, famStats, opt.Stats); err != nil {
				return nil, nil, err
			}
		} else {
			markDominated(jobs, bounds, famStats, opt.Stats)
		}
		progress(true) // seed/dominance pass resolved its share of the candidates
		// Cheapest (fastest-looking) bound first, stable on the flat
		// enumeration order: the likely winners simulate early and the
		// incumbent tightens before the long tail is reached.
		sort.SliceStable(order, func(a, b int) bool { return lbs[order[a]] < lbs[order[b]] })
	}

	countSim := func(j *job) {
		if opt.Stats != nil {
			opt.Stats.Simulated.Add(1)
			if fs := famStats[j.group]; fs != nil {
				fs.Simulated.Add(1)
			}
		}
	}
	countSkip := func(j *job) {
		if opt.Stats != nil {
			opt.Stats.BoundSkipped.Add(1)
			fs := famStats[j.group]
			if fs != nil {
				fs.BoundSkipped.Add(1)
			}
			if !j.exact {
				// Skipped on the tier-1 floor alone: the candidate never
				// paid an exact replay.
				opt.Stats.FlooredOut.Add(1)
				if fs != nil {
					fs.FlooredOut.Add(1)
				}
			}
		}
	}
	_, ctxErr := parallel.MapCtx(ctx, opt.workers(), order, func(_ int, ji int) (struct{}, error) {
		j := &jobs[ji]
		if j.failed {
			// The precheck already recorded the exact error the simulation
			// would produce; count it as simulated, which is what the
			// unpruned path would have done.
			countSim(j)
			progress(false)
			resolve(j.group)
			return struct{}{}, nil
		}
		if j.prune {
			resolve(j.group)
			return struct{}{}, nil
		}
		if prune && incs[j.group].covers(j.ub, j.idx) {
			countSkip(j)
			progress(false)
			resolve(j.group)
			return struct{}{}, nil
		}
		if cascade && j.replay && !j.exact {
			// Tier 2: the floor failed to settle this candidate against the
			// incumbent; pay the exact O(ops) replay once. Both tiers are
			// admissible, so tightening the bound here can only turn "maybe"
			// into "provably not the winner" — never the other way.
			lb, exact := analytic.LowerBoundCached(c, m, j.plan, &par, rc)
			if opt.Stats != nil {
				opt.Stats.ReplayPriced.Add(1)
				if fs := famStats[j.group]; fs != nil {
					fs.ReplayPriced.Add(1)
				}
			}
			if lb > 0 {
				j.ub = j.flop / lb
			} else {
				j.ub = math.Inf(1)
			}
			j.exact = exact
			if exact {
				// The replay is the simulated time bit for bit, so the ub
				// is this candidate's true throughput: publish it before
				// simulating so siblings prune against it immediately.
				incs[j.group].update(j.ub, j.idx)
			}
			if incs[j.group].covers(j.ub, j.idx) {
				countSkip(j)
				progress(false)
				resolve(j.group)
				return struct{}{}, nil
			}
		}
		if cascade && j.exact {
			// The exact price IS the simulated time, so nothing more is
			// learned by simulating now; defer the simulation to the final
			// pass, which runs it only if the candidate still survives the
			// fully-tightened incumbent (one simulation per group in the
			// common case — the others resolve to bound skips).
			j.deferred = true
			return struct{}{}, nil
		}
		r, err := engine.SimulateOpts(c, m, j.plan, eopt)
		countSim(j) // reached the simulator, error or not
		progress(false)
		if err != nil {
			// Enumeration bugs should surface loudly; feasibility issues
			// are filtered beforehand, and the precheck above already
			// guarantees pruning cannot mask this error.
			outs[ji].err = fmt.Errorf("search: %v: %w", j.plan, err)
			resolve(j.group)
			return struct{}{}, nil
		}
		outs[ji] = simOut{res: r, ran: true}
		if prune {
			incs[j.group].update(r.Throughput, j.idx)
		}
		resolve(j.group)
		return struct{}{}, nil
	})
	if cascade && ctxErr == nil {
		// Final pass over the deferred exactly-priced candidates, best
		// first per group: the leader simulates (producing the full
		// engine.Result the winner needs), which makes every remaining
		// deferred sibling a bound skip — their exact prices cannot beat a
		// published true throughput of equal value and lower index. Ties
		// are ordered index-ascending, so the lowest-index max simulates
		// and the rest skip, preserving the pickBest rule exactly.
	deferredGroups:
		for gi := range groups {
			seg := jobs[bounds[gi]:bounds[gi+1]]
			var pend []int
			for i := range seg {
				if seg[i].deferred {
					pend = append(pend, i)
				}
			}
			sort.Slice(pend, func(a, b int) bool {
				ja, jb := &seg[pend[a]], &seg[pend[b]]
				if ja.ub != jb.ub {
					return ja.ub > jb.ub
				}
				return ja.idx < jb.idx
			})
			for _, i := range pend {
				if err := ctx.Err(); err != nil {
					ctxErr = err
					break deferredGroups
				}
				j := &seg[i]
				if incs[gi].covers(j.ub, j.idx) {
					countSkip(j)
					progress(false)
					resolve(gi)
					continue
				}
				r, err := engine.SimulateOpts(c, m, j.plan, eopt)
				countSim(j)
				progress(false)
				if err != nil {
					outs[bounds[gi]+i].err = fmt.Errorf("search: %v: %w", j.plan, err)
					resolve(gi)
					continue
				}
				outs[bounds[gi]+i] = simOut{res: r, ran: true}
				incs[gi].update(r.Throughput, j.idx)
				resolve(gi)
			}
		}
	}
	progress(true) // terminal snapshot (100% unless ctx cancelled the run)

	bests := make([]*Best, len(groups))
	errs := make([]error, len(groups))
	var ran []engine.Result
	for gi := range groups {
		seg := outs[bounds[gi]:bounds[gi+1]]
		ran = ran[:0] // simulated results in enumeration order
		for i := range seg {
			if seg[i].err != nil {
				errs[gi] = seg[i].err
				ran = ran[:0]
				break
			}
			if seg[i].ran {
				ran = append(ran, seg[i].res)
			}
		}
		if len(ran) > 0 {
			// Skipped candidates provably cannot win, so pickBest over the
			// simulated subset applies the exact serial selection rule.
			b := pickBest(ran)
			b.Configs = len(seg)
			bests[gi] = &b
		}
	}
	return bests, errs, ctxErr
}

// matchShape reports whether two plans differ at most in the
// batch-dependent NumMicro field — the "same grid point, different batch"
// relation the warm-start pass uses to re-find a neighboring group's
// winner shape among this group's candidates.
func matchShape(a, b core.Plan) bool {
	a.NumMicro, b.NumMicro = 0, 0
	return a == b
}

// seedGroups warm-starts each group's incumbent before the execution pass
// runs: it exactly prices up to two seed candidates per group — the
// group's own cheapest-floor replayable candidate, and (within a family,
// descending batch order) the previous group's best seed's plan shape
// re-matched in this group — publishes the best seed's true throughput as
// the group incumbent, and dominance-marks the candidates whose floor
// bound already falls below it. Soundness never relies on a neighbor's
// throughput *value* (which belongs to a different batch): the neighbor
// only nominates which candidate to price exactly here, and the published
// incumbent is always a bit-exact replay of a candidate of this very
// group, so the covers/update invariant is untouched. The pass is serial
// and depends only on the enumeration, the floors and the replays, so the
// Dominated counter stays deterministic at any worker count. Groups with
// no replayable candidate (the list-scheduled V-schedule family) get no
// seed and start against an empty incumbent, exactly like the pre-cascade
// path when no exact candidate existed.
func seedGroups(ctx context.Context, c hw.Cluster, m model.Transformer, groups [][]core.Plan, keys []string, jobs []job, bounds []int, lbs []float64, incs []incumbent, rc *schedule.ReplayCache, par *engine.Params, famStats []*FamilyStats, stats *Stats) error {
	// Family key ascending, batch descending: the largest batch resolves
	// first, so its winner shape — typically stable across adjacent grid
	// points — seeds the smaller batches of the same family.
	order := make([]int, 0, len(groups))
	for gi := range groups {
		if len(groups[gi]) > 0 {
			order = append(order, gi)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		ga, gb := order[a], order[b]
		if keys[ga] != keys[gb] {
			return keys[ga] < keys[gb]
		}
		return groups[ga][0].BatchSize() > groups[gb][0].BatchSize()
	})
	prevWinner := map[string]core.Plan{}
	for _, gi := range order {
		if err := ctx.Err(); err != nil {
			return err
		}
		seg := jobs[bounds[gi]:bounds[gi+1]]
		// Own seed: the replayable candidate with the smallest floor (the
		// fastest-looking one; strict < keeps the lowest index on ties).
		own := -1
		for i := range seg {
			if seg[i].failed || !seg[i].replay {
				continue
			}
			if own < 0 || lbs[bounds[gi]+i] < lbs[bounds[gi]+own] {
				own = i
			}
		}
		// Neighbor seed: the adjacent group's winner shape, if it exists
		// among this group's candidates (lowest index on ambiguity, which
		// cannot arise for distinct enumerated plans).
		neighbor := -1
		if prev, ok := prevWinner[keys[gi]]; ok {
			for i := range seg {
				if seg[i].failed || !seg[i].replay || i == own {
					continue
				}
				if matchShape(seg[i].plan, prev) {
					neighbor = i
					break
				}
			}
		}
		// Price the seeds exactly; a seed whose replay falls back to a
		// floor (deadlocked sequence) is discarded.
		price := func(i int) (float64, bool) {
			if i < 0 {
				return 0, false
			}
			j := &seg[i]
			lb, exact := analytic.LowerBoundCached(c, m, j.plan, par, rc)
			if stats != nil {
				stats.ReplayPriced.Add(1)
				if fs := famStats[gi]; fs != nil {
					fs.ReplayPriced.Add(1)
				}
			}
			if !exact || lb <= 0 {
				return 0, false
			}
			j.ub = j.flop / lb
			j.exact = true
			return j.ub, true
		}
		ownUb, ownOK := price(own)
		nbUb, nbOK := price(neighbor)
		best, bestUb := -1, 0.0
		if ownOK {
			best, bestUb = own, ownUb
		}
		if nbOK && (!ownOK || nbUb > ownUb || (nbUb == ownUb && seg[neighbor].idx < seg[own].idx)) {
			best, bestUb = neighbor, nbUb
			if stats != nil {
				stats.WarmStartHits.Add(1)
				if fs := famStats[gi]; fs != nil {
					fs.WarmStartHits.Add(1)
				}
			}
		}
		if best < 0 {
			continue
		}
		incs[gi].update(bestUb, seg[best].idx)
		// Dominance against the seed's true throughput, exactly the
		// markDominated rule: a candidate whose admissible upper bound
		// falls below it — or ties it from a higher index — can never win.
		for i := range seg {
			j := &seg[i]
			if j.failed {
				continue
			}
			if j.ub < bestUb || (j.ub == bestUb && seg[best].idx < j.idx) {
				j.prune = true
				if stats != nil {
					stats.Dominated.Add(1)
					if fs := famStats[gi]; fs != nil {
						fs.Dominated.Add(1)
					}
				}
			}
		}
		prevWinner[keys[gi]] = seg[best].plan
	}
	return nil
}

// markDominated removes, within each group, candidates an exactly-priced
// sibling provably beats: the best exact candidate's throughput is known
// without simulation (its bound is the simulated time bit for bit), so any
// candidate whose upper bound falls below it — or ties it from a higher
// enumeration index — can never win under the pickBest rule. The pass is
// deterministic: it depends only on the enumeration and the bounds.
// Candidates whose precheck failed carry no bound and are left alone on
// both sides: their error must surface regardless of pruning. It serves
// the EagerReplay path, where every candidate is priced exactly up front;
// the cascade's equivalent is seedGroups.
func markDominated(jobs []job, bounds []int, famStats []*FamilyStats, stats *Stats) {
	for gi := 0; gi+1 < len(bounds); gi++ {
		seg := jobs[bounds[gi]:bounds[gi+1]]
		bestTp, bestIdx, found := 0.0, 0, false
		for i := range seg {
			j := &seg[i]
			if !j.exact || j.failed {
				continue
			}
			if !found || j.ub > bestTp || (j.ub == bestTp && j.idx < bestIdx) {
				bestTp, bestIdx, found = j.ub, j.idx, true
			}
		}
		if !found {
			continue
		}
		for i := range seg {
			j := &seg[i]
			if j.failed {
				continue
			}
			if j.ub < bestTp || (j.ub == bestTp && bestIdx < j.idx) {
				j.prune = true
				if stats != nil {
					stats.Dominated.Add(1)
					if fs := famStats[gi]; fs != nil {
						fs.Dominated.Add(1)
					}
				}
			}
		}
	}
}

// Sweep runs the family's search across batch sizes, skipping batches with
// no feasible configuration, and returns the Figure 7 series in batch
// order. All batches' candidate plans are flattened into one work list
// evaluated by a single worker pool, so Options.Workers is a true bound on
// concurrent simulations (no nested fan-out) and no barrier separates
// batches. Results are identical to calling Optimize per batch. Cancelling
// ctx aborts the sweep between candidate simulations and returns the
// incumbents-so-far (each batch's best fully-simulated candidate) alongside
// ctx.Err(); callers that cannot use a partial table must discard it.
func Sweep(ctx context.Context, c hw.Cluster, m model.Transformer, f Family, batches []int, opt Options) ([]Best, error) {
	if opt.MaxMicroBatch <= 0 {
		opt.MaxMicroBatch = 16
	}
	key := f.Info().Key
	resumed := make([]*Best, len(batches))
	var groups [][]core.Plan
	var keys []string
	gi := make([]int, len(batches))
	for bi, b := range batches {
		if rb, ok := opt.Resume[GroupKey{Family: key, Batch: b}]; ok {
			rb := rb
			resumed[bi] = &rb
			gi[bi] = -1
			continue
		}
		gi[bi] = len(groups)
		groups = append(groups, Enumerate(ctx, c, m, f, b, opt))
		keys = append(keys, key)
	}
	bests, _, err := evalGroups(ctx, c, m, groups, keys, opt)
	var out []Best
	for bi := range batches {
		if resumed[bi] != nil {
			out = append(out, *resumed[bi])
		} else if b := bests[gi[bi]]; b != nil {
			out = append(out, *b)
		}
	}
	if err != nil {
		return out, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("search: %w for %v at any batch", ErrInfeasible, f)
	}
	return out, nil
}

// SweepAll runs the sweeps of several families over one shared work list:
// every family's candidates at every batch size are flattened into a
// single bounded worker pool, so a family with few candidates no longer
// leaves workers idle while another family's long tail drains, and the
// branch-and-bound incumbents stay per (family, batch) group. Results are
// identical to calling Sweep per family; families with no feasible
// configuration at any batch are omitted from the map, and an error is
// returned only when that leaves the map empty. Cancelling ctx aborts the
// sweep between candidate simulations and returns the incumbents-so-far —
// each (family, batch) group's best fully-simulated candidate, a valid if
// possibly non-optimal configuration — alongside ctx.Err(). The service
// layer turns that partial map into a degraded response on deadline;
// callers that cannot use a partial table must discard it on error.
func SweepAll(ctx context.Context, c hw.Cluster, m model.Transformer, fams []Family, batches []int, opt Options) (map[Family][]Best, error) {
	if opt.MaxMicroBatch <= 0 {
		opt.MaxMicroBatch = 16
	}
	// Resumed (family, batch) groups — journaled winners of a previous,
	// interrupted run — are subtracted from the work list before
	// enumeration and merged back below; the survivors share one flat
	// pool exactly as before.
	resumed := make([]*Best, len(fams)*len(batches))
	gi := make([]int, len(fams)*len(batches))
	var groups [][]core.Plan
	var keys []string
	for fi, f := range fams {
		key := f.Info().Key
		for bi, b := range batches {
			ci := fi*len(batches) + bi
			if rb, ok := opt.Resume[GroupKey{Family: key, Batch: b}]; ok {
				rb := rb
				resumed[ci] = &rb
				gi[ci] = -1
				continue
			}
			gi[ci] = len(groups)
			groups = append(groups, Enumerate(ctx, c, m, f, b, opt))
			keys = append(keys, key)
		}
	}
	bests, _, err := evalGroups(ctx, c, m, groups, keys, opt)
	out := map[Family][]Best{}
	for fi, f := range fams {
		var fam []Best
		for bi := range batches {
			ci := fi*len(batches) + bi
			if resumed[ci] != nil {
				fam = append(fam, *resumed[ci])
			} else if b := bests[gi[ci]]; b != nil {
				fam = append(fam, *b)
			}
		}
		if len(fam) > 0 {
			out[f] = fam
		}
	}
	if err != nil {
		return out, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("search: %w for any family at any batch", ErrInfeasible)
	}
	return out, nil
}

// Enumerate lists the feasible plans of a family at a global batch size.
// The pruning mirrors Appendix E: divisibility of the device grid and the
// batch, stage divisibility, memory feasibility (a cheap analytic floor
// first, then the full estimate), and the per-method constraints and
// exclusions that Plan.Validate enforces through the method registry.
// Methods that declare SequenceOptions (the hybrid sequence lengths of
// Section 4.2, the V-schedule in-flight caps) contribute one candidate per
// option at every grid point.
//
// Cancelling ctx stops the enumeration between variants and returns the
// partial list; callers that care (Optimize, Sweep, SweepAll) check
// ctx.Err() afterwards, so a cancelled search never reports a result
// derived from a truncated enumeration.
func Enumerate(ctx context.Context, c hw.Cluster, m model.Transformer, f Family, batch int, opt Options) []core.Plan {
	if opt.MaxMicroBatch <= 0 {
		opt.MaxMicroBatch = 16
	}
	estimate := memsim.CachedEstimate
	if opt.Baseline {
		estimate = memsim.Estimate
	}
	nGPU := c.NumGPUs()
	var plans []core.Plan
	for _, v := range f.Info().Variants {
		if ctx.Err() != nil {
			return plans
		}
		seqOptions := schedule.TraitsOf(v.Method).SequenceOptions
		for tp := 1; tp <= c.GPUsPerNode; tp *= 2 {
			maxPP := 1
			if v.Method.Pipelined() {
				maxPP = m.Layers
			}
			for pp := 1; pp <= maxPP && pp*tp <= nGPU; pp *= 2 {
				if v.Method.Pipelined() && pp == 1 {
					continue // a 1-deep pipeline is the no-pipeline case
				}
				if nGPU%(pp*tp) != 0 {
					continue
				}
				dp := nGPU / (pp * tp)
				for smb := 1; smb <= opt.MaxMicroBatch; smb *= 2 {
					if batch%(dp*smb) != 0 {
						continue
					}
					nmb := batch / (dp * smb)
					if nmb < 1 {
						continue
					}
					if v.Method.Pipelined() && nmb < pp {
						continue
					}
					for _, loops := range loopOptions(m, v.Method, pp) {
						for _, sh := range v.Shardings {
							if sh != core.DP0 && dp == 1 {
								continue
							}
							base := core.Plan{
								Method: v.Method, DP: dp, PP: pp, TP: tp,
								MicroBatch: smb, NumMicro: nmb, Loops: loops,
								Sharding: sh, OverlapDP: v.Overlap, OverlapPP: v.Overlap,
							}
							seqs := []int{0}
							if seqOptions != nil {
								seqs = seqOptions(base)
							}
							for _, seq := range seqs {
								p := base
								p.Sequence = seq
								if p.Validate(m) != nil {
									continue
								}
								if !opt.Baseline &&
									!analytic.MemoryFeasible(m, p, c.GPU.MemBytes) {
									// The floor never exceeds the estimate,
									// so this skips only plans the full
									// check below would reject — without
									// paying it (for the V-schedule, the
									// exact in-flight hook generates
									// programs); the floor itself checks
									// its cheap trait-free terms before
									// consulting the in-flight hook.
									continue
								}
								if !memsim.Feasible(estimate(m, p), c.GPU.MemBytes) {
									continue
								}
								plans = append(plans, p)
							}
						}
					}
				}
			}
		}
	}
	return plans
}

// loopOptions returns the N_loop values to try, derived from the method's
// registered traits: 1 for the non-looped pipeline methods, the powers of
// two dividing the stage budget for looped ones, and the per-layer stage
// granularity for the no-pipeline schedules (whose "loops" only set the
// data-parallel aggregation granularity).
func loopOptions(m model.Transformer, method core.Method, pp int) []int {
	switch {
	case !method.Pipelined():
		return []int{m.Layers}
	case !method.Looped():
		return []int{1}
	default:
		var out []int
		for l := 1; pp*l <= m.Layers; l *= 2 {
			if m.Layers%(pp*l) == 0 {
				out = append(out, l)
			}
		}
		return out
	}
}

// Table formats a set of sweep results as a Table E.1-style listing.
// Families appear in registry display order; families absent from the
// results map are skipped.
func Table(title string, results map[Family][]Best) string {
	out := fmt.Sprintf("%s\n%-26s %6s %4s %4s %4s %5s %6s %8s %10s %8s %8s %8s\n",
		title, "Method", "Batch", "PP", "TP", "Smb", "Nmb", "Nloop", "Sharded",
		"Tflop/s", "Mem GiB", "Min GiB", "Configs")
	for _, f := range AllFamilies() {
		bests, ok := results[f]
		if !ok {
			continue
		}
		sorted := append([]Best(nil), bests...)
		sort.Slice(sorted, func(i, j int) bool {
			return sorted[i].Plan.BatchSize() < sorted[j].Plan.BatchSize()
		})
		for _, b := range sorted {
			p := b.Plan
			shard := "no"
			if p.Sharding != core.DP0 {
				shard = p.Sharding.String()
			}
			out += fmt.Sprintf("%-26s %6d %4d %4d %4d %5d %6d %8s %10.2f %8.2f %8.2f %8d\n",
				f, p.BatchSize(), p.PP, p.TP, p.MicroBatch, p.NumMicro, p.Loops,
				shard, b.Throughput/1e12, b.Memory.Total()/(1<<30),
				b.Memory.TotalMin()/(1<<30), b.Configs)
		}
	}
	return out
}
