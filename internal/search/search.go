// Package search implements the configuration grid search of Appendix E:
// for each method family and global batch size it enumerates the
// distributed configurations (N_PP, N_TP, S_mb, N_mb, N_loop, sharding),
// prunes infeasible and obviously inferior ones, simulates the rest and
// returns the most efficient — reproducing Figure 7 and Tables E.1-E.3.
//
// # Concurrency
//
// Optimize fans the enumerated plans out across a bounded worker pool
// (internal/parallel); Sweep flattens all batches' candidates into one
// work list over the same pool, so Options.Workers is a true bound on
// concurrent simulations (0 means parallel.DefaultWorkers(), i.e.
// GOMAXPROCS or the commands' -workers override, and 1 forces the serial
// path). Winner selection is deterministic and tie-stable — the
// lowest-indexed plan in enumeration order wins among equal throughputs —
// so the parallel search returns byte-identical results (including Table
// output) to the serial one. Options.Baseline additionally bypasses the
// schedule/memory memo caches and the DES fast path, reproducing the seed
// evaluator for equivalence tests and as the perf-harness speedup
// denominator.
package search

import (
	"fmt"
	"sort"
	"sync"

	"bfpp/internal/core"
	"bfpp/internal/engine"
	"bfpp/internal/hw"
	"bfpp/internal/memsim"
	"bfpp/internal/model"
	"bfpp/internal/parallel"
	"bfpp/internal/schedule"
)

// Family is a method family as compared in Figure 7, an index into the
// descriptor table built from the schedule registry. A family may span
// several concrete schedules/implementations (the "non-looped" family
// covers both our GPipe and Megatron-LM's 1F1B, as in the paper).
type Family int

const (
	// FamilyBreadthFirst is the paper's method (our implementation:
	// overlapped, DP0 or DP-FS).
	FamilyBreadthFirst Family = iota
	// FamilyDepthFirst is Megatron-LM's interleaved schedule
	// (non-overlapped, DP0).
	FamilyDepthFirst
	// FamilyNonLooped covers GPipe (ours) and 1F1B (Megatron-LM).
	FamilyNonLooped
	// FamilyNoPipeline is sharded data parallelism with tensor parallelism
	// (the "2d parallelism" baseline).
	FamilyNoPipeline
)

// Variant is one concrete (method, overlap, sharding) combination within a
// family, derived from the method's registered schedule traits.
type Variant struct {
	// Method is the schedule method.
	Method core.Method
	// Overlap reports whether the implementation overlaps DP/PP
	// communication; it becomes Plan.OverlapDP/OverlapPP.
	Overlap bool
	// Shardings lists the sharding modes to enumerate.
	Shardings []core.Sharding
}

// FamilyInfo is one row of the family descriptor table: a display name,
// a short selection key and the member variants in enumeration order.
type FamilyInfo struct {
	// Key is the short selection key ("bf", "nl", ...) used by the
	// -families command flags.
	Key string
	// Name is the display name (the Figure 7 legend).
	Name string
	// Paper marks the families of the paper's Figure 7 comparison.
	Paper bool
	// Variants are the member methods with their traits.
	Variants []Variant
}

// familyCache memoizes the descriptor table built from the schedule
// registry, keyed on the generator count so a generator registered after
// the first lookup (e.g. from a test's init) still appears instead of
// being frozen out by a one-shot snapshot. Families only ever grow, and
// existing indexes are stable because the build order is registration
// order.
var familyCache struct {
	sync.Mutex
	nGens int
	table []FamilyInfo
}

// familyTable builds (or rebuilds) the descriptor table: generators
// sharing a family key become variants of one family, in registration
// order (which fixes the Family index values — the paper's four families
// register first, matching the constants above).
func familyTable() []FamilyInfo {
	gens := schedule.Generators()
	familyCache.Lock()
	defer familyCache.Unlock()
	if familyCache.table != nil && familyCache.nGens == len(gens) {
		return familyCache.table
	}
	var table []FamilyInfo
	index := map[string]int{}
	for _, g := range gens {
		tr := g.Traits()
		if tr.Family == "" {
			continue
		}
		i, ok := index[tr.Family]
		if !ok {
			i = len(table)
			index[tr.Family] = i
			table = append(table, FamilyInfo{Key: tr.Family, Name: tr.FamilyName, Paper: tr.Paper})
		}
		table[i].Variants = append(table[i].Variants, Variant{
			Method:    g.Method(),
			Overlap:   tr.Overlap,
			Shardings: tr.Shardings,
		})
	}
	familyCache.nGens = len(gens)
	familyCache.table = table
	return table
}

// Families returns the paper's Figure 7 families in display order (the
// default search scope, preserving the pre-registry behavior).
func Families() []Family {
	var out []Family
	for i, fi := range familyTable() {
		if fi.Paper {
			out = append(out, Family(i))
		}
	}
	return out
}

// AllFamilies returns every registered family — the paper's four plus the
// extension schedules — in registration order.
func AllFamilies() []Family {
	out := make([]Family, len(familyTable()))
	for i := range out {
		out[i] = Family(i)
	}
	return out
}

// FamilyByKey resolves a family from its short selection key.
func FamilyByKey(key string) (Family, bool) {
	for i, fi := range familyTable() {
		if fi.Key == key {
			return Family(i), true
		}
	}
	return 0, false
}

// FamilyOf returns the family containing the given method.
func FamilyOf(m core.Method) (Family, bool) {
	for i, fi := range familyTable() {
		for _, v := range fi.Variants {
			if v.Method == m {
				return Family(i), true
			}
		}
	}
	return 0, false
}

// Info returns the family's descriptor.
func (f Family) Info() FamilyInfo {
	table := familyTable()
	if int(f) < 0 || int(f) >= len(table) {
		return FamilyInfo{Name: fmt.Sprintf("Family(%d)", int(f))}
	}
	return table[f]
}

// String names the family as in Figure 7's legend.
func (f Family) String() string { return f.Info().Name }

// Best is the winning configuration of one (family, batch) search.
type Best struct {
	engine.Result
	// Configs is the number of candidate configurations simulated,
	// mirroring the "Configs" column of Tables E.1-E.3.
	Configs int
}

// Options tunes the search.
type Options struct {
	// Params overrides the engine calibration constants.
	Params *engine.Params
	// MaxMicroBatch caps S_mb in the enumeration (default 16).
	MaxMicroBatch int
	// Workers bounds the pool of goroutines simulating candidate plans
	// (one flat pool even across a Sweep's batches): 0 resolves to
	// parallel.DefaultWorkers() (GOMAXPROCS, or the -workers override of
	// the commands), 1 forces the serial path. Any worker count produces
	// byte-identical results.
	Workers int
	// Baseline selects the seed-faithful serial evaluator: one plan at a
	// time, memo caches bypassed, reference DES loop. It exists for the
	// parallel-vs-serial equivalence tests and as the denominator of the
	// perf harness (scripts/bench.sh); everyday callers leave it false.
	Baseline bool
}

// engineOptions maps the search options onto the per-simulation options.
func (o Options) engineOptions() engine.Options {
	return engine.Options{Params: o.Params, DisableCache: o.Baseline, ReferenceDES: o.Baseline}
}

// workers resolves the effective pool width (1 under Baseline).
func (o Options) workers() int {
	if o.Baseline {
		return 1
	}
	return parallel.Resolve(o.Workers)
}

// Optimize searches one family at one global batch size and returns the
// most efficient feasible configuration. Candidate plans are simulated
// concurrently on Options.Workers goroutines; the winner is the
// lowest-indexed plan (in Enumerate order) of maximal throughput, matching
// the serial path tie-for-tie.
func Optimize(c hw.Cluster, m model.Transformer, f Family, batch int, opt Options) (Best, error) {
	if opt.MaxMicroBatch <= 0 {
		opt.MaxMicroBatch = 16
	}
	plans := Enumerate(c, m, f, batch, opt)
	if len(plans) == 0 {
		return Best{}, fmt.Errorf("search: no feasible configuration for %v at batch %d", f, batch)
	}
	eopt := opt.engineOptions()
	results, err := parallel.Map(opt.workers(), plans, func(_ int, p core.Plan) (engine.Result, error) {
		r, err := engine.SimulateOpts(c, m, p, eopt)
		if err != nil {
			// Enumeration bugs should surface loudly; feasibility issues
			// are filtered beforehand.
			return engine.Result{}, fmt.Errorf("search: %v: %w", p, err)
		}
		return r, nil
	})
	if err != nil {
		return Best{}, err
	}
	return pickBest(results), nil
}

// pickBest selects the winner deterministically: the first result (in
// enumeration order) whose throughput no later result strictly exceeds.
// This is exactly what the serial loop's `>` comparison kept, so ties
// resolve identically regardless of worker count.
func pickBest(results []engine.Result) Best {
	best := Best{Result: results[0], Configs: len(results)}
	for _, r := range results[1:] {
		if r.Throughput > best.Throughput {
			best.Result = r
		}
	}
	return best
}

// outcome carries one simulated plan through the shared sweep work list.
// Per-plan errors skip their batch (as in Optimize) rather than aborting
// the sweep, so they ride in the outcome and the Map error is always nil.
type outcome struct {
	res engine.Result
	err error
}

// runJobs simulates the flattened candidate list on one worker pool.
func runJobs(c hw.Cluster, m model.Transformer, jobs []core.Plan, opt Options) []outcome {
	eopt := opt.engineOptions()
	results, _ := parallel.Map(opt.workers(), jobs, func(_ int, p core.Plan) (outcome, error) {
		r, err := engine.SimulateOpts(c, m, p, eopt)
		if err != nil {
			return outcome{err: fmt.Errorf("search: %v: %w", p, err)}, nil
		}
		return outcome{res: r}, nil
	})
	return results
}

// reduceBatches folds one family's contiguous slice of outcomes (counts[i]
// results per batch, in enumeration order) into per-batch winners,
// skipping infeasible or failed batches exactly like Optimize would.
func reduceBatches(results []outcome, counts []int) []Best {
	var out []Best
	lo := 0
	for _, n := range counts {
		group := results[lo : lo+n]
		lo += n
		if len(group) == 0 {
			continue // no feasible configuration at this batch
		}
		batchResults := make([]engine.Result, 0, len(group))
		failed := false
		for _, o := range group {
			if o.err != nil {
				failed = true // skip the batch, matching Optimize's error
				break
			}
			batchResults = append(batchResults, o.res)
		}
		if failed {
			continue
		}
		out = append(out, pickBest(batchResults))
	}
	return out
}

// Sweep runs the family's search across batch sizes, skipping batches with
// no feasible configuration, and returns the Figure 7 series in batch
// order. All batches' candidate plans are flattened into one work list
// evaluated by a single worker pool, so Options.Workers is a true bound on
// concurrent simulations (no nested fan-out) and no barrier separates
// batches. Results are identical to calling Optimize per batch.
func Sweep(c hw.Cluster, m model.Transformer, f Family, batches []int, opt Options) ([]Best, error) {
	if opt.MaxMicroBatch <= 0 {
		opt.MaxMicroBatch = 16
	}
	var jobs []core.Plan
	counts := make([]int, len(batches)) // candidate plans per batch
	for bi, b := range batches {
		plans := Enumerate(c, m, f, b, opt)
		counts[bi] = len(plans)
		jobs = append(jobs, plans...)
	}
	out := reduceBatches(runJobs(c, m, jobs, opt), counts)
	if len(out) == 0 {
		return nil, fmt.Errorf("search: no feasible configuration for %v at any batch", f)
	}
	return out, nil
}

// SweepAll runs the sweeps of several families over one shared work list:
// every family's candidates at every batch size are flattened into a
// single bounded worker pool, so a family with few candidates no longer
// leaves workers idle while another family's long tail drains (the
// per-family pools used to run back to back). Results are identical to
// calling Sweep per family; families with no feasible configuration at
// any batch are omitted from the map, and an error is returned only when
// that leaves the map empty.
func SweepAll(c hw.Cluster, m model.Transformer, fams []Family, batches []int, opt Options) (map[Family][]Best, error) {
	if opt.MaxMicroBatch <= 0 {
		opt.MaxMicroBatch = 16
	}
	var jobs []core.Plan
	counts := make([][]int, len(fams)) // candidate plans per (family, batch)
	for fi, f := range fams {
		counts[fi] = make([]int, len(batches))
		for bi, b := range batches {
			plans := Enumerate(c, m, f, b, opt)
			counts[fi][bi] = len(plans)
			jobs = append(jobs, plans...)
		}
	}
	results := runJobs(c, m, jobs, opt)
	out := map[Family][]Best{}
	lo := 0
	for fi, f := range fams {
		n := 0
		for _, c := range counts[fi] {
			n += c
		}
		bests := reduceBatches(results[lo:lo+n], counts[fi])
		lo += n
		if len(bests) > 0 {
			out[f] = bests
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("search: no feasible configuration for any family at any batch")
	}
	return out, nil
}

// Enumerate lists the feasible plans of a family at a global batch size.
// The pruning mirrors Appendix E: divisibility of the device grid and the
// batch, stage divisibility, memory feasibility, and the per-method
// constraints and exclusions that Plan.Validate enforces through the
// method registry (e.g. the depth-first N_mb constraint, DP-FS with
// depth-first-style gradient accumulation).
func Enumerate(c hw.Cluster, m model.Transformer, f Family, batch int, opt Options) []core.Plan {
	if opt.MaxMicroBatch <= 0 {
		opt.MaxMicroBatch = 16
	}
	estimate := memsim.CachedEstimate
	if opt.Baseline {
		estimate = memsim.Estimate
	}
	nGPU := c.NumGPUs()
	var plans []core.Plan
	for _, v := range f.Info().Variants {
		for tp := 1; tp <= c.GPUsPerNode; tp *= 2 {
			maxPP := 1
			if v.Method.Pipelined() {
				maxPP = m.Layers
			}
			for pp := 1; pp <= maxPP && pp*tp <= nGPU; pp *= 2 {
				if v.Method.Pipelined() && pp == 1 {
					continue // a 1-deep pipeline is the no-pipeline case
				}
				if nGPU%(pp*tp) != 0 {
					continue
				}
				dp := nGPU / (pp * tp)
				for smb := 1; smb <= opt.MaxMicroBatch; smb *= 2 {
					if batch%(dp*smb) != 0 {
						continue
					}
					nmb := batch / (dp * smb)
					if nmb < 1 {
						continue
					}
					if v.Method.Pipelined() && nmb < pp {
						continue
					}
					for _, loops := range loopOptions(m, v.Method, pp) {
						for _, sh := range v.Shardings {
							if sh != core.DP0 && dp == 1 {
								continue
							}
							p := core.Plan{
								Method: v.Method, DP: dp, PP: pp, TP: tp,
								MicroBatch: smb, NumMicro: nmb, Loops: loops,
								Sharding: sh, OverlapDP: v.Overlap, OverlapPP: v.Overlap,
							}
							if p.Validate(m) != nil {
								continue
							}
							if !memsim.Feasible(estimate(m, p), c.GPU.MemBytes) {
								continue
							}
							plans = append(plans, p)
						}
					}
				}
			}
		}
	}
	return plans
}

// loopOptions returns the N_loop values to try, derived from the method's
// registered traits: 1 for the non-looped pipeline methods, the powers of
// two dividing the stage budget for looped ones, and the per-layer stage
// granularity for the no-pipeline schedules (whose "loops" only set the
// data-parallel aggregation granularity).
func loopOptions(m model.Transformer, method core.Method, pp int) []int {
	switch {
	case !method.Pipelined():
		return []int{m.Layers}
	case !method.Looped():
		return []int{1}
	default:
		var out []int
		for l := 1; pp*l <= m.Layers; l *= 2 {
			if m.Layers%(pp*l) == 0 {
				out = append(out, l)
			}
		}
		return out
	}
}

// Table formats a set of sweep results as a Table E.1-style listing.
// Families appear in registry display order; families absent from the
// results map are skipped.
func Table(title string, results map[Family][]Best) string {
	out := fmt.Sprintf("%s\n%-26s %6s %4s %4s %4s %5s %6s %8s %10s %8s %8s %8s\n",
		title, "Method", "Batch", "PP", "TP", "Smb", "Nmb", "Nloop", "Sharded",
		"Tflop/s", "Mem GiB", "Min GiB", "Configs")
	for _, f := range AllFamilies() {
		bests, ok := results[f]
		if !ok {
			continue
		}
		sorted := append([]Best(nil), bests...)
		sort.Slice(sorted, func(i, j int) bool {
			return sorted[i].Plan.BatchSize() < sorted[j].Plan.BatchSize()
		})
		for _, b := range sorted {
			p := b.Plan
			shard := "no"
			if p.Sharding != core.DP0 {
				shard = p.Sharding.String()
			}
			out += fmt.Sprintf("%-26s %6d %4d %4d %4d %5d %6d %8s %10.2f %8.2f %8.2f %8d\n",
				f, p.BatchSize(), p.PP, p.TP, p.MicroBatch, p.NumMicro, p.Loops,
				shard, b.Throughput/1e12, b.Memory.Total()/(1<<30),
				b.Memory.TotalMin()/(1<<30), b.Configs)
		}
	}
	return out
}
