// Package search implements the configuration grid search of Appendix E:
// for each method family and global batch size it enumerates the
// distributed configurations (N_PP, N_TP, S_mb, N_mb, N_loop, sharding),
// prunes infeasible and obviously inferior ones, simulates the rest and
// returns the most efficient — reproducing Figure 7 and Tables E.1-E.3.
package search

import (
	"fmt"
	"sort"

	"bfpp/internal/core"
	"bfpp/internal/engine"
	"bfpp/internal/hw"
	"bfpp/internal/memsim"
	"bfpp/internal/model"
)

// Family is a method family as compared in Figure 7. A family may span
// several concrete schedules/implementations (the "non-looped" family
// covers both our GPipe and Megatron-LM's 1F1B, as in the paper).
type Family int

const (
	// FamilyBreadthFirst is the paper's method (our implementation:
	// overlapped, DP0 or DP-FS).
	FamilyBreadthFirst Family = iota
	// FamilyDepthFirst is Megatron-LM's interleaved schedule
	// (non-overlapped, DP0).
	FamilyDepthFirst
	// FamilyNonLooped covers GPipe (ours) and 1F1B (Megatron-LM).
	FamilyNonLooped
	// FamilyNoPipeline is sharded data parallelism with tensor parallelism
	// (the "2d parallelism" baseline).
	FamilyNoPipeline
)

// Families returns all families in display order.
func Families() []Family {
	return []Family{FamilyBreadthFirst, FamilyDepthFirst, FamilyNonLooped, FamilyNoPipeline}
}

// String names the family as in Figure 7's legend.
func (f Family) String() string {
	switch f {
	case FamilyBreadthFirst:
		return "Breadth-first (ours)"
	case FamilyDepthFirst:
		return "Depth-first (Megatron-LM)"
	case FamilyNonLooped:
		return "Non-looped (GPipe/1F1B)"
	case FamilyNoPipeline:
		return "No pipeline (Sharded)"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Best is the winning configuration of one (family, batch) search.
type Best struct {
	engine.Result
	// Configs is the number of candidate configurations simulated,
	// mirroring the "Configs" column of Tables E.1-E.3.
	Configs int
}

// Options tunes the search.
type Options struct {
	// Params overrides the engine calibration constants.
	Params *engine.Params
	// MaxMicroBatch caps S_mb in the enumeration (default 16).
	MaxMicroBatch int
}

// Optimize searches one family at one global batch size and returns the
// most efficient feasible configuration.
func Optimize(c hw.Cluster, m model.Transformer, f Family, batch int, opt Options) (Best, error) {
	if opt.MaxMicroBatch <= 0 {
		opt.MaxMicroBatch = 16
	}
	plans := Enumerate(c, m, f, batch, opt)
	best := Best{}
	found := false
	for _, p := range plans {
		r, err := engine.SimulateOpts(c, m, p, engine.Options{Params: opt.Params})
		if err != nil {
			// Enumeration bugs should surface loudly; feasibility issues
			// are filtered beforehand.
			return Best{}, fmt.Errorf("search: %v: %w", p, err)
		}
		best.Configs++
		if !found || r.Throughput > best.Throughput {
			best.Result = r
			found = true
		}
	}
	if !found {
		return Best{}, fmt.Errorf("search: no feasible configuration for %v at batch %d", f, batch)
	}
	return best, nil
}

// Sweep runs Optimize across batch sizes, skipping batches with no feasible
// configuration, and returns the Figure 7 series for the family.
func Sweep(c hw.Cluster, m model.Transformer, f Family, batches []int, opt Options) ([]Best, error) {
	var out []Best
	for _, b := range batches {
		best, err := Optimize(c, m, f, b, opt)
		if err != nil {
			continue
		}
		out = append(out, best)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("search: no feasible configuration for %v at any batch", f)
	}
	return out, nil
}

// variant is one concrete (method, overlap, sharding) combination within a
// family.
type variant struct {
	method    core.Method
	overlap   bool
	shardings []core.Sharding
}

func variants(f Family) []variant {
	switch f {
	case FamilyBreadthFirst:
		return []variant{{core.BreadthFirst, true, []core.Sharding{core.DP0, core.DPFS}}}
	case FamilyDepthFirst:
		return []variant{{core.DepthFirst, false, []core.Sharding{core.DP0}}}
	case FamilyNonLooped:
		return []variant{
			{core.GPipe, true, []core.Sharding{core.DP0, core.DPPS}},
			{core.OneFOneB, false, []core.Sharding{core.DP0}},
		}
	case FamilyNoPipeline:
		return []variant{{core.NoPipelineBF, true, []core.Sharding{core.DP0, core.DPFS}}}
	default:
		return nil
	}
}

// Enumerate lists the feasible plans of a family at a global batch size.
// The pruning mirrors Appendix E: divisibility of the device grid and the
// batch, the depth-first N_mb constraint, stage divisibility, memory
// feasibility, and exclusion of obviously inferior combinations (DP-FS with
// depth-first-style gradient accumulation).
func Enumerate(c hw.Cluster, m model.Transformer, f Family, batch int, opt Options) []core.Plan {
	if opt.MaxMicroBatch <= 0 {
		opt.MaxMicroBatch = 16
	}
	nGPU := c.NumGPUs()
	var plans []core.Plan
	for _, v := range variants(f) {
		for tp := 1; tp <= c.GPUsPerNode; tp *= 2 {
			maxPP := 1
			if v.method.Pipelined() {
				maxPP = m.Layers
			}
			for pp := 1; pp <= maxPP && pp*tp <= nGPU; pp *= 2 {
				if v.method.Pipelined() && pp == 1 {
					continue // a 1-deep pipeline is the no-pipeline case
				}
				if nGPU%(pp*tp) != 0 {
					continue
				}
				dp := nGPU / (pp * tp)
				for smb := 1; smb <= opt.MaxMicroBatch; smb *= 2 {
					if batch%(dp*smb) != 0 {
						continue
					}
					nmb := batch / (dp * smb)
					if nmb < 1 {
						continue
					}
					if v.method.Pipelined() && nmb < pp {
						continue
					}
					if v.method == core.DepthFirst && nmb%pp != 0 {
						continue
					}
					for _, loops := range loopOptions(m, v.method, pp) {
						for _, sh := range v.shardings {
							if sh != core.DP0 && dp == 1 {
								continue
							}
							p := core.Plan{
								Method: v.method, DP: dp, PP: pp, TP: tp,
								MicroBatch: smb, NumMicro: nmb, Loops: loops,
								Sharding: sh, OverlapDP: v.overlap, OverlapPP: v.overlap,
							}
							if p.Validate(m) != nil {
								continue
							}
							if !memsim.Feasible(memsim.Estimate(m, p), c.GPU.MemBytes) {
								continue
							}
							plans = append(plans, p)
						}
					}
				}
			}
		}
	}
	return plans
}

// loopOptions returns the N_loop values to try: 1 for non-looped methods,
// the powers of two dividing the stage budget for looped ones, and the
// per-layer stage granularity for the no-pipeline schedules (whose "loops"
// only set the data-parallel aggregation granularity).
func loopOptions(m model.Transformer, method core.Method, pp int) []int {
	switch {
	case method == core.GPipe || method == core.OneFOneB:
		return []int{1}
	case !method.Pipelined():
		return []int{m.Layers}
	default:
		var out []int
		for l := 1; pp*l <= m.Layers; l *= 2 {
			if m.Layers%(pp*l) == 0 {
				out = append(out, l)
			}
		}
		return out
	}
}

// Table formats a set of sweep results as a Table E.1-style listing.
func Table(title string, results map[Family][]Best) string {
	out := fmt.Sprintf("%s\n%-26s %6s %4s %4s %4s %5s %6s %8s %10s %8s %8s %8s\n",
		title, "Method", "Batch", "PP", "TP", "Smb", "Nmb", "Nloop", "Sharded",
		"Tflop/s", "Mem GiB", "Min GiB", "Configs")
	for _, f := range Families() {
		bests, ok := results[f]
		if !ok {
			continue
		}
		sorted := append([]Best(nil), bests...)
		sort.Slice(sorted, func(i, j int) bool {
			return sorted[i].Plan.BatchSize() < sorted[j].Plan.BatchSize()
		})
		for _, b := range sorted {
			p := b.Plan
			shard := "no"
			if p.Sharding != core.DP0 {
				shard = p.Sharding.String()
			}
			out += fmt.Sprintf("%-26s %6d %4d %4d %4d %5d %6d %8s %10.2f %8.2f %8.2f %8d\n",
				f, p.BatchSize(), p.PP, p.TP, p.MicroBatch, p.NumMicro, p.Loops,
				shard, b.Throughput/1e12, b.Memory.Total()/(1<<30),
				b.Memory.TotalMin()/(1<<30), b.Configs)
		}
	}
	return out
}
