// Package search implements the configuration grid search of Appendix E:
// for each method family and global batch size it enumerates the
// distributed configurations (N_PP, N_TP, S_mb, N_mb, N_loop, sharding),
// prunes infeasible and obviously inferior ones, simulates the rest and
// returns the most efficient — reproducing Figure 7 and Tables E.1-E.3.
//
// # Concurrency
//
// Optimize fans the enumerated plans out across a bounded worker pool
// (internal/parallel); Sweep flattens all batches' candidates into one
// work list over the same pool, so Options.Workers is a true bound on
// concurrent simulations (0 means parallel.DefaultWorkers(), i.e.
// GOMAXPROCS or the commands' -workers override, and 1 forces the serial
// path). Winner selection is deterministic and tie-stable — the
// lowest-indexed plan in enumeration order wins among equal throughputs —
// so the parallel search returns byte-identical results (including Table
// output) to the serial one. Options.Baseline additionally bypasses the
// schedule/memory memo caches and the DES fast path, reproducing the seed
// evaluator for equivalence tests and as the perf-harness speedup
// denominator.
package search

import (
	"fmt"
	"sort"

	"bfpp/internal/core"
	"bfpp/internal/engine"
	"bfpp/internal/hw"
	"bfpp/internal/memsim"
	"bfpp/internal/model"
	"bfpp/internal/parallel"
)

// Family is a method family as compared in Figure 7. A family may span
// several concrete schedules/implementations (the "non-looped" family
// covers both our GPipe and Megatron-LM's 1F1B, as in the paper).
type Family int

const (
	// FamilyBreadthFirst is the paper's method (our implementation:
	// overlapped, DP0 or DP-FS).
	FamilyBreadthFirst Family = iota
	// FamilyDepthFirst is Megatron-LM's interleaved schedule
	// (non-overlapped, DP0).
	FamilyDepthFirst
	// FamilyNonLooped covers GPipe (ours) and 1F1B (Megatron-LM).
	FamilyNonLooped
	// FamilyNoPipeline is sharded data parallelism with tensor parallelism
	// (the "2d parallelism" baseline).
	FamilyNoPipeline
)

// Families returns all families in display order.
func Families() []Family {
	return []Family{FamilyBreadthFirst, FamilyDepthFirst, FamilyNonLooped, FamilyNoPipeline}
}

// String names the family as in Figure 7's legend.
func (f Family) String() string {
	switch f {
	case FamilyBreadthFirst:
		return "Breadth-first (ours)"
	case FamilyDepthFirst:
		return "Depth-first (Megatron-LM)"
	case FamilyNonLooped:
		return "Non-looped (GPipe/1F1B)"
	case FamilyNoPipeline:
		return "No pipeline (Sharded)"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Best is the winning configuration of one (family, batch) search.
type Best struct {
	engine.Result
	// Configs is the number of candidate configurations simulated,
	// mirroring the "Configs" column of Tables E.1-E.3.
	Configs int
}

// Options tunes the search.
type Options struct {
	// Params overrides the engine calibration constants.
	Params *engine.Params
	// MaxMicroBatch caps S_mb in the enumeration (default 16).
	MaxMicroBatch int
	// Workers bounds the pool of goroutines simulating candidate plans
	// (one flat pool even across a Sweep's batches): 0 resolves to
	// parallel.DefaultWorkers() (GOMAXPROCS, or the -workers override of
	// the commands), 1 forces the serial path. Any worker count produces
	// byte-identical results.
	Workers int
	// Baseline selects the seed-faithful serial evaluator: one plan at a
	// time, memo caches bypassed, reference DES loop. It exists for the
	// parallel-vs-serial equivalence tests and as the denominator of the
	// perf harness (scripts/bench.sh); everyday callers leave it false.
	Baseline bool
}

// engineOptions maps the search options onto the per-simulation options.
func (o Options) engineOptions() engine.Options {
	return engine.Options{Params: o.Params, DisableCache: o.Baseline, ReferenceDES: o.Baseline}
}

// workers resolves the effective pool width (1 under Baseline).
func (o Options) workers() int {
	if o.Baseline {
		return 1
	}
	return parallel.Resolve(o.Workers)
}

// Optimize searches one family at one global batch size and returns the
// most efficient feasible configuration. Candidate plans are simulated
// concurrently on Options.Workers goroutines; the winner is the
// lowest-indexed plan (in Enumerate order) of maximal throughput, matching
// the serial path tie-for-tie.
func Optimize(c hw.Cluster, m model.Transformer, f Family, batch int, opt Options) (Best, error) {
	if opt.MaxMicroBatch <= 0 {
		opt.MaxMicroBatch = 16
	}
	plans := Enumerate(c, m, f, batch, opt)
	if len(plans) == 0 {
		return Best{}, fmt.Errorf("search: no feasible configuration for %v at batch %d", f, batch)
	}
	eopt := opt.engineOptions()
	results, err := parallel.Map(opt.workers(), plans, func(_ int, p core.Plan) (engine.Result, error) {
		r, err := engine.SimulateOpts(c, m, p, eopt)
		if err != nil {
			// Enumeration bugs should surface loudly; feasibility issues
			// are filtered beforehand.
			return engine.Result{}, fmt.Errorf("search: %v: %w", p, err)
		}
		return r, nil
	})
	if err != nil {
		return Best{}, err
	}
	return pickBest(results), nil
}

// pickBest selects the winner deterministically: the first result (in
// enumeration order) whose throughput no later result strictly exceeds.
// This is exactly what the serial loop's `>` comparison kept, so ties
// resolve identically regardless of worker count.
func pickBest(results []engine.Result) Best {
	best := Best{Result: results[0], Configs: len(results)}
	for _, r := range results[1:] {
		if r.Throughput > best.Throughput {
			best.Result = r
		}
	}
	return best
}

// Sweep runs the family's search across batch sizes, skipping batches with
// no feasible configuration, and returns the Figure 7 series in batch
// order. All batches' candidate plans are flattened into one work list
// evaluated by a single worker pool, so Options.Workers is a true bound on
// concurrent simulations (no nested fan-out) and no barrier separates
// batches. Results are identical to calling Optimize per batch.
func Sweep(c hw.Cluster, m model.Transformer, f Family, batches []int, opt Options) ([]Best, error) {
	if opt.MaxMicroBatch <= 0 {
		opt.MaxMicroBatch = 16
	}
	var jobs []core.Plan
	counts := make([]int, len(batches)) // candidate plans per batch
	for bi, b := range batches {
		plans := Enumerate(c, m, f, b, opt)
		counts[bi] = len(plans)
		jobs = append(jobs, plans...)
	}
	type outcome struct {
		res engine.Result
		err error
	}
	eopt := opt.engineOptions()
	// Per-plan errors skip their batch (as in Optimize) rather than
	// aborting the sweep, so they ride in the outcome and the Map error is
	// always nil.
	results, _ := parallel.Map(opt.workers(), jobs, func(_ int, p core.Plan) (outcome, error) {
		r, err := engine.SimulateOpts(c, m, p, eopt)
		if err != nil {
			return outcome{err: fmt.Errorf("search: %v: %w", p, err)}, nil
		}
		return outcome{res: r}, nil
	})
	var out []Best
	lo := 0
	for bi := range batches {
		group := results[lo : lo+counts[bi]]
		lo += counts[bi]
		if len(group) == 0 {
			continue // no feasible configuration at this batch
		}
		batchResults := make([]engine.Result, 0, len(group))
		failed := false
		for _, o := range group {
			if o.err != nil {
				failed = true // skip the batch, matching Optimize's error
				break
			}
			batchResults = append(batchResults, o.res)
		}
		if failed {
			continue
		}
		out = append(out, pickBest(batchResults))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("search: no feasible configuration for %v at any batch", f)
	}
	return out, nil
}

// variant is one concrete (method, overlap, sharding) combination within a
// family.
type variant struct {
	method    core.Method
	overlap   bool
	shardings []core.Sharding
}

func variants(f Family) []variant {
	switch f {
	case FamilyBreadthFirst:
		return []variant{{core.BreadthFirst, true, []core.Sharding{core.DP0, core.DPFS}}}
	case FamilyDepthFirst:
		return []variant{{core.DepthFirst, false, []core.Sharding{core.DP0}}}
	case FamilyNonLooped:
		return []variant{
			{core.GPipe, true, []core.Sharding{core.DP0, core.DPPS}},
			{core.OneFOneB, false, []core.Sharding{core.DP0}},
		}
	case FamilyNoPipeline:
		return []variant{{core.NoPipelineBF, true, []core.Sharding{core.DP0, core.DPFS}}}
	default:
		return nil
	}
}

// Enumerate lists the feasible plans of a family at a global batch size.
// The pruning mirrors Appendix E: divisibility of the device grid and the
// batch, the depth-first N_mb constraint, stage divisibility, memory
// feasibility, and exclusion of obviously inferior combinations (DP-FS with
// depth-first-style gradient accumulation).
func Enumerate(c hw.Cluster, m model.Transformer, f Family, batch int, opt Options) []core.Plan {
	if opt.MaxMicroBatch <= 0 {
		opt.MaxMicroBatch = 16
	}
	estimate := memsim.CachedEstimate
	if opt.Baseline {
		estimate = memsim.Estimate
	}
	nGPU := c.NumGPUs()
	var plans []core.Plan
	for _, v := range variants(f) {
		for tp := 1; tp <= c.GPUsPerNode; tp *= 2 {
			maxPP := 1
			if v.method.Pipelined() {
				maxPP = m.Layers
			}
			for pp := 1; pp <= maxPP && pp*tp <= nGPU; pp *= 2 {
				if v.method.Pipelined() && pp == 1 {
					continue // a 1-deep pipeline is the no-pipeline case
				}
				if nGPU%(pp*tp) != 0 {
					continue
				}
				dp := nGPU / (pp * tp)
				for smb := 1; smb <= opt.MaxMicroBatch; smb *= 2 {
					if batch%(dp*smb) != 0 {
						continue
					}
					nmb := batch / (dp * smb)
					if nmb < 1 {
						continue
					}
					if v.method.Pipelined() && nmb < pp {
						continue
					}
					if v.method == core.DepthFirst && nmb%pp != 0 {
						continue
					}
					for _, loops := range loopOptions(m, v.method, pp) {
						for _, sh := range v.shardings {
							if sh != core.DP0 && dp == 1 {
								continue
							}
							p := core.Plan{
								Method: v.method, DP: dp, PP: pp, TP: tp,
								MicroBatch: smb, NumMicro: nmb, Loops: loops,
								Sharding: sh, OverlapDP: v.overlap, OverlapPP: v.overlap,
							}
							if p.Validate(m) != nil {
								continue
							}
							if !memsim.Feasible(estimate(m, p), c.GPU.MemBytes) {
								continue
							}
							plans = append(plans, p)
						}
					}
				}
			}
		}
	}
	return plans
}

// loopOptions returns the N_loop values to try: 1 for non-looped methods,
// the powers of two dividing the stage budget for looped ones, and the
// per-layer stage granularity for the no-pipeline schedules (whose "loops"
// only set the data-parallel aggregation granularity).
func loopOptions(m model.Transformer, method core.Method, pp int) []int {
	switch {
	case method == core.GPipe || method == core.OneFOneB:
		return []int{1}
	case !method.Pipelined():
		return []int{m.Layers}
	default:
		var out []int
		for l := 1; pp*l <= m.Layers; l *= 2 {
			if m.Layers%(pp*l) == 0 {
				out = append(out, l)
			}
		}
		return out
	}
}

// Table formats a set of sweep results as a Table E.1-style listing.
func Table(title string, results map[Family][]Best) string {
	out := fmt.Sprintf("%s\n%-26s %6s %4s %4s %4s %5s %6s %8s %10s %8s %8s %8s\n",
		title, "Method", "Batch", "PP", "TP", "Smb", "Nmb", "Nloop", "Sharded",
		"Tflop/s", "Mem GiB", "Min GiB", "Configs")
	for _, f := range Families() {
		bests, ok := results[f]
		if !ok {
			continue
		}
		sorted := append([]Best(nil), bests...)
		sort.Slice(sorted, func(i, j int) bool {
			return sorted[i].Plan.BatchSize() < sorted[j].Plan.BatchSize()
		})
		for _, b := range sorted {
			p := b.Plan
			shard := "no"
			if p.Sharding != core.DP0 {
				shard = p.Sharding.String()
			}
			out += fmt.Sprintf("%-26s %6d %4d %4d %4d %5d %6d %8s %10.2f %8.2f %8.2f %8d\n",
				f, p.BatchSize(), p.PP, p.TP, p.MicroBatch, p.NumMicro, p.Loops,
				shard, b.Throughput/1e12, b.Memory.Total()/(1<<30),
				b.Memory.TotalMin()/(1<<30), b.Configs)
		}
	}
	return out
}
