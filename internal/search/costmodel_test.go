package search

import (
	"context"
	"os"
	"testing"

	"bfpp/internal/cost"
	"bfpp/internal/engine"
	"bfpp/internal/hw"
	"bfpp/internal/model"
)

// paramsFor returns engine params carrying the named registered cost model.
func paramsFor(t *testing.T, name string) *engine.Params {
	t.Helper()
	cm, err := cost.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	par := engine.Defaults()
	par.Model = cm
	return &par
}

// TestGoldenTableExplicitPaperModel is the refactor's parity guarantee: a
// sweep that routes pricing through an explicitly looked-up "paper" cost
// model produces the same bytes as the pre-refactor DeriveCosts did —
// testdata/golden_table.txt — at every worker count.
func TestGoldenTableExplicitPaperModel(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model6p6B()
	batches := []int{32, 64, 128}
	want, err := os.ReadFile("testdata/golden_table.txt")
	if err != nil {
		t.Fatalf("reading golden fixture: %v", err)
	}
	for _, workers := range []int{1, 4, 8} {
		opt := Options{Workers: workers, Params: paramsFor(t, "paper")}
		all, err := SweepAll(context.Background(), c, m, Families(), batches, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := Table("Golden: 6.6B on Paper-512 (512 GPUs)", all); got != string(want) {
			t.Fatalf("workers=%d: explicit paper model drifts from pre-refactor golden:\n--- got ---\n%s\n--- want ---\n%s",
				workers, got, want)
		}
	}
}

// TestPrunedSweepMatchesUnprunedCostModels extends the branch-and-bound
// acceptance criterion to the non-default cost models: with the calibrated
// model (off-default profile) and the contended model (on the ethernet
// cluster, where NIC sharing actually bites), the pruned parallel SweepAll
// must stay byte-identical to the unpruned serial reference. This is the
// single-producer invariant paying off: the bounds price through the same
// model as the simulator, so admissibility — and with it pruning exactness
// — holds for any registered model without per-model bound code.
func TestPrunedSweepMatchesUnprunedCostModels(t *testing.T) {
	perturbed := cost.DefaultProfile()
	perturbed.Kernel.MaxEff = 0.5
	perturbed.KernelLaunch *= 3
	perturbed.TPLinkEfficiency = 0.6
	perturbed.DPLinkEfficiency = 0.7
	perturbed.InterNodeLatency *= 4

	cases := []struct {
		name    string
		model   cost.Model
		cluster hw.Cluster
	}{
		{"calibrated-perturbed", cost.Calibrated(perturbed), hw.PaperCluster()},
		{"contended-ethernet", mustLookup(t, "contended"), hw.PaperClusterEthernet()},
	}
	m := model.Model6p6B()
	batches := []int{32, 64}
	fams := AllFamilies()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			par := engine.Defaults()
			par.Model = tc.model
			ref, err := SweepAll(context.Background(), tc.cluster, m, fams, batches,
				Options{NoPrune: true, Workers: 1, Params: &par})
			if err != nil {
				t.Fatal(err)
			}
			want := Table("equivalence", ref)
			for _, workers := range []int{1, 4} {
				stats := &Stats{}
				got, err := SweepAll(context.Background(), tc.cluster, m, fams, batches,
					Options{Workers: workers, Stats: stats, Params: &par})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if s := Table("equivalence", got); s != want {
					t.Errorf("workers=%d: pruned Table differs from unpruned under %s:\n--- unpruned ---\n%s--- pruned ---\n%s",
						workers, tc.name, want, s)
				}
				if stats.PruneRate() <= 0 {
					t.Errorf("workers=%d: expected some pruning under %s, got %v", workers, tc.name, stats)
				}
			}
		})
	}
}

// TestCostModelChangesSearchOutcome guards the plumbing end: if Options.
// Params stopped carrying the model into the sweep, the two tests above
// would pass vacuously. A calibrated profile with a halved kernel ceiling
// changes every plan's compute terms, so the breadth-first winner must
// price differently — and, with strictly less achievable compute, slower —
// than under the paper model. (The contended model is not a usable guard
// here: searches on contention-prone clusters steer the winner away from
// cross-node traffic, so the winning point can legitimately price the same.)
func TestCostModelChangesSearchOutcome(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model6p6B()
	paper, err := Optimize(context.Background(), c, m, FamilyBreadthFirst, 64,
		Options{Params: paramsFor(t, "paper")})
	if err != nil {
		t.Fatal(err)
	}
	slow := cost.DefaultProfile()
	slow.Kernel.MaxEff /= 2
	par := engine.Defaults()
	par.Model = cost.Calibrated(slow)
	cal, err := Optimize(context.Background(), c, m, FamilyBreadthFirst, 64,
		Options{Params: &par})
	if err != nil {
		t.Fatal(err)
	}
	if cal.BatchTime <= paper.BatchTime {
		t.Errorf("halved kernel ceiling should slow the winner: paper %v s, calibrated %v s",
			paper.BatchTime, cal.BatchTime)
	}
}

func mustLookup(t *testing.T, name string) cost.Model {
	t.Helper()
	cm, err := cost.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return cm
}
