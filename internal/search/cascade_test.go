package search

import (
	"context"
	"testing"

	"bfpp/internal/hw"
	"bfpp/internal/model"
)

// TestCascadeTableMatchesExact is the tiered-cascade acceptance criterion:
// the default cascade (tier-1 floor pricing, lazy tier-2 exact replay,
// warm-started incumbents, deferred leader simulation) must produce
// byte-identical search.Table output to both the replay-always path
// (EagerReplay: every candidate priced exactly up front, the PR-4
// behavior) and the unpruned sweep, across every registered family and at
// several worker counts.
func TestCascadeTableMatchesExact(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model6p6B()
	batches := []int{32, 64, 128}
	fams := AllFamilies()

	ref, err := SweepAll(context.Background(), c, m, fams, batches, Options{NoPrune: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := Table("cascade", ref)

	for _, workers := range []int{1, 2, 4, 8} {
		for _, opt := range []Options{
			{Workers: workers},
			{Workers: workers, EagerReplay: true},
		} {
			label := "cascade"
			if opt.EagerReplay {
				label = "eager-replay"
			}
			got, err := SweepAll(context.Background(), c, m, fams, batches, opt)
			if err != nil {
				t.Fatalf("workers=%d %s: %v", workers, label, err)
			}
			if s := Table("cascade", got); s != want {
				t.Errorf("workers=%d: %s Table differs from unpruned:\n--- unpruned ---\n%s--- %s ---\n%s",
					workers, label, want, label, s)
			}
		}
	}
}

// TestWarmStartCascadeProperties is the warm-start/cascade property test:
// over a multi-batch sweep the cascade must (a) return the same winners as
// the unpruned sweep, (b) actually exercise tier 2 (some exact replays
// paid) while keeping it lazy (far fewer replays than enumerations),
// (c) keep the counter algebra intact — every enumerated candidate lands
// in exactly one of dominated/bounded-out/simulated, and the floor-only
// skips are a subset of the bound skips — and (d) land at least one
// warm-started incumbent: adjacent batches of the same family share winner
// shapes, so the neighbor seed must win some group.
func TestWarmStartCascadeProperties(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model6p6B()
	batches := []int{16, 32, 64, 128, 256}
	fams := AllFamilies()

	ref, err := SweepAll(context.Background(), c, m, fams, batches, Options{NoPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	stats := &Stats{}
	got, err := SweepAll(context.Background(), c, m, fams, batches, Options{Workers: 4, Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fams {
		if len(got[f]) != len(ref[f]) {
			t.Fatalf("%v: cascade found %d winners, unpruned %d", f, len(got[f]), len(ref[f]))
		}
		for i := range got[f] {
			if got[f][i].Result != ref[f][i].Result || got[f][i].Configs != ref[f][i].Configs {
				t.Errorf("%v winner %d: cascade %v differs from unpruned %v",
					f, i, got[f][i].Plan, ref[f][i].Plan)
			}
		}
	}

	enum := stats.Enumerated.Load()
	if enum == 0 {
		t.Fatal("no candidates counted")
	}
	if got, want := stats.Dominated.Load()+stats.BoundSkipped.Load()+stats.Simulated.Load(), enum; got != want {
		t.Errorf("counters do not add up: %d vs %d enumerated", got, want)
	}
	if rp := stats.ReplayPriced.Load(); rp == 0 {
		t.Error("cascade never paid a tier-2 exact replay")
	} else if rp >= enum {
		t.Errorf("tier 2 is not lazy: %d replays for %d enumerated candidates", rp, enum)
	}
	if fo, bs := stats.FlooredOut.Load(), stats.BoundSkipped.Load(); fo > bs {
		t.Errorf("FlooredOut %d exceeds BoundSkipped %d", fo, bs)
	} else if fo == 0 {
		t.Error("the tier-1 floor never pruned a candidate on its own")
	}
	if stats.WarmStartHits.Load() == 0 {
		t.Error("no group incumbent was warm-started from a neighboring batch")
	}
	// Per-family cascade counters sum to the totals, like the base counters.
	var fo, rp, ws int64
	for _, k := range stats.FamilyKeys() {
		fs := stats.Family(k)
		fo += fs.FlooredOut.Load()
		rp += fs.ReplayPriced.Load()
		ws += fs.WarmStartHits.Load()
		if f, b := fs.FlooredOut.Load(), fs.BoundSkipped.Load(); f > b {
			t.Errorf("family %s: FlooredOut %d exceeds BoundSkipped %d", k, f, b)
		}
	}
	if fo != stats.FlooredOut.Load() || rp != stats.ReplayPriced.Load() || ws != stats.WarmStartHits.Load() {
		t.Errorf("family cascade counters do not sum to totals: %d/%d/%d vs %d/%d/%d",
			fo, rp, ws, stats.FlooredOut.Load(), stats.ReplayPriced.Load(), stats.WarmStartHits.Load())
	}
	t.Logf("cascade: %v", &stats.FamilyStats)
}
