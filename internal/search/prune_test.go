package search

import (
	"context"
	"testing"

	"bfpp/internal/core"
	"bfpp/internal/engine"
	"bfpp/internal/hw"
	"bfpp/internal/memsim"
	"bfpp/internal/model"
)

// TestPrunedSweepMatchesUnpruned is the branch-and-bound acceptance
// criterion: the pruned SweepAll must produce byte-identical search.Table
// output to the unpruned path, across every registered family (including
// the extension schedules with their Sequence enumeration) and at several
// worker counts.
func TestPrunedSweepMatchesUnpruned(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model6p6B()
	batches := []int{1, 32, 64, 128} // batch 1 is infeasible and must be skipped
	fams := AllFamilies()

	ref, err := SweepAll(context.Background(), c, m, fams, batches, Options{NoPrune: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := Table("equivalence", ref)

	for _, workers := range []int{1, 2, 4, 8} {
		stats := &Stats{}
		got, err := SweepAll(context.Background(), c, m, fams, batches, Options{Workers: workers, Stats: stats})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if s := Table("equivalence", got); s != want {
			t.Errorf("workers=%d: pruned Table differs from unpruned:\n--- unpruned ---\n%s--- pruned ---\n%s",
				workers, want, s)
		}
		if stats.Enumerated.Load() == 0 {
			t.Errorf("workers=%d: no candidates counted", workers)
		}
		if got, want := stats.Dominated.Load()+stats.BoundSkipped.Load()+stats.Simulated.Load(),
			stats.Enumerated.Load(); got != want {
			t.Errorf("workers=%d: counters do not add up: %d skipped+simulated vs %d enumerated",
				workers, got, want)
		}
		if stats.PruneRate() <= 0 {
			t.Errorf("workers=%d: expected some pruning, got %v", workers, stats)
		}
		t.Logf("workers=%d: %v", workers, stats)
	}
}

// TestPrunedMatchesUnprunedLargeCluster repeats the equivalence check at
// the scale the appendixE-large artifact ships: a bigger model on a
// LargeCluster, where the replay-exactness and rounding-slack arguments
// carry much larger op counts and cost magnitudes than the paper testbed.
func TestPrunedMatchesUnprunedLargeCluster(t *testing.T) {
	c := hw.LargeCluster(512)
	m := model.GPT3()
	batches := []int{64, 128}
	fams := AllFamilies()
	ref, err := SweepAll(context.Background(), c, m, fams, batches, Options{NoPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SweepAll(context.Background(), c, m, fams, batches, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := Table("large", ref)
	if s := Table("large", got); s != want {
		t.Errorf("pruned LargeCluster Table differs from unpruned:\n--- unpruned ---\n%s--- pruned ---\n%s", want, s)
	}
}

// TestPrunedOptimizeMatchesUnpruned compares single-batch winners, full
// Result structs included, for every family.
func TestPrunedOptimizeMatchesUnpruned(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model6p6B()
	for _, f := range AllFamilies() {
		want, err := Optimize(context.Background(), c, m, f, 64, Options{NoPrune: true})
		if err != nil {
			t.Fatalf("%v unpruned: %v", f, err)
		}
		got, err := Optimize(context.Background(), c, m, f, 64, Options{Workers: 4})
		if err != nil {
			t.Fatalf("%v pruned: %v", f, err)
		}
		if got.Result != want.Result || got.Configs != want.Configs {
			t.Errorf("%v: pruned winner differs: %v vs %v", f, got.Plan, want.Plan)
		}
	}
}

// TestVScheduleCapChangesWinner pins the ROADMAP item the Sequence
// enumeration ships: at a memory-constrained configuration the V-schedule
// search enumerates several in-flight caps per grid point, and the winner
// carries a non-default cap that strictly beats every default-cap
// candidate.
func TestVScheduleCapChangesWinner(t *testing.T) {
	vfam, ok := FamilyByKey("v")
	if !ok {
		t.Fatal("v-schedule family not registered")
	}
	c := hw.PaperCluster()
	c.GPU.MemBytes = 8 << 30 // memory-constrained V100 variant
	m := model.Model6p6B()
	const batch = 32

	plans := Enumerate(context.Background(), c, m, vfam, batch, Options{})
	capped, dflt := 0, 0
	for _, p := range plans {
		if p.Sequence != 0 {
			capped++
		} else {
			dflt++
		}
	}
	if capped == 0 || dflt == 0 {
		t.Fatalf("expected both capped and default candidates, got %d capped / %d default", capped, dflt)
	}

	best, err := Optimize(context.Background(), c, m, vfam, batch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if best.Plan.Sequence == 0 {
		t.Fatalf("winner %v should carry a non-default in-flight cap", best.Plan)
	}

	// The cap changes the winner: every default-cap candidate is strictly
	// worse than the capped optimum.
	var best0 float64
	for _, p := range plans {
		if p.Sequence != 0 {
			continue
		}
		r, err := engine.Simulate(c, m, p)
		if err != nil {
			t.Fatalf("simulate %v: %v", p, err)
		}
		if r.Throughput > best0 {
			best0 = r.Throughput
		}
	}
	if best.Throughput <= best0 {
		t.Errorf("capped winner %.2f Tflop/s should beat best default-cap %.2f",
			best.Throughput/1e12, best0/1e12)
	}

	// And the dial trades memory: the deadlock-floor cap needs less
	// checkpoint memory than the default at the same grid point.
	low := best.Plan
	low.Sequence = low.Loops
	dfl := low
	dfl.Sequence = 0
	if low.Validate(m) == nil && dfl.Validate(m) == nil && low.Sequence < dfl.PP {
		lowCk := memsim.Estimate(m, low).Checkpoints
		dflCk := memsim.Estimate(m, dfl).Checkpoints
		if lowCk >= dflCk {
			t.Errorf("low cap checkpoints %.2f GiB should undercut default %.2f GiB", lowCk/(1<<30), dflCk/(1<<30))
		}
	}
}

// TestPrunedErrorsMatchUnpruned pins the error-transparency guarantee that
// replaced the old package-comment caveat: a candidate whose simulation
// would error is prechecked before any pruning decision, so it reports the
// same error even when the branch-and-bound would have bounded it out, and
// Optimize/Sweep surface the same lowest-index error with and without
// pruning at any worker count.
func TestPrunedErrorsMatchUnpruned(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model6p6B()
	f, ok := FamilyByKey("df")
	if !ok {
		t.Fatal("depth-first family not registered")
	}
	plans := Enumerate(context.Background(), c, m, f, 64, Options{})
	if len(plans) < 4 {
		t.Fatalf("want >= 4 depth-first candidates, got %d", len(plans))
	}
	// Two failing candidates at different indexes: NumMicro not divisible
	// by PP fails depth-first generation inside the engine. The lower index
	// must win in both paths.
	bad1, bad2 := plans[1], plans[3]
	bad1.NumMicro++
	bad2.NumMicro++
	group := append([]core.Plan{}, plans...)
	group[1], group[3] = bad1, bad2

	groups := [][]core.Plan{group}
	_, refErrs, _ := evalGroups(context.Background(), c, m, groups, []string{"df"}, Options{NoPrune: true, Workers: 1})
	if refErrs[0] == nil {
		t.Fatal("injected candidates did not error on the unpruned path")
	}
	for _, workers := range []int{1, 4} {
		_, errs, _ := evalGroups(context.Background(), c, m, groups, []string{"df"}, Options{Workers: workers})
		if errs[0] == nil {
			t.Fatalf("workers=%d: pruning masked the candidate error %q", workers, refErrs[0])
		}
		if errs[0].Error() != refErrs[0].Error() {
			t.Errorf("workers=%d: pruned error %q != unpruned %q", workers, errs[0], refErrs[0])
		}
	}
}

// TestPerFamilyStats pins the per-family pruning breakdown: family
// counters sum to the totals, and the overlapped families — priced exactly
// by the multi-stream replay — prune a substantial share of their
// candidates (they used to rely on the loose generic floor alone).
func TestPerFamilyStats(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model6p6B()
	stats := &Stats{}
	if _, err := SweepAll(context.Background(), c, m, AllFamilies(), []int{32, 64, 128}, Options{Stats: stats, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	keys := stats.FamilyKeys()
	if len(keys) != len(AllFamilies()) {
		t.Fatalf("per-family stats cover %d families, want %d (%v)", len(keys), len(AllFamilies()), keys)
	}
	var enum, dom, skip, sim int64
	for _, k := range keys {
		fs := stats.Family(k)
		enum += fs.Enumerated.Load()
		dom += fs.Dominated.Load()
		skip += fs.BoundSkipped.Load()
		sim += fs.Simulated.Load()
		if got, want := fs.Dominated.Load()+fs.BoundSkipped.Load()+fs.Simulated.Load(),
			fs.Enumerated.Load(); got != want {
			t.Errorf("family %s: counters do not add up: %d vs %d enumerated", k, got, want)
		}
		t.Logf("family %s: %v", k, fs)
	}
	if enum != stats.Enumerated.Load() || dom != stats.Dominated.Load() ||
		skip != stats.BoundSkipped.Load() || sim != stats.Simulated.Load() {
		t.Errorf("family counters do not sum to totals: %d/%d/%d/%d vs %v", enum, dom, skip, sim, &stats.FamilyStats)
	}
	// The tentpole's acceptance: the overlapped families are now priced by
	// the exact replay and must actually prune.
	for _, k := range []string{"bf", "ws", "hy"} {
		if fs := stats.Family(k); fs.Enumerated.Load() > 0 && fs.PruneRate() < 0.25 {
			t.Errorf("overlapped family %s prunes only %.1f%% (%v), want a substantial rate", k, 100*fs.PruneRate(), fs)
		}
	}
}
