package hw

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// The cluster registry opens the hardware axis the CLI used to hard-code,
// mirroring core.RegisterMethod and model.Register: named constructors and
// parameterized patterns are published copy-on-write at init time, and
// every consumer (the commands' -cluster flags, the service requests'
// "cluster" field) resolves them by name. Fixed names ("paper",
// "ethernet") are tried first; patterns (a GPU count for LargeCluster)
// parse whatever the fixed names did not match, in registration order.

// clusterEntry is one fixed-name registration.
type clusterEntry struct {
	name    string
	aliases []string
	build   func() Cluster
}

// patternEntry is one parameterized registration: label documents the
// accepted spelling ("<gpu-count>"), parse reports whether it accepts the
// argument.
type patternEntry struct {
	label string
	parse func(arg string) (Cluster, bool)
}

var (
	clusterTable atomic.Pointer[[]clusterEntry]
	patternTable atomic.Pointer[[]patternEntry]
	clusterRegMu sync.Mutex // serializes registrations of both tables
)

// Register publishes a named cluster constructor. Name and aliases match
// case-insensitively. It is meant to be called at init time and panics on
// an empty or duplicate spelling or a nil constructor.
func Register(name string, build func() Cluster, aliases ...string) {
	if name == "" {
		panic("hw: Register with an empty name")
	}
	if build == nil {
		panic(fmt.Sprintf("hw: Register(%q) with a nil constructor", name))
	}
	clusterRegMu.Lock()
	defer clusterRegMu.Unlock()
	var cur []clusterEntry
	if p := clusterTable.Load(); p != nil {
		cur = *p
	}
	for _, spelling := range append([]string{name}, aliases...) {
		if _, ok := lookupFixed(cur, spelling); ok {
			panic(fmt.Sprintf("hw: cluster %q registered twice", spelling))
		}
	}
	next := make([]clusterEntry, len(cur), len(cur)+1)
	copy(next, cur)
	next = append(next, clusterEntry{name: name, aliases: aliases, build: build})
	clusterTable.Store(&next)
}

// RegisterPattern publishes a parameterized cluster spelling, e.g. a bare
// GPU count resolving to LargeCluster(n). label is the placeholder shown
// in listings and errors ("<gpu-count>"); parse returns false to pass the
// argument on to the next pattern. Patterns are consulted after the fixed
// names, in registration order. Panics on an empty label, a nil parser or
// a duplicate label.
func RegisterPattern(label string, parse func(arg string) (Cluster, bool)) {
	if label == "" {
		panic("hw: RegisterPattern with an empty label")
	}
	if parse == nil {
		panic(fmt.Sprintf("hw: RegisterPattern(%q) with a nil parser", label))
	}
	clusterRegMu.Lock()
	defer clusterRegMu.Unlock()
	var cur []patternEntry
	if p := patternTable.Load(); p != nil {
		cur = *p
	}
	for _, e := range cur {
		if e.label == label {
			panic(fmt.Sprintf("hw: cluster pattern %q registered twice", label))
		}
	}
	next := make([]patternEntry, len(cur), len(cur)+1)
	copy(next, cur)
	next = append(next, patternEntry{label: label, parse: parse})
	patternTable.Store(&next)
}

// lookupFixed resolves a spelling against a fixed-name table snapshot.
func lookupFixed(table []clusterEntry, name string) (Cluster, bool) {
	want := strings.ToLower(name)
	for _, e := range table {
		if strings.ToLower(e.name) == want {
			return e.build(), true
		}
		for _, a := range e.aliases {
			if strings.ToLower(a) == want {
				return e.build(), true
			}
		}
	}
	return Cluster{}, false
}

// Lookup resolves a registered cluster: fixed names (and aliases,
// case-insensitive) first, then the registered patterns in order.
func Lookup(name string) (Cluster, bool) {
	if p := clusterTable.Load(); p != nil {
		if c, ok := lookupFixed(*p, name); ok {
			return c, true
		}
	}
	if p := patternTable.Load(); p != nil {
		for _, e := range *p {
			if c, ok := e.parse(name); ok {
				return c, true
			}
		}
	}
	return Cluster{}, false
}

// Names returns the registered spellings in registration order — the
// canonical fixed names followed by the pattern labels — which is what an
// "unknown cluster" error should list.
func Names() []string {
	var out []string
	if p := clusterTable.Load(); p != nil {
		for _, e := range *p {
			out = append(out, e.name)
		}
	}
	if p := patternTable.Load(); p != nil {
		for _, e := range *p {
			out = append(out, e.label)
		}
	}
	return out
}

func init() {
	// The paper's testbeds register like any extension would; the bare
	// GPU-count spelling of the trade-off extrapolations is a pattern.
	Register("paper", PaperCluster, "infiniband", "ib")
	Register("ethernet", PaperClusterEthernet, "eth")
	RegisterPattern("<gpu-count>", func(arg string) (Cluster, bool) {
		n := 0
		for _, r := range arg {
			if r < '0' || r > '9' {
				return Cluster{}, false
			}
			n = n*10 + int(r-'0')
			if n > 1<<24 { // an absurd count is a typo, not a cluster
				return Cluster{}, false
			}
		}
		if len(arg) == 0 || n <= 0 {
			return Cluster{}, false
		}
		return LargeCluster(n), true
	})
}
