package hw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidateClusters(t *testing.T) {
	for _, c := range []Cluster{PaperCluster(), PaperClusterEthernet(), LargeCluster(4096)} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	mutations := []func(*Cluster){
		func(c *Cluster) { c.GPUsPerNode = 0 },
		func(c *Cluster) { c.Nodes = -1 },
		func(c *Cluster) { c.GPU.PeakFlops = 0 },
		func(c *Cluster) { c.GPU.MemBytes = 0 },
		func(c *Cluster) { c.InterNode.Bandwidth = 0 },
		func(c *Cluster) { c.IntraNode.Bandwidth = -1 },
	}
	for i, mut := range mutations {
		c := PaperCluster()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: expected error", i)
		}
	}
}

func TestPaperClusterShape(t *testing.T) {
	c := PaperCluster()
	if got := c.NumGPUs(); got != 64 {
		t.Errorf("paper cluster has %d GPUs, want 64", got)
	}
	if c.GPU.Name != "V100-SXM2-32GB" {
		t.Errorf("unexpected GPU %q", c.GPU.Name)
	}
	if c.GPU.MemBytes != 32*(1<<30) {
		t.Errorf("V100 memory = %d, want 32 GiB", c.GPU.MemBytes)
	}
}

func TestLinkBetween(t *testing.T) {
	c := PaperCluster()
	if l := c.LinkBetween(0, 7); l.Name != c.IntraNode.Name {
		t.Errorf("ranks 0 and 7 share a node, got link %q", l.Name)
	}
	if l := c.LinkBetween(0, 8); l.Name != c.InterNode.Name {
		t.Errorf("ranks 0 and 8 are on different nodes, got link %q", l.Name)
	}
	if l := c.LinkBetween(15, 8); l.Name != c.IntraNode.Name {
		t.Errorf("ranks 15 and 8 share node 1, got link %q", l.Name)
	}
}

func TestLinkTime(t *testing.T) {
	l := Link{Bandwidth: 1e9, Latency: 1e-6}
	if got := l.Time(0); got != 0 {
		t.Errorf("zero bytes should take zero time, got %v", got)
	}
	want := 1e-6 + 1.0 // 1 GB over 1 GB/s plus latency
	if got := l.Time(1e9); math.Abs(got-want) > 1e-12 {
		t.Errorf("Time(1GB) = %v, want %v", got, want)
	}
}

// A100 hardware intensities from Appendix A.3: I_NVLink ~= 520 flop/byte and
// I_IB ~= 6240 flop/byte.
func TestA100IntensitiesMatchPaper(t *testing.T) {
	g := A100()
	nv := Intensity(g, NVLinkA100())
	ib := Intensity(g, InfiniBandA100())
	if math.Abs(nv-520)/520 > 0.08 {
		t.Errorf("NVLink intensity = %.0f, want ~520", nv)
	}
	if math.Abs(ib-6240)/6240 > 0.08 {
		t.Errorf("InfiniBand intensity = %.0f, want ~6240", ib)
	}
}

func TestKernelEfficiencyMonotone(t *testing.T) {
	k := V100().KernelEff
	prev := 0.0
	for _, rows := range []float64{64, 128, 256, 1024, 4096, 65536} {
		e := k.Efficiency(rows, 1024)
		if e <= prev {
			t.Errorf("efficiency not increasing at rows=%v: %v <= %v", rows, e, prev)
		}
		prev = e
	}
	if prev >= k.MaxEff {
		t.Errorf("efficiency %v should stay below MaxEff %v", prev, k.MaxEff)
	}
}

func TestKernelEfficiencyBounds(t *testing.T) {
	f := func(r, w uint16) bool {
		k := V100().KernelEff
		e := k.Efficiency(float64(r), float64(w))
		return e >= 0 && e <= k.MaxEff
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if e := V100().KernelEff.Efficiency(0, 100); e != 0 {
		t.Errorf("zero rows should have zero efficiency, got %v", e)
	}
	if e := V100().KernelEff.Efficiency(100, 0); e != 0 {
		t.Errorf("zero width should have zero efficiency, got %v", e)
	}
}

func TestEthernetSlowerThanInfiniBand(t *testing.T) {
	if Ethernet().Bandwidth >= InfiniBandV100().Bandwidth {
		t.Error("Ethernet should be slower than InfiniBand")
	}
	if Ethernet().Latency <= InfiniBandV100().Latency {
		t.Error("Ethernet should have higher latency than InfiniBand")
	}
}

func TestLargeClusterRounding(t *testing.T) {
	c := LargeCluster(4096)
	if c.NumGPUs() != 4096 {
		t.Errorf("LargeCluster(4096) has %d GPUs", c.NumGPUs())
	}
	c = LargeCluster(100) // not a multiple of 8: round up
	if c.NumGPUs() != 104 {
		t.Errorf("LargeCluster(100) has %d GPUs, want 104", c.NumGPUs())
	}
	c = LargeCluster(0) // clamped to one node
	if c.NumGPUs() != 8 || c.Validate() != nil {
		t.Errorf("LargeCluster(0) should clamp to one valid node, got %d GPUs", c.NumGPUs())
	}
}

func TestGPUGenerationsOrdered(t *testing.T) {
	if !(V100().PeakFlops < A100().PeakFlops && A100().PeakFlops < H100().PeakFlops) {
		t.Error("peak flops should increase across GPU generations")
	}
}
