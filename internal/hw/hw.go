// Package hw models the GPU cluster hardware the paper evaluates on: GPU
// compute/memory characteristics, intra-node (NVLink) and inter-node
// (InfiniBand or Ethernet) links, and the node/cluster topology.
//
// The paper assumes clusters of NVIDIA DGX-style nodes, typically 8 GPUs per
// node with NVLink inside the node and InfiniBand across nodes (Section 2).
// All quantities use SI units: flop/s, bytes/s, seconds, bytes.
package hw

import "fmt"

// GPU describes a single accelerator.
type GPU struct {
	// Name identifies the part, for example "V100-SXM2-32GB".
	Name string
	// PeakFlops is the peak half-precision tensor-core throughput in flop/s.
	PeakFlops float64
	// MemBytes is the device memory capacity in bytes.
	MemBytes int64
	// MemBandwidth is the device memory bandwidth in bytes/s, used to cost
	// bandwidth-bound work such as the optimizer step.
	MemBandwidth float64
	// KernelEff describes how efficiently matrix-multiply kernels use
	// PeakFlops as a function of problem shape; see Efficiency.
	KernelEff KernelModel
}

// KernelModel is a saturating kernel-efficiency curve. Small GEMMs cannot
// fill the device (limited thread-level parallelism, relatively more memory
// IO), which is the effect the paper describes in Section 3.1: "a higher
// micro-batch size leads to more efficient computational kernels".
//
// Efficiency = MaxEff * rows/(rows+HalfRows) * width/(width+HalfWidth),
// where rows is the number of GEMM rows processed (micro-batch size times
// sequence length) and width the per-device matrix width (hidden size
// divided by the tensor-parallel size).
type KernelModel struct {
	// MaxEff is the asymptotic fraction of peak achievable by large GEMMs.
	MaxEff float64
	// HalfRows is the row count at which the row factor reaches one half.
	HalfRows float64
	// HalfWidth is the width at which the width factor reaches one half.
	HalfWidth float64
}

// Efficiency returns the fraction of peak flops achieved by kernels with the
// given number of rows (tokens per micro-batch) and per-device width.
func (k KernelModel) Efficiency(rows, width float64) float64 {
	if rows <= 0 || width <= 0 {
		return 0
	}
	return k.MaxEff * (rows / (rows + k.HalfRows)) * (width / (width + k.HalfWidth))
}

// Link describes a network connection as seen by a single GPU.
type Link struct {
	// Name identifies the link type, for example "InfiniBand".
	Name string
	// Bandwidth is the per-GPU aggregate (input+output) bandwidth in
	// bytes/s, following the paper's convention (Appendix A.3 footnote).
	Bandwidth float64
	// Latency is the base message latency in seconds.
	Latency float64
	// SyncCost is the additional per-operation overhead when the transfer
	// is not overlapped with compute: kernel launch, stream synchronization
	// and framework bookkeeping. The paper attributes most of the measured
	// depth-first network overhead to such "latency and synchronization"
	// costs (Section 5.2).
	SyncCost float64
}

// Time returns the duration of transferring n bytes over the link, excluding
// SyncCost (which the engine applies only to non-overlapped operations).
func (l Link) Time(n float64) float64 {
	if n <= 0 {
		return 0
	}
	return l.Latency + n/l.Bandwidth
}

// Intensity returns the hardware arithmetic intensity I_hw = peak flop/s
// divided by link bandwidth (paper Eq. 19 context), in flop/byte.
func Intensity(g GPU, l Link) float64 {
	return g.PeakFlops / l.Bandwidth
}

// Cluster is a homogeneous GPU cluster.
type Cluster struct {
	// Name labels the cluster in reports.
	Name string
	// GPU is the accelerator model, identical across the cluster.
	GPU GPU
	// GPUsPerNode is the node size S_Node (typically 8).
	GPUsPerNode int
	// Nodes is the node count N_Node.
	Nodes int
	// IntraNode is the NVLink-class link between GPUs of one node.
	IntraNode Link
	// InterNode is the InfiniBand- or Ethernet-class link between nodes,
	// expressed per GPU.
	InterNode Link
}

// NumGPUs returns the total GPU count.
func (c Cluster) NumGPUs() int { return c.GPUsPerNode * c.Nodes }

// Validate reports whether the cluster description is usable.
func (c Cluster) Validate() error {
	switch {
	case c.GPUsPerNode <= 0:
		return fmt.Errorf("cluster %s: GPUsPerNode must be positive, got %d", c.Name, c.GPUsPerNode)
	case c.Nodes <= 0:
		return fmt.Errorf("cluster %s: Nodes must be positive, got %d", c.Name, c.Nodes)
	case c.GPU.PeakFlops <= 0:
		return fmt.Errorf("cluster %s: GPU.PeakFlops must be positive", c.Name)
	case c.GPU.MemBytes <= 0:
		return fmt.Errorf("cluster %s: GPU.MemBytes must be positive", c.Name)
	case c.IntraNode.Bandwidth <= 0 || c.InterNode.Bandwidth <= 0:
		return fmt.Errorf("cluster %s: link bandwidths must be positive", c.Name)
	}
	return nil
}

// LinkBetween returns the link connecting two global GPU ranks: the
// intra-node link if they share a node, the inter-node link otherwise.
func (c Cluster) LinkBetween(rankA, rankB int) Link {
	if rankA/c.GPUsPerNode == rankB/c.GPUsPerNode {
		return c.IntraNode
	}
	return c.InterNode
}

const (
	gb = 1e9
	us = 1e-6
)

// V100 returns the V100-SXM2-32GB accelerator used in the paper's testbed:
// 125 Tflop/s half-precision tensor peak, 32 GB HBM2 at 900 GB/s.
//
// The kernel-efficiency constants are calibrated so that the simulated
// throughput lands in the paper's measured 25-62 Tflop/s/GPU band for the
// evaluated models (Tables E.1-E.3).
func V100() GPU {
	return GPU{
		Name:         "V100-SXM2-32GB",
		PeakFlops:    125e12,
		MemBytes:     32 * (1 << 30),
		MemBandwidth: 900 * gb,
		KernelEff:    KernelModel{MaxEff: 0.62, HalfRows: 96, HalfWidth: 192},
	}
}

// A100 returns the A100-SXM4-80GB accelerator referenced in Appendix A.3:
// 312 Tflop/s half-precision tensor peak, 80 GB HBM2e at 2 TB/s.
func A100() GPU {
	return GPU{
		Name:         "A100-SXM4-80GB",
		PeakFlops:    312e12,
		MemBytes:     80 * (1 << 30),
		MemBandwidth: 2000 * gb,
		KernelEff:    KernelModel{MaxEff: 0.70, HalfRows: 128, HalfWidth: 256},
	}
}

// H100 returns the H100-SXM5-80GB accelerator mentioned in the paper's
// conclusion as upcoming hardware: 989 Tflop/s half-precision tensor peak.
func H100() GPU {
	return GPU{
		Name:         "H100-SXM5-80GB",
		PeakFlops:    989e12,
		MemBytes:     80 * (1 << 30),
		MemBandwidth: 3350 * gb,
		KernelEff:    KernelModel{MaxEff: 0.72, HalfRows: 160, HalfWidth: 320},
	}
}

// NVLinkV100 returns the intra-node link of a DGX-1: six NVLink 2.0 bricks,
// 300 GB/s aggregate per GPU.
func NVLinkV100() Link {
	return Link{Name: "NVLink2", Bandwidth: 300 * gb, Latency: 3 * us, SyncCost: 8 * us}
}

// NVLinkA100 returns the intra-node link of a DGX-A100 (559 GB/s aggregate
// per the paper's Appendix A.3 footnote).
func NVLinkA100() Link {
	return Link{Name: "NVLink3", Bandwidth: 559 * gb, Latency: 3 * us, SyncCost: 8 * us}
}

// InfiniBandV100 returns the per-GPU inter-node link of the paper's DGX-1
// testbed: four EDR 100 Gb/s adapters shared by the 8 GPUs of a node, i.e.
// 50 GB/s aggregate (input+output) per node or 6.25 GB/s per GPU. Traffic
// that leaves a ring inside the node (multiple data-parallel members per
// node) sees a proportionally higher effective bandwidth; the engine
// accounts for that sharing.
func InfiniBandV100() Link {
	return Link{Name: "InfiniBand-EDR", Bandwidth: 6.25 * gb, Latency: 5 * us, SyncCost: 30 * us}
}

// InfiniBandA100 returns the per-GPU inter-node link of a DGX-A100 cluster
// (46.6 GB/s aggregate per GPU per Appendix A.3).
func InfiniBandA100() Link {
	return Link{Name: "InfiniBand-HDR", Bandwidth: 46.6 * gb, Latency: 5 * us, SyncCost: 30 * us}
}

// Ethernet returns the slow inter-node network of Section 4.3 and the
// Figure 7c / Table E.3 experiment, where InfiniBand is disabled and the
// nodes fall back to a 100 GbE fabric: ~25 GB/s aggregate per node, 3.125
// GB/s per GPU. This reproduces the paper's observed beta_net ~= 32 on
// Ethernet (Section 5.3).
func Ethernet() Link {
	return Link{Name: "Ethernet", Bandwidth: 1.5625 * gb, Latency: 30 * us, SyncCost: 60 * us}
}

// PaperCluster returns the testbed of Section 5: eight DGX-1 nodes, 64
// V100-SXM2-32GB GPUs, InfiniBand between nodes.
func PaperCluster() Cluster {
	return Cluster{
		Name:        "8xDGX-1",
		GPU:         V100(),
		GPUsPerNode: 8,
		Nodes:       8,
		IntraNode:   NVLinkV100(),
		InterNode:   InfiniBandV100(),
	}
}

// PaperClusterEthernet returns the same testbed with InfiniBand disabled,
// used for Figure 7c and Table E.3.
func PaperClusterEthernet() Cluster {
	c := PaperCluster()
	c.Name = "8xDGX-1-Ethernet"
	c.InterNode = Ethernet()
	return c
}

// LargeCluster returns an NGPUs-GPU V100 cluster (rounded up to whole
// nodes, minimum one) used for the trade-off extrapolations of Figures 1
// and 8.
func LargeCluster(nGPUs int) Cluster {
	c := PaperCluster()
	c.Nodes = (nGPUs + c.GPUsPerNode - 1) / c.GPUsPerNode
	if c.Nodes < 1 {
		c.Nodes = 1
	}
	c.Name = fmt.Sprintf("%dxV100", c.Nodes*c.GPUsPerNode)
	return c
}
