package hw

import (
	"strings"
	"testing"
)

// TestRegistryCoversAllClusters asserts the built-in testbeds and the
// LargeCluster pattern are reachable through the registry and build the
// same clusters as the constructors.
func TestRegistryCoversAllClusters(t *testing.T) {
	cases := map[string]Cluster{
		"paper":    PaperCluster(),
		"ethernet": PaperClusterEthernet(),
		"512":      LargeCluster(512),
	}
	for name, want := range cases {
		got, ok := Lookup(name)
		if !ok {
			t.Errorf("%q is not registered", name)
			continue
		}
		if got != want {
			t.Errorf("%q: registry builds %+v, constructor builds %+v", name, got, want)
		}
		if err := got.Validate(); err != nil {
			t.Errorf("%q: registered cluster invalid: %v", name, err)
		}
	}
	names := Names()
	for _, want := range []string{"paper", "ethernet", "<gpu-count>"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Names() = %v is missing %q", names, want)
		}
	}
}

// TestClusterAliasRoundTrip asserts aliases and case variants resolve to
// the same cluster as the canonical name.
func TestClusterAliasRoundTrip(t *testing.T) {
	cases := map[string]string{
		"infiniband": "paper", "ib": "paper", "PAPER": "paper",
		"eth": "ethernet", "Ethernet": "ethernet",
	}
	for alias, canonical := range cases {
		got, ok := Lookup(alias)
		if !ok {
			t.Errorf("alias %q did not resolve", alias)
			continue
		}
		want, _ := Lookup(canonical)
		if got != want {
			t.Errorf("alias %q built %q, canonical %q built %q", alias, got.Name, canonical, want.Name)
		}
	}
}

// TestPatternLookup pins the pattern behavior: positive GPU counts parse,
// junk does not, and fixed names win over patterns.
func TestPatternLookup(t *testing.T) {
	c, ok := Lookup("4096")
	if !ok || c.NumGPUs() != 4096 {
		t.Errorf("4096: %v, %d GPUs", ok, c.NumGPUs())
	}
	for _, bad := range []string{"", "0", "-8", "12x", "cloud", "99999999999999999999"} {
		if _, ok := Lookup(bad); ok {
			t.Errorf("%q should not resolve", bad)
		}
	}
}

// TestDuplicateClusterRegisterPanics asserts colliding registrations fail
// loudly for both fixed names and patterns.
func TestDuplicateClusterRegisterPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if r := recover(); r == nil {
				t.Errorf("%s: expected panic", name)
			} else if !strings.Contains(strings.ToLower(r.(string)), "regist") {
				t.Errorf("%s: unexpected panic message %v", name, r)
			}
		}()
		fn()
	}
	mustPanic("duplicate name", func() { Register("paper", PaperCluster) })
	mustPanic("duplicate via alias", func() { Register("ib", PaperCluster) })
	mustPanic("duplicate pattern", func() {
		RegisterPattern("<gpu-count>", func(string) (Cluster, bool) { return Cluster{}, false })
	})
	mustPanic("empty name", func() { Register("", PaperCluster) })
	mustPanic("nil constructor", func() { Register("fresh-cluster", nil) })
	mustPanic("nil parser", func() { RegisterPattern("<fresh>", nil) })
}

// TestRegisterClusterExtension registers a throwaway cluster and asserts
// it resolves — the extension recipe in README.md.
func TestRegisterClusterExtension(t *testing.T) {
	if _, ok := Lookup("test-a100"); !ok { // idempotent under -count>1
		Register("test-a100", func() Cluster {
			c := PaperCluster()
			c.Name = "test-a100"
			c.GPU = A100()
			return c
		})
	}
	c, ok := Lookup("TEST-A100")
	if !ok || c.GPU.Name != A100().Name {
		t.Fatalf("extension lookup: %v, %+v", ok, c.GPU)
	}
}
