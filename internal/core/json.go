package core

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Method and Sharding marshal to their display names so that plan
// configuration files are readable and stable across releases (the integer
// values are an implementation detail).

// MarshalJSON encodes the method as its display name.
func (m Method) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.String())
}

// UnmarshalJSON decodes a method from its registered display name or one
// of its aliases (case-insensitive; e.g. "df", "bf", "1f1b", "gpipe").
func (m *Method) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	v, ok := MethodByName(s)
	if !ok {
		return fmt.Errorf("core: unknown method %q", s)
	}
	*m = v
	return nil
}

// MarshalJSON encodes the sharding mode as its display name.
func (s Sharding) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON decodes a sharding mode from its display name.
func (s *Sharding) UnmarshalJSON(data []byte) error {
	var v string
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	switch strings.ToLower(v) {
	case "dp0", "":
		*s = DP0
	case "dp-ps", "dpps":
		*s = DPPS
	case "dp-fs", "dpfs":
		*s = DPFS
	default:
		return fmt.Errorf("core: unknown sharding %q", v)
	}
	return nil
}

// EncodePlan serializes a plan to indented JSON.
func EncodePlan(p Plan) ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// DecodePlan parses a plan from JSON.
func DecodePlan(data []byte) (Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return Plan{}, fmt.Errorf("core: decoding plan: %w", err)
	}
	return p, nil
}
