package core

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Method and Sharding marshal to their display names so that plan
// configuration files are readable and stable across releases (the integer
// values are an implementation detail).

// MarshalJSON encodes the method as its display name.
func (m Method) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.String())
}

// UnmarshalJSON decodes a method from its display name (case-insensitive;
// the aliases "df", "bf", "1f1b", "gpipe" are accepted).
func (m *Method) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch strings.ToLower(s) {
	case "gpipe":
		*m = GPipe
	case "1f1b":
		*m = OneFOneB
	case "depth-first", "df":
		*m = DepthFirst
	case "breadth-first", "bf":
		*m = BreadthFirst
	case "no-pipeline(df)", "nopipeline-df":
		*m = NoPipelineDF
	case "no-pipeline(bf)", "nopipeline-bf":
		*m = NoPipelineBF
	case "hybrid":
		*m = Hybrid
	default:
		return fmt.Errorf("core: unknown method %q", s)
	}
	return nil
}

// MarshalJSON encodes the sharding mode as its display name.
func (s Sharding) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON decodes a sharding mode from its display name.
func (s *Sharding) UnmarshalJSON(data []byte) error {
	var v string
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	switch strings.ToLower(v) {
	case "dp0", "":
		*s = DP0
	case "dp-ps", "dpps":
		*s = DPPS
	case "dp-fs", "dpfs":
		*s = DPFS
	default:
		return fmt.Errorf("core: unknown sharding %q", v)
	}
	return nil
}

// EncodePlan serializes a plan to indented JSON.
func EncodePlan(p Plan) ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// DecodePlan parses a plan from JSON.
func DecodePlan(data []byte) (Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return Plan{}, fmt.Errorf("core: decoding plan: %w", err)
	}
	return p, nil
}
