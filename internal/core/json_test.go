package core

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func TestPlanJSONRoundTrip(t *testing.T) {
	plans := []Plan{
		{Method: BreadthFirst, DP: 4, PP: 8, TP: 2, MicroBatch: 1, NumMicro: 12,
			Loops: 8, Sharding: DPFS, OverlapDP: true, OverlapPP: true},
		{Method: OneFOneB, DP: 1, PP: 8, TP: 8, MicroBatch: 4, NumMicro: 128, Loops: 1},
		{Method: Hybrid, DP: 1, PP: 4, TP: 1, MicroBatch: 1, NumMicro: 16,
			Loops: 2, Sequence: 8},
		{Method: NoPipelineBF, DP: 8, PP: 1, TP: 8, MicroBatch: 2, NumMicro: 4,
			Loops: 64, Sharding: DPPS},
	}
	for _, p := range plans {
		raw, err := EncodePlan(p)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		got, err := DecodePlan(raw)
		if err != nil {
			t.Fatalf("%v: %v\n%s", p, err, raw)
		}
		if got != p {
			t.Errorf("round trip changed plan:\n  in  %+v\n  out %+v", p, got)
		}
	}
}

func TestPlanJSONReadable(t *testing.T) {
	p := Plan{Method: BreadthFirst, DP: 2, PP: 4, TP: 1, MicroBatch: 1,
		NumMicro: 8, Loops: 4, Sharding: DPFS}
	raw, err := EncodePlan(p)
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	if !strings.Contains(s, `"Breadth-first"`) || !strings.Contains(s, `"DP-FS"`) {
		t.Errorf("JSON should use display names:\n%s", s)
	}
}

func TestPlanJSONAliases(t *testing.T) {
	raw := []byte(`{"Method":"bf","DP":1,"PP":4,"TP":1,"MicroBatch":1,"NumMicro":4,"Loops":4,"Sharding":"dpfs"}`)
	p, err := DecodePlan(raw)
	if err != nil {
		t.Fatal(err)
	}
	if p.Method != BreadthFirst || p.Sharding != DPFS {
		t.Errorf("aliases not resolved: %+v", p)
	}
}

func TestPlanJSONErrors(t *testing.T) {
	if _, err := DecodePlan([]byte(`{"Method":"zigzag"}`)); err == nil {
		t.Error("unknown method should fail")
	}
	if _, err := DecodePlan([]byte(`{"Sharding":"half"}`)); err == nil {
		t.Error("unknown sharding should fail")
	}
	if _, err := DecodePlan([]byte(`{`)); err == nil {
		t.Error("bad JSON should fail")
	}
	var m Method
	if err := m.UnmarshalJSON([]byte(`42`)); err == nil {
		t.Error("non-string method should fail")
	}
	var s Sharding
	if err := s.UnmarshalJSON([]byte(`42`)); err == nil {
		t.Error("non-string sharding should fail")
	}
}

// Property: every method and sharding value round-trips.
func TestEnumJSONRoundTripProperty(t *testing.T) {
	f := func(mi, si uint8) bool {
		m := Method(int(mi) % 7)
		sh := Sharding(int(si) % 3)
		mraw, err := json.Marshal(m)
		if err != nil {
			return false
		}
		var m2 Method
		if err := json.Unmarshal(mraw, &m2); err != nil || m2 != m {
			return false
		}
		sraw, err := json.Marshal(sh)
		if err != nil {
			return false
		}
		var s2 Sharding
		return json.Unmarshal(sraw, &s2) == nil && s2 == sh
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
