package core

import (
	"math"
	"testing"
	"testing/quick"

	"bfpp/internal/model"
)

func valid52BPlan() Plan {
	return Plan{
		Method: BreadthFirst, DP: 1, PP: 8, TP: 8,
		MicroBatch: 1, NumMicro: 8, Loops: 4,
		Sharding: DP0, OverlapDP: true, OverlapPP: true,
	}
}

func TestValidatePlans(t *testing.T) {
	m := model.Model52B()
	cases := []Plan{
		valid52BPlan(),
		{Method: GPipe, DP: 1, PP: 8, TP: 8, MicroBatch: 1, NumMicro: 8, Loops: 1},
		{Method: OneFOneB, DP: 1, PP: 8, TP: 8, MicroBatch: 1, NumMicro: 16, Loops: 1},
		{Method: DepthFirst, DP: 1, PP: 8, TP: 8, MicroBatch: 1, NumMicro: 16, Loops: 2},
		{Method: NoPipelineDF, DP: 8, PP: 1, TP: 8, MicroBatch: 2, NumMicro: 1, Loops: 1},
		{Method: NoPipelineBF, DP: 8, PP: 1, TP: 8, MicroBatch: 1, NumMicro: 4, Loops: 4, Sharding: DPFS},
	}
	for _, p := range cases {
		if err := p.Validate(m); err != nil {
			t.Errorf("%v: unexpected error: %v", p, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	m := model.Model52B()
	cases := []struct {
		name string
		p    Plan
	}{
		{"zero DP", Plan{Method: GPipe, DP: 0, PP: 8, TP: 1, MicroBatch: 1, NumMicro: 8, Loops: 1}},
		{"zero micro", Plan{Method: GPipe, DP: 1, PP: 8, TP: 1, MicroBatch: 0, NumMicro: 8, Loops: 1}},
		{"zero nmb", Plan{Method: GPipe, DP: 1, PP: 8, TP: 1, MicroBatch: 1, NumMicro: 0, Loops: 1}},
		{"gpipe looped", Plan{Method: GPipe, DP: 1, PP: 8, TP: 1, MicroBatch: 1, NumMicro: 8, Loops: 2}},
		{"too few micro-batches", Plan{Method: GPipe, DP: 1, PP: 8, TP: 1, MicroBatch: 1, NumMicro: 4, Loops: 1}},
		{"depth-first nmb not multiple", Plan{Method: DepthFirst, DP: 1, PP: 8, TP: 1, MicroBatch: 1, NumMicro: 12, Loops: 2}},
		{"layers not divisible", Plan{Method: BreadthFirst, DP: 1, PP: 8, TP: 1, MicroBatch: 1, NumMicro: 8, Loops: 3}},
		{"no-pipeline with PP", Plan{Method: NoPipelineDF, DP: 1, PP: 2, TP: 1, MicroBatch: 1, NumMicro: 2, Loops: 1}},
		{"DPFS with DP=1", Plan{Method: BreadthFirst, DP: 1, PP: 8, TP: 1, MicroBatch: 1, NumMicro: 8, Loops: 2, Sharding: DPFS}},
		{"depth-first DPFS", Plan{Method: DepthFirst, DP: 2, PP: 8, TP: 1, MicroBatch: 1, NumMicro: 8, Loops: 2, Sharding: DPFS}},
		{"1f1b DPFS", Plan{Method: OneFOneB, DP: 2, PP: 8, TP: 1, MicroBatch: 1, NumMicro: 8, Loops: 1, Sharding: DPFS}},
	}
	for _, c := range cases {
		if err := c.p.Validate(m); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestBatchAlgebra(t *testing.T) {
	p := Plan{Method: BreadthFirst, DP: 4, PP: 4, TP: 2, MicroBatch: 2, NumMicro: 6, Loops: 8}
	if got := p.GPUs(); got != 32 {
		t.Errorf("GPUs = %d, want 32", got)
	}
	if got := p.BatchSize(); got != 48 {
		t.Errorf("BatchSize = %d, want 48", got)
	}
	if got := p.BatchPerGPU(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("beta = %v, want 1.5", got)
	}
	if got := p.BetaMin(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("beta_min = %v, want 0.5", got)
	}
	if got := p.Stages(); got != 32 {
		t.Errorf("Stages = %d, want 32", got)
	}
}

// Eq. (9): bubble = (N_PP - 1)/(N_mb * N_loop).
func TestBubbleFormula(t *testing.T) {
	p := Plan{Method: BreadthFirst, DP: 1, PP: 4, TP: 1, MicroBatch: 1, NumMicro: 8, Loops: 4}
	want := 3.0 / 32.0
	if got := p.Bubble(); math.Abs(got-want) > 1e-12 {
		t.Errorf("bubble = %v, want %v", got, want)
	}
	// Non-looped reduces to Eq. (4).
	p2 := Plan{Method: GPipe, DP: 1, PP: 4, TP: 1, MicroBatch: 1, NumMicro: 8, Loops: 1}
	if got := p2.Bubble(); math.Abs(got-3.0/8.0) > 1e-12 {
		t.Errorf("non-looped bubble = %v, want 0.375", got)
	}
	// No pipeline: no bubble.
	p3 := Plan{Method: NoPipelineDF, DP: 4, PP: 1, TP: 1, MicroBatch: 1, NumMicro: 4, Loops: 1}
	if got := p3.Bubble(); got != 0 {
		t.Errorf("no-pipeline bubble = %v, want 0", got)
	}
}

// Figure 3: looping placement for a 16-layer model on 4 devices.
func TestLoopingPlacementMatchesFigure3(t *testing.T) {
	m := model.Tiny() // 16 layers
	p := Plan{Method: BreadthFirst, DP: 1, PP: 4, TP: 1, MicroBatch: 1, NumMicro: 8, Loops: 4}
	if err := p.Validate(m); err != nil {
		t.Fatal(err)
	}
	// Figure 3b: device 0 hosts layers 0,4,8,12 -> stages 0,4,8,12 with one
	// layer per stage.
	if got := p.LayersPerStage(m); got != 1 {
		t.Fatalf("layers per stage = %d, want 1", got)
	}
	wantDev0 := []int{0, 4, 8, 12}
	got := p.DeviceStages(0)
	for i, s := range wantDev0 {
		if got[i] != s {
			t.Errorf("device 0 stage %d = %d, want %d", i, got[i], s)
		}
	}
	// Standard placement (Figure 3a): one stage of 4 layers per device.
	p2 := Plan{Method: GPipe, DP: 1, PP: 4, TP: 1, MicroBatch: 1, NumMicro: 8, Loops: 1}
	if got := p2.LayersPerStage(m); got != 4 {
		t.Errorf("standard layers per stage = %d, want 4", got)
	}
	lo, hi := p2.StageLayers(m, 2)
	if lo != 8 || hi != 12 {
		t.Errorf("stage 2 layers = [%d,%d), want [8,12)", lo, hi)
	}
}

// Property: every stage is owned by exactly one device, and DeviceStages is
// consistent with StageDevice.
func TestPlacementConsistencyProperty(t *testing.T) {
	f := func(ppE, loopE uint8) bool {
		pp := 1 << (ppE % 4) // 1,2,4,8
		loops := 1 << (loopE % 4)
		p := Plan{Method: BreadthFirst, DP: 1, PP: pp, TP: 1,
			MicroBatch: 1, NumMicro: pp, Loops: loops}
		seen := make(map[int]int)
		for r := 0; r < pp; r++ {
			for _, s := range p.DeviceStages(r) {
				if p.StageDevice(s) != r {
					return false
				}
				seen[s]++
			}
		}
		if len(seen) != p.Stages() {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMethodPredicates(t *testing.T) {
	if !BreadthFirst.Looped() || !DepthFirst.Looped() {
		t.Error("looped methods misclassified")
	}
	if GPipe.Looped() || OneFOneB.Looped() {
		t.Error("non-looped methods misclassified")
	}
	if NoPipelineDF.Pipelined() || NoPipelineBF.Pipelined() {
		t.Error("no-pipeline methods misclassified")
	}
	if !BreadthFirst.ForwardFirst() || OneFOneB.ForwardFirst() {
		t.Error("forward-first classification wrong")
	}
}

func TestStringFormats(t *testing.T) {
	for _, s := range []Sharding{DP0, DPPS, DPFS, Sharding(9)} {
		if s.String() == "" {
			t.Error("empty sharding string")
		}
	}
	for _, m := range []Method{GPipe, OneFOneB, DepthFirst, BreadthFirst, NoPipelineDF, NoPipelineBF, Method(17)} {
		if m.String() == "" {
			t.Error("empty method string")
		}
	}
	if valid52BPlan().String() == "" {
		t.Error("empty plan string")
	}
}
