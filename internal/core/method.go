package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Method selects the pipeline schedule (Sections 3.2 and 4.1). The set of
// methods is open: the seven schedules of the paper are declared here, and
// further schedules register themselves through RegisterMethod (the
// internal/schedule package does so for its extension generators). A
// Method value is only meaningful once a MethodInfo has been registered
// for it.
type Method int

const (
	// GPipe is the non-looped forward-first schedule of Huang et al.
	GPipe Method = iota
	// OneFOneB is the non-looped 1F1B schedule of Harlap et al.
	OneFOneB
	// DepthFirst is the looped depth-first schedule of Narayanan et al.
	// (Megatron-LM interleaved), running micro-batches in sequences of
	// N_PP with backward priority.
	DepthFirst
	// BreadthFirst is the paper's contribution: a looped schedule running
	// all micro-batches through each local stage before moving on,
	// forward-first, maximizing network overlap.
	BreadthFirst
	// NoPipelineDF is data parallelism without pipelining, accumulating
	// gradients depth-first (each micro-batch runs its full forward and
	// backward before the next starts).
	NoPipelineDF
	// NoPipelineBF is data parallelism without pipelining with the
	// breadth-first gradient accumulation of Appendix C (stages processed
	// breadth-first across micro-batches on a single device).
	NoPipelineBF
	// Hybrid is the depth/breadth hybrid the paper conjectures in Section
	// 4.2: a looping schedule processing micro-batches in sequences of
	// Plan.Sequence >= N_PP (Sequence = N_PP reduces to DepthFirst;
	// Sequence = N_mb approaches BreadthFirst). The extra slack lets the
	// pipeline-parallel transfers overlap, addressing the depth-first
	// schedule's input starvation.
	Hybrid
	// WeightStash1F1B is the PipeDream-style 1F1B with weight stashing
	// (Harlap et al., 2018), registered by internal/schedule: the batch's
	// data dependencies match 1F1B, but every in-flight micro-batch pins a
	// stashed half-precision weight version and the implementation overlaps
	// communication with compute (no flush-coupled blocking).
	WeightStash1F1B
	// VSchedule is the controllable-memory V-schedule (Qi et al., 2024),
	// registered by internal/schedule: stages are placed in a zigzag "V"
	// pattern so each device hosts complementary early/late stages, and a
	// tunable per-device cap on in-flight micro-batches (Plan.Sequence)
	// trades pipeline bubble for activation memory.
	VSchedule
)

// AccumWindow classifies how much of the batch a schedule holds in flight
// between optimizer-relevant boundaries (Section 4.2 / Appendix A.3): it
// determines both the fraction of compute available to overlap the gradient
// reduction with and the fully-sharded arithmetic intensity.
type AccumWindow int

const (
	// WindowSingleMicro accumulates per micro-batch: the non-looped
	// schedules (GPipe, 1F1B) and plain no-pipeline accumulation.
	WindowSingleMicro AccumWindow = iota
	// WindowSequence accumulates over a sequence of N_PP micro-batches:
	// the depth-first family (depth-first, hybrid).
	WindowSequence
	// WindowFullBatch holds the entire batch in flight: the breadth-first
	// family.
	WindowFullBatch
)

// Placement selects the stage-to-device mapping of a pipelined method.
type Placement int

const (
	// PlacementWrap is the looping placement of Figure 3: stage s runs on
	// device s mod N_PP, wrapping the stages around the ring.
	PlacementWrap Placement = iota
	// PlacementVee is the zigzag placement of the V-schedule: odd loops
	// reverse direction (stage l*PP+r runs on device PP-1-r), so each
	// device hosts complementary early and late stages and the turnaround
	// stages share a device (no transfer at the apex).
	PlacementVee
)

// MethodInfo is the static metadata of one schedule method: its display
// name, structural traits, stage placement, and the plan constraints that
// the generic Plan.Validate cannot express.
type MethodInfo struct {
	// Name is the display name ("Breadth-first"); it is also the JSON
	// encoding of the method.
	Name string
	// Aliases are extra lower-case spellings accepted when parsing.
	Aliases []string
	// Looped reports whether the schedule uses a looping placement
	// (N_loop > 1 is meaningful).
	Looped bool
	// Pipelined reports whether the schedule uses pipeline parallelism.
	Pipelined bool
	// ForwardFirst reports whether the schedule completes the forward pass
	// of queued micro-batches before starting backward work (GPipe-style)
	// rather than alternating (1F1B-style).
	ForwardFirst bool
	// Placement is the stage-to-device mapping.
	Placement Placement
	// Window is the schedule's gradient-accumulation window (single
	// micro-batch unless declared otherwise).
	Window AccumWindow
	// CheckPlan holds the method's structural plan constraints (nil when
	// the generic checks suffice), e.g. the depth-first N_mb divisibility.
	CheckPlan func(Plan) error
	// CheckSharding holds the method's sharding-compatibility constraints
	// (nil when every mode is supported), e.g. the Section 3.2 exclusion
	// of DP-FS with per-micro-batch gradient accumulation.
	CheckSharding func(Plan) error
}

// The method table is published copy-on-write behind an atomic pointer:
// registrations happen at init time only, while the trait accessors
// (Pipelined, StageDevice, ...) sit on per-op hot paths of the engine
// builder, so reads must be a plain array index with no lock.
var (
	methodTable atomic.Pointer[[]*MethodInfo]
	methodRegMu sync.Mutex // serializes registrations
)

// RegisterMethod publishes the metadata of a schedule method. It is called
// at init time — by this package for the paper's seven methods and by
// schedule packages for their extensions — and panics on a duplicate
// registration or an empty name.
func RegisterMethod(m Method, info MethodInfo) {
	if info.Name == "" {
		panic(fmt.Sprintf("core: RegisterMethod(%d) without a name", int(m)))
	}
	if m < 0 {
		panic(fmt.Sprintf("core: RegisterMethod with negative method %d", int(m)))
	}
	methodRegMu.Lock()
	defer methodRegMu.Unlock()
	var cur []*MethodInfo
	if p := methodTable.Load(); p != nil {
		cur = *p
	}
	n := len(cur)
	if int(m) >= n {
		n = int(m) + 1
	}
	next := make([]*MethodInfo, n)
	copy(next, cur)
	if next[m] != nil {
		panic(fmt.Sprintf("core: method %d registered twice (%q, %q)", int(m), next[m].Name, info.Name))
	}
	next[m] = &info
	methodTable.Store(&next)
}

// info returns the registered metadata pointer, or nil when unregistered.
func (m Method) info() *MethodInfo {
	p := methodTable.Load()
	if p == nil || int(m) < 0 || int(m) >= len(*p) {
		return nil
	}
	return (*p)[m]
}

// Info returns the registered metadata of the method and whether the
// method is registered.
func (m Method) Info() (MethodInfo, bool) {
	if i := m.info(); i != nil {
		return *i, true
	}
	return MethodInfo{}, false
}

// Methods returns every registered method in ascending id order.
func Methods() []Method {
	var out []Method
	if p := methodTable.Load(); p != nil {
		for m, info := range *p {
			if info != nil {
				out = append(out, Method(m))
			}
		}
	}
	return out
}

// MethodByName resolves a method from its display name or one of its
// registered aliases (case-insensitive).
func MethodByName(name string) (Method, bool) {
	want := strings.ToLower(name)
	for _, m := range Methods() {
		info := m.info()
		if strings.ToLower(info.Name) == want {
			return m, true
		}
		for _, a := range info.Aliases {
			if a == want {
				return m, true
			}
		}
	}
	return 0, false
}

// String returns the method's registered display name.
func (m Method) String() string {
	if i := m.info(); i != nil {
		return i.Name
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Looped reports whether the schedule uses a looping placement (N_loop > 1
// is meaningful).
func (m Method) Looped() bool {
	i := m.info()
	return i != nil && i.Looped
}

// Pipelined reports whether the schedule uses pipeline parallelism.
// Unregistered methods report false.
func (m Method) Pipelined() bool {
	i := m.info()
	return i != nil && i.Pipelined
}

// ForwardFirst reports whether the schedule completes the forward pass of
// queued micro-batches before starting backward work (GPipe-style) rather
// than alternating (1F1B-style).
func (m Method) ForwardFirst() bool {
	i := m.info()
	return i != nil && i.ForwardFirst
}

// Window returns the method's gradient-accumulation window
// (single-micro-batch for unregistered methods).
func (m Method) Window() AccumWindow {
	if i := m.info(); i != nil {
		return i.Window
	}
	return WindowSingleMicro
}

// Placement returns the method's stage-to-device mapping (wrap for
// unregistered methods).
func (m Method) Placement() Placement {
	if i := m.info(); i != nil {
		return i.Placement
	}
	return PlacementWrap
}

// noDPFSNonLooped is the Section 3.2 exclusion shared by the non-looped
// pipeline schedules.
func noDPFSNonLooped(p Plan) error {
	if p.Sharding == DPFS {
		return fmt.Errorf("plan: non-looped pipeline with DP-FS is excluded (Section 3.2)")
	}
	return nil
}

// noDPFSDepthAccum is the Appendix E exclusion of DP-FS with
// depth-first-style per-micro-batch gradient accumulation.
func noDPFSDepthAccum(p Plan) error {
	if p.Sharding == DPFS {
		return fmt.Errorf("plan: %v with DP-FS is excluded (Appendix E)", p.Method)
	}
	return nil
}

func init() {
	RegisterMethod(GPipe, MethodInfo{
		Name: "GPipe", Aliases: []string{"gpipe"},
		Pipelined: true, ForwardFirst: true,
		CheckSharding: noDPFSNonLooped,
	})
	RegisterMethod(OneFOneB, MethodInfo{
		Name: "1F1B", Aliases: []string{"1f1b"},
		Pipelined:     true,
		CheckSharding: noDPFSNonLooped,
	})
	RegisterMethod(DepthFirst, MethodInfo{
		Name: "Depth-first", Aliases: []string{"depth-first", "depthfirst", "df"},
		Looped: true, Pipelined: true, Window: WindowSequence,
		CheckPlan: func(p Plan) error {
			if p.NumMicro%p.PP != 0 {
				// Section 4.1: the depth-first schedule constrains N_mb to a
				// multiple of N_PP.
				return fmt.Errorf("plan: depth-first requires NumMicro %% PP == 0 (%d %% %d)", p.NumMicro, p.PP)
			}
			return nil
		},
		CheckSharding: noDPFSDepthAccum,
	})
	RegisterMethod(BreadthFirst, MethodInfo{
		Name: "Breadth-first", Aliases: []string{"breadth-first", "breadthfirst", "bf"},
		Looped: true, Pipelined: true, ForwardFirst: true, Window: WindowFullBatch,
	})
	RegisterMethod(NoPipelineDF, MethodInfo{
		Name: "No-pipeline(DF)", Aliases: []string{"no-pipeline(df)", "nopipeline-df", "np-df"},
		ForwardFirst: true,
	})
	RegisterMethod(NoPipelineBF, MethodInfo{
		Name: "No-pipeline(BF)", Aliases: []string{"no-pipeline(bf)", "nopipeline-bf", "np-bf", "nopipeline"},
		ForwardFirst: true, Window: WindowFullBatch,
	})
	RegisterMethod(Hybrid, MethodInfo{
		Name: "Hybrid", Aliases: []string{"hybrid"},
		Looped: true, Pipelined: true, Window: WindowSequence,
		CheckPlan: func(p Plan) error {
			q := p.SequenceLen()
			if q%p.PP != 0 {
				return fmt.Errorf("plan: hybrid sequence %d must be a multiple of PP %d", q, p.PP)
			}
			if p.NumMicro%q != 0 {
				return fmt.Errorf("plan: hybrid requires NumMicro %% Sequence == 0 (%d %% %d)", p.NumMicro, q)
			}
			return nil
		},
		CheckSharding: noDPFSDepthAccum,
	})
}
