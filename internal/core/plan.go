// Package core defines the distributed-training configuration at the heart
// of the paper: the parallelism Plan combining data parallelism (optionally
// partially or fully sharded), pipeline parallelism with a looping layer
// placement, and tensor parallelism, together with the batch-size algebra of
// Section 3 (beta, beta_min, micro-batch structure).
package core

import (
	"fmt"

	"bfpp/internal/model"
)

// Sharding selects the data-parallel state-sharding mode (Section 3.1).
type Sharding int

const (
	// DP0 is original data parallelism: the whole training state is
	// replicated on every device and gradients are all-reduced.
	DP0 Sharding = iota
	// DPPS is partially sharded data parallelism (ZeRO stage 2): each
	// device optimizes a shard of the weights; gradients are
	// reduce-scattered and updated weights all-gathered.
	DPPS
	// DPFS is fully sharded data parallelism (ZeRO stage 3): layers are
	// reconstructed before every use in both passes.
	DPFS
)

// String returns the paper's name for the sharding mode.
func (s Sharding) String() string {
	switch s {
	case DP0:
		return "DP0"
	case DPPS:
		return "DP-PS"
	case DPFS:
		return "DP-FS"
	default:
		return fmt.Sprintf("Sharding(%d)", int(s))
	}
}

// Method selects the pipeline schedule (Sections 3.2 and 4.1).
type Method int

const (
	// GPipe is the non-looped forward-first schedule of Huang et al.
	GPipe Method = iota
	// OneFOneB is the non-looped 1F1B schedule of Harlap et al.
	OneFOneB
	// DepthFirst is the looped depth-first schedule of Narayanan et al.
	// (Megatron-LM interleaved), running micro-batches in sequences of
	// N_PP with backward priority.
	DepthFirst
	// BreadthFirst is the paper's contribution: a looped schedule running
	// all micro-batches through each local stage before moving on,
	// forward-first, maximizing network overlap.
	BreadthFirst
	// NoPipelineDF is data parallelism without pipelining, accumulating
	// gradients depth-first (each micro-batch runs its full forward and
	// backward before the next starts).
	NoPipelineDF
	// NoPipelineBF is data parallelism without pipelining with the
	// breadth-first gradient accumulation of Appendix C (stages processed
	// breadth-first across micro-batches on a single device).
	NoPipelineBF
	// Hybrid is the depth/breadth hybrid the paper conjectures in Section
	// 4.2: a looping schedule processing micro-batches in sequences of
	// Plan.Sequence >= N_PP (Sequence = N_PP reduces to DepthFirst;
	// Sequence = N_mb approaches BreadthFirst). The extra slack lets the
	// pipeline-parallel transfers overlap, addressing the depth-first
	// schedule's input starvation.
	Hybrid
)

// String returns a short name for the schedule.
func (m Method) String() string {
	switch m {
	case GPipe:
		return "GPipe"
	case OneFOneB:
		return "1F1B"
	case DepthFirst:
		return "Depth-first"
	case BreadthFirst:
		return "Breadth-first"
	case NoPipelineDF:
		return "No-pipeline(DF)"
	case NoPipelineBF:
		return "No-pipeline(BF)"
	case Hybrid:
		return "Hybrid"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Looped reports whether the schedule uses a looping placement (N_loop > 1
// is meaningful).
func (m Method) Looped() bool {
	return m == DepthFirst || m == BreadthFirst || m == Hybrid
}

// Pipelined reports whether the schedule uses pipeline parallelism.
func (m Method) Pipelined() bool { return m != NoPipelineDF && m != NoPipelineBF }

// ForwardFirst reports whether the schedule completes the forward pass of
// queued micro-batches before starting backward work (GPipe-style) rather
// than alternating (1F1B-style).
func (m Method) ForwardFirst() bool {
	return m == GPipe || m == BreadthFirst || m == NoPipelineBF || m == NoPipelineDF
}

// Plan is a complete distributed-training configuration: the (up to)
// three-dimensional device grid N_DP x N_PP x N_TP, the micro-batch
// structure, the looping factor and the sharding and overlap traits.
type Plan struct {
	// Method is the pipeline schedule.
	Method Method
	// DP, PP, TP are the data-, pipeline- and tensor-parallel group sizes.
	DP, PP, TP int
	// MicroBatch is the micro-batch size S_mb.
	MicroBatch int
	// NumMicro is the number of sequential micro-batches N_mb.
	NumMicro int
	// Loops is the number of pipeline loops N_loop = N_stage / N_PP.
	// It must be 1 for non-looped methods.
	Loops int
	// Sharding is the data-parallel sharding mode.
	Sharding Sharding
	// OverlapDP indicates the implementation overlaps data-parallel
	// network operations with compute. The paper's implementation does;
	// Megatron-LM (the 1F1B and depth-first baseline) does not.
	OverlapDP bool
	// OverlapPP likewise for pipeline-parallel transfers.
	OverlapPP bool
	// Sequence is the micro-batch sequence length of the Hybrid schedule
	// (ignored by the other methods). It must be a multiple of PP dividing
	// NumMicro; zero defaults to PP (plain depth-first ordering).
	Sequence int
}

// GPUs returns the total device count N_GPU = N_DP * N_PP * N_TP.
func (p Plan) GPUs() int { return p.DP * p.PP * p.TP }

// Stages returns the total stage count N_stage = N_PP * N_loop.
func (p Plan) Stages() int { return p.PP * p.Loops }

// BatchSize returns the global batch size B = N_DP * N_mb * S_mb.
func (p Plan) BatchSize() int { return p.DP * p.NumMicro * p.MicroBatch }

// BatchPerGPU returns beta = B / N_GPU.
func (p Plan) BatchPerGPU() float64 {
	return float64(p.BatchSize()) / float64(p.GPUs())
}

// BetaMin returns the minimum batch size per GPU for this grid,
// beta_min = 1/N_TP (Section 3.3).
func (p Plan) BetaMin() float64 { return 1 / float64(p.TP) }

// Bubble returns the pipeline-bubble overhead fraction of Eq. (9):
// (N_PP - 1) / (N_mb * N_loop). Non-pipelined plans have no bubble.
func (p Plan) Bubble() float64 {
	if !p.Method.Pipelined() {
		return 0
	}
	return float64(p.PP-1) / (float64(p.NumMicro) * float64(p.Loops))
}

// Validate checks the plan against a model architecture.
func (p Plan) Validate(m model.Transformer) error {
	if err := m.Validate(); err != nil {
		return err
	}
	switch {
	case p.DP <= 0 || p.PP <= 0 || p.TP <= 0:
		return fmt.Errorf("plan: group sizes must be positive (DP=%d PP=%d TP=%d)", p.DP, p.PP, p.TP)
	case p.MicroBatch <= 0:
		return fmt.Errorf("plan: MicroBatch must be positive, got %d", p.MicroBatch)
	case p.NumMicro <= 0:
		return fmt.Errorf("plan: NumMicro must be positive, got %d", p.NumMicro)
	case p.Loops <= 0:
		return fmt.Errorf("plan: Loops must be positive, got %d", p.Loops)
	}
	if !p.Method.Pipelined() && p.PP != 1 {
		return fmt.Errorf("plan: %v requires PP=1, got %d", p.Method, p.PP)
	}
	if !p.Method.Looped() && p.Method.Pipelined() && p.Loops != 1 {
		return fmt.Errorf("plan: %v is non-looped but Loops=%d", p.Method, p.Loops)
	}
	if p.Method.Pipelined() && p.NumMicro < p.PP {
		return fmt.Errorf("plan: pipeline needs NumMicro >= PP (%d < %d)", p.NumMicro, p.PP)
	}
	if p.Method == DepthFirst && p.NumMicro%p.PP != 0 {
		// Section 4.1: the depth-first schedule constrains N_mb to a
		// multiple of N_PP.
		return fmt.Errorf("plan: depth-first requires NumMicro %% PP == 0 (%d %% %d)", p.NumMicro, p.PP)
	}
	if p.Method == Hybrid {
		q := p.SequenceLen()
		if q%p.PP != 0 {
			return fmt.Errorf("plan: hybrid sequence %d must be a multiple of PP %d", q, p.PP)
		}
		if p.NumMicro%q != 0 {
			return fmt.Errorf("plan: hybrid requires NumMicro %% Sequence == 0 (%d %% %d)", p.NumMicro, q)
		}
	}
	nStages := p.Stages()
	if !p.Method.Pipelined() {
		// No-pipeline plans still break the model into stages for
		// breadth-first gradient accumulation; Loops counts those stages.
		nStages = p.Loops
	}
	if m.Layers%nStages != 0 {
		return fmt.Errorf("plan: %d layers not divisible into %d stages", m.Layers, nStages)
	}
	if p.Sharding == DPFS && p.DP == 1 {
		return fmt.Errorf("plan: DP-FS requires DP > 1")
	}
	if (p.Method == DepthFirst || p.Method == Hybrid) && p.Sharding == DPFS {
		// Section 3.2: PP with per-micro-batch gradient accumulation makes
		// DP-FS impractical; the paper only pairs DP-FS with breadth-first
		// or non-pipelined schedules (Appendix E grid).
		return fmt.Errorf("plan: %v with DP-FS is excluded (Appendix E)", p.Method)
	}
	if (p.Method == GPipe || p.Method == OneFOneB) && p.Sharding == DPFS {
		return fmt.Errorf("plan: non-looped pipeline with DP-FS is excluded (Section 3.2)")
	}
	return nil
}

// SequenceLen returns the hybrid schedule's effective micro-batch sequence
// length (PP when unset).
func (p Plan) SequenceLen() int {
	if p.Sequence <= 0 {
		return p.PP
	}
	return p.Sequence
}

// LayersPerStage returns the number of transformer layers in each stage.
func (p Plan) LayersPerStage(m model.Transformer) int {
	n := p.Stages()
	if !p.Method.Pipelined() {
		n = p.Loops
	}
	return m.Layers / n
}

// StageDevice returns the pipeline rank hosting the given global stage
// index. The looping placement (Figure 3b) assigns stage s to device
// s mod N_PP, wrapping the stages around the ring; with Loops == 1 this
// reduces to the standard placement (Figure 3a) of one stage per device.
func (p Plan) StageDevice(stage int) int {
	if !p.Method.Pipelined() {
		return 0
	}
	return stage % p.PP
}

// DeviceStages returns the global stage indices hosted by a pipeline rank in
// execution order (loop by loop).
func (p Plan) DeviceStages(rank int) []int {
	if !p.Method.Pipelined() {
		if rank != 0 {
			return nil
		}
		stages := make([]int, p.Loops)
		for i := range stages {
			stages[i] = i
		}
		return stages
	}
	stages := make([]int, 0, p.Loops)
	for l := 0; l < p.Loops; l++ {
		stages = append(stages, l*p.PP+rank)
	}
	return stages
}

// StageLayers returns the half-open interval [lo, hi) of layer indices in
// the given global stage.
func (p Plan) StageLayers(m model.Transformer, stage int) (lo, hi int) {
	per := p.LayersPerStage(m)
	return stage * per, (stage + 1) * per
}

// String returns a compact description like
// "Breadth-first DP=4 PP=8 TP=2 Smb=1 Nmb=12 Nloop=8 DP-FS".
func (p Plan) String() string {
	s := fmt.Sprintf("%v DP=%d PP=%d TP=%d Smb=%d Nmb=%d Nloop=%d %v",
		p.Method, p.DP, p.PP, p.TP, p.MicroBatch, p.NumMicro, p.Loops, p.Sharding)
	return s
}
