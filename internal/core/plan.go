// Package core defines the distributed-training configuration at the heart
// of the paper: the parallelism Plan combining data parallelism (optionally
// partially or fully sharded), pipeline parallelism with a looping layer
// placement, and tensor parallelism, together with the batch-size algebra of
// Section 3 (beta, beta_min, micro-batch structure).
package core

import (
	"fmt"

	"bfpp/internal/model"
)

// Sharding selects the data-parallel state-sharding mode (Section 3.1).
type Sharding int

const (
	// DP0 is original data parallelism: the whole training state is
	// replicated on every device and gradients are all-reduced.
	DP0 Sharding = iota
	// DPPS is partially sharded data parallelism (ZeRO stage 2): each
	// device optimizes a shard of the weights; gradients are
	// reduce-scattered and updated weights all-gathered.
	DPPS
	// DPFS is fully sharded data parallelism (ZeRO stage 3): layers are
	// reconstructed before every use in both passes.
	DPFS
)

// String returns the paper's name for the sharding mode.
func (s Sharding) String() string {
	switch s {
	case DP0:
		return "DP0"
	case DPPS:
		return "DP-PS"
	case DPFS:
		return "DP-FS"
	default:
		return fmt.Sprintf("Sharding(%d)", int(s))
	}
}

// Plan is a complete distributed-training configuration: the (up to)
// three-dimensional device grid N_DP x N_PP x N_TP, the micro-batch
// structure, the looping factor and the sharding and overlap traits.
type Plan struct {
	// Method is the pipeline schedule.
	Method Method
	// DP, PP, TP are the data-, pipeline- and tensor-parallel group sizes.
	DP, PP, TP int
	// MicroBatch is the micro-batch size S_mb.
	MicroBatch int
	// NumMicro is the number of sequential micro-batches N_mb.
	NumMicro int
	// Loops is the number of pipeline loops N_loop = N_stage / N_PP.
	// It must be 1 for non-looped methods.
	Loops int
	// Sharding is the data-parallel sharding mode.
	Sharding Sharding
	// OverlapDP indicates the implementation overlaps data-parallel
	// network operations with compute. The paper's implementation does;
	// Megatron-LM (the 1F1B and depth-first baseline) does not.
	OverlapDP bool
	// OverlapPP likewise for pipeline-parallel transfers.
	OverlapPP bool
	// Sequence is the schedule's tunable parameter, interpreted per
	// method: the micro-batch sequence length of the Hybrid schedule (a
	// multiple of PP dividing NumMicro; zero defaults to PP, the plain
	// depth-first ordering), or the per-device in-flight micro-batch cap
	// of the V-schedule (zero defaults to PP). Other methods ignore it.
	Sequence int
}

// GPUs returns the total device count N_GPU = N_DP * N_PP * N_TP.
func (p Plan) GPUs() int { return p.DP * p.PP * p.TP }

// Stages returns the total stage count N_stage = N_PP * N_loop.
func (p Plan) Stages() int { return p.PP * p.Loops }

// NumStages returns the number of stages the model is split into for this
// plan: Stages() for pipelined methods, and Loops for the no-pipeline
// schedules (whose "loops" only set the gradient-accumulation stage
// granularity on the single device).
func (p Plan) NumStages() int {
	if !p.Method.Pipelined() {
		return p.Loops
	}
	return p.Stages()
}

// BatchSize returns the global batch size B = N_DP * N_mb * S_mb.
func (p Plan) BatchSize() int { return p.DP * p.NumMicro * p.MicroBatch }

// BatchPerGPU returns beta = B / N_GPU.
func (p Plan) BatchPerGPU() float64 {
	return float64(p.BatchSize()) / float64(p.GPUs())
}

// BetaMin returns the minimum batch size per GPU for this grid,
// beta_min = 1/N_TP (Section 3.3).
func (p Plan) BetaMin() float64 { return 1 / float64(p.TP) }

// Bubble returns the pipeline-bubble overhead fraction of Eq. (9):
// (N_PP - 1) / (N_mb * N_loop). Non-pipelined plans have no bubble.
func (p Plan) Bubble() float64 {
	if !p.Method.Pipelined() {
		return 0
	}
	return float64(p.PP-1) / (float64(p.NumMicro) * float64(p.Loops))
}

// Validate checks the plan against a model architecture.
func (p Plan) Validate(m model.Transformer) error {
	if err := m.Validate(); err != nil {
		return err
	}
	switch {
	case p.DP <= 0 || p.PP <= 0 || p.TP <= 0:
		return fmt.Errorf("plan: group sizes must be positive (DP=%d PP=%d TP=%d)", p.DP, p.PP, p.TP)
	case p.MicroBatch <= 0:
		return fmt.Errorf("plan: MicroBatch must be positive, got %d", p.MicroBatch)
	case p.NumMicro <= 0:
		return fmt.Errorf("plan: NumMicro must be positive, got %d", p.NumMicro)
	case p.Loops <= 0:
		return fmt.Errorf("plan: Loops must be positive, got %d", p.Loops)
	}
	info, ok := p.Method.Info()
	if !ok {
		return fmt.Errorf("plan: unregistered method %v", p.Method)
	}
	if !info.Pipelined && p.PP != 1 {
		return fmt.Errorf("plan: %v requires PP=1, got %d", p.Method, p.PP)
	}
	if !info.Looped && info.Pipelined && p.Loops != 1 {
		return fmt.Errorf("plan: %v is non-looped but Loops=%d", p.Method, p.Loops)
	}
	if info.Pipelined && p.NumMicro < p.PP {
		return fmt.Errorf("plan: pipeline needs NumMicro >= PP (%d < %d)", p.NumMicro, p.PP)
	}
	if info.CheckPlan != nil {
		if err := info.CheckPlan(p); err != nil {
			return err
		}
	}
	if m.Layers%p.NumStages() != 0 {
		return fmt.Errorf("plan: %d layers not divisible into %d stages", m.Layers, p.NumStages())
	}
	if p.Sharding == DPFS && p.DP == 1 {
		return fmt.Errorf("plan: DP-FS requires DP > 1")
	}
	if info.CheckSharding != nil {
		if err := info.CheckSharding(p); err != nil {
			return err
		}
	}
	return nil
}

// SequenceLen returns the hybrid schedule's effective micro-batch sequence
// length (PP when unset).
func (p Plan) SequenceLen() int {
	if p.Sequence <= 0 {
		return p.PP
	}
	return p.Sequence
}

// LayersPerStage returns the number of transformer layers in each stage.
func (p Plan) LayersPerStage(m model.Transformer) int {
	return m.Layers / p.NumStages()
}

// StageDevice returns the pipeline rank hosting the given global stage
// index, following the method's registered placement. The looping wrap
// placement (Figure 3b) assigns stage s to device s mod N_PP, wrapping the
// stages around the ring; with Loops == 1 this reduces to the standard
// placement (Figure 3a) of one stage per device. The zigzag "V" placement
// reverses direction on odd loops.
func (p Plan) StageDevice(stage int) int {
	if !p.Method.Pipelined() {
		return 0
	}
	r := stage % p.PP
	if p.Method.Placement() == PlacementVee && (stage/p.PP)%2 == 1 {
		return p.PP - 1 - r
	}
	return r
}

// DeviceStages returns the global stage indices hosted by a pipeline rank in
// execution order (loop by loop), under the method's placement.
func (p Plan) DeviceStages(rank int) []int {
	if !p.Method.Pipelined() {
		if rank != 0 {
			return nil
		}
		stages := make([]int, p.Loops)
		for i := range stages {
			stages[i] = i
		}
		return stages
	}
	vee := p.Method.Placement() == PlacementVee
	stages := make([]int, 0, p.Loops)
	for l := 0; l < p.Loops; l++ {
		r := rank
		if vee && l%2 == 1 {
			r = p.PP - 1 - rank
		}
		stages = append(stages, l*p.PP+r)
	}
	return stages
}

// StageLayers returns the half-open interval [lo, hi) of layer indices in
// the given global stage.
func (p Plan) StageLayers(m model.Transformer, stage int) (lo, hi int) {
	per := p.LayersPerStage(m)
	return stage * per, (stage + 1) * per
}

// String returns a compact description like
// "Breadth-first DP=4 PP=8 TP=2 Smb=1 Nmb=12 Nloop=8 DP-FS".
func (p Plan) String() string {
	s := fmt.Sprintf("%v DP=%d PP=%d TP=%d Smb=%d Nmb=%d Nloop=%d %v",
		p.Method, p.DP, p.PP, p.TP, p.MicroBatch, p.NumMicro, p.Loops, p.Sharding)
	return s
}
