package fault

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestScriptCoordinateMatching(t *testing.T) {
	s := NewScript(
		Rule{Point: DeviceOp, Coords: []int{2, 1}, Fault: Fault{Kind: Panic}},
		Rule{Point: PoolItem, Times: 2, Fault: Fault{Kind: Delay, Sleep: time.Millisecond}},
	)
	if _, ok := s.At(DeviceOp, 1, 1, 0, 0); ok {
		t.Error("step 1 should not match the step-2 rule")
	}
	if _, ok := s.At(DeviceOp, 2, 0, 0, 0); ok {
		t.Error("pp 0 should not match the pp-1 rule")
	}
	f, ok := s.At(DeviceOp, 2, 1, 0, 7) // trailing coords are wildcards
	if !ok || f.Kind != Panic {
		t.Fatalf("expected panic fault, got %+v ok=%v", f, ok)
	}
	if _, ok := s.At(DeviceOp, 2, 1, 0, 7); ok {
		t.Error("default Times=1 rule fired twice")
	}
	// The pool rule has budget 2 and wildcard coords.
	if _, ok := s.At(PoolItem, 0); !ok {
		t.Error("pool rule did not fire (1st)")
	}
	if _, ok := s.At(PoolItem, 9); !ok {
		t.Error("pool rule did not fire (2nd)")
	}
	if _, ok := s.At(PoolItem, 0); ok {
		t.Error("pool rule exceeded its arrival budget")
	}
	if got := s.Fired(); got != 3 {
		t.Errorf("Fired() = %d, want 3", got)
	}
}

// TestSeededDeterminism pins the chaos layer's core property: the fault
// decision at a site depends only on (seed, point, coords) — not on
// arrival order, not on which goroutine asks — and each faulting site
// fires exactly once.
func TestSeededDeterminism(t *testing.T) {
	decide := func(seed int64, reverse bool) []bool {
		inj := NewSeeded(seed).Rate(DeviceOp, 0.3, Fault{Kind: Panic})
		out := make([]bool, 64)
		idx := make([]int, 64)
		for i := range idx {
			idx[i] = i
			if reverse {
				idx[i] = 63 - i
			}
		}
		for _, i := range idx {
			_, out[i] = inj.At(DeviceOp, i, 0, 0, 0)
		}
		return out
	}
	fwd, rev := decide(42, false), decide(42, true)
	fired := 0
	for i := range fwd {
		if fwd[i] != rev[i] {
			t.Fatalf("site %d decision depends on arrival order", i)
		}
		if fwd[i] {
			fired++
		}
	}
	if fired == 0 || fired == 64 {
		t.Fatalf("rate 0.3 fired %d/64 sites; hash looks degenerate", fired)
	}
	other := decide(43, false)
	same := 0
	for i := range fwd {
		if fwd[i] == other[i] {
			same++
		}
	}
	if same == 64 {
		t.Error("different seeds produced identical schedules")
	}
	// Fire-once: a second arrival at a faulting site stays clean, so a
	// deterministic retry converges.
	inj := NewSeeded(42).Rate(DeviceOp, 1, Fault{Kind: Panic})
	if _, ok := inj.At(DeviceOp, 5); !ok {
		t.Fatal("rate-1 site did not fire")
	}
	if _, ok := inj.At(DeviceOp, 5); ok {
		t.Error("site fired twice; retry would never converge")
	}
}

func TestSeededConcurrentArrivals(t *testing.T) {
	inj := NewSeeded(7).Rate(PoolItem, 0.5, Fault{Kind: Delay, Sleep: time.Microsecond})
	var wg sync.WaitGroup
	fired := make([]bool, 256)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w * 32; i < (w+1)*32; i++ {
				_, fired[i] = inj.At(PoolItem, i)
			}
		}(w)
	}
	wg.Wait()
	want := NewSeeded(7).Rate(PoolItem, 0.5, Fault{Kind: Delay})
	for i := range fired {
		if _, w := want.At(PoolItem, i); w != fired[i] {
			t.Fatalf("site %d: concurrent decision %v != serial %v", i, fired[i], w)
		}
	}
}

func TestParseScript(t *testing.T) {
	s, err := ParseScript("job:error:2, handler:panic:1,pool:delay:3:5")
	if err != nil {
		t.Fatal(err)
	}
	f, ok := s.At(Job, 0)
	if !ok || f.Kind != Error {
		t.Fatalf("job rule: %+v ok=%v", f, ok)
	}
	var inj InjectedError
	if !errors.As(f.Err, &inj) {
		t.Errorf("injected error not an InjectedError: %v", f.Err)
	}
	if f, ok := s.At(PoolItem, 0); !ok || f.Kind != Delay || f.Sleep != 5*time.Millisecond {
		t.Errorf("pool rule: %+v ok=%v", f, ok)
	}
	if f, ok := s.At(Handler, 0); !ok || f.Kind != Panic {
		t.Errorf("handler rule: %+v ok=%v", f, ok)
	}
	for _, bad := range []string{"", "job:error", "zz:error:1", "job:zz:1", "job:error:0", "pool:delay:1", "pool:delay:1:x"} {
		if _, err := ParseScript(bad); err == nil {
			t.Errorf("ParseScript(%q) accepted", bad)
		}
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if From(ctx) != nil {
		t.Error("empty context carried an injector")
	}
	if With(ctx, nil) != ctx {
		t.Error("With(nil) should return ctx unchanged")
	}
	s := NewScript()
	if got := From(With(ctx, s)); got != Injector(s) {
		t.Errorf("From returned %v, want the installed script", got)
	}
}

func TestSleepCtx(t *testing.T) {
	if err := SleepCtx(context.Background(), 0); err != nil {
		t.Errorf("zero sleep: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := SleepCtx(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled sleep err = %v", err)
	}
	if time.Since(start) > time.Second {
		t.Error("cancelled sleep did not return promptly")
	}
}
