// Package fault is the deterministic chaos layer: a seeded,
// schedule-driven fault injector with named injection points wired through
// the runtime (device-step panics, stalled channel sends), the worker pool
// (item delays) and the job service (handler-level errors and panics).
//
// The design priorities are, in order:
//
//  1. Zero cost when off. Every injection point guards on a nil Injector
//     (a single pointer compare), so the default no-op configuration adds
//     nothing to the hot paths; BENCH_search.json's fault_overhead ratios
//     pin this at <= 1.02x.
//  2. Determinism. A fault decision is a function of the injection point's
//     coordinates (step, rank, op index, arrival number, ...), never of
//     goroutine scheduling: the Seeded injector hashes (seed, point,
//     coords) and the Script injector matches explicit coordinate rules,
//     so the same seed or script produces the same faults at the same
//     sites on every run. Combined with the recovery layers above
//     (supervised trainer replay, retrying clients), any seeded fault
//     schedule yields output byte-identical to the fault-free run — the
//     chaos property the test suites pin.
//  3. Convergence. Both injectors fire a given coordinate tuple a bounded
//     number of times (Script rules carry an arrival budget; Seeded fires
//     each faulting site once), so a deterministic retry of the same work
//     eventually succeeds instead of re-hitting the same fault forever.
package fault

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Point names an injection site class. Injection points pass their own
// coordinate convention to At (documented per constant); rules and rates
// are keyed by Point.
type Point uint8

const (
	// DeviceOp fires before a runtime device executes one schedule op.
	// Coordinates: step, pp, dp, op index. Panic and Delay apply.
	DeviceOp Point = iota
	// ChannelSend fires before a runtime device sends an activation or
	// gradient on the transfer lattice. Coordinates: step, stage, micro,
	// dp. Delay applies (a stalled interconnect).
	ChannelSend
	// PoolItem fires before a parallel worker evaluates one work item.
	// Coordinates: item index. Delay applies (a straggling worker).
	PoolItem
	// Handler fires at HTTP request admission, before the service method
	// runs. Coordinates: arrival number. Error and Panic apply.
	Handler
	// Job fires inside a service job after its semaphore slot is held.
	// Coordinates: arrival number. Error and Panic apply (the panic path
	// proves the slot is released and the server survives).
	Job
	// StoreWrite fires before the durable result store appends a record.
	// Coordinates: write sequence number. Error applies (the write is
	// reported failed, nothing is appended — a full disk); Delay stalls it.
	StoreWrite
	// StoreSync fires before the store fsyncs an appended record.
	// Coordinates: write sequence number. Error applies (the record is
	// written but its durability is unconfirmed — the crash window the
	// CRC framing exists for); Delay stalls it.
	StoreSync
	// Replica fires when the shard coordinator dispatches a group to a
	// replica. Coordinates: replica index, group index. Error fails the
	// dispatch (a crashed or unreachable replica — the coordinator must
	// fail over), Panic crashes the dispatching worker (contained and
	// treated as a replica fault), Delay stalls the dispatch (a straggler,
	// which the group timeout reassigns).
	Replica

	numPoints
)

var pointNames = [numPoints]string{
	DeviceOp:    "device",
	ChannelSend: "send",
	PoolItem:    "pool",
	Handler:     "handler",
	Job:         "job",
	StoreWrite:  "store",
	StoreSync:   "store-sync",
	Replica:     "replica",
}

// String returns the spelling ParseScript accepts.
func (p Point) String() string {
	if int(p) < len(pointNames) {
		return pointNames[p]
	}
	return fmt.Sprintf("Point(%d)", int(p))
}

// Kind is what an injected fault does at its site.
type Kind uint8

const (
	// Panic panics at the site; the recovery path under test must contain
	// it (the runtime recovers device panics, the HTTP middleware recovers
	// handler panics).
	Panic Kind = iota
	// Delay sleeps at the site (cancellably where a context is in scope).
	Delay
	// Error makes the site return Err instead of proceeding.
	Error
)

// String names the kind as ParseScript spells it.
func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case Error:
		return "error"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault is one injected fault decision.
type Fault struct {
	Kind Kind
	// Sleep applies to Kind Delay.
	Sleep time.Duration
	// Err applies to Kind Error; sites wrap it in their own transient
	// error type so retry layers recognize it.
	Err error
}

// Injector decides, at a named injection point with deterministic
// coordinates, whether a fault fires there. Implementations must be safe
// for concurrent use and must make decisions from (point, coords) state
// only — never from wall-clock time or goroutine identity — so a fault
// schedule is reproducible.
type Injector interface {
	At(p Point, coords ...int) (Fault, bool)
}

// Rule is one Script entry: it fires Fault at Point for the first Times
// arrivals whose coordinates start with Coords (missing trailing
// coordinates are wildcards; a nil Coords matches every arrival).
type Rule struct {
	Point  Point
	Coords []int
	// Times bounds how many matching arrivals fire; 0 means 1. The bound
	// is what lets a deterministic retry of the same coordinates succeed.
	Times int
	Fault Fault
}

// Script is the scripted injector: an explicit fault schedule for tests
// and the bfpp-serve -chaos flag. Matching is first-rule-wins in Rule
// order; each rule counts its own arrivals.
type Script struct {
	mu    sync.Mutex
	rules []Rule
	fired []int
}

// NewScript builds a scripted injector. With no rules it is a pure no-op
// (the shape the overhead benchmarks install).
func NewScript(rules ...Rule) *Script {
	return &Script{rules: rules, fired: make([]int, len(rules))}
}

// At implements Injector.
func (s *Script) At(p Point, coords ...int) (Fault, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.rules {
		r := &s.rules[i]
		if r.Point != p || !prefixMatch(r.Coords, coords) {
			continue
		}
		times := r.Times
		if times <= 0 {
			times = 1
		}
		if s.fired[i] >= times {
			continue
		}
		s.fired[i]++
		return r.Fault, true
	}
	return Fault{}, false
}

// Fired returns how many faults the script has injected in total.
func (s *Script) Fired() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, f := range s.fired {
		n += f
	}
	return n
}

func prefixMatch(want, got []int) bool {
	if len(want) > len(got) {
		return false
	}
	for i, w := range want {
		if got[i] != w {
			return false
		}
	}
	return true
}

// Seeded is the seeded random injector: site (point, coords) faults iff
// splitmix64(seed, point, coords) falls under the point's rate. The
// decision is a pure hash — independent of arrival order and goroutine
// scheduling — and each faulting site fires exactly once (the first
// arrival), so retries of the same coordinates converge.
type Seeded struct {
	seed   int64
	rates  [numPoints]float64
	faults [numPoints]Fault

	mu   sync.Mutex
	seen map[string]bool
}

// NewSeeded builds a seeded injector with no active points; arm points
// with Rate.
func NewSeeded(seed int64) *Seeded {
	return &Seeded{seed: seed, seen: make(map[string]bool)}
}

// Rate arms a point: fraction rate of its coordinate space faults with f.
// It returns the receiver for chaining.
func (s *Seeded) Rate(p Point, rate float64, f Fault) *Seeded {
	s.rates[p] = rate
	s.faults[p] = f
	return s
}

// At implements Injector.
func (s *Seeded) At(p Point, coords ...int) (Fault, bool) {
	rate := s.rates[p]
	if rate <= 0 {
		return Fault{}, false
	}
	h := uint64(s.seed)*0x9e3779b97f4a7c15 + uint64(p+1)
	for _, c := range coords {
		h = splitmix64(h ^ uint64(c))
	}
	h = splitmix64(h)
	// Top 53 bits -> [0, 1).
	if float64(h>>11)/float64(1<<53) >= rate {
		return Fault{}, false
	}
	key := siteKey(p, coords)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seen[key] {
		return Fault{}, false
	}
	s.seen[key] = true
	return s.faults[p], true
}

func siteKey(p Point, coords []int) string {
	var b strings.Builder
	b.WriteString(p.String())
	for _, c := range coords {
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(c))
	}
	return b.String()
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// InjectedError marks an error produced by a Kind Error fault so the
// service layer can classify it as transient (retryable) rather than a
// real execution failure.
type InjectedError struct{ Msg string }

func (e InjectedError) Error() string { return "injected fault: " + e.Msg }

// ParseScript parses the bfpp-serve -chaos spelling: comma-separated
// "point:kind:times[:delay-ms]" rules, e.g. "job:error:1" (the first job
// fails with a transient error) or "handler:panic:1,pool:delay:3:5". The
// rules carry no coordinates (they match any arrival), which is the useful
// shape at the service boundary.
func ParseScript(spec string) (*Script, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 3 || len(fields) > 4 {
			return nil, fmt.Errorf("fault: bad rule %q (want point:kind:times[:delay-ms])", part)
		}
		var rule Rule
		found := false
		for p := Point(0); p < numPoints; p++ {
			if pointNames[p] == fields[0] {
				rule.Point, found = p, true
			}
		}
		if !found {
			return nil, fmt.Errorf("fault: unknown point %q (device, send, pool, handler, job, store, store-sync, replica)", fields[0])
		}
		times, err := strconv.Atoi(fields[2])
		if err != nil || times < 1 {
			return nil, fmt.Errorf("fault: bad times %q in rule %q", fields[2], part)
		}
		rule.Times = times
		switch fields[1] {
		case "panic":
			rule.Fault = Fault{Kind: Panic}
		case "error":
			rule.Fault = Fault{Kind: Error, Err: InjectedError{Msg: part}}
		case "delay":
			if len(fields) != 4 {
				return nil, fmt.Errorf("fault: delay rule %q needs a delay-ms field", part)
			}
			ms, err := strconv.Atoi(fields[3])
			if err != nil || ms < 0 {
				return nil, fmt.Errorf("fault: bad delay %q in rule %q", fields[3], part)
			}
			rule.Fault = Fault{Kind: Delay, Sleep: time.Duration(ms) * time.Millisecond}
		default:
			return nil, fmt.Errorf("fault: unknown kind %q (panic, error, delay)", fields[1])
		}
		rules = append(rules, rule)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("fault: empty chaos spec %q", spec)
	}
	return NewScript(rules...), nil
}

// ctxKey carries an Injector through a context; the worker pool reads it.
type ctxKey struct{}

// With returns a context carrying the injector; the parallel worker pool
// consults it at the PoolItem point. A nil injector returns ctx unchanged.
func With(ctx context.Context, inj Injector) context.Context {
	if inj == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, inj)
}

// From extracts the context's injector, or nil. The nil return is the
// hot-path guard: callers skip the At call entirely.
func From(ctx context.Context) Injector {
	inj, _ := ctx.Value(ctxKey{}).(Injector)
	return inj
}

// SleepCtx sleeps for d or until the context is done, returning ctx.Err()
// in the latter case. Injection sites use it so an injected stall never
// outlives its request.
func SleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
