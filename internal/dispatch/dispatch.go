// Package dispatch is the shard coordinator behind distributed sweeps: it
// splits a sweep's (family, batch) groups across N replicas — in-process
// executors or remote bfpp-serve instances behind one Replica interface —
// health-checks them, retries transient dispatch failures with the
// service's bounded backoff, reassigns a faulted replica's groups to the
// survivors, and merges the shard winners.
//
// The merge is trivially deterministic because the work split is along the
// search's own independence boundary: each (family, batch) group's winner
// is a deterministic function of the request alone (the warm-start seeds a
// co-resident sweep adds never change winners, only pricing effort), so
// whichever replica prices a group — and however many times a fault makes
// another replica re-price it — the merged table is byte-identical to the
// single-process search.SweepAll. The chaos tests pin exactly that, under
// -race, with scripted replica faults.
package dispatch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bfpp/internal/fault"
	"bfpp/internal/search"
	"bfpp/internal/service"
)

// Replica prices single (family, batch) groups of a sweep. Implementations
// must be safe for concurrent use: the coordinator runs one dispatching
// worker per replica, and Health probes may overlap dispatches.
type Replica interface {
	// Name identifies the replica in health reports and errors.
	Name() string
	// Check probes liveness (a no-op for in-process executors).
	Check(ctx context.Context) error
	// Run prices one group of the request. It returns the group's winner
	// and true; or false when the group has no feasible configuration (a
	// deterministic property of the request, not a fault); or an error
	// when the replica failed to price it — which the coordinator retries
	// and then fails over. Run must not mutate req.
	Run(ctx context.Context, req service.SearchRequest, g search.GroupKey) (search.Best, bool, error)
}

// Options tunes a Coordinator.
type Options struct {
	// Retry shapes the per-(replica, group) retry of transient dispatch
	// failures (service.Do's classification: load sheds and injected
	// faults retry, everything else fails over immediately). A zero
	// MaxAttempts means service.DefaultRetry(0).
	Retry service.RetryPolicy
	// GroupTimeout bounds one dispatch attempt; a straggling replica
	// (network partition, injected stall) times out and the group is
	// reassigned. 0 means no per-attempt bound beyond the sweep context.
	GroupTimeout time.Duration
	// Injector is the chaos hook, consulted at the fault.Replica point
	// with coordinates (replica index, group index) before each dispatch
	// attempt.
	Injector fault.Injector
}

// Coordinator implements service.Sharder over a fixed replica set.
type Coordinator struct {
	replicas []Replica
	opts     Options

	dispatched atomic.Int64 // groups priced successfully, total
	failovers  atomic.Int64 // replica faults that forced a reassignment

	mu        sync.Mutex
	lastFault map[int]string // last dispatch fault per replica index
}

var _ service.Sharder = (*Coordinator)(nil)

// New builds a coordinator over the replica set.
func New(opts Options, replicas ...Replica) *Coordinator {
	if opts.Retry.MaxAttempts <= 0 {
		opts.Retry = service.DefaultRetry(0)
	}
	return &Coordinator{replicas: replicas, opts: opts, lastFault: map[int]string{}}
}

// Stats reports the coordinator's lifetime counters: groups priced and
// replica failovers.
func (co *Coordinator) Stats() (dispatched, failovers int64) {
	return co.dispatched.Load(), co.failovers.Load()
}

// Health implements service.Sharder: a live probe of every replica, with
// the last dispatch fault attached to replicas that are probe-healthy but
// recently failed over (degraded-as-data, like the rest of /healthz).
func (co *Coordinator) Health(ctx context.Context) []service.ReplicaHealth {
	out := make([]service.ReplicaHealth, len(co.replicas))
	for i, r := range co.replicas {
		h := service.ReplicaHealth{Name: r.Name(), OK: true}
		if err := r.Check(ctx); err != nil {
			h.OK, h.Err = false, err.Error()
		} else {
			co.mu.Lock()
			h.Err = co.lastFault[i]
			co.mu.Unlock()
		}
		out[i] = h
	}
	return out
}

// groupOutcome is one group's dispatch result.
type groupOutcome struct {
	best     search.Best
	feasible bool
}

// Dispatch implements service.Sharder. Groups feed one shared queue; each
// replica runs a dispatching worker that drains it. A worker whose
// dispatch fails terminally (retries exhausted, panic, timeout) marks its
// replica down for this sweep, requeues the group for the survivors and
// exits — so any prefix of replica deaths only slows the sweep down, and
// the sweep fails only when every replica is dead with groups unfinished.
func (co *Coordinator) Dispatch(ctx context.Context, req service.SearchRequest, groups []search.GroupKey) (map[search.GroupKey]search.Best, error) {
	if len(co.replicas) == 0 {
		return nil, errors.New("dispatch: no replicas configured")
	}
	out := make(map[search.GroupKey]search.Best, len(groups))
	if len(groups) == 0 {
		return out, nil
	}
	// Each worker requeues at most one group before exiting, so the queue
	// never blocks a sender and never needs closing.
	queue := make(chan int, len(groups)+len(co.replicas))
	for gi := range groups {
		queue <- gi
	}
	var (
		mu       sync.Mutex
		done     int
		outs     = make([]groupOutcome, len(groups))
		finished = make(chan struct{})
		deadEnd  = make(chan struct{})
		stop     = make(chan struct{})
		live     atomic.Int64
	)
	live.Store(int64(len(co.replicas)))
	defer close(stop) // release idle workers on every exit path
	for ri := range co.replicas {
		go func(ri int) {
			defer func() {
				if live.Add(-1) == 0 {
					close(deadEnd)
				}
			}()
			for {
				var gi int
				select {
				case gi = <-queue:
				case <-stop:
					return
				}
				res, err := co.runGroup(ctx, ri, req, gi, groups[gi])
				if err != nil {
					if ctx.Err() != nil {
						return // the sweep is dying; the caller reports ctx.Err()
					}
					co.markDown(ri, gi, groups[gi], err)
					queue <- gi // fail the group over to a surviving replica
					return
				}
				co.dispatched.Add(1)
				mu.Lock()
				outs[gi] = res
				done++
				if done == len(groups) {
					close(finished)
				}
				mu.Unlock()
			}
		}(ri)
	}
	select {
	case <-finished:
		for gi, g := range groups {
			if outs[gi].feasible {
				out[g] = outs[gi].best
			}
		}
		return out, nil
	case <-deadEnd:
		mu.Lock()
		missing := len(groups) - done
		mu.Unlock()
		return nil, fmt.Errorf("dispatch: all %d replicas failed with %d of %d groups unpriced",
			len(co.replicas), missing, len(groups))
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// runGroup dispatches one group to one replica with bounded retries. The
// chaos injector fires per attempt at (replica, group); a recovered panic
// is a terminal replica fault (not retried — the replica's state is
// suspect), and so is a GroupTimeout expiry.
func (co *Coordinator) runGroup(ctx context.Context, ri int, req service.SearchRequest, gi int, g search.GroupKey) (groupOutcome, error) {
	r := co.replicas[ri]
	attempt := func() (res groupOutcome, err error) {
		defer func() {
			if rec := recover(); rec != nil {
				err = fmt.Errorf("dispatch: replica %s panicked pricing %s/%d: %v",
					r.Name(), g.Family, g.Batch, rec)
			}
		}()
		actx, cancel := ctx, context.CancelFunc(func() {})
		if co.opts.GroupTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, co.opts.GroupTimeout)
		}
		defer cancel()
		if inj := co.opts.Injector; inj != nil {
			if f, ok := inj.At(fault.Replica, ri, gi); ok {
				switch f.Kind {
				case fault.Panic:
					panic(fmt.Sprintf("injected replica fault (replica %d, group %d)", ri, gi))
				case fault.Delay:
					if serr := fault.SleepCtx(actx, f.Sleep); serr != nil {
						return res, fmt.Errorf("dispatch: replica %s stalled pricing %s/%d: %w",
							r.Name(), g.Family, g.Batch, serr)
					}
				case fault.Error:
					return res, fmt.Errorf("dispatch: replica %s: %w", r.Name(), f.Err)
				}
			}
		}
		best, feasible, rerr := r.Run(actx, req, g)
		if rerr != nil {
			return res, fmt.Errorf("dispatch: replica %s pricing %s/%d: %w",
				r.Name(), g.Family, g.Batch, rerr)
		}
		return groupOutcome{best: best, feasible: feasible}, nil
	}
	return service.Do(ctx, co.retryFor(ri, gi), attempt)
}

// retryFor derives the per-(replica, group) retry policy: the shared shape
// with a decorrelated jitter seed, so two replicas backing off at once do
// not thunder in phase.
func (co *Coordinator) retryFor(ri, gi int) service.RetryPolicy {
	p := co.opts.Retry
	p.Seed = p.Seed*1000003 + int64(ri)*31 + int64(gi)
	return p
}

// markDown records a replica's terminal dispatch fault.
func (co *Coordinator) markDown(ri, gi int, g search.GroupKey, err error) {
	co.failovers.Add(1)
	co.mu.Lock()
	co.lastFault[ri] = fmt.Sprintf("failed over pricing %s/%d: %v", g.Family, g.Batch, err)
	co.mu.Unlock()
}
