package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"bfpp/internal/cli"
	"bfpp/internal/search"
	"bfpp/internal/service"
)

// Local is an in-process replica: it prices groups with the search
// package directly, on its own worker budget. A coordinator over N Local
// replicas is the single-machine scale-out shape (and the chaos tests'
// harness: deterministic, no sockets).
type Local struct {
	// ID names the replica in health reports; defaults to "local".
	ID string
	// Workers bounds the replica's simulation pool per group; 0 means the
	// process default.
	Workers int
}

// Name implements Replica.
func (l *Local) Name() string {
	if l.ID == "" {
		return "local"
	}
	return l.ID
}

// Check implements Replica: an in-process executor is always live.
func (l *Local) Check(context.Context) error { return nil }

// Run implements Replica: one search.Optimize call for the group, with
// infeasibility ("nothing fits", a deterministic property of the request)
// separated from faults via the typed search.ErrInfeasible.
func (l *Local) Run(ctx context.Context, req service.SearchRequest, g search.GroupKey) (search.Best, bool, error) {
	m, err := cli.ParseModel(req.Model)
	if err != nil {
		return search.Best{}, false, err
	}
	c, err := cli.ParseCluster(req.Cluster)
	if err != nil {
		return search.Best{}, false, err
	}
	f, ok := search.FamilyByKey(g.Family)
	if !ok {
		return search.Best{}, false, fmt.Errorf("unknown family %q", g.Family)
	}
	best, err := search.Optimize(ctx, c, m, f, g.Batch, search.Options{
		MaxMicroBatch: req.MaxMicroBatch,
		NoPrune:       req.NoPrune,
		Workers:       l.Workers,
	})
	if errors.Is(err, search.ErrInfeasible) {
		return search.Best{}, false, nil
	}
	if err != nil {
		return search.Best{}, false, err
	}
	return best, true, nil
}

// HTTP is a remote replica: another bfpp-serve instance reached over its
// /v1/search endpoint. Overload (429) and transient (503) rejections are
// surfaced as the service's retryable error types, so the coordinator's
// service.Do loop backs off exactly like the CLI clients do — honoring
// the server's Retry-After hint — before failing the replica over.
type HTTP struct {
	// BaseURL is the replica's root, e.g. "http://10.0.0.2:8080".
	BaseURL string
	// Client is the HTTP client; nil means a default with a 10s dial
	// budget per attempt (the sweep context still bounds everything).
	Client *http.Client
}

// Name implements Replica.
func (h *HTTP) Name() string { return h.BaseURL }

func (h *HTTP) client() *http.Client {
	if h.Client != nil {
		return h.Client
	}
	return &http.Client{Timeout: 10 * time.Second}
}

// Check implements Replica: GET /healthz must answer 200. The body's
// degraded/ok distinction is deliberately ignored — a saturated replica
// still prices groups, just slower.
func (h *HTTP) Check(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, h.BaseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := h.client().Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
	return nil
}

// Run implements Replica: the group becomes a single-family single-batch
// SearchRequest — the same canonical struct every surface shares, so the
// remote replica provably runs the same job an in-process executor would.
func (h *HTTP) Run(ctx context.Context, req service.SearchRequest, g search.GroupKey) (search.Best, bool, error) {
	req.Families = []string{g.Family}
	req.Methods = nil
	req.Batches = []int{g.Batch}
	body, err := json.Marshal(req)
	if err != nil {
		return search.Best{}, false, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		h.BaseURL+"/v1/search", bytes.NewReader(body))
	if err != nil {
		return search.Best{}, false, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := h.client().Do(hreq)
	if err != nil {
		return search.Best{}, false, fmt.Errorf("%w: %v", service.ErrTransient, err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return search.Best{}, false, httpError(hresp)
	}
	var resp service.SearchResponse
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return search.Best{}, false, fmt.Errorf("decoding response: %v", err)
	}
	if resp.Partial {
		// The replica's deadline cut the group short; its incumbent is not
		// provably the winner, so a partial answer is a retryable fault,
		// never a merged result.
		return search.Best{}, false, fmt.Errorf("%w: partial response", service.ErrTransient)
	}
	for _, fr := range resp.Families {
		if fr.Key != g.Family {
			continue
		}
		if len(fr.Bests) == 0 {
			return search.Best{}, false, nil // infeasible at this batch
		}
		return fr.Bests[0], true, nil
	}
	return search.Best{}, false, nil
}

// httpError maps a replica's rejection onto the service's error taxonomy
// so Retryable (and the Retry-After floor) work across the wire.
func httpError(resp *http.Response) error {
	var payload struct {
		Error string `json:"error"`
	}
	json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&payload)
	msg := payload.Error
	if msg == "" {
		msg = resp.Status
	}
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		after := time.Second
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			after = time.Duration(secs) * time.Second
		}
		return fmt.Errorf("replica overloaded (%s): %w", msg, &service.OverloadedError{RetryAfter: after})
	case http.StatusServiceUnavailable:
		return fmt.Errorf("%w: %s", service.ErrTransient, msg)
	default:
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, msg)
	}
}
