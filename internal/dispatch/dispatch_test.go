package dispatch

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bfpp/internal/fault"
	"bfpp/internal/hw"
	"bfpp/internal/model"
	"bfpp/internal/search"
	"bfpp/internal/service"
)

// testRequest is the sweep the equivalence tests distribute: the paper
// testbed with one infeasible batch (1), so the merge also covers absent
// groups.
func testRequest() service.SearchRequest {
	return service.SearchRequest{
		Model:    "6.6B",
		Cluster:  "paper",
		Families: []string{"every"},
		Batches:  []int{1, 32, 64, 128},
	}
}

// testGroups expands the request into its (family, batch) group keys, the
// shape the service hands to Sharder.Dispatch.
func testGroups(req service.SearchRequest) []search.GroupKey {
	var out []search.GroupKey
	for _, f := range search.AllFamilies() {
		for _, b := range req.Batches {
			out = append(out, search.GroupKey{Family: f.Info().Key, Batch: b})
		}
	}
	return out
}

// assemble builds the family->bests map a dispatched sweep yields, in
// batch order, mirroring the service's merge.
func assemble(groups []search.GroupKey, winners map[search.GroupKey]search.Best) map[search.Family][]search.Best {
	out := map[search.Family][]search.Best{}
	for _, g := range groups {
		best, ok := winners[g]
		if !ok {
			continue
		}
		f, _ := search.FamilyByKey(g.Family)
		out[f] = append(out[f], best)
	}
	return out
}

// referenceTable is the single-process sweep the distributed runs must
// reproduce byte for byte.
func referenceTable(t *testing.T) string {
	t.Helper()
	c := hw.PaperCluster()
	m := model.Model6p6B()
	ref, err := search.SweepAll(context.Background(), c, m, search.AllFamilies(),
		[]int{1, 32, 64, 128}, search.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	return search.Table("dispatch", ref)
}

// fastRetry keeps the chaos tests quick: 2 attempts, 1ms backoff.
func fastRetry() service.RetryPolicy {
	return service.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, Multiplier: 2, MaxDelay: 10 * time.Millisecond}
}

// TestDispatchMatchesLocalSweep pins the fault-free merge: three local
// replicas racing over the shared queue produce the byte-identical table.
func TestDispatchMatchesLocalSweep(t *testing.T) {
	want := referenceTable(t)
	co := New(Options{Retry: fastRetry()},
		&Local{ID: "r0", Workers: 2}, &Local{ID: "r1", Workers: 2}, &Local{ID: "r2", Workers: 2})
	req := testRequest()
	groups := testGroups(req)
	winners, err := co.Dispatch(context.Background(), req, groups)
	if err != nil {
		t.Fatal(err)
	}
	if got := search.Table("dispatch", assemble(groups, winners)); got != want {
		t.Errorf("dispatched table differs from single-process sweep:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	if d, f := co.Stats(); f != 0 || d != int64(len(groups)) {
		t.Errorf("stats: dispatched=%d failovers=%d, want %d/0", d, f, len(groups))
	}
	for _, h := range co.Health(context.Background()) {
		if !h.OK || h.Err != "" {
			t.Errorf("replica %s unexpectedly unhealthy: %+v", h.Name, h)
		}
	}
}

// TestDispatchReplicaFaultByteIdentical is the chaos acceptance criterion:
// scripted replica faults mid-sweep — a persistent error on one replica, a
// panic on another — fail over, and the merged table stays byte-identical
// to the fault-free single-process run. Run under -race, this also pins
// the coordinator's synchronization.
func TestDispatchReplicaFaultByteIdentical(t *testing.T) {
	want := referenceTable(t)
	req := testRequest()
	groups := testGroups(req)
	inj := fault.NewScript(
		// Replica 0 fails every dispatch attempt it ever makes: it prices
		// nothing and every group it touches fails over.
		fault.Rule{Point: fault.Replica, Coords: []int{0}, Times: 1 << 20,
			Fault: fault.Fault{Kind: fault.Error, Err: fault.InjectedError{Msg: "replica 0 crashed"}}},
		// Replica 1 panics pricing its first group (contained, failed over).
		fault.Rule{Point: fault.Replica, Coords: []int{1}, Times: 1,
			Fault: fault.Fault{Kind: fault.Panic}},
	)
	co := New(Options{Retry: fastRetry(), Injector: inj},
		&Local{ID: "r0", Workers: 2}, &Local{ID: "r1", Workers: 2}, &Local{ID: "r2", Workers: 2})
	winners, err := co.Dispatch(context.Background(), req, groups)
	if err != nil {
		t.Fatal(err)
	}
	if got := search.Table("dispatch", assemble(groups, winners)); got != want {
		t.Errorf("faulted dispatch table differs:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	if _, f := co.Stats(); f < 2 {
		t.Errorf("failovers = %d, want >= 2 (replica 0 died, replica 1 panicked)", f)
	}
	// Health reports the failovers as data on probe-healthy replicas.
	var noted int
	for _, h := range co.Health(context.Background()) {
		if h.OK && strings.Contains(h.Err, "failed over") {
			noted++
		}
	}
	if noted == 0 {
		t.Error("no replica carries its failover note in Health")
	}
}

// TestDispatchTransientFaultRetriesInPlace pins the retry tier under the
// failover tier: a fault that clears within the retry budget never marks
// the replica down.
func TestDispatchTransientFaultRetriesInPlace(t *testing.T) {
	want := referenceTable(t)
	req := testRequest()
	groups := testGroups(req)
	inj := fault.NewScript(
		// One transient failure on replica 0's first group: the second
		// attempt (same replica) succeeds.
		fault.Rule{Point: fault.Replica, Coords: []int{0}, Times: 1,
			Fault: fault.Fault{Kind: fault.Error, Err: fault.InjectedError{Msg: "blip"}}},
	)
	co := New(Options{Retry: fastRetry(), Injector: inj},
		&Local{ID: "r0", Workers: 2}, &Local{ID: "r1", Workers: 2})
	winners, err := co.Dispatch(context.Background(), req, groups)
	if err != nil {
		t.Fatal(err)
	}
	if got := search.Table("dispatch", assemble(groups, winners)); got != want {
		t.Errorf("table differs after in-place retry:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	if _, f := co.Stats(); f != 0 {
		t.Errorf("failovers = %d, want 0 (the retry should have absorbed the blip)", f)
	}
	if inj.Fired() != 1 {
		t.Errorf("injected faults fired = %d, want 1", inj.Fired())
	}
}

// TestDispatchAllReplicasDead pins the dead-end contract: when every
// replica faults, Dispatch reports it instead of hanging.
func TestDispatchAllReplicasDead(t *testing.T) {
	inj := fault.NewScript(
		fault.Rule{Point: fault.Replica, Times: 1 << 20,
			Fault: fault.Fault{Kind: fault.Error, Err: fault.InjectedError{Msg: "site outage"}}},
	)
	co := New(Options{Retry: fastRetry(), Injector: inj},
		&Local{ID: "r0"}, &Local{ID: "r1"})
	req := testRequest()
	done := make(chan error, 1)
	go func() {
		_, err := co.Dispatch(context.Background(), req, testGroups(req))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "all 2 replicas failed") {
			t.Fatalf("err = %v, want all-replicas-failed", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Dispatch hung with every replica dead")
	}
}

// TestDispatchCancellation pins that a cancelled sweep context surfaces
// as ctx.Err(), not as a replica fault.
func TestDispatchCancellation(t *testing.T) {
	co := New(Options{Retry: fastRetry()}, &Local{ID: "r0", Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := testRequest()
	_, err := co.Dispatch(ctx, req, testGroups(req))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestDispatchHTTPReplica runs the full remote shape: a second bfpp-serve
// behind httptest prices shards alongside a local executor, and the merged
// table is byte-identical. The HTTP replica exercises the same /v1/search
// endpoint real deployments use.
func TestDispatchHTTPReplica(t *testing.T) {
	want := referenceTable(t)
	srv := httptest.NewServer(service.Handler(service.New(service.Config{})))
	defer srv.Close()
	remote := &HTTP{BaseURL: srv.URL}
	if err := remote.Check(context.Background()); err != nil {
		t.Fatalf("healthz probe: %v", err)
	}
	co := New(Options{Retry: fastRetry()}, remote, &Local{ID: "local", Workers: 2})
	req := testRequest()
	groups := testGroups(req)
	winners, err := co.Dispatch(context.Background(), req, groups)
	if err != nil {
		t.Fatal(err)
	}
	if got := search.Table("dispatch", assemble(groups, winners)); got != want {
		t.Errorf("HTTP-replica table differs:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

// TestDispatchHTTPReplicaDownFailsOver points one replica at a dead
// server: its dispatches fail over to the local survivor and the table is
// still byte-identical.
func TestDispatchHTTPReplicaDownFailsOver(t *testing.T) {
	want := referenceTable(t)
	srv := httptest.NewServer(service.Handler(service.New(service.Config{})))
	srv.Close() // a replica that is already gone
	dead := &HTTP{BaseURL: srv.URL}
	if err := dead.Check(context.Background()); err == nil {
		t.Fatal("dead replica passed its health probe")
	}
	co := New(Options{Retry: fastRetry()}, dead, &Local{ID: "local", Workers: 2})
	req := testRequest()
	groups := testGroups(req)
	winners, err := co.Dispatch(context.Background(), req, groups)
	if err != nil {
		t.Fatal(err)
	}
	if got := search.Table("dispatch", assemble(groups, winners)); got != want {
		t.Errorf("table differs after dead-replica failover:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	if _, f := co.Stats(); f != 1 {
		t.Errorf("failovers = %d, want 1", f)
	}
}
