// Package tensor provides the minimal dense linear algebra the training
// runtime needs: row-major float64 matrices with the forward and backward
// primitives of an MLP block (matmul in its three orientations, bias, GELU).
// Everything is deterministic, which lets the runtime tests assert exact
// equivalence between schedules.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero matrix of the given shape.
func New(rows, cols int) Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromData wraps an existing slice (no copy). len(data) must be rows*cols.
func FromData(rows, cols int, data []float64) Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %dx%d", len(data), rows, cols))
	}
	return Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at (r, c).
func (m Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns the element at (r, c).
func (m Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy.
func (m Matrix) Clone() Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero clears the matrix in place.
func (m Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// RandInit fills the matrix with scaled Gaussian entries (std = scale).
func (m Matrix) RandInit(rng *rand.Rand, scale float64) {
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * scale
	}
}

// MatMul computes a @ b into a new matrix. Panics on shape mismatch.
func MatMul(a, b Matrix) Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTransB computes a @ b^T into a new matrix (used for dX = dY @ W^T).
func MatMulTransB(a, b Matrix) Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulTB shape %dx%d @ (%dx%d)^T", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*b.Cols : (j+1)*b.Cols]
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			out.Data[i*out.Cols+j] = s
		}
	}
	return out
}

// MatMulTransAInto computes a^T @ b and accumulates into out (used for
// dW += X^T @ dY during gradient accumulation).
func MatMulTransAInto(out, a, b Matrix) {
	if a.Rows != b.Rows || out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulTA shape (%dx%d)^T @ %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*a.Cols : (k+1)*a.Cols]
		brow := b.Data[k*b.Cols : (k+1)*b.Cols]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// AddBias adds a row vector to every row of m in place.
func AddBias(m Matrix, bias []float64) {
	if len(bias) != m.Cols {
		panic("tensor: bias length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := range row {
			row[j] += bias[j]
		}
	}
}

// BiasGradInto accumulates the column sums of dY into db.
func BiasGradInto(db []float64, dy Matrix) {
	if len(db) != dy.Cols {
		panic("tensor: bias grad length mismatch")
	}
	for i := 0; i < dy.Rows; i++ {
		row := dy.Data[i*dy.Cols : (i+1)*dy.Cols]
		for j := range row {
			db[j] += row[j]
		}
	}
}

// AddInto accumulates src into dst element-wise.
func AddInto(dst, src Matrix) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("tensor: add shape mismatch")
	}
	for i, v := range src.Data {
		dst.Data[i] += v
	}
}

// GELU applies the tanh-approximated Gaussian error linear unit, returning
// a new matrix.
func GELU(m Matrix) Matrix {
	out := New(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = gelu(x)
	}
	return out
}

// GELUBackward computes dL/dx from dL/dy and the pre-activation input x,
// returning a new matrix.
func GELUBackward(dy, x Matrix) Matrix {
	if dy.Rows != x.Rows || dy.Cols != x.Cols {
		panic("tensor: gelu backward shape mismatch")
	}
	out := New(dy.Rows, dy.Cols)
	for i := range dy.Data {
		out.Data[i] = dy.Data[i] * geluGrad(x.Data[i])
	}
	return out
}

const (
	sqrt2OverPi = 0.7978845608028654 // sqrt(2/pi)
	geluC       = 0.044715
)

func gelu(x float64) float64 {
	return 0.5 * x * (1 + math.Tanh(sqrt2OverPi*(x+geluC*x*x*x)))
}

func geluGrad(x float64) float64 {
	inner := sqrt2OverPi * (x + geluC*x*x*x)
	t := math.Tanh(inner)
	dInner := sqrt2OverPi * (1 + 3*geluC*x*x)
	return 0.5*(1+t) + 0.5*x*(1-t*t)*dInner
}

// MaxAbsDiff returns the largest absolute element-wise difference.
func MaxAbsDiff(a, b Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return math.Inf(1)
	}
	var worst float64
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// MaxAbsDiffSlice is MaxAbsDiff for raw slices.
func MaxAbsDiffSlice(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var worst float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// Rows returns the half-open row slice [lo, hi) of m as a view (no copy).
func (m Matrix) RowSlice(lo, hi int) Matrix {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: row slice [%d,%d) of %d rows", lo, hi, m.Rows))
	}
	return Matrix{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}
