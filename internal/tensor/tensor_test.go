package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatMulSmall(t *testing.T) {
	a := FromData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Errorf("c[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulTransBMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, b := New(4, 5), New(3, 5)
	a.RandInit(rng, 1)
	b.RandInit(rng, 1)
	// b^T explicitly.
	bt := New(5, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	got := MatMulTransB(a, b)
	want := MatMul(a, bt)
	if d := MaxAbsDiff(got, want); d > 1e-12 {
		t.Errorf("MatMulTransB differs from explicit transpose by %v", d)
	}
}

func TestMatMulTransAIntoAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := New(4, 3), New(4, 2)
	a.RandInit(rng, 1)
	b.RandInit(rng, 1)
	at := New(3, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := MatMul(at, b)
	out := New(3, 2)
	MatMulTransAInto(out, a, b)
	if d := MaxAbsDiff(out, want); d > 1e-12 {
		t.Errorf("MatMulTransAInto differs by %v", d)
	}
	// Accumulation: calling twice doubles.
	MatMulTransAInto(out, a, b)
	for i := range out.Data {
		if math.Abs(out.Data[i]-2*want.Data[i]) > 1e-12 {
			t.Fatal("second call should accumulate")
		}
	}
}

func TestBiasOps(t *testing.T) {
	m := FromData(2, 3, []float64{0, 0, 0, 1, 1, 1})
	AddBias(m, []float64{1, 2, 3})
	want := []float64{1, 2, 3, 2, 3, 4}
	for i, w := range want {
		if m.Data[i] != w {
			t.Errorf("bias add: [%d] = %v, want %v", i, m.Data[i], w)
		}
	}
	db := make([]float64, 3)
	BiasGradInto(db, m)
	for j, w := range []float64{3, 5, 7} {
		if db[j] != w {
			t.Errorf("bias grad [%d] = %v, want %v", j, db[j], w)
		}
	}
}

// Finite-difference check of the GELU gradient.
func TestGELUGradientNumerically(t *testing.T) {
	for _, x := range []float64{-3, -1, -0.1, 0, 0.1, 1, 3} {
		h := 1e-6
		want := (gelu(x+h) - gelu(x-h)) / (2 * h)
		got := geluGrad(x)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("gelu'(%v) = %v, numeric %v", x, got, want)
		}
	}
}

func TestGELUShapes(t *testing.T) {
	x := FromData(1, 3, []float64{-1, 0, 2})
	y := GELU(x)
	if y.At(0, 1) != 0 {
		t.Error("gelu(0) should be 0")
	}
	if y.At(0, 2) <= 1.9 || y.At(0, 2) >= 2 {
		t.Errorf("gelu(2) = %v, want just below 2", y.At(0, 2))
	}
	dy := FromData(1, 3, []float64{1, 1, 1})
	dx := GELUBackward(dy, x)
	if dx.At(0, 2) <= 0.9 {
		t.Errorf("gelu'(2) = %v, want close to 1", dx.At(0, 2))
	}
}

// Property: matmul distributes over addition.
func TestMatMulLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := New(3, 4), New(4, 2), New(4, 2)
		a.RandInit(rng, 1)
		b.RandInit(rng, 1)
		c.RandInit(rng, 1)
		bc := b.Clone()
		AddInto(bc, c)
		lhs := MatMul(a, bc)
		rhs := MatMul(a, b)
		AddInto(rhs, MatMul(a, c))
		return MaxAbsDiff(lhs, rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRowSlice(t *testing.T) {
	m := FromData(4, 2, []float64{0, 1, 2, 3, 4, 5, 6, 7})
	s := m.RowSlice(1, 3)
	if s.Rows != 2 || s.At(0, 0) != 2 || s.At(1, 1) != 5 {
		t.Errorf("row slice wrong: %+v", s)
	}
	// Views share memory.
	s.Set(0, 0, 99)
	if m.At(1, 0) != 99 {
		t.Error("RowSlice should be a view")
	}
}

func TestPanics(t *testing.T) {
	cases := []func(){
		func() { MatMul(New(2, 3), New(2, 3)) },
		func() { MatMulTransB(New(2, 3), New(2, 4)) },
		func() { MatMulTransAInto(New(1, 1), New(2, 3), New(3, 2)) },
		func() { AddBias(New(2, 3), []float64{1}) },
		func() { BiasGradInto([]float64{1}, New(2, 3)) },
		func() { AddInto(New(1, 2), New(2, 1)) },
		func() { GELUBackward(New(1, 2), New(2, 1)) },
		func() { FromData(2, 2, []float64{1}) },
		func() { New(-1, 2) },
		func() { New(2, 2).RowSlice(1, 3) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromData(1, 2, []float64{1, 2})
	b := FromData(1, 2, []float64{1, 2.5})
	if d := MaxAbsDiff(a, b); d != 0.5 {
		t.Errorf("diff = %v, want 0.5", d)
	}
	if !math.IsInf(MaxAbsDiff(a, New(2, 2)), 1) {
		t.Error("shape mismatch should be +inf")
	}
	if d := MaxAbsDiffSlice([]float64{1}, []float64{1, 2}); !math.IsInf(d, 1) {
		t.Error("length mismatch should be +inf")
	}
}
