// Package tradeoff extrapolates measured per-GPU throughput to large
// clusters and evaluates the training time/cost trade-off of Section 5.4
// (Figures 1 and 8): data parallelism is scaled with a constant batch size
// per GPU (constant utilization), the training length follows the
// batch-size overhead law (Eq. 7), and
//
//	Cost ∝ 1 + beta*N_GPU/B_crit,  Time ∝ Cost/N_GPU   (Eq. 8).
package tradeoff

import (
	"context"
	"fmt"
	"math"
	"sort"

	"bfpp/internal/batchsize"
	"bfpp/internal/core"
	"bfpp/internal/engine"
	"bfpp/internal/model"
	"bfpp/internal/parallel"
)

// Point is one (cluster size, configuration) extrapolation.
type Point struct {
	// GPUs is the extrapolated cluster size.
	GPUs int
	// Beta is the measured configuration's batch size per GPU.
	Beta float64
	// Batch is the extrapolated global batch size, Beta*GPUs.
	Batch float64
	// Overhead is the batch-size sample overhead factor 1 + B/Bcrit.
	Overhead float64
	// TimeDays is the projected training time in days.
	TimeDays float64
	// CostGPUDays is the projected cost in GPU-days.
	CostGPUDays float64
	// Plan is the measured configuration being extrapolated.
	Plan core.Plan
	// MemoryMinGiB is the configuration's large-cluster memory floor.
	MemoryMinGiB float64
}

// Extrapolate projects one measured result to a cluster of nGPUs.
func Extrapolate(m model.Transformer, r engine.Result, bcrit float64, nGPUs int) Point {
	beta := r.Plan.BatchPerGPU()
	batch := beta * float64(nGPUs)
	samples := batchsize.TrainingSamples(batch, bcrit)
	totalFlop := samples * float64(m.SeqLen) * m.FlopPerToken()
	seconds := totalFlop / (r.Throughput * float64(nGPUs))
	days := seconds / 86400
	return Point{
		GPUs:         nGPUs,
		Beta:         beta,
		Batch:        batch,
		Overhead:     batchsize.SamplesOverhead(batch, bcrit),
		TimeDays:     days,
		CostGPUDays:  days * float64(nGPUs),
		Plan:         r.Plan,
		MemoryMinGiB: r.Memory.TotalMin() / (1 << 30),
	}
}

// Curve picks, for each cluster size, the measured configuration with the
// lowest projected training time (equivalently cost, at fixed size) and
// returns the resulting cost/time curve sorted by cluster size. Cluster
// sizes are extrapolated concurrently on workers goroutines (0 resolves to
// parallel.DefaultWorkers()); the per-size selection keeps the serial
// iteration order, so the curve is deterministic at any width. Cancelling
// ctx aborts the extrapolation between cluster sizes and returns ctx.Err().
func Curve(ctx context.Context, m model.Transformer, results []engine.Result, bcrit float64, clusterSizes []int, workers int) ([]Point, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("tradeoff: no measured results")
	}
	if bcrit <= 0 {
		return nil, fmt.Errorf("tradeoff: bcrit must be positive, got %v", bcrit)
	}
	for _, n := range clusterSizes {
		if n <= 0 {
			return nil, fmt.Errorf("tradeoff: cluster size must be positive, got %d", n)
		}
	}
	out, err := parallel.MapCtx(ctx, workers, clusterSizes, func(_ int, n int) (Point, error) {
		best := Point{TimeDays: math.Inf(1)}
		for _, r := range results {
			p := Extrapolate(m, r, bcrit, n)
			if p.TimeDays < best.TimeDays {
				best = p
			}
		}
		return best, nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].GPUs < out[j].GPUs })
	return out, nil
}

// PaperClusterSizes returns the cluster sizes annotated in Figure 8.
func PaperClusterSizes() []int { return []int{256, 512, 1024, 2048, 4096, 8192, 16384} }

// Format renders a curve as an aligned table.
func Format(name string, points []Point) string {
	out := fmt.Sprintf("%s\n%8s %8s %10s %10s %12s %10s\n",
		name, "GPUs", "beta", "batch", "time(d)", "cost(GPUd)", "overhead")
	for _, p := range points {
		out += fmt.Sprintf("%8d %8.3f %10.0f %10.2f %12.0f %10.2f\n",
			p.GPUs, p.Beta, p.Batch, p.TimeDays, p.CostGPUDays, p.Overhead)
	}
	return out
}
