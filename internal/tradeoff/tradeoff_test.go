package tradeoff

import (
	"context"
	"math"
	"strings"
	"testing"

	"bfpp/internal/batchsize"
	"bfpp/internal/core"
	"bfpp/internal/engine"
	"bfpp/internal/hw"
	"bfpp/internal/model"
)

func measured(t *testing.T, p core.Plan) engine.Result {
	t.Helper()
	r, err := engine.Simulate(hw.PaperCluster(), model.Model52B(), p)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func bfPlan() core.Plan {
	return core.Plan{Method: core.BreadthFirst, DP: 1, PP: 8, TP: 8,
		MicroBatch: 1, NumMicro: 9, Loops: 8, OverlapDP: true, OverlapPP: true}
}

// Eq. (8) identities: cost = time * GPUs; doubling the cluster at fixed
// beta doubles the batch, raises the overhead, and so less than halves the
// time while raising the cost.
func TestExtrapolateIdentities(t *testing.T) {
	m := model.Model52B()
	r := measured(t, bfPlan())
	p1 := Extrapolate(m, r, batchsize.PaperBcrit52B, 1024)
	p2 := Extrapolate(m, r, batchsize.PaperBcrit52B, 2048)
	if math.Abs(p1.CostGPUDays-p1.TimeDays*1024)/p1.CostGPUDays > 1e-12 {
		t.Error("cost != time * GPUs")
	}
	if p2.TimeDays >= p1.TimeDays {
		t.Error("more GPUs should reduce time")
	}
	if p2.TimeDays <= p1.TimeDays/2 {
		t.Error("the batch overhead should prevent perfect scaling")
	}
	if p2.CostGPUDays <= p1.CostGPUDays {
		t.Error("scaling up at fixed beta should cost more in total")
	}
	if p2.Batch != 2*p1.Batch {
		t.Error("batch should scale with the cluster")
	}
	if p2.Overhead <= p1.Overhead {
		t.Error("overhead should grow with the batch")
	}
}

// Figure 1 / Section 5.4 ballpark: the 52B model on 4096 V100s at small
// beta trains in single-digit-to-low-tens of days at a cost of tens of
// thousands of GPU-days (Figure 8a: ~30-70 thousand).
func TestPaperScaleBallpark(t *testing.T) {
	m := model.Model52B()
	r := measured(t, bfPlan())
	p := Extrapolate(m, r, batchsize.PaperBcrit52B, 4096)
	if p.TimeDays < 3 || p.TimeDays > 25 {
		t.Errorf("52B on 4096 GPUs: %.1f days, expected single digits to low tens", p.TimeDays)
	}
	if p.CostGPUDays < 20e3 || p.CostGPUDays > 90e3 {
		t.Errorf("52B cost = %.0f GPU-days, expected 20k-90k", p.CostGPUDays)
	}
}

// The curve must pick the best measured config per cluster size: small-beta
// configs win on huge clusters (batch overhead), large-beta configs win on
// small clusters (utilization).
func TestCurveSelectsByClusterSize(t *testing.T) {
	m := model.Model52B()
	smallBeta := measured(t, bfPlan()) // beta = 9/64
	largeBeta := measured(t, core.Plan{Method: core.BreadthFirst, DP: 4, PP: 8, TP: 2,
		MicroBatch: 2, NumMicro: 16, Loops: 8, Sharding: core.DPFS,
		OverlapDP: true, OverlapPP: true}) // beta = 2
	pts, err := Curve(context.Background(), m, []engine.Result{smallBeta, largeBeta},
		batchsize.PaperBcrit52B, []int{256, 65536}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].GPUs != 256 || pts[1].GPUs != 65536 {
		t.Fatalf("unexpected order: %+v", pts)
	}
	if pts[0].Beta != largeBeta.Plan.BatchPerGPU() {
		t.Errorf("small cluster should pick the high-beta config, got beta=%.3f", pts[0].Beta)
	}
	if pts[1].Beta != smallBeta.Plan.BatchPerGPU() {
		t.Errorf("huge cluster should pick the low-beta config, got beta=%.3f", pts[1].Beta)
	}
}

// Figure 8 monotonicity: along a method's curve, time falls and cost rises
// with cluster size.
func TestCurveMonotonicity(t *testing.T) {
	m := model.Model52B()
	r := measured(t, bfPlan())
	pts, err := Curve(context.Background(), m, []engine.Result{r}, batchsize.PaperBcrit52B, PaperClusterSizes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].TimeDays >= pts[i-1].TimeDays {
			t.Errorf("time should fall with cluster size: %+v", pts)
		}
		if pts[i].CostGPUDays <= pts[i-1].CostGPUDays {
			t.Errorf("cost should rise with cluster size: %+v", pts)
		}
	}
}

func TestCurveErrors(t *testing.T) {
	m := model.Model52B()
	if _, err := Curve(context.Background(), m, nil, 100, []int{64}, 0); err == nil {
		t.Error("no results should fail")
	}
	r := measured(t, bfPlan())
	if _, err := Curve(context.Background(), m, []engine.Result{r}, 0, []int{64}, 0); err == nil {
		t.Error("zero bcrit should fail")
	}
	if _, err := Curve(context.Background(), m, []engine.Result{r}, 100, []int{0}, 0); err == nil {
		t.Error("zero cluster size should fail")
	}
}

func TestFormat(t *testing.T) {
	m := model.Model52B()
	r := measured(t, bfPlan())
	pts, err := Curve(context.Background(), m, []engine.Result{r}, batchsize.PaperBcrit52B, []int{256, 1024}, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := Format("Figure 8a", pts)
	if !strings.Contains(s, "Figure 8a") || !strings.Contains(s, "256") {
		t.Errorf("format missing content:\n%s", s)
	}
}
