package batchsize

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSamplesOverheadLaw(t *testing.T) {
	// GPT-3 example from Section 3.5: B = 3M tokens, Bcrit = 10M tokens
	// gives ~30% overhead.
	if got := SamplesOverhead(3e6, 10e6); math.Abs(got-1.3) > 1e-12 {
		t.Errorf("GPT-3 overhead = %v, want 1.3", got)
	}
	// Footnote 9: batch 1024 sequences gives ~15% (52B) and ~30% (6.6B).
	if got := SamplesOverhead(1024, PaperBcrit52B); math.Abs(got-1.151) > 0.005 {
		t.Errorf("52B overhead at B=1024 = %v, want ~1.15", got)
	}
	if got := SamplesOverhead(1024, PaperBcrit6p6B); math.Abs(got-1.299) > 0.005 {
		t.Errorf("6.6B overhead at B=1024 = %v, want ~1.30", got)
	}
	if !math.IsInf(SamplesOverhead(0, 100), 1) || !math.IsInf(SamplesOverhead(100, 0), 1) {
		t.Error("degenerate inputs should be infinite")
	}
}

func TestStepsFactorDual(t *testing.T) {
	// Samples = B*Steps: the two laws must be consistent up to the
	// B-independent minimum: (1+B/Bc)*Bc = B*(1+Bc/B)*Bc/B ... check
	// Samples(B)/Steps(B) == B * (Bc/Bc) relation directly.
	for _, b := range []float64{1, 10, 100, 1000} {
		samples := SamplesOverhead(b, 100) * 100 // in units of Smin samples
		steps := StepsFactor(b, 100) * 100 / b * b
		_ = steps
		if samples <= 0 {
			t.Fatal("impossible")
		}
		ratio := SamplesOverhead(b, 100) / (StepsFactor(b, 100) * b / 100)
		if math.Abs(ratio-1) > 1e-12 {
			t.Errorf("B=%v: Samples and Steps laws inconsistent (ratio %v)", b, ratio)
		}
	}
}

func TestTrainingSamplesPaperNumbers(t *testing.T) {
	// Section 5.4: base training length of 50,000 critical batches is 347B
	// tokens for the 52B model and 176B for 6.6B (sequence length 1024),
	// in the small-batch limit.
	base52 := PaperBaseBatches * PaperBcrit52B * 1024
	if math.Abs(base52-347e9)/347e9 > 0.01 {
		t.Errorf("52B base tokens = %.3g, want 347e9", base52)
	}
	base66 := PaperBaseBatches * PaperBcrit6p6B * 1024
	if math.Abs(base66-176e9)/176e9 > 0.01 {
		t.Errorf("6.6B base tokens = %.3g, want 176e9", base66)
	}
	// TrainingSamples includes the overhead.
	if TrainingSamples(1024, PaperBcrit52B) <= PaperBaseBatches*PaperBcrit52B {
		t.Error("overhead must increase the sample count")
	}
}

// The SGD simulator must reproduce the law: steps fall with batch size but
// with diminishing returns, and the fitted critical batch matches the
// analytic noise scale of the problem.
func TestSGDSimReproducesLaw(t *testing.T) {
	// Noise scale Sigma^2 = 36.
	sim := SGDSim{Dim: 64, Sigma: 6.0, Seed: 7}
	l0, target := 1.0, 0.05
	batches := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	curve := sim.StepsCurve(batches, l0, target, 1_000_000)

	// Steps decrease monotonically with batch size.
	for i := 1; i < len(batches); i++ {
		if curve[batches[i]] > curve[batches[i-1]] {
			t.Errorf("steps should fall with batch: %v", curve)
		}
	}
	// Diminishing returns: speedup from 256->512 far below 2x.
	sp := float64(curve[256]) / float64(curve[512])
	if sp > 1.35 {
		t.Errorf("speedup at large batch should saturate, got %.2f", sp)
	}
	// Small-batch regime is near-perfectly efficient: samples(B=1) within
	// 2x of samples(B=4)/4... i.e., doubling batch nearly halves steps.
	sp2 := float64(curve[1]) / float64(curve[2])
	if sp2 < 1.5 {
		t.Errorf("small-batch doubling should nearly halve steps, got %.2f", sp2)
	}

	bcrit, smin, err := FitCriticalBatch(curve)
	if err != nil {
		t.Fatal(err)
	}
	if smin <= 0 {
		t.Fatalf("smin = %v", smin)
	}
	// The problem's noise scale is exactly Sigma^2; the fit should recover
	// it within a modest tolerance.
	want := sim.NoiseScale()
	if bcrit < 0.6*want || bcrit > 1.6*want {
		t.Errorf("fitted Bcrit = %.1f, analytic noise scale %.1f", bcrit, want)
	}
}

// The gradient-statistics estimator must recover the analytic noise scale.
func TestEstimateNoiseScale(t *testing.T) {
	sim := SGDSim{Dim: 32, Sigma: 1.5, Seed: 42}
	l := 0.5
	want := sim.NoiseScale()
	got, err := EstimateNoiseScale(sim.Sampler(l), 4, 64, 400)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want)/want > 0.25 {
		t.Errorf("estimated noise scale %.1f, analytic %.1f (>25%% off)", got, want)
	}
}

func TestEstimateNoiseScaleErrors(t *testing.T) {
	sim := SGDSim{Dim: 4, Sigma: 1, Seed: 1}
	if _, err := EstimateNoiseScale(sim.Sampler(1), 8, 4, 10); err == nil {
		t.Error("bSmall >= bBig should fail")
	}
	if _, err := EstimateNoiseScale(sim.Sampler(1), 0, 4, 10); err == nil {
		t.Error("zero bSmall should fail")
	}
	if _, err := EstimateNoiseScale(sim.Sampler(1), 2, 4, 0); err == nil {
		t.Error("zero rounds should fail")
	}
}

func TestFitCriticalBatchExact(t *testing.T) {
	// Synthetic points generated exactly from the law must be recovered.
	smin, bcrit := 250.0, 48.0
	points := map[int]int{}
	for _, b := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		points[b] = int(math.Round(smin * (1 + bcrit/float64(b))))
	}
	gotB, gotS, err := FitCriticalBatch(points)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotB-bcrit)/bcrit > 0.02 || math.Abs(gotS-smin)/smin > 0.02 {
		t.Errorf("fit = (%.1f, %.1f), want (%.1f, %.1f)", gotB, gotS, bcrit, smin)
	}
}

func TestFitCriticalBatchErrors(t *testing.T) {
	if _, _, err := FitCriticalBatch(map[int]int{4: 100}); err == nil {
		t.Error("single point should fail")
	}
	// Flat curve: Bcrit ~ 0, fit degenerates to non-physical.
	if _, _, err := FitCriticalBatch(map[int]int{1: 100, 2: 100, 4: 100}); err == nil {
		t.Error("flat curve has no positive Bcrit; expected error")
	}
}

// Property: overhead is monotone in B and inversely monotone in Bcrit.
func TestOverheadMonotonicityProperty(t *testing.T) {
	f := func(bRaw, cRaw uint16) bool {
		b := float64(bRaw%4096) + 1
		c := float64(cRaw%4096) + 1
		return SamplesOverhead(b+1, c) > SamplesOverhead(b, c) &&
			SamplesOverhead(b, c+1) < SamplesOverhead(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSGDSimDeterminism(t *testing.T) {
	sim := SGDSim{Dim: 16, Sigma: 1, Seed: 3}
	a := sim.Run(8, 1, 0.1, 100000)
	b := sim.Run(8, 1, 0.1, 100000)
	if a != b {
		t.Errorf("runs differ: %d vs %d", a, b)
	}
}
