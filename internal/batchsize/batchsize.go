// Package batchsize implements the batch-size/efficiency trade-off of
// Section 3.5 and Appendix B: the empirical law Samples ∝ 1 + B/B_crit
// (McCandlish et al., 2018, paper Eq. 7), the gradient-noise-scale
// estimator, and a stochastic-gradient-descent simulator on a controlled
// problem that reproduces the law end to end.
//
// The paper uses estimated critical batch sizes of ~6780 sequences for the
// 52B model and ~3430 for the 6.6B model (Figure 8), with a base training
// length of 50,000 critical batches.
package batchsize

import (
	"fmt"
	"math"
	"math/rand"
)

// SamplesOverhead returns the relative number of training samples needed to
// reach a fixed loss at batch size b versus the small-batch limit,
// 1 + b/bcrit (Eq. 7).
func SamplesOverhead(b, bcrit float64) float64 {
	if b <= 0 || bcrit <= 0 {
		return math.Inf(1)
	}
	return 1 + b/bcrit
}

// StepsFactor returns the relative number of optimizer steps needed at
// batch size b, 1 + bcrit/b (Eq. 37).
func StepsFactor(b, bcrit float64) float64 {
	if b <= 0 || bcrit <= 0 {
		return math.Inf(1)
	}
	return 1 + bcrit/b
}

// PaperBcrit52B and PaperBcrit6p6B are the critical batch sizes (in
// sequences) the paper derives from Kaplan et al. for its two models.
const (
	PaperBcrit52B  = 6780.0
	PaperBcrit6p6B = 3430.0
	// PaperBaseBatches is the base training length in units of the critical
	// batch size (Section 5.4).
	PaperBaseBatches = 50000.0
)

// TrainingSamples returns the total number of samples to train a model with
// critical batch size bcrit at global batch size b: the base length
// (PaperBaseBatches * bcrit samples) scaled by the overhead law.
func TrainingSamples(b, bcrit float64) float64 {
	return PaperBaseBatches * bcrit * SamplesOverhead(b, bcrit)
}

// --- SGD noise-scale simulator (Appendix B) ---

// SGDSim is a controlled stochastic optimization problem: minimize
// L(theta) = |theta|^2/2 where each sample's gradient is the true gradient
// plus multiplicative Gaussian noise with per-coordinate standard deviation
// Sigma*|G|/sqrt(Dim). The noise covariance then satisfies
// tr(Sigma_0) = Sigma^2*|G|^2, so the noise scale of Eq. (35) is constant
// along the trajectory: B_noise = tr(Sigma_0)/|G|^2 = Sigma^2. With the
// damped optimal learning rate below, the expected step count is exactly
// Steps = Smin*(1 + Sigma^2/B) — the law of Eq. (37).
type SGDSim struct {
	// Dim is the parameter dimension.
	Dim int
	// Sigma is the relative gradient noise; the noise scale is Sigma^2.
	Sigma float64
	// Seed makes runs reproducible.
	Seed int64
}

// NoiseScale returns the exact (constant) noise scale B_noise = Sigma^2.
func (s SGDSim) NoiseScale() float64 { return s.Sigma * s.Sigma }

// lrDamping keeps the per-step contraction in the regime where the step
// count follows Eq. (37) (an undamped optimal step would solve the
// noise-free quadratic in one iteration).
const lrDamping = 0.1

// Run performs SGD with batch size b from initial loss l0 down to target
// loss, using the damped per-step optimal learning rate of Eq. (34)
// (eps = damping * |G|^2/(|G|^2 + tr(Sigma)/B)), and returns the number of
// optimizer steps taken. maxSteps bounds the run.
func (s SGDSim) Run(b int, l0, target float64, maxSteps int) (steps int) {
	if b <= 0 {
		panic("batchsize: batch must be positive")
	}
	rng := rand.New(rand.NewSource(s.Seed))
	theta := make([]float64, s.Dim)
	v := math.Sqrt(2 * l0 / float64(s.Dim))
	for i := range theta {
		theta[i] = v
	}
	for steps = 0; steps < maxSteps; steps++ {
		var l float64
		for _, x := range theta {
			l += x * x
		}
		l /= 2
		if l <= target {
			return steps
		}
		g2 := 2 * l
		eps := lrDamping * g2 / (g2 + g2*s.NoiseScale()/float64(b))
		// Per-coordinate noise of the batch-mean gradient.
		noise := s.Sigma * math.Sqrt(g2/float64(s.Dim)) / math.Sqrt(float64(b))
		for i := range theta {
			theta[i] -= eps * (theta[i] + noise*rng.NormFloat64())
		}
	}
	return maxSteps
}

// StepsCurve runs the simulator across batch sizes and returns steps-to-
// target per batch size.
func (s SGDSim) StepsCurve(batches []int, l0, target float64, maxSteps int) map[int]int {
	out := make(map[int]int, len(batches))
	for _, b := range batches {
		sim := s
		sim.Seed = s.Seed + int64(b) // decorrelate runs
		out[b] = sim.Run(b, l0, target, maxSteps)
	}
	return out
}

// FitCriticalBatch fits the two-parameter law Steps(B) = Smin*(1 + Bcrit/B)
// to measured (batch, steps) points by least squares on the linearized form
// Steps = Smin + (Smin*Bcrit)/B, returning the fitted Bcrit and Smin.
func FitCriticalBatch(points map[int]int) (bcrit, smin float64, err error) {
	if len(points) < 2 {
		return 0, 0, fmt.Errorf("batchsize: need at least 2 points, got %d", len(points))
	}
	// Linear regression of y = a + c*x with x = 1/B, y = steps.
	var n, sx, sy, sxx, sxy float64
	for b, steps := range points {
		x := 1 / float64(b)
		y := float64(steps)
		n++
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, fmt.Errorf("batchsize: degenerate fit")
	}
	c := (n*sxy - sx*sy) / den
	a := (sy - c*sx) / n
	if a <= 0 || c <= 0 {
		return 0, 0, fmt.Errorf("batchsize: non-physical fit (smin=%v, smin*bcrit=%v)", a, c)
	}
	return c / a, a, nil
}

// GradientSampler yields per-sample gradients at a fixed parameter point,
// used by the noise-scale estimator.
type GradientSampler interface {
	// SampleGradient fills g with one sample's gradient estimate.
	SampleGradient(g []float64)
	// Dim returns the gradient dimension.
	Dim() int
}

// simSampler adapts SGDSim to a fixed parameter point.
type simSampler struct {
	theta []float64
	sigma float64
	rng   *rand.Rand
}

// Sampler returns a GradientSampler for the simulator at the point with
// loss l (all-equal coordinates).
func (s SGDSim) Sampler(l float64) GradientSampler {
	theta := make([]float64, s.Dim)
	v := math.Sqrt(2 * l / float64(s.Dim))
	for i := range theta {
		theta[i] = v
	}
	perCoord := s.Sigma * math.Sqrt(2*l/float64(s.Dim))
	return &simSampler{theta: theta, sigma: perCoord, rng: rand.New(rand.NewSource(s.Seed + 1))}
}

// Dim returns the gradient dimension.
func (ss *simSampler) Dim() int { return len(ss.theta) }

// SampleGradient fills g with one sample's noisy gradient at the fixed
// parameter point.
func (ss *simSampler) SampleGradient(g []float64) {
	for i, x := range ss.theta {
		g[i] = x + ss.sigma*ss.rng.NormFloat64()
	}
}

// EstimateNoiseScale measures B_simple = tr(Sigma)/|G|^2 with the unbiased
// two-batch-size estimator of McCandlish et al. (Appendix A.1 there):
// using mean gradients over batches of size bSmall and bBig,
//
//	|G|^2_est    = (bBig*|G_big|^2 - bSmall*|G_small|^2) / (bBig - bSmall)
//	tr(Sigma)est = (|G_small|^2 - |G_big|^2) / (1/bSmall - 1/bBig)
//
// averaged over rounds.
func EstimateNoiseScale(s GradientSampler, bSmall, bBig, rounds int) (float64, error) {
	if bSmall <= 0 || bBig <= bSmall {
		return 0, fmt.Errorf("batchsize: need 0 < bSmall < bBig, got %d, %d", bSmall, bBig)
	}
	if rounds <= 0 {
		return 0, fmt.Errorf("batchsize: rounds must be positive")
	}
	d := s.Dim()
	mean := func(b int) float64 {
		acc := make([]float64, d)
		g := make([]float64, d)
		for i := 0; i < b; i++ {
			s.SampleGradient(g)
			for j := range acc {
				acc[j] += g[j]
			}
		}
		var n2 float64
		for _, x := range acc {
			x /= float64(b)
			n2 += x * x
		}
		return n2
	}
	var g2Sum, trSum float64
	for r := 0; r < rounds; r++ {
		gs := mean(bSmall)
		gb := mean(bBig)
		g2Sum += (float64(bBig)*gb - float64(bSmall)*gs) / float64(bBig-bSmall)
		trSum += (gs - gb) / (1/float64(bSmall) - 1/float64(bBig))
	}
	g2 := g2Sum / float64(rounds)
	tr := trSum / float64(rounds)
	if g2 <= 0 {
		return 0, fmt.Errorf("batchsize: estimator needs more rounds (|G|^2 est %v)", g2)
	}
	return tr / g2, nil
}
