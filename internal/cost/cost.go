// Package cost is the pluggable cost-model subsystem behind
// engine.DeriveCosts: a registry of named models, each producing the
// schedule.StepCosts tuple for one (cluster, model, plan, params) point.
//
// The single-producer invariant the search relies on lives here: the DES
// simulator and every analytic bound (the tier-1 StepFloor, the tier-2
// exact multi-stream replay) price plans with the same Derive call, so
// whatever model is selected, the bounds stay admissible — and exact where
// they claim exactness — by construction. A cost model may therefore change
// *what* an operation costs, but the cost must remain a per-op constant of
// the (cluster, model, plan, params) point: no per-event state, no clock
// reads, no randomness (the package is in the detmap/detsource lint scope).
//
// Three models ship registered:
//
//   - "paper": the Appendix A formulas exactly as engine.DeriveCosts
//     hard-coded them before this package existed. The default; golden
//     tables are byte-identical under it.
//   - "calibrated": the same formulas with the calibration constants —
//     kernel-efficiency curve, link efficiencies and latencies, kernel
//     launch overhead — replaced by a Profile fit from measured per-op
//     timing samples (cost.Fit, cmd/bfpp-calibrate). The registered fixed
//     name uses DefaultProfile; the "calibrated:<profile.json>" pattern
//     loads a fitted profile from disk.
//   - "contended": shared-NIC contention for the ethernet cluster class:
//     the effective inter-node bandwidth is divided by the number of
//     concurrent transfer streams the plan shape puts on a node's NIC.
//     Static — derived from the plan, not from simulated time — so it stays
//     a per-op cost and replay exactness holds.
//
// Selection rides on Params.Model (nil means "paper"), so the existing
// engine/search/analytic plumbing — which already threads *engine.Params
// everywhere — carries the model choice end to end without new signatures.
package cost

import (
	"bfpp/internal/core"
	"bfpp/internal/hw"
	"bfpp/internal/model"
	"bfpp/internal/schedule"
)

// Params are the engine's calibration constants plus the cost-model
// selection. Zero value means "use DefaultParams()"; the fields are
// exposed so ablation benchmarks can vary them.
type Params struct {
	// KernelLaunch is the fixed per-compute-op overhead (kernel launches,
	// framework dispatch) in seconds.
	KernelLaunch float64
	// BlockingPPBase and BlockingPPPerRank model the per-message stall a
	// non-overlapping implementation pays on the compute stream for each
	// pipeline-parallel transfer: stall = Base + PerRank*N_PP. Appendix D.2
	// documents multi-millisecond allocator/synchronization stalls that
	// grow with the number of parallel devices; Section 5.2 measures the
	// resulting overhead at >=40% for N_loop = 8 on the 52B model.
	BlockingPPBase, BlockingPPPerRank float64
	// TPLinkEfficiency is the achievable fraction of the intra-node link
	// bandwidth for tensor-parallel all-reduces (small messages, ring
	// overheads, contention).
	TPLinkEfficiency float64
	// DPLinkEfficiency likewise for data-parallel collectives (large,
	// bandwidth-friendly messages).
	DPLinkEfficiency float64
	// OptimizerBytesPerParam is the memory traffic per parameter of the
	// optimizer step (read/update fp32 state and momenta).
	OptimizerBytesPerParam float64
	// Model selects the cost model pricing these constants into per-op
	// durations; nil selects the default "paper" model. The field travels
	// with the rest of the params through engine.Options, search.Options
	// and the analytic bounds, which is what keeps the simulator and every
	// bound on the same producer whatever model a request selects.
	Model Model
}

// DefaultParams returns the calibrated engine constants (and the default
// paper cost model, as the nil Model).
func DefaultParams() Params {
	return Params{
		KernelLaunch:           30e-6,
		BlockingPPBase:         0.25e-3,
		BlockingPPPerRank:      0.4375e-3,
		TPLinkEfficiency:       0.45,
		DPLinkEfficiency:       0.90,
		OptimizerBytesPerParam: 32,
	}
}

// Model prices (cluster, model, plan, params) points. Implementations must
// be pure functions of their inputs (plus immutable construction-time
// state such as a loaded Profile): the same point must always produce the
// same StepCosts, or the search's replay bounds and resume/journal byte
// identities break.
type Model interface {
	// Name is the registry spelling ("paper").
	Name() string
	// Fingerprint is a canonical content string for result-cache keys: two
	// models with the same fingerprint must price every point identically
	// (a calibrated model's fingerprint covers its profile values, so two
	// profiles at the same path but different content never share a cache
	// entry).
	Fingerprint() string
	// Derive produces the per-operation durations the simulator charges
	// the configuration. par carries the calibration constants; par.Model
	// is ignored (the receiver is the selected model).
	Derive(c hw.Cluster, m model.Transformer, p core.Plan, par Params) schedule.StepCosts
}

// Derive prices one point under the params' selected model — the single
// entry point engine.DeriveCosts delegates to. A nil Params.Model selects
// the default paper model, which keeps the pre-registry behavior (and its
// golden bytes) for every caller that never touches the field.
func Derive(c hw.Cluster, m model.Transformer, p core.Plan, par Params) schedule.StepCosts {
	mdl := par.Model
	if mdl == nil {
		mdl = Default()
	}
	return mdl.Derive(c, m, p, par)
}

// Fingerprint resolves the params' selected model to its cache-key
// fingerprint ("paper" for the nil default).
func Fingerprint(par Params) string {
	if par.Model == nil {
		return Default().Fingerprint()
	}
	return par.Model.Fingerprint()
}
