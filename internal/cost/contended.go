package cost

import (
	"bfpp/internal/core"
	"bfpp/internal/hw"
	"bfpp/internal/model"
	"bfpp/internal/schedule"
)

// contendedModel prices points with the paper formulas under static
// shared-NIC contention: the effective inter-node bandwidth is the quoted
// per-GPU figure divided by the number of concurrent transfer streams the
// plan shape puts on one node's NIC. The paper's Appendix A charges each
// collective the full NIC as if it ran alone, which flatters clusters with
// one thin NIC per node; on the ethernet cluster class this model is the
// honest one.
//
// The stream count is derived from the plan alone — never from simulated
// time — so the per-op cost stays a constant of the (cluster, model, plan,
// params) point and the analytic bounds' exact replay still holds under it.
type contendedModel struct{}

func (contendedModel) Name() string        { return "contended" }
func (contendedModel) Fingerprint() string { return "contended" }

// nicStreams counts the concurrent inter-node transfer streams a node's NIC
// carries under the plan, conservatively assuming the steady state where
// everything that can overlap does:
//
//   - A cross-node pipeline boundary keeps CrossNodeDuplex streams resident
//     (the forward activations leaving and the backward gradients arriving
//     are independent transfers sharing the NIC).
//   - A data-parallel ring that spans nodes routes every resident group
//     member's ring traffic through the node NIC: with g = GPUsPerNode/TP
//     members per node that is g more streams.
//
// Plans whose transfers all stay on NVLink (or that have a single stream)
// see count 1 and price identically to the paper model.
func nicStreams(c hw.Cluster, p core.Plan) float64 {
	streams := 0.0
	if p.PP > 1 && p.TP*p.DP >= c.GPUsPerNode {
		streams += CrossNodeDuplex
	}
	if p.DP > 1 && p.TP*p.DP > c.GPUsPerNode {
		g := c.GPUsPerNode / p.TP
		if g < 1 {
			g = 1
		}
		if g > p.DP {
			g = p.DP
		}
		streams += float64(g)
	}
	if streams < 1 {
		streams = 1
	}
	return streams
}

func (contendedModel) Derive(c hw.Cluster, m model.Transformer, p core.Plan, par Params) schedule.StepCosts {
	if n := nicStreams(c, p); n > 1 {
		// Substitute the contention-discounted NIC into a value copy of the
		// cluster and price with the shared paper formula body.
		c.InterNode.Bandwidth /= n
	}
	return paperCosts(c, m, p, par)
}
