package cost

import (
	"bfpp/internal/core"
	"bfpp/internal/hw"
	"bfpp/internal/model"
	"bfpp/internal/schedule"
)

// CrossNodeDuplex is the node-NIC duplex convention of the paper's
// Appendix A.3 footnote: link bandwidths are quoted as the aggregate
// (input+output) figure per GPU, so a transfer whose endpoints sit on
// different nodes counts against both the sender's output share and the
// receiver's input share of the node NIC — its effective bandwidth is the
// quoted figure divided by this factor. Intra-node transfers ride
// full-duplex NVLink bricks and do not pay it. The engine's cross-node
// pipeline-transfer cost carried this as an inline 2* before the cost
// registry existed; it is named here so the contended model (which counts
// both directions of a cross-node stage boundary as separate NIC streams)
// prices the same convention instead of re-deriving it.
const CrossNodeDuplex = 2.0

// paperModel is the Appendix A cost model, extracted verbatim from the
// pre-registry engine.DeriveCosts: the default, and the producer of every
// golden table byte.
type paperModel struct{}

func (paperModel) Name() string        { return "paper" }
func (paperModel) Fingerprint() string { return "paper" }

func (paperModel) Derive(c hw.Cluster, m model.Transformer, p core.Plan, par Params) schedule.StepCosts {
	return paperCosts(c, m, p, par)
}

// paperCosts computes the per-operation durations of the paper's Appendix A
// cost model. It is shared by the calibrated model (same formulas, profile
// constants) and the contended model (same formulas, contention-discounted
// inter-node bandwidth), so a derived model can only differ from the paper
// in its inputs — never in the pricing structure the bounds replay.
func paperCosts(c hw.Cluster, m model.Transformer, p core.Plan, par Params) schedule.StepCosts {
	var costs schedule.StepCosts
	nStages := p.NumStages()
	layersPerStage := m.Layers / nStages
	tokens := p.MicroBatch * m.SeqLen
	rows := float64(tokens)
	width := float64(m.Hidden) / float64(p.TP)
	eff := c.GPU.KernelEff.Efficiency(rows, width)
	flops := c.GPU.PeakFlops * eff

	// Tensor-parallel all-reduce overhead per layer pass, non-overlapped
	// (Appendix A.3.3): two all-reduces in the forward pass and two more in
	// the checkpoint recompute, 8 bytes per hidden element per token each.
	var tpFwd, tpBwd float64
	if p.TP > 1 {
		bw := c.IntraNode.Bandwidth * par.TPLinkEfficiency
		ring := float64(p.TP-1) / float64(p.TP)
		perAR := 8 * float64(m.Hidden) * rows * ring / bw
		tpFwd = 2*perAR + 2*c.IntraNode.Latency
		tpBwd = 2*perAR + 2*c.IntraNode.Latency
	}

	costs.Fwd = float64(layersPerStage)*(m.LayerForwardFlop(tokens)/float64(p.TP)/flops+tpFwd) + par.KernelLaunch
	costs.Bwd = float64(layersPerStage)*(m.LayerBackwardFlop(tokens)/float64(p.TP)/flops+tpBwd) + par.KernelLaunch

	// Pipeline transfer: fp16 activations at the stage boundary. When the
	// boundary crosses nodes the transfer pays the CrossNodeDuplex
	// convention: it counts against both the sender's output and the
	// receiver's input share of the node NIC.
	ppBytes := 2 * rows * float64(m.Hidden) / float64(p.TP)
	if p.TP*p.DP >= c.GPUsPerNode {
		l := c.InterNode
		costs.Transfer = l.Latency + CrossNodeDuplex*ppBytes/l.Bandwidth
	} else {
		l := c.IntraNode
		costs.Transfer = l.Latency + ppBytes/l.Bandwidth
	}
	costs.PPStall = par.BlockingPPBase + par.BlockingPPPerRank*float64(p.PP)

	// Data-parallel collectives (Appendix A.3.1): 8 bytes/param for the
	// all-reduce (reduce-scatter + all-gather), 4 bytes/param per
	// reduce-scatter or all-gather under sharding. When the group spans
	// nodes with g members per node, a node-contiguous ring crosses each
	// NIC only once per g members, multiplying the effective per-GPU
	// bandwidth by g.
	stackParams := float64(m.Layers) * float64(m.LayerParams())
	stageParams := stackParams / float64(nStages) / float64(p.TP)
	if p.DP > 1 {
		ring := float64(p.DP-1) / float64(p.DP)
		var lat, bw float64
		if p.TP*p.DP <= c.GPUsPerNode {
			// Whole group inside one node.
			lat = c.IntraNode.Latency
			bw = c.IntraNode.Bandwidth * par.DPLinkEfficiency
		} else {
			g := c.GPUsPerNode / p.TP
			if g < 1 {
				g = 1
			}
			if g > p.DP {
				g = p.DP
			}
			lat = c.InterNode.Latency
			bw = float64(g) * c.InterNode.Bandwidth * par.DPLinkEfficiency
		}
		perParam := 8.0
		if p.Sharding != core.DP0 {
			perParam = 4.0
		}
		costs.Reduce = lat + perParam*stageParams*ring/bw
		if !p.OverlapDP {
			costs.Reduce += c.InterNode.SyncCost
		}
		if p.Sharding == core.DPFS {
			costs.Restore = lat + 4*stageParams*ring/bw
		}
	}

	// Optimizer step over the device's (shard of the) training state.
	devParams := stackParams / float64(p.PP*p.TP)
	if p.Sharding != core.DP0 {
		devParams /= float64(p.DP)
	}
	costs.Opt = par.OptimizerBytesPerParam * devParams / c.GPU.MemBandwidth
	return costs
}
