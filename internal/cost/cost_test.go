package cost

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bfpp/internal/core"
	"bfpp/internal/hw"
	"bfpp/internal/model"
)

// testPlans spans the pricing branches: intra-node pipeline transfer,
// cross-node transfer, in-node and cross-node DP rings, sharded and
// unsharded collectives, TP on and off.
func testPlans() []core.Plan {
	return []core.Plan{
		{Method: core.BreadthFirst, DP: 1, PP: 4, TP: 1, MicroBatch: 2, NumMicro: 8, Loops: 4},
		{Method: core.BreadthFirst, DP: 4, PP: 8, TP: 4, MicroBatch: 1, NumMicro: 8, Loops: 2, Sharding: core.DPFS, OverlapDP: true, OverlapPP: true},
		{Method: core.DepthFirst, DP: 8, PP: 2, TP: 2, MicroBatch: 2, NumMicro: 4, Loops: 8, Sharding: core.DPPS},
		{Method: core.OneFOneB, DP: 2, PP: 8, TP: 2, MicroBatch: 2, NumMicro: 12, Loops: 1},
		{Method: core.NoPipelineBF, DP: 4, PP: 1, TP: 2, MicroBatch: 2, NumMicro: 4, Loops: 16, Sharding: core.DPFS},
	}
}

func TestRegistryLookup(t *testing.T) {
	for _, name := range []string{"paper", "PAPER", "calibrated", "contended"} {
		m, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if want := strings.ToLower(name); m.Name() != want {
			t.Errorf("Lookup(%q).Name() = %q, want %q", name, m.Name(), want)
		}
	}
	if got := FixedNames(); len(got) != 3 || got[0] != "paper" {
		t.Errorf("FixedNames() = %v, want [paper calibrated contended]", got)
	}
	if _, err := Lookup("bogus"); err == nil || !strings.Contains(err.Error(), "calibrated:<profile.json>") {
		t.Errorf("unknown-model error should list registered spellings, got %v", err)
	}
}

func TestCalibratedPattern(t *testing.T) {
	// A matched pattern with a broken payload is a load error, never
	// "unknown model".
	if _, err := Lookup("calibrated:/does/not/exist.json"); err == nil || strings.Contains(err.Error(), "unknown model") {
		t.Errorf("missing profile should be a load error, got %v", err)
	}
	path := filepath.Join(t.TempDir(), "profile.json")
	raw, err := json.Marshal(DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Lookup("calibrated:" + path)
	if err != nil {
		t.Fatalf("Lookup(calibrated:%s): %v", path, err)
	}
	if m.Name() != "calibrated" {
		t.Errorf("pattern model name = %q", m.Name())
	}
	// Fingerprint covers content: same values as the fixed name's default.
	def, _ := Lookup("calibrated")
	if m.Fingerprint() != def.Fingerprint() {
		t.Errorf("same profile content, different fingerprints:\n%s\n%s", m.Fingerprint(), def.Fingerprint())
	}
	// An unknown field must fail loudly, not silently zero a constant.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"kernel_lunch": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("calibrated:" + bad); err == nil {
		t.Error("unknown profile field should fail to load")
	}
}

// TestDeriveDefaultsToPaper pins the zero-churn guarantee: a nil Model
// prices identically to an explicit "paper" lookup, term by term.
func TestDeriveDefaultsToPaper(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model6p6B()
	paper, err := Lookup("paper")
	if err != nil {
		t.Fatal(err)
	}
	par := DefaultParams()
	for _, p := range testPlans() {
		got := Derive(c, m, p, par)
		want := paper.Derive(c, m, p, par)
		if got != want {
			t.Errorf("nil-model Derive %+v != paper %+v for %v", got, want, p)
		}
	}
	if Fingerprint(par) != "paper" {
		t.Errorf("nil-model fingerprint = %q", Fingerprint(par))
	}
}

// TestDefaultProfileReproducesPaper pins the calibrated model's baseline:
// the default profile is the paper constants, so on the paper cluster the
// calibrated model prices every point identically to the paper model.
func TestDefaultProfileReproducesPaper(t *testing.T) {
	c := hw.PaperCluster()
	m := model.Model6p6B()
	cal := Calibrated(DefaultProfile())
	par := DefaultParams()
	for _, p := range testPlans() {
		got := cal.Derive(c, m, p, par)
		want := paperCosts(c, m, p, par)
		if got != want {
			t.Errorf("calibrated(default) %+v != paper %+v for %v", got, want, p)
		}
	}
}

// TestContendedModel pins the contention semantics: plans whose transfers
// stay on NVLink price identically to the paper model; plans that put
// several streams on a node NIC pay strictly more on the inter-node terms
// and exactly the same on everything else.
func TestContendedModel(t *testing.T) {
	c := hw.PaperClusterEthernet()
	m := model.Model6p6B()
	cont, err := Lookup("contended")
	if err != nil {
		t.Fatal(err)
	}
	par := DefaultParams()

	inNode := core.Plan{Method: core.BreadthFirst, DP: 1, PP: 4, TP: 1, MicroBatch: 2, NumMicro: 8, Loops: 4}
	if got, want := cont.Derive(c, m, inNode, par), paperCosts(c, m, inNode, par); got != want {
		t.Errorf("single-stream plan: contended %+v != paper %+v", got, want)
	}

	// PP boundary crosses nodes AND the DP ring spans nodes: duplex
	// pipeline streams plus g resident ring members share the NIC.
	crossed := core.Plan{Method: core.BreadthFirst, DP: 4, PP: 8, TP: 4, MicroBatch: 1, NumMicro: 8, Loops: 2, Sharding: core.DPFS}
	if n := nicStreams(c, crossed); n <= 1 {
		t.Fatalf("expected contention for %v, nicStreams = %v", crossed, n)
	}
	got := cont.Derive(c, m, crossed, par)
	want := paperCosts(c, m, crossed, par)
	if got.Transfer <= want.Transfer {
		t.Errorf("contended Transfer %v not above paper %v", got.Transfer, want.Transfer)
	}
	if got.Reduce <= want.Reduce || got.Restore <= want.Restore {
		t.Errorf("contended DP terms (%v, %v) not above paper (%v, %v)",
			got.Reduce, got.Restore, want.Reduce, want.Restore)
	}
	if got.Fwd != want.Fwd || got.Bwd != want.Bwd || got.Opt != want.Opt || got.PPStall != want.PPStall {
		t.Errorf("contention leaked into non-NIC terms: %+v vs %+v", got, want)
	}
}

// syntheticSamples generates noiseless samples from a known profile, the
// round-trip fixture for Fit.
func syntheticSamples(prof Profile) []Sample {
	const peak = 100e12
	const rawIntra = 250e9
	const rawInter = 20e9
	var out []Sample
	for _, r := range []float64{16, 32, 64, 128, 256, 512, 1024, 4096} {
		for _, w := range []float64{32, 64, 128, 256, 1024} {
			flop := 2 * r * w * w
			eff := prof.Kernel.Efficiency(r, w)
			out = append(out, Sample{
				Op: "compute", Rows: r, Width: w, Flop: flop, PeakFlops: peak,
				Seconds: flop/(peak*eff) + prof.KernelLaunch,
			})
		}
	}
	for _, b := range []float64{1 << 14, 1 << 17, 1 << 20, 1 << 24} {
		out = append(out, Sample{Op: "intra", Bytes: b, Bandwidth: rawIntra,
			Seconds: prof.IntraNodeLatency + b/(rawIntra*prof.TPLinkEfficiency)})
		out = append(out, Sample{Op: "inter", Bytes: b, Bandwidth: rawInter,
			Seconds: prof.InterNodeLatency + b/(rawInter*prof.DPLinkEfficiency)})
	}
	return out
}

// TestFitRoundTrip is the recovery property: fitting samples generated from
// a known profile recovers that profile within tolerance.
func TestFitRoundTrip(t *testing.T) {
	want := Profile{
		Kernel:           hw.KernelModel{MaxEff: 0.62, HalfRows: 96, HalfWidth: 192},
		KernelLaunch:     30e-6,
		TPLinkEfficiency: 0.45,
		DPLinkEfficiency: 0.90,
		IntraNodeLatency: 3e-6,
		InterNodeLatency: 5e-6,
	}
	got, err := Fit(syntheticSamples(want))
	if err != nil {
		t.Fatal(err)
	}
	relClose := func(name string, g, w, tol float64) {
		t.Helper()
		if math.Abs(g-w) > tol*math.Abs(w) {
			t.Errorf("%s = %v, want %v (tol %v%%)", name, g, w, 100*tol)
		}
	}
	relClose("MaxEff", got.Kernel.MaxEff, want.Kernel.MaxEff, 0.02)
	relClose("HalfRows", got.Kernel.HalfRows, want.Kernel.HalfRows, 0.05)
	relClose("HalfWidth", got.Kernel.HalfWidth, want.Kernel.HalfWidth, 0.05)
	relClose("KernelLaunch", got.KernelLaunch, want.KernelLaunch, 0.02)
	relClose("TPLinkEfficiency", got.TPLinkEfficiency, want.TPLinkEfficiency, 1e-6)
	relClose("DPLinkEfficiency", got.DPLinkEfficiency, want.DPLinkEfficiency, 1e-6)
	relClose("IntraNodeLatency", got.IntraNodeLatency, want.IntraNodeLatency, 1e-6)
	relClose("InterNodeLatency", got.InterNodeLatency, want.InterNodeLatency, 1e-6)
}

// TestFitDeterministic is the byte-identity half of the property: the same
// samples always fit to the same profile bytes (no clock, no randomness,
// fixed refinement budget), which the CI calibrate smoke pins end to end.
func TestFitDeterministic(t *testing.T) {
	samples := syntheticSamples(DefaultProfile())
	a, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Errorf("two fits of the same samples differ:\n%s\n%s", ja, jb)
	}
}

// TestFitPartialCategories pins the fall-back: link-only samples fit the
// link constants and keep the default kernel curve.
func TestFitPartialCategories(t *testing.T) {
	prof := DefaultProfile()
	var links []Sample
	for _, s := range syntheticSamples(prof) {
		if s.Op != "compute" {
			links = append(links, s)
		}
	}
	got, err := Fit(links)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kernel != prof.Kernel {
		t.Errorf("link-only fit changed the kernel curve: %+v", got.Kernel)
	}
	if math.Abs(got.TPLinkEfficiency-prof.TPLinkEfficiency) > 1e-9 {
		t.Errorf("TPLinkEfficiency = %v, want %v", got.TPLinkEfficiency, prof.TPLinkEfficiency)
	}
	if _, err := Fit(nil); err == nil {
		t.Error("empty sample set should not fit")
	}
	if _, err := Fit([]Sample{{Op: "warp", Seconds: 1}}); err == nil {
		t.Error("unknown op should not fit")
	}
}
