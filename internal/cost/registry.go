package cost

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// The cost-model registry mirrors the model/cluster/schedule registries:
// named constructors and parameterized patterns are published copy-on-write
// at init time, and every consumer (the commands' -costmodel flags, the
// service requests' "cost_model" field) resolves them by name. Fixed names
// ("paper", "calibrated", "contended") are tried first; patterns
// ("calibrated:<profile.json>") parse whatever the fixed names did not
// match, in registration order.

// modelEntry is one fixed-name registration.
type modelEntry struct {
	name    string
	aliases []string
	build   func() Model
}

// patternEntry is one parameterized registration: label documents the
// accepted spelling ("calibrated:<profile.json>"), parse reports whether it
// accepts the argument — and may fail loudly (a matched spelling whose
// payload is broken, e.g. an unreadable profile file, is an error, not a
// fall-through to "unknown model").
type patternEntry struct {
	label string
	parse func(arg string) (Model, bool, error)
}

var (
	modelTable   atomic.Pointer[[]modelEntry]
	patternTable atomic.Pointer[[]patternEntry]
	regMu        sync.Mutex // serializes registrations of both tables
)

// Register publishes a named cost-model constructor. Name and aliases match
// case-insensitively. It is meant to be called at init time and panics on
// an empty or duplicate spelling or a nil constructor — a registration bug
// should fail loudly at startup, not shadow a model.
func Register(name string, build func() Model, aliases ...string) {
	if name == "" {
		panic("cost: Register with an empty name")
	}
	if build == nil {
		panic(fmt.Sprintf("cost: Register(%q) with a nil constructor", name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	var cur []modelEntry
	if p := modelTable.Load(); p != nil {
		cur = *p
	}
	for _, spelling := range append([]string{name}, aliases...) {
		if _, ok := lookupFixed(cur, spelling); ok {
			panic(fmt.Sprintf("cost: model %q registered twice", spelling))
		}
	}
	next := make([]modelEntry, len(cur), len(cur)+1)
	copy(next, cur)
	next = append(next, modelEntry{name: name, aliases: aliases, build: build})
	modelTable.Store(&next)
}

// RegisterPattern publishes a parameterized cost-model spelling, e.g.
// "calibrated:<profile.json>" resolving to a calibrated model with the
// profile loaded from disk. label is the placeholder shown in listings and
// errors; parse returns ok=false to pass the argument on to the next
// pattern, and a non-nil error when the spelling matched but its payload is
// invalid. Patterns are consulted after the fixed names, in registration
// order. Panics on an empty label, a nil parser or a duplicate label.
func RegisterPattern(label string, parse func(arg string) (Model, bool, error)) {
	if label == "" {
		panic("cost: RegisterPattern with an empty label")
	}
	if parse == nil {
		panic(fmt.Sprintf("cost: RegisterPattern(%q) with a nil parser", label))
	}
	regMu.Lock()
	defer regMu.Unlock()
	var cur []patternEntry
	if p := patternTable.Load(); p != nil {
		cur = *p
	}
	for _, e := range cur {
		if e.label == label {
			panic(fmt.Sprintf("cost: model pattern %q registered twice", label))
		}
	}
	next := make([]patternEntry, len(cur), len(cur)+1)
	copy(next, cur)
	next = append(next, patternEntry{label: label, parse: parse})
	patternTable.Store(&next)
}

// lookupFixed resolves a spelling against a fixed-name table snapshot.
func lookupFixed(table []modelEntry, name string) (Model, bool) {
	want := strings.ToLower(name)
	for _, e := range table {
		if strings.ToLower(e.name) == want {
			return e.build(), true
		}
		for _, a := range e.aliases {
			if strings.ToLower(a) == want {
				return e.build(), true
			}
		}
	}
	return nil, false
}

// Lookup resolves a registered cost model: fixed names (and aliases,
// case-insensitive) first, then the registered patterns in order. Unlike
// the model/cluster registries it returns an error, because a pattern
// match can fail after matching (a calibrated profile that does not load);
// the unknown-name error lists every registered spelling.
func Lookup(name string) (Model, error) {
	if p := modelTable.Load(); p != nil {
		if m, ok := lookupFixed(*p, name); ok {
			return m, nil
		}
	}
	if p := patternTable.Load(); p != nil {
		for _, e := range *p {
			m, ok, err := e.parse(name)
			if err != nil {
				return nil, fmt.Errorf("cost: model %q: %w", name, err)
			}
			if ok {
				return m, nil
			}
		}
	}
	return nil, fmt.Errorf("cost: unknown model %q (registered: %s)",
		name, strings.Join(Names(), ", "))
}

// Names returns the registered spellings in registration order — the fixed
// canonical names followed by the pattern labels — which is what an
// "unknown cost model" error or a /healthz listing should show.
func Names() []string {
	var out []string
	if p := modelTable.Load(); p != nil {
		for _, e := range *p {
			out = append(out, e.name)
		}
	}
	if p := patternTable.Load(); p != nil {
		for _, e := range *p {
			out = append(out, e.label)
		}
	}
	return out
}

// FixedNames returns only the fixed canonical names, in registration order
// — the spellings tests can enumerate and construct without arguments.
func FixedNames() []string {
	var out []string
	if p := modelTable.Load(); p != nil {
		for _, e := range *p {
			out = append(out, e.name)
		}
	}
	return out
}

// Default returns the default cost model — the paper formulas — selected
// whenever Params.Model is nil.
func Default() Model { return paperModel{} }

func init() {
	// The built-in models register like any extension would.
	Register("paper", func() Model { return paperModel{} })
	Register("calibrated", func() Model { return Calibrated(DefaultProfile()) })
	Register("contended", func() Model { return contendedModel{} })
	RegisterPattern("calibrated:<profile.json>", parseCalibratedPattern)
}
