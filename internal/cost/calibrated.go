package cost

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"

	"bfpp/internal/core"
	"bfpp/internal/hw"
	"bfpp/internal/model"
	"bfpp/internal/schedule"
)

// Profile holds the calibration constants the "calibrated" cost model
// substitutes into the paper formulas: the kernel-efficiency curve, the
// per-op launch overhead, the achievable link-efficiency fractions and the
// link latencies. Everything else — formula structure, bandwidth figures,
// topology — still comes from the selected cluster, so a profile fitted on
// one node count transfers to another.
type Profile struct {
	// Kernel is the fitted kernel-efficiency saturation curve replacing the
	// cluster GPU's KernelEff.
	Kernel hw.KernelModel `json:"kernel"`
	// KernelLaunch replaces Params.KernelLaunch (seconds per compute op).
	KernelLaunch float64 `json:"kernel_launch"`
	// TPLinkEfficiency and DPLinkEfficiency replace the corresponding
	// Params fractions.
	TPLinkEfficiency float64 `json:"tp_link_efficiency"`
	DPLinkEfficiency float64 `json:"dp_link_efficiency"`
	// IntraNodeLatency and InterNodeLatency replace the cluster links'
	// Latency terms (seconds).
	IntraNodeLatency float64 `json:"intra_node_latency"`
	InterNodeLatency float64 `json:"inter_node_latency"`
}

// DefaultProfile returns the profile that reproduces the paper model on the
// V100 clusters: the V100 kernel curve and the engine's default calibration
// constants with NVLink/InfiniBand latencies.
func DefaultProfile() Profile {
	def := DefaultParams()
	return Profile{
		Kernel:           hw.V100().KernelEff,
		KernelLaunch:     def.KernelLaunch,
		TPLinkEfficiency: def.TPLinkEfficiency,
		DPLinkEfficiency: def.DPLinkEfficiency,
		IntraNodeLatency: hw.NVLinkV100().Latency,
		InterNodeLatency: hw.InfiniBandV100().Latency,
	}
}

// Validate reports the first structurally invalid field of the profile: the
// curve and efficiencies must be positive fractions, the latencies and the
// launch overhead non-negative.
func (p Profile) Validate() error {
	switch {
	case p.Kernel.MaxEff <= 0 || p.Kernel.MaxEff > 1:
		return fmt.Errorf("kernel max efficiency %v outside (0, 1]", p.Kernel.MaxEff)
	case p.Kernel.HalfRows <= 0:
		return fmt.Errorf("kernel half-rows %v must be positive", p.Kernel.HalfRows)
	case p.Kernel.HalfWidth <= 0:
		return fmt.Errorf("kernel half-width %v must be positive", p.Kernel.HalfWidth)
	case p.KernelLaunch < 0:
		return fmt.Errorf("kernel launch overhead %v must be non-negative", p.KernelLaunch)
	case p.TPLinkEfficiency <= 0 || p.TPLinkEfficiency > 1:
		return fmt.Errorf("tp link efficiency %v outside (0, 1]", p.TPLinkEfficiency)
	case p.DPLinkEfficiency <= 0 || p.DPLinkEfficiency > 1:
		return fmt.Errorf("dp link efficiency %v outside (0, 1]", p.DPLinkEfficiency)
	case p.IntraNodeLatency < 0:
		return fmt.Errorf("intra-node latency %v must be non-negative", p.IntraNodeLatency)
	case p.InterNodeLatency < 0:
		return fmt.Errorf("inter-node latency %v must be non-negative", p.InterNodeLatency)
	}
	return nil
}

// LoadProfile reads and validates a fitted profile from a JSON file written
// by bfpp-calibrate (or by hand). Unknown fields are an error: a typoed key
// silently falling back to a zero value would change pinned bytes.
func LoadProfile(path string) (Profile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Profile{}, fmt.Errorf("load profile: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var p Profile
	if err := dec.Decode(&p); err != nil {
		return Profile{}, fmt.Errorf("load profile %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return Profile{}, fmt.Errorf("load profile %s: %w", path, err)
	}
	return p, nil
}

// calibratedModel prices points with the paper formulas over a measured
// Profile instead of the paper constants.
type calibratedModel struct {
	profile Profile
}

// Calibrated returns the calibrated cost model over the given profile.
func Calibrated(p Profile) Model { return calibratedModel{profile: p} }

func (calibratedModel) Name() string { return "calibrated" }

// Fingerprint covers the profile content, not its source path: two profiles
// with the same values share cache entries, two different fits at the same
// path never do.
func (cm calibratedModel) Fingerprint() string {
	return fmt.Sprintf("calibrated{%+v}", cm.profile)
}

func (cm calibratedModel) Derive(c hw.Cluster, m model.Transformer, p core.Plan, par Params) schedule.StepCosts {
	// Substitute the profile into value copies of the cluster and params,
	// then price with the shared paper formula body — the calibrated model
	// can only differ from the paper in its constants.
	c.GPU.KernelEff = cm.profile.Kernel
	c.IntraNode.Latency = cm.profile.IntraNodeLatency
	c.InterNode.Latency = cm.profile.InterNodeLatency
	par.KernelLaunch = cm.profile.KernelLaunch
	par.TPLinkEfficiency = cm.profile.TPLinkEfficiency
	par.DPLinkEfficiency = cm.profile.DPLinkEfficiency
	return paperCosts(c, m, p, par)
}

// parseCalibratedPattern resolves the "calibrated:<profile.json>" spelling:
// a calibrated model with the profile loaded from the given path. A matched
// spelling whose profile fails to load is an error, not an unknown model.
func parseCalibratedPattern(arg string) (Model, bool, error) {
	const prefix = "calibrated:"
	if !strings.HasPrefix(strings.ToLower(arg), prefix) {
		return nil, false, nil
	}
	path := arg[len(prefix):]
	if path == "" {
		return nil, true, fmt.Errorf("calibrated: missing profile path")
	}
	p, err := LoadProfile(path)
	if err != nil {
		return nil, true, err
	}
	return Calibrated(p), true, nil
}

// Sample is one measured per-op timing point, as emitted by bfpp-calibrate.
// Op selects what the sample constrains:
//
//   - "compute": a GEMM-shaped kernel of Flop floating-point operations over
//     a (Rows x Width) operand on a device with PeakFlops peak throughput,
//     taking Seconds wall time. Constrains the kernel curve and the launch
//     overhead via Seconds = Flop/(PeakFlops*Eff(Rows, Width)) + KernelLaunch.
//   - "intra": a Bytes-sized transfer over an intra-node link of raw
//     Bandwidth. Constrains TPLinkEfficiency and IntraNodeLatency via
//     Seconds = Latency + Bytes/(Bandwidth*Efficiency).
//   - "inter": likewise over an inter-node link, constraining
//     DPLinkEfficiency and InterNodeLatency.
type Sample struct {
	Op        string  `json:"op"`
	Rows      float64 `json:"rows,omitempty"`
	Width     float64 `json:"width,omitempty"`
	Flop      float64 `json:"flop,omitempty"`
	PeakFlops float64 `json:"peak_flops,omitempty"`
	Bytes     float64 `json:"bytes,omitempty"`
	Bandwidth float64 `json:"bandwidth,omitempty"`
	Seconds   float64 `json:"seconds"`
}

// Fit recovers a Profile from measured samples: a closed-form linear
// least-squares solve for every parameter the model is linear in, and a
// fixed-budget grid-refinement coordinate search (log space) over the two
// kernel-curve half-saturation constants it is not. The procedure is a pure
// function of the sample values — no clock, no randomness, a fixed number
// of refinement rounds — so the same samples always fit to the same profile
// bytes, which is what lets CI pin the calibrate smoke.
//
// Each sample category is optional: a category with too few samples to
// constrain its parameters (fewer than three compute or two link samples)
// keeps the DefaultProfile values, so a link-only calibration run still
// yields a usable profile. At least one usable category is required.
func Fit(samples []Sample) (Profile, error) {
	prof := DefaultProfile()
	var compute, intra, inter []Sample
	for i, s := range samples {
		switch s.Op {
		case "compute":
			if s.Rows <= 0 || s.Width <= 0 || s.Flop <= 0 || s.PeakFlops <= 0 || s.Seconds <= 0 {
				return Profile{}, fmt.Errorf("fit: compute sample %d has non-positive fields", i)
			}
			compute = append(compute, s)
		case "intra", "inter":
			if s.Bytes <= 0 || s.Bandwidth <= 0 || s.Seconds <= 0 {
				return Profile{}, fmt.Errorf("fit: %s sample %d has non-positive fields", s.Op, i)
			}
			if s.Op == "intra" {
				intra = append(intra, s)
			} else {
				inter = append(inter, s)
			}
		default:
			return Profile{}, fmt.Errorf("fit: sample %d has unknown op %q", i, s.Op)
		}
	}
	fitted := false
	if len(compute) >= 3 {
		kernel, launch, err := fitCompute(compute)
		if err != nil {
			return Profile{}, err
		}
		prof.Kernel, prof.KernelLaunch = kernel, launch
		fitted = true
	}
	if len(intra) >= 2 {
		eff, lat, err := fitLink("intra", intra)
		if err != nil {
			return Profile{}, err
		}
		prof.TPLinkEfficiency, prof.IntraNodeLatency = eff, lat
		fitted = true
	}
	if len(inter) >= 2 {
		eff, lat, err := fitLink("inter", inter)
		if err != nil {
			return Profile{}, err
		}
		prof.DPLinkEfficiency, prof.InterNodeLatency = eff, lat
		fitted = true
	}
	if !fitted {
		return Profile{}, fmt.Errorf("fit: not enough samples in any category (need >=3 compute or >=2 link samples)")
	}
	if err := prof.Validate(); err != nil {
		return Profile{}, fmt.Errorf("fit: %w", err)
	}
	return prof, nil
}

// fitLink solves Seconds = Latency + (Bytes/Bandwidth)/Efficiency by plain
// linear least squares on x = Bytes/Bandwidth: the slope is 1/Efficiency,
// the intercept the Latency. Closed form — no iteration needed.
func fitLink(kind string, samples []Sample) (eff, lat float64, err error) {
	n := float64(len(samples))
	var sumX, sumY float64
	for _, s := range samples {
		sumX += s.Bytes / s.Bandwidth
		sumY += s.Seconds
	}
	meanX, meanY := sumX/n, sumY/n
	var cov, varX float64
	for _, s := range samples {
		dx := s.Bytes/s.Bandwidth - meanX
		cov += dx * (s.Seconds - meanY)
		varX += dx * dx
	}
	if varX == 0 {
		return 0, 0, fmt.Errorf("fit: %s samples all have the same ideal transfer time; vary the message size", kind)
	}
	slope := cov / varX
	if slope <= 0 {
		return 0, 0, fmt.Errorf("fit: %s samples imply a non-positive transfer slope %v", kind, slope)
	}
	eff = 1 / slope
	if eff > 1 {
		// Measured faster than the raw link figure: clamp to the physical
		// ceiling rather than emit an invalid profile.
		eff = 1
	}
	lat = meanY - slope*meanX
	if lat < 0 {
		lat = 0
	}
	return eff, lat, nil
}

// fitCompute fits Seconds = Flop/(PeakFlops*Eff(Rows, Width)) + KernelLaunch
// with Eff the two-parameter saturation curve MaxEff * r/(r+HR) * w/(w+HW).
// For fixed (HR, HW) the model is linear in (1/MaxEff, KernelLaunch) via
// u = Flop/(PeakFlops * r/(r+HR) * w/(w+HW)), so the inner solve is exact;
// the outer search over (HR, HW) is a deterministic grid refinement in log
// space with a fixed round budget.
func fitCompute(samples []Sample) (hw.KernelModel, float64, error) {
	const (
		gridPoints   = 17
		rounds       = 8
		logLo, logHi = 0.0, 6.0 // HR, HW searched over [1, 1e6]
	)
	type solved struct {
		maxEff, launch, sse float64
		ok                  bool
	}
	solve := func(hr, hwHalf float64) solved {
		// Exact 2x2 normal-equation solve for y = a*u + b with
		// a = 1/MaxEff, b = KernelLaunch.
		var suu, su, suy, sy float64
		n := float64(len(samples))
		for _, s := range samples {
			fr := s.Rows / (s.Rows + hr)
			fw := s.Width / (s.Width + hwHalf)
			u := s.Flop / (s.PeakFlops * fr * fw)
			suu += u * u
			su += u
			suy += u * s.Seconds
			sy += s.Seconds
		}
		det := suu*n - su*su
		if det == 0 {
			return solved{}
		}
		a := (suy*n - su*sy) / det
		b := (suu*sy - su*suy) / det
		if a <= 0 {
			return solved{}
		}
		var sse float64
		for _, s := range samples {
			fr := s.Rows / (s.Rows + hr)
			fw := s.Width / (s.Width + hwHalf)
			u := s.Flop / (s.PeakFlops * fr * fw)
			r := a*u + b - s.Seconds
			sse += r * r
		}
		return solved{maxEff: 1 / a, launch: b, sse: sse, ok: true}
	}

	loR, hiR := logLo, logHi
	loW, hiW := logLo, logHi
	var best solved
	bestHR, bestHW := math.NaN(), math.NaN()
	for round := 0; round < rounds; round++ {
		stepR := (hiR - loR) / float64(gridPoints-1)
		stepW := (hiW - loW) / float64(gridPoints-1)
		for i := 0; i < gridPoints; i++ {
			for j := 0; j < gridPoints; j++ {
				hr := math.Pow(10, loR+float64(i)*stepR)
				hwHalf := math.Pow(10, loW+float64(j)*stepW)
				s := solve(hr, hwHalf)
				if s.ok && (!best.ok || s.sse < best.sse) {
					best = s
					bestHR, bestHW = hr, hwHalf
				}
			}
		}
		if !best.ok {
			break
		}
		// Shrink the bracket around the incumbent for the next round.
		cR, cW := math.Log10(bestHR), math.Log10(bestHW)
		spanR, spanW := 2*stepR, 2*stepW
		loR, hiR = cR-spanR, cR+spanR
		loW, hiW = cW-spanW, cW+spanW
	}
	if !best.ok {
		return hw.KernelModel{}, 0, fmt.Errorf("fit: compute samples are degenerate (all one shape?); vary rows and width")
	}
	maxEff := best.maxEff
	if maxEff > 1 {
		maxEff = 1
	}
	launch := best.launch
	if launch < 0 {
		launch = 0
	}
	kernel := hw.KernelModel{MaxEff: maxEff, HalfRows: bestHR, HalfWidth: bestHW}
	return kernel, launch, nil
}
