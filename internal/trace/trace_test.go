package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"bfpp/internal/core"
	"bfpp/internal/des"
	"bfpp/internal/engine"
	"bfpp/internal/hw"
	"bfpp/internal/model"
)

func timeline(t *testing.T, p core.Plan) *des.Timeline {
	t.Helper()
	r, err := engine.SimulateOpts(hw.PaperCluster(), model.Tiny(), p,
		engine.Options{CaptureTimeline: true})
	if err != nil {
		t.Fatal(err)
	}
	return r.Timeline
}

func figure4Plan(m core.Method, loops int) core.Plan {
	// MicroBatch 4 keeps per-stage compute well above the fixed per-op
	// overheads on the tiny model, so the bubble dominates as in Figure 4.
	p := core.Plan{Method: m, DP: 1, PP: 4, TP: 1, MicroBatch: 4,
		NumMicro: 8, Loops: loops}
	if m == core.GPipe || m == core.BreadthFirst {
		p.OverlapDP, p.OverlapPP = true, true
	}
	return p
}

func TestGanttRendersAllStreams(t *testing.T) {
	tl := timeline(t, figure4Plan(core.BreadthFirst, 4))
	// Wide enough that forward spans cover more than their digit label.
	g := Gantt(tl, 400)
	for _, want := range []string{"gpu0/compute", "gpu3/compute", "gpu0/pp"} {
		if !strings.Contains(g, want) {
			t.Errorf("gantt missing stream %q:\n%s", want, g)
		}
	}
	if !strings.Contains(g, "f") || !strings.Contains(g, "b") || !strings.Contains(g, "S") {
		t.Errorf("gantt missing op classes:\n%s", g)
	}
}

// Figure 4a structure: on GPU 0 of a GPipe pipeline, micro-batch 0's
// forward comes first; the last device's row starts idle (the bubble).
func TestGanttShowsBubble(t *testing.T) {
	tl := timeline(t, figure4Plan(core.GPipe, 1))
	g := Gantt(tl, 120)
	lines := strings.Split(g, "\n")
	var first, last string
	for _, l := range lines {
		if strings.Contains(l, "gpu0/compute") {
			first = l
		}
		if strings.Contains(l, "gpu3/compute") {
			last = l
		}
	}
	if first == "" || last == "" {
		t.Fatalf("missing rows:\n%s", g)
	}
	body := func(s string) string { return s[strings.Index(s, "|")+1:] }
	if !strings.HasPrefix(body(first), "0") {
		t.Errorf("GPU0 should start with micro-batch 0: %q", body(first))
	}
	if !strings.HasPrefix(body(last), ".") {
		t.Errorf("last device should start idle (pipeline bubble): %q", body(last))
	}
	// The bubble is visible as leading idle on the last device (the first
	// device instead idles at the end while backwards drain).
	leadingIdle := func(s string) int {
		return len(body(s)) - len(strings.TrimLeft(body(s), "."))
	}
	if leadingIdle(last) <= leadingIdle(first) {
		t.Errorf("expected leading bubble idle on last device: %d vs %d",
			leadingIdle(last), leadingIdle(first))
	}
}

// The looped breadth-first timeline must be visibly shorter than GPipe at
// the same configuration (smaller bubble), mirroring Figure 4's "times to
// scale" comparison.
func TestLoopedTimelineShorter(t *testing.T) {
	gp := timeline(t, figure4Plan(core.GPipe, 1))
	bf := timeline(t, figure4Plan(core.BreadthFirst, 4))
	if bf.Makespan >= gp.Makespan {
		t.Errorf("breadth-first (%.4fs) should beat GPipe (%.4fs)", bf.Makespan, gp.Makespan)
	}
}

func TestGanttEdgeCases(t *testing.T) {
	empty := &des.Timeline{StreamNames: []string{"x"}}
	if g := Gantt(empty, 50); !strings.Contains(g, "empty") {
		t.Errorf("empty timeline: %q", g)
	}
	tl := timeline(t, figure4Plan(core.GPipe, 1))
	if g := Gantt(tl, 1); g == "" { // width clamped up
		t.Error("tiny width should still render")
	}
	if Legend() == "" {
		t.Error("empty legend")
	}
}

// Figure 3: the placement diagram for a 16-layer model on 4 devices.
func TestPlacementMatchesFigure3(t *testing.T) {
	m := model.Tiny()
	std := core.Plan{Method: core.GPipe, DP: 1, PP: 4, TP: 1, MicroBatch: 1, NumMicro: 8, Loops: 1}
	looped := core.Plan{Method: core.BreadthFirst, DP: 1, PP: 4, TP: 1, MicroBatch: 1, NumMicro: 8, Loops: 4}
	s := Placement(m, std)
	if !strings.Contains(s, "GPU 0 | 0 1 2 3") || !strings.Contains(s, "GPU 3 | 12 13 14 15") {
		t.Errorf("standard placement wrong:\n%s", s)
	}
	l := Placement(m, looped)
	if !strings.Contains(l, "GPU 0 | 0 4 8 12") || !strings.Contains(l, "GPU 1 | 1 5 9 13") {
		t.Errorf("looping placement wrong:\n%s", l)
	}
	if !strings.Contains(l, "looping") || !strings.Contains(s, "standard") {
		t.Error("placement style labels missing")
	}
}

func TestChromeTraceValidJSON(t *testing.T) {
	tl := timeline(t, figure4Plan(core.BreadthFirst, 4))
	raw, err := ChromeTrace(tl)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != len(tl.Spans) {
		t.Errorf("events %d != spans %d", len(parsed.TraceEvents), len(tl.Spans))
	}
	for _, ev := range parsed.TraceEvents {
		if ev.Ph != "X" || ev.Dur < 0 || ev.Ts < 0 {
			t.Errorf("bad event: %+v", ev)
		}
	}
}

// Figure 9: breadth-first gradient accumulation with DP-FS shows one
// restore pair and one reduce per stage, while depth-first repeats them
// per micro-batch — visible as W/G density in the gantt.
func TestFigure9AccumulationGantt(t *testing.T) {
	mk := func(m core.Method) string {
		p := core.Plan{Method: m, DP: 4, PP: 1, TP: 1, MicroBatch: 1,
			NumMicro: 4, Loops: 4, Sharding: core.DPFS, OverlapDP: true}
		r, err := engine.SimulateOpts(hw.PaperCluster(), model.Tiny(), p,
			engine.Options{CaptureTimeline: true})
		if err != nil {
			t.Fatal(err)
		}
		return Gantt(r.Timeline, 150)
	}
	df := mk(core.NoPipelineDF)
	bf := mk(core.NoPipelineBF)
	if !strings.Contains(df, "W") || !strings.Contains(bf, "W") {
		t.Error("restores should be visible")
	}
	// Count W-runs (restore blocks) in the DP rows: DF has 4x more.
	countRuns := func(s, sub string) int {
		return len(strings.FieldsFunc(s, func(r rune) bool { return r != rune(sub[0]) })) - 0
	}
	_ = countRuns
	if strings.Count(df, "W") <= strings.Count(bf, "W") {
		t.Error("depth-first accumulation should show more restore time")
	}
}
