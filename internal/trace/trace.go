// Package trace renders simulated timelines: ASCII Gantt charts in the
// style of the paper's Figures 4 and 9 (micro-batch numbers over per-device
// rows, compute and communication streams separated), the layer-placement
// diagram of Figure 3, and a Chrome trace JSON export for interactive
// inspection in chrome://tracing or Perfetto.
package trace

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"bfpp/internal/core"
	"bfpp/internal/des"
	"bfpp/internal/model"
)

// fillChar maps a span class to its Gantt fill character.
func fillChar(class des.Class) byte {
	switch class {
	case des.ClassFwd:
		return 'f'
	case des.ClassBwd:
		return 'b'
	case des.ClassReduce:
		return 'G'
	case des.ClassRestore:
		return 'W'
	case des.ClassSend:
		return '>'
	case des.ClassOpt:
		return 'S'
	default:
		return '#'
	}
}

// Gantt renders the timeline as one row per stream, scaled to the given
// character width. Forward and backward spans are labelled with their
// micro-batch number (modulo 10), mirroring Figure 4; idle time is dots.
func Gantt(tl *des.Timeline, width int) string {
	if width < 10 {
		width = 10
	}
	if tl.Makespan <= 0 {
		return "(empty timeline)\n"
	}
	scale := float64(width) / tl.Makespan
	var b strings.Builder
	nameW := 0
	for _, n := range tl.StreamNames {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	for sid, name := range tl.StreamNames {
		spans := tl.StreamSpans(des.StreamID(sid))
		if len(spans) == 0 {
			continue
		}
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, sp := range spans {
			lo := int(math.Round(sp.Start * scale))
			hi := int(math.Round(sp.End * scale))
			if hi <= lo {
				hi = lo + 1
			}
			if hi > width {
				hi = width
			}
			if lo >= width {
				lo = width - 1
			}
			c := fillChar(sp.Class)
			for i := lo; i < hi; i++ {
				row[i] = c
			}
			if sp.Micro >= 0 && (sp.Class == des.ClassFwd || sp.Class == des.ClassBwd) {
				row[lo] = byte('0' + sp.Micro%10)
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", nameW, name, row)
	}
	return b.String()
}

// Legend returns the fill-character key for Gantt output.
func Legend() string {
	return "legend: digit+f forward (micro-batch)  digit+b backward  " +
		"W restore  G reduce  > transfer  S optimizer  . idle\n"
}

// Placement renders the layer placement of a plan in the style of
// Figure 3: one row per pipeline device listing its layer indices in
// execution order (loop by loop).
func Placement(m model.Transformer, p core.Plan) string {
	var b strings.Builder
	style := "standard"
	if p.Loops > 1 {
		style = "looping"
	}
	fmt.Fprintf(&b, "%s placement: %d layers over %d devices, %d stage(s)/device\n",
		style, m.Layers, p.PP, p.Loops)
	for r := 0; r < p.PP; r++ {
		var layers []string
		for _, s := range p.DeviceStages(r) {
			lo, hi := p.StageLayers(m, s)
			for l := lo; l < hi; l++ {
				layers = append(layers, fmt.Sprint(l))
			}
		}
		fmt.Fprintf(&b, "GPU %d | %s\n", r, strings.Join(layers, " "))
	}
	return b.String()
}

// chromeEvent is one Chrome trace "complete" event.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
	Cat  string         `json:"cat,omitempty"`
}

// chromeFile is the JSON object format of the Chrome tracing schema.
type chromeFile struct {
	TraceEvents []chromeEvent     `json:"traceEvents"`
	Metadata    map[string]string `json:"otherData,omitempty"`
}

// ChromeTrace serializes the timeline in the Chrome tracing JSON format
// (timestamps in microseconds; one thread per stream).
func ChromeTrace(tl *des.Timeline) ([]byte, error) {
	f := chromeFile{Metadata: map[string]string{"generator": "bfpp"}}
	for _, sp := range tl.Spans {
		name := sp.Class.String()
		if sp.Micro >= 0 {
			name = fmt.Sprintf("%v s%d m%d", sp.Class, sp.Stage, sp.Micro)
		} else if sp.Stage >= 0 {
			name = fmt.Sprintf("%v s%d", sp.Class, sp.Stage)
		}
		ev := chromeEvent{
			Name: name, Ph: "X", Cat: sp.Class.String(),
			Ts: sp.Start * 1e6, Dur: sp.Dur() * 1e6,
			Pid: 0, Tid: int(sp.Stream),
		}
		if sp.Stage >= 0 {
			ev.Args = map[string]any{"stage": sp.Stage, "micro": sp.Micro}
		}
		f.TraceEvents = append(f.TraceEvents, ev)
	}
	return json.MarshalIndent(f, "", " ")
}
