// Package alloc models the GPU caching allocator behaviour described in
// Appendix D.2 of the paper, which the author identifies as a major source
// of hidden overhead in pipeline-parallel training:
//
//   - Memory fragmentation: an allocation can fail although enough total
//     memory is free, because no contiguous gap is large enough — "which
//     leads to unnecessary out-of-memory errors".
//   - Deferred frees: tensors involved in queued kernels (or collectives on
//     side streams) cannot be reused until the GPU catches up, so a deep
//     kernel queue inflates the apparent memory usage.
//   - Flush-on-OOM: when the allocator cannot satisfy a request it
//     synchronizes the device and flushes its cache — a slow, blocking
//     operation whose cost multiplies across parallel devices.
//
// The paper's two mitigations are reproducible here: pre-allocating
// long-lived state (fewer, stabler blocks -> less fragmentation) and
// inserting frequent non-blocking synchronizations (bounded queue depth ->
// deferred frees retire early, avoiding flushes).
package alloc

import (
	"fmt"
	"sort"
)

// Allocator is a best-fit arena with deferred frees and flush-on-OOM,
// mimicking a CUDA caching allocator from the host's perspective.
type Allocator struct {
	capacity int64
	// free holds the free gaps, sorted by offset, coalesced.
	free []span
	// live maps allocation ids to their spans.
	live map[int]span
	// deferred holds frees that cannot retire until a synchronization
	// (their tensors are referenced by queued kernels).
	deferred []int
	nextID   int

	// Stats accumulated over the run.
	Flushes      int   // cache flushes triggered by failed allocations
	FragFailures int   // failures with enough total but no contiguous space
	PeakLive     int64 // peak sum of live allocations
	PeakBlocked  int64 // peak memory unavailable due to deferred frees
	curLive      int64
	curBlocked   int64
}

type span struct{ off, size int64 }

// New returns an allocator managing capacity bytes.
func New(capacity int64) *Allocator {
	if capacity <= 0 {
		panic(fmt.Sprintf("alloc: capacity %d", capacity))
	}
	return &Allocator{
		capacity: capacity,
		free:     []span{{0, capacity}},
		live:     map[int]span{},
	}
}

// Alloc reserves size bytes and returns an allocation id. If no contiguous
// gap fits, it synchronizes (retiring deferred frees, counted as a flush)
// and retries; if that still fails the allocation errors (a true OOM).
func (a *Allocator) Alloc(size int64) (int, error) {
	if size <= 0 {
		return 0, fmt.Errorf("alloc: size %d", size)
	}
	id, ok := a.tryAlloc(size)
	if ok {
		return id, nil
	}
	// The failure is fragmentation (or blocked memory) if the bytes exist.
	if a.totalFree()+a.curBlocked >= size {
		a.FragFailures++
	}
	a.Flushes++
	a.Sync()
	a.coalesce()
	id, ok = a.tryAlloc(size)
	if !ok {
		return 0, fmt.Errorf("alloc: out of memory: %d bytes requested, %d free (largest gap %d)",
			size, a.totalFree(), a.largestGap())
	}
	return id, nil
}

// tryAlloc performs a best-fit search.
func (a *Allocator) tryAlloc(size int64) (int, bool) {
	best := -1
	for i, g := range a.free {
		if g.size >= size && (best < 0 || g.size < a.free[best].size) {
			best = i
		}
	}
	if best < 0 {
		return 0, false
	}
	g := a.free[best]
	a.nextID++
	id := a.nextID
	a.live[id] = span{g.off, size}
	if g.size == size {
		a.free = append(a.free[:best], a.free[best+1:]...)
	} else {
		a.free[best] = span{g.off + size, g.size - size}
	}
	a.curLive += size
	if a.curLive > a.PeakLive {
		a.PeakLive = a.curLive
	}
	return id, true
}

// Free releases an allocation. With inFlight true the memory stays blocked
// (a queued kernel still references it) until the next Sync.
func (a *Allocator) Free(id int, inFlight bool) error {
	s, ok := a.live[id]
	if !ok {
		return fmt.Errorf("alloc: free of unknown id %d", id)
	}
	if inFlight {
		a.deferred = append(a.deferred, id)
		a.curBlocked += s.size
		if a.curBlocked > a.PeakBlocked {
			a.PeakBlocked = a.curBlocked
		}
		return nil
	}
	a.release(id)
	return nil
}

// release returns an allocation's span to the free list.
func (a *Allocator) release(id int) {
	s := a.live[id]
	delete(a.live, id)
	a.curLive -= s.size
	a.free = append(a.free, s)
	a.coalesce()
}

// Sync retires all deferred frees (the device caught up with the queue).
// Frequent non-blocking synchronizations — the paper's fix — amount to
// calling this often enough that deferred memory never piles up.
func (a *Allocator) Sync() {
	for _, id := range a.deferred {
		a.curBlocked -= a.live[id].size
		a.release(id)
	}
	a.deferred = a.deferred[:0]
}

// coalesce merges adjacent free gaps.
func (a *Allocator) coalesce() {
	if len(a.free) < 2 {
		return
	}
	sort.Slice(a.free, func(i, j int) bool { return a.free[i].off < a.free[j].off })
	out := a.free[:1]
	for _, g := range a.free[1:] {
		last := &out[len(out)-1]
		if last.off+last.size == g.off {
			last.size += g.size
		} else {
			out = append(out, g)
		}
	}
	a.free = out
}

// totalFree returns the sum of free gaps.
func (a *Allocator) totalFree() int64 {
	var t int64
	for _, g := range a.free {
		t += g.size
	}
	return t
}

// largestGap returns the size of the largest free gap.
func (a *Allocator) largestGap() int64 {
	var m int64
	for _, g := range a.free {
		if g.size > m {
			m = g.size
		}
	}
	return m
}

// LiveBytes returns the current live allocation total.
func (a *Allocator) LiveBytes() int64 { return a.curLive }

// Fragmentation returns 1 - largestGap/totalFree, the paper's failure mode
// indicator (0 = one contiguous gap; near 1 = badly shattered).
func (a *Allocator) Fragmentation() float64 {
	t := a.totalFree()
	if t == 0 {
		return 0
	}
	return 1 - float64(a.largestGap())/float64(t)
}

// Workload drives the allocator through training steps that mirror
// Appendix D's memory behaviour.
type Workload struct {
	// Capacity is the device memory size.
	Capacity int64
	// StateBytes is the long-lived training state.
	StateBytes int64
	// ActivationBytes is the per-micro-batch transient allocation.
	ActivationBytes int64
	// MicroBatches per step; each allocates activations, runs, frees.
	MicroBatches int
	// Steps to run.
	Steps int
	// PreallocateState reserves the state once up front (the paper's
	// mitigation) instead of reallocating fractions of it every step.
	PreallocateState bool
	// SyncEvery inserts a synchronization after every N micro-batches
	// (0 = never; 1 = the paper's frequent-sync fix). Without syncs all
	// activation frees stay deferred until a flush forces them.
	SyncEvery int
}

// Stats summarizes a workload run.
type Stats struct {
	Flushes, FragFailures int
	PeakLive, PeakBlocked int64
	OOM                   bool
}

// Run executes the workload and returns the allocator statistics.
func (w Workload) Run() Stats {
	a := New(w.Capacity)
	var stateID int
	var stateParts []int
	if w.PreallocateState {
		id, err := a.Alloc(w.StateBytes)
		if err != nil {
			return Stats{OOM: true}
		}
		stateID = id
	}
	sinceSync := 0
	for step := 0; step < w.Steps; step++ {
		if !w.PreallocateState {
			// Dynamic state handling: reallocate the state in quarters
			// each step (gradient buffers, optimizer temporaries...),
			// interleaved with activations — the fragmentation driver.
			for _, id := range stateParts {
				if a.Free(id, true) != nil {
					return Stats{OOM: true}
				}
			}
			stateParts = stateParts[:0]
			for q := 0; q < 4; q++ {
				id, err := a.Alloc(w.StateBytes / 4)
				if err != nil {
					return stats(a, true)
				}
				stateParts = append(stateParts, id)
			}
		}
		for mb := 0; mb < w.MicroBatches; mb++ {
			id, err := a.Alloc(w.ActivationBytes)
			if err != nil {
				return stats(a, true)
			}
			// The kernels consuming this activation are queued; its free
			// is deferred until the device syncs.
			if a.Free(id, true) != nil {
				return stats(a, true)
			}
			sinceSync++
			if w.SyncEvery > 0 && sinceSync >= w.SyncEvery {
				a.Sync()
				sinceSync = 0
			}
		}
	}
	_ = stateID
	return stats(a, false)
}

func stats(a *Allocator, oom bool) Stats {
	return Stats{Flushes: a.Flushes, FragFailures: a.FragFailures,
		PeakLive: a.PeakLive, PeakBlocked: a.PeakBlocked, OOM: oom}
}
