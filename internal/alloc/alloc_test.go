package alloc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocFreeBasics(t *testing.T) {
	a := New(100)
	id1, err := a.Alloc(40)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := a.Alloc(60)
	if err != nil {
		t.Fatal(err)
	}
	if a.LiveBytes() != 100 {
		t.Errorf("live = %d, want 100", a.LiveBytes())
	}
	if _, err := a.Alloc(1); err == nil {
		t.Error("full arena should OOM")
	}
	if err := a.Free(id1, false); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(id2, false); err != nil {
		t.Fatal(err)
	}
	if a.LiveBytes() != 0 || a.totalFree() != 100 || a.largestGap() != 100 {
		t.Errorf("free list not coalesced: total %d, largest %d", a.totalFree(), a.largestGap())
	}
}

func TestFreeErrors(t *testing.T) {
	a := New(10)
	if err := a.Free(42, false); err == nil {
		t.Error("unknown id should fail")
	}
	if _, err := a.Alloc(0); err == nil {
		t.Error("zero-size alloc should fail")
	}
}

// Fragmentation: allocating then freeing every other block leaves plenty of
// total memory but no large gap — the paper's "unnecessary out-of-memory"
// scenario. The flush (full sync + coalesce) rescues it only if the
// neighbours are free too.
func TestFragmentationFailure(t *testing.T) {
	a := New(100)
	var ids []int
	for i := 0; i < 10; i++ {
		id, err := a.Alloc(10)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Free the even blocks: 50 bytes free, largest gap 10.
	for i := 0; i < 10; i += 2 {
		if err := a.Free(ids[i], false); err != nil {
			t.Fatal(err)
		}
	}
	if a.Fragmentation() < 0.5 {
		t.Errorf("fragmentation = %.2f, want >= 0.5", a.Fragmentation())
	}
	if _, err := a.Alloc(30); err == nil {
		t.Fatal("30-byte alloc should fail: largest gap is 10")
	}
	if a.FragFailures != 1 {
		t.Errorf("frag failures = %d, want 1", a.FragFailures)
	}
}

// Deferred frees block memory until a sync; the flush path reclaims them.
func TestDeferredFreesAndFlush(t *testing.T) {
	a := New(100)
	id1, _ := a.Alloc(60)
	if err := a.Free(id1, true); err != nil { // deferred: still blocked
		t.Fatal(err)
	}
	if a.PeakBlocked != 60 {
		t.Errorf("blocked = %d, want 60", a.PeakBlocked)
	}
	// 60 bytes are blocked, so an 80-byte alloc must flush first.
	if _, err := a.Alloc(80); err != nil {
		t.Fatalf("flush should rescue the allocation: %v", err)
	}
	if a.Flushes != 1 {
		t.Errorf("flushes = %d, want 1", a.Flushes)
	}
}

func TestSyncRetiresDeferred(t *testing.T) {
	a := New(100)
	id, _ := a.Alloc(50)
	if err := a.Free(id, true); err != nil {
		t.Fatal(err)
	}
	a.Sync()
	if a.LiveBytes() != 0 || a.totalFree() != 100 {
		t.Error("sync should retire deferred frees")
	}
	// A sync-retired allocation must not be double-freed by a flush.
	if _, err := a.Alloc(100); err != nil {
		t.Fatal(err)
	}
}

// Property: random alloc/free sequences keep the books consistent —
// live + free + blocked == capacity, and no overlapping live spans.
func TestAccountingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(1000)
		live := map[int]bool{}
		for op := 0; op < 200; op++ {
			if rng.Intn(2) == 0 {
				if id, err := a.Alloc(int64(rng.Intn(100) + 1)); err == nil {
					live[id] = true
				}
			} else if len(live) > 0 {
				for id := range live {
					a.Free(id, rng.Intn(3) == 0)
					delete(live, id)
					break
				}
			}
			if rng.Intn(10) == 0 {
				a.Sync()
			}
		}
		a.Sync()
		// All frees processed: free total + live == capacity.
		return a.totalFree()+a.LiveBytes() == 1000 && !spansOverlap(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func spansOverlap(a *Allocator) bool {
	type iv struct{ lo, hi int64 }
	var ivs []iv
	for _, s := range a.live {
		ivs = append(ivs, iv{s.off, s.off + s.size})
	}
	for _, g := range a.free {
		ivs = append(ivs, iv{g.off, g.off + g.size})
	}
	seen := make(map[int64]bool)
	for _, v := range ivs {
		for x := v.lo; x < v.hi; x++ {
			if seen[x] {
				return true
			}
			seen[x] = true
		}
	}
	return false
}

// The paper's first mitigation: pre-allocating the training state reduces
// fragmentation failures versus reallocating it dynamically each step.
func TestPreallocationReducesFragmentation(t *testing.T) {
	base := Workload{
		Capacity:        1000,
		StateBytes:      600,
		ActivationBytes: 90,
		MicroBatches:    8,
		Steps:           30,
		SyncEvery:       1,
	}
	dynamic := base
	dynamic.PreallocateState = false
	prealloc := base
	prealloc.PreallocateState = true
	sDyn := dynamic.Run()
	sPre := prealloc.Run()
	if sPre.OOM {
		t.Fatal("preallocated workload should not OOM")
	}
	if sDyn.FragFailures+sDyn.Flushes <= sPre.FragFailures+sPre.Flushes {
		t.Errorf("dynamic state should fragment more: dyn=%+v pre=%+v", sDyn, sPre)
	}
}

// The paper's second mitigation: frequent synchronization bounds the
// deferred-free pile-up and eliminates the allocator flushes.
func TestFrequentSyncPreventsFlushes(t *testing.T) {
	base := Workload{
		Capacity:         1000,
		StateBytes:       400,
		ActivationBytes:  150,
		MicroBatches:     16,
		Steps:            10,
		PreallocateState: true,
	}
	never := base // SyncEvery = 0: frees pile up until flushes rescue
	often := base
	often.SyncEvery = 1
	sNever := never.Run()
	sOften := often.Run()
	if sOften.OOM || sNever.OOM {
		t.Fatalf("workloads should survive: never=%+v often=%+v", sNever, sOften)
	}
	if sOften.Flushes != 0 {
		t.Errorf("frequent sync should avoid flushes, got %d", sOften.Flushes)
	}
	if sNever.Flushes == 0 {
		t.Error("without syncs the allocator should be forced to flush")
	}
	if sNever.PeakBlocked <= sOften.PeakBlocked {
		t.Errorf("deferred frees should pile up without syncs: %d vs %d",
			sNever.PeakBlocked, sOften.PeakBlocked)
	}
}
