package runtime

import (
	"fmt"

	"bfpp/internal/tensor"
)

// SupervisorConfig tunes the recovery layer.
type SupervisorConfig struct {
	// CheckpointEvery takes a weight/optimizer checkpoint after every K
	// successful steps (default 1). Larger K means cheaper steady-state but
	// more replay work per recovery.
	CheckpointEvery int
	// MaxRecoveries bounds the restore-and-retry attempts within one Step
	// call before the fault is reported to the caller (default 3).
	MaxRecoveries int
}

// Supervisor wraps a Trainer with deterministic fault recovery: it
// checkpoints the full parameter and optimizer state every K steps, records
// the batches (and their losses) since the checkpoint, and on a device
// fault restores the checkpoint and replays — verifying each replayed step
// reproduces its recorded loss bit for bit before retrying the faulted
// batch. Because the trainer is deterministic, a supervised run's loss
// trajectory and final weights are identical to the fault-free run for any
// fault schedule the recovery budget covers.
//
// A Supervisor drives its Trainer exclusively: do not interleave direct
// Trainer.Step calls.
type Supervisor struct {
	tr  *Trainer
	cfg SupervisorConfig

	ckpt   checkpoint
	replay []replayRec

	recoveries int
	replayed   int
}

type replayRec struct {
	inputs, targets tensor.Matrix
	loss            float64
}

type checkpoint struct {
	step int
	dev  [][]deviceState // [pp][dp]
}

// deviceState is the durable slice of a device: parameters (or master
// shards) and Adam moments. Gradient accumulators and activation
// checkpoints are per-step transient state and are reset, not restored.
type deviceState struct {
	params, shard, adamM, adamV [][]float64
}

// NewSupervisor wraps tr, taking the initial checkpoint immediately.
func NewSupervisor(tr *Trainer, cfg SupervisorConfig) *Supervisor {
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 1
	}
	if cfg.MaxRecoveries <= 0 {
		cfg.MaxRecoveries = 3
	}
	sv := &Supervisor{tr: tr, cfg: cfg}
	sv.checkpointNow()
	return sv
}

// Trainer returns the wrapped trainer (for Weights, CaptureGrads, ...).
func (sv *Supervisor) Trainer() *Trainer { return sv.tr }

// Recoveries reports how many checkpoint restores have run.
func (sv *Supervisor) Recoveries() int { return sv.recoveries }

// Replayed reports how many recorded steps have been re-executed during
// recoveries.
func (sv *Supervisor) Replayed() int { return sv.replayed }

// Step runs one training batch with recovery: on a device fault it
// restores the last checkpoint, replays the intervening steps and retries,
// up to MaxRecoveries times.
func (sv *Supervisor) Step(inputs, targets tensor.Matrix) (float64, error) {
	loss, err := sv.tr.Step(inputs, targets)
	for attempt := 0; err != nil; {
		attempt++
		if attempt > sv.cfg.MaxRecoveries {
			return 0, fmt.Errorf("runtime: recovery budget (%d) exhausted: %w",
				sv.cfg.MaxRecoveries, err)
		}
		sv.recoveries++
		sv.restore()
		if err = sv.replayAll(); err != nil {
			continue // a fault during replay: restore again
		}
		loss, err = sv.tr.Step(inputs, targets)
	}
	sv.replay = append(sv.replay, replayRec{
		inputs:  inputs.Clone(),
		targets: targets.Clone(),
		loss:    loss,
	})
	if len(sv.replay) >= sv.cfg.CheckpointEvery {
		sv.checkpointNow()
	}
	return loss, nil
}

func (sv *Supervisor) checkpointNow() {
	tr := sv.tr
	ck := checkpoint{step: tr.step, dev: make([][]deviceState, len(tr.devices))}
	for pp := range tr.devices {
		ck.dev[pp] = make([]deviceState, len(tr.devices[pp]))
		for dp, d := range tr.devices[pp] {
			ck.dev[pp][dp] = deviceState{
				params: copyVecs(d.params),
				shard:  copyVecs(d.shard),
				adamM:  copyVecs(d.adamM),
				adamV:  copyVecs(d.adamV),
			}
		}
	}
	sv.ckpt = ck
	sv.replay = sv.replay[:0]
}

// restore rewinds the trainer to the last checkpoint: durable state from
// the saved copies, transient state reset, step counter rolled back (the
// Adam bias correction depends on it, so this is what makes the replay
// bit-identical).
func (sv *Supervisor) restore() {
	tr := sv.tr
	tr.resetAfterFault()
	for pp := range tr.devices {
		for dp, d := range tr.devices[pp] {
			st := sv.ckpt.dev[pp][dp]
			restoreVecs(d.params, st.params)
			restoreVecs(d.shard, st.shard)
			restoreVecs(d.adamM, st.adamM)
			restoreVecs(d.adamV, st.adamV)
		}
	}
	tr.step = sv.ckpt.step
}

// replayAll re-runs the recorded steps since the checkpoint, verifying
// each reproduces its recorded loss exactly.
func (sv *Supervisor) replayAll() error {
	for i := range sv.replay {
		rec := &sv.replay[i]
		loss, err := sv.tr.Step(rec.inputs, rec.targets)
		if err != nil {
			return err
		}
		sv.replayed++
		if loss != rec.loss {
			return fmt.Errorf("runtime: replay diverged at step %d: loss %v, recorded %v",
				sv.tr.step, loss, rec.loss)
		}
	}
	return nil
}

func copyVecs(src [][]float64) [][]float64 {
	out := make([][]float64, len(src))
	for i, v := range src {
		if v != nil {
			out[i] = append([]float64(nil), v...)
		}
	}
	return out
}

func restoreVecs(dst, src [][]float64) {
	for i := range dst {
		if dst[i] != nil && src[i] != nil {
			copy(dst[i], src[i])
		}
	}
}
