package runtime

import (
	"errors"
	"fmt"
	"math"
	"time"

	"bfpp/internal/collective"
	"bfpp/internal/core"
	"bfpp/internal/fault"
	"bfpp/internal/schedule"
	"bfpp/internal/tensor"
)

// actKey identifies a checkpointed stage input.
type actKey struct{ stage, micro int }

// device is one simulated GPU: a pipeline rank within a data-parallel
// replica, holding its stages' parameters, gradients and optimizer state.
type device struct {
	tr     *Trainer
	pp, dp int

	// Per global stage (nil when not owned by this pipeline rank).
	params    [][]float64 // full parameters (DP-FS: reconstructed scratch)
	grads     [][]float64 // dense gradient accumulators
	gradShard [][]float64 // reduced shard accumulators (sharded modes)
	shard     [][]float64 // master shard (DP-FS source of truth)
	adamM     [][]float64
	adamV     [][]float64

	saved    map[actKey]tensor.Matrix // checkpointed stage inputs
	outs     map[int]tensor.Matrix    // last-stage outputs per micro-batch
	captured [][]float64              // reduced gradients kept for inspection
	loss     float64
	err      error
}

func newDevice(tr *Trainer, pp, dp int) *device {
	d := &device{
		tr: tr, pp: pp, dp: dp,
		params:    make([][]float64, tr.nStages),
		grads:     make([][]float64, tr.nStages),
		gradShard: make([][]float64, tr.nStages),
		shard:     make([][]float64, tr.nStages),
		adamM:     make([][]float64, tr.nStages),
		adamV:     make([][]float64, tr.nStages),
		saved:     make(map[actKey]tensor.Matrix),
		outs:      make(map[int]tensor.Matrix),
		captured:  make([][]float64, tr.nStages),
	}
	g := tr.dpGroups[pp]
	for _, s := range tr.stagesOf(pp) {
		vec := tr.stageParamVec(s)
		size := len(vec)
		d.grads[s] = make([]float64, size)
		lo, hi := g.ShardBounds(size, dp)
		switch tr.plan.Sharding {
		case core.DP0:
			d.params[s] = vec
			d.adamM[s] = make([]float64, size)
			d.adamV[s] = make([]float64, size)
		case core.DPPS:
			d.params[s] = vec
			d.gradShard[s] = make([]float64, hi-lo)
			d.adamM[s] = make([]float64, hi-lo)
			d.adamV[s] = make([]float64, hi-lo)
		case core.DPFS:
			d.shard[s] = append([]float64(nil), vec[lo:hi]...)
			d.params[s] = make([]float64, size) // scratch, filled by Restore
			d.gradShard[s] = make([]float64, hi-lo)
			d.adamM[s] = make([]float64, hi-lo)
			d.adamV[s] = make([]float64, hi-lo)
		}
	}
	return d
}

// stagesOf lists the global stages hosted by a pipeline rank; the
// no-pipeline methods host every stage on their single device.
func (tr *Trainer) stagesOf(pp int) []int {
	if !tr.plan.Method.Pipelined() {
		out := make([]int, tr.nStages)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return tr.plan.DeviceStages(pp)
}

// runProgram executes this device's schedule program for one batch.
func (d *device) runProgram(inputs, targets tensor.Matrix,
	fwd, bwd [][][]chan tensor.Matrix, st *stepState) {
	d.err = nil
	defer func() {
		if r := recover(); r != nil {
			if err, ok := r.(error); ok &&
				(errors.Is(err, errStepAborted) || errors.Is(err, collective.ErrAborted)) {
				d.err = errStepAborted
				return
			}
			d.err = fmt.Errorf("runtime: device pp=%d dp=%d: %v", d.pp, d.dp, r)
			// Unblock every peer: lattice waiters via the step's abort
			// channel, collective waiters by poisoning the groups.
			st.trip()
			for _, g := range d.tr.dpGroups {
				g.Abort()
			}
		}
	}()
	tr := d.tr
	prog := tr.sched.Devices[d.pp]
	for opIdx, op := range prog {
		if inj := tr.inj; inj != nil {
			if f, ok := inj.At(fault.DeviceOp, tr.step, d.pp, d.dp, opIdx); ok {
				switch f.Kind {
				case fault.Panic:
					panic(fmt.Sprintf("injected device fault (step %d op %d)", tr.step, opIdx))
				case fault.Delay:
					time.Sleep(f.Sleep)
				}
			}
		}
		switch op.Kind {
		case schedule.Forward:
			d.forward(op.Stage, op.Micro, inputs, fwd, st)
		case schedule.Backward:
			d.backward(op.Stage, op.Micro, targets, fwd, bwd, st)
		case schedule.Restore:
			d.restore(op.Stage)
		case schedule.Reduce:
			d.reduce(op.Stage, op.Micro)
		case schedule.Optimize:
			d.optimize()
		}
	}
}

// resetTransient clears everything a failed step can leave behind on the
// device: the error, partial loss, checkpointed activations, pipeline
// outputs, and gradient accumulators. Parameters and optimizer state are
// deliberately untouched (the Supervisor owns those).
func (d *device) resetTransient() {
	d.err = nil
	d.loss = 0
	d.saved = make(map[actKey]tensor.Matrix)
	d.outs = make(map[int]tensor.Matrix)
	for _, g := range d.grads {
		for i := range g {
			g[i] = 0
		}
	}
	for _, g := range d.gradShard {
		for i := range g {
			g[i] = 0
		}
	}
}

// microRows returns the input rows of (dp, micro).
func (d *device) microRows(m tensor.Matrix, micro int) tensor.Matrix {
	per := d.tr.plan.MicroBatch
	base := d.dp*d.tr.plan.NumMicro*per + micro*per
	return m.RowSlice(base, base+per)
}

// layerViews returns matrix views over one layer's slice of a stage
// parameter (or gradient) vector.
type layerViews struct {
	w1, w2 tensor.Matrix
	b1, b2 []float64
}

func (d *device) views(vec []float64, localLayer int) layerViews {
	c := d.tr.cfg
	off := localLayer * c.layerParams()
	v := layerViews{}
	v.w1 = tensor.FromData(c.Dim, c.Hidden, vec[off:off+c.Dim*c.Hidden])
	off += c.Dim * c.Hidden
	v.b1 = vec[off : off+c.Hidden]
	off += c.Hidden
	v.w2 = tensor.FromData(c.Hidden, c.Dim, vec[off:off+c.Hidden*c.Dim])
	off += c.Hidden * c.Dim
	v.b2 = vec[off : off+c.Dim]
	return v
}

// blockForward runs one residual MLP block, returning the output and the
// intermediates needed for its backward pass.
func blockForward(x tensor.Matrix, v layerViews) (y, z1, h tensor.Matrix) {
	z1 = tensor.MatMul(x, v.w1)
	tensor.AddBias(z1, v.b1)
	h = tensor.GELU(z1)
	y = tensor.MatMul(h, v.w2)
	tensor.AddBias(y, v.b2)
	tensor.AddInto(y, x) // residual
	return y, z1, h
}

// forward executes Forward(stage, micro): consume the stage input, run the
// stage's layers, and pass the output on.
func (d *device) forward(stage, micro int, inputs tensor.Matrix, fwd [][][]chan tensor.Matrix, st *stepState) {
	tr := d.tr
	var x tensor.Matrix
	if stage == 0 {
		x = d.microRows(inputs, micro).Clone()
	} else {
		x = st.recv(fwd[d.dp][stage][micro])
	}
	d.saved[actKey{stage, micro}] = x.Clone() // activation checkpoint
	for l := 0; l < tr.perStg; l++ {
		x, _, _ = blockForward(x, d.views(d.params[stage], l))
	}
	if stage == tr.nStages-1 {
		d.outs[micro] = x
	} else {
		d.injectSendStall(stage, micro)
		st.send(fwd[d.dp][stage+1][micro], x)
	}
}

// injectSendStall consults the injector at the ChannelSend point (a
// stalled interconnect) before an activation or gradient transfer.
func (d *device) injectSendStall(stage, micro int) {
	if inj := d.tr.inj; inj != nil {
		if f, ok := inj.At(fault.ChannelSend, d.tr.step, stage, micro, d.dp); ok && f.Kind == fault.Delay {
			time.Sleep(f.Sleep)
		}
	}
}

// backward executes Backward(stage, micro): recompute the stage forward
// from the checkpoint, backpropagate, accumulate weight gradients, and
// pass the input gradient upstream.
func (d *device) backward(stage, micro int, targets tensor.Matrix,
	fwd, bwd [][][]chan tensor.Matrix, st *stepState) {
	tr := d.tr
	x0, ok := d.saved[actKey{stage, micro}]
	if !ok {
		panic(fmt.Sprintf("backward before forward for stage %d micro %d", stage, micro))
	}
	delete(d.saved, actKey{stage, micro})

	// Recompute the stage forward (activation checkpointing).
	xs := make([]tensor.Matrix, tr.perStg)
	z1s := make([]tensor.Matrix, tr.perStg)
	hs := make([]tensor.Matrix, tr.perStg)
	x := x0
	for l := 0; l < tr.perStg; l++ {
		xs[l] = x
		x, z1s[l], hs[l] = blockForward(x, d.views(d.params[stage], l))
	}

	// Loss gradient at the pipeline output, or the downstream gradient.
	var dy tensor.Matrix
	if stage == tr.nStages-1 {
		out, ok := d.outs[micro]
		if !ok {
			panic(fmt.Sprintf("missing output for micro %d", micro))
		}
		delete(d.outs, micro)
		tgt := d.microRows(targets, micro)
		scale := 1 / float64(tr.plan.BatchSize()*tr.cfg.Dim)
		dy = tensor.New(out.Rows, out.Cols)
		for i := range out.Data {
			diff := out.Data[i] - tgt.Data[i]
			d.loss += 0.5 * diff * diff * scale
			dy.Data[i] = diff * scale
		}
	} else {
		dy = st.recv(bwd[d.dp][stage][micro])
	}

	// Backpropagate through the stage's layers in reverse.
	for l := tr.perStg - 1; l >= 0; l-- {
		v := d.views(d.params[stage], l)
		g := d.views(d.grads[stage], l)
		// y = x + W2*gelu(W1*x + b1) + b2
		tensor.BiasGradInto(g.b2, dy)
		tensor.MatMulTransAInto(g.w2, hs[l], dy)
		dh := tensor.MatMulTransB(dy, v.w2)
		dz1 := tensor.GELUBackward(dh, z1s[l])
		tensor.BiasGradInto(g.b1, dz1)
		tensor.MatMulTransAInto(g.w1, xs[l], dz1)
		dx := tensor.MatMulTransB(dz1, v.w1)
		tensor.AddInto(dx, dy) // residual path
		dy = dx
	}
	if stage > 0 {
		d.injectSendStall(stage, micro)
		st.send(bwd[d.dp][stage-1][micro], dy)
	}
}

// restore reconstructs a stage's full parameters from the data-parallel
// shards (DP-FS weight all-gather).
func (d *device) restore(stage int) {
	g := d.tr.dpGroups[d.pp]
	size := len(d.params[stage])
	lo, hi := g.ShardBounds(size, d.dp)
	copy(d.params[stage][lo:hi], d.shard[stage])
	g.AllGather(d.dp, d.params[stage])
}

// reduce runs the gradient reduction for a stage: an all-reduce under DP0,
// a reduce-scatter (accumulated into the shard gradient) under DP-PS and
// DP-FS. A per-micro-batch reduction (micro >= 0) clears the dense buffer
// so the next micro-batch accumulates from zero.
func (d *device) reduce(stage, micro int) {
	g := d.tr.dpGroups[d.pp]
	switch d.tr.plan.Sharding {
	case core.DP0:
		g.AllReduce(d.dp, d.grads[stage])
	default:
		shard := g.ReduceScatter(d.dp, d.grads[stage])
		acc := d.gradShard[stage]
		for i, v := range shard {
			acc[i] += v
		}
		for i := range d.grads[stage] {
			d.grads[stage][i] = 0
		}
	}
	_ = micro
}

// optimize applies one Adam step to the device's (shard of the) state and
// refreshes replicated parameters as the sharding mode requires.
func (d *device) optimize() {
	tr := d.tr
	g := tr.dpGroups[d.pp]
	t := float64(tr.step)
	c1 := 1 - math.Pow(tr.adam.Beta1, t)
	c2 := 1 - math.Pow(tr.adam.Beta2, t)
	adam := func(p, grad, m, v []float64) {
		for i := range p {
			m[i] = tr.adam.Beta1*m[i] + (1-tr.adam.Beta1)*grad[i]
			v[i] = tr.adam.Beta2*v[i] + (1-tr.adam.Beta2)*grad[i]*grad[i]
			mh := m[i] / c1
			vh := v[i] / c2
			p[i] -= tr.adam.LR * mh / (math.Sqrt(vh) + tr.adam.Eps)
		}
	}
	for s := 0; s < tr.nStages; s++ {
		if d.grads[s] == nil {
			continue // not owned
		}
		if tr.CaptureGrads {
			src := d.grads[s]
			if tr.plan.Sharding != core.DP0 {
				src = d.gradShard[s]
			}
			d.captured[s] = append([]float64(nil), src...)
		}
		switch tr.plan.Sharding {
		case core.DP0:
			adam(d.params[s], d.grads[s], d.adamM[s], d.adamV[s])
			for i := range d.grads[s] {
				d.grads[s][i] = 0
			}
		case core.DPPS:
			lo, hi := g.ShardBounds(len(d.params[s]), d.dp)
			adam(d.params[s][lo:hi], d.gradShard[s], d.adamM[s], d.adamV[s])
			g.AllGather(d.dp, d.params[s])
			for i := range d.gradShard[s] {
				d.gradShard[s][i] = 0
			}
		case core.DPFS:
			adam(d.shard[s], d.gradShard[s], d.adamM[s], d.adamV[s])
			for i := range d.gradShard[s] {
				d.gradShard[s][i] = 0
			}
		}
	}
}
