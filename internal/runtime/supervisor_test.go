package runtime

import (
	"strings"
	"testing"
	"time"

	"bfpp/internal/core"
	"bfpp/internal/fault"
	"bfpp/internal/tensor"
)

// chaosPlan exercises everything a fault can strand: a pipeline lattice
// (PP=2, breadth-first loops), a data-parallel group (DP=2) and sharded
// optimizer state (DP-FS collectives in the critical path).
func chaosPlan() core.Plan {
	return planFor(core.BreadthFirst, 2, 2, 4, 2, core.DPFS)
}

// faultFreeRun records the reference trajectory: per-step losses and final
// weights of an uninjected trainer.
func faultFreeRun(t *testing.T, p core.Plan, steps int) ([]float64, []float64) {
	t.Helper()
	tr, err := NewTrainer(cfg4(), p, DefaultAdam())
	if err != nil {
		t.Fatal(err)
	}
	losses := make([]float64, steps)
	for i := 0; i < steps; i++ {
		in, tgt := batchFor(p, cfg4().Dim, int64(100+i))
		if losses[i], err = tr.Step(in, tgt); err != nil {
			t.Fatalf("fault-free step %d: %v", i, err)
		}
	}
	return losses, tr.Weights()
}

// TestFaultMidStepAbortsAndDrains is the stranded-activation regression: a
// device panicking early in its program used to leave peers blocked on
// lattice channels or inside collectives forever (Step never returned) and
// buffered activations stranded. Now the step tears down, Step reports the
// originating fault, and a bare retry of the same batch is bit-identical
// to the fault-free run.
func TestFaultMidStepAbortsAndDrains(t *testing.T) {
	p := chaosPlan()
	ref, _ := faultFreeRun(t, p, 1)

	tr, err := NewTrainer(cfg4(), p, DefaultAdam())
	if err != nil {
		t.Fatal(err)
	}
	// Panic on device pp=1 before its third op of step 1: stage-0 forwards
	// are already buffered in the lattice and every peer ends up blocked.
	script := fault.NewScript(fault.Rule{
		Point: fault.DeviceOp, Coords: []int{1, 1, 0, 2},
		Fault: fault.Fault{Kind: fault.Panic},
	})
	tr.SetInjector(script)

	in, tgt := batchFor(p, cfg4().Dim, 100)
	_, err = tr.Step(in, tgt)
	if err == nil || !strings.Contains(err.Error(), "injected device fault") {
		t.Fatalf("Step error = %v, want the injected fault", err)
	}
	if got := script.Fired(); got != 1 {
		t.Fatalf("script fired %d times, want 1", got)
	}
	if tr.step != 0 {
		t.Fatalf("step counter = %d after failed step, want 0 (rolled back)", tr.step)
	}
	for _, lat := range [][][][]chan tensor.Matrix{tr.fwd, tr.bwd} {
		for dp := range lat {
			for s := range lat[dp] {
				for mb, ch := range lat[dp][s] {
					if n := len(ch); n != 0 {
						t.Fatalf("channel [dp %d][stage %d][micro %d] holds %d stranded tensors",
							dp, s, mb, n)
					}
				}
			}
		}
	}
	// The retry must see no trace of the failed attempt.
	loss, err := tr.Step(in, tgt)
	if err != nil {
		t.Fatalf("retry after fault: %v", err)
	}
	if loss != ref[0] {
		t.Fatalf("retry loss %v != fault-free loss %v", loss, ref[0])
	}
}

// TestSupervisorRecoversBitIdentical pins supervised recovery end to end:
// scripted faults at several steps (one landing after a checkpoint so the
// replay path runs), plus delay faults to perturb goroutine scheduling,
// and the loss trajectory and final weights still match the fault-free run
// exactly.
func TestSupervisorRecoversBitIdentical(t *testing.T) {
	const steps = 6
	p := chaosPlan()
	wantLoss, wantW := faultFreeRun(t, p, steps)

	tr, err := NewTrainer(cfg4(), p, DefaultAdam())
	if err != nil {
		t.Fatal(err)
	}
	tr.SetInjector(fault.NewScript(
		fault.Rule{Point: fault.DeviceOp, Coords: []int{2, 0, 0, 1},
			Fault: fault.Fault{Kind: fault.Panic}},
		fault.Rule{Point: fault.DeviceOp, Coords: []int{5, 1, 1, 4},
			Fault: fault.Fault{Kind: fault.Panic}},
		fault.Rule{Point: fault.ChannelSend, Coords: []int{3},
			Fault: fault.Fault{Kind: fault.Delay, Sleep: 200 * time.Microsecond}},
		fault.Rule{Point: fault.DeviceOp, Coords: []int{4},
			Fault: fault.Fault{Kind: fault.Delay, Sleep: 200 * time.Microsecond}},
	))
	sv := NewSupervisor(tr, SupervisorConfig{CheckpointEvery: 2})
	for i := 0; i < steps; i++ {
		in, tgt := batchFor(p, cfg4().Dim, int64(100+i))
		loss, err := sv.Step(in, tgt)
		if err != nil {
			t.Fatalf("supervised step %d: %v", i, err)
		}
		if loss != wantLoss[i] {
			t.Fatalf("step %d: supervised loss %v != fault-free %v (recoveries %d)",
				i, loss, wantLoss[i], sv.Recoveries())
		}
	}
	if sv.Recoveries() < 2 {
		t.Fatalf("recoveries = %d, want >= 2 (both panics must have fired)", sv.Recoveries())
	}
	gotW := sv.Trainer().Weights()
	for i := range wantW {
		if gotW[i] != wantW[i] {
			t.Fatalf("weight %d: supervised %v != fault-free %v", i, gotW[i], wantW[i])
		}
	}
}

// TestChaosSeededTrajectory is the chaos property at the trainer level:
// under ANY seeded fault schedule (panics and stalls at hash-chosen sites),
// the supervised loss trajectory and final weights are bit-identical to the
// fault-free run.
func TestChaosSeededTrajectory(t *testing.T) {
	const steps = 5
	p := chaosPlan()
	wantLoss, wantW := faultFreeRun(t, p, steps)

	totalRecoveries := 0
	for seed := int64(1); seed <= 4; seed++ {
		tr, err := NewTrainer(cfg4(), p, DefaultAdam())
		if err != nil {
			t.Fatal(err)
		}
		tr.SetInjector(fault.NewSeeded(seed).
			Rate(fault.DeviceOp, 0.02, fault.Fault{Kind: fault.Panic}).
			Rate(fault.ChannelSend, 0.05, fault.Fault{Kind: fault.Delay, Sleep: 100 * time.Microsecond}))
		sv := NewSupervisor(tr, SupervisorConfig{CheckpointEvery: 3, MaxRecoveries: 16})
		for i := 0; i < steps; i++ {
			in, tgt := batchFor(p, cfg4().Dim, int64(100+i))
			loss, err := sv.Step(in, tgt)
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, i, err)
			}
			if loss != wantLoss[i] {
				t.Fatalf("seed %d step %d: loss %v != fault-free %v", seed, i, loss, wantLoss[i])
			}
		}
		gotW := sv.Trainer().Weights()
		for i := range wantW {
			if gotW[i] != wantW[i] {
				t.Fatalf("seed %d: weight %d diverged", seed, i)
			}
		}
		totalRecoveries += sv.Recoveries()
	}
	if totalRecoveries == 0 {
		t.Fatal("no seed injected any fault; the chaos rates are degenerate")
	}
}

// TestSupervisorBudgetExhausted: a persistent fault (arrival budget far
// beyond the recovery budget) must surface as an error, not an infinite
// retry loop.
func TestSupervisorBudgetExhausted(t *testing.T) {
	p := chaosPlan()
	tr, err := NewTrainer(cfg4(), p, DefaultAdam())
	if err != nil {
		t.Fatal(err)
	}
	tr.SetInjector(fault.NewScript(fault.Rule{
		Point: fault.DeviceOp, Coords: []int{1, 0, 0, 0}, Times: 100,
		Fault: fault.Fault{Kind: fault.Panic},
	}))
	sv := NewSupervisor(tr, SupervisorConfig{MaxRecoveries: 2})
	in, tgt := batchFor(p, cfg4().Dim, 100)
	_, err = sv.Step(in, tgt)
	if err == nil || !strings.Contains(err.Error(), "recovery budget") {
		t.Fatalf("err = %v, want recovery budget exhaustion", err)
	}
	if sv.Recoveries() != 2 {
		t.Fatalf("recoveries = %d, want exactly the budget (2)", sv.Recoveries())
	}
}
