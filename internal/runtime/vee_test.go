package runtime

import (
	"math"
	"testing"

	"bfpp/internal/core"
	"bfpp/internal/tensor"
)

// The zigzag "V" placement must compute the same optimization steps as the
// wrap placement (ROADMAP open item): the V-schedule runs end-to-end
// through the goroutine runtime — device 0 hosting both the first and the
// last stage, the apex staying on-device — and its losses and post-Adam
// weights match a wrap-placed looping schedule bit-for-bit-tolerance-wise.
func TestVeePlacementEquivalent(t *testing.T) {
	wrap := planFor(core.BreadthFirst, 2, 2, 4, 2, core.DP0)
	cases := []core.Plan{
		planFor(core.VSchedule, 2, 2, 4, 2, core.DP0),
		// Explicit in-flight cap at the deadlock floor: the capped program
		// is a different op order but the same optimization step.
		{Method: core.VSchedule, DP: 2, PP: 2, TP: 1, MicroBatch: 2,
			NumMicro: 4, Loops: 2, Sequence: 2, OverlapDP: true, OverlapPP: true},
		// Single-replica vee with a deeper looping.
		{Method: core.VSchedule, DP: 1, PP: 2, TP: 1, MicroBatch: 2,
			NumMicro: 4, Loops: 2, OverlapDP: true, OverlapPP: true},
	}
	refLoss, refW := stepOnce(t, wrap, 13)
	for _, p := range cases {
		if p.DP == 1 {
			// A different DP width: compare against the matching wrap plan.
			refLoss, refW = stepOnce(t, planFor(core.BreadthFirst, 1, 2, 4, 2, core.DP0), 13)
		}
		loss, w := stepOnce(t, p, 13)
		if math.Abs(loss-refLoss)/refLoss > 1e-12 {
			t.Errorf("%v: loss %v != wrap reference %v", p, loss, refLoss)
		}
		if d := tensor.MaxAbsDiffSlice(w, refW); d > 1e-12 {
			t.Errorf("%v: weights differ from wrap placement by %v", p, d)
		}
	}
}

// Loss-step equivalence over a multi-step trajectory: vee and wrap
// placements track each other step for step, not just on the first batch.
func TestVeePlacementLossTrajectory(t *testing.T) {
	mk := func(m core.Method) *Trainer {
		p := planFor(m, 2, 2, 4, 2, core.DP0)
		tr, err := NewTrainer(cfg4(), p, DefaultAdam())
		if err != nil {
			t.Fatalf("NewTrainer(%v): %v", p, err)
		}
		return tr
	}
	vee := mk(core.VSchedule)
	wrap := mk(core.BreadthFirst)
	in, tgt := batchFor(vee.Plan(), cfg4().Dim, 17)
	var first, last float64
	for step := 0; step < 4; step++ {
		lv, err := vee.Step(in, tgt)
		if err != nil {
			t.Fatalf("vee step %d: %v", step, err)
		}
		lw, err := wrap.Step(in, tgt)
		if err != nil {
			t.Fatalf("wrap step %d: %v", step, err)
		}
		if math.Abs(lv-lw)/lw > 1e-12 {
			t.Errorf("step %d: vee loss %v != wrap loss %v", step, lv, lw)
		}
		if step == 0 {
			first = lv
		}
		last = lv
	}
	if last >= first {
		t.Errorf("vee training loss did not decrease: %v -> %v", first, last)
	}
	if d := tensor.MaxAbsDiffSlice(vee.Weights(), wrap.Weights()); d > 1e-12 {
		t.Errorf("after 4 steps vee weights differ from wrap by %v", d)
	}
}
