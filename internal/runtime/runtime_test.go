package runtime

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"bfpp/internal/core"
	"bfpp/internal/tensor"
)

func cfg4() NetConfig { return NetConfig{Layers: 4, Dim: 6, Hidden: 10, Seed: 11} }

func batchFor(p core.Plan, dim int, seed int64) (tensor.Matrix, tensor.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	rows := p.BatchSize()
	in := tensor.New(rows, dim)
	tgt := tensor.New(rows, dim)
	in.RandInit(rng, 1)
	tgt.RandInit(rng, 1)
	return in, tgt
}

func planFor(m core.Method, dp, pp, nmb, loops int, sh core.Sharding) core.Plan {
	return core.Plan{Method: m, DP: dp, PP: pp, TP: 1, MicroBatch: 2,
		NumMicro: nmb, Loops: loops, Sharding: sh, OverlapDP: true, OverlapPP: true}
}

func stepOnce(t *testing.T, p core.Plan, seed int64) (float64, []float64) {
	t.Helper()
	tr, err := NewTrainer(cfg4(), p, DefaultAdam())
	if err != nil {
		t.Fatalf("NewTrainer(%v): %v", p, err)
	}
	in, tgt := batchFor(p, cfg4().Dim, seed)
	loss, err := tr.Step(in, tgt)
	if err != nil {
		t.Fatalf("Step(%v): %v", p, err)
	}
	return loss, tr.Weights()
}

// The paper's premise: every schedule computes the same optimization step.
// All four pipeline schedules plus the no-pipeline accumulations must yield
// identical losses and post-Adam weights.
func TestAllSchedulesEquivalent(t *testing.T) {
	ref, refW := stepOnce(t, planFor(core.NoPipelineDF, 1, 1, 4, 1, core.DP0), 3)
	cases := []core.Plan{
		planFor(core.NoPipelineBF, 1, 1, 4, 4, core.DP0),
		planFor(core.GPipe, 1, 4, 4, 1, core.DP0),
		planFor(core.OneFOneB, 1, 4, 4, 1, core.DP0),
		planFor(core.DepthFirst, 1, 2, 4, 2, core.DP0),
		planFor(core.BreadthFirst, 1, 2, 4, 2, core.DP0),
		planFor(core.BreadthFirst, 1, 4, 4, 1, core.DP0),
		{Method: core.Hybrid, DP: 1, PP: 2, TP: 1, MicroBatch: 2,
			NumMicro: 4, Loops: 2, Sequence: 4, OverlapDP: true, OverlapPP: true},
	}
	for _, p := range cases {
		loss, w := stepOnce(t, p, 3)
		if math.Abs(loss-ref)/ref > 1e-12 {
			t.Errorf("%v: loss %v != reference %v", p, loss, ref)
		}
		if d := tensor.MaxAbsDiffSlice(w, refW); d > 1e-12 {
			t.Errorf("%v: weights differ from reference by %v", p, d)
		}
	}
}

// Splitting the batch across data-parallel replicas must not change the
// result (gradients are summed with a global 1/B scale).
func TestDataParallelEquivalence(t *testing.T) {
	_, w1 := stepOnce(t, planFor(core.BreadthFirst, 1, 2, 8, 2, core.DP0), 5)
	_, w2 := stepOnce(t, planFor(core.BreadthFirst, 2, 2, 4, 2, core.DP0), 5)
	_, w4 := stepOnce(t, planFor(core.BreadthFirst, 4, 2, 2, 2, core.DP0), 5)
	if d := tensor.MaxAbsDiffSlice(w1, w2); d > 1e-9 {
		t.Errorf("DP=1 vs DP=2 weights differ by %v", d)
	}
	if d := tensor.MaxAbsDiffSlice(w1, w4); d > 1e-9 {
		t.Errorf("DP=1 vs DP=4 weights differ by %v", d)
	}
}

// Sharded optimizers must match the replicated one exactly: DP0 vs DP-PS vs
// DP-FS under the breadth-first schedule.
func TestShardingEquivalence(t *testing.T) {
	_, w0 := stepOnce(t, planFor(core.BreadthFirst, 2, 2, 4, 2, core.DP0), 7)
	_, wps := stepOnce(t, planFor(core.BreadthFirst, 2, 2, 4, 2, core.DPPS), 7)
	_, wfs := stepOnce(t, planFor(core.BreadthFirst, 2, 2, 4, 2, core.DPFS), 7)
	if d := tensor.MaxAbsDiffSlice(w0, wps); d > 1e-12 {
		t.Errorf("DP0 vs DP-PS weights differ by %v", d)
	}
	if d := tensor.MaxAbsDiffSlice(w0, wfs); d > 1e-12 {
		t.Errorf("DP0 vs DP-FS weights differ by %v", d)
	}
	// And the no-pipeline accumulations with DP-FS (Appendix C).
	_, wnp0 := stepOnce(t, planFor(core.NoPipelineBF, 2, 1, 4, 4, core.DP0), 7)
	_, wnpf := stepOnce(t, planFor(core.NoPipelineBF, 2, 1, 4, 4, core.DPFS), 7)
	_, wnpd := stepOnce(t, planFor(core.NoPipelineDF, 2, 1, 4, 4, core.DPFS), 7)
	if d := tensor.MaxAbsDiffSlice(wnp0, wnpf); d > 1e-12 {
		t.Errorf("no-pipeline DP0 vs DP-FS differ by %v", d)
	}
	if d := tensor.MaxAbsDiffSlice(wnpf, wnpd); d > 1e-12 {
		t.Errorf("BF vs DF accumulation under DP-FS differ by %v", d)
	}
}

// Finite-difference check: the captured gradient matches dLoss/dW on a
// handful of coordinates.
func TestGradientsNumerically(t *testing.T) {
	p := planFor(core.BreadthFirst, 1, 2, 4, 2, core.DP0)
	tr, err := NewTrainer(cfg4(), p, AdamConfig{LR: 0, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	tr.CaptureGrads = true
	in, tgt := batchFor(p, cfg4().Dim, 13)
	base := tr.Weights()
	if _, err := tr.Step(in, tgt); err != nil {
		t.Fatal(err)
	}
	grads, err := tr.Gradients()
	if err != nil {
		t.Fatal(err)
	}
	if len(grads) != len(base) {
		t.Fatalf("gradient length %d != weights %d", len(grads), len(base))
	}
	// LR=0 keeps weights unchanged, so we can reuse the trainer for loss
	// evaluations.
	lossAt := func(w []float64) float64 {
		if err := tr.SetWeights(w); err != nil {
			t.Fatal(err)
		}
		l, err := tr.Step(in, tgt)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	rng := rand.New(rand.NewSource(99))
	const h = 1e-6
	for trial := 0; trial < 12; trial++ {
		i := rng.Intn(len(base))
		wp := append([]float64(nil), base...)
		wp[i] += h
		lp := lossAt(wp)
		wp[i] -= 2 * h
		lm := lossAt(wp)
		numeric := (lp - lm) / (2 * h)
		if math.Abs(numeric-grads[i]) > 1e-6*(1+math.Abs(numeric)) {
			t.Errorf("coord %d: grad %v, numeric %v", i, grads[i], numeric)
		}
	}
}

// Training must actually work: loss decreases substantially on a fixed
// regression task under the full breadth-first + DP-FS configuration.
func TestLossDecreases(t *testing.T) {
	p := planFor(core.BreadthFirst, 2, 2, 4, 2, core.DPFS)
	tr, err := NewTrainer(cfg4(), p, AdamConfig{LR: 5e-3, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	in, tgt := batchFor(p, cfg4().Dim, 21)
	var first, last float64
	for step := 0; step < 60; step++ {
		loss, err := tr.Step(in, tgt)
		if err != nil {
			t.Fatal(err)
		}
		if step == 0 {
			first = loss
		}
		last = loss
	}
	if !(last < 0.5*first) {
		t.Errorf("loss did not halve: first %v, last %v", first, last)
	}
}

// Multi-step determinism: identical trainers stay bitwise identical.
func TestMultiStepDeterminism(t *testing.T) {
	p := planFor(core.OneFOneB, 2, 2, 4, 1, core.DP0)
	mk := func() []float64 {
		tr, err := NewTrainer(cfg4(), p, DefaultAdam())
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 3; s++ {
			in, tgt := batchFor(p, cfg4().Dim, int64(s))
			if _, err := tr.Step(in, tgt); err != nil {
				t.Fatal(err)
			}
		}
		return tr.Weights()
	}
	a, b := mk(), mk()
	if d := tensor.MaxAbsDiffSlice(a, b); d != 0 {
		t.Errorf("multi-step runs differ by %v", d)
	}
}

func TestTrainerErrors(t *testing.T) {
	if _, err := NewTrainer(NetConfig{}, planFor(core.GPipe, 1, 2, 4, 1, core.DP0), DefaultAdam()); err == nil {
		t.Error("invalid net config should fail")
	}
	p := planFor(core.GPipe, 1, 2, 4, 1, core.DP0)
	p.TP = 2
	if _, err := NewTrainer(cfg4(), p, DefaultAdam()); err == nil {
		t.Error("TP=2 should be rejected")
	}
	p = planFor(core.GPipe, 1, 3, 4, 1, core.DP0) // 4 layers not divisible by 3
	if _, err := NewTrainer(cfg4(), p, DefaultAdam()); err == nil {
		t.Error("indivisible layers should be rejected")
	}
	tr, err := NewTrainer(cfg4(), planFor(core.GPipe, 1, 2, 4, 1, core.DP0), DefaultAdam())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(tensor.New(3, cfg4().Dim), tensor.New(3, cfg4().Dim)); err == nil {
		t.Error("wrong batch rows should fail")
	}
	if _, err := tr.Step(tensor.New(8, 2), tensor.New(8, 2)); err == nil {
		t.Error("wrong columns should fail")
	}
	if err := tr.SetWeights([]float64{1}); err == nil {
		t.Error("wrong weights length should fail")
	}
	if _, err := tr.Gradients(); err == nil {
		t.Error("Gradients without capture should fail")
	}
}

// The gradient vector must also agree across sharding modes.
func TestCapturedGradientsAcrossSharding(t *testing.T) {
	grads := func(sh core.Sharding) []float64 {
		p := planFor(core.BreadthFirst, 2, 2, 4, 2, sh)
		tr, err := NewTrainer(cfg4(), p, DefaultAdam())
		if err != nil {
			t.Fatal(err)
		}
		tr.CaptureGrads = true
		in, tgt := batchFor(p, cfg4().Dim, 31)
		if _, err := tr.Step(in, tgt); err != nil {
			t.Fatal(err)
		}
		g, err := tr.Gradients()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	g0 := grads(core.DP0)
	gfs := grads(core.DPFS)
	if d := tensor.MaxAbsDiffSlice(g0, gfs); d > 1e-12 {
		t.Errorf("DP0 vs DP-FS gradients differ by %v", d)
	}
}

// The DP=1 + DP-PS -> DP0 normalization must happen before schedule
// generation: the executed program, the trainer's plan and the devices all
// see the normalized plan, so a DP=1/DP-PS trainer is indistinguishable
// from the DP0 one (regression for the generate-then-normalize ordering).
func TestShardingNormalizedBeforeGeneration(t *testing.T) {
	ps := planFor(core.BreadthFirst, 1, 2, 4, 2, core.DPPS)
	d0 := planFor(core.BreadthFirst, 1, 2, 4, 2, core.DP0)
	trPS, err := NewTrainer(cfg4(), ps, DefaultAdam())
	if err != nil {
		t.Fatal(err)
	}
	trD0, err := NewTrainer(cfg4(), d0, DefaultAdam())
	if err != nil {
		t.Fatal(err)
	}
	if got := trPS.Plan().Sharding; got != core.DP0 {
		t.Errorf("DP=1/DP-PS plan not normalized: sharding %v", got)
	}
	if !reflect.DeepEqual(trPS.sched.Devices, trD0.sched.Devices) {
		t.Errorf("DP=1/DP-PS program differs from the DP0 one:\n%v\nvs\n%v",
			trPS.sched.Devices, trD0.sched.Devices)
	}
	if got, want := trPS.sched.Plan, trD0.sched.Plan; got != want {
		t.Errorf("schedule generated from un-normalized plan: %v vs %v", got, want)
	}
	in, tgt := batchFor(d0, cfg4().Dim, 17)
	lossPS, err := trPS.Step(in, tgt)
	if err != nil {
		t.Fatal(err)
	}
	lossD0, err := trD0.Step(in, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if lossPS != lossD0 {
		t.Errorf("DP=1/DP-PS loss %v != DP0 loss %v", lossPS, lossD0)
	}
	if d := tensor.MaxAbsDiffSlice(trPS.Weights(), trD0.Weights()); d != 0 {
		t.Errorf("DP=1/DP-PS weights differ from DP0 by %v", d)
	}
}

// TestChannelLatticeReuse pins the reusable transfer lattice: the trainer
// builds its fwd/bwd channels once, every step drains them completely
// (each send matched by a receive within the step), and repeated steps on
// the same lattice stay correct — including under the race detector, which
// exercises the cross-step reuse of the same channel values by fresh
// device goroutines.
func TestChannelLatticeReuse(t *testing.T) {
	p := planFor(core.BreadthFirst, 2, 2, 4, 2, core.DPFS)
	tr, err := NewTrainer(cfg4(), p, DefaultAdam())
	if err != nil {
		t.Fatal(err)
	}
	fwd0, bwd0 := tr.fwd, tr.bwd
	for step := 0; step < 4; step++ {
		in, tgt := batchFor(p, cfg4().Dim, int64(40+step))
		if _, err := tr.Step(in, tgt); err != nil {
			t.Fatal(err)
		}
		if &tr.fwd[0][0][0] != &fwd0[0][0][0] || &tr.bwd[0][0][0] != &bwd0[0][0][0] {
			t.Fatal("channel lattice was rebuilt on a successful step")
		}
		for _, lat := range [][][][]chan tensor.Matrix{tr.fwd, tr.bwd} {
			for dp := range lat {
				for s := range lat[dp] {
					for mb, ch := range lat[dp][s] {
						if n := len(ch); n != 0 {
							t.Fatalf("step %d: channel [dp %d][stage %d][micro %d] not drained (%d buffered)",
								step, dp, s, mb, n)
						}
					}
				}
			}
		}
	}
}
