// Package runtime executes the paper's schedules for real: a multi-worker
// pipeline-parallel training run where every "GPU" is a goroutine, the
// interconnect is Go channels, gradients are reduced with ring collectives
// and the optimizer state can be fully sharded (DP-FS), partially sharded
// (DP-PS) or replicated (DP0).
//
// The point of this substrate is correctness, not speed: it proves that
// GPipe, 1F1B, depth-first and breadth-first orderings — and the sharded
// data-parallel variants the breadth-first schedule enables — all compute
// identical gradients and identical post-optimizer weights, which is the
// premise the paper's performance comparison rests on.
//
// The model is a stack of residual MLP blocks (a transformer layer without
// attention): Y = X + W2*gelu(W1*X + b1) + b2. Backward recomputes the
// stage forward from the checkpointed stage input, mirroring the paper's
// activation-checkpointing assumption. Tensor parallelism is not executed
// (TP must be 1); it is a within-layer concern orthogonal to the schedule.
package runtime

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"bfpp/internal/collective"
	"bfpp/internal/core"
	"bfpp/internal/fault"
	"bfpp/internal/schedule"
	"bfpp/internal/tensor"
)

// NetConfig describes the toy network.
type NetConfig struct {
	// Layers is the number of residual MLP blocks.
	Layers int
	// Dim is the model width (input, output and residual stream).
	Dim int
	// Hidden is the MLP hidden width.
	Hidden int
	// Seed makes weight initialization reproducible; all replicas
	// initialize identically.
	Seed int64
}

// Validate checks the network shape.
func (c NetConfig) Validate() error {
	if c.Layers <= 0 || c.Dim <= 0 || c.Hidden <= 0 {
		return fmt.Errorf("runtime: invalid net config %+v", c)
	}
	return nil
}

// layerParams returns the parameter count of one block.
func (c NetConfig) layerParams() int {
	return c.Dim*c.Hidden + c.Hidden + c.Hidden*c.Dim + c.Dim
}

// AdamConfig holds the optimizer hyperparameters.
type AdamConfig struct {
	LR, Beta1, Beta2, Eps float64
}

// DefaultAdam returns conventional Adam hyperparameters.
func DefaultAdam() AdamConfig {
	return AdamConfig{LR: 1e-3, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Trainer drives training of the toy network under a parallelism plan.
type Trainer struct {
	cfg     NetConfig
	plan    core.Plan
	adam    AdamConfig
	sched   *schedule.Schedule
	nStages int
	perStg  int // layers per stage

	devices  [][]*device         // [pp][dp]
	dpGroups []*collective.Group // one communicator per pipeline rank
	step     int

	// Transfer channel lattice, built once and reused across steps:
	// fwd[dp][stage][micro] carries the output of stage-1 into stage;
	// bwd[dp][stage][micro] carries the loss gradient w.r.t. the output of
	// stage. Every send is matched by a receive within the same step (the
	// schedule invariant Check enforces: each (stage, micro) pair runs
	// exactly one Forward and one Backward), so the buffered channels are
	// empty again when Step returns and the lattice is safe to reuse.
	fwd, bwd [][][]chan tensor.Matrix

	// CaptureGrads, when set before a Step, makes the devices keep a copy
	// of the reduced gradients for inspection via Gradients().
	CaptureGrads bool

	// inj, when non-nil, is consulted at the DeviceOp and ChannelSend
	// injection points. The nil check is the entire hot-path cost.
	inj fault.Injector
}

// SetInjector installs a fault injector on the trainer (nil disables
// injection). Not safe to call concurrently with Step.
func (tr *Trainer) SetInjector(inj fault.Injector) { tr.inj = inj }

// errStepAborted is the panic value (and resulting device error) of a
// device whose step was torn down because a peer faulted. It is never the
// error Step returns — Step reports the originating fault.
var errStepAborted = errors.New("runtime: step aborted by peer fault")

// stepState is the per-Step teardown switch. The first device to fault
// trips it; every peer blocked on a lattice channel or inside a collective
// then unwinds with errStepAborted instead of deadlocking, so Step always
// returns and no activation stays stranded in a channel buffer.
type stepState struct {
	abort chan struct{}
	once  sync.Once
}

func (st *stepState) trip() { st.once.Do(func() { close(st.abort) }) }

func (st *stepState) send(ch chan tensor.Matrix, m tensor.Matrix) {
	select {
	case ch <- m:
	case <-st.abort:
		panic(errStepAborted)
	}
}

func (st *stepState) recv(ch chan tensor.Matrix) tensor.Matrix {
	select {
	case m := <-ch:
		return m
	case <-st.abort:
		panic(errStepAborted)
	}
}

// NewTrainer validates the configuration, generates the schedule and
// initializes identical weights on every replica.
func NewTrainer(cfg NetConfig, plan core.Plan, adam AdamConfig) (*Trainer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if plan.TP != 1 {
		return nil, fmt.Errorf("runtime: tensor parallelism is not executed (TP=%d)", plan.TP)
	}
	nStages := plan.Stages()
	if !plan.Method.Pipelined() {
		nStages = plan.Loops
	}
	if cfg.Layers%nStages != 0 {
		return nil, fmt.Errorf("runtime: %d layers not divisible into %d stages", cfg.Layers, nStages)
	}
	if plan.DP == 1 && plan.Sharding == core.DPPS {
		// Partial sharding over a single replica is replication. Normalize
		// before generating the schedule so the executed program, the memo
		// cache key and the devices all see the same plan (generating first
		// would hand the devices a program built for the un-normalized one).
		plan.Sharding = core.DP0
	}
	sched, err := schedule.Generate(plan)
	if err != nil {
		return nil, err
	}
	if err := schedule.Check(sched); err != nil {
		return nil, err
	}
	tr := &Trainer{
		cfg: cfg, plan: plan, adam: adam, sched: sched,
		nStages: nStages, perStg: cfg.Layers / nStages,
	}
	nDev := len(sched.Devices)
	tr.devices = make([][]*device, nDev)
	tr.dpGroups = make([]*collective.Group, nDev)
	for pp := 0; pp < nDev; pp++ {
		tr.dpGroups[pp] = collective.NewGroup(plan.DP)
		tr.devices[pp] = make([]*device, plan.DP)
		for dp := 0; dp < plan.DP; dp++ {
			tr.devices[pp][dp] = newDevice(tr, pp, dp)
		}
	}
	tr.buildChannels()
	return tr, nil
}

// buildChannels (re)creates the transfer channel lattice. Called once at
// construction, and again only if a step fails with channels possibly left
// non-empty (a recovered device panic).
func (tr *Trainer) buildChannels() {
	mkCh := func() [][][]chan tensor.Matrix {
		out := make([][][]chan tensor.Matrix, tr.plan.DP)
		for dp := range out {
			out[dp] = make([][]chan tensor.Matrix, tr.nStages)
			for s := range out[dp] {
				out[dp][s] = make([]chan tensor.Matrix, tr.plan.NumMicro)
				for mb := range out[dp][s] {
					out[dp][s][mb] = make(chan tensor.Matrix, 1)
				}
			}
		}
		return out
	}
	tr.fwd, tr.bwd = mkCh(), mkCh()
}

// Plan returns the trainer's parallelism plan.
func (tr *Trainer) Plan() core.Plan { return tr.plan }

// stageParamVec builds the deterministic initial parameter vector of a
// stage; every device computes the same values.
func (tr *Trainer) stageParamVec(stage int) []float64 {
	c := tr.cfg
	vec := make([]float64, tr.perStg*c.layerParams())
	off := 0
	for i := 0; i < tr.perStg; i++ {
		layer := stage*tr.perStg + i
		rng := rand.New(rand.NewSource(c.Seed + int64(layer)*7919))
		w1 := tensor.FromData(c.Dim, c.Hidden, vec[off:off+c.Dim*c.Hidden])
		w1.RandInit(rng, 1/math.Sqrt(float64(c.Dim)))
		off += c.Dim * c.Hidden
		off += c.Hidden // b1 stays zero
		w2 := tensor.FromData(c.Hidden, c.Dim, vec[off:off+c.Hidden*c.Dim])
		w2.RandInit(rng, 0.5/math.Sqrt(float64(c.Hidden)))
		off += c.Hidden * c.Dim
		off += c.Dim // b2 stays zero
	}
	return vec
}

// Step runs one training batch. inputs and targets must have
// DP*NumMicro*MicroBatch rows and Dim columns. It returns the batch loss
// (mean squared error over all rows and columns, halved).
func (tr *Trainer) Step(inputs, targets tensor.Matrix) (float64, error) {
	rows := tr.plan.BatchSize()
	if inputs.Rows != rows || targets.Rows != rows {
		return 0, fmt.Errorf("runtime: batch needs %d rows, got %d/%d", rows, inputs.Rows, targets.Rows)
	}
	if inputs.Cols != tr.cfg.Dim || targets.Cols != tr.cfg.Dim {
		return 0, fmt.Errorf("runtime: inputs need %d columns", tr.cfg.Dim)
	}
	tr.step++

	st := &stepState{abort: make(chan struct{})}
	var wg sync.WaitGroup
	for pp := range tr.devices {
		for dp := 0; dp < tr.plan.DP; dp++ {
			wg.Add(1)
			go func(d *device) {
				defer wg.Done()
				d.runProgram(inputs, targets, tr.fwd, tr.bwd, st)
			}(tr.devices[pp][dp])
		}
	}
	wg.Wait()

	// Report the originating fault, not the peers' teardown errors; scan in
	// (pp, dp) order so the choice among concurrent faults is deterministic.
	var cause error
	failed := false
	for pp := range tr.devices {
		for dp := 0; dp < tr.plan.DP; dp++ {
			if err := tr.devices[pp][dp].err; err != nil {
				failed = true
				if cause == nil && !errors.Is(err, errStepAborted) {
					cause = err
				}
			}
		}
	}
	if failed {
		if cause == nil {
			cause = errStepAborted
		}
		// A failed step leaves buffered activations, partially mutated
		// gradient accumulators and a poisoned collective group behind.
		// Rebuild all transient state and roll the step counter back so a
		// restored-and-replayed retry sees the same Adam bias correction —
		// the weights and optimizer state themselves are the Supervisor's
		// responsibility.
		tr.resetAfterFault()
		tr.step--
		return 0, cause
	}

	var loss float64
	for pp := range tr.devices {
		for dp := 0; dp < tr.plan.DP; dp++ {
			d := tr.devices[pp][dp]
			loss += d.loss
			d.loss = 0
		}
	}
	return loss, nil
}

// resetAfterFault rebuilds every piece of per-step transient state a
// failed step can leave dirty: the channel lattice (stranded activations),
// the collective groups (poisoned by Abort) and the devices' accumulators
// and checkpoint maps. Parameters and optimizer state are left as-is.
func (tr *Trainer) resetAfterFault() {
	tr.buildChannels()
	for pp := range tr.devices {
		tr.dpGroups[pp] = collective.NewGroup(tr.plan.DP)
		for _, d := range tr.devices[pp] {
			d.resetTransient()
		}
	}
}

// SetWeights overwrites the full parameter vector (stages concatenated in
// order) on every replica and shard, enabling finite-difference testing.
func (tr *Trainer) SetWeights(w []float64) error {
	size := tr.perStg * tr.cfg.layerParams()
	if len(w) != size*tr.nStages {
		return fmt.Errorf("runtime: weights length %d, want %d", len(w), size*tr.nStages)
	}
	for s := 0; s < tr.nStages; s++ {
		owner := tr.plan.StageDevice(s)
		vec := w[s*size : (s+1)*size]
		g := tr.dpGroups[owner]
		for dp := 0; dp < tr.plan.DP; dp++ {
			d := tr.devices[owner][dp]
			if d.params[s] != nil {
				copy(d.params[s], vec)
			}
			if d.shard[s] != nil {
				lo, hi := g.ShardBounds(size, dp)
				copy(d.shard[s], vec[lo:hi])
			}
		}
	}
	return nil
}

// Gradients returns the most recent step's reduced gradient vector (summed
// over the data-parallel group), stages concatenated in order. It requires
// CaptureGrads to have been set before the Step.
func (tr *Trainer) Gradients() ([]float64, error) {
	if !tr.CaptureGrads {
		return nil, fmt.Errorf("runtime: CaptureGrads not enabled")
	}
	var out []float64
	size := tr.perStg * tr.cfg.layerParams()
	for s := 0; s < tr.nStages; s++ {
		owner := tr.plan.StageDevice(s)
		switch tr.plan.Sharding {
		case core.DP0:
			cap0 := tr.devices[owner][0].captured[s]
			if cap0 == nil {
				return nil, fmt.Errorf("runtime: no captured gradients for stage %d", s)
			}
			out = append(out, cap0...)
		default:
			full := make([]float64, size)
			g := tr.dpGroups[owner]
			for dp := 0; dp < tr.plan.DP; dp++ {
				capS := tr.devices[owner][dp].captured[s]
				if capS == nil {
					return nil, fmt.Errorf("runtime: no captured gradients for stage %d", s)
				}
				lo, hi := g.ShardBounds(size, dp)
				copy(full[lo:hi], capS)
			}
			out = append(out, full...)
		}
	}
	return out, nil
}

// Weights returns the full parameter vector (stages concatenated in
// order), reconstructing sharded state as needed. Used by tests and for
// checkpoint-style export.
func (tr *Trainer) Weights() []float64 {
	var out []float64
	for s := 0; s < tr.nStages; s++ {
		owner := tr.plan.StageDevice(s)
		size := tr.perStg * tr.cfg.layerParams()
		switch tr.plan.Sharding {
		case core.DPFS:
			full := make([]float64, size)
			g := tr.dpGroups[owner]
			for dp := 0; dp < tr.plan.DP; dp++ {
				lo, hi := g.ShardBounds(size, dp)
				copy(full[lo:hi], tr.devices[owner][dp].shard[s])
			}
			out = append(out, full...)
		default:
			out = append(out, tr.devices[owner][0].params[s]...)
		}
	}
	return out
}
