package analytic

import (
	"math/rand"
	"testing"

	"bfpp/internal/core"
	"bfpp/internal/cost"
	"bfpp/internal/engine"
	"bfpp/internal/hw"
	"bfpp/internal/schedule"
)

// boundCostModels returns every registered fixed cost model plus a
// calibrated instance with a deliberately off-default profile, so the
// property below never degenerates into re-checking the paper constants.
func boundCostModels(t *testing.T) map[string]cost.Model {
	t.Helper()
	models := map[string]cost.Model{}
	for _, name := range cost.FixedNames() {
		cm, err := cost.Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		models[name] = cm
	}
	perturbed := cost.DefaultProfile()
	perturbed.Kernel = hw.KernelModel{MaxEff: 0.5, HalfRows: 48, HalfWidth: 300}
	perturbed.KernelLaunch *= 4
	perturbed.TPLinkEfficiency = 0.6
	perturbed.DPLinkEfficiency = 0.65
	perturbed.IntraNodeLatency *= 2
	perturbed.InterNodeLatency *= 3
	models["calibrated-perturbed"] = cost.Calibrated(perturbed)
	return models
}

// TestLowerBoundAdmissibleForEveryCostModel is the subsystem's structural
// payoff, stated as a property: because the bounds and the simulator share
// one cost producer (engine.DeriveCosts -> cost.Derive), admissibility and
// replay exactness hold for EVERY registered generator under EVERY
// registered cost model — the per-op tuples change, the argument does not.
// Same contract as TestLowerBoundNeverExceedsSimulation: bound <= simulated
// always, and every method except the list-scheduled V-schedule must report
// an exact bound that matches the simulation bit for bit.
func TestLowerBoundAdmissibleForEveryCostModel(t *testing.T) {
	c := hw.PaperCluster()
	m := boundModel()
	for name, cm := range boundCostModels(t) {
		t.Run(name, func(t *testing.T) {
			par := engine.Defaults()
			par.Model = cm
			// A fixed per-model seed keeps each subtest deterministic and
			// the drawn plan sets distinct across models.
			rng := rand.New(rand.NewSource(int64(len(name))))
			for _, g := range schedule.Generators() {
				method := g.Method()
				traits := g.Traits()
				checked := 0
				for trial := 0; trial < 400 && checked < 25; trial++ {
					p, ok := randomBoundPlan(rng, method, traits)
					if !ok {
						continue
					}
					lb, exact := LowerBound(c, m, p, &par)
					res, err := engine.SimulateOpts(c, m, p, engine.Options{Params: &par})
					if err != nil {
						t.Fatalf("%v: simulate %v: %v", method, p, err)
					}
					checked++
					if lb <= 0 {
						t.Errorf("%v: non-positive bound %v for %v", method, lb, p)
					}
					if lb > res.BatchTime {
						t.Errorf("%v: bound %v exceeds simulated %v (by %v) for %v",
							method, lb, res.BatchTime, lb-res.BatchTime, p)
					}
					if exact {
						if lb != res.BatchTime {
							t.Errorf("%v: exact bound %v != simulated %v (diff %v) for %v",
								method, lb, res.BatchTime, lb-res.BatchTime, p)
						}
					} else if method != core.VSchedule {
						t.Errorf("%v: bound not exact for %v under the %s model", method, p, name)
					}
				}
				if checked < 10 {
					t.Errorf("%v: only %d randomized plans checked", method, checked)
				}
			}
		})
	}
}
