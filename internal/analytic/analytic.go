// Package analytic implements the paper's closed-form performance model:
// the theoretical efficiency curves of Figure 2, the network arithmetic
// intensities of Appendix A.3 (Eqs. 20-31), the beta_net estimate, and the
// qualitative method comparison of Table 4.1 (including Chimera, which the
// paper compares analytically but does not run).
package analytic

import (
	"fmt"
	"math"

	"bfpp/internal/core"
	"bfpp/internal/hw"
	"bfpp/internal/model"
)

// Scenario parameterizes the theoretical model of Section 4.2 / Figure 2.
type Scenario struct {
	// BetaNet is the data-parallel efficiency threshold (Figure 2 uses 6).
	BetaNet float64
	// PP is the pipeline-parallel size (Figure 2 uses 8).
	PP int
	// TP is the tensor-parallel size (Figure 2 uses 1).
	TP int
	// Loops is N_loop (1 for non-looped; Figure 2 shows 2 and 8).
	Loops int
	// MicroBatch is S_mb (1 in Figure 2).
	MicroBatch int
	// Overlap selects Figure 2a (true: network ops overlap compute on
	// separate streams) versus Figure 2b (false).
	Overlap bool
	// PPJump is the extra overhead fraction per stage when the
	// pipeline-parallel transfers cannot be overlapped (N_mb <= N_PP),
	// producing the jump near beta_min that Figure 2a annotates.
	PPJump float64
}

// DefaultScenario returns the Figure 2 parameters.
func DefaultScenario() Scenario {
	return Scenario{BetaNet: 6, PP: 8, TP: 1, Loops: 1, MicroBatch: 1, Overlap: true, PPJump: 0.002}
}

// overlapWindow returns the fraction of the batch compute a schedule can
// overlap the gradient reduction with (Section 4.2): a single micro-batch
// for non-looped schedules, a sequence of N_PP micro-batches for the
// depth-first family, and the entire batch for breadth-first. The
// classification is the method's registered accumulation-window trait, so
// newly registered schedules get the right curve without touching this
// package.
func overlapWindow(m core.Method, pp, nmb int) float64 {
	switch m.Window() {
	case core.WindowFullBatch:
		return 1
	case core.WindowSequence:
		w := float64(pp) / float64(nmb)
		if w > 1 {
			return 1
		}
		return w
	default:
		return 1 / float64(nmb)
	}
}

// Utilization returns the theoretical maximum GPU utilization of a method
// at batch size per GPU beta under the scenario: 1/(1 + bubble + DP
// overhead + PP overhead), each term following Section 4.2.
func (s Scenario) Utilization(m core.Method, beta float64) float64 {
	pp, loops := s.PP, s.Loops
	if !m.Pipelined() {
		pp, loops = 1, 1
	}
	if !m.Looped() && m.Pipelined() {
		loops = 1
	}
	// beta = Nmb*Smb/(PP*TP) for pipelined methods; Nmb*Smb/TP otherwise.
	nmbF := beta * float64(pp) * float64(s.TP) / float64(s.MicroBatch)
	if nmbF < 1 {
		return 0 // unreachable batch size for this grid
	}
	nmb := nmbF

	var bubble float64
	if m.Pipelined() {
		bubble = float64(pp-1) / (nmb * float64(loops))
	}

	// Data-parallel overhead: Tnet/Tcomp = betaNet/(Nmb*Smb), reduced by
	// the overlap window when overlap is available (Eq. 2: the smaller of
	// the overlapped and non-overlapped costs applies).
	tnet := s.BetaNet / (nmb * float64(s.MicroBatch))
	dp := tnet
	if s.Overlap {
		w := overlapWindow(m, pp, int(math.Ceil(nmb)))
		if over := tnet - w; over < dp {
			dp = over
		}
		if dp < 0 {
			dp = 0
		}
	}

	// Pipeline-parallel overlap needs Nmb >= NPP + 1 (Section 4.1); below
	// that every stage transfer sits on the critical path.
	var ppOver float64
	if m.Pipelined() && (!s.Overlap || nmb < float64(pp)+1) {
		ppOver = s.PPJump * float64(pp*loops)
	}

	return 1 / (1 + bubble + dp + ppOver)
}

// CurvePoint is one sample of a Figure 2 efficiency curve.
type CurvePoint struct {
	Beta float64
	Util float64
}

// Curve samples Utilization over the beta grid.
func (s Scenario) Curve(m core.Method, betas []float64) []CurvePoint {
	out := make([]CurvePoint, 0, len(betas))
	for _, b := range betas {
		out = append(out, CurvePoint{Beta: b, Util: s.Utilization(m, b)})
	}
	return out
}

// --- Arithmetic intensities (Appendix A.3), in flop/byte. ---

// IntensityDP returns the data-parallel intensity I_0 = I_PS of Eq. (20):
// Nmb * Smb * Sseq.
func IntensityDP(nmb, smb, seq int) float64 {
	return float64(nmb) * float64(smb) * float64(seq)
}

// IntensityDPFS returns the fully-sharded intensities of Eqs. (24)-(26) for
// the given schedule: plain gradient accumulation, a depth-first sequence
// of N_PP micro-batches, or the breadth-first full batch, classified by the
// method's registered accumulation-window trait.
func IntensityDPFS(m core.Method, pp, nmb, smb, seq int) float64 {
	base := 2.0 / 3.0 * float64(smb) * float64(seq)
	switch m.Window() {
	case core.WindowSequence:
		return base * float64(pp)
	case core.WindowFullBatch:
		return base * float64(nmb)
	default:
		return base
	}
}

// IntensityPP returns the pipeline-parallel intensity of Eq. (30):
// 24 * Shidden * Nlayers / (NPP * Nloop).
func IntensityPP(t model.Transformer, pp, loops int) float64 {
	return 24 * float64(t.Hidden) * float64(t.Layers) / float64(pp*loops)
}

// IntensityTP returns the tensor-parallel intensity of Eq. (31):
// 2 * Shidden / NTP.
func IntensityTP(t model.Transformer, tp int) float64 {
	return 2 * float64(t.Hidden) / float64(tp)
}

// BetaNet estimates the data-parallel efficiency threshold for a GPU and
// inter-node link: the smallest beta for which the gradient reduction can
// be hidden, ceil(I_hw / Sseq) (Appendix A.3.1).
func BetaNet(g hw.GPU, l hw.Link, seq int) float64 {
	return math.Ceil(hw.Intensity(g, l) / float64(seq))
}

// TPOverhead estimates the tensor-parallel overhead fraction: the
// non-overlappable two thirds of the communication (Appendix A.3.3
// footnote 11) relative to compute, (2/3) * I_hw / I_TP.
func TPOverhead(t model.Transformer, tp int, g hw.GPU, intra hw.Link) float64 {
	return 2.0 / 3.0 * hw.Intensity(g, intra) / IntensityTP(t, tp)
}

// --- Table 4.1 ---

// TableParams fixes the symbolic quantities Table 4.1 is evaluated at.
type TableParams struct {
	Layers, PP, TP, Nmb, Smb, Loops, Chimera int
}

// DefaultTableParams matches the paper's running example: a 16-layer model
// on 4 pipeline devices with 8 micro-batches, 4 loops and 2 Chimera
// pipelines.
func DefaultTableParams() TableParams {
	return TableParams{Layers: 16, PP: 4, TP: 1, Nmb: 8, Smb: 1, Loops: 4, Chimera: 2}
}

// TableRow is one method's quantitative Table 4.1 entries. Memory values
// are in units of (bytes/param * layer parameters) and (micro-batch
// activation size) respectively, matching the paper's relative convention.
type TableRow struct {
	// Method names the schedule (including the DP-FS variants).
	Method string
	// Bubble is the pipeline-bubble overhead fraction.
	Bubble float64
	// StateMemory is the per-device training-state scale (layers held, or
	// the constant 2 for DP-FS double buffering).
	StateMemory float64
	// ActivationMemory is the checkpoint scale in micro-batch units.
	ActivationMemory float64
	// DPNetwork is the data-parallel volume multiplier (bytes/param,
	// relative to 2 for a one-shot half-precision all-reduce... the paper
	// uses 2 for DP0 and 3Nmb for naive DP-FS).
	DPNetwork float64
	// DPOverlap is the overlappable fraction of the DP network time.
	DPOverlap float64
	// PPNetwork is the pipeline-parallel volume in loop units (0, 1, or
	// Nloop).
	PPNetwork float64
	// EasyPPOverlap indicates the schedule admits transfer overlap without
	// modification.
	EasyPPOverlap bool
	// FlexibleNmb indicates the schedule accepts any Nmb >= NPP.
	FlexibleNmb bool
}

// Table41 evaluates Table 4.1 for the given parameters.
func Table41(p TableParams) []TableRow {
	l := float64(p.Layers)
	pp := float64(p.PP)
	nmb := float64(p.Nmb)
	smb := float64(p.Smb)
	loops := float64(p.Loops)
	nch := float64(p.Chimera)
	rows := []TableRow{
		{
			Method: "No pipeline", Bubble: 0, StateMemory: l,
			ActivationMemory: smb, DPNetwork: 2,
			DPOverlap: (1 - 1/l) / nmb, PPNetwork: 0,
			EasyPPOverlap: true, FlexibleNmb: true,
		},
		{
			Method: "No pipeline (DP-FS)", Bubble: 0, StateMemory: 2,
			ActivationMemory: smb, DPNetwork: 3 * nmb,
			DPOverlap: (1 - 1/l) / nmb, PPNetwork: 0,
			EasyPPOverlap: true, FlexibleNmb: true,
		},
		{
			Method: "GPipe", Bubble: (pp - 1) / nmb, StateMemory: l / pp,
			ActivationMemory: smb * nmb / pp, DPNetwork: 2,
			DPOverlap: (1 - pp/l) / nmb, PPNetwork: 1,
			EasyPPOverlap: true, FlexibleNmb: true,
		},
		{
			Method: "1F1B", Bubble: (pp - 1) / nmb, StateMemory: l / pp,
			ActivationMemory: 2 * smb, DPNetwork: 2,
			DPOverlap: (1 - pp/l) / nmb, PPNetwork: 1,
			EasyPPOverlap: false, FlexibleNmb: true,
		},
		{
			Method: "1F1B (DP-FS)", Bubble: (pp - 1) / nmb, StateMemory: 2,
			ActivationMemory: 2 * smb, DPNetwork: 3 * nmb,
			DPOverlap: 1 - pp/l, PPNetwork: 1,
			EasyPPOverlap: false, FlexibleNmb: true,
		},
		{
			Method: "Chimera", Bubble: 1 / nch, StateMemory: nch * l / pp,
			ActivationMemory: 2 * smb, DPNetwork: 2 * nch,
			DPOverlap: 1 - 1/nch, PPNetwork: 1,
			EasyPPOverlap: false, FlexibleNmb: false,
		},
		{
			Method: "Depth-first", Bubble: (pp - 1) / (nmb * loops), StateMemory: l / pp,
			ActivationMemory: smb + smb/loops, DPNetwork: 2,
			DPOverlap: (1 - pp/l) * pp / nmb, PPNetwork: loops,
			EasyPPOverlap: false, FlexibleNmb: false,
		},
		{
			Method: "Breadth-first", Bubble: (pp - 1) / (nmb * loops), StateMemory: l / pp,
			ActivationMemory: smb * nmb / pp, DPNetwork: 2,
			DPOverlap: 1 - pp/l, PPNetwork: loops,
			EasyPPOverlap: true, FlexibleNmb: true,
		},
		{
			Method: "Breadth-first (DP-FS)", Bubble: (pp - 1) / (nmb * loops), StateMemory: 2,
			ActivationMemory: smb * nmb / pp, DPNetwork: 3,
			DPOverlap: 1 - pp/l, PPNetwork: loops,
			EasyPPOverlap: true, FlexibleNmb: true,
		},
	}
	return rows
}

// FormatTable41 renders the table as aligned text.
func FormatTable41(rows []TableRow) string {
	out := fmt.Sprintf("%-22s %8s %7s %8s %7s %9s %7s %7s %8s\n",
		"Method", "Bubble", "State", "Act", "DPNet", "DPOverlap", "PPNet", "PPEasy", "FlexNmb")
	for _, r := range rows {
		out += fmt.Sprintf("%-22s %8.3f %7.2f %8.2f %7.1f %9.3f %7.1f %7v %8v\n",
			r.Method, r.Bubble, r.StateMemory, r.ActivationMemory, r.DPNetwork,
			r.DPOverlap, r.PPNetwork, r.EasyPPOverlap, r.FlexibleNmb)
	}
	return out
}
