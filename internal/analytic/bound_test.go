package analytic

import (
	"math/rand"
	"testing"

	"bfpp/internal/core"
	"bfpp/internal/engine"
	"bfpp/internal/hw"
	"bfpp/internal/memsim"
	"bfpp/internal/model"
	"bfpp/internal/schedule"
)

// boundModel is the 16-layer test model: small enough that randomized
// stage counts divide it, large enough that every cost term is non-zero.
func boundModel() model.Transformer { return model.Tiny() }

// randomBoundPlan draws a structurally valid plan for the method on the
// 64-GPU paper cluster and the 16-layer model, spanning overlap flags,
// shardings, tensor/data parallelism and the per-method Sequence dial.
// ok is false when the draw cannot be repaired.
func randomBoundPlan(rng *rand.Rand, m core.Method, traits schedule.Traits) (core.Plan, bool) {
	p := core.Plan{
		Method:     m,
		TP:         1 << rng.Intn(2),
		MicroBatch: 1 + rng.Intn(3),
		Sharding:   core.DP0,
	}
	if len(traits.Shardings) > 0 {
		p.Sharding = traits.Shardings[rng.Intn(len(traits.Shardings))]
	}
	if rng.Intn(2) == 0 {
		p.OverlapDP, p.OverlapPP = true, true
	}
	info, ok := m.Info()
	if !ok {
		return p, false
	}
	layers := boundModel().Layers
	if !info.Pipelined {
		p.PP = 1
		p.Loops = []int{1, 2, 4, 8, 16}[rng.Intn(5)]
		p.NumMicro = 1 + rng.Intn(6)
	} else {
		p.PP = 2 << rng.Intn(3) // 2..8
		p.Loops = 1
		if info.Looped {
			for p.Loops = 1 << rng.Intn(3); p.PP*p.Loops > layers; {
				p.Loops /= 2
			}
		}
		p.NumMicro = p.PP * (1 + rng.Intn(4))
	}
	p.DP = 1 << rng.Intn(3)
	if p.GPUs() > hw.PaperCluster().NumGPUs() {
		return p, false
	}
	switch m {
	case core.Hybrid:
		p.Sequence = p.PP
		if p.NumMicro%(2*p.PP) == 0 && rng.Intn(2) == 0 {
			p.Sequence = 2 * p.PP
		}
	case core.VSchedule:
		p.Sequence = rng.Intn(2*p.PP + 1) // 0 = default cap
	}
	if p.Sharding == core.DPFS && p.DP == 1 {
		p.Sharding = core.DP0
	}
	return p, p.Validate(boundModel()) == nil
}

// TestLowerBoundNeverExceedsSimulation is the admissibility property of
// the branch-and-bound evaluator: for randomized plans of every registered
// generator, the analytic lower bound never exceeds the DES-simulated
// batch time, and a bound reported exact matches it bit for bit. Since the
// multi-stream replay, exactness is required of every generator with an
// implicit op sequence — that is, everything except the list-scheduled
// V-schedule — overlapped implementations and vee placements included.
func TestLowerBoundNeverExceedsSimulation(t *testing.T) {
	c := hw.PaperCluster()
	m := boundModel()
	rng := rand.New(rand.NewSource(42))
	for _, g := range schedule.Generators() {
		method := g.Method()
		traits := g.Traits()
		checked, exactSeen := 0, 0
		for trial := 0; trial < 500 && checked < 60; trial++ {
			p, ok := randomBoundPlan(rng, method, traits)
			if !ok {
				continue
			}
			lb, exact := LowerBound(c, m, p, nil)
			res, err := engine.Simulate(c, m, p)
			if err != nil {
				t.Fatalf("%v: simulate %v: %v", method, p, err)
			}
			checked++
			if lb <= 0 {
				t.Errorf("%v: non-positive bound %v for %v", method, lb, p)
			}
			if lb > res.BatchTime {
				t.Errorf("%v: bound %v exceeds simulated %v (by %v) for %v",
					method, lb, res.BatchTime, lb-res.BatchTime, p)
			}
			if exact {
				exactSeen++
				if lb != res.BatchTime {
					t.Errorf("%v: exact bound %v != simulated %v (diff %v) for %v",
						method, lb, res.BatchTime, lb-res.BatchTime, p)
				}
			} else if method != core.VSchedule {
				t.Errorf("%v: bound not exact for %v (the multi-stream replay must cover it)", method, p)
			}
		}
		if checked < 20 {
			t.Errorf("%v: only %d randomized plans checked", method, checked)
		}
		t.Logf("%v: %d plans checked, %d exact", method, checked, exactSeen)
	}
}

// TestExactBoundForNonOverlapped pins the exactness guarantee the search's
// dominance pruning relies on: for non-overlapped breadth-first and
// depth-first plans the bound must be reported exact and equal the DES
// makespan exactly (not merely below it).
func TestExactBoundForNonOverlapped(t *testing.T) {
	c := hw.PaperCluster()
	m := boundModel()
	cases := []core.Plan{
		{Method: core.BreadthFirst, DP: 1, PP: 4, TP: 1, MicroBatch: 2, NumMicro: 8, Loops: 4},
		{Method: core.BreadthFirst, DP: 4, PP: 2, TP: 2, MicroBatch: 1, NumMicro: 6, Loops: 8},
		{Method: core.BreadthFirst, DP: 2, PP: 8, TP: 1, MicroBatch: 2, NumMicro: 16, Loops: 2, Sharding: core.DPFS},
		{Method: core.BreadthFirst, DP: 4, PP: 4, TP: 1, MicroBatch: 1, NumMicro: 8, Loops: 2, Sharding: core.DPPS},
		{Method: core.DepthFirst, DP: 1, PP: 4, TP: 1, MicroBatch: 2, NumMicro: 8, Loops: 4},
		{Method: core.DepthFirst, DP: 4, PP: 2, TP: 2, MicroBatch: 1, NumMicro: 6, Loops: 8},
		{Method: core.DepthFirst, DP: 2, PP: 8, TP: 1, MicroBatch: 4, NumMicro: 8, Loops: 1},
		{Method: core.OneFOneB, DP: 2, PP: 8, TP: 2, MicroBatch: 2, NumMicro: 12, Loops: 1},
		{Method: core.GPipe, DP: 4, PP: 4, TP: 1, MicroBatch: 1, NumMicro: 8, Loops: 1, Sharding: core.DPPS},
		{Method: core.NoPipelineBF, DP: 4, PP: 1, TP: 2, MicroBatch: 2, NumMicro: 4, Loops: 16, Sharding: core.DPFS},
		{Method: core.NoPipelineDF, DP: 2, PP: 1, TP: 1, MicroBatch: 1, NumMicro: 4, Loops: 8, Sharding: core.DPFS},
	}
	for _, p := range cases {
		if err := p.Validate(m); err != nil {
			t.Fatalf("case %v invalid: %v", p, err)
		}
		lb, exact := LowerBound(c, m, p, nil)
		if !exact {
			t.Errorf("%v: bound not reported exact", p)
			continue
		}
		res, err := engine.Simulate(c, m, p)
		if err != nil {
			t.Fatalf("simulate %v: %v", p, err)
		}
		if lb != res.BatchTime {
			t.Errorf("%v: exact bound %v != simulated %v (diff %v)", p, lb, res.BatchTime, lb-res.BatchTime)
		}
	}
}

// TestExactBoundForOverlapped pins the multi-stream replay's headline
// claim: for overlapped implementations — the paper's own overlapped
// breadth-first runtime, WS-1F1B, and the other implicit-sequence
// generators with separate pp/dp streams — the bound is reported exact and
// equals the DES makespan bit for bit, so the search can dominance-prune
// these families without simulating.
func TestExactBoundForOverlapped(t *testing.T) {
	c := hw.PaperCluster()
	m := boundModel()
	ov := func(p core.Plan) core.Plan {
		p.OverlapDP, p.OverlapPP = true, true
		return p
	}
	cases := []core.Plan{
		// The paper's overlapped breadth-first implementation, DP0 and DP-FS.
		ov(core.Plan{Method: core.BreadthFirst, DP: 1, PP: 4, TP: 1, MicroBatch: 2, NumMicro: 8, Loops: 4}),
		ov(core.Plan{Method: core.BreadthFirst, DP: 4, PP: 2, TP: 2, MicroBatch: 1, NumMicro: 6, Loops: 8}),
		ov(core.Plan{Method: core.BreadthFirst, DP: 2, PP: 8, TP: 1, MicroBatch: 2, NumMicro: 16, Loops: 2, Sharding: core.DPFS}),
		ov(core.Plan{Method: core.BreadthFirst, DP: 4, PP: 4, TP: 1, MicroBatch: 1, NumMicro: 8, Loops: 2, Sharding: core.DPPS}),
		// WS-1F1B: 1F1B program, overlapped communication.
		ov(core.Plan{Method: core.WeightStash1F1B, DP: 2, PP: 8, TP: 2, MicroBatch: 2, NumMicro: 12, Loops: 1}),
		ov(core.Plan{Method: core.WeightStash1F1B, DP: 1, PP: 4, TP: 1, MicroBatch: 1, NumMicro: 4, Loops: 1}),
		// The rest of the implicit-sequence generators, overlapped.
		ov(core.Plan{Method: core.GPipe, DP: 4, PP: 4, TP: 1, MicroBatch: 1, NumMicro: 8, Loops: 1, Sharding: core.DPPS}),
		ov(core.Plan{Method: core.OneFOneB, DP: 2, PP: 8, TP: 2, MicroBatch: 2, NumMicro: 12, Loops: 1}),
		ov(core.Plan{Method: core.DepthFirst, DP: 4, PP: 2, TP: 2, MicroBatch: 1, NumMicro: 6, Loops: 8}),
		ov(core.Plan{Method: core.Hybrid, DP: 1, PP: 2, TP: 2, MicroBatch: 2, NumMicro: 8, Loops: 2, Sequence: 4}),
		ov(core.Plan{Method: core.NoPipelineBF, DP: 4, PP: 1, TP: 2, MicroBatch: 2, NumMicro: 4, Loops: 16, Sharding: core.DPFS}),
		ov(core.Plan{Method: core.NoPipelineDF, DP: 2, PP: 1, TP: 1, MicroBatch: 1, NumMicro: 4, Loops: 8, Sharding: core.DPFS}),
	}
	for _, p := range cases {
		if err := p.Validate(m); err != nil {
			t.Fatalf("case %v invalid: %v", p, err)
		}
		if schedule.NonOverlapped(p) {
			t.Fatalf("case %v is not an overlapped implementation", p)
		}
		lb, exact := LowerBound(c, m, p, nil)
		if !exact {
			t.Errorf("%v: overlapped bound not reported exact", p)
			continue
		}
		res, err := engine.Simulate(c, m, p)
		if err != nil {
			t.Fatalf("simulate %v: %v", p, err)
		}
		if lb != res.BatchTime {
			t.Errorf("%v: exact bound %v != simulated %v (diff %v)", p, lb, res.BatchTime, lb-res.BatchTime)
		}
	}
}

// TestVScheduleFloorAdmissible sweeps the V-schedule's in-flight caps on
// vee placements: the list-schedule-aware warmup/drain floor must stay
// admissible at every cap (smaller caps only delay operations, so the
// placement-derived chains keep holding) while never claiming exactness.
func TestVScheduleFloorAdmissible(t *testing.T) {
	c := hw.PaperCluster()
	m := boundModel()
	for _, pp := range []int{2, 4, 8} {
		for _, loops := range []int{1, 2} {
			if pp*loops > m.Layers {
				continue
			}
			for _, seq := range []int{0, loops, pp, 2 * pp} {
				if seq > 0 && seq < loops {
					continue
				}
				p := core.Plan{Method: core.VSchedule, DP: 2, PP: pp, TP: 1,
					MicroBatch: 1, NumMicro: 2 * pp, Loops: loops, Sequence: seq,
					OverlapDP: true, OverlapPP: true}
				if err := p.Validate(m); err != nil {
					t.Fatalf("case %v invalid: %v", p, err)
				}
				lb, exact := LowerBound(c, m, p, nil)
				if exact {
					t.Errorf("%v: list-scheduled V-schedule must not claim exactness", p)
				}
				res, err := engine.Simulate(c, m, p)
				if err != nil {
					t.Fatalf("simulate %v: %v", p, err)
				}
				if lb <= 0 || lb > res.BatchTime {
					t.Errorf("%v: floor %v outside (0, %v]", p, lb, res.BatchTime)
				}
			}
		}
	}
}

// TestVScheduleCappedFloorAdmissibleRandom stresses the cap-aware term of
// the V-schedule floor on randomized tightly-capped plans: caps at or near
// the deadlock floor (Loops) with deep micro-batch counts, where the
// forced-serialization term dominates the warmup/drain chains. The floor
// must stay admissible — the greedy generator's serial-head exemption may
// run a few forwards past the cap, and the bound's capEff margin must
// absorb exactly that — and must never claim exactness.
func TestVScheduleCappedFloorAdmissibleRandom(t *testing.T) {
	c := hw.PaperCluster()
	m := boundModel()
	rng := rand.New(rand.NewSource(1123))
	checked := 0
	for trial := 0; trial < 600 && checked < 80; trial++ {
		pp := 2 << rng.Intn(3) // 2..8
		loops := 1 << rng.Intn(3)
		for pp*loops > m.Layers {
			loops /= 2
		}
		// Tight caps: the deadlock floor and a couple of pairs above it,
		// kept below the default N_PP so the cap-aware term can bind.
		capSeq := loops + rng.Intn(3)
		p := core.Plan{Method: core.VSchedule,
			DP: 1 << rng.Intn(2), PP: pp, TP: 1 << rng.Intn(2),
			MicroBatch: 1 + rng.Intn(2),
			NumMicro:   pp * (2 + rng.Intn(6)), // deep: many micro-batches per cap slot
			Loops:      loops, Sequence: capSeq,
			OverlapDP: true, OverlapPP: true}
		if p.GPUs() > c.NumGPUs() || p.Validate(m) != nil {
			continue
		}
		checked++
		lb, exact := LowerBound(c, m, p, nil)
		if exact {
			t.Errorf("%v: list-scheduled V-schedule must not claim exactness", p)
		}
		res, err := engine.Simulate(c, m, p)
		if err != nil {
			t.Fatalf("simulate %v: %v", p, err)
		}
		if lb <= 0 || lb > res.BatchTime {
			t.Errorf("%v: capped floor %v outside (0, %v] (diff %v)",
				p, lb, res.BatchTime, lb-res.BatchTime)
		}
	}
	if checked < 40 {
		t.Fatalf("only %d randomized capped plans checked", checked)
	}
	t.Logf("%d randomized tightly-capped V-schedule plans checked", checked)
}

// TestMemoryFloorNeverExceedsEstimate is the memory-side admissibility
// property: the cheap floor the enumeration pre-filter uses never exceeds
// the full memsim estimate, so floor-filtered candidate sets are identical
// to unfiltered ones.
func TestMemoryFloorNeverExceedsEstimate(t *testing.T) {
	m := boundModel()
	rng := rand.New(rand.NewSource(7))
	for _, g := range schedule.Generators() {
		method := g.Method()
		traits := g.Traits()
		checked := 0
		for trial := 0; trial < 400 && checked < 50; trial++ {
			p, ok := randomBoundPlan(rng, method, traits)
			if !ok {
				continue
			}
			checked++
			floor := MemoryFloor(m, p)
			total := memsim.Estimate(m, p).Total()
			if floor > total {
				t.Errorf("%v: memory floor %v exceeds estimate %v for %v", method, floor, total, p)
			}
		}
		if checked < 20 {
			t.Errorf("%v: only %d randomized plans checked", method, checked)
		}
	}
}
