package analytic

// Branch-and-bound support for the Appendix E grid search (BaPipe-style:
// prune the configuration space with analytic performance models before
// simulating). The package exposes the two tiers of the search's pricing
// cascade. Floor is tier 1: a cheap O(1)-ish admissible lower bound — the
// maximum of the placement-generic floor (per-device compute, pipeline
// warm-up, single-micro-batch latency, exposed communication for
// non-overlapped implementations) and the generator's Traits.StepFloor
// hook — priced for every enumerated candidate. LowerBound /
// LowerBoundCached is tier 2: the generator's Traits.StepLB hook, which
// for every generator with an implicit op sequence replays the schedule
// recurrence on the engine's per-device compute/pp/dp stream model exactly
// (bit-identical to the DES makespan, overlapped implementations
// included), paid only when the floor fails to prune; generators without a
// replayable sequence (the list-scheduled V-schedule) have no tier 2 and
// their floor is the final bound. internal/search uses the bounds to order
// candidates cheapest-first and to skip simulations that provably cannot
// beat the incumbent.

import (
	"bfpp/internal/core"
	"bfpp/internal/engine"
	"bfpp/internal/hw"
	"bfpp/internal/memsim"
	"bfpp/internal/model"
	"bfpp/internal/schedule"
)

// LowerBound returns an admissible lower bound on the simulated batch time
// of (c, m, p) under the engine calibration par (nil means
// engine.Defaults()), and whether the bound is exact — equal, bit for bit,
// to engine.SimulateOpts' BatchTime, which holds for every schedule whose
// generator replays its implicit program on the engine's multi-stream
// model (all the paper methods plus WS-1F1B, overlapped or not; only the
// list-scheduled V-schedule reports a floor). The plan must be valid for
// the model.
func LowerBound(c hw.Cluster, m model.Transformer, p core.Plan, par *engine.Params) (lb float64, exact bool) {
	return LowerBoundCached(c, m, p, par, nil)
}

// LowerBoundCached is LowerBound with a prefix-amortization cache: when the
// generator registered a StepLBCached hook and rc is non-nil, candidates
// sharing an op-sequence prefix (the search passes one cache per pricing
// group) checkpoint and resume the replay instead of re-running it. The
// returned bound is identical to LowerBound's — the cache is a pure
// performance channel — and a nil rc degrades to the uncached replay.
func LowerBoundCached(c hw.Cluster, m model.Transformer, p core.Plan, par *engine.Params, rc *schedule.ReplayCache) (lb float64, exact bool) {
	pr := engine.Defaults()
	if par != nil {
		pr = *par
	}
	costs := engine.DeriveCosts(c, m, p, pr)
	tr := schedule.TraitsOf(p.Method)
	var h float64
	switch {
	case tr.StepLBCached != nil:
		var ok bool
		if h, ok = tr.StepLBCached(p, costs, rc); ok {
			// The replay IS the simulated time; the floors cannot improve
			// on it and are not computed at all.
			return h, true
		}
	case tr.StepLB != nil:
		var ok bool
		if h, ok = tr.StepLB(p, costs); ok {
			return h, true
		}
	}
	if f := floorOf(p, costs, tr); f > h {
		return f, false
	}
	return h, false
}

// Floor is the cascade's tier-1 price: the cheap admissible lower bound on
// the simulated batch time, with no schedule replay — the maximum of the
// placement-generic floor and the generator's StepFloor hook. It never
// exceeds LowerBound (both are admissible and LowerBound's replay is the
// exact time when it applies), so a candidate the floor already prunes
// needs no tier-2 pricing.
func Floor(c hw.Cluster, m model.Transformer, p core.Plan, par *engine.Params) float64 {
	pr := engine.Defaults()
	if par != nil {
		pr = *par
	}
	costs := engine.DeriveCosts(c, m, p, pr)
	return floorOf(p, costs, schedule.TraitsOf(p.Method))
}

// floorOf maximizes the placement-generic floor with the generator's
// registered cheap floor.
func floorOf(p core.Plan, costs schedule.StepCosts, tr schedule.Traits) float64 {
	f := genericFloor(p, costs)
	if tr.StepFloor != nil {
		if v := tr.StepFloor(p, costs); v > f {
			f = v
		}
	}
	return f
}

// MemoryFloor is the cheap admissible lower bound on the plan's peak
// memory estimate (memsim.Floor re-exported next to the time bound): it
// never exceeds memsim.Estimate(m, p).Total(), so a candidate whose floor
// breaks the budget can be discarded without the full estimate (and, for
// the V-schedule, without generating device programs).
func MemoryFloor(m model.Transformer, p core.Plan) float64 {
	return memsim.Floor(m, p)
}

// MemoryFeasible reports whether the plan's memory floor fits the device
// budget, evaluating the floor's terms cheapest-first so candidates whose
// training state alone breaks the budget never pay the in-flight hook
// (memsim.FeasibleFloor re-exported next to MemoryFloor).
func MemoryFeasible(m model.Transformer, p core.Plan, memBytes int64) bool {
	return memsim.FeasibleFloor(m, p, memBytes)
}

// genericFloor is the trait-free admissible lower bound: the maximum of
//
//   - the worst device's stream-busy time: its compute operations, plus the
//     pipeline transfers and data-parallel operations that ride the compute
//     stream when the implementation does not overlap them, plus the
//     optimizer step (and the exposed tail reduction when reductions
//     overlap: the optimizer still waits for the one issued after the last
//     backward);
//   - the pipeline warm-up floor: no operation of the most-downstream
//     device can start before one micro-batch has traversed every earlier
//     stage, after which the device still executes its whole program;
//   - the single-micro-batch latency: one micro-batch's full forward and
//     backward chain through every stage and cross-device boundary.
//
// All terms are evaluated with plain arithmetic and then shaved by
// schedule.BoundSlack (see schedule.StepCosts' replay for the
// chained-addition rounding argument), so the result never exceeds the
// simulated time.
func genericFloor(p core.Plan, c schedule.StepCosts) float64 {
	nm := p.NumMicro
	hosted := p.Loops // stages per device, pipelined or not
	compute := float64(nm*hosted) * (c.Fwd + c.Bwd)
	pip := p.Method.Pipelined() && p.PP > 1
	x := c.Transfer
	if !p.OverlapPP {
		x += c.PPStall
	}
	hasDP := p.DP > 1 || p.Sharding == core.DPFS
	dpInline := !p.OverlapDP && hasDP

	// Per-device floor of the data-parallel work on the compute stream:
	// every generator issues at least one reduction per hosted stage when
	// DP > 1, and at least one restore per hosted stage under DP-FS.
	var dpBusy float64
	if dpInline {
		if p.DP > 1 {
			dpBusy += float64(hosted) * c.Reduce
		}
		if p.Sharding == core.DPFS {
			dpBusy += float64(hosted) * c.Restore
		}
	}
	var tail float64
	if !dpInline && p.DP > 1 {
		tail = c.Reduce // exposed: the optimizer waits for the last reduce
	}

	ops := 4*nm*hosted + 4*p.PP + 16
	best := compute + dpBusy + tail + c.Opt

	if pip {
		nStages := p.Stages()
		owner := make([]int, nStages)
		for s := range owner {
			owner[s] = p.StageDevice(s)
		}
		// Worst-device busy including the transfers parked on its compute
		// stream (non-overlapped implementations only).
		if !p.OverlapPP {
			sends := make([]int, p.PP)
			for s := 0; s < nStages; s++ {
				if s+1 < nStages && owner[s+1] != owner[s] {
					sends[owner[s]] += nm // forward transfers out of stage s
				}
				if s > 0 && owner[s-1] != owner[s] {
					sends[owner[s]] += nm // backward transfers out of stage s
				}
			}
			worst := 0
			for _, n := range sends {
				if n > worst {
					worst = n
				}
			}
			// No exposed-reduction tail here: an overlapped reduction can
			// run concurrently with the trailing transfers, so only the
			// stream-busy ops and the optimizer may be summed.
			if v := compute + float64(worst)*x + dpBusy + c.Opt; v > best {
				best = v
			}
		}
		// Warm-up floor: the device whose earliest stage is deepest cannot
		// start before the chain reaching it, and still runs its full
		// compute afterwards.
		minStage := make([]int, p.PP)
		for d := range minStage {
			minStage[d] = nStages
		}
		for s := nStages - 1; s >= 0; s-- {
			minStage[owner[s]] = s
		}
		deepest := 0
		for _, s := range minStage {
			if s > deepest {
				deepest = s
			}
		}
		crossings := 0
		for s := 1; s <= deepest; s++ {
			if owner[s] != owner[s-1] {
				crossings++
			}
		}
		ramp := float64(deepest)*c.Fwd + float64(crossings)*x
		if v := ramp + compute + tail + c.Opt; v > best {
			best = v
		}
		// Single-micro-batch latency.
		total := 0
		for s := 1; s < nStages; s++ {
			if owner[s] != owner[s-1] {
				total++
			}
		}
		chain := float64(nStages)*(c.Fwd+c.Bwd) + float64(2*total)*x + tail + c.Opt
		if chain > best {
			best = chain
		}
	}
	return schedule.BoundSlack(best, ops)
}
