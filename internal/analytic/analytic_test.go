package analytic

import (
	"math"
	"strings"
	"testing"

	"bfpp/internal/core"
	"bfpp/internal/hw"
	"bfpp/internal/model"
)

func relErr(got, want float64) float64 { return math.Abs(got-want) / math.Abs(want) }

// Appendix A.3.2: GPT-3 pipeline intensity is ~7.1M flop/byte non-looped at
// NPP=4 and ~294K maximally looped; the 1T model gives 19.7M and 614K.
func TestIntensityPPMatchesPaper(t *testing.T) {
	gpt3 := model.GPT3()
	if got := IntensityPP(gpt3, 4, 1); relErr(got, 7.1e6) > 0.01 {
		t.Errorf("GPT-3 non-looped PP intensity = %.3g, want 7.1M", got)
	}
	if got := IntensityPP(gpt3, 4, 24); relErr(got, 294e3) > 0.01 {
		t.Errorf("GPT-3 looped PP intensity = %.3g, want 294K", got)
	}
	oneT := model.Model1T()
	if got := IntensityPP(oneT, 4, 1); relErr(got, 19.7e6) > 0.01 {
		t.Errorf("1T non-looped PP intensity = %.3g, want 19.7M", got)
	}
	if got := IntensityPP(oneT, 4, 32); relErr(got, 614e3) > 0.01 {
		t.Errorf("1T looped PP intensity = %.3g, want 614K", got)
	}
}

// Appendix A.3.3: TP intensity is 3072 for GPT-3 and 6400 for 1T at NTP=8.
func TestIntensityTPMatchesPaper(t *testing.T) {
	if got := IntensityTP(model.GPT3(), 8); got != 3072 {
		t.Errorf("GPT-3 TP intensity = %v, want 3072", got)
	}
	if got := IntensityTP(model.Model1T(), 8); got != 6400 {
		t.Errorf("1T TP intensity = %v, want 6400", got)
	}
}

// Appendix A.3.1: on an A100 with Sseq=2048, beta_net = ceil(I_IB/Sseq) = 4.
func TestBetaNetMatchesPaper(t *testing.T) {
	got := BetaNet(hw.A100(), hw.InfiniBandA100(), 2048)
	if got != 4 {
		t.Errorf("A100 beta_net = %v, want 4", got)
	}
	// Ethernet on the V100 cluster: the paper observes beta_net ~= 32
	// (Section 5.3).
	eth := BetaNet(hw.V100(), hw.Ethernet(), 1024)
	if eth < 24 || eth > 96 {
		t.Errorf("V100 Ethernet beta_net = %v, want ~32-80 (paper: >=32)", eth)
	}
}

// Eq. (20) and Eqs. (24)-(26).
func TestDPIntensities(t *testing.T) {
	if got := IntensityDP(8, 2, 1024); got != 16384 {
		t.Errorf("I_DP = %v, want 16384", got)
	}
	seq := 1024
	base := 2.0 / 3.0 * 2 * 1024
	if got := IntensityDPFS(core.NoPipelineDF, 4, 8, 2, seq); relErr(got, base) > 1e-12 {
		t.Errorf("I_FS = %v, want %v", got, base)
	}
	if got := IntensityDPFS(core.DepthFirst, 4, 8, 2, seq); relErr(got, 4*base) > 1e-12 {
		t.Errorf("I_FS-DF = %v, want %v", got, 4*base)
	}
	if got := IntensityDPFS(core.BreadthFirst, 4, 8, 2, seq); relErr(got, 8*base) > 1e-12 {
		t.Errorf("I_FS-BF = %v, want %v", got, 8*base)
	}
}

// Appendix A.3.3: expected TP overheads of ~11% (GPT-3) and ~5% (1T) on
// A100 NVLink.
func TestTPOverheadMatchesPaper(t *testing.T) {
	gpt3 := TPOverhead(model.GPT3(), 8, hw.A100(), hw.NVLinkA100())
	oneT := TPOverhead(model.Model1T(), 8, hw.A100(), hw.NVLinkA100())
	if gpt3 < 0.08 || gpt3 > 0.14 {
		t.Errorf("GPT-3 TP overhead = %.3f, want ~0.11", gpt3)
	}
	if oneT < 0.04 || oneT > 0.07 {
		t.Errorf("1T TP overhead = %.3f, want ~0.05", oneT)
	}
	if oneT >= gpt3 {
		t.Error("larger models should have lower TP overhead")
	}
}

// Figure 2a shapes: looped curves dominate non-looped, higher looping is
// better at small beta, pure DP crosses everything once beta > beta_net.
func TestFigure2Shapes(t *testing.T) {
	s := DefaultScenario()
	loop8, loop2 := s, s
	loop8.Loops = 8
	loop2.Loops = 2

	for _, beta := range []float64{1, 2, 4} {
		u8 := loop8.Utilization(core.BreadthFirst, beta)
		u2 := loop2.Utilization(core.BreadthFirst, beta)
		u1 := s.Utilization(core.GPipe, beta)
		if !(u8 > u2 && u2 > u1) {
			t.Errorf("beta=%v: looping should help: 8x=%.3f 2x=%.3f non=%.3f", beta, u8, u2, u1)
		}
	}
	// Pure DP reaches ~100% once beta >= beta_net.
	dp := s.Utilization(core.NoPipelineBF, 2*s.BetaNet)
	if dp < 0.95 {
		t.Errorf("pure DP at beta >> beta_net should approach 1, got %.3f", dp)
	}
	// But collapses at small beta.
	if got := s.Utilization(core.NoPipelineDF, 1); got > 0.35 {
		t.Errorf("pure DP at beta=1 should be inefficient, got %.3f", got)
	}
	// The jump near beta_min: looped at Nmb=NPP pays the PP penalty.
	atMin := loop8.Utilization(core.BreadthFirst, 1)
	above := loop8.Utilization(core.BreadthFirst, 9.0/8.0)
	if atMin >= above {
		t.Errorf("expected PP-overlap jump above beta_min: %.3f vs %.3f", atMin, above)
	}
}

// Figure 2b: removing overlap makes looped pipelines much more sensitive to
// the DP overhead (the paper's point about the renewed importance of
// overlap).
func TestFigure2OverlapMatters(t *testing.T) {
	with := DefaultScenario()
	with.Loops = 8
	without := with
	without.Overlap = false
	for _, beta := range []float64{1, 2, 4} {
		a := with.Utilization(core.BreadthFirst, beta)
		b := without.Utilization(core.BreadthFirst, beta)
		if b >= a {
			t.Errorf("beta=%v: overlap should help: %.3f vs %.3f", beta, a, b)
		}
	}
	// Depth-first benefits less from overlap than breadth-first at small
	// batch (window NPP/Nmb vs 1).
	dfGain := with.Utilization(core.DepthFirst, 4) / without.Utilization(core.DepthFirst, 4)
	bfGain := with.Utilization(core.BreadthFirst, 4) / without.Utilization(core.BreadthFirst, 4)
	if dfGain > bfGain {
		t.Errorf("BF should gain at least as much from overlap: df %.3f bf %.3f", dfGain, bfGain)
	}
}

func TestUtilizationBounds(t *testing.T) {
	s := DefaultScenario()
	for _, m := range []core.Method{core.GPipe, core.OneFOneB, core.DepthFirst,
		core.BreadthFirst, core.NoPipelineDF, core.NoPipelineBF} {
		for _, beta := range []float64{0.5, 1, 2, 4, 8, 16} {
			u := s.Utilization(m, beta)
			if u < 0 || u > 1 {
				t.Errorf("%v beta=%v: utilization %v out of [0,1]", m, beta, u)
			}
		}
	}
	// Unreachable batch size.
	if u := s.Utilization(core.NoPipelineDF, 0.1); u != 0 {
		t.Errorf("sub-minimum beta should give 0, got %v", u)
	}
}

func TestCurveSampling(t *testing.T) {
	s := DefaultScenario()
	betas := []float64{1, 2, 4, 8, 16}
	c := s.Curve(core.BreadthFirst, betas)
	if len(c) != len(betas) {
		t.Fatalf("curve has %d points, want %d", len(c), len(betas))
	}
	for i := 1; i < len(c); i++ {
		if c[i].Util < c[i-1].Util {
			t.Errorf("BF curve should be non-decreasing in beta: %+v", c)
		}
	}
}

// Table 4.1 qualitative relations.
func TestTable41Relations(t *testing.T) {
	rows := Table41(DefaultTableParams())
	byName := map[string]TableRow{}
	for _, r := range rows {
		byName[r.Method] = r
	}
	bf := byName["Breadth-first"]
	df := byName["Depth-first"]
	ob := byName["1F1B"]
	gp := byName["GPipe"]
	bffs := byName["Breadth-first (DP-FS)"]
	obfs := byName["1F1B (DP-FS)"]
	np := byName["No pipeline"]
	ch := byName["Chimera"]

	if bf.Bubble >= gp.Bubble || df.Bubble >= ob.Bubble {
		t.Error("looped schedules should have smaller bubbles")
	}
	if bf.Bubble != df.Bubble {
		t.Error("BF and DF bubbles should match (Eq. 9)")
	}
	if bf.DPOverlap <= df.DPOverlap || bf.DPOverlap <= gp.DPOverlap {
		t.Error("BF should have the best DP overlap")
	}
	if bffs.DPNetwork >= obfs.DPNetwork {
		t.Error("BF DP-FS network (3) should be far below 1F1B DP-FS (3*Nmb)")
	}
	if bffs.StateMemory != 2 || obfs.StateMemory != 2 {
		t.Error("DP-FS state memory should be the 2-layer double buffer")
	}
	if np.Bubble != 0 || np.PPNetwork != 0 {
		t.Error("no-pipeline should have no bubble or PP traffic")
	}
	if ch.Bubble != 0.5 {
		t.Errorf("Chimera bubble = %v, want 1/NCh = 0.5", ch.Bubble)
	}
	if ch.StateMemory <= gp.StateMemory {
		t.Error("Chimera stores NCh times more state")
	}
	if !bf.EasyPPOverlap || ob.EasyPPOverlap || df.EasyPPOverlap {
		t.Error("PP overlap ease misclassified")
	}
	if !bf.FlexibleNmb || df.FlexibleNmb || ch.FlexibleNmb {
		t.Error("Nmb flexibility misclassified")
	}
	// 1F1B activation cap vs GPipe growth: strict once Nmb > 2*PP.
	big := DefaultTableParams()
	big.Nmb = 32
	bigRows := Table41(big)
	byNameBig := map[string]TableRow{}
	for _, r := range bigRows {
		byNameBig[r.Method] = r
	}
	if byNameBig["1F1B"].ActivationMemory >= byNameBig["GPipe"].ActivationMemory {
		t.Error("1F1B activation memory should be below GPipe at large Nmb")
	}
}

func TestFormatTable41(t *testing.T) {
	s := FormatTable41(Table41(DefaultTableParams()))
	if !strings.Contains(s, "Breadth-first (DP-FS)") || !strings.Contains(s, "Chimera") {
		t.Error("formatted table missing rows")
	}
	if len(strings.Split(strings.TrimSpace(s), "\n")) != 10 {
		t.Errorf("expected header + 9 rows:\n%s", s)
	}
}
