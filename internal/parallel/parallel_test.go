package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"bfpp/internal/fault"
)

// TestMapCtxFaultStallsPreserveDeterminism: injected PoolItem stalls change
// timing only — results and error reporting stay byte-identical to the
// uninjected pool at every worker count.
func TestMapCtxFaultStallsPreserveDeterminism(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	fn := func(i int, item int) (int, error) { return item * item, nil }
	want, err := Map(1, items, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		inj := fault.NewSeeded(9).Rate(fault.PoolItem, 0.3, fault.Fault{Kind: fault.Delay, Sleep: 100 * time.Microsecond})
		ctx := fault.With(context.Background(), inj)
		got, err := MapCtx(ctx, workers, items, fn)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d item %d: %d != %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestMapCtxCancelDuringFaultStall: a cancelled context interrupts an
// injected stall promptly instead of sleeping it out.
func TestMapCtxCancelDuringFaultStall(t *testing.T) {
	inj := fault.NewScript(fault.Rule{
		Point: fault.PoolItem, Times: 8,
		Fault: fault.Fault{Kind: fault.Delay, Sleep: time.Hour},
	})
	ctx, cancel := context.WithCancel(fault.With(context.Background(), inj))
	time.AfterFunc(10*time.Millisecond, cancel)
	items := []int{0, 1, 2, 3}
	start := time.Now()
	_, err := MapCtx(ctx, 2, items, func(i int, item int) (int, error) { return item, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; stall was not interruptible", elapsed)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 1000)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 7, 64} {
		out, err := Map(workers, items, func(_ int, v int) (int, error) {
			return v * 3, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*3 {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*3)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(4, nil, func(_ int, v int) (int, error) { return v, nil })
	if err != nil || out != nil {
		t.Fatalf("empty Map = (%v, %v), want (nil, nil)", out, err)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	fail := map[int]bool{7: true, 3: true, 90: true}
	for _, workers := range []int{1, 8} {
		_, err := Map(workers, items, func(i int, _ int) (int, error) {
			if fail[i] {
				return 0, fmt.Errorf("item %d failed", i)
			}
			return 0, nil
		})
		if err == nil || err.Error() != "item 3 failed" {
			t.Fatalf("workers=%d: err = %v, want lowest-index error (item 3)", workers, err)
		}
	}
}

func TestMapEvaluatesConcurrently(t *testing.T) {
	// With more workers than a serial dependency would allow, all items
	// must still be evaluated exactly once.
	var count atomic.Int64
	items := make([]struct{}, 500)
	_, err := Map(16, items, func(_ int, _ struct{}) (struct{}, error) {
		count.Add(1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := count.Load(); got != 500 {
		t.Fatalf("evaluated %d items, want 500", got)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	items := []int{1, 2, 3, 4, 5}
	if err := ForEach(3, items, func(_ int, v int) error {
		sum.Add(int64(v))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 15 {
		t.Fatalf("sum = %d, want 15", sum.Load())
	}
	wantErr := errors.New("boom")
	if err := ForEach(3, items, func(i int, _ int) error {
		if i == 2 {
			return wantErr
		}
		return nil
	}); !errors.Is(err, wantErr) {
		t.Fatalf("ForEach error = %v, want %v", err, wantErr)
	}
}

func TestResolveAndDefault(t *testing.T) {
	defer SetDefaultWorkers(0)
	if got := Resolve(5); got != 5 {
		t.Errorf("Resolve(5) = %d", got)
	}
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetDefaultWorkers(3)
	if got := Resolve(0); got != 3 {
		t.Errorf("Resolve(0) with default 3 = %d", got)
	}
	if got := Resolve(-1); got != 3 {
		t.Errorf("Resolve(-1) with default 3 = %d", got)
	}
	SetDefaultWorkers(0)
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("DefaultWorkers after reset = %d", got)
	}
}
