package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapCtxBackgroundMatchesMap pins that a background context changes
// nothing: same results, same lowest-index error rule.
func TestMapCtxBackgroundMatchesMap(t *testing.T) {
	items := []int{1, 2, 3, 4, 5, 6, 7, 8}
	fn := func(i int, v int) (int, error) { return v * v, nil }
	want, _ := Map(4, items, fn)
	got, err := MapCtx(context.Background(), 4, items, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("index %d: %d != %d", i, got[i], want[i])
		}
	}
}

// TestMapCtxCancelStopsNewItems asserts that after cancellation no new
// item starts, in-flight items complete, and the call returns ctx.Err().
func TestMapCtxCancelStopsNewItems(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int64
		items := make([]int, 1000)
		_, err := MapCtx(ctx, workers, items, func(i int, _ int) (struct{}, error) {
			if started.Add(1) == 3 {
				cancel()
			}
			return struct{}{}, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Each worker may finish its in-flight item and start at most one
		// more racing the cancellation; nothing close to the full list runs.
		if n := started.Load(); n > int64(3+2*workers) {
			t.Errorf("workers=%d: %d items started after cancel (want <= %d)", workers, n, 3+2*workers)
		}
		cancel()
	}
}

// TestMapCtxCancelWinsOverItemErrors pins the precedence rule: once the
// context is cancelled the call reports ctx.Err(), not a timing-dependent
// item error.
func TestMapCtxCancelWinsOverItemErrors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	items := []int{0, 1, 2, 3}
	_, err := MapCtx(ctx, 2, items, func(i int, _ int) (struct{}, error) {
		cancel()
		return struct{}{}, errors.New("item error")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestMapCtxDeadline asserts an expired deadline aborts the map with
// context.DeadlineExceeded.
func TestMapCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	items := make([]int, 100000)
	_, err := MapCtx(ctx, 2, items, func(i int, _ int) (struct{}, error) {
		time.Sleep(100 * time.Microsecond)
		return struct{}{}, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestMapCtxDrainsGoroutines asserts a cancelled pool leaks nothing: the
// goroutine count returns to its pre-call level (with retries, since the
// runtime reaps asynchronously).
func TestMapCtxDrainsGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	items := make([]int, 10000)
	var n atomic.Int64
	_, err := MapCtx(ctx, 8, items, func(i int, _ int) (struct{}, error) {
		if n.Add(1) == 2 {
			cancel()
		}
		return struct{}{}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	cancel()
	for attempt := 0; ; attempt++ {
		if runtime.NumGoroutine() <= before {
			break
		}
		if attempt > 50 {
			t.Fatalf("goroutines did not drain: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestForEachCtxCancelled asserts the ForEach wrapper propagates
// cancellation.
func TestForEachCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEachCtx(ctx, 2, []int{1, 2, 3}, func(int, int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
