// Package parallel provides the bounded worker-pool primitives used by the
// grid search, the figure generators and the trade-off extrapolation to fan
// independent simulations out across CPU cores.
//
// The package guarantees determinism: Map returns results in input order
// regardless of scheduling, and when several items fail it reports the error
// of the lowest-indexed item — exactly the error a serial loop would have
// hit first. Callers therefore produce byte-identical output whether they
// run with 1 worker or many.
//
// The default worker count is runtime.GOMAXPROCS(0); SetDefaultWorkers
// overrides it process-wide (the commands expose it as -workers).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers holds the process-wide override; zero means "use
// GOMAXPROCS at call time".
var defaultWorkers atomic.Int64

// DefaultWorkers returns the worker count used when a caller passes 0:
// the SetDefaultWorkers override if set, else runtime.GOMAXPROCS(0).
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetDefaultWorkers overrides the process-wide default worker count.
// n <= 0 restores the GOMAXPROCS default.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Resolve maps a caller-supplied worker count to an effective one:
// n > 0 is used as-is, anything else resolves to DefaultWorkers().
func Resolve(n int) int {
	if n > 0 {
		return n
	}
	return DefaultWorkers()
}

// Map applies fn to every item on a bounded worker pool and returns the
// results in input order. workers <= 0 resolves to DefaultWorkers(); with
// one worker (or one item) it degenerates to a plain serial loop.
//
// All items are evaluated even when some fail, and the returned error is
// the one attached to the lowest index, so error reporting is independent
// of goroutine scheduling.
func Map[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	n := len(items)
	if n == 0 {
		return nil, nil
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	out := make([]R, n)
	if workers <= 1 {
		// Same contract as the concurrent path: every item is evaluated
		// and the lowest-indexed error wins.
		var firstErr error
		for i, item := range items {
			r, err := fn(i, item)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			out[i] = r
		}
		if firstErr != nil {
			return nil, firstErr
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				r, err := fn(i, items[i])
				if err != nil {
					errs[i] = err
					continue
				}
				out[i] = r
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ForEach is Map for side-effecting functions with no result value.
func ForEach[T any](workers int, items []T, fn func(i int, item T) error) error {
	_, err := Map(workers, items, func(i int, item T) (struct{}, error) {
		return struct{}{}, fn(i, item)
	})
	return err
}
