// Package parallel provides the bounded worker-pool primitives used by the
// grid search, the figure generators and the trade-off extrapolation to fan
// independent simulations out across CPU cores.
//
// The package guarantees determinism: Map returns results in input order
// regardless of scheduling, and when several items fail it reports the error
// of the lowest-indexed item — exactly the error a serial loop would have
// hit first. Callers therefore produce byte-identical output whether they
// run with 1 worker or many.
//
// The context-aware variants (MapCtx, ForEachCtx) additionally observe
// cancellation: workers check the context between items, so an in-flight
// item finishes but no new item starts once the context is done, the pool
// drains promptly and the call returns ctx.Err(). Cancellation takes
// precedence over item errors (which are timing-dependent once the pool
// stops draining the work list); on the uncancelled path the lowest-index
// rule applies unchanged, so results remain deterministic.
//
// # Worker counts
//
// Callers pass an explicit worker count; 0 resolves to
// runtime.GOMAXPROCS(0). The process-wide SetDefaultWorkers override is
// deprecated: it is a compatibility shim for single-job command-line use
// only, and concurrent callers (e.g. several server requests) would race
// on it, each clobbering the others' budgets. New code should thread an
// explicit worker count through its options (search.Options.Workers, the
// service request Workers field) instead.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"bfpp/internal/fault"
)

// defaultWorkers holds the process-wide override; zero means "use
// GOMAXPROCS at call time".
var defaultWorkers atomic.Int64

// DefaultWorkers returns the worker count used when a caller passes 0:
// the SetDefaultWorkers override if set, else runtime.GOMAXPROCS(0).
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetDefaultWorkers overrides the process-wide default worker count.
// n <= 0 restores the GOMAXPROCS default.
//
// Deprecated: this is a process-global and therefore a hazard for any
// program running more than one job at a time — concurrent requests would
// race on the single override, silently steering each other's pools. It
// remains only as a compatibility shim for the single-job CLI flags;
// plumb an explicit Workers value through the call path instead
// (search.Options.Workers, figures.Config.Workers, tradeoff.Curve's
// workers argument, the service requests' Workers field).
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	//lint:allow globalstate deprecated compat shim documented above; new code threads explicit Workers values
	defaultWorkers.Store(int64(n))
}

// Resolve maps a caller-supplied worker count to an effective one:
// n > 0 is used as-is, anything else resolves to DefaultWorkers().
func Resolve(n int) int {
	if n > 0 {
		return n
	}
	return DefaultWorkers()
}

// Map applies fn to every item on a bounded worker pool and returns the
// results in input order. workers <= 0 resolves to DefaultWorkers(); with
// one worker (or one item) it degenerates to a plain serial loop.
//
// All items are evaluated even when some fail, and the returned error is
// the one attached to the lowest index, so error reporting is independent
// of goroutine scheduling.
func Map[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	//lint:allow ctxfirst Map is the documented context-free compat wrapper; cancellable callers use MapCtx
	return MapCtx(context.Background(), workers, items, fn)
}

// MapCtx is Map under a context: workers observe ctx between items (an
// in-flight fn call completes; no new item starts once ctx is done), the
// pool drains promptly, and the call reports ctx.Err(). Cancellation takes
// precedence over item errors; without cancellation the result and the
// lowest-index error rule are exactly Map's.
func MapCtx[T, R any](ctx context.Context, workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	n := len(items)
	if n == 0 {
		return nil, ctx.Err()
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	out := make([]R, n)
	// The context may carry a fault injector (the chaos layer's PoolItem
	// point: a straggling worker). The nil check is the only cost when off.
	inj := fault.From(ctx)
	if workers <= 1 {
		// Same contract as the concurrent path: every item is evaluated
		// and the lowest-indexed error wins, unless the context cancels
		// the loop first.
		var firstErr error
		for i, item := range items {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := injectItemStall(ctx, inj, i); err != nil {
				return nil, err
			}
			r, err := fn(i, item)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			out[i] = r
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if firstErr != nil {
			return nil, firstErr
		}
		return out, nil
	}
	errs := make([]error, n)
	done := ctx.Done()
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if injectItemStall(ctx, inj, i) != nil {
					return // ctx cancelled mid-stall; Wait reports ctx.Err()
				}
				r, err := fn(i, items[i])
				if err != nil {
					errs[i] = err
					continue
				}
				out[i] = r
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// injectItemStall sleeps (cancellably) when the injector delays this item.
// Stalls never change results — only timing — so the pool's determinism
// contract survives any fault schedule.
func injectItemStall(ctx context.Context, inj fault.Injector, i int) error {
	if inj == nil {
		return nil
	}
	if f, ok := inj.At(fault.PoolItem, i); ok && f.Kind == fault.Delay {
		return fault.SleepCtx(ctx, f.Sleep)
	}
	return nil
}

// ForEach is Map for side-effecting functions with no result value.
func ForEach[T any](workers int, items []T, fn func(i int, item T) error) error {
	//lint:allow ctxfirst ForEach is the documented context-free compat wrapper; cancellable callers use ForEachCtx
	return ForEachCtx(context.Background(), workers, items, fn)
}

// ForEachCtx is MapCtx for side-effecting functions with no result value.
func ForEachCtx[T any](ctx context.Context, workers int, items []T, fn func(i int, item T) error) error {
	_, err := MapCtx(ctx, workers, items, func(i int, item T) (struct{}, error) {
		return struct{}{}, fn(i, item)
	})
	return err
}
