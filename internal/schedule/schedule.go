// Package schedule generates the per-device operation programs of the
// pipeline schedules compared in the paper (Section 4.1, Figures 4 and 9)
// and of the reproduction's extension schedules.
//
// # Architecture
//
// Schedule generation is organized as a registry of pluggable generators:
//
//   - core.RegisterMethod publishes a method's static metadata (name,
//     looped/pipelined/forward-first traits, stage placement, plan
//     constraints) to internal/core, where Plan.Validate and the stage
//     placement helpers consume it.
//   - Register publishes a Generator — the object that builds the device
//     programs — together with its Traits: search-family membership,
//     implementation overlap, the sharding modes to enumerate, and the
//     memory-model hooks memsim consumes (in-flight activation pairs,
//     per-stage aggregation, weight stashing).
//   - Generate dispatches a plan to its registered generator; Cached
//     memoizes generation and invariant checking per program-determining
//     key (including each generator's KeyExtra parameter).
//   - The search layer (internal/search) derives its Figure 7 method
//     families from the registry instead of a hard-coded list, so a new
//     schedule becomes searchable by registering it here.
//
// All generators are written on top of the shared program builder
// (progBuilder), which owns the op encoding and the recurring
// data-parallel patterns. See ROADMAP.md ("Adding a new schedule") for
// the end-to-end recipe.
//
// # Registered schedules
//
//   - GPipe: non-looped, forward-first (Huang et al., 2018)
//   - 1F1B: non-looped, backward-priority (Harlap et al., 2018)
//   - Depth-first: looped, micro-batches in sequences of N_PP with backward
//     priority — the Megatron-LM interleaved schedule (Narayanan et al., 2021)
//   - Breadth-first: looped, all micro-batches through each local stage,
//     forward-first — the paper's contribution
//   - No-pipeline depth-first and breadth-first gradient accumulation
//     (Appendix C)
//   - Hybrid: the depth/breadth hybrid conjectured in Section 4.2, with a
//     configurable micro-batch sequence length (an extension of this
//     reproduction)
//   - WS-1F1B: 1F1B with PipeDream-style weight stashing (Harlap et al.,
//     2018) — overlapped communication, stashed weight versions (extension)
//   - V-schedule: the controllable-memory V-schedule (Qi et al., 2024) —
//     zigzag stage placement with a tunable in-flight cap (extension)
//
// A program is a flat list of operations in issue order. Compute operations
// (Forward, Backward) run on the device's compute stream; data-parallel
// operations (Restore, Reduce) run on the DP network stream when the
// implementation overlaps them, or inline on the compute stream otherwise.
// The engine package maps programs onto the discrete-event simulator and
// inserts the pipeline-parallel transfers implied by stage adjacency.
package schedule

import (
	"fmt"

	"bfpp/internal/core"
)

// Kind enumerates program operation types.
type Kind int

const (
	// Forward is the forward pass of one stage for one micro-batch.
	Forward Kind = iota
	// Backward is the backward pass (including the activation-checkpoint
	// recompute) of one stage for one micro-batch.
	Backward
	// Restore reconstructs (all-gathers) a stage's weights under DP-FS.
	// Micro is -1 when the restore covers the whole batch (breadth-first
	// aggregation) and a micro-batch index when repeated per micro-batch.
	Restore
	// Reduce reduces a stage's gradients across the data-parallel group
	// (all-reduce under DP0, reduce-scatter under DP-PS/DP-FS). Micro is -1
	// for a per-batch reduction and a micro-batch index when repeated.
	Reduce
	// Optimize is the optimizer step for the device's (shard of the)
	// training state; exactly one per device, after all reductions.
	Optimize
)

// String returns a short mnemonic for the kind.
func (k Kind) String() string {
	switch k {
	case Forward:
		return "F"
	case Backward:
		return "B"
	case Restore:
		return "W"
	case Reduce:
		return "G"
	case Optimize:
		return "S"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Op is one operation in a device program.
type Op struct {
	// Kind is the operation type.
	Kind Kind
	// Stage is the global stage index (-1 for Optimize).
	Stage int
	// Micro is the micro-batch index, or -1 for per-stage/per-batch ops.
	Micro int
}

// String renders like "F3.2" (forward, stage 3, micro-batch 2) or "G1".
func (o Op) String() string {
	if o.Micro < 0 {
		if o.Stage < 0 {
			return o.Kind.String()
		}
		return fmt.Sprintf("%v%d", o.Kind, o.Stage)
	}
	return fmt.Sprintf("%v%d.%d", o.Kind, o.Stage, o.Micro)
}

// Program is the ordered operation list of one pipeline device.
type Program []Op

// Schedule is the full set of per-device programs for one pipeline-parallel
// group (every data-parallel replica executes the same programs).
type Schedule struct {
	// Plan is the configuration the schedule was generated for.
	Plan core.Plan
	// Devices holds one program per pipeline rank (length Plan.PP, or 1
	// for the no-pipeline methods).
	Devices []Program
}

// Generate builds the schedule for the plan's method by dispatching to the
// registered generator. The plan must already be valid for the target
// model; Generate only checks structural fields it depends on.
func Generate(p core.Plan) (*Schedule, error) {
	if p.PP <= 0 || p.NumMicro <= 0 || p.Loops <= 0 {
		return nil, fmt.Errorf("schedule: invalid plan %v", p)
	}
	if p.Method.Pipelined() && p.NumMicro < p.PP {
		return nil, fmt.Errorf("schedule: pipeline needs NumMicro >= PP (%d < %d)", p.NumMicro, p.PP)
	}
	g, ok := Lookup(p.Method)
	if !ok {
		return nil, fmt.Errorf("schedule: no generator registered for method %v (register one with schedule.Register)", p.Method)
	}
	return g.Generate(p)
}

// needReduce reports whether the plan requires gradient reductions.
func needReduce(p core.Plan) bool { return p.DP > 1 }
