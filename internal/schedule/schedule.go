// Package schedule generates the per-device operation programs for the
// pipeline schedules compared in the paper (Section 4.1, Figures 4 and 9):
//
//   - GPipe: non-looped, forward-first (Huang et al., 2018)
//   - 1F1B: non-looped, backward-priority (Harlap et al., 2018)
//   - Depth-first: looped, micro-batches in sequences of N_PP with backward
//     priority — the Megatron-LM interleaved schedule (Narayanan et al., 2021)
//   - Breadth-first: looped, all micro-batches through each local stage,
//     forward-first — the paper's contribution
//   - No-pipeline depth-first and breadth-first gradient accumulation
//     (Appendix C)
//   - Hybrid: the depth/breadth hybrid conjectured in Section 4.2, with a
//     configurable micro-batch sequence length (an extension of this
//     reproduction)
//
// A program is a flat list of operations in issue order. Compute operations
// (Forward, Backward) run on the device's compute stream; data-parallel
// operations (Restore, Reduce) run on the DP network stream when the
// implementation overlaps them, or inline on the compute stream otherwise.
// The engine package maps programs onto the discrete-event simulator and
// inserts the pipeline-parallel transfers implied by stage adjacency.
package schedule

import (
	"fmt"

	"bfpp/internal/core"
)

// Kind enumerates program operation types.
type Kind int

const (
	// Forward is the forward pass of one stage for one micro-batch.
	Forward Kind = iota
	// Backward is the backward pass (including the activation-checkpoint
	// recompute) of one stage for one micro-batch.
	Backward
	// Restore reconstructs (all-gathers) a stage's weights under DP-FS.
	// Micro is -1 when the restore covers the whole batch (breadth-first
	// aggregation) and a micro-batch index when repeated per micro-batch.
	Restore
	// Reduce reduces a stage's gradients across the data-parallel group
	// (all-reduce under DP0, reduce-scatter under DP-PS/DP-FS). Micro is -1
	// for a per-batch reduction and a micro-batch index when repeated.
	Reduce
	// Optimize is the optimizer step for the device's (shard of the)
	// training state; exactly one per device, after all reductions.
	Optimize
)

// String returns a short mnemonic for the kind.
func (k Kind) String() string {
	switch k {
	case Forward:
		return "F"
	case Backward:
		return "B"
	case Restore:
		return "W"
	case Reduce:
		return "G"
	case Optimize:
		return "S"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Op is one operation in a device program.
type Op struct {
	// Kind is the operation type.
	Kind Kind
	// Stage is the global stage index (-1 for Optimize).
	Stage int
	// Micro is the micro-batch index, or -1 for per-stage/per-batch ops.
	Micro int
}

// String renders like "F3.2" (forward, stage 3, micro-batch 2) or "G1".
func (o Op) String() string {
	if o.Micro < 0 {
		if o.Stage < 0 {
			return o.Kind.String()
		}
		return fmt.Sprintf("%v%d", o.Kind, o.Stage)
	}
	return fmt.Sprintf("%v%d.%d", o.Kind, o.Stage, o.Micro)
}

// Program is the ordered operation list of one pipeline device.
type Program []Op

// Schedule is the full set of per-device programs for one pipeline-parallel
// group (every data-parallel replica executes the same programs).
type Schedule struct {
	// Plan is the configuration the schedule was generated for.
	Plan core.Plan
	// Devices holds one program per pipeline rank (length Plan.PP, or 1
	// for the no-pipeline methods).
	Devices []Program
}

// Generate builds the schedule for the plan's method. The plan must already
// be valid for the target model; Generate only checks structural fields it
// depends on.
func Generate(p core.Plan) (*Schedule, error) {
	if p.PP <= 0 || p.NumMicro <= 0 || p.Loops <= 0 {
		return nil, fmt.Errorf("schedule: invalid plan %v", p)
	}
	if p.Method.Pipelined() && p.NumMicro < p.PP {
		return nil, fmt.Errorf("schedule: pipeline needs NumMicro >= PP (%d < %d)", p.NumMicro, p.PP)
	}
	var s *Schedule
	switch p.Method {
	case core.GPipe:
		s = genGPipe(p)
	case core.OneFOneB:
		s = genOneFOneB(p)
	case core.DepthFirst:
		if p.NumMicro%p.PP != 0 {
			return nil, fmt.Errorf("schedule: depth-first needs NumMicro %% PP == 0")
		}
		s = genDepthFirst(p)
	case core.BreadthFirst:
		s = genBreadthFirst(p)
	case core.Hybrid:
		q := p.SequenceLen()
		if q%p.PP != 0 || p.NumMicro%q != 0 {
			return nil, fmt.Errorf("schedule: hybrid needs Sequence %% PP == 0 and NumMicro %% Sequence == 0")
		}
		s = genSequenced(p, q)
	case core.NoPipelineDF:
		s = genNoPipelineDF(p)
	case core.NoPipelineBF:
		s = genNoPipelineBF(p)
	default:
		return nil, fmt.Errorf("schedule: unknown method %v", p.Method)
	}
	return s, nil
}

// needReduce reports whether the plan requires gradient reductions.
func needReduce(p core.Plan) bool { return p.DP > 1 }

// appendReduces appends per-stage reductions for the device's stages. With
// a non-overlapping implementation (Megatron-LM) the reductions are bunched
// after the compute program, which is also where this helper is invoked.
func appendReduces(prog Program, p core.Plan, rank int) Program {
	if !needReduce(p) {
		return prog
	}
	stages := p.DeviceStages(rank)
	for i := len(stages) - 1; i >= 0; i-- {
		prog = append(prog, Op{Kind: Reduce, Stage: stages[i], Micro: -1})
	}
	return prog
}

// genGPipe: forward pass for all micro-batches, then backward pass
// (Figure 4a). One stage per device.
func genGPipe(p core.Plan) *Schedule {
	devs := make([]Program, p.PP)
	for r := 0; r < p.PP; r++ {
		var prog Program
		for mb := 0; mb < p.NumMicro; mb++ {
			prog = append(prog, Op{Forward, r, mb})
		}
		for mb := 0; mb < p.NumMicro; mb++ {
			prog = append(prog, Op{Backward, r, mb})
		}
		prog = appendReduces(prog, p, r)
		prog = append(prog, Op{Optimize, -1, -1})
		devs[r] = prog
	}
	return &Schedule{Plan: p, Devices: devs}
}

// genOneFOneB: warmup of PP-rank-1 forwards, then strict one-forward /
// one-backward alternation, then a backward drain (Figure 4b).
func genOneFOneB(p core.Plan) *Schedule {
	devs := make([]Program, p.PP)
	for r := 0; r < p.PP; r++ {
		warmup := p.PP - r - 1
		if warmup > p.NumMicro {
			warmup = p.NumMicro
		}
		var prog Program
		for mb := 0; mb < warmup; mb++ {
			prog = append(prog, Op{Forward, r, mb})
		}
		for i := 0; i < p.NumMicro-warmup; i++ {
			prog = append(prog, Op{Forward, r, warmup + i})
			prog = append(prog, Op{Backward, r, i})
		}
		for mb := p.NumMicro - warmup; mb < p.NumMicro; mb++ {
			prog = append(prog, Op{Backward, r, mb})
		}
		prog = appendReduces(prog, p, r)
		prog = append(prog, Op{Optimize, -1, -1})
		devs[r] = prog
	}
	return &Schedule{Plan: p, Devices: devs}
}

// Sequenced unit-step helpers, shared by the depth-first schedule (the
// Megatron-LM interleaved schedule, sequence length q = PP) and the hybrid
// schedule of Section 4.2 (q > PP). Micro-batches are processed in groups
// of q; within a group the device runs its first local stage for all q
// micro-batches, then its second, and so on, prioritizing backward work
// once warmed up.
func seqStep(p core.Plan, q, k int, backward bool) (chunk, micro int) {
	group := k / (q * p.Loops)
	within := k % (q * p.Loops)
	chunk = within / q
	if backward {
		chunk = p.Loops - 1 - chunk
	}
	micro = group*q + within%q
	return chunk, micro
}

// genDepthFirst follows the Megatron-LM interleaved 1F1B structure:
// warmup = 2*(PP-rank-1) + (Loops-1)*PP unit forward steps, then
// alternating forward/backward unit steps, then a backward drain.
func genDepthFirst(p core.Plan) *Schedule {
	return genSequenced(p, p.PP)
}

// genSequenced generates the depth-first family with micro-batch sequences
// of length q; q = PP is plain depth-first, larger q is the hybrid, whose
// extra in-flight micro-batches absorb transfer delays (Section 4.2).
func genSequenced(p core.Plan, q int) *Schedule {
	devs := make([]Program, p.PP)
	total := p.NumMicro * p.Loops
	for r := 0; r < p.PP; r++ {
		warmup := 2*(p.PP-r-1) + (p.Loops-1)*q
		if warmup > total {
			warmup = total
		}
		var prog Program
		emitF := func(k int) {
			c, mb := seqStep(p, q, k, false)
			prog = append(prog, Op{Forward, c*p.PP + r, mb})
		}
		emitB := func(k int) {
			c, mb := seqStep(p, q, k, true)
			prog = append(prog, Op{Backward, c*p.PP + r, mb})
		}
		for k := 0; k < warmup; k++ {
			emitF(k)
		}
		for i := 0; i < total-warmup; i++ {
			emitF(warmup + i)
			emitB(i)
		}
		for k := total - warmup; k < total; k++ {
			emitB(k)
		}
		prog = appendReduces(prog, p, r)
		prog = append(prog, Op{Optimize, -1, -1})
		devs[r] = prog
	}
	return &Schedule{Plan: p, Devices: devs}
}

// genBreadthFirst is the paper's schedule (Figure 4d): forward-first, each
// local stage processes the entire batch before the next stage starts, and
// the backward pass mirrors it in reverse. Data-parallel operations
// aggregate per stage: one restore before each pass's first use of a stage
// and one reduction after the stage's last backward, which is what makes
// the schedule compatible with DP-FS (Section 4.2).
func genBreadthFirst(p core.Plan) *Schedule {
	devs := make([]Program, p.PP)
	for r := 0; r < p.PP; r++ {
		var prog Program
		for l := 0; l < p.Loops; l++ {
			s := l*p.PP + r
			if p.Sharding == core.DPFS {
				prog = append(prog, Op{Restore, s, -1})
			}
			for mb := 0; mb < p.NumMicro; mb++ {
				prog = append(prog, Op{Forward, s, mb})
			}
		}
		for l := p.Loops - 1; l >= 0; l-- {
			s := l*p.PP + r
			if p.Sharding == core.DPFS {
				prog = append(prog, Op{Restore, s, -1})
			}
			for mb := 0; mb < p.NumMicro; mb++ {
				prog = append(prog, Op{Backward, s, mb})
			}
			if needReduce(p) {
				prog = append(prog, Op{Reduce, s, -1})
			}
		}
		prog = append(prog, Op{Optimize, -1, -1})
		devs[r] = prog
	}
	return &Schedule{Plan: p, Devices: devs}
}

// genNoPipelineDF is conventional gradient accumulation (Figure 9a/9b):
// each micro-batch runs its full forward and backward before the next one.
// Under DP-FS every stage must be restored in both passes and reduced in
// the backward pass for every micro-batch — the repetition the paper's
// Eq. (24) penalizes.
func genNoPipelineDF(p core.Plan) *Schedule {
	stages := p.Loops // stage granularity on the single device
	var prog Program
	fs := p.Sharding == core.DPFS
	for mb := 0; mb < p.NumMicro; mb++ {
		for s := 0; s < stages; s++ {
			if fs {
				prog = append(prog, Op{Restore, s, mb})
			}
			prog = append(prog, Op{Forward, s, mb})
		}
		for s := stages - 1; s >= 0; s-- {
			if fs {
				prog = append(prog, Op{Restore, s, mb})
			}
			prog = append(prog, Op{Backward, s, mb})
			if fs && needReduce(p) {
				prog = append(prog, Op{Reduce, s, mb})
			}
		}
	}
	if !fs && needReduce(p) {
		for s := stages - 1; s >= 0; s-- {
			prog = append(prog, Op{Reduce, s, -1})
		}
	}
	prog = append(prog, Op{Optimize, -1, -1})
	return &Schedule{Plan: p, Devices: []Program{prog}}
}

// genNoPipelineBF is the breadth-first gradient accumulation of Appendix C
// (Figure 9c/9d): stages are processed breadth-first across micro-batches,
// so each stage is restored once per pass and reduced once per batch, and
// the reduction overlaps the remaining backward work.
func genNoPipelineBF(p core.Plan) *Schedule {
	stages := p.Loops
	var prog Program
	fs := p.Sharding == core.DPFS
	for s := 0; s < stages; s++ {
		if fs {
			prog = append(prog, Op{Restore, s, -1})
		}
		for mb := 0; mb < p.NumMicro; mb++ {
			prog = append(prog, Op{Forward, s, mb})
		}
	}
	for s := stages - 1; s >= 0; s-- {
		if fs {
			prog = append(prog, Op{Restore, s, -1})
		}
		for mb := 0; mb < p.NumMicro; mb++ {
			prog = append(prog, Op{Backward, s, mb})
		}
		if needReduce(p) {
			prog = append(prog, Op{Reduce, s, -1})
		}
	}
	prog = append(prog, Op{Optimize, -1, -1})
	return &Schedule{Plan: p, Devices: []Program{prog}}
}
