package schedule

import (
	"reflect"
	"testing"
	"testing/quick"

	"bfpp/internal/core"
)

func hybridPlan(pp, nmb, loops, seq int) core.Plan {
	return core.Plan{Method: core.Hybrid, DP: 1, PP: pp, TP: 1,
		MicroBatch: 1, NumMicro: nmb, Loops: loops, Sequence: seq,
		OverlapDP: true, OverlapPP: true}
}

// With Sequence = PP the hybrid is exactly the depth-first schedule.
func TestHybridReducesToDepthFirst(t *testing.T) {
	h := mustGen(t, hybridPlan(4, 8, 2, 4))
	d := mustGen(t, plan(core.DepthFirst, 4, 8, 2))
	for r := range h.Devices {
		hp := h.Devices[r]
		dp := d.Devices[r]
		// Compare compute ops only (reduce placement is identical too, but
		// plans differ in Method so compare structurally).
		if len(hp) != len(dp) {
			t.Fatalf("device %d: lengths %d vs %d", r, len(hp), len(dp))
		}
		for i := range hp {
			if !reflect.DeepEqual(hp[i], dp[i]) {
				t.Fatalf("device %d op %d: %v vs %v", r, i, hp[i], dp[i])
			}
		}
	}
}

// With Sequence = NumMicro, every local stage processes the whole batch
// contiguously in the forward phase — the breadth-first ordering property.
func TestHybridAtFullSequenceIsStageContiguous(t *testing.T) {
	s := mustGen(t, hybridPlan(4, 8, 2, 8))
	for r, prog := range s.Devices {
		lastStage := -1
		seen := map[int]bool{}
		for _, op := range prog {
			if op.Kind != Forward {
				continue
			}
			if op.Stage != lastStage {
				if seen[op.Stage] {
					t.Fatalf("device %d: forward stage %d revisited (not contiguous)", r, op.Stage)
				}
				seen[op.Stage] = true
				lastStage = op.Stage
			}
		}
	}
}

func TestHybridInvariantsProperty(t *testing.T) {
	f := func(ppE, loopE, seqMul, nmbMul uint8) bool {
		pp := 1 << (ppE%3 + 1) // 2,4,8
		loops := 1 << (loopE % 3)
		seq := pp * (1 + int(seqMul)%3)  // pp, 2pp, 3pp
		nmb := seq * (1 + int(nmbMul)%3) // multiple of seq
		p := hybridPlan(pp, nmb, loops, seq)
		s, err := Generate(p)
		if err != nil {
			return false
		}
		return Check(s) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHybridRejectsBadSequence(t *testing.T) {
	if _, err := Generate(hybridPlan(4, 8, 2, 6)); err == nil {
		t.Error("sequence not a multiple of PP should fail")
	}
	if _, err := Generate(hybridPlan(4, 12, 2, 8)); err == nil {
		t.Error("NumMicro not a multiple of Sequence should fail")
	}
}

// The hybrid holds more activations in flight than depth-first but fewer
// than breadth-first: the memory-for-overlap trade the paper describes.
func TestHybridInFlightBetweenDFAndBF(t *testing.T) {
	df := mustGen(t, plan(core.DepthFirst, 4, 16, 2))
	hy := mustGen(t, hybridPlan(4, 16, 2, 8))
	bf := mustGen(t, plan(core.BreadthFirst, 4, 16, 2))
	dfi := MaxInFlight(df.Devices[0])
	hyi := MaxInFlight(hy.Devices[0])
	bfi := MaxInFlight(bf.Devices[0])
	if !(dfi < hyi && hyi < bfi) {
		t.Errorf("in-flight ordering DF(%d) < Hybrid(%d) < BF(%d) violated", dfi, hyi, bfi)
	}
}
