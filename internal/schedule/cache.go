package schedule

import (
	"sync"
	"sync/atomic"

	"bfpp/internal/core"
)

// Key captures exactly the plan fields the device programs depend on.
// Plans that differ only in TP, MicroBatch or the data-parallel group size
// (beyond DP > 1, which decides whether reductions are emitted) share one
// program set — in an Appendix E enumeration most candidates hit the cache.
// The key identifies the generator (via Method) plus the generator's own
// extra parameter (Traits.KeyExtra: the hybrid sequence length, the
// V-schedule in-flight cap).
type Key struct {
	Method   core.Method
	PP       int
	NumMicro int
	Loops    int
	Extra    int // generator-declared extra parameter; 0 when none
	Sharding core.Sharding
	Reduce   bool // DP > 1, i.e. whether Reduce ops are emitted
}

// KeyOf returns the schedule cache key of a plan.
func KeyOf(p core.Plan) Key {
	k := Key{
		Method:   p.Method,
		PP:       p.PP,
		NumMicro: p.NumMicro,
		Loops:    p.Loops,
		Sharding: p.Sharding,
		Reduce:   needReduce(p),
	}
	if extra := TraitsOf(p.Method).KeyExtra; extra != nil {
		k.Extra = extra(p)
	}
	return k
}

// cacheEntry is one memoized generation: the checked device programs, or
// the error Generate/Check produced for this key.
type cacheEntry struct {
	devices []Program
	err     error
}

var (
	cache                sync.Map // Key -> *cacheEntry
	cacheHits, cacheMiss atomic.Int64
)

// Cached returns the checked schedule for the plan, memoizing generation
// and invariant checking per Key. The returned Schedule carries the
// caller's plan but shares the (immutable) device programs with every
// other plan of the same key; callers must not mutate them.
func Cached(p core.Plan) (*Schedule, error) {
	k := KeyOf(p)
	if v, ok := cache.Load(k); ok {
		//lint:allow globalstate hit/miss counters are observability only; they never reach schedule or table bytes
		cacheHits.Add(1)
		e := v.(*cacheEntry)
		if e.err != nil {
			return nil, e.err
		}
		return &Schedule{Plan: p, Devices: e.devices}, nil
	}
	//lint:allow globalstate hit/miss counters are observability only; they never reach schedule or table bytes
	cacheMiss.Add(1)
	e := &cacheEntry{}
	s, err := Generate(p)
	if err == nil {
		err = Check(s)
	}
	if err != nil {
		e.err = err
	} else {
		e.devices = s.Devices
	}
	// A racing fill for the same key computes the identical entry; keep
	// whichever landed first so all callers share one program set.
	//lint:allow globalstate memo cache keyed by Key(p); entries are pure Generate+Check results, content is call-order independent
	if v, raced := cache.LoadOrStore(k, e); raced {
		e = v.(*cacheEntry)
	}
	if e.err != nil {
		return nil, e.err
	}
	return &Schedule{Plan: p, Devices: e.devices}, nil
}

// CacheStats returns the cumulative hit and miss counts of the schedule
// memo cache (used by tests and the perf harness).
func CacheStats() (hits, misses int64) {
	return cacheHits.Load(), cacheMiss.Load()
}
