package schedule

import (
	"fmt"

	"bfpp/internal/core"
)

// This file holds the registered generators of the paper's seven methods,
// each a small struct over the shared program builder. Their Traits carry
// the family, overlap and memory-model metadata the search and memsim
// layers used to hard-code per method.

// allPairs is the in-flight hook of the forward-first schedules that hold
// every micro-batch of every local stage (GPipe, breadth-first and the
// Appendix C breadth-first accumulation — Table 4.1).
func allPairs(p core.Plan) int { return p.NumMicro * p.Loops }

// oneFOneBPairs caps the in-flight micro-batches at the 1F1B warmup depth.
func oneFOneBPairs(p core.Plan) int {
	if p.NumMicro < p.PP {
		return p.NumMicro
	}
	return p.PP
}

// sequencedPairs is the warmup depth 2(PP-1) + (Loops-1)*q + 1 of the
// sequenced (depth-first / hybrid) schedules, capped at the total.
func sequencedPairs(p core.Plan, q int) int {
	w := 2*(p.PP-1) + (p.Loops-1)*q + 1
	if t := p.NumMicro * p.Loops; w > t {
		w = t
	}
	return w
}

// gpipeGen: forward pass for all micro-batches, then backward pass
// (Figure 4a). One stage per device.
type gpipeGen struct{}

func (gpipeGen) Method() core.Method { return core.GPipe }

func (gpipeGen) Traits() Traits {
	return Traits{
		Family: "nl", FamilyName: "Non-looped (GPipe/1F1B)", Paper: true,
		Overlap:   true,
		Shardings: []core.Sharding{core.DP0, core.DPPS},
		InFlight:  allPairs,
		StepLB: func(p core.Plan, c StepCosts) (float64, bool) {
			return exactOrFloor(p, c, gpipeOps, forwardFirstFloor)
		},
		StepFloor:    forwardFirstFloor,
		StepLBCached: gpipeCachedLB,
	}
}

func (gpipeGen) Generate(p core.Plan) (*Schedule, error) {
	return perDevice(p, func(b *progBuilder, r int) {
		for mb := 0; mb < p.NumMicro; mb++ {
			b.forward(r, mb)
		}
		for mb := 0; mb < p.NumMicro; mb++ {
			b.backward(r, mb)
		}
		b.bunchedReduces(r)
	}), nil
}

// oneFOneBGen: warmup of PP-rank-1 forwards, then strict one-forward /
// one-backward alternation, then a backward drain (Figure 4b).
type oneFOneBGen struct{}

func (oneFOneBGen) Method() core.Method { return core.OneFOneB }

func (oneFOneBGen) Traits() Traits {
	return Traits{
		Family: "nl", FamilyName: "Non-looped (GPipe/1F1B)", Paper: true,
		Shardings:        []core.Sharding{core.DP0},
		InFlight:         oneFOneBPairs,
		GradsOutsidePeak: true,
		StepLB: func(p core.Plan, c StepCosts) (float64, bool) {
			return exactOrFloor(p, c, oneFOneBOps, nil)
		},
	}
}

func (oneFOneBGen) Generate(p core.Plan) (*Schedule, error) {
	return perDevice(p, func(b *progBuilder, r int) {
		emitOneFOneB(b, r, p.NumMicro)
		b.bunchedReduces(r)
	}), nil
}

// emitOneFOneB emits the non-looped 1F1B compute program of one rank:
// warmup forwards, strict alternation, backward drain. Shared with the
// weight-stashing variant, whose batch data dependencies are identical.
func emitOneFOneB(b *progBuilder, r, numMicro int) {
	p := b.p
	warmup := p.PP - r - 1
	if warmup > numMicro {
		warmup = numMicro
	}
	for mb := 0; mb < warmup; mb++ {
		b.forward(r, mb)
	}
	for i := 0; i < numMicro-warmup; i++ {
		b.forward(r, warmup+i)
		b.backward(r, i)
	}
	for mb := numMicro - warmup; mb < numMicro; mb++ {
		b.backward(r, mb)
	}
}

// Sequenced unit-step helpers, shared by the depth-first schedule (the
// Megatron-LM interleaved schedule, sequence length q = PP) and the hybrid
// schedule of Section 4.2 (q > PP). Micro-batches are processed in groups
// of q; within a group the device runs its first local stage for all q
// micro-batches, then its second, and so on, prioritizing backward work
// once warmed up.
func seqStep(p core.Plan, q, k int, backward bool) (chunk, micro int) {
	group := k / (q * p.Loops)
	within := k % (q * p.Loops)
	chunk = within / q
	if backward {
		chunk = p.Loops - 1 - chunk
	}
	micro = group*q + within%q
	return chunk, micro
}

// genSequenced generates the depth-first family with micro-batch sequences
// of length q; q = PP is plain depth-first, larger q is the hybrid, whose
// extra in-flight micro-batches absorb transfer delays (Section 4.2).
// Warmup is 2*(PP-rank-1) + (Loops-1)*q unit forward steps, then
// alternating forward/backward unit steps, then a backward drain.
func genSequenced(p core.Plan, q int) *Schedule {
	total := p.NumMicro * p.Loops
	return perDevice(p, func(b *progBuilder, r int) {
		warmup := 2*(p.PP-r-1) + (p.Loops-1)*q
		if warmup > total {
			warmup = total
		}
		emitF := func(k int) {
			c, mb := seqStep(p, q, k, false)
			b.forward(c*p.PP+r, mb)
		}
		emitB := func(k int) {
			c, mb := seqStep(p, q, k, true)
			b.backward(c*p.PP+r, mb)
		}
		for k := 0; k < warmup; k++ {
			emitF(k)
		}
		for i := 0; i < total-warmup; i++ {
			emitF(warmup + i)
			emitB(i)
		}
		for k := total - warmup; k < total; k++ {
			emitB(k)
		}
		b.bunchedReduces(r)
	})
}

// depthFirstGen follows the Megatron-LM interleaved 1F1B structure
// (genSequenced with q = PP).
type depthFirstGen struct{}

func (depthFirstGen) Method() core.Method { return core.DepthFirst }

func (depthFirstGen) Traits() Traits {
	return Traits{
		Family: "df", FamilyName: "Depth-first (Megatron-LM)", Paper: true,
		Shardings:        []core.Sharding{core.DP0},
		InFlight:         func(p core.Plan) int { return sequencedPairs(p, p.PP) },
		GradsOutsidePeak: true,
		StepLB: func(p core.Plan, c StepCosts) (float64, bool) {
			return exactOrFloor(p, c, func(p core.Plan) (func(int) int, func(int, int) Op) {
				return sequencedOps(p, p.PP)
			}, nil)
		},
	}
}

func (depthFirstGen) Generate(p core.Plan) (*Schedule, error) {
	if p.NumMicro%p.PP != 0 {
		return nil, fmt.Errorf("schedule: depth-first needs NumMicro %% PP == 0")
	}
	return genSequenced(p, p.PP), nil
}

// hybridGen is the Section 4.2 depth/breadth hybrid (genSequenced with the
// plan's sequence length q >= PP).
type hybridGen struct{}

func (hybridGen) Method() core.Method { return core.Hybrid }

func (hybridGen) Traits() Traits {
	return Traits{
		Family: "hy", FamilyName: "Hybrid (Section 4.2)",
		Overlap:   true,
		Shardings: []core.Sharding{core.DP0},
		InFlight:  func(p core.Plan) int { return sequencedPairs(p, p.SequenceLen()) },
		KeyExtra:  core.Plan.SequenceLen,
		StepLB: func(p core.Plan, c StepCosts) (float64, bool) {
			return exactOrFloor(p, c, hybridSeq, nil)
		},
		StepLBCached: hybridCachedLB,
		// Section 4.2: micro-batch sequence lengths between N_PP (plain
		// depth-first ordering, Sequence zero) and N_mb (breadth-first-like).
		SequenceOptions: func(p core.Plan) []int {
			opts := []int{0}
			for q := 2 * p.PP; q <= p.NumMicro; q *= 2 {
				if p.NumMicro%q == 0 {
					opts = append(opts, q)
				}
			}
			return opts
		},
	}
}

func (hybridGen) Generate(p core.Plan) (*Schedule, error) {
	q := p.SequenceLen()
	if q%p.PP != 0 || p.NumMicro%q != 0 {
		return nil, fmt.Errorf("schedule: hybrid needs Sequence %% PP == 0 and NumMicro %% Sequence == 0")
	}
	return genSequenced(p, q), nil
}

// breadthFirstGen is the paper's schedule (Figure 4d): forward-first, each
// local stage processes the entire batch before the next stage starts, and
// the backward pass mirrors it in reverse. Data-parallel operations
// aggregate per stage: one restore before each pass's first use of a stage
// and one reduction after the stage's last backward, which is what makes
// the schedule compatible with DP-FS (Section 4.2).
type breadthFirstGen struct{}

func (breadthFirstGen) Method() core.Method { return core.BreadthFirst }

func (breadthFirstGen) Traits() Traits {
	return Traits{
		Family: "bf", FamilyName: "Breadth-first (ours)", Paper: true,
		Overlap:             true,
		Shardings:           []core.Sharding{core.DP0, core.DPFS},
		InFlight:            allPairs,
		PerStageAggregation: true,
		StepLB: func(p core.Plan, c StepCosts) (float64, bool) {
			return exactOrFloor(p, c, bfOps, forwardFirstFloor)
		},
		StepFloor: forwardFirstFloor,
	}
}

func (breadthFirstGen) Generate(p core.Plan) (*Schedule, error) {
	return perDevice(p, func(b *progBuilder, r int) {
		for l := 0; l < p.Loops; l++ {
			s := l*p.PP + r
			if b.fullySharded() {
				b.restore(s, -1)
			}
			for mb := 0; mb < p.NumMicro; mb++ {
				b.forward(s, mb)
			}
		}
		for l := p.Loops - 1; l >= 0; l-- {
			s := l*p.PP + r
			if b.fullySharded() {
				b.restore(s, -1)
			}
			for mb := 0; mb < p.NumMicro; mb++ {
				b.backward(s, mb)
			}
			if b.needReduce() {
				b.reduce(s, -1)
			}
		}
	}), nil
}

// noPipelineDFGen is conventional gradient accumulation (Figure 9a/9b):
// each micro-batch runs its full forward and backward before the next one.
// Under DP-FS every stage must be restored in both passes and reduced in
// the backward pass for every micro-batch — the repetition the paper's
// Eq. (24) penalizes.
type noPipelineDFGen struct{}

func (noPipelineDFGen) Method() core.Method { return core.NoPipelineDF }

func (noPipelineDFGen) Traits() Traits {
	return Traits{
		Family: "npdf", FamilyName: "No pipeline (depth-first accum)",
		Overlap:   true,
		Shardings: []core.Sharding{core.DP0, core.DPFS},
		// One micro-batch resident in each stage's worth of checkpoints.
		InFlight: func(p core.Plan) int { return p.Loops },
		StepLB: func(p core.Plan, c StepCosts) (float64, bool) {
			return exactOrFloor(p, c, noPipelineDFOps, nil)
		},
	}
}

func (noPipelineDFGen) Generate(p core.Plan) (*Schedule, error) {
	stages := p.Loops // stage granularity on the single device
	return singleDevice(p, func(b *progBuilder) {
		fs := b.fullySharded()
		for mb := 0; mb < p.NumMicro; mb++ {
			for s := 0; s < stages; s++ {
				if fs {
					b.restore(s, mb)
				}
				b.forward(s, mb)
			}
			for s := stages - 1; s >= 0; s-- {
				if fs {
					b.restore(s, mb)
				}
				b.backward(s, mb)
				if fs && b.needReduce() {
					b.reduce(s, mb)
				}
			}
		}
		if !fs && b.needReduce() {
			for s := stages - 1; s >= 0; s-- {
				b.reduce(s, -1)
			}
		}
	}), nil
}

// noPipelineBFGen is the breadth-first gradient accumulation of Appendix C
// (Figure 9c/9d): stages are processed breadth-first across micro-batches,
// so each stage is restored once per pass and reduced once per batch, and
// the reduction overlaps the remaining backward work.
type noPipelineBFGen struct{}

func (noPipelineBFGen) Method() core.Method { return core.NoPipelineBF }

func (noPipelineBFGen) Traits() Traits {
	return Traits{
		Family: "np", FamilyName: "No pipeline (Sharded)", Paper: true,
		Overlap:             true,
		Shardings:           []core.Sharding{core.DP0, core.DPFS},
		InFlight:            allPairs,
		PerStageAggregation: true,
		StepLB: func(p core.Plan, c StepCosts) (float64, bool) {
			return exactOrFloor(p, c, noPipelineBFOps, nil)
		},
	}
}

func (noPipelineBFGen) Generate(p core.Plan) (*Schedule, error) {
	stages := p.Loops
	return singleDevice(p, func(b *progBuilder) {
		fs := b.fullySharded()
		for s := 0; s < stages; s++ {
			if fs {
				b.restore(s, -1)
			}
			for mb := 0; mb < p.NumMicro; mb++ {
				b.forward(s, mb)
			}
		}
		for s := stages - 1; s >= 0; s-- {
			if fs {
				b.restore(s, -1)
			}
			for mb := 0; mb < p.NumMicro; mb++ {
				b.backward(s, mb)
			}
			if b.needReduce() {
				b.reduce(s, -1)
			}
		}
	}), nil
}
