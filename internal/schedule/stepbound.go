package schedule

import (
	"sync"

	"bfpp/internal/core"
)

// This file implements the schedule-side half of the analytic step-time
// bounds (BaPipe-style search pruning, see internal/analytic): a
// closed-form replay that prices a plan's device programs without
// constructing them and without running the discrete-event simulator.
//
// The replay mirrors the engine's execution model exactly. The engine maps
// every operation onto per-device in-order streams: compute operations
// always ride the device's compute stream; pipeline transfers ride a
// separate per-device pp stream when the implementation overlaps them
// (inline on the compute stream otherwise, paying the blocking stall); and
// data-parallel restores/reductions ride a separate dp stream when
// overlapped. Every task obeys the same recurrence the DES evaluates:
// start = max(stream frontier, latest dependency finish), end = start +
// duration. Replaying that recurrence over the generator's implicit op
// sequence (a closure mapping (rank, k) to the k-th program op, never a
// materialized Program) with one cursor per stream reproduces the DES
// makespan bit for bit — for non-overlapped and overlapped plans alike —
// which is what lets the search treat the bound as the exact simulated
// time and skip the simulation entirely.

// StepCosts holds the engine's derived per-operation durations for one
// (cluster, model, plan) configuration, in seconds. engine.DeriveCosts is
// the single producer, so analytic bounds price plans with exactly the
// constants the simulator charges.
type StepCosts struct {
	// Fwd and Bwd are the per-stage per-micro-batch compute durations
	// (kernel launch included).
	Fwd, Bwd float64
	// Transfer is the pipeline-parallel transfer wire time.
	Transfer float64
	// PPStall is the extra per-message blocking stall paid when transfers
	// ride the compute stream (non-overlapped implementations).
	PPStall float64
	// Reduce is the per-stage gradient reduction time (zero when DP == 1).
	Reduce float64
	// Restore is the per-stage DP-FS weight reconstruction time.
	Restore float64
	// Opt is the optimizer step time.
	Opt float64
}

// NonOverlapped reports whether every operation of the plan rides the
// per-device compute streams: the engine creates a separate pipeline
// stream only for overlapped pipelined plans with PP > 1, and a separate
// data-parallel stream only for overlapped plans with data-parallel work.
func NonOverlapped(p core.Plan) bool {
	pp := p.OverlapPP && p.Method.Pipelined() && p.PP > 1
	dp := p.OverlapDP && (p.DP > 1 || p.Sharding == core.DPFS)
	return !pp && !dp
}

// replayScratch pools the replay's working storage — the decoded op
// sequences, the per-(stage, micro) end-time tables and the per-device
// cursor state — so pricing a candidate allocates nothing in the steady
// state. The bound runs once per enumerated candidate on the sweep's hot
// path (the very spot the PR 3 ROADMAP note predicted), which is why the
// scratch is pooled like the engine's builder scratch.
type replayScratch struct {
	ops   []Op  // decoded per-rank sequences, concatenated
	opOff []int // rank r's ops are ops[opOff[r]:opOff[r+1]]
	owner []int

	fwdEnd, bwdEnd, inF, inB []float64
	tComp, tPP, tDP, maxRed  []float64
	kComp, kPP, kDP          []int
	reduceDone, reduceSeen   []int
	restoreSeenC             []int
	optDone                  []bool
	restoreIdxC, restoreIdxD []int
	bwdSeenD                 []bool
	restoreEnd               [][]float64
	consumers                [][]int
}

var replayScratchPool = sync.Pool{New: func() any { return &replayScratch{} }}

// growScratch resizes a reusable buffer to length n, reallocating only when
// the retained capacity is too small. Contents are unspecified; callers
// clear what they need.
func growScratch[T any](buf *[]T, n int) []T {
	if cap(*buf) < n {
		*buf = make([]T, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// replay evaluates the exact DES makespan of a plan whose per-rank compute
// programs are given implicitly: nOps(r) is rank r's op count and opAt(r, k)
// its k-th op (Forward, Backward, Restore or Reduce; the trailing Optimize
// is implicit). It models the engine's three per-device streams — compute,
// pipeline transfer and data-parallel — with one cursor each over the same
// op sequence: a cursor executes the ops that ride its stream and keeps
// static creation-order bookkeeping for the ones that don't, mirroring how
// the engine's builder fixes dependencies at task-creation time. Each
// sequence is decoded once into pooled scratch (the cursors then share the
// decoded ops instead of re-evaluating the closure per stream); no
// Program, Schedule or simulator state is ever built. It returns
// (0, false) if the sequences deadlock (a malformed closure).
func replay(p core.Plan, c StepCosts, nOps func(rank int) int, opAt func(rank, k int) Op) (float64, bool) {
	nStages := p.NumStages()
	nm := p.NumMicro
	nDev := 1
	if p.Method.Pipelined() {
		nDev = p.PP
	}
	send := p.Method.Pipelined() && p.PP > 1
	// Stream layout, exactly as the engine's builder decides it.
	ppStream := p.OverlapPP && send
	dpStream := p.OverlapDP && (p.DP > 1 || p.Sharding == core.DPFS)
	x := c.Transfer
	if !ppStream {
		x += c.PPStall // transfers ride the compute stream, paying the stall
	}

	sc := replayScratchPool.Get().(*replayScratch)
	defer replayScratchPool.Put(sc)

	var owner []int
	if send {
		owner = growScratch(&sc.owner, nStages)
		for s := range owner {
			owner[s] = p.StageDevice(s)
		}
	}
	cross := func(a, b int) bool { return send && owner[a] != owner[b] }

	// Decode every rank's implicit sequence once; the three cursors below
	// index the decoded ops instead of re-evaluating opAt per stream.
	opOff := growScratch(&sc.opOff, nDev+1)
	opOff[0] = 0
	for r := 0; r < nDev; r++ {
		opOff[r+1] = opOff[r] + nOps(r)
	}
	ops := growScratch(&sc.ops, opOff[nDev])
	for r := 0; r < nDev; r++ {
		base := opOff[r]
		for k := 0; k < opOff[r+1]-base; k++ {
			ops[base+k] = opAt(r, k)
		}
	}

	nk := nStages * nm
	idx := func(stage, micro int) int { return stage*nm + micro }
	// Compute-op and inbound-transfer finish times per (stage, micro);
	// negative = not yet produced. inF feeds Forward(stage, micro), inB
	// feeds Backward.
	fwdEnd := growScratch(&sc.fwdEnd, nk)
	bwdEnd := growScratch(&sc.bwdEnd, nk)
	inF := growScratch(&sc.inF, nk)
	inB := growScratch(&sc.inB, nk)
	for i := 0; i < nk; i++ {
		fwdEnd[i], bwdEnd[i], inF[i], inB[i] = -1, -1, -1, -1
	}

	tComp := growScratch(&sc.tComp, nDev) // per-device stream frontiers
	tPP := growScratch(&sc.tPP, nDev)
	tDP := growScratch(&sc.tDP, nDev)
	kComp := growScratch(&sc.kComp, nDev) // per-device per-stream cursors
	kPP := growScratch(&sc.kPP, nDev)
	kDP := growScratch(&sc.kDP, nDev)
	optDone := growScratch(&sc.optDone, nDev)
	maxReduceEnd := growScratch(&sc.maxRed, nDev)
	reduceDone := growScratch(&sc.reduceDone, nDev) // reduces executed by the dp cursor
	reduceSeen := growScratch(&sc.reduceSeen, nDev) // reduces passed by the compute cursor
	for r := 0; r < nDev; r++ {
		tComp[r], tPP[r], tDP[r], maxReduceEnd[r] = 0, 0, 0, 0
		kComp[r], kPP[r], kDP[r] = 0, 0, 0
		reduceDone[r], reduceSeen[r] = 0, 0
		optDone[r] = false
	}

	// Restore bookkeeping, needed only when restores ride a separate dp
	// stream: dependencies are then cross-stream instead of being covered
	// by the compute frontier. Restores are identified by their per-device
	// creation index; stages belong to exactly one device, so the
	// (stage, micro) -> latest-restore tables can be shared across devices.
	// The compute cursor keeps its own table (a compute op's restore
	// dependency is fixed by the restores preceding it in program order,
	// which is what the cursor's scan position models) and the dp cursor
	// another, because the cursors advance independently.
	var restoreIdxC, restoreIdxD []int
	var restoreEnd [][]float64 // per device: restore finish times, creation order
	var consumers [][]int      // per device restore: packed last consumer, -1 none
	var restoreSeenC []int     // restores passed by the compute cursor
	var bwdSeenD []bool        // backwards passed by the dp cursor
	if dpStream {
		restoreIdxC = growScratch(&sc.restoreIdxC, nStages*(nm+1))
		restoreIdxD = growScratch(&sc.restoreIdxD, nStages*(nm+1))
		for i := range restoreIdxC {
			restoreIdxC[i], restoreIdxD[i] = -1, -1
		}
		restoreEnd = growScratch(&sc.restoreEnd, nDev)
		consumers = growScratch(&sc.consumers, nDev)
		restoreSeenC = growScratch(&sc.restoreSeenC, nDev)
		bwdSeenD = growScratch(&sc.bwdSeenD, nk)
		for r := 0; r < nDev; r++ {
			restoreEnd[r] = restoreEnd[r][:0]
			consumers[r] = consumers[r][:0]
			restoreSeenC[r] = 0
		}
		for i := range bwdSeenD {
			bwdSeenD[i] = false
		}
	}
	// lastRestore mirrors the builder's lastRestoreFor: the restore for the
	// exact (stage, micro) if one exists, else the per-batch restore
	// (micro -1, stored at slot 0).
	lastRestore := func(tbl []int, stage, micro int) int {
		if i := tbl[stage*(nm+1)+micro+1]; i >= 0 {
			return i
		}
		return tbl[stage*(nm+1)]
	}

	// compDrain advances rank r's compute stream as far as cross-stream
	// dependencies allow, exactly like the DES drains an in-order stream.
	compDrain := func(r int) bool {
		progressed := false
		base, n := opOff[r], opOff[r+1]-opOff[r]
		for kComp[r] < n {
			op := ops[base+kComp[r]]
			switch op.Kind {
			case Forward, Backward:
				start := tComp[r]
				if dpStream {
					if ri := lastRestore(restoreIdxC, op.Stage, op.Micro); ri >= 0 {
						if ri >= len(restoreEnd[r]) {
							return progressed // restore not yet executed
						}
						if e := restoreEnd[r][ri]; e > start {
							start = e
						}
					}
				}
				if op.Kind == Forward {
					if op.Stage > 0 && cross(op.Stage-1, op.Stage) {
						in := inF[idx(op.Stage, op.Micro)]
						if in < 0 {
							return progressed // inbound transfer pending
						}
						if in > start {
							start = in
						}
					}
					end := start + c.Fwd
					tComp[r] = end
					fwdEnd[idx(op.Stage, op.Micro)] = end
					if op.Stage < nStages-1 && cross(op.Stage, op.Stage+1) && !ppStream {
						// Inline send: the transfer occupies the compute
						// stream right after its producer.
						tComp[r] = end + x
						inF[idx(op.Stage+1, op.Micro)] = tComp[r]
					}
				} else {
					if op.Stage < nStages-1 && cross(op.Stage, op.Stage+1) {
						in := inB[idx(op.Stage, op.Micro)]
						if in < 0 {
							return progressed
						}
						if in > start {
							start = in
						}
					}
					end := start + c.Bwd
					tComp[r] = end
					bwdEnd[idx(op.Stage, op.Micro)] = end
					if op.Stage > 0 && cross(op.Stage-1, op.Stage) && !ppStream {
						tComp[r] = end + x
						inB[idx(op.Stage-1, op.Micro)] = tComp[r]
					}
				}
			case Restore:
				if dpStream {
					// Creation-order bookkeeping only: later compute ops of
					// this stage depend on this restore's index.
					restoreIdxC[op.Stage*(nm+1)+op.Micro+1] = restoreSeenC[r]
					restoreSeenC[r]++
				} else {
					// Rides this stream; same-stream dependencies resolve
					// before the frontier, so it just occupies the stream.
					tComp[r] += c.Restore
				}
			case Reduce:
				if dpStream {
					reduceSeen[r]++
				} else {
					tComp[r] += c.Reduce
				}
			}
			kComp[r]++
			progressed = true
		}
		if !optDone[r] {
			// Trailing optimizer step: depends on every reduction of the
			// device (all of which precede it in program order).
			if dpStream && reduceDone[r] < reduceSeen[r] {
				return progressed
			}
			start := tComp[r]
			if maxReduceEnd[r] > start {
				start = maxReduceEnd[r]
			}
			tComp[r] = start + c.Opt
			optDone[r] = true
			progressed = true
		}
		return progressed
	}

	// ppDrain advances rank r's pipeline-transfer stream: one send task per
	// cross-device boundary crossing, enqueued in program order right after
	// its producing compute op, depending on it.
	ppDrain := func(r int) bool {
		progressed := false
		base, n := opOff[r], opOff[r+1]-opOff[r]
		for kPP[r] < n {
			op := ops[base+kPP[r]]
			if op.Kind == Forward && op.Stage < nStages-1 && cross(op.Stage, op.Stage+1) {
				e := fwdEnd[idx(op.Stage, op.Micro)]
				if e < 0 {
					return progressed // producer not yet executed
				}
				start := tPP[r]
				if e > start {
					start = e
				}
				end := start + x
				tPP[r] = end
				inF[idx(op.Stage+1, op.Micro)] = end
			} else if op.Kind == Backward && op.Stage > 0 && cross(op.Stage-1, op.Stage) {
				e := bwdEnd[idx(op.Stage, op.Micro)]
				if e < 0 {
					return progressed
				}
				start := tPP[r]
				if e > start {
					start = e
				}
				end := start + x
				tPP[r] = end
				inB[idx(op.Stage-1, op.Micro)] = end
			}
			kPP[r]++
			progressed = true
		}
		return progressed
	}

	// dpDrain advances rank r's data-parallel stream: restores (depending,
	// via double buffering, on the last consumer of the buffer two restores
	// back) and reductions (depending on the backward that produced their
	// gradients).
	dpDrain := func(r int) bool {
		progressed := false
		base, n := opOff[r], opOff[r+1]-opOff[r]
		for kDP[r] < n {
			op := ops[base+kDP[r]]
			switch op.Kind {
			case Forward, Backward:
				// Creation-order bookkeeping: the op consumes the latest
				// restore of its stage, and backwards feed later reduces.
				if ri := lastRestore(restoreIdxD, op.Stage, op.Micro); ri >= 0 {
					consumers[r][ri] = idx(op.Stage, op.Micro)*2 + btoi(op.Kind == Backward)
				}
				if op.Kind == Backward {
					bwdSeenD[idx(op.Stage, op.Micro)] = true
				}
			case Restore:
				i := len(restoreEnd[r])
				start := tDP[r]
				if i >= 2 {
					// Double buffering: this restore may only start once the
					// buffer two restores back has been consumed.
					if ref := consumers[r][i-2]; ref >= 0 {
						e := fwdEnd[ref/2]
						if ref&1 == 1 {
							e = bwdEnd[ref/2]
						}
						if e < 0 {
							return progressed // consumer not yet executed
						}
						if e > start {
							start = e
						}
					}
				}
				end := start + c.Restore
				tDP[r] = end
				restoreIdxD[op.Stage*(nm+1)+op.Micro+1] = i
				restoreEnd[r] = append(restoreEnd[r], end)
				consumers[r] = append(consumers[r], -1)
			case Reduce:
				start := tDP[r]
				mi := op.Micro
				if mi < 0 {
					mi = nm - 1 // per-batch reduce waits for the last backward
				}
				if bwdSeenD[idx(op.Stage, mi)] {
					e := bwdEnd[idx(op.Stage, mi)]
					if e < 0 {
						return progressed
					}
					if e > start {
						start = e
					}
				}
				end := start + c.Reduce
				tDP[r] = end
				if end > maxReduceEnd[r] {
					maxReduceEnd[r] = end
				}
				reduceDone[r]++
			}
			kDP[r]++
			progressed = true
		}
		return progressed
	}

	for {
		progressed := false
		done := true
		for r := 0; r < nDev; r++ {
			if compDrain(r) {
				progressed = true
			}
			if ppStream && ppDrain(r) {
				progressed = true
			}
			if dpStream && dpDrain(r) {
				progressed = true
			}
			if n := opOff[r+1] - opOff[r]; kComp[r] < n || !optDone[r] ||
				(ppStream && kPP[r] < n) || (dpStream && kDP[r] < n) {
				done = false
			}
		}
		if done {
			break
		}
		if !progressed {
			return 0, false
		}
	}

	// The makespan is the latest finish across every stream: a trailing
	// transfer or restore can outlive the optimizer step.
	var makespan float64
	for r := 0; r < nDev; r++ {
		if tComp[r] > makespan {
			makespan = tComp[r]
		}
		if tPP[r] > makespan {
			makespan = tPP[r]
		}
		if tDP[r] > makespan {
			makespan = tDP[r]
		}
	}
	return makespan, true
}

// --- Implicit program sequences, mirroring the generators op for op. ---

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// bfOps is the breadth-first program of rank r: per forward loop an
// optional DP-FS restore then all micro-batches, then the backward loops in
// reverse, each with an optional restore, the micro-batches and the
// per-stage reduction.
func bfOps(p core.Plan) (func(int) int, func(int, int) Op) {
	nm, loops := p.NumMicro, p.Loops
	fs := p.Sharding == core.DPFS
	red := p.DP > 1
	fwdBlock := nm + btoi(fs)
	bwdBlock := nm + btoi(fs) + btoi(red)
	n := func(int) int { return loops * (fwdBlock + bwdBlock) }
	at := func(r, k int) Op {
		if k < loops*fwdBlock {
			l, w := k/fwdBlock, k%fwdBlock
			s := l*p.PP + r
			if fs {
				if w == 0 {
					return Op{Restore, s, -1}
				}
				w--
			}
			return Op{Forward, s, w}
		}
		k -= loops * fwdBlock
		l, w := loops-1-k/bwdBlock, k%bwdBlock
		s := l*p.PP + r
		if fs {
			if w == 0 {
				return Op{Restore, s, -1}
			}
			w--
		}
		if w < nm {
			return Op{Backward, s, w}
		}
		return Op{Reduce, s, -1}
	}
	return n, at
}

// sequencedOps is the genSequenced program (depth-first for q = PP, hybrid
// otherwise) of rank r: warmup forward unit steps, forward/backward
// alternation, backward drain, then the bunched per-stage reductions in
// reverse stage order.
func sequencedOps(p core.Plan, q int) (func(int) int, func(int, int) Op) {
	total := p.NumMicro * p.Loops
	red := btoi(p.DP > 1) * p.Loops
	warmupOf := func(r int) int {
		w := 2*(p.PP-r-1) + (p.Loops-1)*q
		if w > total {
			w = total
		}
		return w
	}
	n := func(int) int { return 2*total + red }
	at := func(r, k int) Op {
		if k >= 2*total { // bunched reduces, reverse stage order
			j := k - 2*total
			l := p.Loops - 1 - j
			return Op{Reduce, l*p.PP + r, -1}
		}
		w := warmupOf(r)
		var backward bool
		var step int
		switch {
		case k < w:
			step = k
		case k < w+2*(total-w):
			i := k - w
			if i%2 == 0 {
				step = w + i/2
			} else {
				backward, step = true, i/2
			}
		default:
			backward, step = true, k-total
		}
		c, mb := seqStep(p, q, step, backward)
		if backward {
			return Op{Backward, c*p.PP + r, mb}
		}
		return Op{Forward, c*p.PP + r, mb}
	}
	return n, at
}

// oneFOneBOps is the non-looped 1F1B program of rank r (emitOneFOneB
// followed by the single bunched reduction). The weight-stashing WS-1F1B
// schedule shares it: stashing relaxes weight-version dependencies, not
// the batch's activation dependencies, so its program is identical.
func oneFOneBOps(p core.Plan) (func(int) int, func(int, int) Op) {
	nm := p.NumMicro
	red := btoi(p.DP > 1)
	n := func(int) int { return 2*nm + red }
	at := func(r, k int) Op {
		if k >= 2*nm {
			return Op{Reduce, r, -1}
		}
		w := p.PP - r - 1
		if w > nm {
			w = nm
		}
		switch {
		case k < w:
			return Op{Forward, r, k}
		case k < w+2*(nm-w):
			i := k - w
			if i%2 == 0 {
				return Op{Forward, r, w + i/2}
			}
			return Op{Backward, r, i / 2}
		default:
			return Op{Backward, r, k - nm}
		}
	}
	return n, at
}

// gpipeOps is the GPipe program of rank r: all forwards, all backwards,
// one bunched reduction.
func gpipeOps(p core.Plan) (func(int) int, func(int, int) Op) {
	nm := p.NumMicro
	red := btoi(p.DP > 1)
	n := func(int) int { return 2*nm + red }
	at := func(r, k int) Op {
		switch {
		case k < nm:
			return Op{Forward, r, k}
		case k < 2*nm:
			return Op{Backward, r, k - nm}
		default:
			return Op{Reduce, r, -1}
		}
	}
	return n, at
}

// noPipelineBFOps is the Appendix C breadth-first accumulation on the
// single device: per stage an optional restore then all micro-batches
// forward; the reverse for the backward pass with per-stage reductions.
func noPipelineBFOps(p core.Plan) (func(int) int, func(int, int) Op) {
	nm, stages := p.NumMicro, p.Loops
	fs := p.Sharding == core.DPFS
	red := p.DP > 1
	fwdBlock := nm + btoi(fs)
	bwdBlock := nm + btoi(fs) + btoi(red)
	n := func(int) int { return stages * (fwdBlock + bwdBlock) }
	at := func(_, k int) Op {
		if k < stages*fwdBlock {
			s, w := k/fwdBlock, k%fwdBlock
			if fs {
				if w == 0 {
					return Op{Restore, s, -1}
				}
				w--
			}
			return Op{Forward, s, w}
		}
		k -= stages * fwdBlock
		s, w := stages-1-k/bwdBlock, k%bwdBlock
		if fs {
			if w == 0 {
				return Op{Restore, s, -1}
			}
			w--
		}
		if w < nm {
			return Op{Backward, s, w}
		}
		return Op{Reduce, s, -1}
	}
	return n, at
}

// noPipelineDFOps is conventional gradient accumulation on the single
// device: each micro-batch runs its full forward and backward (with
// per-micro-batch restores and reductions under DP-FS), then the bunched
// per-stage reductions when not fully sharded.
func noPipelineDFOps(p core.Plan) (func(int) int, func(int, int) Op) {
	nm, stages := p.NumMicro, p.Loops
	fs := p.Sharding == core.DPFS
	red := p.DP > 1
	fwdBlock := 1 + btoi(fs)                   // per stage per micro
	bwdBlock := 1 + btoi(fs) + btoi(fs && red) // per stage per micro
	perMicro := stages * (fwdBlock + bwdBlock)
	tail := 0
	if !fs && red {
		tail = stages
	}
	n := func(int) int { return nm*perMicro + tail }
	at := func(_, k int) Op {
		if k >= nm*perMicro { // trailing bunched reduces, reverse order
			return Op{Reduce, stages - 1 - (k - nm*perMicro), -1}
		}
		mb, w := k/perMicro, k%perMicro
		if w < stages*fwdBlock {
			s, i := w/fwdBlock, w%fwdBlock
			if fs && i == 0 {
				return Op{Restore, s, mb}
			}
			return Op{Forward, s, mb}
		}
		w -= stages * fwdBlock
		s, i := stages-1-w/bwdBlock, w%bwdBlock
		if fs {
			switch i {
			case 0:
				return Op{Restore, s, mb}
			case 1:
				return Op{Backward, s, mb}
			default:
				return Op{Reduce, s, mb}
			}
		}
		return Op{Backward, s, mb}
	}
	return n, at
}

// --- StepLB hooks. ---

// forwardFirstFloor is the admissible lower bound of the overlapped
// forward-first wrap schedules (breadth-first, GPipe): the warm-up chain to
// the last device, that device's full compute (its program runs every
// forward before any backward), the backward drain chain back to device 0,
// the exposed tail reduction and the optimizer step. Plain arithmetic can
// round above the simulator's chained additions by a few ulps, so callers
// shave the result with BoundSlack. Since the multi-stream replay it is a
// deadlock-only safety net, never the primary bound.
func forwardFirstFloor(p core.Plan, c StepCosts) float64 {
	nm, loops := float64(p.NumMicro), float64(p.Loops)
	compute := nm * loops * (c.Fwd + c.Bwd)
	var ramp, drain float64
	if p.PP > 1 {
		x := c.Transfer
		if !p.OverlapPP {
			x += c.PPStall
		}
		hops := float64(p.PP - 1)
		ramp = hops * (c.Fwd + x)
		drain = hops * (c.Bwd + x)
	}
	tail := c.Opt
	if p.DP > 1 {
		tail += c.Reduce
	}
	return BoundSlack(ramp+compute+drain+tail, p.NumMicro*p.Loops*2+2*p.PP)
}

// vScheduleFloor is the list-schedule-aware warmup/drain floor of the
// vee-placed V-schedule, whose greedy list-scheduled programs have no
// implicit op sequence to replay. It exploits two structural facts the
// generic placement floor cannot see: (a) no backward anywhere may start
// before some micro-batch's complete forward chain has reached the last
// stage, after which the device hosting that stage — which, in the vee
// placement, also hosts stage 0 — still executes its entire backward
// workload; and (b) every stage-0 backward additionally waits for the
// backward chain down from the last stage, and all N_mb of them serialize
// on stage 0's device. Both terms are placement-derived dependency chains,
// valid at any in-flight cap (the cap only delays ops further), and are
// shaved by BoundSlack like every plain-arithmetic bound.
func vScheduleFloor(p core.Plan, c StepCosts) float64 {
	nStages := p.Stages()
	nm := float64(p.NumMicro)
	x := c.Transfer
	if !p.OverlapPP {
		x += c.PPStall
	}
	crossings := 0
	prev := p.StageDevice(0)
	for s := 1; s < nStages; s++ {
		d := p.StageDevice(s)
		if d != prev {
			crossings++
		}
		prev = d
	}
	var tail float64
	if p.DP > 1 {
		tail = c.Reduce // exposed: the optimizer waits for the last reduce
	}
	// End of F(last stage, m) for any micro-batch m: the full forward chain.
	ramp := float64(nStages)*c.Fwd + float64(crossings)*x
	// Warm-up term: the last stage's device still runs all its backwards.
	t1 := ramp + nm*float64(p.Loops)*c.Bwd + tail + c.Opt
	// Drain term: the backward chain down to stage 0, then all N_mb
	// stage-0 backwards on its device.
	t2 := ramp + float64(nStages-1)*c.Bwd + float64(crossings)*x + nm*c.Bwd + tail + c.Opt
	best := t1
	if t2 > best {
		best = t2
	}
	return BoundSlack(best, 2*p.NumMicro*p.Loops+4*nStages+16)
}

// BoundSlack shaves a bound computed with plain (non-chained) float
// arithmetic by a relative margin covering the worst-case rounding
// difference against the simulator's n sequential additions, keeping the
// bound strictly admissible without measurably loosening it. It is shared
// with the generic floor in internal/analytic — the margin is
// load-bearing for admissibility, so there is exactly one copy.
func BoundSlack(v float64, n int) float64 {
	return v * (1 - float64(n+16)*1e-15)
}

// exactOrFloor wraps an implicit program in the shared StepLB shape: the
// exact multi-stream replay (which covers overlapped and non-overlapped
// implementations alike), with a fallback floor against malformed
// sequences.
func exactOrFloor(p core.Plan, c StepCosts,
	seq func(core.Plan) (func(int) int, func(int, int) Op),
	floor func(core.Plan, StepCosts) float64) (float64, bool) {
	n, at := seq(p)
	if v, ok := replay(p, c, n, at); ok {
		return v, true
	}
	if floor != nil {
		return floor(p, c), false
	}
	return 0, false
}
