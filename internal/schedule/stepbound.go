package schedule

import (
	"sync"

	"bfpp/internal/core"
)

// This file implements the schedule-side half of the analytic step-time
// bounds (BaPipe-style search pruning, see internal/analytic): a
// closed-form replay that prices a plan's device programs without
// constructing them and without running the discrete-event simulator.
//
// The replay mirrors the engine's execution model exactly. The engine maps
// every operation onto per-device in-order streams: compute operations
// always ride the device's compute stream; pipeline transfers ride a
// separate per-device pp stream when the implementation overlaps them
// (inline on the compute stream otherwise, paying the blocking stall); and
// data-parallel restores/reductions ride a separate dp stream when
// overlapped. Every task obeys the same recurrence the DES evaluates:
// start = max(stream frontier, latest dependency finish), end = start +
// duration. Replaying that recurrence over the generator's implicit op
// sequence (a closure mapping (rank, k) to the k-th program op, never a
// materialized Program) with one cursor per stream reproduces the DES
// makespan bit for bit — for non-overlapped and overlapped plans alike —
// which is what lets the search treat the bound as the exact simulated
// time and skip the simulation entirely.

// StepCosts holds the engine's derived per-operation durations for one
// (cluster, model, plan) configuration, in seconds. engine.DeriveCosts is
// the single producer, so analytic bounds price plans with exactly the
// constants the simulator charges.
type StepCosts struct {
	// Fwd and Bwd are the per-stage per-micro-batch compute durations
	// (kernel launch included).
	Fwd, Bwd float64
	// Transfer is the pipeline-parallel transfer wire time.
	Transfer float64
	// PPStall is the extra per-message blocking stall paid when transfers
	// ride the compute stream (non-overlapped implementations).
	PPStall float64
	// Reduce is the per-stage gradient reduction time (zero when DP == 1).
	Reduce float64
	// Restore is the per-stage DP-FS weight reconstruction time.
	Restore float64
	// Opt is the optimizer step time.
	Opt float64
}

// NonOverlapped reports whether every operation of the plan rides the
// per-device compute streams: the engine creates a separate pipeline
// stream only for overlapped pipelined plans with PP > 1, and a separate
// data-parallel stream only for overlapped plans with data-parallel work.
func NonOverlapped(p core.Plan) bool {
	pp := p.OverlapPP && p.Method.Pipelined() && p.PP > 1
	dp := p.OverlapDP && (p.DP > 1 || p.Sharding == core.DPFS)
	return !pp && !dp
}

// replayScratch pools the replay's working storage — the decoded op
// sequences, the per-(stage, micro) end-time tables and the per-device
// cursor state — so pricing a candidate allocates nothing in the steady
// state. The bound runs once per enumerated candidate on the sweep's hot
// path (the very spot the PR 3 ROADMAP note predicted), which is why the
// scratch is pooled like the engine's builder scratch.
type replayScratch struct {
	ops   []Op  // decoded per-rank sequences, concatenated
	opOff []int // rank r's ops are ops[opOff[r]:opOff[r+1]]
	owner []int

	fwdEnd, bwdEnd, inF, inB []float64
	tComp, tPP, tDP, maxRed  []float64
	kComp, kPP, kDP          []int
	reduceDone, reduceSeen   []int
	restoreSeenC             []int
	optDone                  []bool
	restoreIdxC, restoreIdxD []int
	bwdSeenD                 []bool
	restoreEnd               [][]float64
	consumers                [][]int
}

var replayScratchPool = sync.Pool{New: func() any { return &replayScratch{} }}

// growScratch resizes a reusable buffer to length n, reallocating only when
// the retained capacity is too small. Contents are unspecified; callers
// clear what they need.
func growScratch[T any](buf *[]T, n int) []T {
	if cap(*buf) < n {
		*buf = make([]T, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// initReplay decodes every rank's implicit sequence into sc and resets the
// replay's cursor state, leaving sc ready for runReplay. It is split from
// the execution so a prefix replay can be checkpointed (the decoded ops and
// cursor state are the complete recurrence state) and resumed per
// candidate.
func initReplay(sc *replayScratch, p core.Plan, nOps func(rank int) int, opAt func(rank, k int) Op) {
	nStages := p.NumStages()
	nm := p.NumMicro
	nDev := 1
	if p.Method.Pipelined() {
		nDev = p.PP
	}
	send := p.Method.Pipelined() && p.PP > 1
	dpStream := p.OverlapDP && (p.DP > 1 || p.Sharding == core.DPFS)

	if send {
		owner := growScratch(&sc.owner, nStages)
		for s := range owner {
			owner[s] = p.StageDevice(s)
		}
	}

	// Decode every rank's implicit sequence once; the three cursors
	// index the decoded ops instead of re-evaluating the closure per stream.
	opOff := growScratch(&sc.opOff, nDev+1)
	opOff[0] = 0
	for r := 0; r < nDev; r++ {
		opOff[r+1] = opOff[r] + nOps(r)
	}
	ops := growScratch(&sc.ops, opOff[nDev])
	for r := 0; r < nDev; r++ {
		base := opOff[r]
		for k := 0; k < opOff[r+1]-base; k++ {
			ops[base+k] = opAt(r, k)
		}
	}

	nk := nStages * nm
	// Compute-op and inbound-transfer finish times per (stage, micro);
	// negative = not yet produced. inF feeds Forward(stage, micro), inB
	// feeds Backward.
	fwdEnd := growScratch(&sc.fwdEnd, nk)
	bwdEnd := growScratch(&sc.bwdEnd, nk)
	inF := growScratch(&sc.inF, nk)
	inB := growScratch(&sc.inB, nk)
	for i := 0; i < nk; i++ {
		fwdEnd[i], bwdEnd[i], inF[i], inB[i] = -1, -1, -1, -1
	}

	tComp := growScratch(&sc.tComp, nDev) // per-device stream frontiers
	tPP := growScratch(&sc.tPP, nDev)
	tDP := growScratch(&sc.tDP, nDev)
	kComp := growScratch(&sc.kComp, nDev) // per-device per-stream cursors
	kPP := growScratch(&sc.kPP, nDev)
	kDP := growScratch(&sc.kDP, nDev)
	optDone := growScratch(&sc.optDone, nDev)
	maxReduceEnd := growScratch(&sc.maxRed, nDev)
	reduceDone := growScratch(&sc.reduceDone, nDev) // reduces executed by the dp cursor
	reduceSeen := growScratch(&sc.reduceSeen, nDev) // reduces passed by the compute cursor
	for r := 0; r < nDev; r++ {
		tComp[r], tPP[r], tDP[r], maxReduceEnd[r] = 0, 0, 0, 0
		kComp[r], kPP[r], kDP[r] = 0, 0, 0
		reduceDone[r], reduceSeen[r] = 0, 0
		optDone[r] = false
	}

	// Restore bookkeeping, needed only when restores ride a separate dp
	// stream: dependencies are then cross-stream instead of being covered
	// by the compute frontier. Restores are identified by their per-device
	// creation index; stages belong to exactly one device, so the
	// (stage, micro) -> latest-restore tables can be shared across devices.
	// The compute cursor keeps its own table (a compute op's restore
	// dependency is fixed by the restores preceding it in program order,
	// which is what the cursor's scan position models) and the dp cursor
	// another, because the cursors advance independently.
	if dpStream {
		restoreIdxC := growScratch(&sc.restoreIdxC, nStages*(nm+1))
		restoreIdxD := growScratch(&sc.restoreIdxD, nStages*(nm+1))
		for i := range restoreIdxC {
			restoreIdxC[i], restoreIdxD[i] = -1, -1
		}
		restoreEnd := growScratch(&sc.restoreEnd, nDev)
		consumers := growScratch(&sc.consumers, nDev)
		restoreSeenC := growScratch(&sc.restoreSeenC, nDev)
		bwdSeenD := growScratch(&sc.bwdSeenD, nk)
		for r := 0; r < nDev; r++ {
			restoreEnd[r] = restoreEnd[r][:0]
			consumers[r] = consumers[r][:0]
			restoreSeenC[r] = 0
		}
		for i := range bwdSeenD {
			bwdSeenD[i] = false
		}
	}
}

// runReplay advances the replay state in sc as far as the dataflow allows:
// the three per-device stream cursors execute their ops under the same
// recurrence the DES evaluates (start = max(stream frontier, latest
// dependency finish)), which is a pure dataflow fixpoint — the final
// frontiers are independent of drain order, so a run split across a
// checkpoint is bit-identical to an uninterrupted one. With withOpt false
// the trailing optimizer step is withheld (prefix runs stop at the decoded
// ops; the resumed run issues it). It returns false if the sequences
// deadlock before completing.
func runReplay(sc *replayScratch, p core.Plan, c StepCosts, withOpt bool) bool {
	nStages := p.NumStages()
	nm := p.NumMicro
	nDev := 1
	if p.Method.Pipelined() {
		nDev = p.PP
	}
	send := p.Method.Pipelined() && p.PP > 1
	// Stream layout, exactly as the engine's builder decides it.
	ppStream := p.OverlapPP && send
	dpStream := p.OverlapDP && (p.DP > 1 || p.Sharding == core.DPFS)
	x := c.Transfer
	if !ppStream {
		x += c.PPStall // transfers ride the compute stream, paying the stall
	}

	owner := sc.owner
	cross := func(a, b int) bool { return send && owner[a] != owner[b] }
	opOff, ops := sc.opOff, sc.ops
	idx := func(stage, micro int) int { return stage*nm + micro }
	fwdEnd, bwdEnd, inF, inB := sc.fwdEnd, sc.bwdEnd, sc.inF, sc.inB
	tComp, tPP, tDP := sc.tComp, sc.tPP, sc.tDP
	kComp, kPP, kDP := sc.kComp, sc.kPP, sc.kDP
	optDone := sc.optDone
	maxReduceEnd := sc.maxRed
	reduceDone, reduceSeen := sc.reduceDone, sc.reduceSeen
	restoreIdxC, restoreIdxD := sc.restoreIdxC, sc.restoreIdxD
	restoreEnd, consumers := sc.restoreEnd, sc.consumers
	restoreSeenC, bwdSeenD := sc.restoreSeenC, sc.bwdSeenD
	// lastRestore mirrors the builder's lastRestoreFor: the restore for the
	// exact (stage, micro) if one exists, else the per-batch restore
	// (micro -1, stored at slot 0).
	lastRestore := func(tbl []int, stage, micro int) int {
		if i := tbl[stage*(nm+1)+micro+1]; i >= 0 {
			return i
		}
		return tbl[stage*(nm+1)]
	}

	// compDrain advances rank r's compute stream as far as cross-stream
	// dependencies allow, exactly like the DES drains an in-order stream.
	compDrain := func(r int) bool {
		progressed := false
		base, n := opOff[r], opOff[r+1]-opOff[r]
		for kComp[r] < n {
			op := ops[base+kComp[r]]
			switch op.Kind {
			case Forward, Backward:
				start := tComp[r]
				if dpStream {
					if ri := lastRestore(restoreIdxC, op.Stage, op.Micro); ri >= 0 {
						if ri >= len(restoreEnd[r]) {
							return progressed // restore not yet executed
						}
						if e := restoreEnd[r][ri]; e > start {
							start = e
						}
					}
				}
				if op.Kind == Forward {
					if op.Stage > 0 && cross(op.Stage-1, op.Stage) {
						in := inF[idx(op.Stage, op.Micro)]
						if in < 0 {
							return progressed // inbound transfer pending
						}
						if in > start {
							start = in
						}
					}
					end := start + c.Fwd
					tComp[r] = end
					fwdEnd[idx(op.Stage, op.Micro)] = end
					if op.Stage < nStages-1 && cross(op.Stage, op.Stage+1) && !ppStream {
						// Inline send: the transfer occupies the compute
						// stream right after its producer.
						tComp[r] = end + x
						inF[idx(op.Stage+1, op.Micro)] = tComp[r]
					}
				} else {
					if op.Stage < nStages-1 && cross(op.Stage, op.Stage+1) {
						in := inB[idx(op.Stage, op.Micro)]
						if in < 0 {
							return progressed
						}
						if in > start {
							start = in
						}
					}
					end := start + c.Bwd
					tComp[r] = end
					bwdEnd[idx(op.Stage, op.Micro)] = end
					if op.Stage > 0 && cross(op.Stage-1, op.Stage) && !ppStream {
						tComp[r] = end + x
						inB[idx(op.Stage-1, op.Micro)] = tComp[r]
					}
				}
			case Restore:
				if dpStream {
					// Creation-order bookkeeping only: later compute ops of
					// this stage depend on this restore's index.
					restoreIdxC[op.Stage*(nm+1)+op.Micro+1] = restoreSeenC[r]
					restoreSeenC[r]++
				} else {
					// Rides this stream; same-stream dependencies resolve
					// before the frontier, so it just occupies the stream.
					tComp[r] += c.Restore
				}
			case Reduce:
				if dpStream {
					reduceSeen[r]++
				} else {
					tComp[r] += c.Reduce
				}
			}
			kComp[r]++
			progressed = true
		}
		if withOpt && !optDone[r] {
			// Trailing optimizer step: depends on every reduction of the
			// device (all of which precede it in program order).
			if dpStream && reduceDone[r] < reduceSeen[r] {
				return progressed
			}
			start := tComp[r]
			if maxReduceEnd[r] > start {
				start = maxReduceEnd[r]
			}
			tComp[r] = start + c.Opt
			optDone[r] = true
			progressed = true
		}
		return progressed
	}

	// ppDrain advances rank r's pipeline-transfer stream: one send task per
	// cross-device boundary crossing, enqueued in program order right after
	// its producing compute op, depending on it.
	ppDrain := func(r int) bool {
		progressed := false
		base, n := opOff[r], opOff[r+1]-opOff[r]
		for kPP[r] < n {
			op := ops[base+kPP[r]]
			if op.Kind == Forward && op.Stage < nStages-1 && cross(op.Stage, op.Stage+1) {
				e := fwdEnd[idx(op.Stage, op.Micro)]
				if e < 0 {
					return progressed // producer not yet executed
				}
				start := tPP[r]
				if e > start {
					start = e
				}
				end := start + x
				tPP[r] = end
				inF[idx(op.Stage+1, op.Micro)] = end
			} else if op.Kind == Backward && op.Stage > 0 && cross(op.Stage-1, op.Stage) {
				e := bwdEnd[idx(op.Stage, op.Micro)]
				if e < 0 {
					return progressed
				}
				start := tPP[r]
				if e > start {
					start = e
				}
				end := start + x
				tPP[r] = end
				inB[idx(op.Stage-1, op.Micro)] = end
			}
			kPP[r]++
			progressed = true
		}
		return progressed
	}

	// dpDrain advances rank r's data-parallel stream: restores (depending,
	// via double buffering, on the last consumer of the buffer two restores
	// back) and reductions (depending on the backward that produced their
	// gradients).
	dpDrain := func(r int) bool {
		progressed := false
		base, n := opOff[r], opOff[r+1]-opOff[r]
		for kDP[r] < n {
			op := ops[base+kDP[r]]
			switch op.Kind {
			case Forward, Backward:
				// Creation-order bookkeeping: the op consumes the latest
				// restore of its stage, and backwards feed later reduces.
				if ri := lastRestore(restoreIdxD, op.Stage, op.Micro); ri >= 0 {
					consumers[r][ri] = idx(op.Stage, op.Micro)*2 + btoi(op.Kind == Backward)
				}
				if op.Kind == Backward {
					bwdSeenD[idx(op.Stage, op.Micro)] = true
				}
			case Restore:
				i := len(restoreEnd[r])
				start := tDP[r]
				if i >= 2 {
					// Double buffering: this restore may only start once the
					// buffer two restores back has been consumed.
					if ref := consumers[r][i-2]; ref >= 0 {
						e := fwdEnd[ref/2]
						if ref&1 == 1 {
							e = bwdEnd[ref/2]
						}
						if e < 0 {
							return progressed // consumer not yet executed
						}
						if e > start {
							start = e
						}
					}
				}
				end := start + c.Restore
				tDP[r] = end
				restoreIdxD[op.Stage*(nm+1)+op.Micro+1] = i
				restoreEnd[r] = append(restoreEnd[r], end)
				consumers[r] = append(consumers[r], -1)
			case Reduce:
				start := tDP[r]
				mi := op.Micro
				if mi < 0 {
					mi = nm - 1 // per-batch reduce waits for the last backward
				}
				if bwdSeenD[idx(op.Stage, mi)] {
					e := bwdEnd[idx(op.Stage, mi)]
					if e < 0 {
						return progressed
					}
					if e > start {
						start = e
					}
				}
				end := start + c.Reduce
				tDP[r] = end
				if end > maxReduceEnd[r] {
					maxReduceEnd[r] = end
				}
				reduceDone[r]++
			}
			kDP[r]++
			progressed = true
		}
		return progressed
	}

	for {
		progressed := false
		done := true
		for r := 0; r < nDev; r++ {
			if compDrain(r) {
				progressed = true
			}
			if ppStream && ppDrain(r) {
				progressed = true
			}
			if dpStream && dpDrain(r) {
				progressed = true
			}
			if n := opOff[r+1] - opOff[r]; kComp[r] < n || (withOpt && !optDone[r]) ||
				(ppStream && kPP[r] < n) || (dpStream && kDP[r] < n) {
				done = false
			}
		}
		if done {
			return true
		}
		if !progressed {
			return false
		}
	}
}

// replayMakespan reads the completed replay's makespan: the latest finish
// across every stream — a trailing transfer or restore can outlive the
// optimizer step.
func replayMakespan(sc *replayScratch, p core.Plan) float64 {
	nDev := 1
	if p.Method.Pipelined() {
		nDev = p.PP
	}
	var makespan float64
	for r := 0; r < nDev; r++ {
		if sc.tComp[r] > makespan {
			makespan = sc.tComp[r]
		}
		if sc.tPP[r] > makespan {
			makespan = sc.tPP[r]
		}
		if sc.tDP[r] > makespan {
			makespan = sc.tDP[r]
		}
	}
	return makespan
}

// replay evaluates the exact DES makespan of a plan whose per-rank compute
// programs are given implicitly: nOps(r) is rank r's op count and opAt(r, k)
// its k-th op (Forward, Backward, Restore or Reduce; the trailing Optimize
// is implicit). It models the engine's three per-device streams — compute,
// pipeline transfer and data-parallel — with one cursor each over the same
// op sequence: a cursor executes the ops that ride its stream and keeps
// static creation-order bookkeeping for the ones that don't, mirroring how
// the engine's builder fixes dependencies at task-creation time. Each
// sequence is decoded once into pooled scratch (the cursors then share the
// decoded ops instead of re-evaluating the closure per stream); no
// Program, Schedule or simulator state is ever built. It returns
// (0, false) if the sequences deadlock (a malformed closure).
func replay(p core.Plan, c StepCosts, nOps func(rank int) int, opAt func(rank, k int) Op) (float64, bool) {
	sc := replayScratchPool.Get().(*replayScratch)
	defer replayScratchPool.Put(sc)
	initReplay(sc, p, nOps, opAt)
	if !runReplay(sc, p, c, true) {
		return 0, false
	}
	return replayMakespan(sc, p), true
}

// --- Prefix-amortized replay: checkpoint, resume and the shared cache. ---

// replayCheckpoint freezes a partially-run replay — the decoded shared
// prefix plus the cursor/frontier state left by a withOpt=false runReplay —
// so candidates at one grid point that share the prefix resume from it
// instead of re-running the whole sequence. The scratch inside is owned by
// the checkpoint (never pooled) and is immutable after build; resume
// deep-copies it out into pooled scratch.
type replayCheckpoint struct {
	sc replayScratch
	ok bool
}

// checkpointReplay prices a shared prefix once: it decodes the implicit
// sequence into a fresh checkpoint-owned scratch and drains it fully with
// the trailing optimizer withheld. A deadlocking prefix yields ok=false and
// callers fall back to the uncached replay.
func checkpointReplay(p core.Plan, c StepCosts, nOps func(rank int) int, opAt func(rank, k int) Op) *replayCheckpoint {
	ck := &replayCheckpoint{}
	initReplay(&ck.sc, p, nOps, opAt)
	ck.ok = runReplay(&ck.sc, p, c, false)
	return ck
}

// copyScratch deep-copies every slice field of src into dst, reusing dst's
// retained capacity. The inner slices of restoreEnd/consumers are copied
// element-wise: resumed runs append to them.
func copyScratch(dst, src *replayScratch) {
	dst.ops = append(dst.ops[:0], src.ops...)
	dst.opOff = append(dst.opOff[:0], src.opOff...)
	dst.owner = append(dst.owner[:0], src.owner...)
	dst.fwdEnd = append(dst.fwdEnd[:0], src.fwdEnd...)
	dst.bwdEnd = append(dst.bwdEnd[:0], src.bwdEnd...)
	dst.inF = append(dst.inF[:0], src.inF...)
	dst.inB = append(dst.inB[:0], src.inB...)
	dst.tComp = append(dst.tComp[:0], src.tComp...)
	dst.tPP = append(dst.tPP[:0], src.tPP...)
	dst.tDP = append(dst.tDP[:0], src.tDP...)
	dst.maxRed = append(dst.maxRed[:0], src.maxRed...)
	dst.kComp = append(dst.kComp[:0], src.kComp...)
	dst.kPP = append(dst.kPP[:0], src.kPP...)
	dst.kDP = append(dst.kDP[:0], src.kDP...)
	dst.reduceDone = append(dst.reduceDone[:0], src.reduceDone...)
	dst.reduceSeen = append(dst.reduceSeen[:0], src.reduceSeen...)
	dst.restoreSeenC = append(dst.restoreSeenC[:0], src.restoreSeenC...)
	dst.optDone = append(dst.optDone[:0], src.optDone...)
	dst.restoreIdxC = append(dst.restoreIdxC[:0], src.restoreIdxC...)
	dst.restoreIdxD = append(dst.restoreIdxD[:0], src.restoreIdxD...)
	dst.bwdSeenD = append(dst.bwdSeenD[:0], src.bwdSeenD...)
	if cap(dst.restoreEnd) < len(src.restoreEnd) {
		dst.restoreEnd = make([][]float64, len(src.restoreEnd))
	}
	dst.restoreEnd = dst.restoreEnd[:len(src.restoreEnd)]
	for i := range src.restoreEnd {
		dst.restoreEnd[i] = append(dst.restoreEnd[i][:0], src.restoreEnd[i]...)
	}
	if cap(dst.consumers) < len(src.consumers) {
		dst.consumers = make([][]int, len(src.consumers))
	}
	dst.consumers = dst.consumers[:len(src.consumers)]
	for i := range src.consumers {
		dst.consumers[i] = append(dst.consumers[i][:0], src.consumers[i]...)
	}
}

// spliceTail appends per-rank tail ops to sc's decoded sequences, rebuilding
// the concatenated layout. The stream cursors are rank-relative (offsets are
// re-derived from opOff on every drain), so they stay valid across the
// splice. growScratch does not preserve contents across a reallocation, so
// the old layout is snapshotted first; the temporaries are amortized over
// the whole resumed replay.
func spliceTail(sc *replayScratch, nDev int, tailFor func(rank int) []Op) {
	oldOps := append([]Op(nil), sc.ops...)
	oldOff := append([]int(nil), sc.opOff...)
	total := len(oldOps)
	for r := 0; r < nDev; r++ {
		total += len(tailFor(r))
	}
	ops := growScratch(&sc.ops, total)
	opOff := sc.opOff // same backing: len(oldOff) == nDev+1 already
	w := 0
	for r := 0; r < nDev; r++ {
		opOff[r] = w
		w += copy(ops[w:], oldOps[oldOff[r]:oldOff[r+1]])
		w += copy(ops[w:], tailFor(r))
	}
	opOff[nDev] = w
}

// resumeReplay completes a checkpointed prefix for one candidate: it copies
// the frozen state into pooled scratch, splices the candidate's per-rank
// tail ops (tailFor may be nil for an empty tail), and drains the remainder
// with the trailing optimizer. The dataflow recurrence makes the result
// bit-identical to an uninterrupted replay of prefix+tail.
func resumeReplay(ck *replayCheckpoint, p core.Plan, c StepCosts, tailFor func(rank int) []Op) (float64, bool) {
	if ck == nil || !ck.ok {
		return 0, false
	}
	nDev := 1
	if p.Method.Pipelined() {
		nDev = p.PP
	}
	sc := replayScratchPool.Get().(*replayScratch)
	defer replayScratchPool.Put(sc)
	copyScratch(sc, &ck.sc)
	if tailFor != nil {
		spliceTail(sc, nDev, tailFor)
	}
	if !runReplay(sc, p, c, true) {
		return 0, false
	}
	return replayMakespan(sc, p), true
}

// Prefix classes, keyed alongside the normalized plan so distinct sequence
// shapes never share a checkpoint.
const (
	prefixClassGpipe uint8 = iota + 1
	prefixClassHybridSeq
)

// replayCacheKey identifies one shared prefix: the class, the candidate
// plan with the fields the prefix does not depend on normalized away, and
// the step costs with the tail-only components zeroed. Plan and StepCosts
// are comparable value structs, so the key is a valid map key.
type replayCacheKey struct {
	class uint8
	plan  core.Plan
	costs StepCosts
}

type replayCacheEntry struct {
	once sync.Once
	ck   *replayCheckpoint
}

// ReplayCache shares prefix checkpoints between the candidates of one
// search group. It is safe for concurrent use: each checkpoint is built
// exactly once (sync.Once per entry) and is immutable afterwards. The
// search creates one cache per evalGroups call and passes it to the
// generators' StepLBCached hooks; a nil cache degrades every hook to its
// uncached StepLB behavior.
type ReplayCache struct {
	mu sync.Mutex
	m  map[replayCacheKey]*replayCacheEntry
}

// NewReplayCache returns an empty cache.
func NewReplayCache() *ReplayCache {
	return &ReplayCache{m: map[replayCacheKey]*replayCacheEntry{}}
}

// checkpoint returns the cached checkpoint for key, building it with build
// on first use.
func (rc *ReplayCache) checkpoint(key replayCacheKey, build func() *replayCheckpoint) *replayCheckpoint {
	rc.mu.Lock()
	e, ok := rc.m[key]
	if !ok {
		e = &replayCacheEntry{}
		rc.m[key] = e
	}
	rc.mu.Unlock()
	e.once.Do(func() { e.ck = build() })
	return e.ck
}

// --- Implicit program sequences, mirroring the generators op for op. ---

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// bfOps is the breadth-first program of rank r: per forward loop an
// optional DP-FS restore then all micro-batches, then the backward loops in
// reverse, each with an optional restore, the micro-batches and the
// per-stage reduction.
func bfOps(p core.Plan) (func(int) int, func(int, int) Op) {
	nm, loops := p.NumMicro, p.Loops
	fs := p.Sharding == core.DPFS
	red := p.DP > 1
	fwdBlock := nm + btoi(fs)
	bwdBlock := nm + btoi(fs) + btoi(red)
	n := func(int) int { return loops * (fwdBlock + bwdBlock) }
	at := func(r, k int) Op {
		if k < loops*fwdBlock {
			l, w := k/fwdBlock, k%fwdBlock
			s := l*p.PP + r
			if fs {
				if w == 0 {
					return Op{Restore, s, -1}
				}
				w--
			}
			return Op{Forward, s, w}
		}
		k -= loops * fwdBlock
		l, w := loops-1-k/bwdBlock, k%bwdBlock
		s := l*p.PP + r
		if fs {
			if w == 0 {
				return Op{Restore, s, -1}
			}
			w--
		}
		if w < nm {
			return Op{Backward, s, w}
		}
		return Op{Reduce, s, -1}
	}
	return n, at
}

// sequencedOps is the genSequenced program (depth-first for q = PP, hybrid
// otherwise) of rank r: warmup forward unit steps, forward/backward
// alternation, backward drain, then the bunched per-stage reductions in
// reverse stage order.
func sequencedOps(p core.Plan, q int) (func(int) int, func(int, int) Op) {
	total := p.NumMicro * p.Loops
	red := btoi(p.DP > 1) * p.Loops
	warmupOf := func(r int) int {
		w := 2*(p.PP-r-1) + (p.Loops-1)*q
		if w > total {
			w = total
		}
		return w
	}
	n := func(int) int { return 2*total + red }
	at := func(r, k int) Op {
		if k >= 2*total { // bunched reduces, reverse stage order
			j := k - 2*total
			l := p.Loops - 1 - j
			return Op{Reduce, l*p.PP + r, -1}
		}
		w := warmupOf(r)
		var backward bool
		var step int
		switch {
		case k < w:
			step = k
		case k < w+2*(total-w):
			i := k - w
			if i%2 == 0 {
				step = w + i/2
			} else {
				backward, step = true, i/2
			}
		default:
			backward, step = true, k-total
		}
		c, mb := seqStep(p, q, step, backward)
		if backward {
			return Op{Backward, c*p.PP + r, mb}
		}
		return Op{Forward, c*p.PP + r, mb}
	}
	return n, at
}

// oneFOneBOps is the non-looped 1F1B program of rank r (emitOneFOneB
// followed by the single bunched reduction). The weight-stashing WS-1F1B
// schedule shares it: stashing relaxes weight-version dependencies, not
// the batch's activation dependencies, so its program is identical.
func oneFOneBOps(p core.Plan) (func(int) int, func(int, int) Op) {
	nm := p.NumMicro
	red := btoi(p.DP > 1)
	n := func(int) int { return 2*nm + red }
	at := func(r, k int) Op {
		if k >= 2*nm {
			return Op{Reduce, r, -1}
		}
		w := p.PP - r - 1
		if w > nm {
			w = nm
		}
		switch {
		case k < w:
			return Op{Forward, r, k}
		case k < w+2*(nm-w):
			i := k - w
			if i%2 == 0 {
				return Op{Forward, r, w + i/2}
			}
			return Op{Backward, r, i / 2}
		default:
			return Op{Backward, r, k - nm}
		}
	}
	return n, at
}

// gpipeOps is the GPipe program of rank r: all forwards, all backwards,
// one bunched reduction.
func gpipeOps(p core.Plan) (func(int) int, func(int, int) Op) {
	nm := p.NumMicro
	red := btoi(p.DP > 1)
	n := func(int) int { return 2*nm + red }
	at := func(r, k int) Op {
		switch {
		case k < nm:
			return Op{Forward, r, k}
		case k < 2*nm:
			return Op{Backward, r, k - nm}
		default:
			return Op{Reduce, r, -1}
		}
	}
	return n, at
}

// noPipelineBFOps is the Appendix C breadth-first accumulation on the
// single device: per stage an optional restore then all micro-batches
// forward; the reverse for the backward pass with per-stage reductions.
func noPipelineBFOps(p core.Plan) (func(int) int, func(int, int) Op) {
	nm, stages := p.NumMicro, p.Loops
	fs := p.Sharding == core.DPFS
	red := p.DP > 1
	fwdBlock := nm + btoi(fs)
	bwdBlock := nm + btoi(fs) + btoi(red)
	n := func(int) int { return stages * (fwdBlock + bwdBlock) }
	at := func(_, k int) Op {
		if k < stages*fwdBlock {
			s, w := k/fwdBlock, k%fwdBlock
			if fs {
				if w == 0 {
					return Op{Restore, s, -1}
				}
				w--
			}
			return Op{Forward, s, w}
		}
		k -= stages * fwdBlock
		s, w := stages-1-k/bwdBlock, k%bwdBlock
		if fs {
			if w == 0 {
				return Op{Restore, s, -1}
			}
			w--
		}
		if w < nm {
			return Op{Backward, s, w}
		}
		return Op{Reduce, s, -1}
	}
	return n, at
}

// noPipelineDFOps is conventional gradient accumulation on the single
// device: each micro-batch runs its full forward and backward (with
// per-micro-batch restores and reductions under DP-FS), then the bunched
// per-stage reductions when not fully sharded.
func noPipelineDFOps(p core.Plan) (func(int) int, func(int, int) Op) {
	nm, stages := p.NumMicro, p.Loops
	fs := p.Sharding == core.DPFS
	red := p.DP > 1
	fwdBlock := 1 + btoi(fs)                   // per stage per micro
	bwdBlock := 1 + btoi(fs) + btoi(fs && red) // per stage per micro
	perMicro := stages * (fwdBlock + bwdBlock)
	tail := 0
	if !fs && red {
		tail = stages
	}
	n := func(int) int { return nm*perMicro + tail }
	at := func(_, k int) Op {
		if k >= nm*perMicro { // trailing bunched reduces, reverse order
			return Op{Reduce, stages - 1 - (k - nm*perMicro), -1}
		}
		mb, w := k/perMicro, k%perMicro
		if w < stages*fwdBlock {
			s, i := w/fwdBlock, w%fwdBlock
			if fs && i == 0 {
				return Op{Restore, s, mb}
			}
			return Op{Forward, s, mb}
		}
		w -= stages * fwdBlock
		s, i := stages-1-w/bwdBlock, w%bwdBlock
		if fs {
			switch i {
			case 0:
				return Op{Restore, s, mb}
			case 1:
				return Op{Backward, s, mb}
			default:
				return Op{Reduce, s, mb}
			}
		}
		return Op{Backward, s, mb}
	}
	return n, at
}

// --- StepLB hooks. ---

// forwardFirstFloor is the admissible lower bound of the overlapped
// forward-first wrap schedules (breadth-first, GPipe): the warm-up chain to
// the last device, that device's full compute (its program runs every
// forward before any backward), the backward drain chain back to device 0,
// the exposed tail reduction and the optimizer step. Plain arithmetic can
// round above the simulator's chained additions by a few ulps, so callers
// shave the result with BoundSlack. Since the multi-stream replay it is a
// deadlock-only safety net, never the primary bound.
func forwardFirstFloor(p core.Plan, c StepCosts) float64 {
	nm, loops := float64(p.NumMicro), float64(p.Loops)
	compute := nm * loops * (c.Fwd + c.Bwd)
	var ramp, drain float64
	if p.PP > 1 {
		x := c.Transfer
		if !p.OverlapPP {
			x += c.PPStall
		}
		hops := float64(p.PP - 1)
		ramp = hops * (c.Fwd + x)
		drain = hops * (c.Bwd + x)
	}
	tail := c.Opt
	if p.DP > 1 {
		tail += c.Reduce
	}
	return BoundSlack(ramp+compute+drain+tail, p.NumMicro*p.Loops*2+2*p.PP)
}

// vScheduleFloor is the list-schedule-aware warmup/drain floor of the
// vee-placed V-schedule, whose greedy list-scheduled programs have no
// implicit op sequence to replay. It exploits two structural facts the
// generic placement floor cannot see: (a) no backward anywhere may start
// before some micro-batch's complete forward chain has reached the last
// stage, after which the device hosting that stage — which, in the vee
// placement, also hosts stage 0 — still executes its entire backward
// workload; and (b) every stage-0 backward additionally waits for the
// backward chain down from the last stage, and all N_mb of them serialize
// on stage 0's device. Both terms are placement-derived dependency chains,
// valid at any in-flight cap (the cap only delays ops further), and are
// shaved by BoundSlack like every plain-arithmetic bound.
func vScheduleFloor(p core.Plan, c StepCosts) float64 {
	nStages := p.Stages()
	nm := float64(p.NumMicro)
	x := c.Transfer
	if !p.OverlapPP {
		x += c.PPStall
	}
	crossings := 0
	prev := p.StageDevice(0)
	for s := 1; s < nStages; s++ {
		d := p.StageDevice(s)
		if d != prev {
			crossings++
		}
		prev = d
	}
	var tail float64
	if p.DP > 1 {
		tail = c.Reduce // exposed: the optimizer waits for the last reduce
	}
	// End of F(last stage, m) for any micro-batch m: the full forward chain.
	ramp := float64(nStages)*c.Fwd + float64(crossings)*x
	// Warm-up term: the last stage's device still runs all its backwards.
	t1 := ramp + nm*float64(p.Loops)*c.Bwd + tail + c.Opt
	// Drain term: the backward chain down to stage 0, then all N_mb
	// stage-0 backwards on its device.
	t2 := ramp + float64(nStages-1)*c.Bwd + float64(crossings)*x + nm*c.Bwd + tail + c.Opt
	best := t1
	if t2 > best {
		best = t2
	}
	// Cap term: the vee placement puts stage 0 and the last stage on the
	// same device, and the list scheduler's priority (lowest micro-batch
	// among ready admissible forwards, all stage-0 forwards ready from the
	// start) makes that device issue the first nm-1 stage-0 forwards before
	// F(0, nm-1). Under the in-flight cap it can hold at most capPairs of
	// them, so by then it has already issued at least nm-1-capPairs
	// backwards (2x forward cost each); the serial-head exemption can lift
	// the cap for at most the head micro-batch's Loops local stages, modeled
	// by widening the cap with +Loops. After F(0, nm-1) the last
	// micro-batch still needs its forward chain up (nStages-1 more stages
	// plus the boundary crossings) and its full backward chain down
	// (nStages backwards plus the crossings again) before the exposed tail.
	// Every term is a dependency- or capacity-forced serialization on that
	// one device, so the sum is admissible at any cap; large caps reduce it
	// below t1/t2 and it simply stops binding.
	capEff := float64(vCap(p) + p.Loops)
	extraB := nm - 1 - capEff
	if extraB < 0 {
		extraB = 0
	}
	t3 := (nm+float64(nStages)-1)*c.Fwd + (extraB+float64(nStages))*c.Bwd +
		2*float64(crossings)*x + tail + c.Opt
	if t3 > best {
		best = t3
	}
	return BoundSlack(best, 2*p.NumMicro*p.Loops+4*nStages+16)
}

// BoundSlack shaves a bound computed with plain (non-chained) float
// arithmetic by a relative margin covering the worst-case rounding
// difference against the simulator's n sequential additions, keeping the
// bound strictly admissible without measurably loosening it. It is shared
// with the generic floor in internal/analytic — the margin is
// load-bearing for admissibility, so there is exactly one copy.
func BoundSlack(v float64, n int) float64 {
	return v * (1 - float64(n+16)*1e-15)
}

// exactOrFloor wraps an implicit program in the shared StepLB shape: the
// exact multi-stream replay (which covers overlapped and non-overlapped
// implementations alike), with a fallback floor against malformed
// sequences.
func exactOrFloor(p core.Plan, c StepCosts,
	seq func(core.Plan) (func(int) int, func(int, int) Op),
	floor func(core.Plan, StepCosts) float64) (float64, bool) {
	n, at := seq(p)
	if v, ok := replay(p, c, n, at); ok {
		return v, true
	}
	if floor != nil {
		return floor(p, c), false
	}
	return 0, false
}

// gpipeCachedLB is gpipeOps' StepLBCached hook. GPipe candidates at one
// grid point differing only in sharding (DP0 vs DP-PS; DP-FS is excluded)
// share their entire compute sequence — the 2*N_mb forwards-then-backwards
// ops — and differ only in the tail reduction's cost, so the hook
// checkpoints the compute prefix once per grid point and resumes it with
// the per-candidate reduce tail. The cache key normalizes the sharding
// away and zeroes the tail-only costs (Reduce/Restore/Opt), which the
// prefix never charges; the stream layout is sharding-independent here
// (the dp stream exists iff OverlapDP and DP > 1, and gpipe has no
// restores), so the frozen frontiers are bit-identical to an uninterrupted
// replay's state at the same point.
func gpipeCachedLB(p core.Plan, c StepCosts, rc *ReplayCache) (float64, bool) {
	if rc == nil {
		return exactOrFloor(p, c, gpipeOps, forwardFirstFloor)
	}
	kp := p
	kp.Sharding = core.DP0
	kc := c
	kc.Reduce, kc.Restore, kc.Opt = 0, 0, 0
	nm := p.NumMicro
	nDev := 1
	if p.Method.Pipelined() {
		nDev = p.PP
	}
	ck := rc.checkpoint(replayCacheKey{prefixClassGpipe, kp, kc}, func() *replayCheckpoint {
		return checkpointReplay(kp, kc,
			func(int) int { return 2 * nm },
			func(r, k int) Op {
				if k < nm {
					return Op{Forward, r, k}
				}
				return Op{Backward, r, k - nm}
			})
	})
	var tailFor func(int) []Op
	if p.DP > 1 {
		tails := make([]Op, nDev)
		for r := range tails {
			tails[r] = Op{Reduce, r, -1}
		}
		tailFor = func(r int) []Op { return tails[r : r+1] }
	}
	if v, ok := resumeReplay(ck, p, c, tailFor); ok {
		return v, true
	}
	return forwardFirstFloor(p, c), false
}

// hybridSeq wraps sequencedOps in the exactOrFloor sequence shape with the
// plan's own sequence length.
func hybridSeq(p core.Plan) (func(int) int, func(int, int) Op) {
	return sequencedOps(p, p.SequenceLen())
}

// hybridCachedLB is the hybrid schedule's StepLBCached hook. At Loops == 1
// the sequenced program is invariant in the sequence length q: the warmup
// 2*(PP-r-1) + (Loops-1)*q loses its q term, every unit step degenerates
// to (chunk 0, micro k), and the single bunched reduce is q-independent —
// so the grid point's whole candidate set (one plan per SequenceOption)
// shares one full-sequence checkpoint, resumed per candidate with only the
// trailing optimizer left to issue. The key normalizes Sequence away and
// zeroes the optimizer cost (the only op the prefix withholds). Looped
// plans genuinely differ per q and fall back to the uncached replay.
func hybridCachedLB(p core.Plan, c StepCosts, rc *ReplayCache) (float64, bool) {
	if rc == nil || p.Loops != 1 {
		return exactOrFloor(p, c, hybridSeq, nil)
	}
	kp := p
	kp.Sequence = 0
	kc := c
	kc.Opt = 0
	ck := rc.checkpoint(replayCacheKey{prefixClassHybridSeq, kp, kc}, func() *replayCheckpoint {
		n, at := sequencedOps(kp, kp.SequenceLen())
		return checkpointReplay(kp, kc, n, at)
	})
	if v, ok := resumeReplay(ck, p, c, nil); ok {
		return v, true
	}
	return exactOrFloor(p, c, hybridSeq, nil)
}
