package schedule

import "bfpp/internal/core"

// This file implements the schedule-side half of the analytic step-time
// bounds (BaPipe-style search pruning, see internal/analytic): a
// closed-form replay that prices a plan's device programs without
// constructing them and without running the discrete-event simulator.
//
// The replay mirrors the engine's execution model exactly. When a plan is
// non-overlapped, every operation — compute, pipeline transfers, reductions,
// restores, the optimizer step — rides the per-device compute stream in
// program order, so each operation's end time follows the same recurrence
// the DES evaluates: start = max(stream frontier, inbound-transfer finish),
// end = start + duration. Replaying that recurrence over the generator's
// implicit op sequence (a closure mapping (rank, k) to the k-th program op,
// never a materialized Program) reproduces the DES makespan bit for bit,
// which is what lets the search treat the bound as the exact simulated
// time and skip the simulation entirely.

// StepCosts holds the engine's derived per-operation durations for one
// (cluster, model, plan) configuration, in seconds. engine.DeriveCosts is
// the single producer, so analytic bounds price plans with exactly the
// constants the simulator charges.
type StepCosts struct {
	// Fwd and Bwd are the per-stage per-micro-batch compute durations
	// (kernel launch included).
	Fwd, Bwd float64
	// Transfer is the pipeline-parallel transfer wire time.
	Transfer float64
	// PPStall is the extra per-message blocking stall paid when transfers
	// ride the compute stream (non-overlapped implementations).
	PPStall float64
	// Reduce is the per-stage gradient reduction time (zero when DP == 1).
	Reduce float64
	// Restore is the per-stage DP-FS weight reconstruction time.
	Restore float64
	// Opt is the optimizer step time.
	Opt float64
}

// NonOverlapped reports whether every operation of the plan rides the
// per-device compute streams: the engine creates a separate pipeline
// stream only for overlapped pipelined plans with PP > 1, and a separate
// data-parallel stream only for overlapped plans with data-parallel work.
func NonOverlapped(p core.Plan) bool {
	pp := p.OverlapPP && p.Method.Pipelined() && p.PP > 1
	dp := p.OverlapDP && (p.DP > 1 || p.Sharding == core.DPFS)
	return !pp && !dp
}

// replayNonOverlapped evaluates the exact DES makespan of a non-overlapped
// plan whose per-rank compute programs are given implicitly: nOps(r) is
// rank r's op count and opAt(r, k) its k-th op (Forward, Backward, Restore
// or Reduce; the trailing Optimize is implicit). It returns (0, false)
// if the sequences deadlock (a malformed closure), never allocating a
// Program and never touching the simulator.
func replayNonOverlapped(p core.Plan, c StepCosts, nOps func(rank int) int, opAt func(rank, k int) Op) (float64, bool) {
	nStages := p.NumStages()
	nm := p.NumMicro
	nDev := 1
	if p.Method.Pipelined() {
		nDev = p.PP
	}
	send := p.Method.Pipelined() && p.PP > 1
	x := c.Transfer + c.PPStall // transfers ride the compute stream

	var owner []int
	if send {
		owner = make([]int, nStages)
		for s := range owner {
			owner[s] = p.StageDevice(s)
		}
	}
	cross := func(a, b int) bool { return send && owner[a] != owner[b] }

	// Inbound-transfer finish times per (stage, micro); negative = not yet
	// produced. sendF feeds Forward(stage, micro), sendB feeds Backward.
	sendF := make([]float64, nStages*nm)
	sendB := make([]float64, nStages*nm)
	for i := range sendF {
		sendF[i], sendB[i] = -1, -1
	}
	idx := func(stage, micro int) int { return stage*nm + micro }

	t := make([]float64, nDev) // per-device stream frontier
	cur := make([]int, nDev)   // per-device program cursor
	total := make([]int, nDev) // per-device op count
	remaining := 0
	for r := 0; r < nDev; r++ {
		total[r] = nOps(r)
		remaining += total[r]
	}

	for remaining > 0 {
		progressed := false
		for r := 0; r < nDev; r++ {
			// Drain this device as far as inbound transfers allow, exactly
			// like the DES drains an in-order stream.
		drain:
			for cur[r] < total[r] {
				op := opAt(r, cur[r])
				switch op.Kind {
				case Forward:
					start := t[r]
					if op.Stage > 0 && cross(op.Stage-1, op.Stage) {
						in := sendF[idx(op.Stage, op.Micro)]
						if in < 0 {
							break drain
						}
						if in > start {
							start = in
						}
					}
					end := start + c.Fwd
					t[r] = end
					if op.Stage < nStages-1 && cross(op.Stage, op.Stage+1) {
						t[r] = end + x
						sendF[idx(op.Stage+1, op.Micro)] = t[r]
					}
				case Backward:
					start := t[r]
					if op.Stage < nStages-1 && cross(op.Stage, op.Stage+1) {
						in := sendB[idx(op.Stage, op.Micro)]
						if in < 0 {
							break drain
						}
						if in > start {
							start = in
						}
					}
					end := start + c.Bwd
					t[r] = end
					if op.Stage > 0 && cross(op.Stage-1, op.Stage) {
						t[r] = end + x
						sendB[idx(op.Stage-1, op.Micro)] = t[r]
					}
				case Restore:
					// Same-stream double-buffering dependencies resolve
					// before the stream frontier, so a restore just occupies
					// the stream.
					t[r] += c.Restore
				case Reduce:
					// Depends on an earlier same-stream backward only.
					t[r] += c.Reduce
				}
				cur[r]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			return 0, false
		}
	}

	var makespan float64
	for r := 0; r < nDev; r++ {
		t[r] += c.Opt // trailing optimizer step, after the device's reduces
		if t[r] > makespan {
			makespan = t[r]
		}
	}
	return makespan, true
}

// --- Implicit program sequences, mirroring the generators op for op. ---

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// bfOps is the breadth-first program of rank r: per forward loop an
// optional DP-FS restore then all micro-batches, then the backward loops in
// reverse, each with an optional restore, the micro-batches and the
// per-stage reduction.
func bfOps(p core.Plan) (func(int) int, func(int, int) Op) {
	nm, loops := p.NumMicro, p.Loops
	fs := p.Sharding == core.DPFS
	red := p.DP > 1
	fwdBlock := nm + btoi(fs)
	bwdBlock := nm + btoi(fs) + btoi(red)
	n := func(int) int { return loops * (fwdBlock + bwdBlock) }
	at := func(r, k int) Op {
		if k < loops*fwdBlock {
			l, w := k/fwdBlock, k%fwdBlock
			s := l*p.PP + r
			if fs {
				if w == 0 {
					return Op{Restore, s, -1}
				}
				w--
			}
			return Op{Forward, s, w}
		}
		k -= loops * fwdBlock
		l, w := loops-1-k/bwdBlock, k%bwdBlock
		s := l*p.PP + r
		if fs {
			if w == 0 {
				return Op{Restore, s, -1}
			}
			w--
		}
		if w < nm {
			return Op{Backward, s, w}
		}
		return Op{Reduce, s, -1}
	}
	return n, at
}

// sequencedOps is the genSequenced program (depth-first for q = PP, hybrid
// otherwise) of rank r: warmup forward unit steps, forward/backward
// alternation, backward drain, then the bunched per-stage reductions in
// reverse stage order.
func sequencedOps(p core.Plan, q int) (func(int) int, func(int, int) Op) {
	total := p.NumMicro * p.Loops
	red := btoi(p.DP > 1) * p.Loops
	warmupOf := func(r int) int {
		w := 2*(p.PP-r-1) + (p.Loops-1)*q
		if w > total {
			w = total
		}
		return w
	}
	n := func(int) int { return 2*total + red }
	at := func(r, k int) Op {
		if k >= 2*total { // bunched reduces, reverse stage order
			j := k - 2*total
			l := p.Loops - 1 - j
			return Op{Reduce, l*p.PP + r, -1}
		}
		w := warmupOf(r)
		var backward bool
		var step int
		switch {
		case k < w:
			step = k
		case k < w+2*(total-w):
			i := k - w
			if i%2 == 0 {
				step = w + i/2
			} else {
				backward, step = true, i/2
			}
		default:
			backward, step = true, k-total
		}
		c, mb := seqStep(p, q, step, backward)
		if backward {
			return Op{Backward, c*p.PP + r, mb}
		}
		return Op{Forward, c*p.PP + r, mb}
	}
	return n, at
}

// oneFOneBOps is the non-looped 1F1B program of rank r (emitOneFOneB
// followed by the single bunched reduction).
func oneFOneBOps(p core.Plan) (func(int) int, func(int, int) Op) {
	nm := p.NumMicro
	red := btoi(p.DP > 1)
	n := func(int) int { return 2*nm + red }
	at := func(r, k int) Op {
		if k >= 2*nm {
			return Op{Reduce, r, -1}
		}
		w := p.PP - r - 1
		if w > nm {
			w = nm
		}
		switch {
		case k < w:
			return Op{Forward, r, k}
		case k < w+2*(nm-w):
			i := k - w
			if i%2 == 0 {
				return Op{Forward, r, w + i/2}
			}
			return Op{Backward, r, i / 2}
		default:
			return Op{Backward, r, k - nm}
		}
	}
	return n, at
}

// gpipeOps is the GPipe program of rank r: all forwards, all backwards,
// one bunched reduction.
func gpipeOps(p core.Plan) (func(int) int, func(int, int) Op) {
	nm := p.NumMicro
	red := btoi(p.DP > 1)
	n := func(int) int { return 2*nm + red }
	at := func(r, k int) Op {
		switch {
		case k < nm:
			return Op{Forward, r, k}
		case k < 2*nm:
			return Op{Backward, r, k - nm}
		default:
			return Op{Reduce, r, -1}
		}
	}
	return n, at
}

// noPipelineBFOps is the Appendix C breadth-first accumulation on the
// single device: per stage an optional restore then all micro-batches
// forward; the reverse for the backward pass with per-stage reductions.
func noPipelineBFOps(p core.Plan) (func(int) int, func(int, int) Op) {
	nm, stages := p.NumMicro, p.Loops
	fs := p.Sharding == core.DPFS
	red := p.DP > 1
	fwdBlock := nm + btoi(fs)
	bwdBlock := nm + btoi(fs) + btoi(red)
	n := func(int) int { return stages * (fwdBlock + bwdBlock) }
	at := func(_, k int) Op {
		if k < stages*fwdBlock {
			s, w := k/fwdBlock, k%fwdBlock
			if fs {
				if w == 0 {
					return Op{Restore, s, -1}
				}
				w--
			}
			return Op{Forward, s, w}
		}
		k -= stages * fwdBlock
		s, w := stages-1-k/bwdBlock, k%bwdBlock
		if fs {
			if w == 0 {
				return Op{Restore, s, -1}
			}
			w--
		}
		if w < nm {
			return Op{Backward, s, w}
		}
		return Op{Reduce, s, -1}
	}
	return n, at
}

// noPipelineDFOps is conventional gradient accumulation on the single
// device: each micro-batch runs its full forward and backward (with
// per-micro-batch restores and reductions under DP-FS), then the bunched
// per-stage reductions when not fully sharded.
func noPipelineDFOps(p core.Plan) (func(int) int, func(int, int) Op) {
	nm, stages := p.NumMicro, p.Loops
	fs := p.Sharding == core.DPFS
	red := p.DP > 1
	fwdBlock := 1 + btoi(fs)                   // per stage per micro
	bwdBlock := 1 + btoi(fs) + btoi(fs && red) // per stage per micro
	perMicro := stages * (fwdBlock + bwdBlock)
	tail := 0
	if !fs && red {
		tail = stages
	}
	n := func(int) int { return nm*perMicro + tail }
	at := func(_, k int) Op {
		if k >= nm*perMicro { // trailing bunched reduces, reverse order
			return Op{Reduce, stages - 1 - (k - nm*perMicro), -1}
		}
		mb, w := k/perMicro, k%perMicro
		if w < stages*fwdBlock {
			s, i := w/fwdBlock, w%fwdBlock
			if fs && i == 0 {
				return Op{Restore, s, mb}
			}
			return Op{Forward, s, mb}
		}
		w -= stages * fwdBlock
		s, i := stages-1-w/bwdBlock, w%bwdBlock
		if fs {
			switch i {
			case 0:
				return Op{Restore, s, mb}
			case 1:
				return Op{Backward, s, mb}
			default:
				return Op{Reduce, s, mb}
			}
		}
		return Op{Backward, s, mb}
	}
	return n, at
}

// --- StepLB hooks. ---

// forwardFirstFloor is the admissible lower bound of the overlapped
// forward-first wrap schedules (breadth-first, GPipe): the warm-up chain to
// the last device, that device's full compute (its program runs every
// forward before any backward), the backward drain chain back to device 0,
// the exposed tail reduction and the optimizer step. Plain arithmetic can
// round above the simulator's chained additions by a few ulps, so callers
// shave the result with BoundSlack.
func forwardFirstFloor(p core.Plan, c StepCosts) float64 {
	nm, loops := float64(p.NumMicro), float64(p.Loops)
	compute := nm * loops * (c.Fwd + c.Bwd)
	var ramp, drain float64
	if p.PP > 1 {
		x := c.Transfer
		if !p.OverlapPP {
			x += c.PPStall
		}
		hops := float64(p.PP - 1)
		ramp = hops * (c.Fwd + x)
		drain = hops * (c.Bwd + x)
	}
	tail := c.Opt
	if p.DP > 1 {
		tail += c.Reduce
	}
	return BoundSlack(ramp+compute+drain+tail, p.NumMicro*p.Loops*2+2*p.PP)
}

// BoundSlack shaves a bound computed with plain (non-chained) float
// arithmetic by a relative margin covering the worst-case rounding
// difference against the simulator's n sequential additions, keeping the
// bound strictly admissible without measurably loosening it. It is shared
// with the generic floor in internal/analytic — the margin is
// load-bearing for admissibility, so there is exactly one copy.
func BoundSlack(v float64, n int) float64 {
	return v * (1 - float64(n+16)*1e-15)
}

// exactOrFloor wraps an implicit program in the shared StepLB shape: the
// exact replay for non-overlapped plans, a fallback floor otherwise.
func exactOrFloor(p core.Plan, c StepCosts,
	seq func(core.Plan) (func(int) int, func(int, int) Op),
	floor func(core.Plan, StepCosts) float64) (float64, bool) {
	if NonOverlapped(p) {
		n, at := seq(p)
		if v, ok := replayNonOverlapped(p, c, n, at); ok {
			return v, true
		}
	}
	if floor != nil {
		return floor(p, c), false
	}
	return 0, false
}
