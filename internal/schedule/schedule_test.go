package schedule

import (
	"strings"
	"testing"
	"testing/quick"

	"bfpp/internal/core"
)

func plan(m core.Method, pp, nmb, loops int) core.Plan {
	dp := 1
	if !m.Pipelined() {
		pp = 1
	}
	return core.Plan{
		Method: m, DP: dp, PP: pp, TP: 1,
		MicroBatch: 1, NumMicro: nmb, Loops: loops,
		Sharding: core.DP0, OverlapDP: true, OverlapPP: true,
	}
}

func mustGen(t *testing.T, p core.Plan) *Schedule {
	t.Helper()
	s, err := Generate(p)
	if err != nil {
		t.Fatalf("Generate(%v): %v", p, err)
	}
	if err := Check(s); err != nil {
		t.Fatalf("Check(%v): %v", p, err)
	}
	return s
}

func TestAllMethodsPassInvariants(t *testing.T) {
	cases := []core.Plan{
		plan(core.GPipe, 4, 8, 1),
		plan(core.OneFOneB, 4, 8, 1),
		plan(core.DepthFirst, 4, 8, 4),
		plan(core.BreadthFirst, 4, 8, 4),
		plan(core.NoPipelineDF, 1, 4, 4),
		plan(core.NoPipelineBF, 1, 4, 4),
	}
	for _, p := range cases {
		mustGen(t, p)
	}
}

func TestGPipeStructure(t *testing.T) {
	s := mustGen(t, plan(core.GPipe, 4, 8, 1))
	prog := s.Devices[2]
	// 8 forwards, then 8 backwards, then optimize (DP=1: no reduce).
	if len(prog) != 17 {
		t.Fatalf("program length = %d, want 17", len(prog))
	}
	for i := 0; i < 8; i++ {
		if prog[i].Kind != Forward || prog[i].Micro != i || prog[i].Stage != 2 {
			t.Errorf("op %d = %v, want F2.%d", i, prog[i], i)
		}
		if prog[8+i].Kind != Backward || prog[8+i].Micro != i {
			t.Errorf("op %d = %v, want B2.%d", 8+i, prog[8+i], i)
		}
	}
	if prog[16].Kind != Optimize {
		t.Errorf("last op = %v, want S", prog[16])
	}
}

// Figure 4b: the last device of a 1F1B pipeline alternates from the start
// (F0 B0 F1 B1 ...), while device 0 warms up with PP-1 forwards.
func TestOneFOneBStructure(t *testing.T) {
	s := mustGen(t, plan(core.OneFOneB, 4, 8, 1))
	last := s.Devices[3]
	want := "F3.0 B3.0 F3.1 B3.1"
	if got := progString(last[:4]); got != want {
		t.Errorf("last device head = %q, want %q", got, want)
	}
	first := s.Devices[0]
	want = "F0.0 F0.1 F0.2 F0.3 B0.0 F0.4 B0.1"
	if got := progString(first[:7]); got != want {
		t.Errorf("first device head = %q, want %q", got, want)
	}
}

// 1F1B's raison d'etre: it holds at most ~PP-rank in-flight micro-batches,
// while GPipe holds all of them (Table 4.1 activation memory).
func TestInFlightActivations(t *testing.T) {
	gp := mustGen(t, plan(core.GPipe, 4, 8, 1))
	ob := mustGen(t, plan(core.OneFOneB, 4, 8, 1))
	if got := MaxInFlight(gp.Devices[0]); got != 8 {
		t.Errorf("GPipe in-flight = %d, want 8", got)
	}
	if got := MaxInFlight(ob.Devices[0]); got != 4 {
		t.Errorf("1F1B device 0 in-flight = %d, want 4", got)
	}
	if got := MaxInFlight(ob.Devices[3]); got != 1 {
		t.Errorf("1F1B last device in-flight = %d, want 1", got)
	}
	bf := mustGen(t, plan(core.BreadthFirst, 4, 8, 4))
	if got := MaxInFlight(bf.Devices[0]); got != 32 {
		t.Errorf("breadth-first in-flight = %d, want Nmb*Nloop = 32", got)
	}
}

// The breadth-first program processes each local stage's whole batch
// contiguously, in loop order (Figure 4d).
func TestBreadthFirstStructure(t *testing.T) {
	s := mustGen(t, plan(core.BreadthFirst, 4, 8, 4))
	prog := s.Devices[1]
	// Device 1 owns stages 1, 5, 9, 13.
	wantHead := "F1.0 F1.1 F1.2 F1.3 F1.4 F1.5 F1.6 F1.7 F5.0"
	if got := progString(prog[:9]); got != wantHead {
		t.Errorf("head = %q, want %q", got, wantHead)
	}
	// Backward starts from the last local stage.
	half := 32 // 4 stages x 8 micro-batches of forward
	wantBwd := "B13.0 B13.1"
	if got := progString(prog[half : half+2]); got != wantBwd {
		t.Errorf("backward head = %q, want %q", got, wantBwd)
	}
}

// Depth-first processes micro-batches in sequences of PP through each local
// stage (chunk) in turn.
func TestDepthFirstStructure(t *testing.T) {
	s := mustGen(t, plan(core.DepthFirst, 4, 8, 2))
	prog := s.Devices[0]
	// Warmup for device 0, PP=4, Loops=2: 2*(4-1) + 1*4 = 10 forwards.
	// Forward order: chunk 0 micro 0..3 (stages 0), chunk 1 micro 0..3
	// (stage 4), then chunk 0 micro 4..7, ...
	wantHead := "F0.0 F0.1 F0.2 F0.3 F4.0 F4.1 F4.2 F4.3 F0.4 F0.5"
	if got := progString(prog[:10]); got != wantHead {
		t.Errorf("head = %q, want %q", got, wantHead)
	}
	// First backward is the last chunk (stage 4) of micro-batch 0.
	for _, op := range prog {
		if op.Kind == Backward {
			if op.Stage != 4 || op.Micro != 0 {
				t.Errorf("first backward = %v, want B4.0", op)
			}
			break
		}
	}
}

func TestDepthFirstRejectsUnevenMicro(t *testing.T) {
	p := plan(core.DepthFirst, 4, 6, 2)
	if _, err := Generate(p); err == nil {
		t.Fatal("expected error for NumMicro not a multiple of PP")
	}
}

// Appendix C / Figure 9: DP-FS restore and reduce counts. Breadth-first
// aggregates per stage (2 restores + 1 reduce per stage per batch);
// depth-first repeats them per micro-batch (Eq. 24 vs 26).
func TestDPFSNetworkOpCounts(t *testing.T) {
	mk := func(m core.Method) core.Plan {
		p := plan(m, 1, 4, 4)
		p.DP = 4
		p.Sharding = core.DPFS
		return p
	}
	bf := mustGen(t, mk(core.NoPipelineBF))
	df := mustGen(t, mk(core.NoPipelineDF))
	cbf := Counts(bf)
	cdf := Counts(df)
	// BF: 4 stages x 2 passes = 8 restores; 4 reduces.
	if cbf[Restore] != 8 || cbf[Reduce] != 4 {
		t.Errorf("BF restores/reduces = %d/%d, want 8/4", cbf[Restore], cbf[Reduce])
	}
	// DF: 4 stages x 2 passes x 4 micro-batches = 32 restores; 16 reduces.
	if cdf[Restore] != 32 || cdf[Reduce] != 16 {
		t.Errorf("DF restores/reduces = %d/%d, want 32/16", cdf[Restore], cdf[Reduce])
	}
	// The factor-of-Nmb repetition is the paper's headline DP-FS argument.
	if cdf[Restore] != cbf[Restore]*4 {
		t.Errorf("DF should repeat restores Nmb times")
	}

	// Pipelined breadth-first with DP-FS: 2 restores and 1 reduce per stage.
	p := plan(core.BreadthFirst, 4, 8, 4)
	p.DP = 2
	p.Sharding = core.DPFS
	s := mustGen(t, p)
	c := Counts(s)
	if c[Restore] != 2*16 || c[Reduce] != 16 {
		t.Errorf("pipelined BF restores/reduces = %d/%d, want 32/16", c[Restore], c[Reduce])
	}
}

func TestReduceCountsWithDP(t *testing.T) {
	for _, m := range []core.Method{core.GPipe, core.OneFOneB, core.DepthFirst, core.BreadthFirst} {
		loops := 1
		if m.Looped() {
			loops = 2
		}
		p := plan(m, 4, 8, loops)
		p.DP = 4
		s := mustGen(t, p)
		c := Counts(s)
		want := 4 * loops // one reduce per stage
		if c[Reduce] != want {
			t.Errorf("%v: reduces = %d, want %d", m, c[Reduce], want)
		}
	}
}

// Property test: invariants hold across the whole (method, PP, Nmb, Loops)
// lattice the generators accept.
func TestInvariantsProperty(t *testing.T) {
	methods := []core.Method{core.GPipe, core.OneFOneB, core.DepthFirst,
		core.BreadthFirst, core.NoPipelineDF, core.NoPipelineBF}
	f := func(mi, ppE, nmbX, loopE, dpE uint8) bool {
		m := methods[int(mi)%len(methods)]
		pp := 1 << (ppE % 4) // 1..8
		loops := 1
		if m.Looped() || !m.Pipelined() {
			loops = 1 << (loopE % 4)
		}
		nmb := pp * (1 + int(nmbX)%5)
		if m == core.NoPipelineDF || m == core.NoPipelineBF {
			nmb = 1 + int(nmbX)%8
		}
		p := plan(m, pp, nmb, loops)
		p.DP = 1 << (dpE % 3)
		if p.DP > 1 && (m == core.NoPipelineBF || m == core.BreadthFirst) && loops > 0 {
			p.Sharding = core.DPFS
		}
		s, err := Generate(p)
		if err != nil {
			return false
		}
		return Check(s) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The checker must actually catch violations.
func TestCheckCatchesCorruption(t *testing.T) {
	base := plan(core.GPipe, 4, 8, 1)
	corruptions := []struct {
		name string
		mut  func(*Schedule)
	}{
		{"drop forward", func(s *Schedule) { s.Devices[0] = s.Devices[0][1:] }},
		{"double forward", func(s *Schedule) {
			s.Devices[0] = append(Program{s.Devices[0][0]}, s.Devices[0]...)
		}},
		{"backward before forward", func(s *Schedule) {
			p := s.Devices[0]
			p[0], p[8] = p[8], p[0] // swap F.0 with B.0
		}},
		{"optimize not last", func(s *Schedule) {
			p := s.Devices[1]
			p[len(p)-1], p[len(p)-2] = p[len(p)-2], p[len(p)-1]
		}},
		{"wrong owner", func(s *Schedule) { s.Devices[0][0].Stage = 1 }},
		{"micro out of range", func(s *Schedule) { s.Devices[0][0].Micro = 99 }},
	}
	for _, c := range corruptions {
		s := mustGen(t, base)
		c.mut(s)
		if err := Check(s); err == nil {
			t.Errorf("%s: corruption not detected", c.name)
		}
	}
}

func TestOpString(t *testing.T) {
	cases := []struct {
		op   Op
		want string
	}{
		{Op{Forward, 3, 2}, "F3.2"},
		{Op{Backward, 0, 0}, "B0.0"},
		{Op{Reduce, 1, -1}, "G1"},
		{Op{Restore, 5, 2}, "W5.2"},
		{Op{Optimize, -1, -1}, "S"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.op, got, c.want)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(core.Plan{}); err == nil {
		t.Error("empty plan should fail")
	}
	p := plan(core.GPipe, 8, 4, 1) // too few micro-batches
	if _, err := Generate(p); err == nil {
		t.Error("NumMicro < PP should fail")
	}
}

func progString(prog Program) string {
	parts := make([]string, len(prog))
	for i, op := range prog {
		parts[i] = op.String()
	}
	return strings.Join(parts, " ")
}
