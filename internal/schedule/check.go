package schedule

import (
	"fmt"

	"bfpp/internal/core"
)

// key identifies one (stage, micro-batch) pair.
type key struct{ stage, micro int }

// Check verifies the structural invariants every valid schedule must
// satisfy and returns the first violation. It is used by the test suite
// and by the engine as a guard before simulation:
//
//  1. Completeness: each (stage, micro-batch) pair has exactly one Forward
//     and one Backward, both on the stage's owner device.
//  2. Per-device causality: Forward(s,m) precedes Backward(s,m); for the
//     stages of one device, Forward(s,m) precedes Forward(s',m) when s < s'
//     and Backward ordering is reversed.
//  3. Restores precede the first use of their stage (and micro-batch, when
//     per-micro-batch) in the corresponding pass.
//  4. Reductions follow the last Backward of their stage (per-batch) or
//     their own micro-batch's Backward (per-micro-batch).
//  5. Exactly one Optimize per device, as the final operation, and after
//     every Reduce.
func Check(s *Schedule) error {
	p := s.Plan
	fwdSeen := map[key]int{}
	bwdSeen := map[key]int{}

	nStages := p.NumStages()

	for r, prog := range s.Devices {
		fwdPos := map[key]int{}
		bwdPos := map[key]int{}
		lastBwd := map[int]int{} // stage -> last backward position
		restorePos := map[key][]int{}
		reducePos := map[key][]int{}
		optPos := -1
		for i, op := range prog {
			switch op.Kind {
			case Forward, Backward:
				if op.Stage < 0 || op.Stage >= nStages {
					return fmt.Errorf("device %d op %d: stage %d out of range", r, i, op.Stage)
				}
				if op.Micro < 0 || op.Micro >= p.NumMicro {
					return fmt.Errorf("device %d op %d: micro %d out of range", r, i, op.Micro)
				}
				owner := p.StageDevice(op.Stage)
				if owner != r {
					return fmt.Errorf("device %d op %v: stage owned by device %d", r, op, owner)
				}
				k := key{op.Stage, op.Micro}
				if op.Kind == Forward {
					fwdSeen[k]++
					fwdPos[k] = i
				} else {
					bwdSeen[k]++
					bwdPos[k] = i
					lastBwd[op.Stage] = i
				}
			case Restore:
				restorePos[key{op.Stage, op.Micro}] = append(restorePos[key{op.Stage, op.Micro}], i)
			case Reduce:
				k := key{op.Stage, op.Micro}
				reducePos[k] = append(reducePos[k], i)
			case Optimize:
				if optPos >= 0 {
					return fmt.Errorf("device %d: multiple Optimize ops", r)
				}
				optPos = i
			default:
				return fmt.Errorf("device %d op %d: unknown kind %v", r, i, op.Kind)
			}
		}

		// Causality within the device.
		for k, fp := range fwdPos {
			bp, ok := bwdPos[k]
			if ok && bp < fp {
				return fmt.Errorf("device %d: backward %v before forward", r, k)
			}
		}
		stages := p.DeviceStages(r)
		for mb := 0; mb < p.NumMicro; mb++ {
			for i := 1; i < len(stages); i++ {
				lo, hi := key{stages[i-1], mb}, key{stages[i], mb}
				if fp, ok := fwdPos[hi]; ok {
					if fp2, ok2 := fwdPos[lo]; ok2 && fp < fp2 {
						return fmt.Errorf("device %d: forward %v before %v", r, hi, lo)
					}
				}
				if bp, ok := bwdPos[lo]; ok {
					if bp2, ok2 := bwdPos[hi]; ok2 && bp < bp2 {
						return fmt.Errorf("device %d: backward %v before %v", r, lo, hi)
					}
				}
			}
		}

		// A per-batch reduce (micro == -1) must follow the stage's last
		// backward; a per-micro-batch reduce must follow that micro-batch's
		// backward of the stage.
		for k, positions := range reducePos {
			for _, pos := range positions {
				if k.micro < 0 {
					if lb, ok := lastBwd[k.stage]; ok && pos < lb {
						return fmt.Errorf("device %d: reduce of stage %d at %d before last backward at %d",
							r, k.stage, pos, lb)
					}
				} else if bp, ok := bwdPos[k]; ok && pos < bp {
					return fmt.Errorf("device %d: reduce %v at %d before its backward at %d",
						r, k, pos, bp)
				}
			}
		}

		// Restores precede first use: every compute op must see some
		// restore of its stage (per-batch, or matching its micro-batch)
		// earlier in the program when DP-FS is on.
		if p.Sharding == core.DPFS {
			for k, fp := range fwdPos {
				if !hasRestoreBefore(restorePos, k, fp) {
					return fmt.Errorf("device %d: forward %v without preceding restore", r, k)
				}
			}
			for k, bp := range bwdPos {
				if !hasRestoreBefore(restorePos, k, bp) {
					return fmt.Errorf("device %d: backward %v without preceding restore", r, k)
				}
			}
		}

		// Optimize last.
		if optPos != len(prog)-1 {
			return fmt.Errorf("device %d: Optimize not final op (pos %d of %d)", r, optPos, len(prog))
		}
	}

	// Completeness across devices.
	for st := 0; st < nStages; st++ {
		for mb := 0; mb < p.NumMicro; mb++ {
			k := key{st, mb}
			if fwdSeen[k] != 1 {
				return fmt.Errorf("stage %d micro %d: %d forwards, want 1", st, mb, fwdSeen[k])
			}
			if bwdSeen[k] != 1 {
				return fmt.Errorf("stage %d micro %d: %d backwards, want 1", st, mb, bwdSeen[k])
			}
		}
	}
	return nil
}

// hasRestoreBefore reports whether some restore of the stage (per-batch or
// matching micro-batch) appears before position pos.
func hasRestoreBefore(restores map[key][]int, k key, pos int) bool {
	for _, p := range restores[key{k.stage, -1}] {
		if p < pos {
			return true
		}
	}
	for _, p := range restores[k] {
		if p < pos {
			return true
		}
	}
	return false
}

// MaxInFlight returns, for one device, the maximum number of micro-batch
// activations held at once: the peak over the program of
// (#forwards issued - #backwards completed). This drives the activation
// checkpoint memory differences between the schedules (Table 4.1): GPipe
// and breadth-first hold N_mb * N_loop, 1F1B holds about PP - rank, and
// depth-first about PP * Loops in the worst device.
func MaxInFlight(prog Program) int {
	cur, peak := 0, 0
	for _, op := range prog {
		switch op.Kind {
		case Forward:
			cur++
			if cur > peak {
				peak = cur
			}
		case Backward:
			cur--
		}
	}
	return peak
}

// Counts summarizes a schedule's operation totals per kind, used by tests
// and by the network-volume accounting (paper Eqs. 20-29).
func Counts(s *Schedule) map[Kind]int {
	c := map[Kind]int{}
	for _, prog := range s.Devices {
		for _, op := range prog {
			c[op.Kind]++
		}
	}
	return c
}
