package schedule

import (
	"fmt"
	"sync"

	"bfpp/internal/core"
)

// key identifies one (stage, micro-batch) pair (retained for error text).
type key struct{ stage, micro int }

// String renders a pair as the map-keyed Check used to.
func (k key) String() string { return fmt.Sprintf("{%d %d}", k.stage, k.micro) }

// checkScratch pools Check's per-(stage, micro) position tables. Check
// runs once per distinct schedule memo key, and since the search's
// branch-and-bound prechecks every enumerated candidate the flat tables
// (replacing the original per-device maps) keep it off the sweep's
// critical path.
type checkScratch struct {
	fwdSeen, bwdSeen       []uint8
	fwdPos, bwdPos         []int32
	lastBwd                []int32
	restoreMinB            []int32 // earliest per-batch restore per stage
	restoreMinM            []int32 // earliest per-micro restore per (stage, micro)
	reduceStage, reducePos []int32
}

var checkScratchPool = sync.Pool{New: func() any { return &checkScratch{} }}

// Check verifies the structural invariants every valid schedule must
// satisfy and returns the first violation. It is used by the test suite
// and by the engine as a guard before simulation:
//
//  1. Completeness: each (stage, micro-batch) pair has exactly one Forward
//     and one Backward, both on the stage's owner device.
//  2. Per-device causality: Forward(s,m) precedes Backward(s,m); for the
//     stages of one device, Forward(s,m) precedes Forward(s',m) when s < s'
//     and Backward ordering is reversed.
//  3. Restores precede the first use of their stage (and micro-batch, when
//     per-micro-batch) in the corresponding pass.
//  4. Reductions follow the last Backward of their stage (per-batch) or
//     their own micro-batch's Backward (per-micro-batch).
//  5. Exactly one Optimize per device, as the final operation, and after
//     every Reduce.
func Check(s *Schedule) error {
	p := s.Plan
	nStages := p.NumStages()
	nm := p.NumMicro
	nk := nStages * nm
	idx := func(stage, micro int) int { return stage*nm + micro }

	sc := checkScratchPool.Get().(*checkScratch)
	defer checkScratchPool.Put(sc)
	fwdSeen := growScratch(&sc.fwdSeen, nk)
	bwdSeen := growScratch(&sc.bwdSeen, nk)
	for i := 0; i < nk; i++ {
		fwdSeen[i], bwdSeen[i] = 0, 0
	}
	fwdPos := growScratch(&sc.fwdPos, nk)
	bwdPos := growScratch(&sc.bwdPos, nk)
	lastBwd := growScratch(&sc.lastBwd, nStages)
	restoreMinB := growScratch(&sc.restoreMinB, nStages)
	restoreMinM := growScratch(&sc.restoreMinM, nk)

	for r, prog := range s.Devices {
		// Reset the per-device tables (stages belong to one device, but a
		// malformed schedule may place ops anywhere, so clear them all).
		for i := 0; i < nk; i++ {
			fwdPos[i], bwdPos[i], restoreMinM[i] = -1, -1, -1
		}
		for i := 0; i < nStages; i++ {
			lastBwd[i], restoreMinB[i] = -1, -1
		}
		reduceStage := sc.reduceStage[:0]
		reducePos := sc.reducePos[:0]
		optPos := -1
		for i, op := range prog {
			switch op.Kind {
			case Forward, Backward:
				if op.Stage < 0 || op.Stage >= nStages {
					return fmt.Errorf("device %d op %d: stage %d out of range", r, i, op.Stage)
				}
				if op.Micro < 0 || op.Micro >= nm {
					return fmt.Errorf("device %d op %d: micro %d out of range", r, i, op.Micro)
				}
				owner := p.StageDevice(op.Stage)
				if owner != r {
					return fmt.Errorf("device %d op %v: stage owned by device %d", r, op, owner)
				}
				k := idx(op.Stage, op.Micro)
				if op.Kind == Forward {
					if fwdSeen[k] < 2 {
						fwdSeen[k]++ // saturate: != 1 is all completeness needs
					}
					fwdPos[k] = int32(i)
				} else {
					if bwdSeen[k] < 2 {
						bwdSeen[k]++
					}
					bwdPos[k] = int32(i)
					lastBwd[op.Stage] = int32(i)
				}
			case Restore:
				if op.Stage >= 0 && op.Stage < nStages {
					if op.Micro == -1 {
						// Only the exact per-batch marker satisfies the
						// restore-before-use checks below; other negative
						// micros are junk keys the map-based Check also
						// never matched against a compute op.
						if restoreMinB[op.Stage] < 0 {
							restoreMinB[op.Stage] = int32(i)
						}
					} else if op.Micro >= 0 && op.Micro < nm {
						if k := idx(op.Stage, op.Micro); restoreMinM[k] < 0 {
							restoreMinM[k] = int32(i)
						}
					}
				}
			case Reduce:
				// Out-of-range reduce targets have no backward to validate
				// against (the map-keyed original silently tolerated them);
				// everything else is checked against bwdPos/lastBwd below,
				// with per-micro reduces encoded as nStages + pair index.
				if op.Stage >= 0 && op.Stage < nStages && op.Micro < nm {
					enc := int32(op.Stage)
					if op.Micro >= 0 {
						enc = int32(idx(op.Stage, op.Micro) + nStages)
					}
					reduceStage = append(reduceStage, enc)
					reducePos = append(reducePos, int32(i))
				}
			case Optimize:
				if optPos >= 0 {
					return fmt.Errorf("device %d: multiple Optimize ops", r)
				}
				optPos = i
			default:
				return fmt.Errorf("device %d op %d: unknown kind %v", r, i, op.Kind)
			}
		}
		sc.reduceStage, sc.reducePos = reduceStage, reducePos

		// Causality within the device.
		for k := 0; k < nk; k++ {
			fp, bp := fwdPos[k], bwdPos[k]
			if fp >= 0 && bp >= 0 && bp < fp {
				return fmt.Errorf("device %d: backward %v before forward", r, key{k / nm, k % nm})
			}
		}
		stages := p.DeviceStages(r)
		for mb := 0; mb < nm; mb++ {
			for i := 1; i < len(stages); i++ {
				lo, hi := idx(stages[i-1], mb), idx(stages[i], mb)
				if fp, fp2 := fwdPos[hi], fwdPos[lo]; fp >= 0 && fp2 >= 0 && fp < fp2 {
					return fmt.Errorf("device %d: forward %v before %v", r, key{stages[i], mb}, key{stages[i-1], mb})
				}
				if bp, bp2 := bwdPos[lo], bwdPos[hi]; bp >= 0 && bp2 >= 0 && bp < bp2 {
					return fmt.Errorf("device %d: backward %v before %v", r, key{stages[i-1], mb}, key{stages[i], mb})
				}
			}
		}

		// A per-batch reduce (micro == -1) must follow the stage's last
		// backward; a per-micro-batch reduce must follow that micro-batch's
		// backward of the stage.
		for ri, enc := range reduceStage {
			pos := reducePos[ri]
			if int(enc) < nStages {
				if lb := lastBwd[enc]; lb >= 0 && pos < lb {
					return fmt.Errorf("device %d: reduce of stage %d at %d before last backward at %d",
						r, enc, pos, lb)
				}
			} else {
				k := int(enc) - nStages
				if bp := bwdPos[k]; bp >= 0 && pos < bp {
					return fmt.Errorf("device %d: reduce %v at %d before its backward at %d",
						r, key{k / nm, k % nm}, pos, bp)
				}
			}
		}

		// Restores precede first use: every compute op must see some
		// restore of its stage (per-batch, or matching its micro-batch)
		// earlier in the program when DP-FS is on.
		if p.Sharding == core.DPFS {
			hasRestoreBefore := func(k int, pos int32) bool {
				if m := restoreMinB[k/nm]; m >= 0 && m < pos {
					return true
				}
				if m := restoreMinM[k]; m >= 0 && m < pos {
					return true
				}
				return false
			}
			for k := 0; k < nk; k++ {
				if fp := fwdPos[k]; fp >= 0 && !hasRestoreBefore(k, fp) {
					return fmt.Errorf("device %d: forward %v without preceding restore", r, key{k / nm, k % nm})
				}
				if bp := bwdPos[k]; bp >= 0 && !hasRestoreBefore(k, bp) {
					return fmt.Errorf("device %d: backward %v without preceding restore", r, key{k / nm, k % nm})
				}
			}
		}

		// Optimize last.
		if optPos != len(prog)-1 {
			return fmt.Errorf("device %d: Optimize not final op (pos %d of %d)", r, optPos, len(prog))
		}
	}

	// Completeness across devices. fwdSeen/bwdSeen accumulate across the
	// device loop exactly like the original cross-device maps.
	for st := 0; st < nStages; st++ {
		for mb := 0; mb < nm; mb++ {
			k := idx(st, mb)
			if fwdSeen[k] != 1 {
				return fmt.Errorf("stage %d micro %d: %d forwards, want 1", st, mb, fwdSeen[k])
			}
			if bwdSeen[k] != 1 {
				return fmt.Errorf("stage %d micro %d: %d backwards, want 1", st, mb, bwdSeen[k])
			}
		}
	}
	return nil
}

// MaxInFlight returns, for one device, the maximum number of micro-batch
// activations held at once: the peak over the program of
// (#forwards issued - #backwards completed). This drives the activation
// checkpoint memory differences between the schedules (Table 4.1): GPipe
// and breadth-first hold N_mb * N_loop, 1F1B holds about PP - rank, and
// depth-first about PP * Loops in the worst device.
func MaxInFlight(prog Program) int {
	cur, peak := 0, 0
	for _, op := range prog {
		switch op.Kind {
		case Forward:
			cur++
			if cur > peak {
				peak = cur
			}
		case Backward:
			cur--
		}
	}
	return peak
}

// Counts summarizes a schedule's operation totals per kind, used by tests
// and by the network-volume accounting (paper Eqs. 20-29).
func Counts(s *Schedule) map[Kind]int {
	c := map[Kind]int{}
	for _, prog := range s.Devices {
		for _, op := range prog {
			c[op.Kind]++
		}
	}
	return c
}
