package schedule

import (
	"reflect"
	"sync"
	"testing"

	"bfpp/internal/core"
)

func cachePlans() []core.Plan {
	return []core.Plan{
		{Method: core.BreadthFirst, DP: 4, PP: 4, TP: 2, MicroBatch: 1, NumMicro: 8, Loops: 4,
			Sharding: core.DPFS, OverlapDP: true, OverlapPP: true},
		{Method: core.DepthFirst, DP: 1, PP: 4, TP: 1, MicroBatch: 2, NumMicro: 8, Loops: 2},
		{Method: core.GPipe, DP: 2, PP: 4, TP: 1, MicroBatch: 1, NumMicro: 8, Loops: 1},
		{Method: core.OneFOneB, DP: 1, PP: 4, TP: 1, MicroBatch: 1, NumMicro: 8, Loops: 1},
		{Method: core.NoPipelineBF, DP: 4, PP: 1, TP: 1, MicroBatch: 1, NumMicro: 4, Loops: 4,
			Sharding: core.DPFS, OverlapDP: true},
		{Method: core.NoPipelineDF, DP: 4, PP: 1, TP: 1, MicroBatch: 1, NumMicro: 4, Loops: 4},
		{Method: core.Hybrid, DP: 1, PP: 4, TP: 1, MicroBatch: 1, NumMicro: 16, Loops: 2, Sequence: 8},
	}
}

func TestCachedMatchesGenerate(t *testing.T) {
	for _, p := range cachePlans() {
		want, err := Generate(p)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		got, err := Cached(p)
		if err != nil {
			t.Fatalf("Cached(%v): %v", p, err)
		}
		if got.Plan != p {
			t.Errorf("%v: cached schedule carries plan %v", p, got.Plan)
		}
		if !reflect.DeepEqual(got.Devices, want.Devices) {
			t.Errorf("%v: cached programs differ from Generate", p)
		}
	}
}

func TestCachedSharesProgramsAcrossEquivalentPlans(t *testing.T) {
	a := core.Plan{Method: core.BreadthFirst, DP: 2, PP: 4, TP: 1, MicroBatch: 1,
		NumMicro: 8, Loops: 2, OverlapDP: true, OverlapPP: true}
	b := a
	b.TP = 8         // not part of the schedule key
	b.MicroBatch = 4 // not part of the schedule key
	b.DP = 16        // DP only matters as DP > 1
	b.OverlapDP = false
	if KeyOf(a) != KeyOf(b) {
		t.Fatalf("keys differ: %+v vs %+v", KeyOf(a), KeyOf(b))
	}
	sa, err := Cached(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Cached(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(sa.Devices) == 0 || &sa.Devices[0] != &sb.Devices[0] {
		t.Error("equivalent plans should share one cached program set")
	}
	// DP = 1 changes the key (no reductions emitted).
	c := a
	c.DP = 1
	if KeyOf(a) == KeyOf(c) {
		t.Error("DP=1 must change the schedule key")
	}
}

func TestCachedError(t *testing.T) {
	bad := core.Plan{Method: core.DepthFirst, DP: 1, PP: 4, TP: 1, MicroBatch: 1,
		NumMicro: 6, Loops: 1} // NumMicro % PP != 0
	if _, err := Cached(bad); err == nil {
		t.Fatal("invalid plan should fail through the cache")
	}
	// The error must be stable on a cache hit too.
	if _, err := Cached(bad); err == nil {
		t.Fatal("cached error lost on second lookup")
	}
}

func TestCachedConcurrent(t *testing.T) {
	plans := cachePlans()
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, p := range plans {
				s, err := Cached(p)
				if err != nil {
					errs[w] = err
					return
				}
				if err := Check(s); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := CacheStats()
	if hits == 0 || misses == 0 {
		t.Errorf("cache stats hits=%d misses=%d: expected both nonzero", hits, misses)
	}
}
