package schedule

import (
	"fmt"
	"sync"

	"bfpp/internal/core"
)

// Traits declares a generator's search, implementation and memory-model
// metadata. The search layer builds its method families from the family
// fields, the engine derives overlap behavior from Overlap (via the plan
// flags the search sets), and memsim consumes the memory hooks instead of
// switching on the method.
type Traits struct {
	// Family is the short key of the method family the generator belongs
	// to ("bf", "nl", ...). Generators sharing a key are variants of one
	// family (as GPipe and 1F1B share the paper's "non-looped" family).
	// An empty key keeps the method out of the search families.
	Family string
	// FamilyName is the family's display name (the Figure 7 legend); the
	// first registered generator of a family sets it.
	FamilyName string
	// Paper marks the families of the paper's Figure 7 comparison; the
	// default search sweeps only those.
	Paper bool
	// Overlap reports whether the method's implementation overlaps data-
	// and pipeline-parallel communication with compute (Section 5: the
	// paper's implementation does, the Megatron-LM baseline does not).
	// The search layer turns this into Plan.OverlapDP/OverlapPP.
	Overlap bool
	// Shardings lists the data-parallel sharding modes the search
	// enumerates for this method.
	Shardings []core.Sharding

	// InFlight returns the worst-device number of (stage, micro-batch)
	// activation pairs held simultaneously (Table 4.1), driving the
	// activation-checkpoint memory estimate.
	InFlight func(core.Plan) int
	// PerStageAggregation reports per-stage gradient aggregation (one
	// reduction per stage per batch), which halves the half-precision
	// buffer requirement under DP-PS (Appendix A.2.1).
	PerStageAggregation bool
	// GradsOutsidePeak reports the Megatron-LM implementation's fp32
	// gradient buffer allocated on the fly outside the memory peak
	// (Appendix E footnote 15).
	GradsOutsidePeak bool
	// StashedWeights returns the number of extra resident half-precision
	// weight versions per stage (PipeDream weight stashing); nil means
	// none.
	StashedWeights func(core.Plan) int
	// KeyExtra returns the extra plan parameter the device programs depend
	// on (the hybrid sequence length, the V-schedule in-flight cap); nil
	// means none. It feeds the schedule memo-cache key.
	KeyExtra func(core.Plan) int

	// StepLB returns an admissible lower bound on the simulated batch time
	// of the plan under the given per-operation costs, and whether the
	// bound is exact (bit-identical to the DES makespan, which lets the
	// search skip the simulation entirely). The generic placement-level
	// floor of internal/analytic applies on top, so nil is always safe;
	// a hook only tightens pruning. The search's pricing cascade treats a
	// non-nil StepLB as tier 2 — the O(ops) price it pays only when the
	// cheap tier-1 floor fails to prune — so the hook must stay O(ops) or
	// better and a generator whose bound is merely a cheap floor belongs
	// in StepFloor instead.
	StepLB func(p core.Plan, c StepCosts) (lb float64, exact bool)
	// StepFloor returns a cheap (O(1)-ish, no replay) admissible lower
	// bound on the simulated batch time, consulted by the search's tier-1
	// pricing pass for every enumerated candidate alongside the generic
	// placement floor. It must never exceed the simulated batch time (the
	// same admissibility contract as StepLB, without the exactness
	// channel); nil means the generic floor alone prices tier 1.
	StepFloor func(p core.Plan, c StepCosts) float64
	// StepLBCached is StepLB with a prefix-amortization cache: candidates
	// at one grid point that share an op-sequence prefix (or a whole
	// sequence) may checkpoint the replay's per-stream cursor state in rc
	// and resume per-candidate. It must return exactly what StepLB
	// returns — the cache is a pure performance channel — and must accept
	// a nil rc (falling back to the uncached replay). nil means StepLB is
	// always priced from scratch.
	StepLBCached func(p core.Plan, c StepCosts, rc *ReplayCache) (lb float64, exact bool)
	// InFlightFloor is a cheap admissible lower bound on InFlight, for
	// generators whose exact hook is expensive (the V-schedule's InFlight
	// generates programs); nil means InFlight itself is cheap and exact.
	// memsim.Floor consumes it.
	InFlightFloor func(core.Plan) int
	// SequenceOptions lists the Plan.Sequence values the search enumerates
	// per grid point (the hybrid sequence lengths of Section 4.2, the
	// V-schedule in-flight caps), given the candidate plan with Sequence
	// zero. nil means the method ignores Sequence and only zero is
	// enumerated.
	SequenceOptions func(core.Plan) []int
}

// Generator builds the device programs of one schedule method. Generate
// may assume the structural fields Generate's shared prologue checks
// (positive sizes, NumMicro >= PP for pipelined methods) but must validate
// its own method-specific constraints, since plans reach it both from the
// search (pre-validated) and hand-built from commands and tests.
type Generator interface {
	// Method returns the core.Method this generator implements.
	Method() core.Method
	// Traits returns the generator's static metadata.
	Traits() Traits
	// Generate builds the per-device programs for the plan.
	Generate(p core.Plan) (*Schedule, error)
}

var reg struct {
	sync.RWMutex
	byMethod map[core.Method]Generator
	order    []Generator
}

// Register publishes a schedule generator. It is called at init time (this
// package registers the paper's seven methods and the two extension
// schedules) and panics on a duplicate method.
func Register(g Generator) {
	m := g.Method()
	reg.Lock()
	defer reg.Unlock()
	if reg.byMethod == nil {
		reg.byMethod = map[core.Method]Generator{}
	}
	if _, ok := reg.byMethod[m]; ok {
		panic(fmt.Sprintf("schedule: generator for method %v registered twice", m))
	}
	reg.byMethod[m] = g
	reg.order = append(reg.order, g)
}

// Lookup returns the generator registered for a method.
func Lookup(m core.Method) (Generator, bool) {
	reg.RLock()
	defer reg.RUnlock()
	g, ok := reg.byMethod[m]
	return g, ok
}

// Generators returns every registered generator in registration order
// (which the search layer uses as its family display order).
func Generators() []Generator {
	reg.RLock()
	defer reg.RUnlock()
	return append([]Generator(nil), reg.order...)
}

// conservativeInFlight assumes every (stage, micro-batch) pair stays
// resident — the safe upper bound for the memory estimate.
func conservativeInFlight(p core.Plan) int { return p.NumMicro * p.Loops }

// TraitsOf returns the registered traits of a method. Unregistered
// methods — and registered generators that left the hook nil — get the
// conservative InFlight default, so the memory estimator never calls a
// nil hook.
func TraitsOf(m core.Method) Traits {
	if g, ok := Lookup(m); ok {
		tr := g.Traits()
		if tr.InFlight == nil {
			tr.InFlight = conservativeInFlight
		}
		return tr
	}
	return Traits{InFlight: conservativeInFlight}
}

func init() {
	// The two extension methods carry their core metadata here rather than
	// in core's static table: registering a new schedule end-to-end takes
	// exactly one core.RegisterMethod and one schedule.Register call.
	core.RegisterMethod(core.WeightStash1F1B, core.MethodInfo{
		Name: "WS-1F1B", Aliases: []string{"ws-1f1b", "ws1f1b", "weight-stash", "pipedream"},
		Pipelined: true,
		CheckSharding: func(p core.Plan) error {
			if p.Sharding != core.DP0 {
				return fmt.Errorf("plan: weight-stashing 1F1B supports only DP0 (stashed versions pin unsharded weights)")
			}
			return nil
		},
	})
	core.RegisterMethod(core.VSchedule, core.MethodInfo{
		Name: "V-schedule", Aliases: []string{"v-schedule", "vschedule", "vs"},
		Looped: true, Pipelined: true,
		Placement: core.PlacementVee,
		CheckPlan: func(p core.Plan) error {
			// Zero means the default cap (N_PP); an explicit cap below
			// Loops cannot carry one micro-batch through a device's local
			// stages, so reject it instead of silently raising it.
			if p.Sequence < 0 || (p.Sequence > 0 && p.Sequence < p.Loops) {
				return fmt.Errorf("plan: v-schedule in-flight cap %d must be 0 (default) or >= Loops (%d)", p.Sequence, p.Loops)
			}
			return nil
		},
		CheckSharding: func(p core.Plan) error {
			if p.Sharding == core.DPFS {
				return fmt.Errorf("plan: v-schedule with DP-FS is excluded (per-device stage interleaving repeats restores)")
			}
			return nil
		},
	})

	// Paper methods, in the family display order of Figure 7; the two
	// extension schedules follow.
	Register(breadthFirstGen{})
	Register(depthFirstGen{})
	Register(gpipeGen{})
	Register(oneFOneBGen{})
	Register(noPipelineBFGen{})
	Register(noPipelineDFGen{})
	Register(hybridGen{})
	Register(weightStashGen{})
	Register(vScheduleGen{})
}
