package schedule

import (
	"fmt"

	"bfpp/internal/core"
)

// This file holds the reproduction's two extension schedules, shipped
// through the registry as the proof of the pluggable-generator
// architecture: a PipeDream-style weight-stashing 1F1B (Harlap et al.,
// 2018) and the controllable-memory V-schedule (Qi et al., 2024). Their
// core metadata is registered in registry.go's init alongside the
// generators.

// weightStashGen is 1F1B with PipeDream-style weight stashing. Within one
// synchronous training batch the data dependencies are exactly 1F1B's
// (weight stashing relaxes weight-version dependencies, not activation
// dependencies), so the compute program matches the 1F1B generator. What
// stashing changes is the implementation profile: every in-flight
// micro-batch pins the half-precision weight version it was forwarded
// with (counted by the StashedWeights memory hook), and communication is
// not coupled to a pipeline flush, so the implementation overlaps data-
// and pipeline-parallel traffic with compute like the paper's runtime
// (Overlap trait) instead of paying Megatron-LM's blocking stalls.
type weightStashGen struct{}

func (weightStashGen) Method() core.Method { return core.WeightStash1F1B }

func (weightStashGen) Traits() Traits {
	return Traits{
		Family: "ws", FamilyName: "WS-1F1B (PipeDream)",
		Overlap:   true,
		Shardings: []core.Sharding{core.DP0},
		InFlight:  oneFOneBPairs,
		// One stashed copy per in-flight micro-batch beyond the current
		// weights.
		StashedWeights: func(p core.Plan) int { return oneFOneBPairs(p) - 1 },
		// The compute program is 1F1B's, so the multi-stream replay prices
		// it exactly — overlapped communication included.
		StepLB: func(p core.Plan, c StepCosts) (float64, bool) {
			return exactOrFloor(p, c, oneFOneBOps, nil)
		},
	}
}

func (weightStashGen) Generate(p core.Plan) (*Schedule, error) {
	return perDevice(p, func(b *progBuilder, r int) {
		emitOneFOneB(b, r, p.NumMicro)
		b.bunchedReduces(r)
	}), nil
}

// vCap returns the V-schedule's effective per-device in-flight cap in
// (stage, micro-batch) activation pairs: Plan.Sequence when set, else
// N_PP. A device needs at least Loops slots to carry one micro-batch
// through all of its local stages; explicit caps below that are rejected
// by the method's CheckPlan, and the default is floored here for deep
// loopings (Loops > PP).
func vCap(p core.Plan) int {
	c := p.Sequence
	if c <= 0 {
		c = p.PP
	}
	if c < p.Loops {
		c = p.Loops
	}
	return c
}

// vScheduleGen is the controllable-memory V-schedule. Stages are placed in
// the zigzag "V" pattern (core.PlacementVee): odd loops run in reverse
// device order, so each device hosts complementary early and late stages —
// device 0 owns both the first forward stage (longest-lived activations)
// and the last stage (where the backward pass begins), balancing activation
// lifetimes across devices, and the turnaround stages share a device so
// the apex transfer disappears.
//
// The program is built by deterministic greedy list scheduling over the
// stage dependency graph: each device runs ready backwards first (draining
// activation memory) and otherwise the lowest-(micro, stage) ready forward,
// subject to the in-flight cap vCap (the controllable-memory dial —
// smaller caps trade pipeline bubble for activation memory). To stay
// deadlock-free at any cap the op at the head of the serial
// micro-batch-major order is always cap-exempt, so the worst-device
// in-flight can exceed the cap by a few pairs; the memory-model hook
// reports the exact generated peak.
type vScheduleGen struct{}

func (vScheduleGen) Method() core.Method { return core.VSchedule }

func (vScheduleGen) Traits() Traits {
	return Traits{
		Family: "v", FamilyName: "V-schedule (controllable mem)",
		Overlap:   true,
		Shardings: []core.Sharding{core.DP0},
		// The greedy construction may exceed the cap slightly where the
		// deadlock-freedom exemption fires; report the exact peak of the
		// generated programs.
		InFlight: func(p core.Plan) int {
			s, err := Cached(p)
			if err != nil {
				return p.NumMicro * p.Loops
			}
			worst := 0
			for _, prog := range s.Devices {
				if v := MaxInFlight(prog); v > worst {
					worst = v
				}
			}
			return worst
		},
		// The exact in-flight hook above generates programs; the floor is
		// the cheap admissible bound the search's memory pre-filter uses:
		// just before the first backward of the last stage, its device has
		// forwarded micro-batch 0 through all of its local stages and
		// retired nothing, so the worst device holds at least Loops pairs
		// whatever the cap.
		InFlightFloor: func(p core.Plan) int { return p.Loops },
		KeyExtra:      vCap,
		// The greedy list-scheduled programs have no implicit op sequence
		// to replay, so the method has no exact tier-2 bound; the
		// vee-placement warmup/drain floor (with its cap-aware term) is the
		// cheap tier-1 bound internal/analytic maximizes with the generic
		// floor.
		StepFloor: vScheduleFloor,
		// The controllable-memory dial (ROADMAP open item): enumerate a
		// small set of in-flight caps per grid point — the default (N_PP),
		// the deadlock floor (Loops, minimum activation memory), a midpoint
		// and a deeper 2*N_PP cap — deduplicated by effective cap so the
		// candidate list stays tight.
		SequenceOptions: func(p core.Plan) []int {
			base := p
			seen := map[int]bool{}
			var opts []int
			for _, s := range []int{0, p.Loops, (p.Loops + p.PP) / 2, 2 * p.PP} {
				if s > 0 && s < p.Loops {
					continue // rejected by the method's CheckPlan
				}
				base.Sequence = s
				eff := vCap(base)
				if seen[eff] {
					continue
				}
				seen[eff] = true
				opts = append(opts, s)
			}
			return opts
		},
	}
}

// vOp identifies one compute op during V-schedule construction.
type vOp struct {
	backward bool
	stage    int
	micro    int
}

// vPriority orders a device's ready ops: backwards before forwards, then
// lowest micro-batch, then lowest stage.
func vPriority(a, b vOp) bool {
	if a.backward != b.backward {
		return a.backward
	}
	if a.micro != b.micro {
		return a.micro < b.micro
	}
	return a.stage < b.stage
}

func (vScheduleGen) Generate(p core.Plan) (*Schedule, error) {
	nStages := p.Stages()
	nm := p.NumMicro
	capPairs := vCap(p)

	// Finish times of scheduled ops, indexed forward = s*nm + m and
	// backward = (nStages+s)*nm + m; a negative value means unscheduled.
	fin := make([]float64, 2*nStages*nm)
	for i := range fin {
		fin[i] = -1
	}
	fIdx := func(s, m int) int { return s*nm + m }
	bIdx := func(s, m int) int { return (nStages+s)*nm + m }

	owner := make([]int, nStages)
	for s := range owner {
		owner[s] = p.StageDevice(s)
	}

	ready := make([][]vOp, p.PP) // per-device ready compute ops
	for m := 0; m < nm; m++ {
		ready[owner[0]] = append(ready[owner[0]], vOp{stage: 0, micro: m})
	}
	free := make([]float64, p.PP)  // per-device stream frontier
	inflight := make([]int, p.PP)  // forwards issued minus backwards issued
	progs := make([]Program, p.PP) // emitted programs, in schedule order
	serial := 0                    // head of the micro-major serial order
	scheduled, total := 0, 2*nStages*nm

	// serialOp returns the k-th op of the serial micro-batch-major order
	// (micro 0: F stages 0..n-1 then B stages n-1..0, then micro 1, ...),
	// a valid topological order whose head is always cap-exempt.
	serialOp := func(k int) vOp {
		m, r := k/(2*nStages), k%(2*nStages)
		if r < nStages {
			return vOp{stage: r, micro: m}
		}
		return vOp{backward: true, stage: 2*nStages - 1 - r, micro: m}
	}

	// depFinish returns the latest finish among an op's dependencies
	// (guaranteed scheduled for ready ops).
	depFinish := func(o vOp) float64 {
		var t float64
		if !o.backward {
			if o.stage > 0 {
				t = fin[fIdx(o.stage-1, o.micro)]
			}
			return t
		}
		t = fin[fIdx(o.stage, o.micro)]
		if o.stage < nStages-1 {
			if bt := fin[bIdx(o.stage+1, o.micro)]; bt > t {
				t = bt
			}
		}
		return t
	}

	for scheduled < total {
		// Advance the serial head past already-scheduled ops.
		for serial < total {
			h := serialOp(serial)
			idx := fIdx(h.stage, h.micro)
			if h.backward {
				idx = bIdx(h.stage, h.micro)
			}
			if fin[idx] < 0 {
				break
			}
			serial++
		}
		head := serialOp(serial)

		// Pick, per device, its best runnable op (ready backwards always;
		// ready forwards when under the cap or at the serial head), then
		// the device whose op starts earliest.
		bestDev, bestAt := -1, -1
		var bestStart float64
		for d := 0; d < p.PP; d++ {
			at := -1
			for i, o := range ready[d] {
				if !o.backward && inflight[d] >= capPairs && o != head {
					continue
				}
				if at < 0 || vPriority(o, ready[d][at]) {
					at = i
				}
			}
			if at < 0 {
				continue
			}
			start := free[d]
			if t := depFinish(ready[d][at]); t > start {
				start = t
			}
			if bestDev < 0 || start < bestStart {
				bestDev, bestAt, bestStart = d, at, start
			}
		}
		if bestDev < 0 {
			// Unreachable: the serial head is always runnable on its device.
			return nil, fmt.Errorf("schedule: v-schedule stalled at cap %d (%d/%d ops)", capPairs, scheduled, total)
		}

		d, o := bestDev, ready[bestDev][bestAt]
		ready[d] = append(ready[d][:bestAt], ready[d][bestAt+1:]...)
		dur := 1.0 // forward unit time
		if o.backward {
			dur = 2.0 // backward (with recompute) roughly twice the forward
		}
		end := bestStart + dur
		free[d] = end
		scheduled++
		if o.backward {
			fin[bIdx(o.stage, o.micro)] = end
			inflight[d]--
			progs[d] = append(progs[d], Op{Backward, o.stage, o.micro})
			if o.stage > 0 {
				// F(stage-1, micro) finished long ago (it is upstream of
				// this backward), so B(stage-1, micro) is now ready.
				ready[owner[o.stage-1]] = append(ready[owner[o.stage-1]],
					vOp{backward: true, stage: o.stage - 1, micro: o.micro})
			}
		} else {
			fin[fIdx(o.stage, o.micro)] = end
			inflight[d]++
			progs[d] = append(progs[d], Op{Forward, o.stage, o.micro})
			if o.stage < nStages-1 {
				ready[owner[o.stage+1]] = append(ready[owner[o.stage+1]],
					vOp{stage: o.stage + 1, micro: o.micro})
			} else {
				ready[d] = append(ready[d], vOp{backward: true, stage: o.stage, micro: o.micro})
			}
		}
	}

	for r := 0; r < p.PP; r++ {
		b := progBuilder{p: p, prog: progs[r]}
		b.bunchedReduces(r)
		progs[r] = b.finish()
	}
	// No self-check here: every caller (Cached, the engine's uncached
	// path, the runtime, the tests) runs schedule.Check on the result.
	return &Schedule{Plan: p, Devices: progs}, nil
}
