package schedule

import (
	"math/rand"
	"strings"
	"testing"

	"bfpp/internal/core"
)

// TestUnregisteredMethodError asserts the registry returns a clear error
// for a method with no generator instead of a zero-value schedule.
func TestUnregisteredMethodError(t *testing.T) {
	bogus := core.Method(97)
	p := core.Plan{Method: bogus, DP: 1, PP: 1, TP: 1, MicroBatch: 1, NumMicro: 4, Loops: 1}
	if _, err := Generate(p); err == nil {
		t.Fatal("Generate with an unregistered method should fail")
	} else if !strings.Contains(err.Error(), "no generator registered") {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, err := Cached(p); err == nil {
		t.Fatal("Cached with an unregistered method should fail")
	}
}

// TestRegistryCoversAllMethods asserts every registered core method has a
// generator and coherent metadata.
func TestRegistryCoversAllMethods(t *testing.T) {
	for _, m := range core.Methods() {
		g, ok := Lookup(m)
		if !ok {
			t.Errorf("method %v has core metadata but no registered generator", m)
			continue
		}
		if g.Method() != m {
			t.Errorf("generator for %v reports method %v", m, g.Method())
		}
		tr := g.Traits()
		if tr.InFlight == nil {
			t.Errorf("%v: Traits.InFlight must be set", m)
		}
		if tr.Family != "" && tr.FamilyName == "" && firstOfFamily(m, tr.Family) {
			t.Errorf("%v: first generator of family %q must set FamilyName", m, tr.Family)
		}
	}
}

func firstOfFamily(m core.Method, key string) bool {
	for _, g := range Generators() {
		if g.Traits().Family == key {
			return g.Method() == m
		}
	}
	return false
}

// randomPlan draws a structurally valid plan for the method, respecting
// the generator's registered constraints, or reports false when the draw
// cannot be repaired.
func randomPlan(rng *rand.Rand, m core.Method) (core.Plan, bool) {
	p := core.Plan{
		Method:     m,
		DP:         1 << rng.Intn(3),
		TP:         1,
		MicroBatch: 1 + rng.Intn(3),
		Sharding:   core.DP0,
	}
	info, ok := m.Info()
	if !ok {
		return p, false
	}
	if !info.Pipelined {
		p.PP = 1
		p.Loops = 1 + rng.Intn(5)
		p.NumMicro = 1 + rng.Intn(8)
		if rng.Intn(2) == 0 && p.DP > 1 {
			p.Sharding = core.DPFS
		}
		return p, true
	}
	p.PP = 2 << rng.Intn(3) // 2..8
	p.Loops = 1
	if info.Looped {
		p.Loops = 1 << rng.Intn(3)
	}
	p.NumMicro = p.PP * (1 + rng.Intn(4))
	switch m {
	case core.BreadthFirst:
		if rng.Intn(2) == 0 && p.DP > 1 {
			p.Sharding = core.DPFS
		}
	case core.Hybrid:
		// Sequence: a multiple of PP dividing NumMicro.
		p.Sequence = p.PP
		if p.NumMicro%(2*p.PP) == 0 && rng.Intn(2) == 0 {
			p.Sequence = 2 * p.PP
		}
	case core.VSchedule:
		p.Sequence = rng.Intn(2*p.PP + 1) // 0 = default cap
	}
	if info.CheckPlan != nil && info.CheckPlan(p) != nil {
		return p, false
	}
	if info.CheckSharding != nil && info.CheckSharding(p) != nil {
		return p, false
	}
	return p, true
}

// TestRandomizedPlansPassCheck runs schedule.Check over randomized plans
// for every registered generator, including the two extension schedules.
func TestRandomizedPlansPassCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, g := range Generators() {
		m := g.Method()
		generated := 0
		for trial := 0; trial < 400 && generated < 50; trial++ {
			p, ok := randomPlan(rng, m)
			if !ok {
				continue
			}
			s, err := Generate(p)
			if err != nil {
				t.Fatalf("%v: Generate(%v): %v", m, p, err)
			}
			if err := Check(s); err != nil {
				t.Fatalf("%v: Check(%v): %v", m, p, err)
			}
			generated++
		}
		if generated < 20 {
			t.Errorf("%v: only %d random plans generated; generator under-tested", m, generated)
		}
	}
}

// TestWeightStashProgramMatchesOneFOneB pins the WS-1F1B modeling choice:
// within one synchronous batch its compute program equals 1F1B's — what
// changes are the overlap trait and the stashed-weights memory hook.
func TestWeightStashProgramMatchesOneFOneB(t *testing.T) {
	ws := core.Plan{Method: core.WeightStash1F1B, DP: 2, PP: 4, TP: 1,
		MicroBatch: 1, NumMicro: 8, Loops: 1, OverlapDP: true, OverlapPP: true}
	ob := ws
	ob.Method = core.OneFOneB
	ob.OverlapDP, ob.OverlapPP = false, false
	sw, err := Generate(ws)
	if err != nil {
		t.Fatal(err)
	}
	so, err := Generate(ob)
	if err != nil {
		t.Fatal(err)
	}
	for r := range sw.Devices {
		if len(sw.Devices[r]) != len(so.Devices[r]) {
			t.Fatalf("device %d: program lengths differ", r)
		}
		for i := range sw.Devices[r] {
			if sw.Devices[r][i] != so.Devices[r][i] {
				t.Fatalf("device %d op %d: %v != %v", r, i, sw.Devices[r][i], so.Devices[r][i])
			}
		}
	}
	tr := TraitsOf(core.WeightStash1F1B)
	if !tr.Overlap {
		t.Error("WS-1F1B must declare overlapped communication")
	}
	if tr.StashedWeights == nil || tr.StashedWeights(ws) != 3 {
		t.Error("WS-1F1B at PP=4, Nmb=8 should stash PP-1 = 3 extra weight versions")
	}
}

// TestVScheduleMemoryDial asserts the V-schedule's in-flight cap is a real
// memory dial: the generated worst-device in-flight tracks the cap, and
// smaller caps never exceed larger ones.
func TestVScheduleMemoryDial(t *testing.T) {
	base := core.Plan{Method: core.VSchedule, DP: 1, PP: 4, TP: 1,
		MicroBatch: 1, NumMicro: 16, Loops: 2, OverlapDP: true, OverlapPP: true}
	prev := 0
	for _, cap := range []int{2, 4, 8, 16} {
		p := base
		p.Sequence = cap
		s, err := Generate(p)
		if err != nil {
			t.Fatalf("cap %d: %v", cap, err)
		}
		worst := 0
		for _, prog := range s.Devices {
			if v := MaxInFlight(prog); v > worst {
				worst = v
			}
		}
		// The deadlock-freedom exemption may exceed the cap by a bounded
		// amount, but the dial must be monotone and roughly track the cap.
		if worst < prev {
			t.Errorf("cap %d: worst in-flight %d below smaller cap's %d", cap, worst, prev)
		}
		if worst > cap+p.Loops*p.PP {
			t.Errorf("cap %d: worst in-flight %d far above cap", cap, worst)
		}
		// The registered memory hook must report the exact generated peak.
		if got := TraitsOf(core.VSchedule).InFlight(p); got != worst {
			t.Errorf("cap %d: InFlight hook %d != generated peak %d", cap, got, worst)
		}
		prev = worst
	}
}

// TestVSchedulePlacementIsVee asserts the zigzag placement: odd loops run
// in reverse device order, so device 0 hosts the first and (for Loops=2)
// last stages and the apex stages share a device.
func TestVSchedulePlacementIsVee(t *testing.T) {
	p := core.Plan{Method: core.VSchedule, DP: 1, PP: 4, TP: 1,
		MicroBatch: 1, NumMicro: 8, Loops: 2}
	if got := p.StageDevice(0); got != 0 {
		t.Errorf("stage 0 on device %d, want 0", got)
	}
	if got := p.StageDevice(7); got != 0 {
		t.Errorf("stage 7 on device %d, want 0 (V turnback)", got)
	}
	if a, b := p.StageDevice(3), p.StageDevice(4); a != b {
		t.Errorf("apex stages 3,4 on devices %d,%d, want shared", a, b)
	}
	if got := p.DeviceStages(0); len(got) != 2 || got[0] != 0 || got[1] != 7 {
		t.Errorf("device 0 stages = %v, want [0 7]", got)
	}
}
