package schedule

import "bfpp/internal/core"

// progBuilder accumulates one device's operation list. It is the shared
// program-construction helper every registered generator is written on
// top of: generators express schedule structure (which op, which stage,
// which micro-batch, in what order) and the builder owns the op encoding
// and the recurring data-parallel patterns.
type progBuilder struct {
	p    core.Plan
	prog Program
}

// forward appends the forward pass of one (stage, micro-batch).
func (b *progBuilder) forward(stage, micro int) {
	b.prog = append(b.prog, Op{Forward, stage, micro})
}

// backward appends the backward pass of one (stage, micro-batch).
func (b *progBuilder) backward(stage, micro int) {
	b.prog = append(b.prog, Op{Backward, stage, micro})
}

// restore appends a DP-FS weight reconstruction of a stage; micro is -1
// for a per-pass restore and a micro-batch index when repeated.
func (b *progBuilder) restore(stage, micro int) {
	b.prog = append(b.prog, Op{Restore, stage, micro})
}

// reduce appends a gradient reduction of a stage; micro is -1 for a
// per-batch reduction and a micro-batch index when repeated.
func (b *progBuilder) reduce(stage, micro int) {
	b.prog = append(b.prog, Op{Reduce, stage, micro})
}

// needReduce reports whether the plan requires gradient reductions.
func (b *progBuilder) needReduce() bool { return b.p.DP > 1 }

// fullySharded reports DP-FS sharding (restores required before each use).
func (b *progBuilder) fullySharded() bool { return b.p.Sharding == core.DPFS }

// bunchedReduces appends per-stage reductions for the device's stages in
// reverse stage order. With a non-overlapping implementation (Megatron-LM)
// the reductions are bunched after the compute program, which is also
// where this helper is invoked.
func (b *progBuilder) bunchedReduces(rank int) {
	if !b.needReduce() {
		return
	}
	stages := b.p.DeviceStages(rank)
	for i := len(stages) - 1; i >= 0; i-- {
		b.reduce(stages[i], -1)
	}
}

// finish appends the single trailing optimizer step and returns the
// completed program.
func (b *progBuilder) finish() Program {
	b.prog = append(b.prog, Op{Optimize, -1, -1})
	return b.prog
}

// perDevice runs build once per pipeline rank and assembles the schedule;
// each invocation gets a fresh builder and finish() is applied for it.
func perDevice(p core.Plan, build func(b *progBuilder, rank int)) *Schedule {
	devs := make([]Program, p.PP)
	for r := 0; r < p.PP; r++ {
		b := progBuilder{p: p}
		build(&b, r)
		devs[r] = b.finish()
	}
	return &Schedule{Plan: p, Devices: devs}
}

// singleDevice builds the one-device schedule of the no-pipeline methods.
func singleDevice(p core.Plan, build func(b *progBuilder)) *Schedule {
	b := progBuilder{p: p}
	build(&b)
	return &Schedule{Plan: p, Devices: []Program{b.finish()}}
}
