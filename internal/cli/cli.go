// Package cli provides the flag-parsing helpers shared by the bfpp command
// line tools: model, cluster, method and sharding lookups, and batch-size
// list parsing.
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"bfpp/internal/core"
	"bfpp/internal/hw"
	"bfpp/internal/model"
	"bfpp/internal/search"
)

// ParseModel resolves a model name.
func ParseModel(name string) (model.Transformer, error) {
	switch strings.ToLower(name) {
	case "52b":
		return model.Model52B(), nil
	case "6.6b", "6p6b":
		return model.Model6p6B(), nil
	case "gpt3", "gpt-3":
		return model.GPT3(), nil
	case "1t":
		return model.Model1T(), nil
	case "tiny":
		return model.Tiny(), nil
	default:
		return model.Transformer{}, fmt.Errorf("unknown model %q (52B, 6.6B, gpt3, 1T, tiny)", name)
	}
}

// ParseCluster resolves a cluster name.
func ParseCluster(name string) (hw.Cluster, error) {
	switch strings.ToLower(name) {
	case "paper", "infiniband", "ib":
		return hw.PaperCluster(), nil
	case "ethernet", "eth":
		return hw.PaperClusterEthernet(), nil
	default:
		if n, err := strconv.Atoi(name); err == nil && n > 0 {
			return hw.LargeCluster(n), nil
		}
		return hw.Cluster{}, fmt.Errorf("unknown cluster %q (paper, ethernet, or a GPU count)", name)
	}
}

// ParseMethod resolves a schedule name.
func ParseMethod(name string) (core.Method, error) {
	switch strings.ToLower(name) {
	case "gpipe":
		return core.GPipe, nil
	case "1f1b":
		return core.OneFOneB, nil
	case "depth-first", "depthfirst", "df":
		return core.DepthFirst, nil
	case "breadth-first", "breadthfirst", "bf":
		return core.BreadthFirst, nil
	case "nopipeline-df", "np-df":
		return core.NoPipelineDF, nil
	case "nopipeline-bf", "np-bf", "nopipeline":
		return core.NoPipelineBF, nil
	default:
		return 0, fmt.Errorf("unknown method %q (gpipe, 1f1b, depth-first, breadth-first, nopipeline-df, nopipeline-bf)", name)
	}
}

// ParseSharding resolves a sharding-mode name.
func ParseSharding(name string) (core.Sharding, error) {
	switch strings.ToLower(name) {
	case "dp0", "none", "":
		return core.DP0, nil
	case "dpps", "ps", "partial":
		return core.DPPS, nil
	case "dpfs", "fs", "full":
		return core.DPFS, nil
	default:
		return 0, fmt.Errorf("unknown sharding %q (dp0, dpps, dpfs)", name)
	}
}

// ParseFamily resolves a Figure 7 method family.
func ParseFamily(name string) (search.Family, error) {
	switch strings.ToLower(name) {
	case "bf", "breadth-first":
		return search.FamilyBreadthFirst, nil
	case "df", "depth-first":
		return search.FamilyDepthFirst, nil
	case "nl", "non-looped":
		return search.FamilyNonLooped, nil
	case "np", "no-pipeline":
		return search.FamilyNoPipeline, nil
	default:
		return 0, fmt.Errorf("unknown family %q (bf, df, nl, np)", name)
	}
}

// ParseInts parses a comma-separated integer list.
func ParseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %w", part, err)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty integer list %q", s)
	}
	return out, nil
}
