// Package cli provides the flag-parsing helpers shared by the bfpp command
// line tools: model, cluster, method and sharding lookups, and batch-size
// list parsing.
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"bfpp/internal/core"
	"bfpp/internal/cost"
	"bfpp/internal/hw"
	"bfpp/internal/model"
	"bfpp/internal/search"
)

// ParseModel resolves a model name through the model registry, so models
// published with model.Register parse without touching this package; the
// error lists the registered names.
func ParseModel(name string) (model.Transformer, error) {
	if m, ok := model.Lookup(name); ok {
		return m, nil
	}
	return model.Transformer{}, fmt.Errorf("unknown model %q (registered: %s)",
		name, strings.Join(model.Names(), ", "))
}

// ParseCluster resolves a cluster name through the cluster registry —
// fixed names first, then the registered patterns (a bare GPU count
// resolves to LargeCluster); the error lists the registered spellings.
func ParseCluster(name string) (hw.Cluster, error) {
	if c, ok := hw.Lookup(name); ok {
		return c, nil
	}
	return hw.Cluster{}, fmt.Errorf("unknown cluster %q (registered: %s)",
		name, strings.Join(hw.Names(), ", "))
}

// ParseCostModel resolves a cost-model spelling through the cost registry
// — fixed names ("paper", "calibrated", "contended") first, then the
// registered patterns ("calibrated:<profile.json>"); an empty spelling
// selects the default paper model as a nil Model. The registry error
// already lists the registered spellings.
func ParseCostModel(name string) (cost.Model, error) {
	if strings.TrimSpace(name) == "" {
		return nil, nil
	}
	return cost.Lookup(name)
}

// ParseMethod resolves a schedule name through the method registry, so
// registered extension schedules (ws-1f1b, v-schedule, hybrid, ...) parse
// without touching this package.
func ParseMethod(name string) (core.Method, error) {
	if m, ok := core.MethodByName(name); ok {
		return m, nil
	}
	names := make([]string, 0, 8)
	for _, m := range core.Methods() {
		names = append(names, strings.ToLower(m.String()))
	}
	return 0, fmt.Errorf("unknown method %q (%s)", name, strings.Join(names, ", "))
}

// ParseMethods resolves a comma-separated schedule-name list.
func ParseMethods(s string) ([]core.Method, error) {
	var out []core.Method
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		m, err := ParseMethod(part)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty method list %q", s)
	}
	return out, nil
}

// ParseSharding resolves a sharding-mode name.
func ParseSharding(name string) (core.Sharding, error) {
	switch strings.ToLower(name) {
	case "dp0", "none", "":
		return core.DP0, nil
	case "dpps", "ps", "partial":
		return core.DPPS, nil
	case "dpfs", "fs", "full":
		return core.DPFS, nil
	default:
		return 0, fmt.Errorf("unknown sharding %q (dp0, dpps, dpfs)", name)
	}
}

// ParseFamily resolves a method family from its registry key ("bf") or a
// legacy long name ("breadth-first").
func ParseFamily(name string) (search.Family, error) {
	key := strings.ToLower(name)
	switch key {
	// Legacy long spellings of the paper families.
	case "breadth-first":
		key = "bf"
	case "depth-first":
		key = "df"
	case "non-looped":
		key = "nl"
	case "no-pipeline":
		key = "np"
	}
	if f, ok := search.FamilyByKey(key); ok {
		return f, nil
	}
	keys := make([]string, 0, 8)
	for _, f := range search.AllFamilies() {
		keys = append(keys, f.Info().Key)
	}
	return 0, fmt.Errorf("unknown family %q (%s)", name, strings.Join(keys, ", "))
}

// ParseFamilies resolves a comma-separated family-key list; "all" selects
// the paper's Figure 7 families and "every" all registered families
// (including the extension schedules).
func ParseFamilies(s string) ([]search.Family, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "all", "":
		return search.Families(), nil
	case "every":
		return search.AllFamilies(), nil
	}
	var out []search.Family
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := ParseFamily(part)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty family list %q", s)
	}
	return out, nil
}

// FamiliesForMethods maps methods to their containing families (one entry
// per family, in method order), powering the -methods selection flags.
func FamiliesForMethods(methods []core.Method) ([]search.Family, error) {
	var out []search.Family
	seen := map[search.Family]bool{}
	for _, m := range methods {
		f, ok := search.FamilyOf(m)
		if !ok {
			return nil, fmt.Errorf("method %v is in no search family", m)
		}
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out, nil
}

// ParseInts parses a comma-separated integer list.
func ParseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %w", part, err)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty integer list %q", s)
	}
	return out, nil
}
