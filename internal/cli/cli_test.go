package cli

import (
	"testing"

	"bfpp/internal/core"
	"bfpp/internal/search"
)

func TestParseModel(t *testing.T) {
	for _, name := range []string{"52B", "52b", "6.6B", "6p6b", "gpt3", "GPT-3", "1T", "tiny"} {
		m, err := ParseModel(name)
		if err != nil {
			t.Errorf("%q: %v", name, err)
		}
		if m.Validate() != nil {
			t.Errorf("%q: invalid model returned", name)
		}
	}
	if _, err := ParseModel("banana"); err == nil {
		t.Error("unknown model should fail")
	}
}

func TestParseCluster(t *testing.T) {
	c, err := ParseCluster("paper")
	if err != nil || c.NumGPUs() != 64 {
		t.Errorf("paper cluster: %v, %d GPUs", err, c.NumGPUs())
	}
	c, err = ParseCluster("ethernet")
	if err != nil || c.InterNode.Name != "Ethernet" {
		t.Errorf("ethernet cluster: %v, link %q", err, c.InterNode.Name)
	}
	c, err = ParseCluster("4096")
	if err != nil || c.NumGPUs() != 4096 {
		t.Errorf("numeric cluster: %v, %d GPUs", err, c.NumGPUs())
	}
	for _, bad := range []string{"cloud", "-8", "0"} {
		if _, err := ParseCluster(bad); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
}

func TestParseMethod(t *testing.T) {
	cases := map[string]core.Method{
		"gpipe":         core.GPipe,
		"1f1b":          core.OneFOneB,
		"df":            core.DepthFirst,
		"breadth-first": core.BreadthFirst,
		"np-df":         core.NoPipelineDF,
		"nopipeline":    core.NoPipelineBF,
	}
	for name, want := range cases {
		got, err := ParseMethod(name)
		if err != nil || got != want {
			t.Errorf("%q: got %v, %v", name, got, err)
		}
	}
	if _, err := ParseMethod("zigzag"); err == nil {
		t.Error("unknown method should fail")
	}
}

func TestParseSharding(t *testing.T) {
	cases := map[string]core.Sharding{
		"dp0": core.DP0, "": core.DP0, "ps": core.DPPS, "dpfs": core.DPFS, "full": core.DPFS,
	}
	for name, want := range cases {
		got, err := ParseSharding(name)
		if err != nil || got != want {
			t.Errorf("%q: got %v, %v", name, got, err)
		}
	}
	if _, err := ParseSharding("half"); err == nil {
		t.Error("unknown sharding should fail")
	}
}

func TestParseFamily(t *testing.T) {
	cases := map[string]search.Family{
		"bf": search.FamilyBreadthFirst,
		"df": search.FamilyDepthFirst,
		"nl": search.FamilyNonLooped,
		"np": search.FamilyNoPipeline,
	}
	for name, want := range cases {
		got, err := ParseFamily(name)
		if err != nil || got != want {
			t.Errorf("%q: got %v, %v", name, got, err)
		}
	}
	if _, err := ParseFamily("xy"); err == nil {
		t.Error("unknown family should fail")
	}
}

func TestParseInts(t *testing.T) {
	got, err := ParseInts("8, 16,32")
	if err != nil || len(got) != 3 || got[0] != 8 || got[2] != 32 {
		t.Errorf("got %v, %v", got, err)
	}
	if _, err := ParseInts(""); err == nil {
		t.Error("empty list should fail")
	}
	if _, err := ParseInts("8,x"); err == nil {
		t.Error("bad integer should fail")
	}
}
