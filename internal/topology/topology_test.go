package topology

import (
	"testing"
	"testing/quick"
)

func TestRankCoordsInverse(t *testing.T) {
	g := Grid{TP: 2, DP: 4, PP: 8}
	if g.World() != 64 {
		t.Fatalf("world = %d, want 64", g.World())
	}
	seen := map[int]bool{}
	for dp := 0; dp < g.DP; dp++ {
		for pp := 0; pp < g.PP; pp++ {
			for tp := 0; tp < g.TP; tp++ {
				r := g.Rank(dp, pp, tp)
				if seen[r] {
					t.Fatalf("rank %d assigned twice", r)
				}
				seen[r] = true
				d2, p2, t2 := g.Coords(r)
				if d2 != dp || p2 != pp || t2 != tp {
					t.Fatalf("coords(%d) = (%d,%d,%d), want (%d,%d,%d)",
						r, d2, p2, t2, dp, pp, tp)
				}
			}
		}
	}
	if len(seen) != 64 {
		t.Fatalf("assigned %d ranks", len(seen))
	}
}

// TP ranks are consecutive (the NVLink requirement of Section 3.3).
func TestTPGroupConsecutive(t *testing.T) {
	g := Grid{TP: 8, DP: 2, PP: 4}
	grp := g.TPGroup(1, 2)
	for i := 1; i < len(grp); i++ {
		if grp[i] != grp[i-1]+1 {
			t.Fatalf("TP group not consecutive: %v", grp)
		}
	}
}

// Groups partition the world: every rank appears in exactly one DP group,
// one TP group and one PP group.
func TestGroupsPartitionWorld(t *testing.T) {
	g := Grid{TP: 2, DP: 2, PP: 4}
	count := map[int]int{}
	for pp := 0; pp < g.PP; pp++ {
		for tp := 0; tp < g.TP; tp++ {
			for _, r := range g.DPGroup(pp, tp) {
				count[r]++
			}
		}
	}
	for r := 0; r < g.World(); r++ {
		if count[r] != 1 {
			t.Fatalf("rank %d in %d DP groups", r, count[r])
		}
	}
	count = map[int]int{}
	for dp := 0; dp < g.DP; dp++ {
		for tp := 0; tp < g.TP; tp++ {
			for _, r := range g.PPGroup(dp, tp) {
				count[r]++
			}
		}
	}
	for r := 0; r < g.World(); r++ {
		if count[r] != 1 {
			t.Fatalf("rank %d in %d PP groups", r, count[r])
		}
	}
}

func TestDPGroupSpansNodes(t *testing.T) {
	// TP=8 fills a node, so DP groups must cross nodes.
	if !(Grid{TP: 8, DP: 8, PP: 1}).DPGroupSpansNodes(8) {
		t.Error("TP=8 DP groups should span nodes")
	}
	// TP=1, DP=8 fits in one node.
	if (Grid{TP: 1, DP: 8, PP: 8}).DPGroupSpansNodes(8) {
		t.Error("TP=1 DP=8 group should fit in one node")
	}
	// TP=2, DP=4 also fits (8 consecutive ranks).
	if (Grid{TP: 2, DP: 4, PP: 8}).DPGroupSpansNodes(8) {
		t.Error("TP=2 DP=4 group should fit in one node")
	}
	// TP=2, DP=8 does not (16 consecutive ranks over 2 nodes).
	if !(Grid{TP: 2, DP: 8, PP: 4}).DPGroupSpansNodes(8) {
		t.Error("TP=2 DP=8 group should span nodes")
	}
}

func TestValidate(t *testing.T) {
	if err := (Grid{TP: 1, DP: 1, PP: 1}).Validate(); err != nil {
		t.Error(err)
	}
	for _, g := range []Grid{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 2, 2}} {
		if err := g.Validate(); err == nil {
			t.Errorf("grid %+v should fail validation", g)
		}
	}
}

func TestPanics(t *testing.T) {
	g := Grid{TP: 2, DP: 2, PP: 2}
	cases := []func(){
		func() { g.Rank(2, 0, 0) },
		func() { g.Rank(0, -1, 0) },
		func() { g.Coords(8) },
		func() { g.Coords(-1) },
		func() { g.Node(0, 0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: rank <-> coords round-trips on random grids.
func TestRoundTripProperty(t *testing.T) {
	f := func(tpE, dpE, ppE, pick uint8) bool {
		g := Grid{TP: int(tpE%4) + 1, DP: int(dpE%4) + 1, PP: int(ppE%4) + 1}
		r := int(pick) % g.World()
		dp, pp, tp := g.Coords(r)
		return g.Rank(dp, pp, tp) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
