// Package topology maps the (up to) three-dimensional device grid of
// Appendix A.1 — N_DP x N_TP x N_PP — onto linear global ranks and derives
// the communication groups each rank belongs to. The ordering follows the
// Megatron-LM convention: tensor-parallel ranks are innermost (consecutive,
// sharing a node's NVLink), data-parallel next, pipeline-parallel outermost.
package topology

import "fmt"

// Grid is a parallelism grid.
type Grid struct {
	// TP, DP, PP are the group sizes; all must be positive.
	TP, DP, PP int
}

// World returns the total rank count.
func (g Grid) World() int { return g.TP * g.DP * g.PP }

// Validate reports whether the grid is usable.
func (g Grid) Validate() error {
	if g.TP <= 0 || g.DP <= 0 || g.PP <= 0 {
		return fmt.Errorf("topology: group sizes must be positive (TP=%d DP=%d PP=%d)",
			g.TP, g.DP, g.PP)
	}
	return nil
}

// Rank returns the global rank at coordinates (dp, pp, tp).
func (g Grid) Rank(dp, pp, tp int) int {
	if dp < 0 || dp >= g.DP || pp < 0 || pp >= g.PP || tp < 0 || tp >= g.TP {
		panic(fmt.Sprintf("topology: coords (dp=%d pp=%d tp=%d) out of %dx%dx%d",
			dp, pp, tp, g.DP, g.PP, g.TP))
	}
	return (pp*g.DP+dp)*g.TP + tp
}

// Coords returns the (dp, pp, tp) coordinates of a global rank.
func (g Grid) Coords(rank int) (dp, pp, tp int) {
	if rank < 0 || rank >= g.World() {
		panic(fmt.Sprintf("topology: rank %d out of %d", rank, g.World()))
	}
	tp = rank % g.TP
	rest := rank / g.TP
	dp = rest % g.DP
	pp = rest / g.DP
	return dp, pp, tp
}

// TPGroup returns the tensor-parallel group containing the ranks with the
// given (dp, pp) coordinates, in tp order.
func (g Grid) TPGroup(dp, pp int) []int {
	out := make([]int, g.TP)
	for tp := 0; tp < g.TP; tp++ {
		out[tp] = g.Rank(dp, pp, tp)
	}
	return out
}

// DPGroup returns the data-parallel group for fixed (pp, tp), in dp order.
func (g Grid) DPGroup(pp, tp int) []int {
	out := make([]int, g.DP)
	for dp := 0; dp < g.DP; dp++ {
		out[dp] = g.Rank(dp, pp, tp)
	}
	return out
}

// PPGroup returns the pipeline-parallel group for fixed (dp, tp), in pp
// order (the pipeline's device chain).
func (g Grid) PPGroup(dp, tp int) []int {
	out := make([]int, g.PP)
	for pp := 0; pp < g.PP; pp++ {
		out[pp] = g.Rank(dp, pp, tp)
	}
	return out
}

// Node returns the node index of a rank for the given node size.
func (g Grid) Node(rank, gpusPerNode int) int {
	if gpusPerNode <= 0 {
		panic("topology: gpusPerNode must be positive")
	}
	return rank / gpusPerNode
}

// DPGroupSpansNodes reports whether a data-parallel group crosses node
// boundaries, which determines whether its collectives ride NVLink or the
// inter-node network (the engine's bandwidth-sharing model).
func (g Grid) DPGroupSpansNodes(gpusPerNode int) bool {
	grp := g.DPGroup(0, 0)
	first := g.Node(grp[0], gpusPerNode)
	for _, r := range grp[1:] {
		if g.Node(r, gpusPerNode) != first {
			return true
		}
	}
	return false
}
