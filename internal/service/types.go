package service

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"bfpp/internal/cli"
	"bfpp/internal/core"
	"bfpp/internal/cost"
	"bfpp/internal/engine"
	"bfpp/internal/hw"
	"bfpp/internal/model"
	"bfpp/internal/search"
)

// ErrBadRequest marks request-resolution failures (unknown model, cluster,
// family, method or artifact name; malformed plans). The HTTP layer maps
// it to 400; everything else is an execution failure.
var ErrBadRequest = errors.New("bad request")

// badRequestf wraps a request-resolution failure in ErrBadRequest.
func badRequestf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrBadRequest}, args...)...)
}

// SearchRequest is the canonical description of one Appendix E grid-search
// job: the scenario (model and cluster resolved through the open
// registries), the method-family scope, the batch grid and the search
// options. The five CLIs and the bfpp-serve endpoints share this struct,
// so a job is provably the same whichever surface submits it.
type SearchRequest struct {
	// Model names a registered model (model.Register): "52B", "6.6B",
	// "GPT-3", "1T", "tiny", or any extension.
	Model string `json:"model"`
	// Cluster names a registered cluster (hw.Register) or matches a
	// registered pattern: "paper", "ethernet", or a GPU count like "512".
	Cluster string `json:"cluster"`
	// Families selects method families by registry key ("bf", "ws", ...);
	// the spellings "all" (the paper's four) and "every" (all registered)
	// are accepted. Empty means "all".
	Families []string `json:"families,omitempty"`
	// Methods, when non-empty, selects the families containing the named
	// schedules instead (mirroring bfpp-search -methods).
	Methods []string `json:"methods,omitempty"`
	// Batches is the global batch-size grid. It is canonicalized to a
	// sorted, deduplicated list (the result table is sorted by batch size
	// either way).
	Batches []int `json:"batches"`
	// MaxMicroBatch caps S_mb in the enumeration; 0 means the default 16.
	MaxMicroBatch int `json:"max_micro_batch,omitempty"`
	// NoPrune disables the branch-and-bound (results are identical either
	// way; this is the perf-comparison switch).
	NoPrune bool `json:"no_prune,omitempty"`
	// CostModel names a registered cost model (cost.Register) or matches a
	// registered pattern: "paper", "calibrated", "contended",
	// "calibrated:<profile.json>". Empty selects the default paper model.
	// The resolved model's fingerprint is part of the canonical cache key,
	// so two requests differing only in cost model never share results.
	CostModel string `json:"cost_model,omitempty"`
	// Workers is the per-request worker budget: the number of goroutines
	// this job may use, clamped to the service's MaxWorkersPerRequest.
	// 0 means the service default. Workers never changes results, so it
	// is excluded from the result-cache key.
	Workers int `json:"workers,omitempty"`
	// TimeoutMS bounds the job's wall-clock time; the deadline is mapped
	// onto the job's context. 0 means the service default (which may be
	// "none").
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// FamilyResult is one family's sweep outcome, in canonical family order.
type FamilyResult struct {
	// Key is the family's registry key ("bf").
	Key string `json:"key"`
	// Name is the display name (the Figure 7 legend).
	Name string `json:"name"`
	// Bests holds the per-batch winners in batch order; empty when the
	// family has no feasible configuration at any requested batch.
	Bests []search.Best `json:"bests,omitempty"`
}

// SearchResponse is the outcome of a SearchRequest.
type SearchResponse struct {
	// Title is the table headline ("Optimal configurations: ...").
	Title string `json:"title"`
	// Table is the Tables E.1-E.3-style listing — byte-identical to what
	// the pre-service search.Table produced and to what bfpp-search
	// prints, which is the cross-surface equivalence the smoke test pins.
	Table string `json:"table"`
	// Families holds the structured winners, one entry per requested
	// family in canonical order.
	Families []FamilyResult `json:"families"`
	// Stats is the final branch-and-bound counter snapshot, including the
	// pricing-cascade counters (floored_out, replay_priced,
	// warm_start_hits) at both the request and per-family level — the
	// per-request observability for how far the tier-1 floor carried the
	// pruning versus the tier-2 exact replay.
	Stats search.ProgressSnapshot `json:"stats"`
	// Cached reports that the response was served from the result cache
	// without re-running the search.
	Cached bool `json:"cached,omitempty"`
	// Partial reports graceful degradation: the request's deadline expired
	// mid-sweep and Table/Families hold the incumbents-so-far — every
	// entry a genuine simulated configuration, but possibly not the
	// optimum and possibly missing (family, batch) cells. Partial
	// responses are never cached.
	Partial bool `json:"partial,omitempty"`
}

// SimulateRequest asks for one discrete-event simulation of a plan.
type SimulateRequest struct {
	Model   string    `json:"model"`
	Cluster string    `json:"cluster"`
	Plan    core.Plan `json:"plan"`
	// CaptureTimeline retains the full execution trace in the result (the
	// Gantt/Chrome-trace surfaces need it; it is large).
	CaptureTimeline bool `json:"capture_timeline,omitempty"`
	// Diagram selects the times-to-scale parameter preset of the paper's
	// schedule diagrams (fixed per-op overheads zeroed), as used by
	// Figures 4 and 9 and bfpp-trace.
	Diagram bool `json:"diagram,omitempty"`
	// CostModel names a registered cost model, like SearchRequest's. Empty
	// selects the default paper model.
	CostModel string `json:"cost_model,omitempty"`
	// TimeoutMS bounds the queue wait and gates the start; the simulation
	// itself is indivisible (a single DES pass) and runs to completion
	// once started.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SimulateResponse is the outcome of a SimulateRequest.
type SimulateResponse struct {
	Result engine.Result `json:"result"`
}

// FigureRequest asks for paper artifacts by name.
type FigureRequest struct {
	// Names selects artifacts ("figure7a", "tableE1", ...); empty selects
	// all of them in paper order.
	Names []string `json:"names,omitempty"`
	// Families scopes the sweep-backed artifacts, like SearchRequest's.
	Families []string `json:"families,omitempty"`
	// CostModel names a registered cost model for the sweep-backed
	// artifacts, like SearchRequest's. Empty selects the default paper
	// model. Artifacts that simulate fixed plans directly (the schedule
	// diagrams) keep their paper preset regardless.
	CostModel string `json:"cost_model,omitempty"`
	Workers   int    `json:"workers,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// Artifact is one rendered figure or table.
type Artifact struct {
	Name string `json:"name"`
	Text string `json:"text"`
}

// FigureResponse is the outcome of a FigureRequest.
type FigureResponse struct {
	Artifacts []Artifact `json:"artifacts"`
}

// cliParseModel and cliParseCluster resolve registry names, marking
// failures as bad requests.
func cliParseModel(name string) (model.Transformer, error) {
	m, err := cli.ParseModel(name)
	if err != nil {
		return m, badRequestf("%v", err)
	}
	return m, nil
}

func cliParseCluster(name string) (hw.Cluster, error) {
	c, err := cli.ParseCluster(name)
	if err != nil {
		return c, badRequestf("%v", err)
	}
	return c, nil
}

// cliParseCostModel resolves a cost-model spelling (empty means the default
// paper model, returned as nil), marking failures as bad requests.
func cliParseCostModel(name string) (cost.Model, error) {
	m, err := cli.ParseCostModel(name)
	if err != nil {
		return nil, badRequestf("%v", err)
	}
	return m, nil
}

// searchJob is a resolved SearchRequest: registry names replaced by the
// constructed scenario, family spellings by Family values.
type searchJob struct {
	model    model.Transformer
	cluster  hw.Cluster
	families []search.Family
	batches  []int
	maxMB    int
	noPrune  bool
	// costModel is the resolved cost model; nil selects the default paper
	// model (and prices identically to an explicit "paper", which the
	// shared fingerprint in the cache key records).
	costModel cost.Model
}

// title returns the table headline, byte-identical to the pre-service
// bfpp-search output.
func (j searchJob) title() string {
	return fmt.Sprintf("Optimal configurations: %s on %s (%d GPUs)",
		j.model.Name, j.cluster.Name, j.cluster.NumGPUs())
}

// resolveFamilies maps the Families/Methods selection of a request onto
// Family values: Methods win when present, then the Families keys (with
// the "all"/"every" spellings), then the paper default. The result is
// deduplicated into canonical registry order, so equivalent selections
// share one cache entry.
func resolveFamilies(families, methods []string) ([]search.Family, error) {
	var fams []search.Family
	var err error
	switch {
	case len(methods) > 0:
		ms, merr := cli.ParseMethods(strings.Join(methods, ","))
		if merr != nil {
			return nil, merr
		}
		fams, err = cli.FamiliesForMethods(ms)
	case len(families) > 0:
		fams, err = cli.ParseFamilies(strings.Join(families, ","))
	default:
		fams = search.Families()
	}
	if err != nil {
		return nil, err
	}
	seen := map[search.Family]bool{}
	for _, f := range fams {
		seen[f] = true
	}
	var out []search.Family
	for _, f := range search.AllFamilies() {
		if seen[f] {
			out = append(out, f)
		}
	}
	return out, nil
}

// resolveSearch canonicalizes a request and constructs its job. The
// returned cache key covers everything that determines the result —
// the resolved model and cluster (by content, so two names building the
// same scenario share an entry), the family keys, the batch grid and the
// search options — and deliberately excludes Workers and TimeoutMS, which
// never change results.
func resolveSearch(req SearchRequest) (searchJob, string, error) {
	var job searchJob
	var err error
	if job.model, err = cliParseModel(req.Model); err != nil {
		return job, "", err
	}
	if job.cluster, err = cliParseCluster(req.Cluster); err != nil {
		return job, "", err
	}
	if job.families, err = resolveFamilies(req.Families, req.Methods); err != nil {
		return job, "", badRequestf("%v", err)
	}
	if len(req.Batches) == 0 {
		return job, "", badRequestf("search request without batches")
	}
	job.batches = canonicalBatches(req.Batches)
	job.maxMB = req.MaxMicroBatch
	if job.maxMB <= 0 {
		job.maxMB = 16
	}
	job.noPrune = req.NoPrune
	if job.costModel, err = cliParseCostModel(req.CostModel); err != nil {
		return job, "", err
	}
	keys := make([]string, len(job.families))
	for i, f := range job.families {
		keys[i] = f.Info().Key
	}
	// The cost model enters the key by content fingerprint, not request
	// spelling: the default and an explicit "paper" share entries, two
	// different profiles at one path never do.
	key := fmt.Sprintf("model=%+v|cluster=%+v|families=%s|batches=%v|maxmb=%d|noprune=%t|cost=%s",
		job.model, job.cluster, strings.Join(keys, ","), job.batches, job.maxMB, job.noPrune,
		cost.Fingerprint(cost.Params{Model: job.costModel}))
	return job, key, nil
}

// canonicalBatches sorts and deduplicates the batch grid.
func canonicalBatches(batches []int) []int {
	out := append([]int(nil), batches...)
	sort.Ints(out)
	n := 0
	for i, b := range out {
		if i == 0 || b != out[i-1] {
			out[n] = b
			n++
		}
	}
	return out[:n]
}
