// Package service is the job layer behind every bfpp surface: it defines
// the canonical JSON request/response types (SearchRequest,
// SimulateRequest, FigureRequest), canonicalizes and caches search
// results, enforces per-request worker budgets and bounds the number of
// concurrently executing jobs. The command-line tools submit the same
// request structs in process that cmd/bfpp-serve accepts over HTTP, so a
// CLI invocation and a server request provably run identical jobs and
// produce byte-identical tables.
//
// # Cancellation and deadlines
//
// Every method takes a context and observes cancellation — including
// while queued behind the job semaphore. A request's TimeoutMS (or the
// service's DefaultTimeout) is mapped onto the context as a deadline.
// Search and Figures abort between candidate simulations (promptly: an
// in-flight simulation is milliseconds); Simulate runs one indivisible
// simulation and checks its deadline only before it starts.
//
// # Worker budgets
//
// The search worker pool width is a per-request value clamped to
// Config.MaxWorkersPerRequest, threaded explicitly through
// search.Options.Workers — never through the deprecated process-global
// parallel.SetDefaultWorkers, which concurrent requests would race on.
// Worker counts never change results, so they are excluded from the
// result-cache key.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bfpp/internal/cost"
	"bfpp/internal/engine"
	"bfpp/internal/fault"
	"bfpp/internal/figures"
	"bfpp/internal/parallel"
	"bfpp/internal/search"
	"bfpp/internal/store"
)

// Config tunes a Service. The zero value is usable: sensible bounds are
// filled in by New.
type Config struct {
	// MaxJobs bounds the number of concurrently executing jobs; further
	// requests queue (cancellably) until a slot frees. 0 means 4.
	MaxJobs int
	// MaxWorkersPerRequest clamps the per-request worker budget. 0 means
	// no clamp: a request's explicit Workers value is honored as-is (the
	// CLIs run this way, so -workers can oversubscribe cores exactly like
	// the pre-service flag did); servers set an explicit bound.
	MaxWorkersPerRequest int
	// CacheEntries bounds the search result cache (insertion-order
	// eviction). 0 means 64; negative disables caching.
	CacheEntries int
	// DefaultTimeout applies to requests that do not carry their own
	// TimeoutMS. 0 means no deadline.
	DefaultTimeout time.Duration
	// MaxQueued bounds how many requests may wait for a job slot at once;
	// arrivals beyond the bound are shed immediately with ErrOverloaded
	// (HTTP 429 + Retry-After) instead of parking unbounded. 0 means 16;
	// negative means unbounded (requests park until their context dies —
	// the single-job CLI shape).
	MaxQueued int
	// MaxBodyBytes caps the HTTP request body the handler will read
	// (oversize bodies get 413). 0 means 1 MiB; negative means no cap.
	MaxBodyBytes int64
	// Injector, when non-nil, is the chaos layer's hook into the job
	// service: consulted at the Job point (after a slot is acquired) and
	// threaded down to the search worker pool (PoolItem stalls). The nil
	// default costs one pointer compare per job.
	Injector fault.Injector
	// Store, when non-nil, is the durable result store: the in-memory
	// cache becomes a read-through/write-behind layer over it, so a
	// process restart serves previously computed sweeps from disk instead
	// of recomputing them. Store failures only degrade (the request is
	// served, the write is dropped, /healthz reports it) — with a nil
	// Store the service behaves bit-for-bit as before.
	Store store.KV
	// Journal, when non-nil, records each sweep's resolved (family,
	// batch) winners as they happen; an interrupted sweep re-run after a
	// restart replays the journal and prices only the unfinished groups,
	// producing a byte-identical table.
	Journal *store.Journal
	// Sharder, when non-nil, distributes sweeps across replicas instead
	// of running search.SweepAll in process (internal/dispatch provides
	// the coordinator). Journal-resumed groups are subtracted before
	// dispatch; the merged table is byte-identical either way.
	Sharder Sharder
	// DefaultCostModel is the cost-model spelling applied to requests that
	// do not carry their own (bfpp-serve -costmodel). Empty means the paper
	// model. The spelling is resolved per request through the cost
	// registry, so a calibrated:<profile.json> default re-reads the profile
	// like an explicit request would.
	DefaultCostModel string
}

// Service executes bfpp jobs: grid searches (cached), single simulations
// and figure regenerations. Methods are safe for concurrent use.
type Service struct {
	cfg Config
	sem chan struct{}

	inFlight        atomic.Int64 // jobs holding a slot
	queued          atomic.Int64 // requests parked on the semaphore
	shed            atomic.Int64 // requests rejected with ErrOverloaded, total
	jobArrivals     atomic.Int64 // Job injection-point coordinate
	handlerArrivals atomic.Int64 // Handler injection-point coordinate

	searches    atomic.Int64 // search requests admitted past resolution
	cacheHits   atomic.Int64 // served from the in-memory result cache
	cacheMisses atomic.Int64
	storeHits   atomic.Int64 // served from the durable store (read-through)
	storeMisses atomic.Int64
	journalErrs atomic.Int64 // dropped checkpoint appends (degraded)

	agg search.Stats // lifetime pruning counters, for /metrics

	mu    sync.Mutex
	cache map[string]SearchResponse
	order []string // cache keys in insertion order, for eviction
}

// New returns a Service with the config's zero fields defaulted.
func New(cfg Config) *Service {
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 4
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 64
	}
	if cfg.MaxQueued == 0 {
		cfg.MaxQueued = 16
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	return &Service{
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.MaxJobs),
		cache: map[string]SearchResponse{},
	}
}

// Health is the structured /healthz report. The endpoint always answers
// 200 — "degraded" is a field, not a status code, so saturation does not
// read as a flapping prober failure.
type Health struct {
	// Status is "ok", or "degraded" while every job slot is busy (new
	// requests queue or are shed).
	Status string `json:"status"`
	// InFlight is the number of jobs currently holding a slot, out of
	// MaxJobs.
	InFlight int `json:"in_flight"`
	MaxJobs  int `json:"max_jobs"`
	// Queued is the number of requests parked waiting for a slot.
	Queued int `json:"queued"`
	// ShedTotal counts requests rejected with 429 since startup.
	ShedTotal int64 `json:"shed_total"`
	// Store reports the durable result store and sweep journal, when
	// configured. Degraded-as-data: write errors leave the service up
	// (serving and caching from memory) and show here.
	Store *StoreHealth `json:"store,omitempty"`
	// Replicas reports the shard replicas' live health probes, when a
	// sharder is configured. A down replica degrades the fleet; it never
	// fails the probe.
	Replicas []ReplicaHealth `json:"replicas,omitempty"`
	// CostModels lists the registered cost-model spellings (fixed names,
	// then pattern labels) a request's cost_model field accepts.
	CostModels []string `json:"cost_models,omitempty"`
}

// StoreHealth is the durability section of /healthz.
type StoreHealth struct {
	// OK is false once any store or journal write has failed: results
	// are still served (from memory), durability is degraded.
	OK bool `json:"ok"`
	// Stats are the result store's counters.
	Stats store.Stats `json:"stats"`
	// Journal carries the sweep journal's counters when one is
	// configured; its CorruptionsRecovered counts crash tails healed at
	// startup.
	Journal *store.Stats `json:"journal,omitempty"`
}

// healthProbeTimeout bounds the replica probes a Health call performs.
const healthProbeTimeout = 2 * time.Second

// Health reports the service's load, durability and replication state. The
// caller's context bounds the replica probes (further capped by
// healthProbeTimeout).
func (s *Service) Health(ctx context.Context) Health {
	h := Health{
		Status:     "ok",
		InFlight:   int(s.inFlight.Load()),
		MaxJobs:    s.cfg.MaxJobs,
		Queued:     int(s.queued.Load()),
		ShedTotal:  s.shed.Load(),
		CostModels: cost.Names(),
	}
	if h.InFlight >= h.MaxJobs || h.Queued > 0 {
		h.Status = "degraded"
	}
	if s.cfg.Store != nil || s.cfg.Journal != nil {
		sh := &StoreHealth{OK: true}
		if s.cfg.Store != nil {
			sh.Stats = s.cfg.Store.Stats()
			if sh.Stats.WriteErrors > 0 {
				sh.OK = false
			}
		}
		if s.cfg.Journal != nil {
			js := s.cfg.Journal.Stats()
			sh.Journal = &js
			if js.WriteErrors > 0 {
				sh.OK = false
			}
		}
		if !sh.OK {
			h.Status = "degraded"
		}
		h.Store = sh
	}
	if s.cfg.Sharder != nil {
		probeCtx, cancel := context.WithTimeout(ctx, healthProbeTimeout)
		defer cancel()
		h.Replicas = s.cfg.Sharder.Health(probeCtx)
		for _, r := range h.Replicas {
			if !r.OK {
				h.Status = "degraded"
			}
		}
	}
	return h
}

// workers resolves a request's worker budget: the requested count (or the
// process default when 0), clamped to MaxWorkersPerRequest when one is
// configured.
func (s *Service) workers(requested int) int {
	w := parallel.Resolve(requested)
	if s.cfg.MaxWorkersPerRequest > 0 && w > s.cfg.MaxWorkersPerRequest {
		w = s.cfg.MaxWorkersPerRequest
	}
	return w
}

// shedRetryAfter is the backoff hint attached to load-shed rejections.
const shedRetryAfter = time.Second

// acquire claims a job slot and returns its release function. A free slot
// is claimed immediately; otherwise the request parks (cancellably) in the
// bounded queue, and when the queue is full too it is shed with
// ErrOverloaded — the load-shedding contract: saturation costs the client
// a fast 429 + Retry-After, never an unbounded wait.
func (s *Service) acquire(ctx context.Context) (func(), error) {
	release := func() {
		s.inFlight.Add(-1)
		<-s.sem
	}
	select {
	case s.sem <- struct{}{}:
		s.inFlight.Add(1)
		return release, nil
	default:
	}
	if max := s.cfg.MaxQueued; max > 0 && s.queued.Load() >= int64(max) {
		s.shed.Add(1)
		return nil, &OverloadedError{RetryAfter: shedRetryAfter}
	}
	s.queued.Add(1)
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		s.inFlight.Add(1)
		return release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// injectJob consults the chaos injector at the Job point — inside the job,
// slot held — so the panic path proves the slot is released and the server
// survives. Coordinates: job arrival number.
func (s *Service) injectJob(ctx context.Context) error {
	inj := s.cfg.Injector
	if inj == nil {
		return nil
	}
	n := s.jobArrivals.Add(1) - 1
	f, ok := inj.At(fault.Job, int(n))
	if !ok {
		return nil
	}
	switch f.Kind {
	case fault.Panic:
		panic(fmt.Sprintf("injected job fault (arrival %d)", n))
	case fault.Delay:
		return fault.SleepCtx(ctx, f.Sleep)
	case fault.Error:
		return fmt.Errorf("%w: %w", ErrTransient, f.Err)
	}
	return nil
}

// deadline applies the request's TimeoutMS (or the service default) to the
// context.
func (s *Service) deadline(ctx context.Context, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// cacheGet returns the cached response for a key.
func (s *Service) cacheGet(key string) (SearchResponse, bool) {
	if s.cfg.CacheEntries < 0 {
		return SearchResponse{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	resp, ok := s.cache[key]
	return resp, ok
}

// cachePut stores a response, evicting the oldest entries beyond the
// configured bound. Cached responses are treated as immutable.
func (s *Service) cachePut(key string, resp SearchResponse) {
	if s.cfg.CacheEntries < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.cache[key]; !ok {
		s.order = append(s.order, key)
	}
	s.cache[key] = resp
	for len(s.order) > s.cfg.CacheEntries {
		delete(s.cache, s.order[0])
		s.order = s.order[1:]
	}
}

// Search runs a grid-search job (or serves it from the result cache).
// Identical canonicalized requests — whatever their Workers or TimeoutMS —
// share one cache entry, so a repeated sweep costs a map lookup.
func (s *Service) Search(ctx context.Context, req SearchRequest) (SearchResponse, error) {
	return s.searchWith(ctx, req, nil)
}

// SearchStream is Search with live progress: the callback receives
// pruning-counter snapshots while the sweep runs (it is invoked serially,
// from worker goroutines, and must return quickly). A cache hit emits the
// final snapshot once.
func (s *Service) SearchStream(ctx context.Context, req SearchRequest, progress func(search.ProgressSnapshot)) (SearchResponse, error) {
	return s.searchWith(ctx, req, progress)
}

func (s *Service) searchWith(ctx context.Context, req SearchRequest, progress func(search.ProgressSnapshot)) (SearchResponse, error) {
	// The config default fills the request's cost_model before
	// canonicalization, so the cache key, the journal key and a dispatched
	// request all carry the effective choice.
	if req.CostModel == "" {
		req.CostModel = s.cfg.DefaultCostModel
	}
	job, key, err := resolveSearch(req)
	if err != nil {
		return SearchResponse{}, err
	}
	s.searches.Add(1)
	if resp, ok := s.cacheGet(key); ok {
		s.cacheHits.Add(1)
		resp.Cached = true
		if progress != nil {
			progress(resp.Stats)
		}
		return resp, nil
	}
	s.cacheMisses.Add(1)
	if resp, ok := s.storeGet(key); ok {
		// Read-through: a restart loses the in-memory cache, not the
		// store. The durable copy refills the cache and is served as a
		// cache hit.
		s.cachePut(key, resp)
		resp.Cached = true
		if progress != nil {
			progress(resp.Stats)
		}
		return resp, nil
	}
	// The deadline applies before the queue wait: a request must not park
	// on the semaphore beyond its own budget.
	ctx, cancel := s.deadline(ctx, req.TimeoutMS)
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		return SearchResponse{}, err
	}
	defer release()
	if err := s.injectJob(ctx); err != nil {
		return SearchResponse{}, err
	}

	resume := s.journalResume(key)
	var resp SearchResponse
	if s.cfg.Sharder != nil {
		resp, err = s.dispatchSearch(ctx, req, job, key, resume)
	} else {
		resp, err = s.localSearch(ctx, req, job, key, resume, progress)
	}
	if err != nil {
		return SearchResponse{}, err
	}
	if !resp.Partial {
		// Write-behind: the cache stays authoritative for this process;
		// the durable copy is best-effort (a failed Put only degrades).
		s.cachePut(key, resp)
		s.storePut(key, resp)
	}
	return resp, nil
}

// localSearch runs the sweep in process: the pre-dispatch path, plus
// journal checkpointing (every resolved group durably recorded as the
// sweep runs) and resume (journaled groups not re-priced).
func (s *Service) localSearch(ctx context.Context, req SearchRequest, job searchJob, key string, resume map[search.GroupKey]search.Best, progress func(search.ProgressSnapshot)) (SearchResponse, error) {
	stats := &search.Stats{}
	opt := search.Options{
		MaxMicroBatch: job.maxMB,
		Workers:       s.workers(req.Workers),
		NoPrune:       job.noPrune,
		Stats:         stats,
		Progress:      progress,
		Resume:        resume,
		Checkpoint:    s.journalCheckpoint(key),
	}
	if job.costModel != nil {
		// The cost model rides the engine params; the search threads them
		// to the simulator and every bound, which is what keeps pruning
		// exact under a non-default model.
		par := engine.Defaults()
		par.Model = job.costModel
		opt.Params = &par
	}
	// The injector rides the context into the search worker pool (PoolItem
	// stalls); fault.With is a no-op when no injector is configured.
	results, err := search.SweepAll(fault.With(ctx, s.cfg.Injector),
		job.cluster, job.model, job.families, job.batches, opt)
	partial := false
	if err != nil {
		ctxErr := ctx.Err()
		switch {
		case errors.Is(ctxErr, context.DeadlineExceeded) && len(results) > 0:
			// Graceful degradation: the time budget ran out mid-sweep but
			// incumbents exist. Serve the incumbent-so-far table marked
			// partial — and never cache it — instead of a bare 504.
			partial = true
		case ctxErr != nil:
			return SearchResponse{}, ctxErr
		default:
			// No family feasible at any batch: an empty table, exactly like
			// the pre-service CLI (which warned per family and printed the
			// header-only table).
			results = map[search.Family][]search.Best{}
		}
	}
	resp := SearchResponse{
		Title:   job.title(),
		Table:   search.Table(job.title(), results),
		Stats:   stats.Snapshot(),
		Partial: partial,
	}
	for _, f := range job.families {
		info := f.Info()
		resp.Families = append(resp.Families, FamilyResult{
			Key:   info.Key,
			Name:  info.Name,
			Bests: results[f],
		})
	}
	s.aggregate(resp.Stats)
	return resp, nil
}

// dispatchSearch runs the sweep through the configured shard coordinator:
// journal-resumed groups are subtracted up front, the rest are priced by
// the replica fleet, and the winners merge back in (family, batch) order —
// byte-identical to the in-process table, because each group's winner is
// deterministic wherever it is priced. Fresh winners are journaled like
// the local path's checkpoints. Stats stay zero: the pruning counters
// live on the replicas.
func (s *Service) dispatchSearch(ctx context.Context, req SearchRequest, job searchJob, key string, resume map[search.GroupKey]search.Best) (SearchResponse, error) {
	var groups []search.GroupKey
	for _, f := range job.families {
		fk := f.Info().Key
		for _, b := range job.batches {
			g := search.GroupKey{Family: fk, Batch: b}
			if _, ok := resume[g]; !ok {
				groups = append(groups, g)
			}
		}
	}
	winners, err := s.cfg.Sharder.Dispatch(fault.With(ctx, s.cfg.Injector), req, groups)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return SearchResponse{}, ctxErr
		}
		return SearchResponse{}, fmt.Errorf("%w: %w", ErrTransient, err)
	}
	checkpoint := s.journalCheckpoint(key)
	results := map[search.Family][]search.Best{}
	for _, f := range job.families {
		fk := f.Info().Key
		for _, b := range job.batches {
			g := search.GroupKey{Family: fk, Batch: b}
			best, ok := resume[g]
			if !ok {
				if best, ok = winners[g]; ok && checkpoint != nil {
					checkpoint(g, best)
				}
			}
			if ok {
				results[f] = append(results[f], best)
			}
		}
	}
	resp := SearchResponse{
		Title: job.title(),
		Table: search.Table(job.title(), results),
	}
	for _, f := range job.families {
		info := f.Info()
		resp.Families = append(resp.Families, FamilyResult{
			Key:   info.Key,
			Name:  info.Name,
			Bests: results[f],
		})
	}
	return resp, nil
}

// journalEntry is one sweep checkpoint record: a resolved group and its
// winner, stored as JSON under the sweep's cache key.
type journalEntry struct {
	Key  search.GroupKey `json:"key"`
	Best search.Best     `json:"best"`
}

// journalResume rebuilds a sweep's resume map from its journaled
// checkpoints (nil when no journal is configured or nothing is recorded).
// Duplicate records — a group journaled again by a resumed run — are
// harmless: winners are deterministic, so last-wins rebuilds the same map.
func (s *Service) journalResume(key string) map[search.GroupKey]search.Best {
	if s.cfg.Journal == nil {
		return nil
	}
	entries := s.cfg.Journal.Entries(key)
	if len(entries) == 0 {
		return nil
	}
	resume := make(map[search.GroupKey]search.Best, len(entries))
	for _, blob := range entries {
		var e journalEntry
		if err := json.Unmarshal(blob, &e); err == nil && e.Key.Family != "" {
			resume[e.Key] = e.Best
		}
	}
	return resume
}

// journalCheckpoint returns the durable checkpoint sink for a sweep, or
// nil when no journal is configured. Append failures degrade — the sweep
// continues unjournaled and /healthz reports it — because losing a
// checkpoint only costs re-pricing that group after a crash.
func (s *Service) journalCheckpoint(key string) func(search.GroupKey, search.Best) {
	if s.cfg.Journal == nil {
		return nil
	}
	return func(g search.GroupKey, b search.Best) {
		blob, err := json.Marshal(journalEntry{Key: g, Best: b})
		if err != nil {
			s.journalErrs.Add(1)
			return
		}
		if err := s.cfg.Journal.Append(key, blob); err != nil {
			s.journalErrs.Add(1)
		}
	}
}

// storeGet is the read-through side of the durable store: a hit is an
// exact, previously computed response (the CRC framing guarantees it is
// the bytes that were written; a record that fails to decode is treated
// as a miss, never served).
func (s *Service) storeGet(key string) (SearchResponse, bool) {
	if s.cfg.Store == nil {
		return SearchResponse{}, false
	}
	blob, ok, err := s.cfg.Store.Get(key)
	if err != nil || !ok {
		s.storeMisses.Add(1)
		return SearchResponse{}, false
	}
	var resp SearchResponse
	if err := json.Unmarshal(blob, &resp); err != nil {
		s.storeMisses.Add(1)
		return SearchResponse{}, false
	}
	s.storeHits.Add(1)
	return resp, true
}

// storePut is the write-behind side: best-effort durability for a
// completed response. Failures are counted (and degrade /healthz) but
// never fail the request.
func (s *Service) storePut(key string, resp SearchResponse) {
	if s.cfg.Store == nil {
		return
	}
	blob, err := json.Marshal(resp)
	if err != nil {
		return
	}
	s.cfg.Store.Put(key, blob)
}

// Simulate runs one discrete-event simulation. The simulation itself is
// indivisible: the context gates the queue wait and the start (an expired
// deadline or a gone client never starts the job), but a simulation
// already running completes — it is a single DES pass, not a sweep.
func (s *Service) Simulate(ctx context.Context, req SimulateRequest) (SimulateResponse, error) {
	m, err := cliParseModel(req.Model)
	if err != nil {
		return SimulateResponse{}, err
	}
	c, err := cliParseCluster(req.Cluster)
	if err != nil {
		return SimulateResponse{}, err
	}
	if req.CostModel == "" {
		req.CostModel = s.cfg.DefaultCostModel
	}
	cm, err := cliParseCostModel(req.CostModel)
	if err != nil {
		return SimulateResponse{}, err
	}
	ctx, cancel := s.deadline(ctx, req.TimeoutMS)
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		return SimulateResponse{}, err
	}
	defer release()
	if err := s.injectJob(ctx); err != nil {
		return SimulateResponse{}, err
	}
	if err := ctx.Err(); err != nil {
		return SimulateResponse{}, err
	}
	eopt := engine.Options{CaptureTimeline: req.CaptureTimeline}
	if req.Diagram {
		par := figures.DiagramParams()
		par.Model = cm
		eopt.Params = &par
	} else if cm != nil {
		par := engine.Defaults()
		par.Model = cm
		eopt.Params = &par
	}
	res, err := engine.SimulateOpts(c, m, req.Plan, eopt)
	if err != nil {
		// With a resolved model and cluster, a simulation failure means the
		// request's plan is invalid for the scenario (Plan.Validate, the
		// GPU-budget checks): the caller's input, not a server fault.
		return SimulateResponse{}, badRequestf("simulate: %v", err)
	}
	return SimulateResponse{Result: res}, nil
}

// FigureProgress is one artifact-level progress line of a streamed figure
// regeneration: the artifact about to run and the completed count.
type FigureProgress struct {
	// Artifact names the generator currently running; empty on the final
	// all-done line.
	Artifact string `json:"artifact,omitempty"`
	// Done counts completed generators, out of Total.
	Done  int `json:"done"`
	Total int `json:"total"`
}

// Figures regenerates the requested artifacts in paper order.
func (s *Service) Figures(ctx context.Context, req FigureRequest) (FigureResponse, error) {
	return s.figuresWith(ctx, req, nil)
}

// FiguresStream is Figures with artifact-level progress: the callback
// fires before each generator runs and once more when all are done (it
// may be invoked from the job goroutine and must return quickly).
func (s *Service) FiguresStream(ctx context.Context, req FigureRequest, progress func(FigureProgress)) (FigureResponse, error) {
	return s.figuresWith(ctx, req, progress)
}

func (s *Service) figuresWith(ctx context.Context, req FigureRequest, progress func(FigureProgress)) (FigureResponse, error) {
	fams, err := resolveFamilies(req.Families, nil)
	if err != nil {
		return FigureResponse{}, badRequestf("%v", err)
	}
	if req.CostModel == "" {
		req.CostModel = s.cfg.DefaultCostModel
	}
	cm, err := cliParseCostModel(req.CostModel)
	if err != nil {
		return FigureResponse{}, err
	}
	cfg := figures.Config{Workers: s.workers(req.Workers), CostModel: cm}
	if len(req.Families) > 0 {
		// Only an explicit selection narrows the artifacts: their defaults
		// differ per artifact (paper families vs every registered family).
		cfg.Families = fams
	}
	gens := figures.Generators(cfg)
	selected := gens
	if len(req.Names) > 0 {
		byName := map[string]figures.Generator{}
		var available []string
		for _, g := range gens {
			byName[g.Name] = g
			available = append(available, g.Name)
		}
		selected = nil
		for _, name := range req.Names {
			g, ok := byName[name]
			if !ok {
				return FigureResponse{}, badRequestf("unknown artifact %q (available: %v)", name, available)
			}
			selected = append(selected, g)
		}
	}
	ctx, cancel := s.deadline(ctx, req.TimeoutMS)
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		return FigureResponse{}, err
	}
	defer release()
	if err := s.injectJob(ctx); err != nil {
		return FigureResponse{}, err
	}
	var resp FigureResponse
	for i, g := range selected {
		if progress != nil {
			progress(FigureProgress{Artifact: g.Name, Done: i, Total: len(selected)})
		}
		text, err := g.Run(ctx)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return FigureResponse{}, ctxErr
			}
			return FigureResponse{}, fmt.Errorf("service: %s: %w", g.Name, err)
		}
		resp.Artifacts = append(resp.Artifacts, Artifact{Name: g.Name, Text: text})
	}
	if progress != nil {
		progress(FigureProgress{Done: len(selected), Total: len(selected)})
	}
	return resp, nil
}
