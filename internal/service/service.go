// Package service is the job layer behind every bfpp surface: it defines
// the canonical JSON request/response types (SearchRequest,
// SimulateRequest, FigureRequest), canonicalizes and caches search
// results, enforces per-request worker budgets and bounds the number of
// concurrently executing jobs. The command-line tools submit the same
// request structs in process that cmd/bfpp-serve accepts over HTTP, so a
// CLI invocation and a server request provably run identical jobs and
// produce byte-identical tables.
//
// # Cancellation and deadlines
//
// Every method takes a context and observes cancellation — including
// while queued behind the job semaphore. A request's TimeoutMS (or the
// service's DefaultTimeout) is mapped onto the context as a deadline.
// Search and Figures abort between candidate simulations (promptly: an
// in-flight simulation is milliseconds); Simulate runs one indivisible
// simulation and checks its deadline only before it starts.
//
// # Worker budgets
//
// The search worker pool width is a per-request value clamped to
// Config.MaxWorkersPerRequest, threaded explicitly through
// search.Options.Workers — never through the deprecated process-global
// parallel.SetDefaultWorkers, which concurrent requests would race on.
// Worker counts never change results, so they are excluded from the
// result-cache key.
package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"bfpp/internal/engine"
	"bfpp/internal/figures"
	"bfpp/internal/parallel"
	"bfpp/internal/search"
)

// Config tunes a Service. The zero value is usable: sensible bounds are
// filled in by New.
type Config struct {
	// MaxJobs bounds the number of concurrently executing jobs; further
	// requests queue (cancellably) until a slot frees. 0 means 4.
	MaxJobs int
	// MaxWorkersPerRequest clamps the per-request worker budget. 0 means
	// no clamp: a request's explicit Workers value is honored as-is (the
	// CLIs run this way, so -workers can oversubscribe cores exactly like
	// the pre-service flag did); servers set an explicit bound.
	MaxWorkersPerRequest int
	// CacheEntries bounds the search result cache (insertion-order
	// eviction). 0 means 64; negative disables caching.
	CacheEntries int
	// DefaultTimeout applies to requests that do not carry their own
	// TimeoutMS. 0 means no deadline.
	DefaultTimeout time.Duration
}

// Service executes bfpp jobs: grid searches (cached), single simulations
// and figure regenerations. Methods are safe for concurrent use.
type Service struct {
	cfg Config
	sem chan struct{}

	mu    sync.Mutex
	cache map[string]SearchResponse
	order []string // cache keys in insertion order, for eviction
}

// New returns a Service with the config's zero fields defaulted.
func New(cfg Config) *Service {
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 4
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 64
	}
	return &Service{
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.MaxJobs),
		cache: map[string]SearchResponse{},
	}
}

// workers resolves a request's worker budget: the requested count (or the
// process default when 0), clamped to MaxWorkersPerRequest when one is
// configured.
func (s *Service) workers(requested int) int {
	w := parallel.Resolve(requested)
	if s.cfg.MaxWorkersPerRequest > 0 && w > s.cfg.MaxWorkersPerRequest {
		w = s.cfg.MaxWorkersPerRequest
	}
	return w
}

// acquire claims a job slot, waiting cancellably, and returns its release
// function.
func (s *Service) acquire(ctx context.Context) (func(), error) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// deadline applies the request's TimeoutMS (or the service default) to the
// context.
func (s *Service) deadline(ctx context.Context, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// cacheGet returns the cached response for a key.
func (s *Service) cacheGet(key string) (SearchResponse, bool) {
	if s.cfg.CacheEntries < 0 {
		return SearchResponse{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	resp, ok := s.cache[key]
	return resp, ok
}

// cachePut stores a response, evicting the oldest entries beyond the
// configured bound. Cached responses are treated as immutable.
func (s *Service) cachePut(key string, resp SearchResponse) {
	if s.cfg.CacheEntries < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.cache[key]; !ok {
		s.order = append(s.order, key)
	}
	s.cache[key] = resp
	for len(s.order) > s.cfg.CacheEntries {
		delete(s.cache, s.order[0])
		s.order = s.order[1:]
	}
}

// Search runs a grid-search job (or serves it from the result cache).
// Identical canonicalized requests — whatever their Workers or TimeoutMS —
// share one cache entry, so a repeated sweep costs a map lookup.
func (s *Service) Search(ctx context.Context, req SearchRequest) (SearchResponse, error) {
	return s.searchWith(ctx, req, nil)
}

// SearchStream is Search with live progress: the callback receives
// pruning-counter snapshots while the sweep runs (it is invoked serially,
// from worker goroutines, and must return quickly). A cache hit emits the
// final snapshot once.
func (s *Service) SearchStream(ctx context.Context, req SearchRequest, progress func(search.ProgressSnapshot)) (SearchResponse, error) {
	return s.searchWith(ctx, req, progress)
}

func (s *Service) searchWith(ctx context.Context, req SearchRequest, progress func(search.ProgressSnapshot)) (SearchResponse, error) {
	job, key, err := resolveSearch(req)
	if err != nil {
		return SearchResponse{}, err
	}
	if resp, ok := s.cacheGet(key); ok {
		resp.Cached = true
		if progress != nil {
			progress(resp.Stats)
		}
		return resp, nil
	}
	// The deadline applies before the queue wait: a request must not park
	// on the semaphore beyond its own budget.
	ctx, cancel := s.deadline(ctx, req.TimeoutMS)
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		return SearchResponse{}, err
	}
	defer release()

	stats := &search.Stats{}
	opt := search.Options{
		MaxMicroBatch: job.maxMB,
		Workers:       s.workers(req.Workers),
		NoPrune:       job.noPrune,
		Stats:         stats,
		Progress:      progress,
	}
	results, err := search.SweepAll(ctx, job.cluster, job.model, job.families, job.batches, opt)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return SearchResponse{}, ctxErr
		}
		// No family feasible at any batch: an empty table, exactly like
		// the pre-service CLI (which warned per family and printed the
		// header-only table).
		results = map[search.Family][]search.Best{}
	}
	resp := SearchResponse{
		Title: job.title(),
		Table: search.Table(job.title(), results),
		Stats: stats.Snapshot(),
	}
	for _, f := range job.families {
		info := f.Info()
		resp.Families = append(resp.Families, FamilyResult{
			Key:   info.Key,
			Name:  info.Name,
			Bests: results[f],
		})
	}
	s.cachePut(key, resp)
	return resp, nil
}

// Simulate runs one discrete-event simulation. The simulation itself is
// indivisible: the context gates the queue wait and the start (an expired
// deadline or a gone client never starts the job), but a simulation
// already running completes — it is a single DES pass, not a sweep.
func (s *Service) Simulate(ctx context.Context, req SimulateRequest) (SimulateResponse, error) {
	m, err := cliParseModel(req.Model)
	if err != nil {
		return SimulateResponse{}, err
	}
	c, err := cliParseCluster(req.Cluster)
	if err != nil {
		return SimulateResponse{}, err
	}
	ctx, cancel := s.deadline(ctx, req.TimeoutMS)
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		return SimulateResponse{}, err
	}
	defer release()
	if err := ctx.Err(); err != nil {
		return SimulateResponse{}, err
	}
	eopt := engine.Options{CaptureTimeline: req.CaptureTimeline}
	if req.Diagram {
		par := figures.DiagramParams()
		eopt.Params = &par
	}
	res, err := engine.SimulateOpts(c, m, req.Plan, eopt)
	if err != nil {
		// With a resolved model and cluster, a simulation failure means the
		// request's plan is invalid for the scenario (Plan.Validate, the
		// GPU-budget checks): the caller's input, not a server fault.
		return SimulateResponse{}, badRequestf("simulate: %v", err)
	}
	return SimulateResponse{Result: res}, nil
}

// Figures regenerates the requested artifacts in paper order.
func (s *Service) Figures(ctx context.Context, req FigureRequest) (FigureResponse, error) {
	fams, err := resolveFamilies(req.Families, nil)
	if err != nil {
		return FigureResponse{}, badRequestf("%v", err)
	}
	cfg := figures.Config{Workers: s.workers(req.Workers)}
	if len(req.Families) > 0 {
		// Only an explicit selection narrows the artifacts: their defaults
		// differ per artifact (paper families vs every registered family).
		cfg.Families = fams
	}
	gens := figures.Generators(cfg)
	selected := gens
	if len(req.Names) > 0 {
		byName := map[string]figures.Generator{}
		var available []string
		for _, g := range gens {
			byName[g.Name] = g
			available = append(available, g.Name)
		}
		selected = nil
		for _, name := range req.Names {
			g, ok := byName[name]
			if !ok {
				return FigureResponse{}, badRequestf("unknown artifact %q (available: %v)", name, available)
			}
			selected = append(selected, g)
		}
	}
	ctx, cancel := s.deadline(ctx, req.TimeoutMS)
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		return FigureResponse{}, err
	}
	defer release()
	var resp FigureResponse
	for _, g := range selected {
		text, err := g.Run(ctx)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return FigureResponse{}, ctxErr
			}
			return FigureResponse{}, fmt.Errorf("service: %s: %w", g.Name, err)
		}
		resp.Artifacts = append(resp.Artifacts, Artifact{Name: g.Name, Text: text})
	}
	return resp, nil
}
