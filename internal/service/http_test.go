package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bfpp/internal/hw"
	"bfpp/internal/model"
	"bfpp/internal/search"
)

// postJSON posts a request body and decodes the JSON response.
func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode
}

// TestHTTPSearchMatchesInProcess is the smoke test of the acceptance
// criteria: a server on an ephemeral port answers a small SearchRequest
// with a table byte-identical to the in-process search.Table output.
func TestHTTPSearchMatchesInProcess(t *testing.T) {
	srv := httptest.NewServer(Handler(New(Config{})))
	defer srv.Close()

	var got SearchResponse
	if code := postJSON(t, srv.URL+"/v1/search", smallReq(), &got); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	results, err := search.SweepAll(context.Background(), hw.PaperCluster(), model.Model6p6B(),
		search.Families(), []int{32, 64}, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := search.Table("Optimal configurations: 6.6B on 8xDGX-1 (64 GPUs)", results)
	if got.Table != want {
		t.Errorf("HTTP table differs from in-process table:\n--- http ---\n%s--- in-process ---\n%s", got.Table, want)
	}

	// The same request again is served from the cache, identically.
	var cached SearchResponse
	postJSON(t, srv.URL+"/v1/search", smallReq(), &cached)
	if !cached.Cached || cached.Table != want {
		t.Errorf("cache round-trip: cached=%v, tables equal=%v", cached.Cached, cached.Table == want)
	}
}

// TestHTTPStreamNDJSON asserts the streaming variant emits progress lines
// followed by exactly one terminal result line with the same table.
func TestHTTPStreamNDJSON(t *testing.T) {
	srv := httptest.NewServer(Handler(New(Config{})))
	defer srv.Close()

	raw, _ := json.Marshal(SearchRequest{Model: "6.6B", Cluster: "paper", Batches: []int{32}})
	resp, err := http.Post(srv.URL+"/v1/search?stream=1", "application/x-ndjson", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	type streamLine struct {
		Progress *search.ProgressSnapshot `json:"progress"`
		Result   *SearchResponse          `json:"result"`
		Error    string                   `json:"error"`
	}
	var results, progress int
	var last streamLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var line streamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Result != nil:
			results++
		case line.Progress != nil:
			progress++
		case line.Error != "":
			t.Fatalf("stream error: %s", line.Error)
		}
		last = line
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if results != 1 {
		t.Fatalf("got %d result lines, want 1 (progress lines: %d)", results, progress)
	}
	if last.Result == nil {
		t.Fatal("the result must be the terminal line")
	}
	if !strings.Contains(last.Result.Table, "Breadth-first") {
		t.Errorf("streamed table incomplete:\n%s", last.Result.Table)
	}
}

// TestHTTPErrors maps failure classes onto status codes.
func TestHTTPErrors(t *testing.T) {
	srv := httptest.NewServer(Handler(New(Config{})))
	defer srv.Close()

	var errResp map[string]string
	if code := postJSON(t, srv.URL+"/v1/search",
		SearchRequest{Model: "banana", Cluster: "paper", Batches: []int{8}}, &errResp); code != http.StatusBadRequest {
		t.Errorf("unknown model: status %d", code)
	}
	if !strings.Contains(errResp["error"], "52B") {
		t.Errorf("error should list registered models: %q", errResp["error"])
	}
	// A deadline that fires mid-sweep either times out (nothing simulated
	// yet -> 504) or degrades into a 200 with "partial": true; a complete
	// 200 is the one impossible outcome for a 1ms budget.
	var timedOut SearchResponse
	switch code := postJSON(t, srv.URL+"/v1/search",
		SearchRequest{Model: "52B", Cluster: "paper", Batches: []int{8, 16, 32}, NoPrune: true, TimeoutMS: 1},
		&timedOut); code {
	case http.StatusGatewayTimeout:
	case http.StatusOK:
		if !timedOut.Partial {
			t.Error("deadline: 200 without partial flag")
		}
	default:
		t.Errorf("deadline: status %d", code)
	}
	resp, err := http.Get(srv.URL + "/v1/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d", resp.StatusCode)
	}
	// Unknown fields are rejected: a typo'd request must not silently run
	// something else.
	resp2, err := http.Post(srv.URL+"/v1/search", "application/json",
		strings.NewReader(`{"model":"6.6B","cluster":"paper","batchez":[32]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d", resp2.StatusCode)
	}
}

// TestHTTPHealthz pins the liveness probe.
func TestHTTPHealthz(t *testing.T) {
	srv := httptest.NewServer(Handler(New(Config{})))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
}

// TestHTTPRegistryAddedScenario is the open-registry acceptance check: a
// model and a cluster registered at runtime round-trip through the HTTP
// surface with no code changes outside the registration calls.
func TestHTTPRegistryAddedScenario(t *testing.T) {
	if _, ok := model.Lookup("http-ext-model"); !ok { // idempotent under -count>1
		model.Register("http-ext-model", func() model.Transformer {
			m := model.Tiny()
			m.Name = "http-ext-model"
			return m
		})
		hw.Register("http-ext-cluster", func() hw.Cluster {
			c := hw.PaperCluster()
			c.Name = "http-ext-cluster"
			c.Nodes = 2
			return c
		})
	}
	srv := httptest.NewServer(Handler(New(Config{})))
	defer srv.Close()

	var got SearchResponse
	if code := postJSON(t, srv.URL+"/v1/search", SearchRequest{
		Model: "http-ext-model", Cluster: "http-ext-cluster", Batches: []int{16},
	}, &got); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(got.Title, "http-ext-model on http-ext-cluster (16 GPUs)") {
		t.Errorf("title = %q", got.Title)
	}
	feasible := false
	for _, fr := range got.Families {
		if len(fr.Bests) > 0 {
			feasible = true
		}
	}
	if !feasible {
		t.Errorf("registry-added scenario produced no winners:\n%s", got.Table)
	}
}
