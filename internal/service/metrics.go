package service

import (
	"fmt"
	"io"

	"bfpp/internal/search"
	"bfpp/internal/store"
)

// aggregate folds one completed sweep's final counter snapshot into the
// service's lifetime pruning totals, the source for /metrics. FamilyStats
// counters are atomic, so concurrent sweeps fold in without a lock.
func (s *Service) aggregate(snap search.ProgressSnapshot) {
	fold := func(fs *search.FamilyStats, p search.FamilyProgress) {
		fs.Enumerated.Add(p.Enumerated)
		fs.Dominated.Add(p.Dominated)
		fs.BoundSkipped.Add(p.BoundedOut)
		fs.Simulated.Add(p.Simulated)
		fs.FlooredOut.Add(p.FlooredOut)
		fs.ReplayPriced.Add(p.ReplayPriced)
		fs.WarmStartHits.Add(p.WarmStartHits)
	}
	fold(&s.agg.FamilyStats, search.FamilyProgress{
		Enumerated:    snap.Enumerated,
		Dominated:     snap.Dominated,
		BoundedOut:    snap.BoundedOut,
		Simulated:     snap.Simulated,
		FlooredOut:    snap.FlooredOut,
		ReplayPriced:  snap.ReplayPriced,
		WarmStartHits: snap.WarmStartHits,
	})
	for _, p := range snap.Families {
		fold(s.agg.Family(p.Key), p)
	}
}

// WriteMetrics emits the service's counters in the Prometheus text
// exposition format (version 0.0.4): job-slot load, load sheds, the
// search cache and durable-store hit rates, store/journal durability
// counters, and the lifetime pruning-cascade totals (overall and per
// family). It reads raw counters only — no replica probes, no locks held
// across I/O — so a scrape is cheap at any load.
func (s *Service) WriteMetrics(w io.Writer) {
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("bfpp_jobs_in_flight", "Jobs currently holding a slot.", s.inFlight.Load())
	gauge("bfpp_jobs_max", "Configured job-slot bound (Config.MaxJobs).", int64(s.cfg.MaxJobs))
	gauge("bfpp_jobs_queued", "Requests parked waiting for a job slot.", s.queued.Load())
	counter("bfpp_jobs_shed_total", "Requests rejected with 429 (queue full).", s.shed.Load())

	counter("bfpp_search_requests_total", "Search requests admitted past request resolution.", s.searches.Load())
	counter("bfpp_search_cache_hits_total", "Searches served from the in-memory result cache.", s.cacheHits.Load())
	counter("bfpp_search_cache_misses_total", "Searches that missed the in-memory result cache.", s.cacheMisses.Load())
	counter("bfpp_store_hits_total", "Searches served from the durable store (read-through).", s.storeHits.Load())
	counter("bfpp_store_misses_total", "Durable-store lookups that missed.", s.storeMisses.Load())
	counter("bfpp_journal_append_errors_total", "Sweep checkpoints dropped by journal write failures.", s.journalErrs.Load())

	if s.cfg.Store != nil {
		s.writeStoreStats(w, "bfpp_store", "result store", s.cfg.Store.Stats())
	}
	if s.cfg.Journal != nil {
		s.writeStoreStats(w, "bfpp_journal", "sweep journal", s.cfg.Journal.Stats())
	}

	s.writePruneStats(w)
}

// writeStoreStats emits one append-only log's durability counters under a
// metric prefix.
func (s *Service) writeStoreStats(w io.Writer, prefix, what string, st store.Stats) {
	emit := func(suffix, typ, help string, v int64) {
		name := prefix + suffix
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, help, name, typ, name, v)
	}
	emit("_records", "gauge", "Live records in the "+what+".", st.Records)
	emit("_reads_total", "counter", "Reads served by the "+what+".", st.Reads)
	emit("_writes_total", "counter", "Records appended to the "+what+".", st.Writes)
	emit("_write_errors_total", "counter", "Failed appends to the "+what+" (degraded).", st.WriteErrors)
	emit("_corruptions_recovered_total", "counter", "Torn or corrupt frames truncated from the "+what+" at open.", st.CorruptionsRecovered)
}

// pruneMetrics maps the pruning-cascade counters onto metric names, in
// emission order.
var pruneMetrics = []struct {
	suffix string
	help   string
	load   func(*search.FamilyStats) int64
}{
	{"enumerated_total", "Candidate plans entering the work list.", func(fs *search.FamilyStats) int64 { return fs.Enumerated.Load() }},
	{"dominated_total", "Candidates removed by the dominance pre-pass.", func(fs *search.FamilyStats) int64 { return fs.Dominated.Load() }},
	{"bound_skipped_total", "Candidates skipped on the throughput upper bound.", func(fs *search.FamilyStats) int64 { return fs.BoundSkipped.Load() }},
	{"simulated_total", "Candidates that reached the discrete-event simulator.", func(fs *search.FamilyStats) int64 { return fs.Simulated.Load() }},
	{"floored_out_total", "Bound skips won by the tier-1 floor alone.", func(fs *search.FamilyStats) int64 { return fs.FlooredOut.Load() }},
	{"replay_priced_total", "Tier-2 exact replays paid.", func(fs *search.FamilyStats) int64 { return fs.ReplayPriced.Load() }},
	{"warm_start_hits_total", "Group incumbents seeded from a neighboring grid point.", func(fs *search.FamilyStats) int64 { return fs.WarmStartHits.Load() }},
}

// writePruneStats emits the lifetime pruning totals: one unlabeled series
// per counter, plus a family-labeled breakdown.
func (s *Service) writePruneStats(w io.Writer) {
	keys := s.agg.FamilyKeys()
	for _, m := range pruneMetrics {
		name := "bfpp_search_" + m.suffix
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			name, m.help, name, name, m.load(&s.agg.FamilyStats))
		if len(keys) == 0 {
			continue
		}
		fname := "bfpp_search_family_" + m.suffix
		fmt.Fprintf(w, "# HELP %s Per-family breakdown: %s\n# TYPE %s counter\n", fname, m.help, fname)
		for _, key := range keys {
			fmt.Fprintf(w, "%s{family=%q} %d\n", fname, key, m.load(s.agg.Family(key)))
		}
	}
}
