package service

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"bfpp/internal/fault"
	"bfpp/internal/search"
	"bfpp/internal/store"
)

// openStore opens a result store under the test's temp dir.
func openStore(t *testing.T, dir string) *store.File {
	t.Helper()
	st, err := store.Open(filepath.Join(dir, "results.log"))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// openJournal opens a sweep journal under the test's temp dir.
func openJournal(t *testing.T, dir string) *store.Journal {
	t.Helper()
	j, err := store.OpenJournal(filepath.Join(dir, "sweeps.journal"))
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// TestStoreReadThroughAcrossRestart pins the crash-safety contract: a
// "restarted" service (fresh in-memory cache, same store file) serves the
// previously computed sweep from disk, byte-identical and marked Cached,
// without recomputing.
func TestStoreReadThroughAcrossRestart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	st := openStore(t, dir)
	first, err := New(Config{Store: st}).Search(ctx, smallReq())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	defer st2.Close()
	s2 := New(Config{Store: st2})
	second, err := s2.Search(ctx, smallReq())
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("restarted service recomputed instead of reading through the store")
	}
	if second.Table != first.Table {
		t.Errorf("store round-trip changed the table:\n--- first ---\n%s--- second ---\n%s", first.Table, second.Table)
	}
	if s2.storeHits.Load() != 1 {
		t.Errorf("storeHits = %d, want 1", s2.storeHits.Load())
	}
	// The store hit refilled the in-memory cache: a third request never
	// touches the store again.
	if _, err := s2.Search(ctx, smallReq()); err != nil {
		t.Fatal(err)
	}
	if got := s2.storeHits.Load(); got != 1 {
		t.Errorf("storeHits after cache refill = %d, want still 1", got)
	}
}

// TestStoreWriteFailureDegrades pins degraded-as-data: scripted store
// write faults never fail the request — the sweep is served, the write is
// dropped, and /healthz reports the store unhealthy.
func TestStoreWriteFailureDegrades(t *testing.T) {
	ctx := context.Background()
	inj := fault.NewScript(fault.Rule{
		Point: fault.StoreWrite, Times: 1 << 20,
		Fault: fault.Fault{Kind: fault.Error, Err: fault.InjectedError{Msg: "disk full"}},
	})
	st, err := store.OpenOptions(filepath.Join(t.TempDir(), "results.log"), store.Options{Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := New(Config{Store: st})
	resp, err := s.Search(ctx, smallReq())
	if err != nil {
		t.Fatalf("store write failure failed the request: %v", err)
	}
	if resp.Table == "" {
		t.Error("empty table")
	}
	h := s.Health(context.Background())
	if h.Store == nil || h.Store.OK {
		t.Errorf("health does not report the degraded store: %+v", h.Store)
	}
	if h.Status != "degraded" {
		t.Errorf("status = %q, want degraded", h.Status)
	}
	if h.Store.Stats.WriteErrors == 0 {
		t.Error("store write errors not counted")
	}
}

// TestNilStoreBitForBit pins the zero-cost default: a service without a
// store behaves exactly as before — same response, no store counters.
func TestNilStoreBitForBit(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	st := openStore(t, dir)
	defer st.Close()

	withStore, err := New(Config{Store: st}).Search(ctx, smallReq())
	if err != nil {
		t.Fatal(err)
	}
	without, err := New(Config{}).Search(ctx, smallReq())
	if err != nil {
		t.Fatal(err)
	}
	if withStore.Table != without.Table {
		t.Error("store-backed and plain services disagree on the table")
	}
	if h := New(Config{}).Health(context.Background()); h.Store != nil || h.Replicas != nil {
		t.Errorf("plain service health has durability sections: %+v", h)
	}
}

// TestJournalResumeByteIdentical is the service-level resume acceptance
// criterion: a sweep journaled to completion, then replayed from a
// journal holding only a prefix of its checkpoints, re-prices only the
// unfinished groups and produces the byte-identical table.
func TestJournalResumeByteIdentical(t *testing.T) {
	ctx := context.Background()
	req := smallReq()

	dir := t.TempDir()
	j1 := openJournal(t, dir)
	s1 := New(Config{Journal: j1})
	full, err := s1.Search(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	_, key, err := resolveSearch(req)
	if err != nil {
		t.Fatal(err)
	}
	entries := j1.Entries(key)
	cells := 0
	for _, fr := range full.Families {
		cells += len(fr.Bests)
	}
	if len(entries) != cells {
		t.Fatalf("journaled %d checkpoints, want %d (one per table cell)", len(entries), cells)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// A "crashed" journal: only the first half of the checkpoints made it
	// to disk before the (simulated) kill.
	for _, take := range []int{0, len(entries) / 2, len(entries)} {
		dir2 := t.TempDir()
		j2 := openJournal(t, dir2)
		for _, blob := range entries[:take] {
			if err := j2.Append(key, blob); err != nil {
				t.Fatal(err)
			}
		}
		s2 := New(Config{Journal: j2})
		resumed, err := s2.Search(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if resumed.Table != full.Table {
			t.Errorf("take=%d: resumed table differs:\n--- full ---\n%s--- resumed ---\n%s", take, full.Table, resumed.Table)
		}
		if take == len(entries) && resumed.Stats.Enumerated != 0 {
			t.Errorf("full resume still enumerated %d candidates", resumed.Stats.Enumerated)
		}
		if take > 0 && resumed.Stats.Enumerated >= full.Stats.Enumerated {
			t.Errorf("take=%d: resume did not shrink the search (%d >= %d enumerated)",
				take, resumed.Stats.Enumerated, full.Stats.Enumerated)
		}
		j2.Close()
	}
}

// fakeSharder prices groups in process through search.Optimize — the
// service-side contract test needs a Sharder, not a full coordinator
// (internal/dispatch has its own chaos suite and cannot be imported here).
type fakeSharder struct {
	health []ReplicaHealth
}

func (f *fakeSharder) Dispatch(ctx context.Context, req SearchRequest, groups []search.GroupKey) (map[search.GroupKey]search.Best, error) {
	job, _, err := resolveSearch(req)
	if err != nil {
		return nil, err
	}
	out := map[search.GroupKey]search.Best{}
	for _, g := range groups {
		fam, ok := search.FamilyByKey(g.Family)
		if !ok {
			continue
		}
		best, err := search.Optimize(ctx, job.cluster, job.model, fam, g.Batch, search.Options{
			MaxMicroBatch: job.maxMB, NoPrune: job.noPrune,
		})
		if err != nil {
			continue // infeasible: absent from the map
		}
		out[g] = best
	}
	return out, nil
}

func (f *fakeSharder) Health(context.Context) []ReplicaHealth { return f.health }

// TestSharderWiredByteIdentical pins the dispatch path at the service
// layer: a Sharder-backed service returns the byte-identical table, and
// /healthz carries the replica probes.
func TestSharderWiredByteIdentical(t *testing.T) {
	ctx := context.Background()
	want, err := New(Config{}).Search(ctx, smallReq())
	if err != nil {
		t.Fatal(err)
	}
	sh := &fakeSharder{health: []ReplicaHealth{
		{Name: "r0", OK: true},
		{Name: "r1", OK: false, Err: "connection refused"},
	}}
	s := New(Config{Sharder: sh})
	got, err := s.Search(ctx, smallReq())
	if err != nil {
		t.Fatal(err)
	}
	if got.Table != want.Table {
		t.Errorf("dispatched table differs:\n--- local ---\n%s--- dispatched ---\n%s", want.Table, got.Table)
	}
	h := s.Health(context.Background())
	if len(h.Replicas) != 2 {
		t.Fatalf("health replicas = %d, want 2", len(h.Replicas))
	}
	if h.Status != "degraded" {
		t.Errorf("status = %q, want degraded (one replica down)", h.Status)
	}
}

// TestSharderJournalsWinners pins that the dispatch path journals fresh
// winners just like the local path checkpoints.
func TestSharderJournalsWinners(t *testing.T) {
	ctx := context.Background()
	j := openJournal(t, t.TempDir())
	defer j.Close()
	s := New(Config{Sharder: &fakeSharder{}, Journal: j})
	resp, err := s.Search(ctx, smallReq())
	if err != nil {
		t.Fatal(err)
	}
	_, key, _ := resolveSearch(smallReq())
	cells := 0
	for _, fr := range resp.Families {
		cells += len(fr.Bests)
	}
	if got := len(j.Entries(key)); got != cells {
		t.Errorf("journaled %d winners, want %d", got, cells)
	}
}

// TestMetricsEndpoint pins the Prometheus exposition: after one computed
// and one cached search against a store-backed service, /metrics carries
// the job, cache, store and pruning counters.
func TestMetricsEndpoint(t *testing.T) {
	ctx := context.Background()
	st := openStore(t, t.TempDir())
	defer st.Close()
	j := openJournal(t, t.TempDir())
	defer j.Close()
	s := New(Config{Store: st, Journal: j})
	if _, err := s.Search(ctx, smallReq()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Search(ctx, smallReq()); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	s.WriteMetrics(&b)
	out := b.String()
	for _, want := range []string{
		"bfpp_jobs_in_flight 0",
		"bfpp_jobs_shed_total 0",
		"bfpp_search_requests_total 2",
		"bfpp_search_cache_hits_total 1",
		"bfpp_search_cache_misses_total 1",
		"bfpp_store_misses_total 1",
		"bfpp_store_writes_total 1",
		"bfpp_journal_writes_total",
		"bfpp_search_enumerated_total",
		`bfpp_search_family_enumerated_total{family="bf"}`,
		"# TYPE bfpp_jobs_in_flight gauge",
		"# TYPE bfpp_search_requests_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
