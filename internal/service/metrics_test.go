package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHTTPMetrics pins the /metrics endpoint: Prometheus text exposition,
// GET-only, counters moving with traffic.
func TestHTTPMetrics(t *testing.T) {
	srv := httptest.NewServer(Handler(New(Config{})))
	defer srv.Close()

	if code := postJSON(t, srv.URL+"/v1/search", smallReq(), nil); code != http.StatusOK {
		t.Fatalf("search status %d", code)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"bfpp_search_requests_total 1",
		"bfpp_search_cache_misses_total 1",
		"bfpp_jobs_in_flight 0",
		"bfpp_search_simulated_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}

	post, err := http.Post(srv.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics status %d, want 405", post.StatusCode)
	}
}

// TestHTTPFiguresStreamNDJSON pins the figures streaming surface: the
// same ?stream=1 opt-in and throttle writer as /v1/search, with
// artifact-level progress lines and one terminal result.
func TestHTTPFiguresStreamNDJSON(t *testing.T) {
	srv := httptest.NewServer(Handler(New(Config{})))
	defer srv.Close()

	raw, _ := json.Marshal(FigureRequest{Names: []string{"figure2", "figure3"}})
	resp, err := http.Post(srv.URL+"/v1/figures?stream=1", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	type streamLine struct {
		Progress *FigureProgress `json:"progress"`
		Result   *FigureResponse `json:"result"`
		Error    string          `json:"error"`
	}
	var results int
	var last streamLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var line streamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Error != "" {
			t.Fatalf("stream error: %s", line.Error)
		}
		if line.Result != nil {
			results++
		}
		if line.Progress != nil && line.Progress.Total != 2 {
			t.Errorf("progress total = %d, want 2", line.Progress.Total)
		}
		last = line
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if results != 1 || last.Result == nil {
		t.Fatalf("got %d result lines (terminal: %v), want exactly 1, last", results, last.Result != nil)
	}
	if len(last.Result.Artifacts) != 2 {
		t.Fatalf("streamed %d artifacts, want 2", len(last.Result.Artifacts))
	}
	for i, name := range []string{"figure2", "figure3"} {
		if last.Result.Artifacts[i].Name != name || last.Result.Artifacts[i].Text == "" {
			t.Errorf("artifact %d = %q (empty=%v), want %q",
				i, last.Result.Artifacts[i].Name, last.Result.Artifacts[i].Text == "", name)
		}
	}
}

// TestScrapeByteStability pins the determinism contract the lint suite
// enforces statically (no map-order or wall-clock leakage in handler
// paths): with no traffic in between, consecutive /metrics and /healthz
// scrapes return byte-identical bodies.
func TestScrapeByteStability(t *testing.T) {
	srv := httptest.NewServer(Handler(New(Config{})))
	defer srv.Close()

	// Populate the pruning aggregates so /metrics walks a non-empty
	// family table.
	if code := postJSON(t, srv.URL+"/v1/search", smallReq(), nil); code != http.StatusOK {
		t.Fatalf("search status %d", code)
	}
	scrape := func(path string) []byte {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	for _, path := range []string{"/metrics", "/healthz"} {
		first, second := scrape(path), scrape(path)
		if !bytes.Equal(first, second) {
			t.Errorf("%s not byte-stable across scrapes:\n--- first\n%s\n--- second\n%s", path, first, second)
		}
	}
}
