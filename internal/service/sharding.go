package service

import (
	"context"

	"bfpp/internal/search"
)

// ReplicaHealth is one replica's probe outcome, surfaced as data in the
// /healthz report (a down replica degrades the fleet, it does not flap
// the prober).
type ReplicaHealth struct {
	// Name identifies the replica (a base URL, or a local executor name).
	Name string `json:"name"`
	// OK reports the replica answered its health probe.
	OK bool `json:"ok"`
	// Err carries the probe failure when OK is false.
	Err string `json:"error,omitempty"`
}

// Sharder distributes a sweep's (family, batch) groups across replicas
// and merges the winners. The service consults it (when configured)
// instead of running search.SweepAll in process; internal/dispatch
// provides the coordinator implementation, and the dependency points
// this way only — the service never imports dispatch.
//
// The contract mirrors the search's determinism invariant: each group's
// winner is a deterministic function of the request, so however the
// groups are split, retried or failed over, the merged map — and the
// table built from it — is byte-identical to the in-process sweep.
// Groups with no feasible configuration are simply absent from the map.
type Sharder interface {
	// Dispatch prices the given groups of the request and returns the
	// winners. It fails over replica faults internally; the returned
	// error means the sweep could not be completed (every replica dead,
	// or ctx cancelled).
	Dispatch(ctx context.Context, req SearchRequest, groups []search.GroupKey) (map[search.GroupKey]search.Best, error)
	// Health probes every replica, degraded-as-data.
	Health(ctx context.Context) []ReplicaHealth
}
