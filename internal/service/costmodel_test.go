package service

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bfpp/internal/core"
	"bfpp/internal/cost"
)

// slowProfilePath writes a calibrated profile with a halved kernel ceiling
// and returns its path: a cost model guaranteed to price every plan
// differently than the paper default.
func slowProfilePath(t *testing.T) string {
	t.Helper()
	prof := cost.DefaultProfile()
	prof.Kernel.MaxEff /= 2
	raw, err := json.Marshal(prof)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "slow.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSearchCostModelPartitionsCache pins the cache-key contract: the cost
// model is part of the canonical request, so the same scenario under a
// different model must neither hit the other's cache entry nor produce its
// table — while the nil default and the explicit "paper" spelling share
// one entry (same fingerprint, same bytes).
func TestSearchCostModelPartitionsCache(t *testing.T) {
	s := New(Config{})
	ctx := context.Background()
	base := SearchRequest{Model: "6.6B", Cluster: "paper", Batches: []int{32, 64}}

	def, err := s.Search(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	paper := base
	paper.CostModel = "paper"
	if resp, err := s.Search(ctx, paper); err != nil {
		t.Fatal(err)
	} else if !resp.Cached || resp.Table != def.Table {
		t.Errorf("explicit \"paper\" should share the default's cache entry (cached=%t)", resp.Cached)
	}

	slow := base
	slow.CostModel = "calibrated:" + slowProfilePath(t)
	calResp, err := s.Search(ctx, slow)
	if err != nil {
		t.Fatal(err)
	}
	if calResp.Cached {
		t.Error("calibrated request hit the paper cache entry")
	}
	if calResp.Table == def.Table {
		t.Error("halved kernel ceiling produced the paper table: cost model not applied")
	}
	// Re-requesting the calibrated spelling hits its own entry.
	if resp, err := s.Search(ctx, slow); err != nil {
		t.Fatal(err)
	} else if !resp.Cached || resp.Table != calResp.Table {
		t.Errorf("repeated calibrated request missed its cache entry (cached=%t)", resp.Cached)
	}
	// And the default entry is still intact.
	if resp, err := s.Search(ctx, base); err != nil {
		t.Fatal(err)
	} else if !resp.Cached || resp.Table != def.Table {
		t.Errorf("default entry lost after calibrated request (cached=%t)", resp.Cached)
	}
}

// TestCostModelBadRequests pins the error contract: an unknown model name
// and an unreadable calibrated profile are bad requests naming the
// registered spellings, on both the search and simulate paths.
func TestCostModelBadRequests(t *testing.T) {
	s := New(Config{})
	ctx := context.Background()
	req := SearchRequest{Model: "6.6B", Cluster: "paper", Batches: []int{32},
		CostModel: "warp-speed"}
	if _, err := s.Search(ctx, req); !errors.Is(err, ErrBadRequest) ||
		!strings.Contains(err.Error(), "calibrated") {
		t.Errorf("unknown cost model: got %v, want bad request listing registered names", err)
	}
	sim := SimulateRequest{Model: "tiny", Cluster: "paper",
		Plan: core.Plan{Method: core.GPipe, DP: 1, PP: 2, TP: 1,
			MicroBatch: 1, NumMicro: 2, Loops: 1},
		CostModel: "calibrated:/no/such/profile.json"}
	if _, err := s.Simulate(ctx, sim); !errors.Is(err, ErrBadRequest) {
		t.Errorf("unreadable profile: got %v, want bad request", err)
	}
}

// TestDefaultCostModelConfig pins the server-wide default: a service
// configured with a cost model applies it to requests that leave the field
// empty, and /healthz advertises the registry.
func TestDefaultCostModelConfig(t *testing.T) {
	ctx := context.Background()
	slow := "calibrated:" + slowProfilePath(t)
	def, err := New(Config{}).Search(ctx, SearchRequest{Model: "6.6B", Cluster: "paper", Batches: []int{32}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := New(Config{DefaultCostModel: slow}).Search(ctx,
		SearchRequest{Model: "6.6B", Cluster: "paper", Batches: []int{32}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Table == def.Table {
		t.Error("DefaultCostModel was not applied to a request without cost_model")
	}
	h := New(Config{}).Health(ctx)
	found := false
	for _, name := range h.CostModels {
		if name == "paper" {
			found = true
		}
	}
	if !found {
		t.Errorf("healthz cost_models = %v, want it to include \"paper\"", h.CostModels)
	}
}
