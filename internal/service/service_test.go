package service

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"bfpp/internal/core"
	"bfpp/internal/hw"
	"bfpp/internal/model"
	"bfpp/internal/search"
)

// smallReq is a cheap sweep used across the tests.
func smallReq() SearchRequest {
	return SearchRequest{Model: "6.6B", Cluster: "paper", Batches: []int{32, 64}}
}

// TestSearchMatchesInProcess pins the cross-surface equivalence: the
// service's table is byte-identical to driving the search package
// directly with the same scenario.
func TestSearchMatchesInProcess(t *testing.T) {
	ctx := context.Background()
	resp, err := New(Config{}).Search(ctx, smallReq())
	if err != nil {
		t.Fatal(err)
	}
	results, err := search.SweepAll(ctx, hw.PaperCluster(), model.Model6p6B(),
		search.Families(), []int{32, 64}, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := search.Table("Optimal configurations: 6.6B on 8xDGX-1 (64 GPUs)", results)
	if resp.Table != want {
		t.Errorf("service table differs from in-process table:\n--- service ---\n%s--- in-process ---\n%s", resp.Table, want)
	}
	if len(resp.Families) != len(search.Families()) {
		t.Errorf("got %d family results, want %d", len(resp.Families), len(search.Families()))
	}
	if resp.Stats.Enumerated == 0 || resp.Stats.Done() != resp.Stats.Enumerated {
		t.Errorf("stats incomplete: %+v", resp.Stats)
	}
}

// TestSearchCacheCanonicalization asserts equivalent requests share one
// cache entry: reordered and duplicated batches, model/cluster aliases,
// different worker counts and a methods-based selection of the same
// families all hit the entry the first request filled.
func TestSearchCacheCanonicalization(t *testing.T) {
	s := New(Config{})
	ctx := context.Background()
	first, err := s.Search(ctx, smallReq())
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first request reported a cache hit")
	}
	equivalents := []SearchRequest{
		{Model: "6.6B", Cluster: "paper", Batches: []int{64, 32, 64}},
		{Model: "6p6b", Cluster: "ib", Batches: []int{32, 64}},
		{Model: "6.6B", Cluster: "paper", Batches: []int{32, 64}, Workers: 2, TimeoutMS: 60000},
		{Model: "6.6B", Cluster: "paper", Batches: []int{32, 64}, Families: []string{"all"}},
	}
	for i, req := range equivalents {
		resp, err := s.Search(ctx, req)
		if err != nil {
			t.Fatalf("equivalent %d: %v", i, err)
		}
		if !resp.Cached {
			t.Errorf("equivalent %d missed the cache", i)
		}
		if resp.Table != first.Table {
			t.Errorf("equivalent %d produced a different table", i)
		}
	}
	// A different scenario must not hit the entry.
	other, err := s.Search(ctx, SearchRequest{Model: "6.6B", Cluster: "paper", Batches: []int{32}})
	if err != nil {
		t.Fatal(err)
	}
	if other.Cached {
		t.Error("different batch grid reported a cache hit")
	}
}

// TestSearchCacheEviction pins the insertion-order bound.
func TestSearchCacheEviction(t *testing.T) {
	s := New(Config{CacheEntries: 1})
	ctx := context.Background()
	if _, err := s.Search(ctx, smallReq()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Search(ctx, SearchRequest{Model: "6.6B", Cluster: "paper", Batches: []int{32}}); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Search(ctx, smallReq()) // evicted by the second request
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Error("evicted entry reported a cache hit")
	}
	disabled := New(Config{CacheEntries: -1})
	disabled.Search(ctx, smallReq())
	if resp, _ := disabled.Search(ctx, smallReq()); resp.Cached {
		t.Error("disabled cache reported a hit")
	}
}

// TestBadRequests asserts resolution failures are marked ErrBadRequest
// and name the registered alternatives.
func TestBadRequests(t *testing.T) {
	s := New(Config{})
	ctx := context.Background()
	cases := []struct {
		name string
		run  func() error
	}{
		{"unknown model", func() error {
			_, err := s.Search(ctx, SearchRequest{Model: "banana", Cluster: "paper", Batches: []int{32}})
			return err
		}},
		{"unknown cluster", func() error {
			_, err := s.Search(ctx, SearchRequest{Model: "6.6B", Cluster: "cloud", Batches: []int{32}})
			return err
		}},
		{"unknown family", func() error {
			_, err := s.Search(ctx, SearchRequest{Model: "6.6B", Cluster: "paper", Families: []string{"zz"}, Batches: []int{32}})
			return err
		}},
		{"unknown method", func() error {
			_, err := s.Search(ctx, SearchRequest{Model: "6.6B", Cluster: "paper", Methods: []string{"zigzag"}, Batches: []int{32}})
			return err
		}},
		{"no batches", func() error {
			_, err := s.Search(ctx, SearchRequest{Model: "6.6B", Cluster: "paper"})
			return err
		}},
		{"unknown artifact", func() error {
			_, err := s.Figures(ctx, FigureRequest{Names: []string{"figure99"}})
			return err
		}},
		{"simulate unknown model", func() error {
			_, err := s.Simulate(ctx, SimulateRequest{Model: "banana", Cluster: "paper"})
			return err
		}},
		{"simulate malformed plan", func() error {
			_, err := s.Simulate(ctx, SimulateRequest{Model: "tiny", Cluster: "paper"})
			return err // the zero plan fails validation: caller input, not a server fault
		}},
	}
	for _, c := range cases {
		if err := c.run(); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: err = %v, want ErrBadRequest", c.name, err)
		}
	}
	if _, err := s.Search(ctx, SearchRequest{Model: "banana", Cluster: "paper", Batches: []int{1}}); err == nil ||
		!strings.Contains(err.Error(), "52B") {
		t.Errorf("unknown-model error should list registered names, got %v", err)
	}
}

// TestSearchInfeasibleBatchesIsNotAnError mirrors the CLI behavior: a
// scenario with no feasible configuration produces an empty table and
// empty per-family results, not an error.
func TestSearchInfeasibleBatchesIsNotAnError(t *testing.T) {
	resp, err := New(Config{}).Search(context.Background(),
		SearchRequest{Model: "6.6B", Cluster: "paper", Batches: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range resp.Families {
		if len(fr.Bests) != 0 {
			t.Errorf("family %s unexpectedly feasible at batch 1", fr.Key)
		}
	}
	if !strings.HasPrefix(resp.Table, resp.Title) {
		t.Errorf("table should still carry the title header:\n%s", resp.Table)
	}
}

// TestSearchCancellation covers the ctx paths: an already-cancelled
// request, a deadline expiring mid-sweep, and cancellation while queued
// behind the job semaphore.
func TestSearchCancellation(t *testing.T) {
	s := New(Config{MaxJobs: 1})
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Search(cancelled, smallReq()); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled err = %v", err)
	}

	// Deadline mid-sweep: 1ms cannot finish a 52B sweep cold. Depending on
	// how many simulations squeeze in before the deadline fires, the
	// service either reports the timeout (nothing to degrade to) or
	// degrades gracefully into a partial incumbents-so-far response — a
	// full, non-partial response is the one impossible outcome.
	resp, err := s.Search(context.Background(), SearchRequest{
		Model: "52B", Cluster: "paper", Batches: []int{8, 16, 32}, NoPrune: true, TimeoutMS: 1,
	})
	switch {
	case err == nil:
		if !resp.Partial {
			t.Fatal("1ms sweep returned a complete response; want partial or DeadlineExceeded")
		}
		if resp.Cached {
			t.Fatal("partial response claims to be cached")
		}
	case !errors.Is(err, context.DeadlineExceeded):
		t.Fatalf("deadline err = %v", err)
	}

	// Queued cancellation: occupy the single job slot, then cancel a
	// waiter and assert it unblocks promptly.
	release, err := s.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Search(waiterCtx, smallReq())
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter park on the semaphore
	cancelWaiter()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("queued waiter err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued waiter did not unblock on cancellation")
	}

	// The request deadline bounds the queue wait too: with the slot still
	// held, a TimeoutMS request must 504 on the semaphore, not park
	// indefinitely. Covers Search and the indivisible Simulate alike.
	queued := make(chan error, 2)
	go func() {
		req := smallReq()
		req.TimeoutMS = 50
		_, err := s.Search(context.Background(), req)
		queued <- err
	}()
	go func() {
		_, err := s.Simulate(context.Background(), SimulateRequest{
			Model: "tiny", Cluster: "paper", TimeoutMS: 50,
			Plan: core.Plan{Method: core.GPipe, DP: 1, PP: 4, TP: 1,
				MicroBatch: 1, NumMicro: 8, Loops: 1},
		})
		queued <- err
	}()
	for i := 0; i < 2; i++ {
		select {
		case err := <-queued:
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("queued deadline err = %v, want context.DeadlineExceeded", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("queued request ignored its deadline on the semaphore")
		}
	}
	release()
}

// TestSimulate covers the simulate endpoint including the diagram preset
// and timeline capture.
func TestSimulate(t *testing.T) {
	s := New(Config{})
	req := SimulateRequest{
		Model:   "tiny",
		Cluster: "paper",
		Plan: core.Plan{Method: core.GPipe, DP: 1, PP: 4, TP: 1,
			MicroBatch: 1, NumMicro: 8, Loops: 1},
	}
	resp, err := s.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.BatchTime <= 0 || resp.Result.Timeline != nil {
		t.Errorf("unexpected result: time %v, timeline %v", resp.Result.BatchTime, resp.Result.Timeline)
	}
	req.CaptureTimeline, req.Diagram = true, true
	withTL, err := s.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if withTL.Result.Timeline == nil {
		t.Error("CaptureTimeline did not retain the timeline")
	}
	if withTL.Result.BatchTime >= resp.Result.BatchTime {
		t.Errorf("diagram preset (zeroed overheads) should be faster: %v >= %v",
			withTL.Result.BatchTime, resp.Result.BatchTime)
	}
}

// TestFiguresSelection covers artifact selection and family scoping.
func TestFiguresSelection(t *testing.T) {
	s := New(Config{})
	resp, err := s.Figures(context.Background(), FigureRequest{Names: []string{"table5.1", "figure2"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Artifacts) != 2 || resp.Artifacts[0].Name != "table5.1" || resp.Artifacts[1].Name != "figure2" {
		t.Fatalf("unexpected artifacts %+v", resp.Artifacts)
	}
	if !strings.Contains(resp.Artifacts[0].Text, "52B") {
		t.Errorf("table5.1 content missing: %q", resp.Artifacts[0].Text)
	}
}
