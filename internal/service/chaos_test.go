package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"bfpp/internal/fault"
)

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 200; i++ {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestShedWhenSaturated pins load shedding: with the slot busy and the
// queue full, a further request is rejected immediately with ErrOverloaded
// (carrying a Retry-After hint) instead of parking, and the health report
// shows the degradation.
func TestShedWhenSaturated(t *testing.T) {
	s := New(Config{MaxJobs: 1, MaxQueued: 1})
	release, err := s.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	defer cancelWaiter()
	waiterDone := make(chan error, 1)
	go func() {
		rel, err := s.acquire(waiterCtx)
		if err == nil {
			rel()
		}
		waiterDone <- err
	}()
	waitFor(t, "the waiter to park", func() bool { return s.Health(context.Background()).Queued == 1 })

	_, shedErr := s.acquire(context.Background())
	if !errors.Is(shedErr, ErrOverloaded) {
		t.Fatalf("saturated acquire err = %v, want ErrOverloaded", shedErr)
	}
	if hint := RetryAfterHint(shedErr); hint <= 0 {
		t.Errorf("shed error carries no Retry-After hint: %v", shedErr)
	}
	if !Retryable(shedErr) {
		t.Errorf("shed error is not marked retryable: %v", shedErr)
	}

	h := s.Health(context.Background())
	if h.Status != "degraded" || h.InFlight != 1 || h.Queued != 1 || h.ShedTotal != 1 {
		t.Errorf("health under saturation = %+v", h)
	}

	// Releasing the slot lets the parked waiter through; health recovers.
	release()
	if err := <-waiterDone; err != nil {
		t.Fatalf("parked waiter err = %v", err)
	}
	waitFor(t, "health to recover", func() bool { return s.Health(context.Background()).Status == "ok" })
	if h := s.Health(context.Background()); h.InFlight != 0 || h.Queued != 0 {
		t.Errorf("health after drain = %+v", h)
	}
}

// TestCancelWhileQueuedNoLeak cancels several requests parked behind the
// semaphore and asserts they all unblock with context.Canceled, the queue
// count returns to zero, no goroutines leak, and the slot still works.
func TestCancelWhileQueuedNoLeak(t *testing.T) {
	s := New(Config{MaxJobs: 1, MaxQueued: -1})
	before := runtime.NumGoroutine()
	release, err := s.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	const waiters = 4
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			_, err := s.Search(ctx, smallReq())
			done <- err
		}()
	}
	waitFor(t, "all waiters to park", func() bool { return s.Health(context.Background()).Queued == waiters })
	cancel()
	for i := 0; i < waiters; i++ {
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("queued waiter err = %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("queued waiter did not unblock on cancellation")
		}
	}
	if q := s.Health(context.Background()).Queued; q != 0 {
		t.Fatalf("queued = %d after cancellation, want 0", q)
	}
	release()
	// The slot must be reusable: a real job runs to completion.
	if _, err := s.Search(context.Background(), smallReq()); err != nil {
		t.Fatalf("post-cancel search: %v", err)
	}
	waitFor(t, "goroutines to drain", func() bool { return runtime.NumGoroutine() <= before })
}

// TestCancelDuringRetryBackoff pins that a client context cancelled while
// Do is backing off returns promptly with the last real failure instead of
// sleeping out the schedule.
func TestCancelDuringRetryBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(20*time.Millisecond, cancel)
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Hour, Multiplier: 2}
	start := time.Now()
	_, err := Do(ctx, p, func() (int, error) {
		return 0, &OverloadedError{RetryAfter: time.Hour}
	})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want the last real failure (ErrOverloaded)", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Do returned after %v; backoff was not cancellable", elapsed)
	}
}

// TestRetryPolicyDeterminism pins the jitter schedule: same seed, same
// delays; Retry-After hints floor the computed delay; distinct seeds
// decorrelate.
func TestRetryPolicyDeterminism(t *testing.T) {
	p := DefaultRetry(7)
	for attempt := 1; attempt <= 3; attempt++ {
		a, b := p.delay(attempt, 0), p.delay(attempt, 0)
		if a != b {
			t.Fatalf("attempt %d: delay not deterministic (%v != %v)", attempt, a, b)
		}
		if a <= 0 || a > p.MaxDelay {
			t.Fatalf("attempt %d: delay %v outside (0, %v]", attempt, a, p.MaxDelay)
		}
	}
	if p.delay(1, 10*time.Second) != 10*time.Second {
		t.Error("Retry-After hint did not floor the delay")
	}
	if DefaultRetry(7).delay(2, 0) == DefaultRetry(8).delay(2, 0) {
		t.Error("different seeds produced identical jitter")
	}
}

// TestJobFaultRetryByteIdentical is the chaos property at the service
// level: transient injected job faults plus scripted worker-pool stalls, a
// retrying client, and the final table is byte-identical to the fault-free
// run.
func TestJobFaultRetryByteIdentical(t *testing.T) {
	clean, err := New(Config{}).Search(context.Background(), smallReq())
	if err != nil {
		t.Fatal(err)
	}

	inj := fault.NewScript(
		fault.Rule{Point: fault.Job, Times: 2, Fault: fault.Fault{Kind: fault.Error, Err: fault.InjectedError{Msg: "job"}}},
		fault.Rule{Point: fault.PoolItem, Times: 50, Fault: fault.Fault{Kind: fault.Delay, Sleep: 50 * time.Microsecond}},
	)
	s := New(Config{CacheEntries: -1, Injector: inj})

	// A bare call reports the injected failure and marks it retryable.
	_, err = s.Search(context.Background(), smallReq())
	if !errors.Is(err, ErrTransient) || !Retryable(err) {
		t.Fatalf("first call err = %v, want a retryable transient fault", err)
	}

	resp, err := Do(context.Background(),
		RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, Multiplier: 2, Jitter: 0.3, Seed: 1},
		func() (SearchResponse, error) { return s.Search(context.Background(), smallReq()) })
	if err != nil {
		t.Fatalf("retried search: %v", err)
	}
	if resp.Partial || resp.Cached {
		t.Fatalf("retried response flags: partial=%v cached=%v", resp.Partial, resp.Cached)
	}
	if resp.Table != clean.Table {
		t.Errorf("table after retries differs from fault-free run:\n--- faulted ---\n%s--- clean ---\n%s",
			resp.Table, clean.Table)
	}
	if inj.Fired() < 2 {
		t.Errorf("injector fired %d faults, want >= 2", inj.Fired())
	}
}

// TestHTTPJobPanicContained pins the panic middleware end to end: a job
// that panics mid-request produces a 500 for that request only — the
// server survives, the semaphore slot is released, and the next identical
// request succeeds with the fault-free bytes.
func TestHTTPJobPanicContained(t *testing.T) {
	clean, err := New(Config{}).Search(context.Background(), smallReq())
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{MaxJobs: 1, Injector: fault.NewScript(
		fault.Rule{Point: fault.Job, Fault: fault.Fault{Kind: fault.Panic}},
	)})
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	var errResp map[string]string
	if code := postJSON(t, srv.URL+"/v1/search", smallReq(), &errResp); code != http.StatusInternalServerError {
		t.Fatalf("panicking job: status %d, want 500", code)
	}
	if !strings.Contains(errResp["error"], "internal error") {
		t.Errorf("panic error body = %q", errResp["error"])
	}

	var ok SearchResponse
	if code := postJSON(t, srv.URL+"/v1/search", smallReq(), &ok); code != http.StatusOK {
		t.Fatalf("request after panic: status %d (slot leaked or server dead?)", code)
	}
	if ok.Table != clean.Table {
		t.Error("table after recovered panic differs from fault-free run")
	}
	if h := s.Health(context.Background()); h.InFlight != 0 {
		t.Errorf("in_flight = %d after panic, want 0 (slot leaked)", h.InFlight)
	}
}

// TestHTTPShedAndRetryAfter drives saturation over HTTP: the shed request
// gets 429 with a Retry-After header, and the parked one completes once
// the slot frees.
func TestHTTPShedAndRetryAfter(t *testing.T) {
	s := New(Config{MaxJobs: 1, MaxQueued: 1})
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	release, err := s.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	parked := make(chan int, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/v1/search", "application/json", bytes.NewReader(raw))
		if err != nil {
			parked <- -1
			return
		}
		resp.Body.Close()
		parked <- resp.StatusCode
	}()
	waitFor(t, "the HTTP waiter to park", func() bool { return s.Health(context.Background()).Queued >= 1 })

	resp, err := http.Post(srv.URL+"/v1/search", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated POST: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}

	release()
	if code := <-parked; code != http.StatusOK {
		t.Fatalf("parked request finished with %d", code)
	}
}

// TestHTTPHandlerFaultThenHealthz: an injected admission-level error is a
// retryable 503 with Retry-After, the next arrival passes, and /healthz
// reports structured JSON (always 200).
func TestHTTPHandlerFaultThenHealthz(t *testing.T) {
	s := New(Config{Injector: fault.NewScript(
		fault.Rule{Point: fault.Handler, Fault: fault.Fault{Kind: fault.Error, Err: fault.InjectedError{Msg: "admission"}}},
	)})
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	raw, err := json.Marshal(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/search", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("injected handler fault: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("injected 503 without Retry-After header")
	}

	if code := postJSON(t, srv.URL+"/v1/search", smallReq(), nil); code != http.StatusOK {
		t.Fatalf("arrival after injected fault: status %d", code)
	}

	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h Health
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatalf("healthz is not JSON: %v", err)
	}
	if hresp.StatusCode != http.StatusOK || h.Status != "ok" || h.MaxJobs != 4 || h.InFlight != 0 {
		t.Errorf("healthz = %d %+v", hresp.StatusCode, h)
	}
}

// TestHTTPBodyTooLarge pins the request-size limit: an oversize body gets
// 413 while a small request still fits under the same cap.
func TestHTTPBodyTooLarge(t *testing.T) {
	s := New(Config{MaxBodyBytes: 256})
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	big := SearchRequest{Model: "6.6B", Cluster: "paper", Batches: make([]int, 200)}
	for i := range big.Batches {
		big.Batches[i] = 1 << 20
	}
	raw, err := json.Marshal(big)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) <= 256 {
		t.Fatalf("test body only %d bytes; grow it", len(raw))
	}
	resp, err := http.Post(srv.URL+"/v1/search", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize body: status %d, want 413", resp.StatusCode)
	}
	small := SearchRequest{Model: "6.6B", Cluster: "paper", Batches: []int{32}}
	if code := postJSON(t, srv.URL+"/v1/search", small, nil); code != http.StatusOK {
		t.Errorf("small body under cap: status %d", code)
	}
}

// TestHTTPPartialOnDeadline forces graceful degradation deterministically:
// seeded pool stalls slow the sweep so the deadline fires mid-flight, and
// the response must be either 504 or a 200 carrying "partial": true —
// never a complete table.
func TestHTTPPartialOnDeadline(t *testing.T) {
	inj := fault.NewSeeded(3).Rate(fault.PoolItem, 1, fault.Fault{Kind: fault.Delay, Sleep: 5 * time.Millisecond})
	s := New(Config{Injector: inj, CacheEntries: -1})
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	req := smallReq()
	req.TimeoutMS = 50
	req.NoPrune = true
	var resp SearchResponse
	switch code := postJSON(t, srv.URL+"/v1/search", req, &resp); code {
	case http.StatusGatewayTimeout:
	case http.StatusOK:
		if !resp.Partial {
			t.Error("stalled sweep finished completely; want partial or 504 (raise the stall?)")
		}
	default:
		t.Fatalf("status %d", code)
	}
}
