package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"bfpp/internal/search"
)

// Handler exposes the service over HTTP:
//
//	POST /v1/search    SearchRequest  -> SearchResponse
//	POST /v1/simulate  SimulateRequest -> SimulateResponse
//	POST /v1/figures   FigureRequest  -> FigureResponse
//	GET  /healthz      liveness probe
//
// Responses are JSON. /v1/search streams NDJSON instead when the request
// sets ?stream=1 or sends "Accept: application/x-ndjson": progress lines
// {"progress": <snapshot>} (throttled to one per 100ms, plus the final
// state) followed by one {"result": <SearchResponse>} or
// {"error": "..."} line. Request deadlines (TimeoutMS, or the service
// default) are mapped onto the request context, which is also cancelled
// when the client disconnects.
func Handler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/search", func(w http.ResponseWriter, r *http.Request) {
		var req SearchRequest
		if !decodeRequest(w, r, &req) {
			return
		}
		if wantsStream(r) {
			streamSearch(w, r.Context(), s, req)
			return
		}
		resp, err := s.Search(r.Context(), req)
		writeResult(w, resp, err)
	})
	mux.HandleFunc("/v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		var req SimulateRequest
		if !decodeRequest(w, r, &req) {
			return
		}
		resp, err := s.Simulate(r.Context(), req)
		writeResult(w, resp, err)
	})
	mux.HandleFunc("/v1/figures", func(w http.ResponseWriter, r *http.Request) {
		var req FigureRequest
		if !decodeRequest(w, r, &req) {
			return
		}
		resp, err := s.Figures(r.Context(), req)
		writeResult(w, resp, err)
	})
	return mux
}

// decodeRequest parses a POST body into req, writing the error response
// itself when parsing fails.
func decodeRequest(w http.ResponseWriter, r *http.Request, req any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		writeError(w, badRequestf("decoding request body: %v", err))
		return false
	}
	return true
}

// status maps an execution error onto an HTTP status.
func status(err error) int {
	switch {
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is written into the void.
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeError(w http.ResponseWriter, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status(err))
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeResult(w http.ResponseWriter, resp any, err error) {
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// wantsStream reports whether the search request asked for NDJSON
// progress streaming.
func wantsStream(r *http.Request) bool {
	if r.URL.Query().Get("stream") == "1" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// progressThrottle limits how often progress lines are emitted; the final
// snapshot always flushes so the client sees the 100% state.
const progressThrottle = 100 * time.Millisecond

// streamSearch runs the search with live NDJSON progress. Lines are
// written from the request goroutine only: the search's progress callback
// (invoked on worker goroutines) parks snapshots behind a mutex and the
// writer drains the latest one at most every progressThrottle.
func streamSearch(w http.ResponseWriter, ctx context.Context, s *Service, req SearchRequest) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(line any) {
		enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}

	var mu sync.Mutex
	var latest search.ProgressSnapshot
	var dirty bool
	done := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		ticker := time.NewTicker(progressThrottle)
		defer ticker.Stop()
		flush := func() {
			mu.Lock()
			snap, emitNow := latest, dirty
			dirty = false
			mu.Unlock()
			if emitNow {
				emit(map[string]search.ProgressSnapshot{"progress": snap})
			}
		}
		for {
			select {
			case <-ticker.C:
				flush()
			case <-done:
				flush() // the terminal snapshot, so the client sees 100%
				return
			}
		}
	}()

	resp, err := s.SearchStream(ctx, req, func(snap search.ProgressSnapshot) {
		mu.Lock()
		latest, dirty = snap, true
		mu.Unlock()
	})
	close(done)
	<-writerDone
	if err != nil {
		emit(map[string]string{"error": err.Error()})
		return
	}
	emit(map[string]SearchResponse{"result": resp})
}
