package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"bfpp/internal/fault"
	"bfpp/internal/search"
)

// Handler exposes the service over HTTP:
//
//	POST /v1/search    SearchRequest  -> SearchResponse
//	POST /v1/simulate  SimulateRequest -> SimulateResponse
//	POST /v1/figures   FigureRequest  -> FigureResponse
//	GET  /healthz      liveness probe (JSON Health, always 200)
//	GET  /metrics      Prometheus text exposition (see WriteMetrics)
//
// Responses are JSON. /v1/search and /v1/figures stream NDJSON instead
// when the request sets ?stream=1 or sends "Accept:
// application/x-ndjson": progress lines {"progress": <snapshot>}
// (throttled to one per 100ms by a shared single-writer throttle, plus
// the final state) followed by one {"result": <response>} or
// {"error": "..."} line. Request deadlines (TimeoutMS, or the service
// default) are mapped onto the request context, which is also cancelled
// when the client disconnects.
//
// The handler is hardened for unattended serving: panics are contained to
// the crashing request (500, server survives, no slot leaks), request
// bodies are capped at Config.MaxBodyBytes (413 beyond), saturation sheds
// load with 429 + Retry-After instead of parking requests unbounded, and
// a deadline that expires mid-sweep degrades to the incumbents-so-far
// table marked "partial": true rather than a bare 504.
func Handler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.Health(r.Context()))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.WriteMetrics(w)
	})
	mux.HandleFunc("/v1/search", func(w http.ResponseWriter, r *http.Request) {
		var req SearchRequest
		if !s.decodeRequest(w, r, &req) {
			return
		}
		if wantsStream(r) {
			streamSearch(r.Context(), w, s, req)
			return
		}
		resp, err := s.Search(r.Context(), req)
		writeResult(w, resp, err)
	})
	mux.HandleFunc("/v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		var req SimulateRequest
		if !s.decodeRequest(w, r, &req) {
			return
		}
		resp, err := s.Simulate(r.Context(), req)
		writeResult(w, resp, err)
	})
	mux.HandleFunc("/v1/figures", func(w http.ResponseWriter, r *http.Request) {
		var req FigureRequest
		if !s.decodeRequest(w, r, &req) {
			return
		}
		if wantsStream(r) {
			streamFigures(r.Context(), w, s, req)
			return
		}
		resp, err := s.Figures(r.Context(), req)
		writeResult(w, resp, err)
	})
	return recoverMiddleware(injectHandler(s, mux))
}

// recoverMiddleware contains handler panics: the crashing request gets a
// 500 (when its headers are still unsent) and the server — and every other
// in-flight request — survives. Semaphore slots are released by the
// panicking goroutine's own defers on the way up, so a crashing job leaks
// nothing. http.ErrAbortHandler passes through: it is net/http's own
// abort protocol, not a crash.
func recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tw := &trackingWriter{ResponseWriter: w}
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				if !tw.wrote {
					writeError(tw, fmt.Errorf("internal error: %v", rec))
				}
			}
		}()
		next.ServeHTTP(tw, r)
	})
}

// trackingWriter records whether a response has started, so the panic
// handler knows if a 500 can still be delivered.
type trackingWriter struct {
	http.ResponseWriter
	wrote bool
}

func (t *trackingWriter) WriteHeader(code int) {
	t.wrote = true
	t.ResponseWriter.WriteHeader(code)
}

func (t *trackingWriter) Write(b []byte) (int, error) {
	t.wrote = true
	return t.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so NDJSON streaming keeps
// working through the middleware wrap.
func (t *trackingWriter) Flush() {
	if f, ok := t.ResponseWriter.(http.Flusher); ok {
		t.wrote = true
		f.Flush()
	}
}

// injectHandler consults the chaos injector at request admission, before
// the service method runs. An injected Error is a transient 503 with a
// Retry-After hint (what a retrying client must recover from); Panic
// exercises recoverMiddleware; Delay stalls admission.
func injectHandler(s *Service, next http.Handler) http.Handler {
	if s.cfg.Injector == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := s.handlerArrivals.Add(1) - 1
		if f, ok := s.cfg.Injector.At(fault.Handler, int(n)); ok {
			switch f.Kind {
			case fault.Panic:
				panic(fmt.Sprintf("injected handler fault (arrival %d)", n))
			case fault.Delay:
				if fault.SleepCtx(r.Context(), f.Sleep) != nil {
					return
				}
			case fault.Error:
				w.Header().Set("Retry-After", "1")
				writeStatusError(w, http.StatusServiceUnavailable,
					fmt.Errorf("%w: %v", ErrTransient, f.Err))
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// decodeRequest parses a POST body into req, writing the error response
// itself when parsing fails. The body is capped at Config.MaxBodyBytes;
// oversize requests get 413.
func (s *Service) decodeRequest(w http.ResponseWriter, r *http.Request, req any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	body := r.Body
	if s.cfg.MaxBodyBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeStatusError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		writeError(w, badRequestf("decoding request body: %v", err))
		return false
	}
	return true
}

// status maps an execution error onto an HTTP status.
func status(err error) int {
	switch {
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrTransient):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is written into the void.
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeError(w http.ResponseWriter, err error) {
	code := status(err)
	if code == http.StatusTooManyRequests {
		// Load shedding carries the server's backoff hint; clients honor
		// it over their own exponential schedule.
		secs := int64(1)
		if hint := RetryAfterHint(err); hint > 0 {
			secs = int64((hint + time.Second - 1) / time.Second)
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeStatusError(w, code, err)
}

func writeStatusError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeResult(w http.ResponseWriter, resp any, err error) {
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// wantsStream reports whether the search request asked for NDJSON
// progress streaming.
func wantsStream(r *http.Request) bool {
	if r.URL.Query().Get("stream") == "1" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// progressThrottle limits how often progress lines are emitted; the final
// snapshot always flushes so the client sees the 100% state.
const progressThrottle = 100 * time.Millisecond

// ndjsonStream is the single-writer NDJSON throttle every streaming
// endpoint shares. Progress snapshots — produced on job or worker
// goroutines — park behind a mutex; one writer goroutine drains the
// latest at most every progressThrottle, and finish emits the parked
// terminal snapshot before the result line. All writes happen on the
// writer or request goroutine, never on a producer.
type ndjsonStream[T any] struct {
	enc     *json.Encoder
	flusher http.Flusher

	mu     sync.Mutex
	latest T
	dirty  bool

	done       chan struct{}
	writerDone chan struct{}
}

// startNDJSON sets the streaming content type and starts the throttled
// writer goroutine. Callers must end the stream with finish.
func startNDJSON[T any](w http.ResponseWriter) *ndjsonStream[T] {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	st := &ndjsonStream[T]{
		enc:        json.NewEncoder(w),
		flusher:    flusher,
		done:       make(chan struct{}),
		writerDone: make(chan struct{}),
	}
	go st.writer()
	return st
}

func (st *ndjsonStream[T]) emit(line any) {
	st.enc.Encode(line)
	if st.flusher != nil {
		st.flusher.Flush()
	}
}

func (st *ndjsonStream[T]) writer() {
	defer close(st.writerDone)
	ticker := time.NewTicker(progressThrottle)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			st.flush()
		case <-st.done:
			st.flush() // the terminal snapshot, so the client sees 100%
			return
		}
	}
}

func (st *ndjsonStream[T]) flush() {
	st.mu.Lock()
	snap, emitNow := st.latest, st.dirty
	st.dirty = false
	st.mu.Unlock()
	if emitNow {
		st.emit(map[string]T{"progress": snap})
	}
}

// update parks the newest snapshot for the writer; safe to call from any
// goroutine, returns immediately.
func (st *ndjsonStream[T]) update(snap T) {
	st.mu.Lock()
	st.latest, st.dirty = snap, true
	st.mu.Unlock()
}

// finish drains the writer and emits the terminal line: the result on
// success, {"error": ...} on failure.
func (st *ndjsonStream[T]) finish(result any, err error) {
	close(st.done)
	<-st.writerDone
	if err != nil {
		st.emit(map[string]string{"error": err.Error()})
		return
	}
	st.emit(result)
}

// streamSearch runs the search with live NDJSON pruning-counter progress.
func streamSearch(ctx context.Context, w http.ResponseWriter, s *Service, req SearchRequest) {
	st := startNDJSON[search.ProgressSnapshot](w)
	resp, err := s.SearchStream(ctx, req, st.update)
	st.finish(map[string]SearchResponse{"result": resp}, err)
}

// streamFigures runs figure regeneration with live NDJSON artifact-level
// progress, on the same throttle.
func streamFigures(ctx context.Context, w http.ResponseWriter, s *Service, req FigureRequest) {
	st := startNDJSON[FigureProgress](w)
	resp, err := s.FiguresStream(ctx, req, st.update)
	st.finish(map[string]FigureResponse{"result": resp}, err)
}
