package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"bfpp/internal/fault"
)

// ErrOverloaded marks a request shed because the job queue was saturated.
// The HTTP layer maps it to 429 with a Retry-After header; Retryable
// reports it retryable.
var ErrOverloaded = errors.New("service: overloaded")

// ErrTransient marks an injected (or otherwise momentary) execution fault
// that a retry of the identical request is expected to clear. Retryable
// reports it retryable.
var ErrTransient = errors.New("service: transient fault")

// OverloadedError carries the shed decision and the server's backoff hint.
type OverloadedError struct {
	// RetryAfter is the suggested wait before retrying (the HTTP
	// Retry-After header, rounded up to whole seconds on the wire).
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("service: overloaded, retry after %v", e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// Retryable reports whether a request that failed with err may succeed if
// simply retried: load shedding and transient (injected) faults qualify;
// bad requests, deadlines and cancellations do not — retrying cannot
// change those.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrOverloaded) || errors.Is(err, ErrTransient) {
		return true
	}
	var inj fault.InjectedError
	return errors.As(err, &inj)
}

// RetryAfterHint extracts the server's suggested wait from an error chain
// (an OverloadedError), or zero.
func RetryAfterHint(err error) time.Duration {
	var ov *OverloadedError
	if errors.As(err, &ov) {
		return ov.RetryAfter
	}
	return 0
}

// RetryPolicy shapes Do's exponential backoff. The zero value is not
// useful; start from DefaultRetry.
type RetryPolicy struct {
	// MaxAttempts bounds the total tries (the first call counts).
	MaxAttempts int
	// BaseDelay is the wait after the first failure; each further failure
	// multiplies it by Multiplier up to MaxDelay.
	BaseDelay  time.Duration
	Multiplier float64
	MaxDelay   time.Duration
	// Jitter spreads each wait uniformly over [delay*(1-Jitter), delay]:
	// deterministic (seeded) jitter, so a retrying client is reproducible
	// while a fleet of clients with distinct seeds still decorrelates.
	Jitter float64
	// Seed drives the jitter sequence.
	Seed int64
}

// DefaultRetry is the policy the CLI clients use: up to 4 attempts,
// 100ms base, doubling to at most 2s, 30% jitter.
func DefaultRetry(seed int64) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   100 * time.Millisecond,
		Multiplier:  2,
		MaxDelay:    2 * time.Second,
		Jitter:      0.3,
		Seed:        seed,
	}
}

// delay computes the wait before retry number attempt (1-based), honoring
// a server Retry-After hint as a floor.
func (p RetryPolicy) delay(attempt int, hint time.Duration) time.Duration {
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
	}
	if max := float64(p.MaxDelay); p.MaxDelay > 0 && d > max {
		d = max
	}
	if p.Jitter > 0 {
		// splitmix64 over (seed, attempt): deterministic, schedule-free.
		h := uint64(p.Seed)*0x9e3779b97f4a7c15 + uint64(attempt)
		h += 0x9e3779b97f4a7c15
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
		u := float64(h>>11) / float64(1<<53) // [0, 1)
		d *= 1 - p.Jitter*u
	}
	out := time.Duration(d)
	if hint > out {
		out = hint
	}
	return out
}

// Do runs fn with retries under the policy: retryable failures (load
// shedding, transient faults) back off exponentially with deterministic
// jitter — honoring any server Retry-After hint — and try again;
// everything else returns immediately. The context cancels waits.
func Do[T any](ctx context.Context, p RetryPolicy, fn func() (T, error)) (T, error) {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 1
	}
	var out T
	var err error
	for attempt := 1; ; attempt++ {
		out, err = fn()
		if err == nil || !Retryable(err) || attempt >= p.MaxAttempts {
			return out, err
		}
		if serr := fault.SleepCtx(ctx, p.delay(attempt, RetryAfterHint(err))); serr != nil {
			return out, err // the context died mid-backoff; report the last real failure
		}
	}
}
