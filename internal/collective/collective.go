// Package collective implements the communication primitives of
// data-parallel training — ring all-reduce, reduce-scatter, all-gather,
// broadcast and barrier — over Go channels, one goroutine per rank. These
// are the operations the paper's data-parallel modes are built from:
// DP0 uses all-reduce, DP-PS and DP-FS use reduce-scatter and all-gather
// (Section 3.1).
//
// The ring algorithms mirror NCCL: a reduce-scatter of N-1 steps followed
// (for all-reduce) by an all-gather of N-1 steps, with the vector split
// into N chunks. All ranks must call each collective in the same order,
// exactly like a real communicator.
package collective

import (
	"errors"
	"fmt"
	"sync"
)

// ErrAborted is the panic value every rank blocked inside a collective
// receives after Abort poisons the group. Callers running ranks under a
// recover (the runtime's device goroutines) use it to distinguish "my
// peer died" from a fault of their own.
var ErrAborted = errors.New("collective: group aborted")

// Group is a communicator over n ranks. Each rank runs in its own
// goroutine and calls the collective methods with its rank id.
type Group struct {
	n     int
	right []chan []float64 // right[r]: channel from rank r to rank (r+1)%n
	bcast []chan []float64 // per-rank broadcast delivery
	bar   *barrier

	abort     chan struct{}
	abortOnce sync.Once
}

// NewGroup creates a communicator for n ranks.
func NewGroup(n int) *Group {
	if n <= 0 {
		panic(fmt.Sprintf("collective: group size %d", n))
	}
	g := &Group{n: n, bar: newBarrier(n), abort: make(chan struct{})}
	g.right = make([]chan []float64, n)
	g.bcast = make([]chan []float64, n)
	for i := range g.right {
		g.right[i] = make(chan []float64, 1)
		g.bcast[i] = make(chan []float64, 1)
	}
	return g
}

// Abort permanently poisons the group: every rank blocked (or about to
// block) in a collective panics with ErrAborted instead of waiting for a
// peer that will never arrive. A dead rank's supervisor calls it so the
// surviving ranks drain deterministically; the group cannot be reused —
// recovery builds a fresh one.
func (g *Group) Abort() {
	g.abortOnce.Do(func() {
		close(g.abort)
		g.bar.abortAll()
	})
}

// send and recv are the abort-aware channel primitives the ring
// algorithms are built on.
func (g *Group) send(ch chan []float64, buf []float64) {
	select {
	case ch <- buf:
	case <-g.abort:
		panic(ErrAborted)
	}
}

func (g *Group) recv(ch chan []float64) []float64 {
	select {
	case in := <-ch:
		return in
	case <-g.abort:
		panic(ErrAborted)
	}
}

// Size returns the number of ranks.
func (g *Group) Size() int { return g.n }

// chunkBounds splits length l into n contiguous chunks; chunk c is
// [lo, hi).
func chunkBounds(l, n, c int) (lo, hi int) {
	base := l / n
	rem := l % n
	lo = c*base + min(c, rem)
	hi = lo + base
	if c < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ReduceScatter sums data element-wise across ranks; on return, rank r's
// data holds the fully reduced chunk r in place (other chunks hold partial
// sums and must be considered scratch). It returns the rank's owned chunk
// as a sub-slice of data.
func (g *Group) ReduceScatter(rank int, data []float64) []float64 {
	if g.n == 1 {
		return data
	}
	l := len(data)
	for step := 0; step < g.n-1; step++ {
		sendC := ((rank-step-1)%g.n + g.n) % g.n
		recvC := ((rank-step-2)%g.n + g.n) % g.n
		slo, shi := chunkBounds(l, g.n, sendC)
		// Copy out the send chunk so the receiver can't observe our
		// in-place accumulation.
		buf := make([]float64, shi-slo)
		copy(buf, data[slo:shi])
		g.send(g.right[rank], buf)
		in := g.recv(g.right[(rank-1+g.n)%g.n])
		rlo, rhi := chunkBounds(l, g.n, recvC)
		if len(in) != rhi-rlo {
			panic(fmt.Sprintf("collective: rank %d step %d: chunk size %d != %d",
				rank, step, len(in), rhi-rlo))
		}
		for i, v := range in {
			data[rlo+i] += v
		}
	}
	lo, hi := chunkBounds(l, g.n, rank)
	return data[lo:hi]
}

// AllGather distributes each rank's owned chunk (chunk r of data, already
// in place) to every rank; on return data is fully populated and identical
// across ranks.
func (g *Group) AllGather(rank int, data []float64) {
	if g.n == 1 {
		return
	}
	l := len(data)
	for step := 0; step < g.n-1; step++ {
		sendC := ((rank-step)%g.n + g.n) % g.n
		recvC := ((rank-step-1)%g.n + g.n) % g.n
		slo, shi := chunkBounds(l, g.n, sendC)
		buf := make([]float64, shi-slo)
		copy(buf, data[slo:shi])
		g.send(g.right[rank], buf)
		in := g.recv(g.right[(rank-1+g.n)%g.n])
		rlo, rhi := chunkBounds(l, g.n, recvC)
		if len(in) != rhi-rlo {
			panic(fmt.Sprintf("collective: rank %d step %d: chunk size %d != %d",
				rank, step, len(in), rhi-rlo))
		}
		copy(data[rlo:rhi], in)
	}
}

// AllReduce sums data element-wise across all ranks in place
// (reduce-scatter followed by all-gather).
func (g *Group) AllReduce(rank int, data []float64) {
	g.ReduceScatter(rank, data)
	g.AllGather(rank, data)
}

// Broadcast copies root's data to every rank's data in place.
func (g *Group) Broadcast(rank, root int, data []float64) {
	if g.n == 1 {
		return
	}
	if rank == root {
		buf := make([]float64, len(data))
		copy(buf, data)
		for r := 0; r < g.n; r++ {
			if r != root {
				g.send(g.bcast[r], buf)
			}
		}
	} else {
		in := g.recv(g.bcast[rank])
		if len(in) != len(data) {
			panic(fmt.Sprintf("collective: broadcast length %d != %d", len(in), len(data)))
		}
		copy(data, in)
	}
	g.Barrier(rank)
}

// Barrier blocks until all ranks have reached it.
func (g *Group) Barrier(rank int) { g.bar.wait() }

// ShardBounds returns the [lo, hi) range of the vector of length l owned
// by rank r after a ReduceScatter.
func (g *Group) ShardBounds(l, r int) (lo, hi int) { return chunkBounds(l, g.n, r) }

// barrier is a reusable n-party barrier.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	count   int
	phase   int
	aborted bool
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() {
	b.mu.Lock()
	if b.aborted {
		b.mu.Unlock()
		panic(ErrAborted)
	}
	phase := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
	} else {
		for phase == b.phase && !b.aborted {
			b.cond.Wait()
		}
	}
	aborted := b.aborted
	b.mu.Unlock()
	if aborted {
		panic(ErrAborted)
	}
}

// abortAll wakes every waiter; each panics with ErrAborted.
func (b *barrier) abortAll() {
	b.mu.Lock()
	b.aborted = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// Run spawns fn for each rank and waits for completion; a convenience for
// tests and single-step collectives.
func (g *Group) Run(fn func(rank int)) {
	var wg sync.WaitGroup
	for r := 0; r < g.n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fn(rank)
		}(r)
	}
	wg.Wait()
}
