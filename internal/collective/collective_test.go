package collective

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// naiveSum computes the element-wise sum of all ranks' vectors.
func naiveSum(inputs [][]float64) []float64 {
	out := make([]float64, len(inputs[0]))
	for _, in := range inputs {
		for i, v := range in {
			out[i] += v
		}
	}
	return out
}

func randInputs(n, l int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	inputs := make([][]float64, n)
	for r := range inputs {
		inputs[r] = make([]float64, l)
		for i := range inputs[r] {
			inputs[r][i] = rng.NormFloat64()
		}
	}
	return inputs
}

func TestAllReduceMatchesNaive(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		for _, l := range []int{1, 7, 16, 100} {
			if l < n {
				continue
			}
			inputs := randInputs(n, l, int64(n*100+l))
			want := naiveSum(inputs)
			data := make([][]float64, n)
			for r := range data {
				data[r] = append([]float64(nil), inputs[r]...)
			}
			g := NewGroup(n)
			g.Run(func(rank int) { g.AllReduce(rank, data[rank]) })
			for r := 0; r < n; r++ {
				for i := range want {
					if math.Abs(data[r][i]-want[i]) > 1e-9 {
						t.Fatalf("n=%d l=%d rank %d elem %d: %v != %v",
							n, l, r, i, data[r][i], want[i])
					}
				}
			}
		}
	}
}

func TestReduceScatterOwnsCorrectChunk(t *testing.T) {
	n, l := 4, 22 // uneven chunks
	inputs := randInputs(n, l, 5)
	want := naiveSum(inputs)
	data := make([][]float64, n)
	shards := make([][]float64, n)
	for r := range data {
		data[r] = append([]float64(nil), inputs[r]...)
	}
	g := NewGroup(n)
	g.Run(func(rank int) { shards[rank] = g.ReduceScatter(rank, data[rank]) })
	for r := 0; r < n; r++ {
		lo, hi := g.ShardBounds(l, r)
		if len(shards[r]) != hi-lo {
			t.Fatalf("rank %d shard length %d, want %d", r, len(shards[r]), hi-lo)
		}
		for i := lo; i < hi; i++ {
			if math.Abs(shards[r][i-lo]-want[i]) > 1e-9 {
				t.Fatalf("rank %d elem %d: %v != %v", r, i, shards[r][i-lo], want[i])
			}
		}
	}
	// Shard bounds must partition [0, l).
	prev := 0
	for r := 0; r < n; r++ {
		lo, hi := g.ShardBounds(l, r)
		if lo != prev {
			t.Fatalf("shard %d starts at %d, want %d", r, lo, prev)
		}
		prev = hi
	}
	if prev != l {
		t.Fatalf("shards end at %d, want %d", prev, l)
	}
}

func TestAllGatherAfterReduceScatterEqualsAllReduce(t *testing.T) {
	n, l := 3, 10
	inputs := randInputs(n, l, 9)
	want := naiveSum(inputs)
	data := make([][]float64, n)
	for r := range data {
		data[r] = append([]float64(nil), inputs[r]...)
	}
	g := NewGroup(n)
	g.Run(func(rank int) {
		g.ReduceScatter(rank, data[rank])
		g.AllGather(rank, data[rank])
	})
	for r := 0; r < n; r++ {
		for i := range want {
			if math.Abs(data[r][i]-want[i]) > 1e-9 {
				t.Fatalf("rank %d elem %d: %v != %v", r, i, data[r][i], want[i])
			}
		}
	}
}

func TestBroadcast(t *testing.T) {
	n, l := 4, 9
	g := NewGroup(n)
	data := make([][]float64, n)
	for r := range data {
		data[r] = make([]float64, l)
		for i := range data[r] {
			data[r][i] = float64(r*100 + i)
		}
	}
	g.Run(func(rank int) { g.Broadcast(rank, 2, data[rank]) })
	for r := 0; r < n; r++ {
		for i := 0; i < l; i++ {
			if data[r][i] != float64(200+i) {
				t.Fatalf("rank %d elem %d: %v", r, i, data[r][i])
			}
		}
	}
}

func TestBarrierOrdering(t *testing.T) {
	n := 5
	g := NewGroup(n)
	var mu sync.Mutex
	phase1 := 0
	fail := false
	g.Run(func(rank int) {
		mu.Lock()
		phase1++
		mu.Unlock()
		g.Barrier(rank)
		mu.Lock()
		if phase1 != n {
			fail = true
		}
		mu.Unlock()
	})
	if fail {
		t.Error("barrier released before all ranks arrived")
	}
}

// Collectives must be reusable: many sequential operations on one group.
func TestSequentialCollectives(t *testing.T) {
	n, l := 4, 16
	g := NewGroup(n)
	data := make([][]float64, n)
	for r := range data {
		data[r] = make([]float64, l)
	}
	g.Run(func(rank int) {
		for iter := 0; iter < 10; iter++ {
			for i := range data[rank] {
				data[rank][i] = 1
			}
			g.AllReduce(rank, data[rank])
			if data[rank][0] != float64(n) {
				t.Errorf("iter %d rank %d: %v", iter, rank, data[rank][0])
				return
			}
			g.Barrier(rank)
		}
	})
}

// Property: all-reduce result matches the naive sum for arbitrary sizes.
func TestAllReduceProperty(t *testing.T) {
	f := func(nRaw, lRaw uint8, seed int64) bool {
		n := int(nRaw%6) + 1
		l := int(lRaw%40) + n
		inputs := randInputs(n, l, seed)
		want := naiveSum(inputs)
		data := make([][]float64, n)
		for r := range data {
			data[r] = append([]float64(nil), inputs[r]...)
		}
		g := NewGroup(n)
		g.Run(func(rank int) { g.AllReduce(rank, data[rank]) })
		for r := 0; r < n; r++ {
			for i := range want {
				if math.Abs(data[r][i]-want[i]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSingleRankGroupIsNoOp(t *testing.T) {
	g := NewGroup(1)
	data := []float64{1, 2, 3}
	g.Run(func(rank int) {
		g.AllReduce(rank, data)
		g.AllGather(rank, data)
		g.Broadcast(rank, 0, data)
		if shard := g.ReduceScatter(rank, data); len(shard) != 3 {
			t.Errorf("single-rank shard length %d", len(shard))
		}
	})
	for i, w := range []float64{1, 2, 3} {
		if data[i] != w {
			t.Errorf("data mutated: %v", data)
		}
	}
}

func TestNewGroupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero-size group")
		}
	}()
	NewGroup(0)
}
