package model

import (
	"strings"
	"testing"
)

// TestRegistryCoversAllModels asserts every built-in constructor is
// reachable through the registry and that the registered entries build
// valid, correctly-named models.
func TestRegistryCoversAllModels(t *testing.T) {
	builtins := map[string]func() Transformer{
		"52B": Model52B, "6.6B": Model6p6B, "GPT-3": GPT3, "1T": Model1T, "tiny": Tiny,
	}
	names := Names()
	if len(names) < len(builtins) {
		t.Fatalf("registry lists %d models, want >= %d (%v)", len(names), len(builtins), names)
	}
	for name, build := range builtins {
		got, ok := Lookup(name)
		if !ok {
			t.Errorf("built-in model %q is not registered", name)
			continue
		}
		if want := build(); got != want {
			t.Errorf("%q: registry builds %v, constructor builds %v", name, got, want)
		}
		if err := got.Validate(); err != nil {
			t.Errorf("%q: registered model invalid: %v", name, err)
		}
		found := false
		for _, n := range names {
			if n == name {
				found = true
			}
		}
		if !found {
			t.Errorf("Names() = %v is missing %q", names, name)
		}
	}
}

// TestLookupAliasRoundTrip asserts aliases and case variants resolve to
// the same model as the canonical name.
func TestLookupAliasRoundTrip(t *testing.T) {
	cases := map[string]string{
		"6p6b": "6.6B", "6.6b": "6.6B", "gpt3": "GPT-3", "gpt-3": "GPT-3",
		"52b": "52B", "1t": "1T", "TINY": "tiny",
	}
	for alias, canonical := range cases {
		got, ok := Lookup(alias)
		if !ok {
			t.Errorf("alias %q did not resolve", alias)
			continue
		}
		want, ok := Lookup(canonical)
		if !ok {
			t.Fatalf("canonical %q did not resolve", canonical)
		}
		if got != want {
			t.Errorf("alias %q built %v, canonical %q built %v", alias, got, canonical, want)
		}
	}
	if _, ok := Lookup("banana"); ok {
		t.Error("unregistered name resolved")
	}
}

// TestDuplicateRegisterPanics asserts a colliding registration fails
// loudly — on the canonical name and on an alias alike.
func TestDuplicateRegisterPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if r := recover(); r == nil {
				t.Errorf("%s: expected panic", name)
			} else if !strings.Contains(strings.ToLower(r.(string)), "regist") {
				t.Errorf("%s: unexpected panic message %v", name, r)
			}
		}()
		fn()
	}
	mustPanic("duplicate name", func() { Register("52B", Tiny) })
	mustPanic("duplicate via case", func() { Register("52b", Tiny) })
	mustPanic("duplicate alias", func() { Register("fresh-model-x", Tiny, "6p6b") })
	mustPanic("empty name", func() { Register("", Tiny) })
	mustPanic("nil constructor", func() { Register("fresh-model-y", nil) })
}

// TestRegisterExtension registers a throwaway model and asserts it
// resolves by name and alias and appears in Names() — the extension
// recipe in README.md.
func TestRegisterExtension(t *testing.T) {
	build := func() Transformer {
		m := Tiny()
		m.Name = "test-ext"
		return m
	}
	if _, ok := Lookup("test-ext"); !ok { // idempotent under -count>1
		Register("test-ext", build, "text")
	}
	got, ok := Lookup("TEXT")
	if !ok || got.Name != "test-ext" {
		t.Fatalf("extension alias lookup: %v, %v", got, ok)
	}
	names := Names()
	if names[len(names)-1] != "test-ext" {
		t.Errorf("Names() tail = %q, want the freshly registered model", names[len(names)-1])
	}
}
