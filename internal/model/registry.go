package model

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// The model registry opens the scenario axis the CLI used to hard-code:
// any package can publish a named model constructor at init time and every
// consumer (the commands' -model flags, the service requests' "model"
// field) resolves it by name — no switch statements to extend. The design
// mirrors core.RegisterMethod: the table is published copy-on-write behind
// an atomic pointer, so lookups are lock-free while registrations (init
// time only) serialize on a mutex.

// regEntry is one registered model: a canonical display name, extra parse
// aliases and the constructor.
type regEntry struct {
	name    string
	aliases []string
	build   func() Transformer
}

var (
	regTable atomic.Pointer[[]regEntry]
	regMu    sync.Mutex // serializes registrations
)

// Register publishes a named model constructor. The canonical name and the
// aliases are matched case-insensitively by Lookup. Register is meant to
// be called at init time and panics on an empty or duplicate name, a nil
// constructor, or an alias colliding with an already-registered spelling —
// a registration bug should fail loudly at startup, not shadow a model.
func Register(name string, build func() Transformer, aliases ...string) {
	if name == "" {
		panic("model: Register with an empty name")
	}
	if build == nil {
		panic(fmt.Sprintf("model: Register(%q) with a nil constructor", name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	var cur []regEntry
	if p := regTable.Load(); p != nil {
		cur = *p
	}
	for _, spelling := range append([]string{name}, aliases...) {
		if _, ok := lookupIn(cur, spelling); ok {
			panic(fmt.Sprintf("model: %q registered twice", spelling))
		}
	}
	next := make([]regEntry, len(cur), len(cur)+1)
	copy(next, cur)
	next = append(next, regEntry{name: name, aliases: aliases, build: build})
	regTable.Store(&next)
}

// lookupIn resolves a spelling against a table snapshot.
func lookupIn(table []regEntry, name string) (Transformer, bool) {
	want := strings.ToLower(name)
	for _, e := range table {
		if strings.ToLower(e.name) == want {
			return e.build(), true
		}
		for _, a := range e.aliases {
			if strings.ToLower(a) == want {
				return e.build(), true
			}
		}
	}
	return Transformer{}, false
}

// Lookup resolves a registered model from its canonical name or one of its
// aliases (case-insensitive) and constructs it.
func Lookup(name string) (Transformer, bool) {
	var table []regEntry
	if p := regTable.Load(); p != nil {
		table = *p
	}
	return lookupIn(table, name)
}

// Names returns the canonical registered names in registration order —
// what an "unknown model" error should list.
func Names() []string {
	var out []string
	if p := regTable.Load(); p != nil {
		for _, e := range *p {
			out = append(out, e.name)
		}
	}
	return out
}

func init() {
	// The paper's models register like any extension would.
	Register("52B", Model52B)
	Register("6.6B", Model6p6B, "6p6b")
	Register("GPT-3", GPT3, "gpt3")
	Register("1T", Model1T)
	Register("tiny", Tiny)
}
