package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	for _, m := range []Transformer{Model52B(), Model6p6B(), GPT3(), Model1T(), Tiny()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: unexpected validation error: %v", m.Name, err)
		}
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Transformer)
	}{
		{"zero layers", func(m *Transformer) { m.Layers = 0 }},
		{"negative layers", func(m *Transformer) { m.Layers = -1 }},
		{"zero heads", func(m *Transformer) { m.Heads = 0 }},
		{"zero head size", func(m *Transformer) { m.HeadSize = 0 }},
		{"zero hidden", func(m *Transformer) { m.Hidden = 0 }},
		{"zero seq", func(m *Transformer) { m.SeqLen = 0 }},
		{"negative vocab", func(m *Transformer) { m.Vocab = -5 }},
		{"hidden mismatch", func(m *Transformer) { m.Hidden = m.Hidden + 1 }},
		{"zero mlp", func(m *Transformer) { m.MLPHidden = 0 }},
	}
	for _, c := range cases {
		m := Model52B()
		c.mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: expected validation error, got nil", c.name)
		}
	}
}

// The paper's Table 5.1 models should land close to their nominal sizes.
func TestParamCounts(t *testing.T) {
	cases := []struct {
		m       Transformer
		billion float64
		tol     float64 // relative tolerance
	}{
		{Model52B(), 52, 0.03},
		{Model6p6B(), 6.6, 0.03},
		{GPT3(), 175, 0.01},
		{Model1T(), 1000, 0.02},
	}
	for _, c := range cases {
		got := float64(c.m.Params()) / 1e9
		if math.Abs(got-c.billion)/c.billion > c.tol {
			t.Errorf("%s: params = %.2fB, want within %.0f%% of %.1fB",
				c.m.Name, got, c.tol*100, c.billion)
		}
	}
}

// 12*Layers*Hidden^2 is the paper's stated approximation for the layer stack.
func TestLayerParamsMatchesPaperFormula(t *testing.T) {
	for _, m := range []Transformer{Model52B(), Model6p6B(), GPT3()} {
		want := 12 * int64(m.Layers) * int64(m.Hidden) * int64(m.Hidden)
		got := int64(m.Layers) * m.LayerParams()
		if got != want {
			t.Errorf("%s: layer stack params = %d, want %d", m.Name, got, want)
		}
	}
}

func TestFlopPerTokenIsEightFlopPerParam(t *testing.T) {
	// Without the attention and vocab corrections, Eq. (11) reduces to
	// 8 flop per layer-stack parameter per token. Check the dominant term.
	m := Model52B()
	layerOnly := 96 * float64(m.Layers) * float64(m.Hidden) * float64(m.Hidden)
	eightPerParam := 8 * float64(int64(m.Layers)*m.LayerParams())
	if math.Abs(layerOnly-eightPerParam)/eightPerParam > 1e-12 {
		t.Errorf("dominant flop term %.3e != 8*params %.3e", layerOnly, eightPerParam)
	}
	// The full count must exceed the dominant term (attention + vocab).
	if m.FlopPerToken() <= layerOnly {
		t.Errorf("FlopPerToken %.3e should exceed layer-only term %.3e",
			m.FlopPerToken(), layerOnly)
	}
}

func TestForwardBackwardSplit(t *testing.T) {
	m := Model6p6B()
	tokens := 4 * m.SeqLen
	fwd := m.LayerForwardFlop(tokens)
	bwd := m.LayerBackwardFlop(tokens)
	total := m.LayerFlopPerToken() * float64(tokens)
	if math.Abs(fwd+bwd-total)/total > 1e-12 {
		t.Errorf("fwd+bwd = %.3e, want %.3e", fwd+bwd, total)
	}
	if math.Abs(bwd/fwd-3) > 1e-12 {
		t.Errorf("backward/forward ratio = %.3f, want 3 (recompute included)", bwd/fwd)
	}
}

func TestBatchFlopPerGPUScaling(t *testing.T) {
	m := Model52B()
	base := m.BatchFlopPerGPU(1, 8, 8, 8)
	if base <= 0 {
		t.Fatalf("BatchFlopPerGPU must be positive, got %v", base)
	}
	// Doubling micro-batch size or count doubles compute; doubling PP or TP
	// halves per-GPU compute.
	if got := m.BatchFlopPerGPU(2, 8, 8, 8); math.Abs(got/base-2) > 1e-9 {
		t.Errorf("smb doubling: ratio %.4f, want 2", got/base)
	}
	if got := m.BatchFlopPerGPU(1, 16, 8, 8); math.Abs(got/base-2) > 1e-9 {
		t.Errorf("nmb doubling: ratio %.4f, want 2", got/base)
	}
	if got := m.BatchFlopPerGPU(1, 8, 16, 8); math.Abs(got/base-0.5) > 1e-9 {
		t.Errorf("pp doubling: ratio %.4f, want 0.5", got/base)
	}
	if got := m.BatchFlopPerGPU(1, 8, 8, 16); math.Abs(got/base-0.5) > 1e-9 {
		t.Errorf("tp doubling: ratio %.4f, want 0.5", got/base)
	}
}

// Property: flop counts are positive and monotone in every size parameter.
func TestFlopMonotonicityProperty(t *testing.T) {
	f := func(layers, hiddenK, seqK uint8) bool {
		l := int(layers%32) + 1
		h := (int(hiddenK%16) + 1) * 64
		s := (int(seqK%8) + 1) * 128
		m := Transformer{Name: "q", Layers: l, Heads: h / 64, HeadSize: 64,
			Hidden: h, MLPHidden: 4 * h, SeqLen: s, Vocab: 1024}
		if err := m.Validate(); err != nil {
			return false
		}
		if m.FlopPerToken() <= 0 || m.Params() <= 0 {
			return false
		}
		bigger := m
		bigger.Layers++
		return bigger.FlopPerToken() > m.FlopPerToken()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVocabFlopPositive(t *testing.T) {
	m := GPT3()
	if m.VocabFlopPerToken() <= 0 {
		t.Errorf("vocab flop should be positive, got %v", m.VocabFlopPerToken())
	}
	noVocab := m
	noVocab.Vocab = 0
	if noVocab.VocabFlopPerToken() != 0 {
		t.Errorf("zero-vocab model should have zero vocab flop")
	}
}

func TestStringContainsName(t *testing.T) {
	s := Model52B().String()
	if len(s) == 0 {
		t.Fatal("String() empty")
	}
}
