// Package model describes transformer language models at the granularity
// needed for distributed-training analysis: parameter counts, floating-point
// operation counts (paper Eq. 11) and per-layer breakdowns.
//
// The package follows the setup of Appendix A.1 of the paper: a model with
// Layers identical transformer encoder layers of hidden size Hidden, each
// consisting of multi-head attention (Heads heads of size HeadSize, with
// Heads*HeadSize == Hidden) followed by a two-layer MLP with hidden size
// MLPHidden = 4*Hidden. Mixed-precision training with Adam and activation
// checkpointing is assumed throughout.
package model

import (
	"errors"
	"fmt"
)

// Transformer specifies a transformer language model architecture.
type Transformer struct {
	// Name identifies the model in reports (for example "52B").
	Name string
	// Layers is the number of transformer layers (N_layers).
	Layers int
	// Heads is the number of attention heads (N_heads).
	Heads int
	// HeadSize is the per-head dimension (S_head).
	HeadSize int
	// Hidden is the model hidden size (S_hidden). Must equal Heads*HeadSize.
	Hidden int
	// MLPHidden is the MLP intermediate size (S_mlp), conventionally 4*Hidden.
	MLPHidden int
	// SeqLen is the training sequence length (S_seq).
	SeqLen int
	// Vocab is the vocabulary size (S_voc), used for the embedding/output
	// layers' parameter and compute accounting.
	Vocab int
}

// Validate reports whether the architecture is self-consistent.
func (t Transformer) Validate() error {
	switch {
	case t.Layers <= 0:
		return fmt.Errorf("model %s: Layers must be positive, got %d", t.Name, t.Layers)
	case t.Heads <= 0:
		return fmt.Errorf("model %s: Heads must be positive, got %d", t.Name, t.Heads)
	case t.HeadSize <= 0:
		return fmt.Errorf("model %s: HeadSize must be positive, got %d", t.Name, t.HeadSize)
	case t.Hidden <= 0:
		return fmt.Errorf("model %s: Hidden must be positive, got %d", t.Name, t.Hidden)
	case t.SeqLen <= 0:
		return fmt.Errorf("model %s: SeqLen must be positive, got %d", t.Name, t.SeqLen)
	case t.Vocab < 0:
		return fmt.Errorf("model %s: Vocab must be non-negative, got %d", t.Name, t.Vocab)
	}
	if t.Heads*t.HeadSize != t.Hidden {
		return fmt.Errorf("model %s: Heads*HeadSize = %d does not match Hidden = %d",
			t.Name, t.Heads*t.HeadSize, t.Hidden)
	}
	if t.MLPHidden <= 0 {
		return errors.New("model " + t.Name + ": MLPHidden must be positive")
	}
	return nil
}

// LayerParams returns the parameter count of one transformer layer.
//
// Attention contributes 4*Hidden^2 (QKV and output projections) and the MLP
// contributes 2*Hidden*MLPHidden; with the conventional MLPHidden = 4*Hidden
// this totals the paper's 12*Hidden^2 per layer. Biases and layer norms are
// ignored, matching the paper's approximation.
func (t Transformer) LayerParams() int64 {
	h := int64(t.Hidden)
	return 4*h*h + 2*h*int64(t.MLPHidden)
}

// EmbeddingParams returns the parameter count of the (tied) token embedding.
func (t Transformer) EmbeddingParams() int64 {
	return int64(t.Vocab) * int64(t.Hidden)
}

// Params returns the approximate total parameter count,
// N_params ~= 12*Layers*Hidden^2 + Vocab*Hidden.
func (t Transformer) Params() int64 {
	return int64(t.Layers)*t.LayerParams() + t.EmbeddingParams()
}

// FlopPerToken returns the total training floating-point operations per token
// following paper Eq. (11):
//
//	96 * Layers * Hidden * (Hidden + SeqLen/6 + Vocab/(16*Layers))
//
// This counts 8 flop per linear-layer parameter per token: 2 for the forward
// pass, 4 for the backward pass and 2 for recomputing the forward pass under
// activation checkpointing. The SeqLen/6 term accounts for self-attention and
// the Vocab term for the output projection.
func (t Transformer) FlopPerToken() float64 {
	h := float64(t.Hidden)
	return 96 * float64(t.Layers) * h *
		(h + float64(t.SeqLen)/6 + float64(t.Vocab)/(16*float64(t.Layers)))
}

// LayerFlopPerToken returns the training flop per token attributable to a
// single transformer layer (excluding the vocabulary projection):
// 96*Hidden*(Hidden + SeqLen/6).
func (t Transformer) LayerFlopPerToken() float64 {
	h := float64(t.Hidden)
	return 96 * h * (h + float64(t.SeqLen)/6)
}

// VocabFlopPerToken returns the training flop per token attributable to the
// output vocabulary projection, 6*Hidden*Vocab (2 forward + 4 backward; the
// projection output is not checkpointed, so there is no recompute term).
func (t Transformer) VocabFlopPerToken() float64 {
	return 6 * float64(t.Hidden) * float64(t.Vocab)
}

// Phase fractions of the 8 flop/param/token budget: the forward pass costs 2,
// the backward pass 4, and the checkpoint recompute another 2 which executes
// as part of the backward op. The backward op therefore costs 3x the forward.
const (
	// ForwardFraction is the share of total layer flops spent in forward ops.
	ForwardFraction = 2.0 / 8.0
	// BackwardFraction is the share spent in backward ops, including the
	// activation-checkpoint forward recompute that runs inside them.
	BackwardFraction = 6.0 / 8.0
)

// LayerForwardFlop returns the forward-pass flop for one layer processing
// tokens tokens (micro-batch size times sequence length).
func (t Transformer) LayerForwardFlop(tokens int) float64 {
	return ForwardFraction * t.LayerFlopPerToken() * float64(tokens)
}

// LayerBackwardFlop returns the backward-pass flop (including checkpoint
// recompute) for one layer processing tokens tokens.
func (t Transformer) LayerBackwardFlop(tokens int) float64 {
	return BackwardFraction * t.LayerFlopPerToken() * float64(tokens)
}

// BatchFlopPerGPU evaluates paper Eq. (11): the per-GPU compute for one batch
// of nmb sequential micro-batches of size smb, under pp-way pipeline and
// tp-way tensor parallelism.
func (t Transformer) BatchFlopPerGPU(smb, nmb, pp, tp int) float64 {
	tokens := float64(smb) * float64(nmb) * float64(t.SeqLen)
	return tokens * t.FlopPerToken() / float64(pp) / float64(tp)
}

// String returns a one-line description of the model.
func (t Transformer) String() string {
	return fmt.Sprintf("%s(layers=%d heads=%d head=%d hidden=%d seq=%d params=%.1fB)",
		t.Name, t.Layers, t.Heads, t.HeadSize, t.Hidden, t.SeqLen,
		float64(t.Params())/1e9)
}

// Paper models (Table 5.1). Both use a BERT architecture with sequence
// length 1024; the vocabulary follows the Megatron-LM BERT setup (30522
// padded to a multiple of 128 times the tensor-parallel size).
const paperVocab = 30720

// Model52B returns the 52 billion-parameter model of Table 5.1.
func Model52B() Transformer {
	return Transformer{
		Name: "52B", Layers: 64, Heads: 64, HeadSize: 128,
		Hidden: 8192, MLPHidden: 4 * 8192, SeqLen: 1024, Vocab: paperVocab,
	}
}

// Model6p6B returns the 6.6 billion-parameter model of Table 5.1.
func Model6p6B() Transformer {
	return Transformer{
		Name: "6.6B", Layers: 32, Heads: 32, HeadSize: 128,
		Hidden: 4096, MLPHidden: 4 * 4096, SeqLen: 1024, Vocab: paperVocab,
	}
}

// GPT3 returns the GPT-3 example of Appendix A.1 (S_hidden=12288,
// N_heads=N_layers=96, S_seq=2048).
func GPT3() Transformer {
	return Transformer{
		Name: "GPT-3", Layers: 96, Heads: 96, HeadSize: 128,
		Hidden: 12288, MLPHidden: 4 * 12288, SeqLen: 2048, Vocab: 51200,
	}
}

// Model1T returns the trillion-parameter example of Appendix A.1
// (S_hidden=25600, N_heads=160, N_layers=128, S_seq=2048). Note Appendix A
// lists S_hidden=12288 for 1T, which is a typo: 12*128*12288^2 is 232B, not
// a trillion. The Megatron-LM paper's 1T model uses hidden size 25600 with
// 160 heads and 128 layers, which we adopt.
func Model1T() Transformer {
	return Transformer{
		Name: "1T", Layers: 128, Heads: 160, HeadSize: 160,
		Hidden: 25600, MLPHidden: 4 * 25600, SeqLen: 2048, Vocab: 51200,
	}
}

// Tiny returns a small model convenient for tests and traces (16 layers,
// hidden 512), mirroring the 16-layer example of paper Figures 3 and 4.
func Tiny() Transformer {
	return Transformer{
		Name: "tiny", Layers: 16, Heads: 8, HeadSize: 64,
		Hidden: 512, MLPHidden: 4 * 512, SeqLen: 128, Vocab: 8192,
	}
}
