package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestJournalAppendReplayReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweeps.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append("sweep-a", []byte("g0"))
	j.Append("sweep-b", []byte("h0"))
	j.Append("sweep-a", []byte("g1"))
	j.Close()

	j, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	a := j.Entries("sweep-a")
	if len(a) != 2 || string(a[0]) != "g0" || string(a[1]) != "g1" {
		t.Fatalf("sweep-a entries: %q", a)
	}
	if b := j.Entries("sweep-b"); len(b) != 1 || string(b[0]) != "h0" {
		t.Fatalf("sweep-b entries: %q", b)
	}
	if got := j.Sweeps(); len(got) != 2 || got[0] != "sweep-a" || got[1] != "sweep-b" {
		t.Fatalf("sweeps: %v", got)
	}
	if st := j.Stats(); st.Records != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestJournalTornTail pins the crash contract: a SIGKILL mid-append loses
// at most the torn record; every acknowledged checkpoint replays.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweeps.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 5; i++ {
		p := bytes.Repeat([]byte{byte('a' + i)}, 20)
		j.Append("sweep", p)
		want = append(want, p)
	}
	j.Close()
	blob, _ := os.ReadFile(path)

	for cut := 1; cut < 40; cut += 7 { // torn tails of varying length
		os.WriteFile(path, blob[:len(blob)-cut], 0o644)
		j, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		got := j.Entries("sweep")
		if len(got) >= len(want) {
			t.Fatalf("cut %d: torn tail not dropped (%d entries)", cut, len(got))
		}
		for i, e := range got {
			if !bytes.Equal(e, want[i]) {
				t.Fatalf("cut %d: entry %d corrupt", cut, i)
			}
		}
		if st := j.Stats(); st.CorruptionsRecovered != 1 {
			t.Fatalf("cut %d: recovery not counted: %+v", cut, st)
		}
		// The journal stays appendable after repair.
		if err := j.Append("sweep", []byte("resumed")); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		j.Close()
	}
}

func TestJournalSharedFramingWithStore(t *testing.T) {
	// The journal and the KV store share one framing: a journal file scans
	// with the same reader the store uses, which is what makes the
	// corruption property test above cover both.
	path := filepath.Join(t.TempDir(), "x.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		j.Append("k", []byte(fmt.Sprintf("payload-%d", i)))
	}
	j.Close()
	f, _ := os.Open(path)
	defer f.Close()
	scan := scanFrames(f)
	if scan.damage != nil || len(scan.records) != 3 {
		t.Fatalf("journal file does not scan as store frames: %d records, %v",
			len(scan.records), scan.damage)
	}
}
