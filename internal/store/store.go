package store

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"bfpp/internal/fault"
)

// KV is the pluggable durable result store: a content-addressed map from
// canonicalized request keys to response bytes. Implementations must be
// safe for concurrent use. The service layer treats a nil KV as "no
// durability" and degrades bit-for-bit to its in-memory cache.
type KV interface {
	// Get returns the latest value put under key, exactly as written.
	Get(key string) ([]byte, bool, error)
	// Put durably records key -> value. An error leaves previously
	// committed records intact (the store degrades, it does not corrupt).
	Put(key string, value []byte) error
	// Stats reports the store's operation counters.
	Stats() Stats
	// Close releases the underlying file. The store is unusable after.
	Close() error
}

// Stats are a store's observability counters, consumed by /metrics and
// /healthz.
type Stats struct {
	// Records is the number of live keys.
	Records int64 `json:"records"`
	// Reads and Writes count Get and Put calls since open.
	Reads  int64 `json:"reads"`
	Writes int64 `json:"writes"`
	// WriteErrors counts failed Puts (injected faults, full disks). The
	// store stays serviceable for reads; the caller keeps a degraded flag.
	WriteErrors int64 `json:"write_errors"`
	// CorruptionsRecovered counts damaged tails self-truncated at open:
	// crash windows detected and healed instead of served.
	CorruptionsRecovered int64 `json:"corruptions_recovered"`
}

// Options tune a File store or a Journal.
type Options struct {
	// Repair selects self-truncation of a damaged tail at open (the server
	// default). When false, open is strict: damage surfaces as ErrCorrupt
	// and nothing is modified.
	Repair bool
	// NoSync skips the per-record fsync. Appends then ride the OS page
	// cache: faster, but a host crash (not a process crash) can tear the
	// tail — which the CRC framing detects at next open. Process crashes
	// (SIGKILL) never lose synced records either way.
	NoSync bool
	// Injector is the chaos layer's hook into the durability path,
	// consulted at the StoreWrite and StoreSync points with the write
	// sequence number. nil costs one pointer compare per Put.
	Injector fault.Injector
}

// File is the append-only file-backed KV store. All records live in one
// log file; the latest record for a key wins (an overwrite appends, never
// rewrites). The whole keyspace is kept resident — values are cached
// search responses, a few KiB each — so Get is a map lookup and the file
// is only read at open.
type File struct {
	opts Options

	mu     sync.Mutex
	f      *os.File
	data   map[string][]byte
	buf    []byte // reusable append frame buffer
	writes atomic.Int64
	reads  atomic.Int64
	werrs  atomic.Int64
	recov  atomic.Int64
	closed bool
}

// Open opens (creating if absent) the store at path in repair mode: a
// damaged tail — the torn write of a crash — is detected by the CRC
// framing and truncated back to the last intact record, and the recovery
// is counted in Stats. Use OpenOptions for strict mode.
func Open(path string) (*File, error) {
	return OpenOptions(path, Options{Repair: true})
}

// OpenOptions opens the store with explicit options. In strict mode
// (Repair false) a damaged file surfaces as ErrCorrupt and is left
// untouched.
func OpenOptions(path string, opts Options) (*File, error) {
	f, scan, err := openLog(path, opts.Repair)
	if err != nil {
		return nil, err
	}
	st := &File{opts: opts, f: f, data: make(map[string][]byte, len(scan.records))}
	for _, r := range scan.records {
		st.data[string(r.key)] = r.val
	}
	if scan.damage != nil {
		st.recov.Add(1)
	}
	return st, nil
}

// Get implements KV.
func (s *File) Get(key string) ([]byte, bool, error) {
	s.reads.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, fmt.Errorf("store: closed")
	}
	v, ok := s.data[key]
	return v, ok, nil
}

// Put implements KV: it appends a framed record and (unless NoSync)
// fsyncs it before updating the in-memory view, so a key is never served
// from memory ahead of its durability. A failed append reports an error
// and leaves the previous value (and every other record) intact.
func (s *File) Put(key string, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	seq := int(s.writes.Add(1) - 1)
	buf, err := appendRecord(s.f, s.opts, s.buf, seq, []byte(key), value)
	s.buf = buf
	if err != nil {
		s.werrs.Add(1)
		return err
	}
	s.data[key] = append([]byte(nil), value...)
	return nil
}

// appendRecord writes one frame at f's current tail, consulting the chaos
// injector at the StoreWrite and StoreSync points. On any failure the file
// is truncated back to the pre-append tail so a half-written frame never
// survives into the committed region (the crash-window tail a *later*
// crash leaves is healed at next open instead). It returns the (possibly
// grown) frame buffer for reuse.
func appendRecord(f *os.File, opts Options, buf []byte, seq int, key, value []byte) ([]byte, error) {
	if inj := opts.Injector; inj != nil {
		if fa, ok := inj.At(fault.StoreWrite, seq); ok {
			switch fa.Kind {
			case fault.Error:
				return buf, fmt.Errorf("store: write %d: %w", seq, fa.Err)
			case fault.Delay:
				time.Sleep(fa.Sleep)
			case fault.Panic:
				panic(fmt.Sprintf("injected store write fault (seq %d)", seq))
			}
		}
	}
	tail, err := f.Seek(0, io.SeekCurrent)
	if err != nil {
		return buf, fmt.Errorf("store: %w", err)
	}
	rollback := func() {
		if f.Truncate(tail) == nil {
			f.Seek(tail, io.SeekStart)
		}
	}
	buf = appendFrame(buf[:0], key, value)
	if _, err := f.Write(buf); err != nil {
		rollback()
		return buf, fmt.Errorf("store: append: %w", err)
	}
	if inj := opts.Injector; inj != nil {
		if fa, ok := inj.At(fault.StoreSync, seq); ok {
			switch fa.Kind {
			case fault.Error:
				rollback()
				return buf, fmt.Errorf("store: sync %d: %w", seq, fa.Err)
			case fault.Delay:
				time.Sleep(fa.Sleep)
			case fault.Panic:
				panic(fmt.Sprintf("injected store sync fault (seq %d)", seq))
			}
		}
	}
	if !opts.NoSync {
		if err := f.Sync(); err != nil {
			rollback()
			return buf, fmt.Errorf("store: sync: %w", err)
		}
	}
	return buf, nil
}

// Stats implements KV.
func (s *File) Stats() Stats {
	s.mu.Lock()
	records := int64(len(s.data))
	s.mu.Unlock()
	return Stats{
		Records:              records,
		Reads:                s.reads.Load(),
		Writes:               s.writes.Load(),
		WriteErrors:          s.werrs.Load(),
		CorruptionsRecovered: s.recov.Load(),
	}
}

// Close implements KV.
func (s *File) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.f.Close()
}
