// Package store is the durability layer behind bfpp-serve: a
// content-addressed, checksummed, append-only file-backed result store
// (File, behind the pluggable KV interface) and a sweep-checkpoint journal
// (Journal) built on the same record framing.
//
// # Crash safety
//
// Both files share one on-disk format: a sequence of length+CRC framed
// records. Every record carries its key and value lengths and a CRC32 over
// the payload, so a torn write — the half-record a crash or full disk
// leaves at the tail — is detected when the file is next opened. Opening
// in repair mode (what the server does) self-truncates the file to the
// last valid record and counts the recovery; strict mode reports the
// damage as a typed ErrCorrupt instead. In neither mode can a damaged
// record be served: a record either round-trips byte-for-byte (the CRC
// proves it) or is dropped.
//
// # Determinism
//
// The store never changes results, only where they come from: a KV hit
// returns exactly the bytes that were put, and the journal replays exactly
// the checkpoint payloads that were appended. The fault points (StoreWrite,
// StoreSync) make the failure modes deterministic drills: an injected
// write error degrades the store (the caller keeps serving from memory),
// never the response bytes.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ErrCorrupt marks a framing-level integrity failure: a torn or bit-flipped
// record detected by the length/CRC frame. Opens in repair mode translate
// it into a self-truncation; strict opens surface it.
var ErrCorrupt = errors.New("store: corrupt record")

// corruptf wraps a framing failure in ErrCorrupt with position context.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// frameHeaderSize is the fixed record prefix: key length, value length and
// the CRC32 (Castagnoli) of key||value, all little-endian uint32.
const frameHeaderSize = 12

// maxFrameLen bounds a single record (key plus value). A length field
// beyond it is treated as corruption rather than an allocation request:
// a bit flip in a length word must not ask the reader for gigabytes.
const maxFrameLen = 64 << 20

// crcTable is the Castagnoli polynomial, the conventional choice for
// storage checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// record is one decoded frame.
type record struct {
	key []byte
	val []byte
}

// appendFrame encodes one record onto buf and returns the extended slice.
func appendFrame(buf, key, val []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(val)))
	crc := crc32.Update(0, crcTable, key)
	crc = crc32.Update(crc, crcTable, val)
	binary.LittleEndian.PutUint32(hdr[8:], crc)
	buf = append(buf, hdr[:]...)
	buf = append(buf, key...)
	buf = append(buf, val...)
	return buf
}

// scanResult is what scanFrames learned about a file.
type scanResult struct {
	records []record
	// valid is the byte offset just past the last intact record: the
	// truncation point when the tail is damaged.
	valid int64
	// damage is nil when the file ends exactly on a record boundary,
	// otherwise the ErrCorrupt-wrapped description of the torn tail.
	damage error
}

// scanFrames reads records from r until EOF or the first damaged frame.
// It never returns a record whose CRC does not match: every returned
// record round-trips byte-for-byte. Damage is reported, not returned as
// an error, so callers choose between repair (truncate to valid) and
// strict (surface damage) semantics.
func scanFrames(r io.Reader) scanResult {
	var out scanResult
	br := newByteCounter(r)
	var hdr [frameHeaderSize]byte
	for {
		_, err := io.ReadFull(br, hdr[:])
		if err == io.EOF {
			return out // clean end on a record boundary
		}
		if err != nil { // io.ErrUnexpectedEOF: a torn header
			out.damage = corruptf("torn header at offset %d", out.valid)
			return out
		}
		keyLen := binary.LittleEndian.Uint32(hdr[0:])
		valLen := binary.LittleEndian.Uint32(hdr[4:])
		wantCRC := binary.LittleEndian.Uint32(hdr[8:])
		if uint64(keyLen)+uint64(valLen) > maxFrameLen {
			out.damage = corruptf("implausible record length %d+%d at offset %d", keyLen, valLen, out.valid)
			return out
		}
		payload := make([]byte, keyLen+valLen)
		if _, err := io.ReadFull(br, payload); err != nil {
			out.damage = corruptf("torn record body at offset %d", out.valid)
			return out
		}
		if crc32.Checksum(payload, crcTable) != wantCRC {
			out.damage = corruptf("checksum mismatch at offset %d", out.valid)
			return out
		}
		out.records = append(out.records, record{key: payload[:keyLen:keyLen], val: payload[keyLen:]})
		out.valid = br.n
	}
}

// byteCounter counts bytes as they are read, so the scanner knows the
// offset of the last intact record boundary.
type byteCounter struct {
	r io.Reader
	n int64
}

func newByteCounter(r io.Reader) *byteCounter { return &byteCounter{r: r} }

func (b *byteCounter) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	b.n += int64(n)
	return n, err
}

// openLog opens (creating if absent) the framed log at path, scans its
// records, and — in repair mode — truncates a damaged tail back to the
// last intact record. In strict mode damage closes the file and surfaces
// as ErrCorrupt. The returned file is positioned for appending.
func openLog(path string, repair bool) (*os.File, scanResult, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, scanResult{}, fmt.Errorf("store: %w", err)
	}
	scan := scanFrames(f)
	if scan.damage != nil {
		if !repair {
			f.Close()
			return nil, scan, fmt.Errorf("%s: %w", path, scan.damage)
		}
		if err := f.Truncate(scan.valid); err != nil {
			f.Close()
			return nil, scan, fmt.Errorf("store: truncating damaged tail: %w", err)
		}
	}
	if _, err := f.Seek(scan.valid, io.SeekStart); err != nil {
		f.Close()
		return nil, scan, fmt.Errorf("store: %w", err)
	}
	return f, scan, nil
}
