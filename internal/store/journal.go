package store

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// Journal is the sweep-checkpoint log: an append-only sequence of
// (sweep key, payload) records in the same CRC-framed format as the KV
// store. Unlike the store, every append is kept — a sweep accumulates one
// record per resolved (family, batch) group — and Entries replays them in
// append order, so a restarted server can rebuild exactly the incumbents
// a killed sweep had already resolved and re-price only the rest.
//
// A record is synced before Append returns (unless NoSync), so a SIGKILL
// loses at most the group being resolved at that instant — never a group
// whose checkpoint was acknowledged.
type Journal struct {
	opts Options

	mu      sync.Mutex
	f       *os.File
	entries map[string][][]byte
	keys    []string // sweep keys in first-seen order (deterministic Sweeps)
	buf     []byte
	appends atomic.Int64
	werrs   atomic.Int64
	recov   atomic.Int64
	closed  bool
}

// OpenJournal opens (creating if absent) the journal at path in repair
// mode, replaying its records and self-truncating a damaged tail.
func OpenJournal(path string) (*Journal, error) {
	return OpenJournalOptions(path, Options{Repair: true})
}

// OpenJournalOptions opens the journal with explicit options; strict mode
// (Repair false) surfaces damage as ErrCorrupt.
func OpenJournalOptions(path string, opts Options) (*Journal, error) {
	f, scan, err := openLog(path, opts.Repair)
	if err != nil {
		return nil, err
	}
	j := &Journal{opts: opts, f: f, entries: make(map[string][][]byte)}
	for _, r := range scan.records {
		key := string(r.key)
		if _, seen := j.entries[key]; !seen {
			j.keys = append(j.keys, key)
		}
		j.entries[key] = append(j.entries[key], r.val)
	}
	if scan.damage != nil {
		j.recov.Add(1)
	}
	return j, nil
}

// Append durably records one checkpoint payload under the sweep key.
// Failures (injected store faults, full disks) leave previously committed
// records intact and the in-memory view unchanged.
func (j *Journal) Append(sweep string, payload []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("store: journal closed")
	}
	seq := int(j.appends.Add(1) - 1)
	buf, err := appendRecord(j.f, j.opts, j.buf, seq, []byte(sweep), payload)
	j.buf = buf
	if err != nil {
		j.werrs.Add(1)
		return err
	}
	if _, seen := j.entries[sweep]; !seen {
		j.keys = append(j.keys, sweep)
	}
	j.entries[sweep] = append(j.entries[sweep], append([]byte(nil), payload...))
	return nil
}

// Entries returns the payloads appended under the sweep key, in append
// order. The returned slices are the journal's own copies; callers must
// not modify them.
func (j *Journal) Entries(sweep string) [][]byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.entries[sweep]
}

// Sweeps returns the journaled sweep keys in first-append order.
func (j *Journal) Sweeps() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]string(nil), j.keys...)
}

// Stats reports the journal's counters; Records counts total entries
// across sweeps.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	var n int64
	for _, e := range j.entries {
		//lint:allow detmap int64 entry-count sum is commutative; iteration order cannot change the total
		n += int64(len(e))
	}
	j.mu.Unlock()
	return Stats{
		Records:              n,
		Writes:               j.appends.Load(),
		WriteErrors:          j.werrs.Load(),
		CorruptionsRecovered: j.recov.Load(),
	}
}

// Close releases the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}
