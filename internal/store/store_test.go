package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"bfpp/internal/fault"
)

// fill writes n deterministic records and returns the expected map.
func fill(t *testing.T, path string, n int) map[string][]byte {
	t.Helper()
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := map[string][]byte{}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%03d", i)
		v := bytes.Repeat([]byte{byte(i + 1)}, 10+i*7)
		if err := s.Put(k, v); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		want[k] = v
	}
	return want
}

func TestFileRoundTripAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.kv")
	want := fill(t, path, 8)

	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for k, v := range want {
		got, ok, err := s.Get(k)
		if err != nil || !ok {
			t.Fatalf("get %q: ok=%v err=%v", k, ok, err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("get %q: value mismatch", k)
		}
	}
	if _, ok, _ := s.Get("absent"); ok {
		t.Fatal("phantom key")
	}
	st := s.Stats()
	if st.Records != 8 || st.CorruptionsRecovered != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestFileOverwriteLatestWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.kv")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("k", []byte("old"))
	s.Put("k", []byte("new"))
	s.Close()

	s, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	v, ok, _ := s.Get("k")
	if !ok || string(v) != "new" {
		t.Fatalf("got %q ok=%v, want \"new\"", v, ok)
	}
	if st := s.Stats(); st.Records != 1 {
		t.Fatalf("records = %d, want 1 (latest wins)", st.Records)
	}
}

// TestCorruptionAtEveryOffset is the crash-window property test: for every
// possible truncation length and every single-byte bit flip of the store
// file, opening must either round-trip all records committed before the
// damage or report ErrCorrupt (strict mode) — it must NEVER serve a wrong
// value. Repair mode must additionally always succeed, self-truncating.
func TestCorruptionAtEveryOffset(t *testing.T) {
	dir := t.TempDir()
	master := filepath.Join(dir, "master.kv")
	const n = 6
	want := fill(t, master, n)
	blob, err := os.ReadFile(master)
	if err != nil {
		t.Fatal(err)
	}

	// recordEnds[i] is the file offset just past record i; a store opened
	// from a prefix >= recordEnds[i] must serve records 0..i intact.
	recordEnds := make([]int64, 0, n)
	{
		scan := scanFrames(bytes.NewReader(blob))
		if len(scan.records) != n || scan.damage != nil {
			t.Fatalf("master file does not scan clean: %d records, damage %v", len(scan.records), scan.damage)
		}
		off := int64(0)
		for _, r := range scan.records {
			off += frameHeaderSize + int64(len(r.key)) + int64(len(r.val))
			recordEnds = append(recordEnds, off)
		}
	}
	intactBefore := func(limit int64) int {
		k := 0
		for k < n && recordEnds[k] <= limit {
			k++
		}
		return k
	}
	// verify asserts the no-wrong-value property for a store expected to
	// hold at least the first k records intact and nothing misattributed.
	verify := func(t *testing.T, s *File, k int) {
		t.Helper()
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("key-%03d", i)
			got, ok, err := s.Get(key)
			if err != nil {
				t.Fatalf("get %q: %v", key, err)
			}
			if i < k {
				if !ok || !bytes.Equal(got, want[key]) {
					t.Fatalf("record %d before the damage did not round-trip", i)
				}
			} else if ok && !bytes.Equal(got, want[key]) {
				// A record at or past the damage may be lost, never wrong.
				t.Fatalf("record %d served a wrong value", i)
			}
		}
	}

	t.Run("Truncate", func(t *testing.T) {
		for cut := int64(0); cut < int64(len(blob)); cut++ {
			path := filepath.Join(dir, "trunc.kv")
			if err := os.WriteFile(path, blob[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			// Strict: either clean or a typed ErrCorrupt.
			if s, err := OpenOptions(path, Options{}); err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("cut %d: strict open: %v is not ErrCorrupt", cut, err)
				}
			} else {
				// Strict open succeeding means the cut fell exactly on a
				// record boundary: a clean (shorter) file, not corruption.
				intact := intactBefore(cut)
				if !(cut == 0 || (intact > 0 && cut == recordEnds[intact-1])) {
					t.Fatalf("cut %d: strict open accepted a torn tail", cut)
				}
				s.Close()
			}
			// Repair: must open, and must serve every record before the cut.
			s, err := Open(path)
			if err != nil {
				t.Fatalf("cut %d: repair open: %v", cut, err)
			}
			verify(t, s, intactBefore(cut))
			s.Close()
		}
	})

	t.Run("BitFlip", func(t *testing.T) {
		for off := 0; off < len(blob); off++ {
			mut := append([]byte(nil), blob...)
			mut[off] ^= 0x40
			path := filepath.Join(dir, "flip.kv")
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			// The flipped byte can only damage the record containing it
			// (and, via the scan stopping there, lose later ones — lost is
			// fine, wrong is not).
			k := intactBefore(int64(off))
			if s, err := OpenOptions(path, Options{}); err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("flip %d: strict open: %v is not ErrCorrupt", off, err)
				}
			} else {
				// CRC32 caught nothing? A flip the checksum cannot see would
				// be a test-data collision; with this data it cannot happen.
				verify(t, s, 0)
				s.Close()
			}
			s, err := Open(path)
			if err != nil {
				t.Fatalf("flip %d: repair open: %v", off, err)
			}
			verify(t, s, k)
			if k < n {
				if st := s.Stats(); st.CorruptionsRecovered != 1 {
					t.Fatalf("flip %d: recovery not counted: %+v", off, st)
				}
			}
			s.Close()
		}
	})
}

// TestRepairThenAppend pins that a self-truncated store keeps working: the
// healed tail is a valid append point.
func TestRepairThenAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.kv")
	fill(t, path, 4)
	blob, _ := os.ReadFile(path)
	os.WriteFile(path, blob[:len(blob)-3], 0o644) // torn tail

	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.CorruptionsRecovered != 1 || st.Records != 3 {
		t.Fatalf("after repair: %+v", st)
	}
	if err := s.Put("key-003", []byte("rewritten")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s, err = OpenOptions(path, Options{})
	if err != nil {
		t.Fatalf("strict reopen after repair+append: %v", err)
	}
	defer s.Close()
	v, ok, _ := s.Get("key-003")
	if !ok || string(v) != "rewritten" {
		t.Fatalf("appended record lost: %q ok=%v", v, ok)
	}
}

// TestStoreFaultInjection drills the StoreWrite/StoreSync points: an
// injected write error fails the Put, leaves previous records intact, and
// the store recovers on the next (non-faulted) write.
func TestStoreFaultInjection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.kv")
	inj := fault.NewScript(
		fault.Rule{Point: fault.StoreWrite, Coords: []int{1}, Fault: fault.Fault{Kind: fault.Error, Err: fmt.Errorf("disk full")}},
		fault.Rule{Point: fault.StoreSync, Coords: []int{2}, Fault: fault.Fault{Kind: fault.Error, Err: fmt.Errorf("sync lost")}},
	)
	s, err := OpenOptions(path, Options{Repair: true, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte("2")); err == nil {
		t.Fatal("injected write fault did not surface")
	}
	if err := s.Put("c", []byte("3")); err == nil {
		t.Fatal("injected sync fault did not surface")
	}
	if _, ok, _ := s.Get("b"); ok {
		t.Fatal("failed write is visible")
	}
	if _, ok, _ := s.Get("c"); ok {
		t.Fatal("failed sync is visible")
	}
	if err := s.Put("d", []byte("4")); err != nil {
		t.Fatalf("store did not recover after faults: %v", err)
	}
	st := s.Stats()
	if st.WriteErrors != 2 || st.Records != 2 {
		t.Fatalf("stats after faults: %+v", st)
	}
	s.Close()

	// The on-disk file must be strictly clean: failed appends rolled back.
	s2, err := OpenOptions(path, Options{})
	if err != nil {
		t.Fatalf("strict reopen after faulted writes: %v", err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Records != 2 {
		t.Fatalf("reopened records = %d, want 2", st.Records)
	}
}
