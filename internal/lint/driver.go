package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Result is one lint run's outcome: the surviving findings (pragma-
// filtered, deterministically ordered) and the per-analyzer finding count,
// which includes zeros so a green run documents exactly which invariants
// were checked.
type Result struct {
	Diagnostics []Diagnostic
	// Counts maps analyzer name -> surviving findings (0 when clean).
	Counts map[string]int
}

// Run loads the packages matching the patterns (relative to dir) and
// applies every analyzer, honoring //lint:allow pragmas.
func Run(dir string, analyzers []*Analyzer, patterns ...string) (Result, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return Result{}, err
	}
	return RunPackages(analyzers, pkgs), nil
}

// RunPackages applies the analyzers to already-loaded packages.
func RunPackages(analyzers []*Analyzer, pkgs []*Package) Result {
	res := Result{Counts: map[string]int{}}
	for _, a := range analyzers {
		res.Counts[a.Name] = 0
	}
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				diags = append(diags, Diagnostic{
					Analyzer: a.Name,
					Pos:      token.Position{Filename: pkg.Path},
					Message:  fmt.Sprintf("analyzer failed: %v", err),
				})
			}
		}
		allows, bad := collectPragmas(pkg, analyzers)
		diags = append(diags, bad...)
		for _, d := range diags {
			if allows.suppresses(d) {
				continue
			}
			res.Diagnostics = append(res.Diagnostics, d)
			res.Counts[d.Analyzer]++
		}
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return res
}

// AnalyzerNames returns the analyzers' names in declaration order.
func AnalyzerNames(analyzers []*Analyzer) []string {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	return names
}

// pragmaPrefix introduces a suppression comment:
//
//	//lint:allow <analyzer> <reason>
const pragmaPrefix = "//lint:allow"

// allowSet indexes the valid pragmas of one package by (file, line,
// analyzer).
type allowSet map[string]map[int]map[string]bool

// suppresses reports whether a pragma covers the diagnostic: pragmas apply
// to their own line and to the line immediately below (the own-line
// comment form).
func (s allowSet) suppresses(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	return lines[d.Pos.Line][d.Analyzer] || lines[d.Pos.Line-1][d.Analyzer]
}

// collectPragmas scans a package's comments for //lint:allow pragmas. A
// well-formed pragma names a known analyzer and carries a non-empty
// reason; malformed ones come back as diagnostics so a typoed or
// reasonless suppression fails the build instead of silently allowing
// everything (or nothing).
func collectPragmas(pkg *Package, analyzers []*Analyzer) (allowSet, []Diagnostic) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	allows := allowSet{}
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, pragmaPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, pragmaPrefix)
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0 || !known[fields[0]]:
					bad = append(bad, Diagnostic{
						Analyzer: "pragma",
						Pos:      pos,
						Message:  fmt.Sprintf("malformed %s: first word must name an analyzer (%s)", pragmaPrefix, strings.Join(sortedKeys(known), ", ")),
					})
				case len(fields) < 2:
					bad = append(bad, Diagnostic{
						Analyzer: "pragma",
						Pos:      pos,
						Message:  fmt.Sprintf("%s %s needs a reason", pragmaPrefix, fields[0]),
					})
				default:
					byLine := allows[pos.Filename]
					if byLine == nil {
						byLine = map[int]map[string]bool{}
						allows[pos.Filename] = byLine
					}
					byAnalyzer := byLine[pos.Line]
					if byAnalyzer == nil {
						byAnalyzer = map[string]bool{}
						byLine[pos.Line] = byAnalyzer
					}
					byAnalyzer[fields[0]] = true
				}
			}
		}
	}
	return allows, bad
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// forEachFuncDecl visits every function declaration with a body.
func forEachFuncDecl(files []*ast.File, fn func(*ast.FuncDecl)) {
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
