package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// fixtureDirs lists every fixture package explicitly: go list's `...`
// wildcard skips testdata, which is exactly why the deliberately violating
// packages live there.
var fixtureDirs = []string{
	"./testdata/src/ctxfirst/cmd/tool",
	"./testdata/src/ctxfirst/service",
	"./testdata/src/detmap/cost",
	"./testdata/src/detmap/search",
	"./testdata/src/detmap/webui",
	"./testdata/src/detsource/engine",
	"./testdata/src/detsource/scripts/gen",
	"./testdata/src/globalstate/engine",
	"./testdata/src/pragma/engine",
	"./testdata/src/registrylint/engine",
	"./testdata/src/registrylint/schedule",
}

var (
	fixtureOnce sync.Once
	fixturePkgs []*Package
	fixtureErr  error
)

// loadFixtures loads every fixture package in one go list batch.
func loadFixtures(t *testing.T) []*Package {
	t.Helper()
	fixtureOnce.Do(func() {
		fixturePkgs, fixtureErr = Load(".", fixtureDirs...)
	})
	if fixtureErr != nil {
		t.Fatalf("loading fixtures: %v", fixtureErr)
	}
	return fixturePkgs
}

// fixturesUnder returns the loaded fixture packages below testdata/src/<group>.
func fixturesUnder(t *testing.T, group string) []*Package {
	t.Helper()
	var out []*Package
	for _, p := range loadFixtures(t) {
		if strings.Contains(p.Path, "/testdata/src/"+group+"/") {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		t.Fatalf("no fixture packages under %q", group)
	}
	return out
}

// want is one expectation parsed from a fixture comment:
//
//	// want <analyzer> "regexp"
type want struct {
	file     string
	line     int
	analyzer string
	re       *regexp.Regexp
	matched  bool
}

var wantRe = regexp.MustCompile(`// want (\w+) "([^"]*)"`)

// parseWants scans the fixture sources of pkgs for want annotations.
func parseWants(t *testing.T, pkgs []*Package, analyzer string) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			src, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			sc := bufio.NewScanner(strings.NewReader(string(src)))
			for line := 1; sc.Scan(); line++ {
				for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
					if m[1] != analyzer {
						continue
					}
					wants = append(wants, &want{
						file: name, line: line, analyzer: m[1],
						re: regexp.MustCompile(m[2]),
					})
				}
			}
		}
	}
	return wants
}

// checkFixture runs one analyzer over its fixture group and requires an
// exact match between findings and want annotations.
func checkFixture(t *testing.T, a *Analyzer) {
	t.Helper()
	pkgs := fixturesUnder(t, a.Name)
	res := RunPackages([]*Analyzer{a}, pkgs)
	wants := parseWants(t, pkgs, a.Name)
	if len(wants) == 0 {
		t.Fatalf("fixture group %q declares no wants", a.Name)
	}
	for _, d := range res.Diagnostics {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line &&
				w.analyzer == d.Analyzer && w.re.MatchString(d.Message) {
				w.matched, found = true, true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding %s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing finding %s:%d: %s matching %q", w.file, w.line, w.analyzer, w.re)
		}
	}
}

func TestDetmapFixture(t *testing.T)      { checkFixture(t, AnalyzerDetmap) }
func TestDetsourceFixture(t *testing.T)   { checkFixture(t, AnalyzerDetsource) }
func TestRegistryFixture(t *testing.T)    { checkFixture(t, AnalyzerRegistry) }
func TestCtxfirstFixture(t *testing.T)    { checkFixture(t, AnalyzerCtxfirst) }
func TestGlobalstateFixture(t *testing.T) { checkFixture(t, AnalyzerGlobalstate) }

// TestPragmaBehavior pins the suppression contract: reasoned pragmas hold
// on their own line and the line below, while typoed or reasonless ones
// surface as "pragma" findings and suppress nothing.
func TestPragmaBehavior(t *testing.T) {
	res := RunPackages([]*Analyzer{AnalyzerDetsource}, fixturesUnder(t, "pragma"))
	type key struct{ analyzer, fragment string }
	expect := map[key]int{
		{"pragma", "must name an analyzer"}: 1, // Typoed
		{"pragma", "needs a reason"}:        1, // Reasonless
		{"detsource", "wall clock"}:         2, // the unsuppressed reads under the bad pragmas
	}
	got := map[key]int{}
	for _, d := range res.Diagnostics {
		matched := false
		for k := range expect {
			if d.Analyzer == k.analyzer && strings.Contains(d.Message, k.fragment) {
				got[k]++
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding %s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for k, n := range expect {
		if got[k] != n {
			t.Errorf("%s %q: got %d finding(s), want %d", k.analyzer, k.fragment, got[k], n)
		}
	}
}

// TestRepoIsLintClean is the teeth of the suite: the repository itself
// must pass every analyzer (testdata is excluded from ./... by go list).
// A regression here means a new finding needs a fix or a reasoned
// //lint:allow pragma.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo lint load in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(root, All(), "./...")
	if err != nil {
		t.Fatalf("lint run: %v", err)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if t.Failed() {
		t.Log("fix the findings or add //lint:allow <analyzer> <reason> where the behavior is deliberate")
	}
}

// TestCountsIncludeZeros pins the Result contract the ci stage prints:
// every analyzer reports a count, zero included.
func TestCountsIncludeZeros(t *testing.T) {
	res := RunPackages(All(), nil)
	if len(res.Counts) != len(All()) {
		t.Fatalf("Counts has %d entries, want %d", len(res.Counts), len(All()))
	}
	for _, a := range All() {
		if n, ok := res.Counts[a.Name]; !ok || n != 0 {
			t.Errorf("Counts[%q] = %d, %v; want 0, true", a.Name, n, ok)
		}
	}
}

// TestAnalyzerNamesAreUnique guards the pragma namespace: duplicate or
// empty analyzer names would make suppressions ambiguous.
func TestAnalyzerNamesAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, name := range AnalyzerNames(All()) {
		if name == "" || name == "pragma" {
			t.Errorf("reserved or empty analyzer name %q", name)
		}
		if seen[name] {
			t.Errorf("duplicate analyzer name %q", name)
		}
		seen[name] = true
	}
	if len(seen) < 5 {
		t.Errorf("suite has %d analyzers, want at least 5", len(seen))
	}
}
