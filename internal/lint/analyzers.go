package lint

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerCtxfirst,
		AnalyzerDetmap,
		AnalyzerDetsource,
		AnalyzerGlobalstate,
		AnalyzerRegistry,
	}
}
