package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerGlobalstate flags package-level mutable state in library
// packages — the parallel.SetDefaultWorkers hazard class: a process-global
// that concurrent server requests race on, or that makes output depend on
// call history. A package-level var is reported when any function writes
// it (direct assignment, element/field assignment, ++/--, or a mutating
// method call: Add, Store, Swap, Delete, ...) outside the sanctioned
// sites: init functions, and Register*/register* functions (open
// registries are published at init time by contract). sync.Pool and
// sync.Once globals are exempt — pools are order-free scratch reuse and
// Once.Do is its own discipline. Deliberate process-globals (memo caches
// with deterministic content, deprecated compat shims) carry a
// //lint:allow globalstate pragma at the write site.
var AnalyzerGlobalstate = &Analyzer{
	Name: "globalstate",
	Doc: "forbid new package-level mutable state in library packages: " +
		"globals may be written only from init and Register* functions; " +
		"everything else threads state explicitly or documents itself with " +
		"//lint:allow globalstate",
	Run: runGlobalstate,
}

// mutatingMethods are method names that write their receiver on the
// sync/atomic container types (atomic.Int64, atomic.Pointer, sync.Map).
var mutatingMethods = map[string]bool{
	"Add": true, "Store": true, "Swap": true, "CompareAndSwap": true,
	"CompareAndDelete": true, "Delete": true, "LoadOrStore": true,
	"LoadAndDelete": true, "Clear": true,
}

func runGlobalstate(pass *Pass) error {
	if !strings.Contains(pass.Pkg.Path(), "/internal/") && !isFixturePath(pass.Pkg.Path()) {
		return nil // commands and scripts own their process; libraries don't
	}
	globals := packageLevelVars(pass)
	if len(globals) == 0 {
		return nil
	}
	forEachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		if sanctionedWriter(fd) {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range stmt.Lhs {
					if obj := globalRoot(pass, globals, lhs); obj != nil {
						pass.Reportf(stmt.Pos(), "package-level %q is written outside init/Register; thread the state explicitly", obj.Name())
					}
				}
			case *ast.IncDecStmt:
				if obj := globalRoot(pass, globals, stmt.X); obj != nil {
					pass.Reportf(stmt.Pos(), "package-level %q is written outside init/Register; thread the state explicitly", obj.Name())
				}
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(stmt.Fun).(*ast.SelectorExpr); ok && mutatingMethods[sel.Sel.Name] {
					if s, okS := pass.Info.Selections[sel]; okS && s.Kind() == types.MethodVal {
						if obj := globalRoot(pass, globals, sel.X); obj != nil {
							pass.Reportf(stmt.Pos(), "package-level %q is mutated via %s outside init/Register; thread the state explicitly", obj.Name(), sel.Sel.Name)
						}
					}
				}
			}
			return true
		})
	})
	return nil
}

// isFixturePath admits the analyzer's own testdata packages, whose import
// paths live under testdata/src rather than internal/.
func isFixturePath(path string) bool {
	return strings.Contains(path, "/testdata/src/")
}

// packageLevelVars collects the package's mutable top-level variables,
// excluding the exempt container types.
func packageLevelVars(pass *Pass) map[types.Object]bool {
	globals := map[types.Object]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj := pass.Info.Defs[name]
					if obj == nil || name.Name == "_" {
						continue
					}
					if _, isVar := obj.(*types.Var); !isVar {
						continue // consts are immutable by construction
					}
					if exemptGlobalType(obj.Type()) {
						continue
					}
					globals[obj] = true
				}
			}
		}
	}
	return globals
}

// exemptGlobalType exempts sync.Pool and sync.Once (and pointers to them).
func exemptGlobalType(t types.Type) bool {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	return namedFrom(t, "sync", "Pool") || namedFrom(t, "sync", "Once")
}

// sanctionedWriter reports whether the function may legitimately write
// package state: init, or a registry-publication function.
func sanctionedWriter(fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	if fd.Recv == nil && name == "init" {
		return true
	}
	for _, prefix := range []string{"Register", "register", "MustRegister", "mustRegister"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// globalRoot resolves an expression's base identifier to a tracked
// package-level var (nil otherwise).
func globalRoot(pass *Pass, globals map[types.Object]bool, e ast.Expr) types.Object {
	root := rootIdent(e)
	if root == nil {
		return nil
	}
	if obj := objOf(pass.Info, root); obj != nil && globals[obj] {
		return obj
	}
	return nil
}
