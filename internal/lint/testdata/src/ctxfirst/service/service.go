// Package service is a ctxfirst fixture: the import-path tail is a
// job-layer package, so context parameters must come first and root
// contexts may not be minted.
package service

import "context"

// Job is a fixture receiver type.
type Job struct{}

// DoBad takes the context second.
func DoBad(n int, ctx context.Context) error { // want ctxfirst "context first"
	_ = n
	return ctx.Err()
}

// DoGood takes the context first.
func DoGood(ctx context.Context, n int) error {
	_ = n
	return ctx.Err()
}

// RunBad is a method with the context second.
func (Job) RunBad(name string, ctx context.Context) error { // want ctxfirst "context first"
	_ = name
	return ctx.Err()
}

// NoCtx takes no context at all, which is fine.
func NoCtx(n int) int {
	return n + 1
}

// MintRoot manufactures root contexts in library code.
func MintRoot() error {
	ctx := context.Background() // want ctxfirst "root context"
	_ = ctx
	return context.TODO().Err() // want ctxfirst "root context"
}
