// Command tool is a ctxfirst scope fixture: the cmd/ path segment marks a
// process edge, where minting the root context is exactly right.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
