// Package engine is a globalstate fixture: post-init writes to
// package-level state must be flagged, while init and Register* writes,
// sync.Once globals and local state stay legal.
package engine

import (
	"sync"
	"sync/atomic"
)

var (
	counter  int
	hits     atomic.Int64
	table    map[string]int
	fallback string
	once     sync.Once
)

func init() {
	table = map[string]int{}
}

// RegisterEntry publishes into the table at init time by contract.
func RegisterEntry(k string, v int) {
	table[k] = v
}

// Bump writes a plain global outside the sanctioned sites.
func Bump() {
	counter++ // want globalstate "outside init/Register"
}

// Observe mutates an atomic global outside the sanctioned sites.
func Observe() int64 {
	return hits.Add(1) // want globalstate "outside init/Register"
}

// SetFallback assigns a global outside the sanctioned sites.
func SetFallback(s string) {
	fallback = s // want globalstate "outside init/Register"
}

// LocalState only touches locals.
func LocalState() int {
	n := 0
	n++
	return n
}

// Lazily uses the exempt sync.Once.
func Lazily(f func()) {
	once.Do(f)
}
