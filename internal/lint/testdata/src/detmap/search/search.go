// Package search is a detmap fixture: its import-path tail matches a
// deterministic package, so order-leaking map iteration must be flagged.
package search

import (
	"fmt"
	"sort"
	"strings"
)

// LeakAppend builds output in map order and never sorts it; the finding
// anchors on the range statement.
func LeakAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want detmap "never sorted"
		out = append(out, k)
	}
	return out
}

// SortedCollect is the sanctioned sort-the-keys idiom.
func SortedCollect(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// LeakWrite streams rows in map order.
func LeakWrite(b *strings.Builder, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(b, "%s=%d\n", k, v) // want detmap "writes output"
	}
}

// LeakAssign overwrites an outer variable from map order.
func LeakAssign(m map[string]int) string {
	last := ""
	for k := range m {
		last = k // want detmap "leaks into"
	}
	return last
}

// LeakCount increments an outer counter; ++ on outer state inside a map
// range is flagged conservatively because it is indistinguishable from an
// order-dependent fold in general.
func LeakCount(m map[string]int) int {
	n := 0
	for range m {
		n++ // want detmap "leaks into"
	}
	return n
}

// KeyedWrite is order-independent: each iteration writes its own slot.
func KeyedWrite(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// LocalOnly keeps all writes loop-local; order-independent existence
// checks are never flagged.
func LocalOnly(m map[string]int) bool {
	for k, v := range m {
		d := v * v
		if d > 100 && m[k] > 0 {
			return true
		}
	}
	return false
}
