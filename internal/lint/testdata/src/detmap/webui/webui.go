// Package webui is a detmap scope fixture: its import-path tail is not a
// deterministic package, so the same order-leaking iteration is legal.
package webui

// Leak would be a finding in a deterministic package; here it is not.
func Leak(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
