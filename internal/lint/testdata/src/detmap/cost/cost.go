// Package cost is a detmap fixture: the cost-model package prices pinned
// table bytes, so its import-path tail is in the deterministic set and
// order-leaking map iteration must be flagged.
package cost

import "sort"

// LeakFingerprint folds per-op constants in map order into a cache key;
// two runs could fingerprint the same profile differently.
func LeakFingerprint(consts map[string]float64) string {
	out := ""
	for k := range consts {
		out += k // want detmap "leaks into"
	}
	return out
}

// SortedFingerprint is the sanctioned shape: collect, sort, then fold.
func SortedFingerprint(consts map[string]float64) []string {
	keys := make([]string, 0, len(consts))
	for k := range consts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
