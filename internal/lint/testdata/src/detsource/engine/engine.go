// Package engine is a detsource fixture: wall-clock reads, the global
// math/rand generators and address-derived values must be flagged; an
// explicitly seeded generator must not.
package engine

import (
	"math/rand"
	"reflect"
	"time"
	"unsafe"
)

// Clock reads the wall clock twice.
func Clock() float64 {
	start := time.Now()                // want detsource "reads the wall clock"
	return time.Since(start).Seconds() // want detsource "reads the wall clock"
}

// GlobalRand samples the shared generator.
func GlobalRand() int {
	return rand.Intn(10) // want detsource "process-global generator"
}

// SeededRand is deterministic given the seed.
func SeededRand(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(10)
}

// Addr derives a value from an address.
func Addr(p *int) uintptr {
	return uintptr(unsafe.Pointer(p)) // want detsource "run-dependent"
}

// ReflectAddr derives a value from an address via reflect.
func ReflectAddr(p *int) uintptr {
	return reflect.ValueOf(p).Pointer() // want detsource "run-dependent"
}
