// Package gen is a detsource scope fixture: the scripts/ path segment
// puts it out of scope, so the wall-clock read is legal here.
package gen

import "time"

// Stamp is fine in a script.
func Stamp() time.Time {
	return time.Now()
}
