// Package schedule is a registrylint scope fixture: the import-path tail
// matches the registration surface, so method dispatch is legal here.
package schedule

import "bfpp/internal/core"

// Dispatch is fine on the registration surface.
func Dispatch(m core.Method) int {
	switch m {
	case core.BreadthFirst:
		return 1
	default:
		return 0
	}
}
