// Package engine is a registrylint fixture: method-identity dispatch must
// be flagged here, while registry-lookup identity compares and sharding
// switches stay legal.
package engine

import "bfpp/internal/core"

// Dispatch switches on method identity.
func Dispatch(m core.Method) int {
	switch m { // want registrylint "switch on core.Method"
	case core.BreadthFirst:
		return 1
	default:
		return 0
	}
}

// CompareConst tests a method against a constant.
func CompareConst(m core.Method) bool {
	return m == core.DepthFirst // want registrylint "core.Method constant"
}

// CompareConstReversed tests with the constant on the left.
func CompareConstReversed(m core.Method) bool {
	return core.GPipe != m // want registrylint "core.Method constant"
}

// CompareName dispatches via the display name.
func CompareName(m core.Method) bool {
	return m.String() == "Breadth-first" // want registrylint "display name"
}

// Lookup is the registry-lookup idiom: comparing two non-constant method
// values (FamilyOf-style table scans) is not dispatch.
func Lookup(ms []core.Method, m core.Method) bool {
	for _, v := range ms {
		if v == m {
			return true
		}
	}
	return false
}

// ShardingSwitch dispatches on sharding mode, which is not a method.
func ShardingSwitch(s core.Sharding) int {
	switch s {
	case core.DPFS:
		return 2
	default:
		return 1
	}
}
