// Package engine is a pragma fixture: reasoned suppressions hold, while
// typoed or reasonless pragmas surface as findings of their own.
package engine

import "time"

// Suppressed documents a deliberate wall-clock read on the line above.
func Suppressed() time.Time {
	//lint:allow detsource fixture demonstrates a reasoned suppression
	return time.Now()
}

// SameLine documents the read on the line itself.
func SameLine() time.Time {
	return time.Now() //lint:allow detsource same-line suppression form
}

// Typoed names an unknown analyzer, so nothing is suppressed and the
// pragma itself is a finding.
func Typoed() time.Time {
	//lint:allow detsrc misspelled analyzer name
	return time.Now()
}

// Reasonless omits the why, so nothing is suppressed and the pragma
// itself is a finding.
func Reasonless() time.Time {
	//lint:allow detsource
	return time.Now()
}
