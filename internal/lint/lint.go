// Package lint is the project's static-invariant suite: a set of
// bfpp-specific analyzers built directly on the stdlib go/ast + go/types
// toolchain (no external analysis module, so the repo stays dependency-free
// and buildable offline). The analyzer API mirrors the shape of
// golang.org/x/tools/go/analysis — an Analyzer owns a name, a doc string
// and a Run(*Pass) hook — but the driver is self-hosted (see driver.go and
// load.go).
//
// The analyzers pin source-side what the golden tests, -race passes and
// chaos drills enforce dynamically:
//
//   - detmap: no order-dependent iteration over maps in deterministic
//     packages (sort the keys first).
//   - detsource: no wall-clock, unseeded randomness or address-derived
//     values in code that can influence a search.Table, journal entry or
//     replay bound.
//   - registrylint: no switch/if dispatch on core.Method outside the
//     registration surface (internal/core, internal/schedule).
//   - ctxfirst: context.Context is the first parameter of the job-layer
//     packages' functions; context.Background() stays in cmd/, scripts/
//     and tests.
//   - globalstate: no new package-level mutable state in library packages
//     (the SetDefaultWorkers hazard class).
//
// Deliberate exceptions are encoded in source as
//
//	//lint:allow <analyzer> <reason>
//
// pragmas, which suppress findings of <analyzer> on the pragma's own line
// and on the line immediately below it. The reason is mandatory: a pragma
// without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one static check. The shape deliberately mirrors
// golang.org/x/tools/go/analysis.Analyzer so checks could migrate to the
// upstream driver if the repo ever takes the dependency.
type Analyzer struct {
	// Name identifies the analyzer in findings, pragmas and counts. It
	// must be a single lower-case word.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run reports findings on one type-checked package via pass.Reportf.
	Run func(*Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test sources, with comments.
	Files []*ast.File
	// Pkg and Info carry full type information (Defs, Uses, Types,
	// Selections, Scopes) for the package and everything it references.
	Pkg  *types.Package
	Info *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one finding at a resolved source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// PkgTail returns the last element of the package's import path — the name
// the analyzers classify packages by, so fixture packages under
// testdata/src/<analyzer>/<name> are classified exactly like the real
// internal/<name> packages.
func (p *Pass) PkgTail() string {
	path := p.Pkg.Path()
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// pathHasSegment reports whether an import path contains seg as a whole
// path element ("bfpp/cmd/bfpp-sim" has segment "cmd").
func pathHasSegment(path, seg string) bool {
	for part := range strings.SplitSeq(path, "/") {
		if part == seg {
			return true
		}
	}
	return false
}

// InCommand reports whether the package is a command-line entry point
// (under a cmd/ or scripts/ directory) or an example program — the
// process-edge surface where wall-clock use and context.Background are the
// norm.
func (p *Pass) InCommand() bool {
	path := p.Pkg.Path()
	return pathHasSegment(path, "cmd") || pathHasSegment(path, "scripts") ||
		pathHasSegment(path, "examples")
}

// namedFrom reports whether t (after unaliasing) is the named type
// pkgTail.typeName, matching by the defining package's import-path tail so
// fixtures stand in for the real packages.
func namedFrom(t types.Type, pkgTail, typeName string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != typeName || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	return path == pkgTail
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// funcObj resolves a call's callee to its package-level *types.Func (nil
// for builtins, type conversions, function-typed variables and methods
// reached through a non-selector expression).
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// rootIdent walks to the base identifier of an lvalue-ish expression:
// x, x.f.g, x[i], *x all root at x. Returns nil for expressions not rooted
// in a plain identifier (function calls, composite literals).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// objOf resolves an identifier to its object (definition or use).
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// declaredWithin reports whether the object's declaration lies inside the
// [lo, hi] source range — i.e. the variable is local to that region.
func declaredWithin(obj types.Object, lo, hi token.Pos) bool {
	return obj != nil && obj.Pos() >= lo && obj.Pos() <= hi
}
