package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("bfpp/internal/search").
	Path string
	// Fset positions every file of the load (shared across packages).
	Fset *token.FileSet
	// Files are the parsed non-test Go sources, with comments.
	Files []*ast.File
	// Types and Info are the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// pkgMeta is the slice of `go list -json` output the loader consumes.
type pkgMeta struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
}

// Load type-checks the packages matching the go-list patterns, resolved
// relative to dir. It is the suite's self-hosted replacement for
// golang.org/x/tools/go/packages: the package graph and compiled export
// data come from `go list -deps -export` (offline, build-cached), the
// matched packages themselves are re-parsed from source with comments and
// type-checked against that export data — full type information for the
// analyzers without any dependency beyond the stdlib and the go tool.
//
// Test files are intentionally out of scope: the invariants under lint are
// about what ships, and the allowlists (benchmarks, tests) fall out for
// free.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, targets, err := listPackages(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		m, ok := metas[path]
		if !ok || m.Export == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(m.Export)
	})
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}

	var pkgs []*Package
	for _, m := range targets {
		files := make([]*ast.File, 0, len(m.GoFiles))
		for _, name := range m.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(m.Dir, name), nil,
				parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		tpkg, err := conf.Check(m.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", m.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  m.ImportPath,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// listPackages runs `go list -deps -export` over the patterns and returns
// every package's metadata keyed by import path, plus the in-module
// packages the patterns matched directly (the analysis targets), in go
// list order.
func listPackages(dir string, patterns []string) (map[string]pkgMeta, []pkgMeta, error) {
	// One -deps walk yields export data for the whole graph; a second plain
	// list identifies which packages the patterns themselves matched.
	deps, err := goList(dir, append([]string{"-deps", "-export"}, patterns...))
	if err != nil {
		return nil, nil, err
	}
	metas := make(map[string]pkgMeta, len(deps))
	for _, m := range deps {
		metas[m.ImportPath] = m
	}
	matched, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	var targets []pkgMeta
	for _, m := range matched {
		full, ok := metas[m.ImportPath]
		if !ok {
			return nil, nil, fmt.Errorf("lint: %s matched but missing from -deps load", m.ImportPath)
		}
		if full.Standard {
			continue // lint only this module's code, never the stdlib
		}
		targets = append(targets, full)
	}
	return metas, targets, nil
}

// goList invokes the go tool and decodes its JSON package stream.
func goList(dir string, args []string) ([]pkgMeta, error) {
	cmd := exec.Command("go", append([]string{"list",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,Module"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", args, err, stderr.Bytes())
	}
	var metas []pkgMeta
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var m pkgMeta
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}
