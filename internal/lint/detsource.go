package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerDetsource forbids nondeterminism sources — wall-clock reads
// (time.Now), the unseeded process-global math/rand generators, and
// address- or goroutine-derived values (pointer-to-uintptr conversions,
// reflect.Value.Pointer/UnsafeAddr) — in any code path that can influence
// a search.Table, journal entry or replay bound: every library and command
// package of the module. Explicitly seeded generators
// (rand.New(rand.NewSource(seed))) are fine: given the seed they are pure
// functions. scripts/ and examples/ are out of scope, and test files are
// never loaded, which is the benchmark/test allowlist; deliberate
// wall-clock use on a non-output path (elapsed-time reporting on stderr)
// carries a //lint:allow detsource pragma instead.
var AnalyzerDetsource = &Analyzer{
	Name: "detsource",
	Doc: "forbid time.Now, unseeded math/rand and address-derived values in " +
		"code that can influence table/journal/replay bytes; seed explicitly or " +
		"document with //lint:allow detsource",
	Run: runDetsource,
}

// randConstructors are the math/rand functions that build an explicitly
// seeded generator rather than sampling the shared global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDetsource(pass *Pass) error {
	path := pass.Pkg.Path()
	if pathHasSegment(path, "scripts") || pathHasSegment(path, "examples") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				checkDetsourceCall(pass, e)
			case *ast.SelectorExpr:
				checkDetsourceSelector(pass, e)
			}
			return true
		})
	}
	return nil
}

func checkDetsourceCall(pass *Pass, call *ast.CallExpr) {
	// uintptr(p) over a pointer-ish operand derives a value from an
	// address, which ASLR and the allocator make run-dependent.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if basic, okB := tv.Type.Underlying().(*types.Basic); okB && basic.Kind() == types.Uintptr && len(call.Args) == 1 {
			at := pass.Info.TypeOf(call.Args[0])
			if at != nil && addressDerived(at) {
				pass.Reportf(call.Pos(), "uintptr conversion derives a value from an address; addresses are run-dependent")
			}
		}
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, okS := pass.Info.Selections[sel]; okS && s.Kind() == types.MethodVal {
			recv := s.Recv()
			if namedFrom(recv, "reflect", "Value") {
				switch sel.Sel.Name {
				case "Pointer", "UnsafeAddr", "UnsafePointer":
					pass.Reportf(call.Pos(), "reflect.Value.%s derives a value from an address; addresses are run-dependent", sel.Sel.Name)
				}
			}
		}
	}
}

func checkDetsourceSelector(pass *Pass, sel *ast.SelectorExpr) {
	f, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil {
		return
	}
	if sig, okS := f.Type().(*types.Signature); !okS || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn) are driven by their seeded receiver
	}
	switch f.Pkg().Path() {
	case "time":
		if f.Name() == "Now" || f.Name() == "Since" || f.Name() == "Until" {
			pass.Reportf(sel.Pos(), "time.%s reads the wall clock; thread explicit timestamps or allow with a reason", f.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[f.Name()] {
			pass.Reportf(sel.Pos(), "%s.%s samples the process-global generator; use rand.New(rand.NewSource(seed))", f.Pkg().Path(), f.Name())
		}
	}
}

// addressDerived reports whether converting a value of type t to uintptr
// yields an address: pointers, unsafe.Pointer, channels, maps, functions.
func addressDerived(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}
