package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// deterministicPkgs are the packages whose outputs are pinned byte-for-byte
// (search tables, schedules, figure artifacts, journal frames, HTTP
// bodies): map iteration order must never leak into what they produce.
var deterministicPkgs = map[string]bool{
	"search":   true,
	"cost":     true,
	"schedule": true,
	"analytic": true,
	"engine":   true,
	"des":      true,
	"dispatch": true,
	"store":    true,
	"service":  true,
	"figures":  true,
}

// AnalyzerDetmap flags `for ... range m` over a map in a deterministic
// package when the loop body lets the iteration order escape: appending to
// or writing a variable declared outside the loop, sending on a channel,
// or writing output (fmt.Fprint*/Write*). The one sanctioned shape is the
// sort-the-keys idiom — a loop that only collects keys or values into a
// slice that is then passed to a sort.*/slices.Sort* call later in the
// same function. Order-independent reads (lookups, len) are never flagged.
var AnalyzerDetmap = &Analyzer{
	Name: "detmap",
	Doc: "forbid order-dependent map iteration in deterministic packages " +
		"(search, cost, schedule, analytic, engine, des, dispatch, store, service, figures); " +
		"collect the keys and sort them first",
	Run: runDetmap,
}

func runDetmap(pass *Pass) error {
	if !deterministicPkgs[pass.PkgTail()] {
		return nil
	}
	forEachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, fd, rs)
			return true
		})
	})
	return nil
}

// checkMapRange classifies one map-range body and reports order leaks.
func checkMapRange(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	lo, hi := rs.Pos(), rs.End()
	loopKey := rangeVarObj(pass.Info, rs.Key)

	// collects are outer slices the body appends into; they are tolerated
	// only if the enclosing function sorts them after the loop.
	var collects []types.Object
	leaked := false
	report := func(pos token.Pos, format string, args ...any) {
		if !leaked {
			pass.Reportf(pos, format, args...)
			leaked = true
		}
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if leaked {
			return false
		}
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range stmt.Lhs {
				root := rootIdent(lhs)
				if root == nil {
					continue
				}
				obj := objOf(pass.Info, root)
				if obj == nil || declaredWithin(obj, lo, hi) {
					continue // loop-local state cannot leak order
				}
				if _, isPkg := obj.(*types.PkgName); isPkg {
					continue
				}
				// x = append(x, ...) into an outer slice is the collect
				// half of the sort-the-keys idiom; remember it for the
				// sort check instead of flagging immediately.
				if id, okL := ast.Unparen(lhs).(*ast.Ident); okL && i < len(stmt.Rhs) {
					if isSelfAppend(pass.Info, id, stmt.Rhs[i]) {
						collects = append(collects, obj)
						continue
					}
				}
				// Writes keyed by the loop key (m2[k] = v) are
				// order-independent: each iteration touches its own slot.
				if idx, okI := ast.Unparen(lhs).(*ast.IndexExpr); okI && loopKey != nil {
					if keyID, okK := ast.Unparen(idx.Index).(*ast.Ident); okK &&
						objOf(pass.Info, keyID) == loopKey {
						continue
					}
				}
				report(stmt.Pos(), "map iteration order leaks into %q; range over sorted keys instead", root.Name)
			}
		case *ast.IncDecStmt:
			if root := rootIdent(stmt.X); root != nil {
				if obj := objOf(pass.Info, root); obj != nil && !declaredWithin(obj, lo, hi) {
					report(stmt.Pos(), "map iteration order leaks into %q; range over sorted keys instead", root.Name)
				}
			}
		case *ast.SendStmt:
			report(stmt.Pos(), "map iteration sends on a channel in iteration order; range over sorted keys instead")
		case *ast.CallExpr:
			if name, outer := outputCall(pass.Info, stmt, lo, hi); outer {
				report(stmt.Pos(), "map iteration writes output via %s in iteration order; range over sorted keys instead", name)
			}
		}
		return !leaked
	})
	if leaked {
		return
	}
	for _, obj := range collects {
		if !sortedAfter(pass.Info, fd.Body, obj, hi) {
			pass.Reportf(rs.Pos(), "map keys collected into %q are never sorted; sort before use", obj.Name())
			return
		}
	}
}

// rangeVarObj resolves a range statement's key/value expression to its
// object (nil for `_` or absent).
func rangeVarObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return objOf(info, id)
}

// isSelfAppend reports whether rhs is append(lhs, ...).
func isSelfAppend(info *types.Info, lhs *ast.Ident, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if _, isBuiltin := info.Uses[fn].(*types.Builtin); !isBuiltin {
		return false
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && objOf(info, arg) == objOf(info, lhs)
}

// outputCall reports whether the call writes output to state declared
// outside [lo, hi]: fmt.Fprint*/Print*, or a Write*/Print* method on an
// outer receiver (io.Writer, strings.Builder, bytes.Buffer alike).
func outputCall(info *types.Info, call *ast.CallExpr, lo, hi token.Pos) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if f := funcObj(info, call); f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		switch name {
		case "Print", "Println", "Printf":
			return "fmt." + name, true
		case "Fprint", "Fprintln", "Fprintf":
			// Order leaks only when the destination outlives the loop.
			if len(call.Args) > 0 {
				if root := rootIdent(call.Args[0]); root != nil {
					if obj := objOf(info, root); obj != nil && !declaredWithin(obj, lo, hi) {
						return "fmt." + name, true
					}
				}
			}
			return "", false
		}
		return "", false
	}
	if !writerMethodName(name) {
		return "", false
	}
	root := rootIdent(sel.X)
	if root == nil {
		return "", false
	}
	obj := objOf(info, root)
	if obj == nil || declaredWithin(obj, lo, hi) {
		return "", false
	}
	if _, isPkg := obj.(*types.PkgName); isPkg {
		return "", false
	}
	return root.Name + "." + name, true
}

func writerMethodName(name string) bool {
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Print", "Printf", "Println":
		return true
	}
	return false
}

// sortedAfter reports whether obj appears as an argument of a sort call
// (sort.* or slices.Sort*) positioned after pos within body.
func sortedAfter(info *types.Info, body *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		f := funcObj(info, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		switch f.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if root := rootIdent(arg); root != nil && objOf(info, root) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
