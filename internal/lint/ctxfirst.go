package lint

import (
	"go/ast"
	"go/types"
)

// ctxPkgs are the job-layer packages whose API is context-first by
// contract (the PR-5 redesign): any function there that accepts a
// context.Context must take it as the first parameter.
var ctxPkgs = map[string]bool{
	"search":   true,
	"figures":  true,
	"tradeoff": true,
	"service":  true,
	"dispatch": true,
}

// AnalyzerCtxfirst enforces the context-first API contract: in the
// job-layer packages (search, figures, tradeoff, service, dispatch) every
// function or method with a context.Context parameter takes it first; and
// context.Background()/context.TODO() are forbidden outside cmd/, scripts/
// and examples/ (tests are never loaded) — library code must thread the
// caller's context, never mint a fresh root that detaches cancellation.
var AnalyzerCtxfirst = &Analyzer{
	Name: "ctxfirst",
	Doc: "context.Context must be the first parameter in the job-layer " +
		"packages, and context.Background()/TODO() may appear only at process " +
		"edges (cmd/, scripts/, examples/)",
	Run: runCtxfirst,
}

func runCtxfirst(pass *Pass) error {
	if ctxPkgs[pass.PkgTail()] {
		forEachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
			checkCtxPosition(pass, fd)
		})
	}
	if !pass.InCommand() {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if f := funcObj(pass.Info, call); f != nil && f.Pkg() != nil &&
					f.Pkg().Path() == "context" &&
					(f.Name() == "Background" || f.Name() == "TODO") {
					pass.Reportf(call.Pos(), "context.%s() mints a root context in library code; thread the caller's context instead", f.Name())
				}
				return true
			})
		}
	}
	return nil
}

// checkCtxPosition flags a declaration whose context parameter is not the
// first.
func checkCtxPosition(pass *Pass, fd *ast.FuncDecl) {
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			if i != 0 {
				pass.Reportf(fd.Pos(), "%s takes context.Context as parameter %d; the job-layer contract is context first", fd.Name.Name, i+1)
			}
			return
		}
	}
}
