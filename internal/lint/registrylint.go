package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerRegistry enforces the PR-2 architecture rule: schedule methods
// are an open registry, so no package outside the registration surface
// (internal/core, internal/schedule) may dispatch on method identity. It
// flags switch statements whose tag is a core.Method, ==/!= comparisons of
// a core.Method value against a method constant, and comparisons of a
// method's String() against a string literal. Identity comparisons between
// two non-constant Method values (registry table lookups like FamilyOf)
// stay legal — the rule targets behavioral dispatch, which belongs in
// MethodInfo traits or schedule.Traits hooks.
var AnalyzerRegistry = &Analyzer{
	Name: "registrylint",
	Doc: "forbid switch/if dispatch on core.Method and method-name string " +
		"compares outside internal/core and internal/schedule; promote the " +
		"behavior to a registered trait instead",
	Run: runRegistry,
}

func runRegistry(pass *Pass) error {
	switch pass.PkgTail() {
	case "core", "schedule":
		return nil // the registration surface itself
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.SwitchStmt:
				if e.Tag != nil && isMethodType(pass.Info.TypeOf(e.Tag)) {
					pass.Reportf(e.Pos(), "switch on core.Method dispatches on method identity; register the behavior as a method trait")
				}
			case *ast.BinaryExpr:
				checkMethodCompare(pass, e)
			}
			return true
		})
	}
	return nil
}

func checkMethodCompare(pass *Pass, e *ast.BinaryExpr) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	// m == core.SomeMethod (or reversed): dispatch on a method constant.
	for _, pair := range [2][2]ast.Expr{{e.X, e.Y}, {e.Y, e.X}} {
		val, other := pair[0], pair[1]
		if !isMethodType(pass.Info.TypeOf(val)) {
			continue
		}
		if tv, ok := pass.Info.Types[other]; ok && tv.Value != nil && isMethodType(tv.Type) {
			pass.Reportf(e.Pos(), "comparison against a core.Method constant dispatches on method identity; register the behavior as a method trait")
			return
		}
	}
	// m.String() == "Breadth-first": the same dispatch via the display
	// name.
	for _, pair := range [2][2]ast.Expr{{e.X, e.Y}, {e.Y, e.X}} {
		call, lit := pair[0], pair[1]
		if !isMethodStringCall(pass.Info, call) {
			continue
		}
		if tv, ok := pass.Info.Types[lit]; ok && tv.Value != nil {
			pass.Reportf(e.Pos(), "comparing a core.Method display name against a string literal dispatches on method identity; use registered traits or MethodByName")
			return
		}
	}
}

// isMethodType reports whether t is the registry's core.Method type (by
// defining-package tail, so fixtures classify like internal/core).
func isMethodType(t types.Type) bool {
	return t != nil && namedFrom(t, "core", "Method")
}

// isMethodStringCall reports whether e is a String() call on a
// core.Method receiver.
func isMethodStringCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "String" {
		return false
	}
	s, ok := info.Selections[sel]
	return ok && s.Kind() == types.MethodVal && isMethodType(s.Recv())
}
