package memsim

import (
	"sync"
	"sync/atomic"

	"bfpp/internal/core"
	"bfpp/internal/model"
)

// The estimate memo is a two-level model -> plan cache: the outer level
// resolves the (rarely changing) model architecture to its plan cache, and
// the hot path hashes only the Plan. A lock-free pointer to the last-used
// model's cache skips even the outer lookup on the common
// one-model-per-sweep pattern, so the full Transformer struct (which
// contains a string) is no longer hashed on every lookup. The grid search
// asks for the same estimate at least twice per candidate (feasibility
// pruning in Enumerate, then the Result breakdown in the engine).

// planCache memoizes Estimate for one model architecture.
type planCache struct {
	model model.Transformer
	plans sync.Map // core.Plan -> Breakdown
}

var (
	modelCaches sync.Map // model.Transformer -> *planCache
	lastCache   atomic.Pointer[planCache]
)

// CachedEstimate is Estimate memoized per (model, plan). The plan space a
// search enumerates is small (hundreds of configurations per model), so the
// cache is unbounded by design.
func CachedEstimate(m model.Transformer, p core.Plan) Breakdown {
	c := lastCache.Load()
	if c == nil || c.model != m {
		if v, ok := modelCaches.Load(m); ok {
			c = v.(*planCache)
		} else {
			//lint:allow globalstate memo cache keyed by (model, plan); entries are pure Estimate values, content is call-order independent
			v, _ := modelCaches.LoadOrStore(m, &planCache{model: m})
			c = v.(*planCache)
		}
		//lint:allow globalstate single-entry accelerator in front of the memo cache; same deterministic content
		lastCache.Store(c)
	}
	if v, ok := c.plans.Load(p); ok {
		return v.(Breakdown)
	}
	b := Estimate(m, p)
	c.plans.Store(p, b)
	return b
}
