package memsim

import (
	"sync"

	"bfpp/internal/core"
	"bfpp/internal/model"
)

// estimateKey memoizes Estimate per (architecture, plan) pair. Both structs
// are plain comparable values, so the key is exact: the grid search asks
// for the same estimate at least twice per candidate (feasibility pruning
// in Enumerate, then the Result breakdown in the engine).
type estimateKey struct {
	model model.Transformer
	plan  core.Plan
}

var estimateCache sync.Map // estimateKey -> Breakdown

// CachedEstimate is Estimate memoized per (model, plan). The plan space a
// search enumerates is small (hundreds of configurations per model), so the
// cache is unbounded by design.
func CachedEstimate(m model.Transformer, p core.Plan) Breakdown {
	k := estimateKey{m, p}
	if v, ok := estimateCache.Load(k); ok {
		return v.(Breakdown)
	}
	b := Estimate(m, p)
	estimateCache.Store(k, b)
	return b
}
