package memsim

import (
	"bfpp/internal/core"
	"bfpp/internal/model"
	"bfpp/internal/schedule"
)

// Floor returns a cheap admissible lower bound on Estimate(m, p).Total():
// the minimum training-state bytes any trait combination can report for
// the plan's sharding mode, the exact live-activation and pipeline-buffer
// terms, and the checkpoint term evaluated at the generator's declared
// in-flight floor (Traits.InFlightFloor) instead of the exact hook — which
// for the V-schedule avoids generating device programs. The grid search
// uses it to discard hopeless candidates before paying the full estimate;
// because Floor never exceeds Estimate, the surviving candidate set is
// identical to the unfiltered one.
func Floor(m model.Transformer, p core.Plan) float64 {
	base, ckpt := floorParts(m, p)
	return base + ckpt()
}

// floorParts splits the floor into its trait-free base (training state,
// live activations, pipeline buffers — plain arithmetic on the plan) and a
// deferred checkpoint term that consults the generator's in-flight hook,
// so a feasibility check can reject on the base alone before paying the
// hook.
func floorParts(m model.Transformer, p core.Plan) (base float64, ckpt func() float64) {
	stackParams := float64(m.Layers) * float64(m.LayerParams())
	pDev := stackParams / float64(p.PP*p.TP)
	nStages := p.NumStages()
	pStage := stackParams / float64(nStages) / float64(p.TP)

	// Training-state floor: the smallest value Estimate can produce for
	// the sharding mode (fp32 gradients may sit outside the peak under
	// DP0, the DP-PS buffers may halve, weight stashes only add).
	var state float64
	switch p.Sharding {
	case core.DP0:
		state = (bytesState + bytesHalfBuffers) * pDev
	case core.DPPS:
		state = (bytesState+bytesFP32Grads)/float64(p.DP)*pDev + bytesHalfWeights*pDev
	case core.DPFS:
		state = (bytesState+bytesFP32Grads)/float64(p.DP)*pDev +
			2*(bytesHalfWeights+bytesHalfWeights)*pStage
	}

	// Live activations (Eq. 16) and pipeline buffers: exact and cheap,
	// identical to Estimate.
	seq := float64(m.SeqLen)
	smb := float64(p.MicroBatch)
	hid := float64(m.Hidden)
	tp := float64(p.TP)
	act := seq * smb * hid * (10 + 24/tp + 5*seq*float64(m.Heads)/(hid*tp))

	var ppBuf float64
	if p.Method.Pipelined() && p.PP > 1 {
		ppBuf = 4 * 2 * seq * smb * hid / tp
	}

	return state + act + ppBuf, func() float64 {
		traits := schedule.TraitsOf(p.Method)
		pairs := traits.InFlight
		if traits.InFlightFloor != nil {
			pairs = traits.InFlightFloor
		}
		layersPerStage := m.Layers / nStages
		return float64(pairs(p)*layersPerStage) * 2 * seq * smb * hid / tp
	}
}

// FeasibleFloor reports whether the plan's memory floor fits the budget,
// checking the cheap trait-free terms first: a candidate whose training
// state, activations and pipeline buffers alone break the budget is
// rejected without consulting the generator's in-flight hook (which for
// the V-schedule is the difference between arithmetic and generating
// device programs when the InFlightFloor hook is ever absent). Equivalent
// to FeasibleBytes(Floor(m, p), memBytes).
func FeasibleFloor(m model.Transformer, p core.Plan, memBytes int64) bool {
	base, ckpt := floorParts(m, p)
	if !FeasibleBytes(base, memBytes) {
		return false
	}
	return FeasibleBytes(base+ckpt(), memBytes)
}

// FeasibleBytes is Feasible for a bare byte total, sharing the same
// fragmentation reserve so a Floor-based pre-filter and the full
// Breakdown-based check agree at the boundary.
func FeasibleBytes(total float64, memBytes int64) bool {
	const fragmentationReserve = 0.90
	return total <= float64(memBytes)*fragmentationReserve
}
