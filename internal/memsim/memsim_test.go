package memsim

import (
	"math"
	"testing"

	"bfpp/internal/core"
	"bfpp/internal/model"
	"bfpp/internal/schedule"
)

const mib = 1 << 20
const gib = 1 << 30

func relErr(got, want float64) float64 { return math.Abs(got-want) / want }

// Appendix A.2.2: GPT-3 live activations are 552 MB per sample and the 1T
// model uses 1050 MB per sample (Eq. 16, NTP=8).
func TestActivationMemoryMatchesPaperExamples(t *testing.T) {
	gpt3 := model.GPT3()
	p := core.Plan{Method: core.GPipe, DP: 1, PP: 4, TP: 8, MicroBatch: 1, NumMicro: 4, Loops: 1}
	b := Estimate(gpt3, p)
	if got := b.Activations / mib; relErr(got, 552) > 0.01 {
		t.Errorf("GPT-3 activations = %.1f MiB, want 552", got)
	}
	oneT := model.Model1T()
	b = Estimate(oneT, p)
	if got := b.Activations / mib; relErr(got, 1050) > 0.01 {
		t.Errorf("1T activations = %.1f MiB, want 1050", got)
	}
}

// Appendix A.2.2: checkpoint memory at beta_min is 576 MB for GPT-3 and
// 1600 MB for 1T (Eq. 17 with Nmb = NPP = 4, Smb = 1).
func TestCheckpointMemoryMatchesPaperExamples(t *testing.T) {
	p := core.Plan{Method: core.GPipe, DP: 1, PP: 4, TP: 8, MicroBatch: 1, NumMicro: 4, Loops: 1}
	b := Estimate(model.GPT3(), p)
	if got := b.Checkpoints / mib; relErr(got, 576) > 0.01 {
		t.Errorf("GPT-3 checkpoints = %.1f MiB, want 576", got)
	}
	b = Estimate(model.Model1T(), p)
	if got := b.Checkpoints / mib; relErr(got, 1600) > 0.01 {
		t.Errorf("1T checkpoints = %.1f MiB, want 1600", got)
	}
}

// Appendix A.2.1: GPT-3 trains on 80 GB GPUs with NTP=8, NPP=4 using DP-PS
// at 10 GB (immediate reduction) or 20 GB of state; 1T requires DP-FS at
// ~7 GB.
func TestStateMemoryMatchesPaperExamples(t *testing.T) {
	// DP-PS with breadth-first: 2 bytes/param of buffers.
	p := core.Plan{Method: core.BreadthFirst, DP: 64, PP: 4, TP: 8,
		MicroBatch: 1, NumMicro: 4, Loops: 1, Sharding: core.DPPS}
	b := Estimate(model.GPT3(), p)
	if got := b.StateMin / 1e9; relErr(got, 10.9) > 0.05 {
		t.Errorf("GPT-3 DP-PS(BF) min state = %.1f GB, want ~10.9", got)
	}
	// DP-PS without immediate reduction: 4 bytes/param.
	p.Method = core.GPipe
	b = Estimate(model.GPT3(), p)
	if got := b.StateMin / 1e9; relErr(got, 21.8) > 0.05 {
		t.Errorf("GPT-3 DP-PS min state = %.1f GB, want ~21.8", got)
	}
	// 1T with DP-FS, one layer per stage (NPP=4, 32 loops): Eq. 15 gives
	// 8*Nparams/(Nlayers*NTP) ~= 7.3 GiB.
	p1t := core.Plan{Method: core.BreadthFirst, DP: 64, PP: 4, TP: 8,
		MicroBatch: 1, NumMicro: 4, Loops: 32, Sharding: core.DPFS}
	b = Estimate(model.Model1T(), p1t)
	want := 8 * float64(model.Model1T().Params()-model.Model1T().EmbeddingParams()) /
		(float64(model.Model1T().Layers) * 8)
	if relErr(b.StateMin, want) > 0.01 {
		t.Errorf("1T DP-FS min state = %.2f GiB, want %.2f GiB", b.StateMin/gib, want/gib)
	}
	if b.StateMin/gib > 8 {
		t.Errorf("1T DP-FS min state = %.2f GiB, want ~7", b.StateMin/gib)
	}
}

// Table E.1 cross-check: the 52B model with DP0, PP=TP=8 has ~15-16 GB peak
// for our implementation, and the sharded minimum removes 16 bytes/param
// (Appendix E footnote 15).
func TestTableE1MemoryShape(t *testing.T) {
	m := model.Model52B()
	p := core.Plan{Method: core.BreadthFirst, DP: 1, PP: 8, TP: 8,
		MicroBatch: 1, NumMicro: 8, Loops: 4, Sharding: core.DP0,
		OverlapDP: true, OverlapPP: true}
	b := Estimate(m, p)
	if got := b.Total() / gib; got < 13 || got > 18 {
		t.Errorf("52B DP0 peak = %.2f GiB, want ~15-16", got)
	}
	pDev := float64(m.Layers) * float64(m.LayerParams()) / 64
	diff := b.Total() - b.TotalMin()
	if relErr(diff, 16*pDev) > 1e-9 {
		t.Errorf("peak-min difference = %.2f bytes/param, want 16", diff/pDev)
	}
	// Megatron implementation counts 4 bytes/param less at peak.
	pm := p
	pm.Method = core.OneFOneB
	pm.Loops = 1
	bm := Estimate(m, pm)
	if relErr(b.State-bm.State, 4*pDev) > 1e-9 {
		t.Errorf("Megatron peak state should be 4 bytes/param lower")
	}
}

// Table 4.1: state memory ranking DP-FS < DP-PS < DP0 for the same plan
// shape, and DP-FS state is independent of the per-device layer count.
func TestShardingRanking(t *testing.T) {
	m := model.Model52B()
	mk := func(s core.Sharding) Breakdown {
		// Loops=8: one layer per stage, so the DP-FS double buffer holds
		// only two layers.
		return Estimate(m, core.Plan{Method: core.BreadthFirst, DP: 8, PP: 8, TP: 1,
			MicroBatch: 1, NumMicro: 8, Loops: 8, Sharding: s})
	}
	d0, dps, dfs := mk(core.DP0), mk(core.DPPS), mk(core.DPFS)
	if !(dfs.State < dps.State && dps.State < d0.State) {
		t.Errorf("state ranking violated: DP0=%.2f DPPS=%.2f DPFS=%.2f GiB",
			d0.State/gib, dps.State/gib, dfs.State/gib)
	}
	if !(dfs.StateMin < dps.StateMin && dps.StateMin < d0.StateMin) {
		t.Errorf("min state ranking violated")
	}
}

// The 1F1B activation cap: checkpoints stop growing with Nmb, unlike GPipe
// (Section 3.2: "PP1f1b uses less activation memory").
func TestOneFOneBActivationCap(t *testing.T) {
	m := model.Model52B()
	mk := func(method core.Method, nmb int) float64 {
		return Estimate(m, core.Plan{Method: method, DP: 1, PP: 8, TP: 8,
			MicroBatch: 1, NumMicro: nmb, Loops: 1}).Checkpoints
	}
	if mk(core.OneFOneB, 8) != mk(core.OneFOneB, 64) {
		t.Error("1F1B checkpoints should be capped independent of Nmb")
	}
	if mk(core.GPipe, 64) <= mk(core.GPipe, 8) {
		t.Error("GPipe checkpoints should grow with Nmb")
	}
	if mk(core.GPipe, 64) <= mk(core.OneFOneB, 64) {
		t.Error("GPipe should exceed 1F1B checkpoints at large Nmb")
	}
}

// The analytic in-flight formula must agree with the actual schedules.
func TestInFlightMatchesSchedules(t *testing.T) {
	cases := []core.Plan{
		{Method: core.GPipe, DP: 1, PP: 4, TP: 1, MicroBatch: 1, NumMicro: 8, Loops: 1},
		{Method: core.OneFOneB, DP: 1, PP: 4, TP: 1, MicroBatch: 1, NumMicro: 8, Loops: 1},
		{Method: core.BreadthFirst, DP: 1, PP: 4, TP: 1, MicroBatch: 1, NumMicro: 8, Loops: 4},
		{Method: core.DepthFirst, DP: 1, PP: 4, TP: 1, MicroBatch: 1, NumMicro: 8, Loops: 2},
		{Method: core.NoPipelineBF, DP: 1, PP: 1, TP: 1, MicroBatch: 1, NumMicro: 4, Loops: 4},
	}
	for _, p := range cases {
		s, err := schedule.Generate(p)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		worst := 0
		for _, prog := range s.Devices {
			if v := schedule.MaxInFlight(prog); v > worst {
				worst = v
			}
		}
		got := inFlightPairs(p)
		if got != worst {
			t.Errorf("%v: analytic in-flight %d != schedule %d", p, got, worst)
		}
	}
}

func TestNoPipelineDFHoldsOneMicroBatch(t *testing.T) {
	m := model.Model6p6B()
	mk := func(nmb int) float64 {
		return Estimate(m, core.Plan{Method: core.NoPipelineDF, DP: 4, PP: 1, TP: 1,
			MicroBatch: 1, NumMicro: nmb, Loops: 1}).Checkpoints
	}
	if mk(1) != mk(16) {
		t.Error("no-pipeline DF checkpoints should not grow with Nmb")
	}
	mkBF := func(nmb int) float64 {
		return Estimate(m, core.Plan{Method: core.NoPipelineBF, DP: 4, PP: 1, TP: 1,
			MicroBatch: 1, NumMicro: nmb, Loops: 1}).Checkpoints
	}
	if mkBF(16) != 16*mkBF(1) {
		t.Error("no-pipeline BF checkpoints should grow linearly with Nmb (Appendix C cost)")
	}
}

func TestFeasible(t *testing.T) {
	m := model.Model52B()
	p := core.Plan{Method: core.BreadthFirst, DP: 1, PP: 8, TP: 8,
		MicroBatch: 1, NumMicro: 8, Loops: 4}
	b := Estimate(m, p)
	if !Feasible(b, 32*gib) {
		t.Errorf("52B on 32 GiB with PP=TP=8 should fit (paper ran it): %v", b)
	}
	// The whole 52B model on one GPU cannot fit.
	p1 := core.Plan{Method: core.NoPipelineDF, DP: 2, PP: 1, TP: 1,
		MicroBatch: 1, NumMicro: 1, Loops: 1}
	if Feasible(Estimate(m, p1), 32*gib) {
		t.Error("52B unsharded on a single 32 GiB GPU should not fit")
	}
}

func TestBreakdownString(t *testing.T) {
	b := Estimate(model.Tiny(), core.Plan{Method: core.GPipe, DP: 1, PP: 4, TP: 1,
		MicroBatch: 1, NumMicro: 4, Loops: 1})
	if b.String() == "" {
		t.Error("empty string")
	}
	if b.Total() < b.TotalMin() {
		t.Error("Total should be >= TotalMin")
	}
}
