package memsim

import (
	"sync"
	"testing"

	"bfpp/internal/core"
	"bfpp/internal/model"
)

func TestCachedEstimateMatchesEstimate(t *testing.T) {
	plans := []core.Plan{
		{Method: core.BreadthFirst, DP: 4, PP: 8, TP: 2, MicroBatch: 1, NumMicro: 8, Loops: 2,
			Sharding: core.DPFS, OverlapDP: true, OverlapPP: true},
		{Method: core.OneFOneB, DP: 1, PP: 8, TP: 8, MicroBatch: 1, NumMicro: 8, Loops: 1},
		{Method: core.NoPipelineBF, DP: 64, PP: 1, TP: 1, MicroBatch: 1, NumMicro: 4, Loops: 16,
			Sharding: core.DPPS},
	}
	for _, m := range []model.Transformer{model.Model52B(), model.Model6p6B()} {
		for _, p := range plans {
			want := Estimate(m, p)
			if got := CachedEstimate(m, p); got != want {
				t.Errorf("%s %v: cached %+v != %+v", m.Name, p, got, want)
			}
			// Second lookup hits the cache and must return the same value.
			if got := CachedEstimate(m, p); got != want {
				t.Errorf("%s %v: second cached lookup differs", m.Name, p)
			}
		}
	}
}

// TestCachedEstimateModelSwitching exercises the two-level model -> plan
// cache (and its last-model fast-path pointer) across interleaved models
// from concurrent goroutines.
func TestCachedEstimateModelSwitching(t *testing.T) {
	models := []model.Transformer{model.Model52B(), model.Model6p6B(), model.GPT3()}
	p := core.Plan{Method: core.BreadthFirst, DP: 8, PP: 4, TP: 2, MicroBatch: 1,
		NumMicro: 16, Loops: 4, Sharding: core.DPFS, OverlapDP: true, OverlapPP: true}
	want := make([]Breakdown, len(models))
	for i, m := range models {
		want[i] = Estimate(m, p)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				mi := (i + w) % len(models)
				if got := CachedEstimate(models[mi], p); got != want[mi] {
					t.Errorf("%s: cached estimate differs after model switch", models[mi].Name)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestCachedEstimateConcurrent(t *testing.T) {
	m := model.Model6p6B()
	p := core.Plan{Method: core.BreadthFirst, DP: 8, PP: 4, TP: 2, MicroBatch: 1,
		NumMicro: 16, Loops: 4, Sharding: core.DPFS, OverlapDP: true, OverlapPP: true}
	want := Estimate(m, p)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if got := CachedEstimate(m, p); got != want {
					t.Errorf("concurrent cached estimate differs")
					return
				}
			}
		}()
	}
	wg.Wait()
}
