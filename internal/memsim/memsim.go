// Package memsim estimates per-GPU memory usage for a (model, plan) pair,
// following Appendix A.2 of the paper: training-state memory (Eqs. 13-15),
// live activation memory (Eq. 16) and activation-checkpoint memory (Eq. 17
// with the per-schedule caps of Table 4.1), plus pipeline receive buffers.
//
// Two totals are reported: the expected peak on the given cluster, and the
// minimum achievable on an arbitrarily large cluster where sharded data
// parallelism dilutes the training state completely (the "Memory min"
// column of Tables E.1-E.3).
package memsim

import (
	"fmt"

	"bfpp/internal/core"
	"bfpp/internal/model"
	"bfpp/internal/schedule"
)

// Bytes-per-parameter constants for mixed-precision Adam (Appendix A.2.1).
const (
	// bytesState is the training state proper: fp32 master weights (4) and
	// two Adam momenta (8).
	bytesState = 12.0
	// bytesHalfBuffers is the half-precision weight and gradient buffers
	// (2 + 2).
	bytesHalfBuffers = 4.0
	// bytesHalfWeights is the half-precision weights alone, for schedules
	// that reduce gradients immediately (per-stage aggregation).
	bytesHalfWeights = 2.0
	// bytesFP32Grads is the full-precision gradient buffer. The paper's
	// implementation pre-allocates it (counted in peak memory);
	// Megatron-LM allocates it on the fly outside the peak (Appendix E
	// footnote 15).
	bytesFP32Grads = 4.0
)

// Breakdown is the per-GPU memory estimate in bytes.
type Breakdown struct {
	// State is training state plus precision buffers on this cluster.
	State float64
	// StateMin is the same on an arbitrarily large cluster (sharding
	// dilutes the 12-byte state and, for our implementation, the fp32
	// gradients, leaving only the half-precision buffers).
	StateMin float64
	// Activations is the live activation + gradient memory of the layer
	// currently being processed (Eq. 16).
	Activations float64
	// Checkpoints is the activation-checkpoint memory (Eq. 17 with caps).
	Checkpoints float64
	// PPBuffers is the pipeline receive buffer memory (double-buffered).
	PPBuffers float64
}

// Total returns the expected peak usage on the given cluster.
func (b Breakdown) Total() float64 {
	return b.State + b.Activations + b.Checkpoints + b.PPBuffers
}

// TotalMin returns the large-cluster minimum (the "Memory min" column).
func (b Breakdown) TotalMin() float64 {
	return b.StateMin + b.Activations + b.Checkpoints + b.PPBuffers
}

// String formats both totals in GiB.
func (b Breakdown) String() string {
	const gib = 1 << 30
	return fmt.Sprintf("total=%.2fGiB (state=%.2f act=%.2f ckpt=%.2f pp=%.2f) min=%.2fGiB",
		b.Total()/gib, b.State/gib, b.Activations/gib, b.Checkpoints/gib,
		b.PPBuffers/gib, b.TotalMin()/gib)
}

// Estimate computes the memory breakdown. The plan must be valid for the
// model. The per-method behavior — the in-flight activation count of
// Table 4.1, per-stage gradient aggregation, the Megatron-LM fp32-grads
// accounting and PipeDream weight stashes — comes from the method's
// registered schedule traits (schedule.TraitsOf) rather than a hard-coded
// method list, so registered extension schedules are estimated correctly.
func Estimate(m model.Transformer, p core.Plan) Breakdown {
	var b Breakdown
	traits := schedule.TraitsOf(p.Method)
	stackParams := float64(m.Layers) * float64(m.LayerParams())
	pDev := stackParams / float64(p.PP*p.TP) // parameters hosted per device
	nStages := p.NumStages()
	pStage := stackParams / float64(nStages) / float64(p.TP)

	// Training state (Eqs. 13-15).
	switch p.Sharding {
	case core.DP0:
		perParam := bytesState + bytesHalfBuffers + bytesFP32Grads
		if traits.GradsOutsidePeak {
			perParam = bytesState + bytesHalfBuffers // fp32 grads outside peak
		}
		b.State = perParam * pDev
		// Large-cluster minimum assumes sharding were enabled: only the
		// half-precision buffers remain.
		b.StateMin = bytesHalfBuffers * pDev
	case core.DPPS:
		buffers := bytesHalfBuffers
		if traits.PerStageAggregation || p.NumMicro == 1 {
			// Per-stage aggregation reduces gradients immediately,
			// halving the buffer requirement (Appendix A.2.1).
			buffers = bytesHalfWeights
		}
		b.State = (bytesState+bytesFP32Grads)/float64(p.DP)*pDev + buffers*pDev
		b.StateMin = buffers * pDev
	case core.DPFS:
		// Only two reconstructed stages are resident (double buffering).
		buffers := 2 * (bytesHalfWeights + bytesHalfWeights) * pStage
		b.State = (bytesState+bytesFP32Grads)/float64(p.DP)*pDev + buffers
		b.StateMin = buffers
	}
	if traits.StashedWeights != nil {
		// PipeDream-style weight stashing pins extra half-precision weight
		// versions per stage; they do not shard away on a larger cluster.
		stash := bytesHalfWeights * float64(traits.StashedWeights(p)) * pStage
		b.State += stash
		b.StateMin += stash
	}

	// Live activations (Eq. 16), for the micro-batch currently in the
	// layer being processed.
	seq := float64(m.SeqLen)
	smb := float64(p.MicroBatch)
	hid := float64(m.Hidden)
	tp := float64(p.TP)
	b.Activations = seq * smb * hid * (10 + 24/tp + 5*seq*float64(m.Heads)/(hid*tp))

	// Activation checkpoints (Eq. 17): one checkpoint (the layer input,
	// 2 bytes/element) per in-flight layer and micro-batch, with the
	// per-schedule caps of Table 4.1 declared by the generator traits.
	ckptPairs := traits.InFlight(p)
	layersPerStage := m.Layers / nStages
	b.Checkpoints = float64(ckptPairs*layersPerStage) * 2 * seq * smb * hid / tp

	// Pipeline receive buffers: double-buffered fp16 activations plus
	// gradients at stage boundaries.
	if p.Method.Pipelined() && p.PP > 1 {
		b.PPBuffers = 4 * 2 * seq * smb * hid / tp
	}
	return b
}

// inFlightPairs returns the worst-device number of (stage, micro-batch)
// activations held simultaneously (Table 4.1), as declared by the
// method's registered schedule generator (unregistered methods
// conservatively hold everything).
func inFlightPairs(p core.Plan) int {
	return schedule.TraitsOf(p.Method).InFlight(p)
}

// Feasible reports whether the estimated peak fits in the given GPU memory,
// keeping a fragmentation reserve (Appendix D.2 documents severe
// fragmentation effects; configurations near the limit were excluded from
// the paper's grid search).
func Feasible(b Breakdown, memBytes int64) bool {
	return FeasibleBytes(b.Total(), memBytes)
}
