// Package des implements a small deterministic discrete-event simulator
// built around in-order execution streams, mirroring the CUDA stream model
// the paper's implementation targets (Appendix D): each device exposes a
// compute stream and one or more communication streams, every operation is
// enqueued on exactly one stream, streams execute their operations strictly
// in FIFO order, and cross-stream ordering is expressed with dependency
// edges (the analogue of CUDA events).
//
// Overlap between computation and communication is therefore not asserted
// anywhere: it emerges (or fails to emerge) from the schedule structure,
// which is exactly the property the paper's breadth-first schedule exploits.
//
// Run executes the task graph with an indexed worklist (O(tasks + edges));
// RunReference keeps the original stream-rescanning loop as an executable
// specification. Both produce bit-identical timelines, which the test suite
// asserts on randomized graphs.
package des

import (
	"fmt"
	"math"
	"sort"
)

// StreamID identifies an execution stream.
type StreamID int

// TaskID identifies an enqueued task.
type TaskID int

// Class categorizes a task for rendering and accounting. It is a small
// interned enum — Task and Span carry no strings, so clearing or copying
// span slices never forces pointer-aware memory clears — and the names are
// resolved through a string table at render time only.
type Class uint8

const (
	// ClassOther is the zero class for uncategorized tasks.
	ClassOther Class = iota
	// ClassFwd is a forward compute pass.
	ClassFwd
	// ClassBwd is a backward compute pass.
	ClassBwd
	// ClassSend is a pipeline-parallel activation/gradient transfer.
	ClassSend
	// ClassReduce is a data-parallel gradient reduction.
	ClassReduce
	// ClassRestore is a DP-FS weight reconstruction.
	ClassRestore
	// ClassOpt is the optimizer step.
	ClassOpt
)

var classNames = [...]string{"other", "fwd", "bwd", "send", "reduce", "restore", "opt"}

// String returns the class's render-time name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Task is one unit of work on a stream. A task starts when (a) all its
// dependencies have finished and (b) all earlier tasks on its stream have
// finished; it then runs for Dur seconds without preemption.
type Task struct {
	// ID is assigned by Add.
	ID TaskID
	// Stream is the stream the task executes on.
	Stream StreamID
	// Dur is the execution time in seconds (may be zero for pure
	// synchronization points).
	Dur float64
	// Deps lists tasks that must complete before this one may start.
	Deps []TaskID
	// Class is the task's category, used by renderers and accounting.
	Class Class
	// Stage and Micro carry pipeline metadata for rendering (negative when
	// not applicable).
	Stage, Micro int
}

// Span is the execution record of one task.
type Span struct {
	Task         TaskID
	Stream       StreamID
	Class        Class
	Stage, Micro int
	Start, End   float64
}

// Dur returns the span duration.
func (s Span) Dur() float64 { return s.End - s.Start }

// Timeline is the result of a simulation run.
type Timeline struct {
	// Spans holds one record per task, sorted by (Stream, Start).
	Spans []Span
	// Makespan is the completion time of the last task.
	Makespan float64
	// StreamNames maps StreamID to the name given at creation.
	StreamNames []string

	// offsets[s]:offsets[s+1] bounds stream s's spans inside Spans when the
	// timeline was produced by the indexed fast path; nil timelines built by
	// hand or by RunReference fall back to full scans.
	offsets []int
}

// streamSpans returns stream s's contiguous span slice when the index is
// available.
func (t *Timeline) streamSpans(s StreamID) ([]Span, bool) {
	if t.offsets == nil || int(s) < 0 || int(s)+1 >= len(t.offsets) {
		return nil, false
	}
	return t.Spans[t.offsets[s]:t.offsets[s+1]], true
}

// BusyTime returns the total occupied time of a stream.
func (t *Timeline) BusyTime(s StreamID) float64 {
	var b float64
	if spans, ok := t.streamSpans(s); ok {
		for _, sp := range spans {
			b += sp.Dur()
		}
		return b
	}
	for _, sp := range t.Spans {
		if sp.Stream == s {
			b += sp.Dur()
		}
	}
	return b
}

// ClassTime returns the total duration of spans of the given class on a
// stream (or on all streams when stream is negative).
func (t *Timeline) ClassTime(stream StreamID, class Class) float64 {
	var b float64
	if stream >= 0 {
		if spans, ok := t.streamSpans(stream); ok {
			for _, sp := range spans {
				if sp.Class == class {
					b += sp.Dur()
				}
			}
			return b
		}
	}
	for _, sp := range t.Spans {
		if (stream < 0 || sp.Stream == stream) && sp.Class == class {
			b += sp.Dur()
		}
	}
	return b
}

// StreamSpans returns the spans of one stream in start order.
func (t *Timeline) StreamSpans(s StreamID) []Span {
	if spans, ok := t.streamSpans(s); ok {
		return append([]Span(nil), spans...)
	}
	var out []Span
	for _, sp := range t.Spans {
		if sp.Stream == s {
			out = append(out, sp)
		}
	}
	return out
}

// Sim accumulates streams and tasks and runs them to completion. A Sim is
// not safe for concurrent use; concurrent simulations each use their own
// (the engine pools and Resets them).
type Sim struct {
	streams []string
	queues  [][]TaskID
	tasks   []Task

	// depArena backs the Deps slices of tasks created by Add/AddTagged, so
	// enqueueing a task with dependencies costs no per-task allocation.
	depArena []TaskID
	// nDeps counts all dependency edges (arena-backed and AddDep-appended),
	// sizing the reverse adjacency built by Run.
	nDeps int

	// scratch holds Run's reusable working buffers. Only buffers that do
	// not escape into the returned Timeline live here.
	scratch runScratch
}

// grow resizes a reusable buffer to length n, reallocating only when the
// retained capacity is too small. Contents are unspecified; callers clear
// what they need.
func grow[T any](buf *[]T, n int) []T {
	if cap(*buf) < n {
		*buf = make([]T, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// runScratch is Run's reusable working state.
type runScratch struct {
	indeg      []int32
	revOff     []int32
	rev        []TaskID
	depFree    []float64
	head       []int
	streamFree []float64
	stack      []int
	inStack    []bool
}

// New returns an empty simulator.
func New() *Sim { return &Sim{} }

// Reset clears all streams and tasks while retaining allocated capacity,
// so one Sim can be reused across simulations.
func (s *Sim) Reset() {
	s.streams = s.streams[:0]
	for i := range s.queues {
		s.queues[i] = s.queues[i][:0]
	}
	s.queues = s.queues[:0]
	s.tasks = s.tasks[:0]
	s.depArena = s.depArena[:0]
	s.nDeps = 0
}

// Reserve pre-sizes the simulator for about nTasks tasks carrying nDeps
// total dependency edges, eliminating growth reallocations on the build
// path. It is a hint: the simulator grows past it as needed.
func (s *Sim) Reserve(nTasks, nDeps int) {
	if cap(s.tasks) < nTasks {
		tasks := make([]Task, len(s.tasks), nTasks)
		copy(tasks, s.tasks)
		s.tasks = tasks
	}
	if cap(s.depArena) < nDeps {
		arena := make([]TaskID, len(s.depArena), nDeps)
		copy(arena, s.depArena)
		s.depArena = arena
	}
}

// Stream creates a new named execution stream.
func (s *Sim) Stream(name string) StreamID {
	id := StreamID(len(s.streams))
	s.streams = append(s.streams, name)
	if len(s.queues) < cap(s.queues) {
		// Reuse the queue storage a Reset left behind.
		s.queues = s.queues[:len(s.queues)+1]
		s.queues[id] = s.queues[id][:0]
	} else {
		s.queues = append(s.queues, nil)
	}
	return id
}

// ReserveStream pre-sizes stream st's queue for about n tasks.
func (s *Sim) ReserveStream(st StreamID, n int) {
	if int(st) < 0 || int(st) >= len(s.queues) {
		panic(fmt.Sprintf("des: ReserveStream on unknown stream %d", st))
	}
	if q := s.queues[st]; cap(q) < n {
		nq := make([]TaskID, len(q), n)
		copy(nq, q)
		s.queues[st] = nq
	}
}

// NumTasks returns the number of enqueued tasks.
func (s *Sim) NumTasks() int { return len(s.tasks) }

// Add enqueues a task at the tail of stream st and returns its ID.
func (s *Sim) Add(st StreamID, dur float64, class Class, deps ...TaskID) TaskID {
	return s.AddTagged(st, dur, class, -1, -1, deps...)
}

// AddTagged is Add with pipeline metadata (stage and micro-batch indices)
// attached for rendering.
func (s *Sim) AddTagged(st StreamID, dur float64, class Class, stage, micro int, deps ...TaskID) TaskID {
	if int(st) < 0 || int(st) >= len(s.streams) {
		panic(fmt.Sprintf("des: unknown stream %d", st))
	}
	if dur < 0 || math.IsNaN(dur) || math.IsInf(dur, 0) {
		panic(fmt.Sprintf("des: invalid duration %v for %s", dur, class))
	}
	id := TaskID(len(s.tasks))
	for _, d := range deps {
		if int(d) < 0 || int(d) >= len(s.tasks) {
			panic(fmt.Sprintf("des: task %s depends on unknown task %d", class, d))
		}
	}
	var ds []TaskID
	if len(deps) > 0 {
		// Copy into the shared arena; the full slice expression pins the
		// capacity so a later AddDep reallocates instead of clobbering a
		// neighboring task's dependencies.
		base := len(s.depArena)
		s.depArena = append(s.depArena, deps...)
		ds = s.depArena[base:len(s.depArena):len(s.depArena)]
		s.nDeps += len(deps)
	}
	t := Task{ID: id, Stream: st, Dur: dur, Deps: ds,
		Class: class, Stage: stage, Micro: micro}
	s.tasks = append(s.tasks, t)
	s.queues[st] = append(s.queues[st], id)
	return id
}

// AddDep appends dependencies to an existing task. Unlike Add, it accepts
// any task created so far, enabling cross-stream wiring in a second pass
// (dependency cycles introduced this way are caught by Run as deadlocks).
// The combined list is rewritten into the arena, so wiring a whole
// schedule's transfers costs amortized-zero allocations.
func (s *Sim) AddDep(t TaskID, deps ...TaskID) {
	if int(t) < 0 || int(t) >= len(s.tasks) {
		panic(fmt.Sprintf("des: AddDep on unknown task %d", t))
	}
	for _, d := range deps {
		if int(d) < 0 || int(d) >= len(s.tasks) {
			panic(fmt.Sprintf("des: AddDep with unknown dependency %d", d))
		}
	}
	old := s.tasks[t].Deps
	base := len(s.depArena)
	s.depArena = append(s.depArena, old...)
	s.depArena = append(s.depArena, deps...)
	s.tasks[t].Deps = s.depArena[base:len(s.depArena):len(s.depArena)]
	s.nDeps += len(deps)
}

// Run executes all tasks and returns the timeline. It returns an error if
// the task graph deadlocks (a cross-stream dependency cycle), identifying
// one blocked task.
//
// This is the indexed fast path: a reverse-dependency adjacency list and a
// worklist of streams whose head may have become runnable replace the
// repeated full-stream rescans of RunReference, and spans land directly in
// their final (Stream, Start, Task) order — per-stream FIFO execution with
// monotonically assigned task IDs means queue order is already span order,
// so no final sort is needed. Start times are computed with the same
// max-over-dependencies arithmetic, so timelines are bit-identical to the
// reference loop.
func (s *Sim) Run() (*Timeline, error) {
	n := len(s.tasks)
	nq := len(s.queues)
	sc := &s.scratch

	// Span layout: contiguous per stream, in queue (= execution) order.
	// offsets and spans escape into the Timeline; everything else comes
	// from the reusable scratch buffers.
	offsets := make([]int, nq+1)
	for qi, q := range s.queues {
		offsets[qi+1] = offsets[qi] + len(q)
	}
	spans := make([]Span, n)

	// Reverse adjacency in CSR form plus per-task pending counts. The fill
	// pass advances revOff[d] past d's range, so afterwards d's dependents
	// sit in rev[revOff[d-1]:revOff[d]] — one cursor array instead of two.
	indeg := grow(&sc.indeg, n)
	revOff := grow(&sc.revOff, n+1)
	clear(revOff)
	for i := range s.tasks {
		deps := s.tasks[i].Deps
		indeg[i] = int32(len(deps))
		for _, d := range deps {
			revOff[d+1]++
		}
	}
	for i := 0; i < n; i++ {
		revOff[i+1] += revOff[i]
	}
	// revOff[n] is the true edge count (Deps may have been patched
	// directly by white-box tests, bypassing the nDeps bookkeeping).
	rev := grow(&sc.rev, int(revOff[n]))
	for i := range s.tasks {
		for _, d := range s.tasks[i].Deps {
			rev[revOff[d]] = TaskID(i)
			revOff[d]++
		}
	}
	revLo := func(id TaskID) int32 {
		if id == 0 {
			return 0
		}
		return revOff[id-1]
	}

	depFree := grow(&sc.depFree, n) // max finish time over resolved deps
	clear(depFree)
	head := grow(&sc.head, nq)
	clear(head)
	streamFree := grow(&sc.streamFree, nq)
	clear(streamFree)

	// Worklist of streams whose head may be runnable. Seeded in reverse so
	// the initial drain visits streams in creation order (cosmetic only:
	// simulated time does not depend on processing order).
	stack := grow(&sc.stack, nq)[:0]
	inStack := grow(&sc.inStack, nq)
	clear(inStack)
	for qi := nq - 1; qi >= 0; qi-- {
		if len(s.queues[qi]) > 0 {
			stack = append(stack, qi)
			inStack[qi] = true
		}
	}

	remaining := n
	var makespan float64
	for len(stack) > 0 {
		qi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		inStack[qi] = false
		q := s.queues[qi]
		for head[qi] < len(q) {
			id := q[head[qi]]
			if indeg[id] != 0 {
				break
			}
			t := &s.tasks[id]
			start := streamFree[qi]
			if depFree[id] > start {
				start = depFree[id]
			}
			end := start + t.Dur
			streamFree[qi] = end
			if end > makespan {
				makespan = end
			}
			spans[offsets[qi]+head[qi]] = Span{Task: id, Stream: t.Stream, Class: t.Class,
				Stage: t.Stage, Micro: t.Micro, Start: start, End: end}
			head[qi]++
			remaining--
			for _, d := range rev[revLo(id):revOff[id]] {
				indeg[d]--
				if depFree[d] < end {
					depFree[d] = end
				}
				if indeg[d] == 0 {
					// Wake the dependent's stream if it is now runnable at
					// its head. The current stream's own drain loop picks up
					// same-stream dependents without a push.
					sd := int(s.tasks[d].Stream)
					if sd != qi && !inStack[sd] && s.queues[sd][head[sd]] == d {
						stack = append(stack, sd)
						inStack[sd] = true
					}
				}
			}
		}
	}
	sc.stack = stack[:0]

	if remaining > 0 {
		for qi := range s.queues {
			if head[qi] < len(s.queues[qi]) {
				id := s.queues[qi][head[qi]]
				return nil, fmt.Errorf("des: deadlock: task %d (%s) on stream %q blocked",
					id, s.tasks[id].Class, s.streams[qi])
			}
		}
		return nil, fmt.Errorf("des: deadlock with no blocked head (internal error)")
	}

	return &Timeline{Spans: spans, Makespan: makespan,
		StreamNames: append([]string(nil), s.streams...), offsets: offsets}, nil
}

// RunReference executes all tasks with the original rescanning loop: every
// pass drains each stream as far as dependencies allow, and the spans are
// sorted afterwards. It is kept as the executable specification of Run —
// the equivalence tests assert bit-identical timelines — and as the
// seed-faithful baseline of the perf harness (scripts/bench.sh).
func (s *Sim) RunReference() (*Timeline, error) {
	n := len(s.tasks)
	finish := make([]float64, n)
	done := make([]bool, n)
	head := make([]int, len(s.queues)) // next index per stream
	streamFree := make([]float64, len(s.queues))
	spans := make([]Span, 0, n)

	remaining := n
	for remaining > 0 {
		progressed := false
		for qi := range s.queues {
			// Drain this stream as far as dependencies allow. Running a
			// ready head immediately is safe: its start time depends only
			// on already-finished tasks and this stream's frontier.
			for head[qi] < len(s.queues[qi]) {
				id := s.queues[qi][head[qi]]
				t := &s.tasks[id]
				ready := true
				start := streamFree[qi]
				for _, d := range t.Deps {
					if !done[d] {
						ready = false
						break
					}
					if finish[d] > start {
						start = finish[d]
					}
				}
				if !ready {
					break
				}
				end := start + t.Dur
				finish[id] = end
				done[id] = true
				streamFree[qi] = end
				spans = append(spans, Span{Task: id, Stream: t.Stream, Class: t.Class,
					Stage: t.Stage, Micro: t.Micro, Start: start, End: end})
				head[qi]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			for qi := range s.queues {
				if head[qi] < len(s.queues[qi]) {
					id := s.queues[qi][head[qi]]
					return nil, fmt.Errorf("des: deadlock: task %d (%s) on stream %q blocked",
						id, s.tasks[id].Class, s.streams[qi])
				}
			}
			return nil, fmt.Errorf("des: deadlock with no blocked head (internal error)")
		}
	}

	var makespan float64
	for _, sp := range spans {
		if sp.End > makespan {
			makespan = sp.End
		}
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Stream != spans[j].Stream {
			return spans[i].Stream < spans[j].Stream
		}
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Task < spans[j].Task
	})
	return &Timeline{Spans: spans, Makespan: makespan,
		StreamNames: append([]string(nil), s.streams...)}, nil
}
