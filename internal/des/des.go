// Package des implements a small deterministic discrete-event simulator
// built around in-order execution streams, mirroring the CUDA stream model
// the paper's implementation targets (Appendix D): each device exposes a
// compute stream and one or more communication streams, every operation is
// enqueued on exactly one stream, streams execute their operations strictly
// in FIFO order, and cross-stream ordering is expressed with dependency
// edges (the analogue of CUDA events).
//
// Overlap between computation and communication is therefore not asserted
// anywhere: it emerges (or fails to emerge) from the schedule structure,
// which is exactly the property the paper's breadth-first schedule exploits.
package des

import (
	"fmt"
	"math"
	"sort"
)

// StreamID identifies an execution stream.
type StreamID int

// TaskID identifies an enqueued task.
type TaskID int

// Task is one unit of work on a stream. A task starts when (a) all its
// dependencies have finished and (b) all earlier tasks on its stream have
// finished; it then runs for Dur seconds without preemption.
type Task struct {
	// ID is assigned by Add.
	ID TaskID
	// Stream is the stream the task executes on.
	Stream StreamID
	// Dur is the execution time in seconds (may be zero for pure
	// synchronization points).
	Dur float64
	// Deps lists tasks that must complete before this one may start.
	Deps []TaskID
	// Class is a free-form category used by renderers and accounting, for
	// example "fwd", "bwd", "reduce", "restore", "send", "opt".
	Class string
	// Stage and Micro carry pipeline metadata for rendering (negative when
	// not applicable).
	Stage, Micro int
}

// Span is the execution record of one task.
type Span struct {
	Task         TaskID
	Stream       StreamID
	Class        string
	Stage, Micro int
	Start, End   float64
}

// Dur returns the span duration.
func (s Span) Dur() float64 { return s.End - s.Start }

// Timeline is the result of a simulation run.
type Timeline struct {
	// Spans holds one record per task, sorted by (Stream, Start).
	Spans []Span
	// Makespan is the completion time of the last task.
	Makespan float64
	// StreamNames maps StreamID to the name given at creation.
	StreamNames []string
}

// BusyTime returns the total occupied time of a stream.
func (t *Timeline) BusyTime(s StreamID) float64 {
	var b float64
	for _, sp := range t.Spans {
		if sp.Stream == s {
			b += sp.Dur()
		}
	}
	return b
}

// ClassTime returns the total duration of spans of the given class on a
// stream (or on all streams when stream is negative).
func (t *Timeline) ClassTime(stream StreamID, class string) float64 {
	var b float64
	for _, sp := range t.Spans {
		if (stream < 0 || sp.Stream == stream) && sp.Class == class {
			b += sp.Dur()
		}
	}
	return b
}

// StreamSpans returns the spans of one stream in start order.
func (t *Timeline) StreamSpans(s StreamID) []Span {
	var out []Span
	for _, sp := range t.Spans {
		if sp.Stream == s {
			out = append(out, sp)
		}
	}
	return out
}

// Sim accumulates streams and tasks and runs them to completion.
type Sim struct {
	streams []string
	queues  [][]TaskID
	tasks   []Task
}

// New returns an empty simulator.
func New() *Sim { return &Sim{} }

// Stream creates a new named execution stream.
func (s *Sim) Stream(name string) StreamID {
	id := StreamID(len(s.streams))
	s.streams = append(s.streams, name)
	s.queues = append(s.queues, nil)
	return id
}

// NumTasks returns the number of enqueued tasks.
func (s *Sim) NumTasks() int { return len(s.tasks) }

// Add enqueues a task at the tail of stream st and returns its ID.
func (s *Sim) Add(st StreamID, dur float64, class string, deps ...TaskID) TaskID {
	return s.AddTagged(st, dur, class, -1, -1, deps...)
}

// AddTagged is Add with pipeline metadata (stage and micro-batch indices)
// attached for rendering.
func (s *Sim) AddTagged(st StreamID, dur float64, class string, stage, micro int, deps ...TaskID) TaskID {
	if int(st) < 0 || int(st) >= len(s.streams) {
		panic(fmt.Sprintf("des: unknown stream %d", st))
	}
	if dur < 0 || math.IsNaN(dur) || math.IsInf(dur, 0) {
		panic(fmt.Sprintf("des: invalid duration %v for %s", dur, class))
	}
	id := TaskID(len(s.tasks))
	for _, d := range deps {
		if int(d) < 0 || int(d) >= len(s.tasks) {
			panic(fmt.Sprintf("des: task %s depends on unknown task %d", class, d))
		}
	}
	t := Task{ID: id, Stream: st, Dur: dur, Deps: append([]TaskID(nil), deps...),
		Class: class, Stage: stage, Micro: micro}
	s.tasks = append(s.tasks, t)
	s.queues[st] = append(s.queues[st], id)
	return id
}

// AddDep appends dependencies to an existing task. Unlike Add, it accepts
// any task created so far, enabling cross-stream wiring in a second pass
// (dependency cycles introduced this way are caught by Run as deadlocks).
func (s *Sim) AddDep(t TaskID, deps ...TaskID) {
	if int(t) < 0 || int(t) >= len(s.tasks) {
		panic(fmt.Sprintf("des: AddDep on unknown task %d", t))
	}
	for _, d := range deps {
		if int(d) < 0 || int(d) >= len(s.tasks) {
			panic(fmt.Sprintf("des: AddDep with unknown dependency %d", d))
		}
	}
	s.tasks[t].Deps = append(s.tasks[t].Deps, deps...)
}

// Run executes all tasks and returns the timeline. It returns an error if
// the task graph deadlocks (a cross-stream dependency cycle), identifying
// one blocked task.
func (s *Sim) Run() (*Timeline, error) {
	n := len(s.tasks)
	finish := make([]float64, n)
	done := make([]bool, n)
	head := make([]int, len(s.queues)) // next index per stream
	streamFree := make([]float64, len(s.queues))
	spans := make([]Span, 0, n)

	remaining := n
	for remaining > 0 {
		progressed := false
		for qi := range s.queues {
			// Drain this stream as far as dependencies allow. Running a
			// ready head immediately is safe: its start time depends only
			// on already-finished tasks and this stream's frontier.
			for head[qi] < len(s.queues[qi]) {
				id := s.queues[qi][head[qi]]
				t := &s.tasks[id]
				ready := true
				start := streamFree[qi]
				for _, d := range t.Deps {
					if !done[d] {
						ready = false
						break
					}
					if finish[d] > start {
						start = finish[d]
					}
				}
				if !ready {
					break
				}
				end := start + t.Dur
				finish[id] = end
				done[id] = true
				streamFree[qi] = end
				spans = append(spans, Span{Task: id, Stream: t.Stream, Class: t.Class,
					Stage: t.Stage, Micro: t.Micro, Start: start, End: end})
				head[qi]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			for qi := range s.queues {
				if head[qi] < len(s.queues[qi]) {
					id := s.queues[qi][head[qi]]
					return nil, fmt.Errorf("des: deadlock: task %d (%s) on stream %q blocked",
						id, s.tasks[id].Class, s.streams[qi])
				}
			}
			return nil, fmt.Errorf("des: deadlock with no blocked head (internal error)")
		}
	}

	var makespan float64
	for _, sp := range spans {
		if sp.End > makespan {
			makespan = sp.End
		}
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Stream != spans[j].Stream {
			return spans[i].Stream < spans[j].Stream
		}
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Task < spans[j].Task
	})
	return &Timeline{Spans: spans, Makespan: makespan,
		StreamNames: append([]string(nil), s.streams...)}, nil
}
