package des

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomSim builds a randomized stream/task graph whose AddDep wiring only
// ever points backwards or to already-created tasks, so it is deadlock-free
// by construction.
func randomSim(rng *rand.Rand) *Sim {
	s := New()
	nStreams := 1 + rng.Intn(6)
	streams := make([]StreamID, nStreams)
	for i := range streams {
		streams[i] = s.Stream("s")
	}
	nTasks := 1 + rng.Intn(200)
	var ids []TaskID
	for i := 0; i < nTasks; i++ {
		st := streams[rng.Intn(nStreams)]
		dur := float64(rng.Intn(5)) // include zero-duration ties
		var deps []TaskID
		for d := 0; d < rng.Intn(3) && len(ids) > 0; d++ {
			deps = append(deps, ids[rng.Intn(len(ids))])
		}
		ids = append(ids, s.Add(st, dur, ClassOther, deps...))
	}
	// Second-pass wiring, like the engine's cross-device transfers: extra
	// edges from later tasks to earlier ones.
	for i := 0; i < nTasks/4; i++ {
		a, b := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
		if a > b {
			s.AddDep(a, b)
		}
	}
	return s
}

// TestRunMatchesReference asserts the indexed fast path and the reference
// rescanning loop produce bit-identical timelines on randomized graphs.
func TestRunMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		s := randomSim(rng)
		fast, errFast := s.Run()
		ref, errRef := s.RunReference()
		if (errFast == nil) != (errRef == nil) {
			t.Fatalf("trial %d: fast err %v, reference err %v", trial, errFast, errRef)
		}
		if errFast != nil {
			continue
		}
		if fast.Makespan != ref.Makespan {
			t.Fatalf("trial %d: makespan %v != %v", trial, fast.Makespan, ref.Makespan)
		}
		if !reflect.DeepEqual(fast.Spans, ref.Spans) {
			t.Fatalf("trial %d: spans differ\nfast: %v\nref:  %v", trial, fast.Spans, ref.Spans)
		}
		if !reflect.DeepEqual(fast.StreamNames, ref.StreamNames) {
			t.Fatalf("trial %d: stream names differ", trial)
		}
		// Accessor parity: the fast timeline answers through its index, the
		// reference through full scans.
		for st := 0; st < len(fast.StreamNames); st++ {
			sid := StreamID(st)
			if fast.BusyTime(sid) != ref.BusyTime(sid) {
				t.Fatalf("trial %d: BusyTime(%d) differs", trial, st)
			}
			if fast.ClassTime(sid, ClassOther) != ref.ClassTime(sid, ClassOther) {
				t.Fatalf("trial %d: ClassTime(%d) differs", trial, st)
			}
			if !reflect.DeepEqual(fast.StreamSpans(sid), ref.StreamSpans(sid)) {
				t.Fatalf("trial %d: StreamSpans(%d) differs", trial, st)
			}
		}
		if fast.ClassTime(-1, ClassOther) != ref.ClassTime(-1, ClassOther) {
			t.Fatalf("trial %d: all-stream ClassTime differs", trial)
		}
	}
}

// TestRunDeadlockParity checks both paths report a cycle the same way.
func TestRunDeadlockParity(t *testing.T) {
	s := New()
	a := s.Stream("a")
	b := s.Stream("b")
	t1 := s.Add(a, 1, ClassOther)
	t2 := s.Add(b, 1, ClassOther)
	s.AddDep(t1, t2)
	s.AddDep(t2, t1)
	_, errFast := s.Run()
	_, errRef := s.RunReference()
	if errFast == nil || errRef == nil {
		t.Fatal("cycle should deadlock on both paths")
	}
	if errFast.Error() != errRef.Error() {
		t.Fatalf("deadlock messages differ:\nfast: %v\nref:  %v", errFast, errRef)
	}
}

// TestRunRepeatable: Run does not mutate the Sim, so repeated runs agree.
func TestRunRepeatable(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := randomSim(rng)
	a, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Spans, b.Spans) || a.Makespan != b.Makespan {
		t.Fatal("repeated Run on one Sim diverged")
	}
}

func TestReserve(t *testing.T) {
	s := New()
	st := s.Stream("c")
	s.Reserve(100, 200)
	prev := s.Add(st, 1, ClassOther)
	for i := 0; i < 99; i++ {
		prev = s.Add(st, 1, ClassOther, prev)
	}
	tl, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tl.Makespan != 100 {
		t.Fatalf("makespan %v, want 100", tl.Makespan)
	}
	// Shrinking Reserve is a no-op, not a truncation.
	s.Reserve(1, 1)
	if s.NumTasks() != 100 {
		t.Fatalf("Reserve truncated tasks to %d", s.NumTasks())
	}
}

// TestArenaDepsIsolation guards the arena-backed Deps slices: appending
// dependencies to one task (AddDep) must never clobber another task's
// dependency list that sits adjacent in the arena.
func TestArenaDepsIsolation(t *testing.T) {
	s := New()
	st := s.Stream("c")
	a := s.Add(st, 1, ClassOther)
	b := s.Add(st, 1, ClassOther, a)
	c := s.Add(st, 1, ClassOther, a) // lives right after b's deps in the arena
	d := s.Add(st, 1, ClassOther, a)
	s.AddDep(b, a) // append to b's full-capacity slice: must reallocate
	if got := s.tasks[c].Deps; len(got) != 1 || got[0] != a {
		t.Fatalf("task c's deps clobbered: %v", got)
	}
	if got := s.tasks[b].Deps; len(got) != 2 || got[0] != a || got[1] != a {
		t.Fatalf("task b's deps wrong: %v", got)
	}
	_ = d
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}
