package des

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSequentialStream(t *testing.T) {
	s := New()
	c := s.Stream("compute")
	a := s.Add(c, 1.0, ClassOther)
	b := s.Add(c, 2.0, ClassOther)
	_ = a
	_ = b
	tl, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tl.Makespan-3.0) > 1e-12 {
		t.Errorf("makespan = %v, want 3", tl.Makespan)
	}
	sp := tl.StreamSpans(c)
	if sp[0].Start != 0 || sp[0].End != 1 || sp[1].Start != 1 || sp[1].End != 3 {
		t.Errorf("unexpected spans: %+v", sp)
	}
}

func TestParallelStreamsOverlap(t *testing.T) {
	s := New()
	c := s.Stream("compute")
	n := s.Stream("net")
	s.Add(c, 2.0, ClassFwd)
	s.Add(n, 2.0, ClassSend) // independent: fully overlapped
	tl, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tl.Makespan-2.0) > 1e-12 {
		t.Errorf("independent streams should overlap: makespan = %v", tl.Makespan)
	}
}

func TestCrossStreamDependency(t *testing.T) {
	s := New()
	c := s.Stream("compute")
	n := s.Stream("net")
	f := s.Add(c, 1.0, ClassFwd)
	snd := s.Add(n, 0.5, ClassSend, f)
	s.Add(c, 1.0, ClassOther) // compute continues while send runs
	g := s.Add(c, 1.0, ClassBwd, snd)
	_ = g
	tl, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// fwd [0,1], send [1,1.5], more [1,2], bwd [2,3] (dep on send satisfied
	// before stream frontier).
	if math.Abs(tl.Makespan-3.0) > 1e-12 {
		t.Errorf("makespan = %v, want 3", tl.Makespan)
	}
}

func TestDependencyDelaysStart(t *testing.T) {
	s := New()
	a := s.Stream("a")
	b := s.Stream("b")
	long := s.Add(a, 5.0, ClassOther)
	dep := s.Add(b, 1.0, ClassOther, long)
	_ = dep
	tl, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	sp := tl.StreamSpans(b)[0]
	if sp.Start != 5.0 {
		t.Errorf("dependent task started at %v, want 5", sp.Start)
	}
}

func TestCrossStreamResolvableOrder(t *testing.T) {
	// a: p, w(dep r); b: q(dep p), r. Resolution order: p, q, r, w.
	s := New()
	ca := s.Stream("a")
	cb := s.Stream("b")
	p := s.Add(ca, 1, ClassOther)
	s.Add(cb, 1, ClassOther, p)
	r := s.Add(cb, 1, ClassOther)
	s.Add(ca, 1, ClassOther, r)
	tl, err := s.Run()
	if err != nil {
		t.Fatalf("resolvable graph reported deadlock: %v", err)
	}
	// q waits for p [0,1] -> q [1,2]; r queued after q -> [2,3]; w [3,4].
	if math.Abs(tl.Makespan-4.0) > 1e-12 {
		t.Errorf("makespan = %v, want 4", tl.Makespan)
	}
}

func TestDeadlockDetection(t *testing.T) {
	// A dependency cycle requires forward references, which Add forbids;
	// patch Deps directly (white-box) to verify the detector.
	s := New()
	ha := s.Stream("a")
	hb := s.Stream("b")
	hA := s.Add(ha, 1, ClassOther)
	hB := s.Add(hb, 1, ClassOther)
	s.tasks[hA].Deps = []TaskID{hB}
	s.tasks[hB].Deps = []TaskID{hA}
	if _, err := s.Run(); err == nil {
		t.Fatal("cyclic dependency should deadlock")
	} else if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestNoOverlapWithinStream(t *testing.T) {
	// Property: spans on one stream never overlap, regardless of deps.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		streams := []StreamID{s.Stream("s0"), s.Stream("s1"), s.Stream("s2")}
		var ids []TaskID
		for i := 0; i < 40; i++ {
			var deps []TaskID
			for _, id := range ids {
				if rng.Intn(10) == 0 {
					deps = append(deps, id)
				}
			}
			st := streams[rng.Intn(len(streams))]
			ids = append(ids, s.Add(st, rng.Float64(), ClassOther, deps...))
		}
		tl, err := s.Run()
		if err != nil {
			return false
		}
		for _, st := range streams {
			sp := tl.StreamSpans(st)
			for i := 1; i < len(sp); i++ {
				if sp[i].Start < sp[i-1].End-1e-12 {
					return false
				}
			}
		}
		// Dependency respect.
		finish := map[TaskID]float64{}
		start := map[TaskID]float64{}
		for _, sp := range tl.Spans {
			finish[sp.Task] = sp.End
			start[sp.Task] = sp.Start
		}
		for _, task := range s.tasks {
			for _, d := range task.Deps {
				if start[task.ID] < finish[d]-1e-12 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBusyAndClassTime(t *testing.T) {
	s := New()
	c := s.Stream("compute")
	n := s.Stream("net")
	s.AddTagged(c, 1.0, ClassFwd, 0, 0)
	s.AddTagged(c, 3.0, ClassBwd, 0, 0)
	s.AddTagged(n, 2.0, ClassReduce, 0, -1)
	tl, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := tl.BusyTime(c); math.Abs(got-4.0) > 1e-12 {
		t.Errorf("busy(compute) = %v, want 4", got)
	}
	if got := tl.ClassTime(c, ClassBwd); math.Abs(got-3.0) > 1e-12 {
		t.Errorf("class(bwd) = %v, want 3", got)
	}
	if got := tl.ClassTime(-1, ClassReduce); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("class(reduce) = %v, want 2", got)
	}
}

func TestZeroDurationTasks(t *testing.T) {
	s := New()
	c := s.Stream("c")
	a := s.Add(c, 0, ClassOther)
	b := s.Add(c, 1, ClassOther, a)
	_ = b
	tl, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tl.Makespan != 1 {
		t.Errorf("makespan = %v, want 1", tl.Makespan)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative duration")
		}
	}()
	s := New()
	c := s.Stream("c")
	s.Add(c, -1, ClassOther)
}

func TestPanicsOnUnknownDep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on unknown dependency")
		}
	}()
	s := New()
	c := s.Stream("c")
	s.Add(c, 1, ClassOther, TaskID(99))
}

func TestDeterminism(t *testing.T) {
	build := func() *Timeline {
		s := New()
		c := s.Stream("c")
		n := s.Stream("n")
		var prev TaskID = -1
		for i := 0; i < 20; i++ {
			var deps []TaskID
			if prev >= 0 {
				deps = append(deps, prev)
			}
			id := s.Add(c, float64(i%3)+0.5, ClassOther, deps...)
			s.Add(n, 0.25, ClassOther, id)
			prev = id
		}
		tl, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return tl
	}
	a, b := build(), build()
	if a.Makespan != b.Makespan || len(a.Spans) != len(b.Spans) {
		t.Fatal("simulation is not deterministic")
	}
	for i := range a.Spans {
		if a.Spans[i] != b.Spans[i] {
			t.Fatalf("span %d differs between runs", i)
		}
	}
}
