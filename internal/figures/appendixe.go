package figures

import (
	"context"
	"fmt"
	"strings"

	"bfpp/internal/hw"
	"bfpp/internal/model"
	"bfpp/internal/search"
)

// AppendixELarge extends the Appendix E grid beyond the paper's 64-GPU
// testbed (ROADMAP open item): the GPT-3 and 1T example models of Appendix
// A.1 searched on V100 LargeClusters, over every registered family — so
// the per-grid-point V-schedule in-flight caps and the Section 4.2 hybrid
// sequence lengths are enumerated too — with the branch-and-bound pruning
// statistics (candidates enumerated / dominated / bounded out / simulated)
// that make these sweeps tractable reported per scenario.
func AppendixELarge(ctx context.Context, cfg Config) (string, error) {
	fams := cfg.allFams()
	var b strings.Builder
	b.WriteString("Appendix E (extended): GPT-3 and 1T on V100 LargeClusters,\n")
	b.WriteString("all registered families, V-caps and hybrid sequence lengths enumerated\n\n")
	for _, sc := range []struct {
		name    string
		cluster hw.Cluster
		model   model.Transformer
		batches []int
	}{
		{"GPT-3 on 512 V100", hw.LargeCluster(512), model.GPT3(), []int{64, 128, 256}},
		{"1T on 2048 V100", hw.LargeCluster(2048), model.Model1T(), []int{256, 512}},
	} {
		stats := &search.Stats{}
		// Workers pinned to 1: the bounded-out/simulated split depends on
		// worker timing, and a persisted artifact must be byte-reproducible
		// run over run. The sweep is small (a few hundred candidates after
		// pruning), so the serial pool costs little.
		results, err := search.SweepAll(ctx, sc.cluster, sc.model, fams, sc.batches,
			search.Options{Stats: stats, Workers: 1})
		if err != nil {
			return "", fmt.Errorf("appendixE-large: %s: %w", sc.name, err)
		}
		b.WriteString(search.Table(fmt.Sprintf("Optimal configurations: %s (%d GPUs)",
			sc.name, sc.cluster.NumGPUs()), results))
		fmt.Fprintf(&b, "pruning: %v\n", stats)
		for _, key := range stats.FamilyKeys() {
			fmt.Fprintf(&b, "pruning[%s]: %v\n", key, stats.Family(key))
		}
		b.WriteString("\n")
	}
	b.WriteString("branch-and-bound: candidates are priced by the analytic step-time lower\n")
	b.WriteString("bound (the multi-stream schedule replay, exact for every generator with\n")
	b.WriteString("an implicit op sequence — overlapped or not; a vee warmup/drain floor\n")
	b.WriteString("for the list-scheduled V-schedule) and only simulated when the bound can\n")
	b.WriteString("still beat the incumbent; winners are byte-identical to the exhaustive\n")
	b.WriteString("search.\n")
	return b.String(), nil
}
