package figures

import (
	"context"
	"fmt"
	"strings"

	"bfpp/internal/core"
	"bfpp/internal/engine"
	"bfpp/internal/hw"
	"bfpp/internal/model"
	"bfpp/internal/schedule"
	"bfpp/internal/search"
)

// ExtensionSchedules is the registry-driven schedule comparison: it lists
// every registered generator with its traits, runs the Appendix E grid
// search over *all* registered families (the paper's four plus the
// extension schedules — PipeDream-style WS-1F1B, the controllable-memory
// V-schedule, the Section 4.2 hybrid and depth-first accumulation) on the
// 6.6B model, and sweeps the V-schedule's in-flight cap to show the
// memory/bubble dial. New schedules registered through
// schedule.Register appear here without touching this file.
func ExtensionSchedules(ctx context.Context, cfg Config) (string, error) {
	var b strings.Builder
	b.WriteString("Extension: registry-driven schedule comparison\n\n")

	// Part 1: the registered generators and their traits.
	fmt.Fprintf(&b, "%-16s %-30s %-7s %-10s %-8s %-8s %-10s\n",
		"Method", "Family", "Looped", "Placement", "FwdFirst", "Overlap", "Shardings")
	for _, g := range schedule.Generators() {
		m := g.Method()
		info, _ := m.Info()
		tr := g.Traits()
		placement := "wrap"
		if info.Placement == core.PlacementVee {
			placement = "vee"
		}
		if !info.Pipelined {
			placement = "-"
		}
		shardings := make([]string, len(tr.Shardings))
		for i, sh := range tr.Shardings {
			shardings[i] = sh.String()
		}
		family := "-"
		if f, ok := search.FamilyOf(m); ok {
			family = f.String()
		}
		fmt.Fprintf(&b, "%-16s %-30s %-7v %-10s %-8v %-8v %-10s\n",
			m, family, info.Looped, placement, info.ForwardFirst, tr.Overlap,
			strings.Join(shardings, ","))
	}
	b.WriteString("\n")

	// Part 2: the grid search over every registered family.
	c := hw.PaperCluster()
	m := model.Model6p6B()
	batches := []int{32, 64, 128}
	results, err := search.SweepAll(ctx, c, m, search.AllFamilies(), batches, cfg.searchOptions())
	if err != nil {
		return "", fmt.Errorf("extension-schedules: %w", err)
	}
	b.WriteString(search.Table("Optimal configurations, all registered families: 6.6B on Paper-512", results))
	b.WriteString("\n")

	// Part 3: the V-schedule's controllable-memory dial at a fixed grid
	// point — smaller in-flight caps trade throughput (bubble) for
	// activation-checkpoint memory.
	fmt.Fprintf(&b, "V-schedule memory dial (6.6B, DP=1, PP=4, TP=2, Smb=4, Nmb=16, Nloop=2)\n")
	fmt.Fprintf(&b, "%8s %10s %10s %10s %10s\n", "cap", "in-flight", "Tflop/s", "util%", "Ckpt GiB")
	for _, cap := range []int{2, 4, 8, 16, 32} {
		p := core.Plan{Method: core.VSchedule, DP: 1, PP: 4, TP: 2,
			MicroBatch: 4, NumMicro: 16, Loops: 2, Sequence: cap,
			OverlapDP: true, OverlapPP: true}
		r, err := engine.Simulate(c, m, p)
		if err != nil {
			return "", fmt.Errorf("extension-schedules: v-schedule cap %d: %w", cap, err)
		}
		fmt.Fprintf(&b, "%8d %10d %10.2f %10.1f %10.2f\n",
			cap, schedule.TraitsOf(core.VSchedule).InFlight(p),
			r.Throughput/1e12, 100*r.Utilization, r.Memory.Checkpoints/(1<<30))
	}
	b.WriteString("\nsmaller caps cut activation-checkpoint memory at the cost of pipeline\n")
	b.WriteString("bubble; the V placement keeps the apex transfer on-device either way.\n")
	return b.String(), nil
}
